// Package repro_test holds the top-level benchmark harness: one testing.B
// benchmark per table and figure in the paper's evaluation. Each iteration
// executes the experiment functionally on a reduced input and reports the
// simulated device time (extrapolated to the paper's input size) as the
// custom metric "simMs" — wall-clock ns/op measures the simulator itself,
// simMs is the reproduced result. The cmd/microbench and cmd/ssbench tools
// print the same experiments as full tables.
package repro_test

import (
	"math/rand"
	"sync"
	"testing"

	"crystal/internal/bench"
	"crystal/internal/cpu"
	"crystal/internal/device"
	"crystal/internal/gpu"
	"crystal/internal/model"
	"crystal/internal/queries"
	"crystal/internal/sim"
	"crystal/internal/ssb"
)

const (
	benchN     = 1 << 20        // functional elements per microbenchmark
	paperN     = int64(1) << 28 // projection/selection paper size
	paperJoinN = int64(256) << 20
)

var (
	dsOnce  sync.Once
	benchDS *ssb.Dataset
)

func ssbData() *ssb.Dataset {
	dsOnce.Do(func() { benchDS = ssb.GenerateRows(1 << 17) })
	return benchDS
}

func randCol(n int, limit int32, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = rng.Int31n(limit)
	}
	return out
}

// BenchmarkFig3_Coprocessor runs the Figure 3 experiment: all 13 SSB
// queries on the MonetDB stand-in, the GPU coprocessor and the Hyper
// stand-in; simMs is the summed simulated time of the three engines.
func BenchmarkFig3_Coprocessor(b *testing.B) {
	ds := ssbData()
	engines := []queries.Engine{queries.EngineMonet, queries.EngineCoproc, queries.EngineHyper}
	var simMs float64
	for i := 0; i < b.N; i++ {
		simMs = 0
		for _, q := range queries.All() {
			for _, e := range engines {
				simMs += queries.Run(ds, q, e).Milliseconds()
			}
		}
	}
	b.ReportMetric(simMs, "simMs")
}

// BenchmarkFig9_TileConfig sweeps the Q0 tile configuration (Figure 9) and
// reports the best configuration's simulated ms at 2^28 elements.
func BenchmarkFig9_TileConfig(b *testing.B) {
	in := randCol(benchN, 1000, 1)
	pred := func(v int32) bool { return v < 500 }
	best := 0.0
	for i := 0; i < b.N; i++ {
		best = 0
		for _, bs := range []int{32, 64, 128, 256, 512, 1024} {
			for _, ipt := range []int{1, 2, 4} {
				clk := device.NewClock(device.V100())
				gpu.Select(clk, sim.Config{Threads: bs, ItemsPerThread: ipt}, in, pred, gpu.SelectIf)
				t := bench.MS(bench.ScaleClock(clk, benchN, paperN))
				if best == 0 || t < best {
					best = t
				}
			}
		}
	}
	b.ReportMetric(best, "simMs")
}

// BenchmarkSec33_TiledVsIndependent reproduces the Section 3.3 comparison;
// simMs reports the independent-threads/Crystal ratio (paper: ~9x).
func BenchmarkSec33_TiledVsIndependent(b *testing.B) {
	in := randCol(benchN, 1000, 2)
	pred := func(v int32) bool { return v < 500 }
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		tiled, indep := device.NewClock(device.V100()), device.NewClock(device.V100())
		gpu.Select(tiled, sim.DefaultConfig(0), in, pred, gpu.SelectIf)
		gpu.SelectIndependent(indep, in, pred)
		ratio = bench.ScaleClock(indep, benchN, paperN) / bench.ScaleClock(tiled, benchN, paperN)
	}
	b.ReportMetric(ratio, "speedup")
}

// BenchmarkFig10_Project runs the Q1/Q2 projection microbenchmark on CPU,
// CPU-Opt and GPU; simMs is the GPU Q1 time at paper scale (paper: 3.9).
func BenchmarkFig10_Project(b *testing.B) {
	x1 := make([]float32, benchN)
	x2 := make([]float32, benchN)
	rng := rand.New(rand.NewSource(3))
	for i := range x1 {
		x1[i], x2[i] = rng.Float32(), rng.Float32()
	}
	var gpuMS float64
	for i := 0; i < b.N; i++ {
		c1 := device.NewClock(device.I76900())
		cpu.Project(c1, x1, x2, 2, 3, cpu.ProjectNaive)
		c2 := device.NewClock(device.I76900())
		cpu.ProjectSigmoid(c2, x1, x2, 2, 3, cpu.ProjectOpt)
		c3 := device.NewClock(device.V100())
		gpu.Project(c3, sim.DefaultConfig(0), x1, x2, 2, 3)
		gpuMS = bench.MS(bench.ScaleClock(c3, benchN, paperN))
	}
	b.ReportMetric(gpuMS, "simMs")
}

// BenchmarkFig12_Select sweeps selectivity for all five selection variants
// (Figure 12); simMs reports the mean CPU/GPU ratio (paper: 15.8).
func BenchmarkFig12_Select(b *testing.B) {
	in := randCol(benchN, 1000, 4)
	sigmas := []float64{0.1, 0.5, 0.9}
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, s := range sigmas {
			cut := int32(s * 1000)
			pred := func(v int32) bool { return v < cut }
			cclk := device.NewClock(device.I76900())
			cpu.Select(cclk, in, pred, cpu.SelectSIMDPred)
			gclk := device.NewClock(device.V100())
			gpu.Select(gclk, sim.DefaultConfig(0), in, pred, gpu.SelectPred)
			sum += bench.ScaleClock(cclk, benchN, paperN) / bench.ScaleClock(gclk, benchN, paperN)
		}
		ratio = sum / float64(len(sigmas))
	}
	b.ReportMetric(ratio, "speedup")
}

// BenchmarkFig13_Join sweeps the hash-table size across the cache
// boundaries (Figure 13); simMs reports the out-of-cache CPU/GPU ratio
// (paper: ~10.5x).
func BenchmarkFig13_Join(b *testing.B) {
	const nProbe = benchN
	pk := make([]int32, nProbe)
	pv := make([]int32, nProbe)
	rng := rand.New(rand.NewSource(5))
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		for _, htBytes := range []int64{128 << 10, 2 << 20, 256 << 20} {
			gclk := device.NewClock(device.V100())
			ht := gpu.BuildHashTableBytes(gclk, htBytes,
				func(i int) int32 { return int32(i + 1) }, func(i int) int32 { return int32(i) })
			nKeys := ht.Capacity() / 2
			for j := range pk {
				pk[j] = int32(rng.Intn(nKeys) + 1)
			}
			cclk := device.NewClock(device.I76900())
			cpu.ProbeSum(cclk, pk, pv, ht, cpu.JoinScalar)
			probe := device.NewClock(device.V100())
			gpu.ProbeSum(probe, sim.DefaultConfig(0), pk, pv, ht)
			ratio = bench.ScaleClock(cclk, benchN, paperJoinN) / bench.ScaleClock(probe, benchN, paperJoinN)
		}
	}
	b.ReportMetric(ratio, "speedup")
}

// BenchmarkFig14_RadixPartition runs the histogram and shuffle phases at
// r=8 on all three variants (Figure 14); simMs is the CPU shuffle time at
// 256M entries.
func BenchmarkFig14_RadixPartition(b *testing.B) {
	keys := make([]uint32, benchN)
	vals := make([]int32, benchN)
	rng := rand.New(rand.NewSource(6))
	for i := range keys {
		keys[i] = rng.Uint32()
		vals[i] = int32(i)
	}
	var shufMS float64
	for i := 0; i < b.N; i++ {
		cclk := device.NewClock(device.I76900())
		if _, _, _, err := cpu.RadixPartition(cclk, keys, vals, 8, 0); err != nil {
			b.Fatal(err)
		}
		passes := cclk.Passes()
		shufMS = bench.MS(bench.Scale(cclk.Spec().PassTime(&passes[1]), benchN, paperJoinN))
		gclk := device.NewClock(device.V100())
		if _, _, _, err := gpu.RadixPartition(gclk, sim.DefaultConfig(0), keys, vals, 7, 0, true); err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := gpu.RadixPartition(gclk, sim.DefaultConfig(0), keys, vals, 8, 0, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(shufMS, "simMs")
}

// BenchmarkSec44_Sort reproduces the Section 4.4 sort comparison; simMs
// reports the CPU/GPU speedup (paper: 17.13x).
func BenchmarkSec44_Sort(b *testing.B) {
	keys := make([]uint32, benchN)
	vals := make([]int32, benchN)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = rng.Uint32()
		vals[i] = int32(i)
	}
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		cclk := device.NewClock(device.I76900())
		cpu.LSBRadixSort(cclk, keys, vals)
		gclk := device.NewClock(device.V100())
		gpu.MSBRadixSort(gclk, sim.DefaultConfig(0), keys, vals)
		ratio = bench.ScaleClock(cclk, benchN, paperN) / bench.ScaleClock(gclk, benchN, paperN)
	}
	b.ReportMetric(ratio, "speedup")
}

// BenchmarkFig16_SSB runs all 13 SSB queries on the four standalone
// engines (Figure 16); simMs reports the mean CPU/GPU speedup (paper: 25x).
func BenchmarkFig16_SSB(b *testing.B) {
	ds := ssbData()
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, q := range queries.All() {
			queries.Compile(ds, q).RunHyper()
			queries.Compile(ds, q).RunOmnisci()
			cpuT := queries.Compile(ds, q).RunCPU().Seconds
			gpuT := queries.Compile(ds, q).RunGPU().Seconds
			sum += cpuT / gpuT
		}
		ratio = sum / 13
	}
	b.ReportMetric(ratio, "speedup")
}

// BenchmarkSec53_Query21 runs the q2.1 case study and reports the measured
// GPU simMs next to its analytic model.
func BenchmarkSec53_Query21(b *testing.B) {
	ds := ssbData()
	q, err := queries.ByID("q2.1")
	if err != nil {
		b.Fatal(err)
	}
	var gpuMS float64
	for i := 0; i < b.N; i++ {
		gpuMS = queries.Compile(ds, q).RunGPU().Milliseconds()
		queries.Compile(ds, q).RunCPU()
	}
	b.ReportMetric(gpuMS, "simMs")
	b.ReportMetric(bench.MS(model.Query21(device.V100(), model.SF20())), "modelMsSF20")
}

// BenchmarkTable3_Cost reports the Section 5.4 cost-effectiveness figure.
func BenchmarkTable3_Cost(b *testing.B) {
	ds := ssbData()
	eff := 0.0
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for _, q := range queries.All() {
			ratios = append(ratios, queries.Compile(ds, q).RunCPU().Seconds/queries.Compile(ds, q).RunGPU().Seconds)
		}
		var sum float64
		for _, r := range ratios {
			sum += r
		}
		eff = bench.DefaultCost().Effectiveness(sum / float64(len(ratios)))
	}
	b.ReportMetric(eff, "xPerDollar")
}
