module crystal

go 1.22
