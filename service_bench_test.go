package repro_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"crystal/internal/queries"
	"crystal/internal/serve"
	"crystal/internal/ssb"
)

var (
	serveOnce sync.Once
	serveDS   *ssb.Dataset
)

// serveData is deliberately small: a serving workload is many cheap
// queries, and the smaller the per-query parallel section, the more the
// pool's concurrency (not the operators' internal parallelism) determines
// throughput.
func serveData() *ssb.Dataset {
	serveOnce.Do(func() { serveDS = ssb.GenerateRows(1 << 14) })
	return serveDS
}

// BenchmarkServiceThroughput drives the 13 SSB queries on every engine
// through the query service at increasing pool sizes. Requests bypass the
// result cache (NoCache) so every dispatch executes functionally; the plan
// cache stays hot, as it would in steady-state serving. The custom metric
// queries/s is the end-to-end service throughput: on a multi-core host it
// rises with the worker count until the cores are saturated.
func BenchmarkServiceThroughput(b *testing.B) {
	ds := serveData()
	var reqs []serve.Request
	for _, q := range queries.All() {
		for _, e := range queries.Engines() {
			reqs = append(reqs, serve.Request{QueryID: q.ID, Engine: e, NoCache: true})
		}
	}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := serve.New(ds, "bench", serve.Options{Workers: workers})
			defer s.Close()
			// One warm pass compiles and caches every plan.
			if _, err := s.RunAll(ctx, reqs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resps, err := s.RunAll(ctx, reqs)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range resps {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*len(reqs))/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkServiceTraceAllocs pins the zero-cost-when-disabled contract of
// the tracer: with Options.Trace off (the default) the request hot path
// allocates not a single span — allocs/op must match what the service did
// before tracing existed, and the trace=on arm shows the opt-in price
// (span tree + flight-recorder insert). Compare the two arms' allocs/op;
// a regression in the off arm means tracing leaked onto the default path.
func BenchmarkServiceTraceAllocs(b *testing.B) {
	ds := serveData()
	req := serve.Request{QueryID: "q1.1", Engine: queries.EngineCPU, NoCache: true}
	ctx := context.Background()
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("trace=%v", traced), func(b *testing.B) {
			s := serve.New(ds, "bench", serve.Options{Workers: 1, Trace: traced})
			defer s.Close()
			if _, err := s.Do(ctx, req); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := s.Do(ctx, req)
				if err != nil || resp.Err != nil {
					b.Fatal(err, resp.Err)
				}
			}
		})
	}
}

// BenchmarkServiceCachedThroughput is the same workload with the result
// cache enabled: after the first pass every request is a cache hit, which
// is the serving layer's fast path for repeated dashboards-style traffic.
func BenchmarkServiceCachedThroughput(b *testing.B) {
	ds := serveData()
	var reqs []serve.Request
	for _, q := range queries.All() {
		for _, e := range queries.Engines() {
			reqs = append(reqs, serve.Request{QueryID: q.ID, Engine: e})
		}
	}
	ctx := context.Background()
	s := serve.New(ds, "bench", serve.Options{Workers: 4, ResultCacheSize: len(reqs)})
	defer s.Close()
	if _, err := s.RunAll(ctx, reqs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunAll(ctx, reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(float64(b.N*len(reqs))/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(st.ResultHitRate*100, "hit%")
}
