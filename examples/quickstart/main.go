// Quickstart: the Figure 8 selection kernel written against the Crystal
// block-wide functions — load a tile, evaluate the predicate, scan the
// bitmap, claim output space with one atomic per thread block, shuffle the
// matches into a contiguous run and store them coalesced.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"crystal/internal/crystal"
	"crystal/internal/device"
	"crystal/internal/sim"
)

func main() {
	// SELECT y FROM R WHERE y > v, with 1M rows and v = 700.
	const n = 1 << 20
	const v = 700
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(i * 2654435761 % 1000)
	}

	gpu := device.V100()
	clk := device.NewClock(gpu)
	cfg := sim.DefaultConfig(n) // thread block 128, 4 items per thread

	out := make([]int32, n)
	var cursor sim.Counter

	pass := sim.Run(gpu, cfg, func(b *sim.Block) {
		ts := cfg.TileSize()
		items := make([]int32, ts)    // register tile
		bitmap := make([]uint8, ts)   // predicate bitmap
		indices := make([]int32, ts)  // scan offsets
		shuffled := make([]int32, ts) // shared-memory staging

		m := crystal.BlockLoad(b, col, items)
		crystal.BlockPred(b, items, m, func(y int32) bool { return y > v }, bitmap)
		total := crystal.BlockScan(b, bitmap, m, indices)
		if total == 0 {
			return
		}
		off := b.AtomicAdd(&cursor, int64(total))
		crystal.BlockShuffle(b, items, bitmap, indices, m, shuffled)
		crystal.BlockStore(b, shuffled, total, out, int(off))
	})
	clk.Charge(pass)

	matched := cursor.Value()
	fmt.Printf("input rows:      %d\n", n)
	fmt.Printf("matched (y>%d): %d (selectivity %.3f)\n", v, matched, float64(matched)/n)
	fmt.Printf("global traffic:  %.1f MB read, %.1f MB written, %d block atomics\n",
		float64(pass.BytesRead)/1e6, float64(pass.BytesWritten)/1e6, pass.AtomicOps)
	fmt.Printf("simulated time:  %.3f ms on %s\n", clk.Milliseconds(), gpu.Name)
	fmt.Printf("first results:   %v\n", out[:8])
}
