// Compression example: the Section 5.5 extension — scan a bit-packed column
// on both devices and watch the asymmetry: the GPU's compute-to-bandwidth
// ratio turns the traffic saving into a speedup, while the CPU pays more in
// unpack arithmetic than it saves in bytes.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"math/rand"

	"crystal/internal/cpu"
	"crystal/internal/device"
	"crystal/internal/gpu"
	"crystal/internal/pack"
	"crystal/internal/sim"
)

func main() {
	const n = 1 << 22
	vals := make([]int32, n)
	rng := rand.New(rand.NewSource(9))
	for i := range vals {
		vals[i] = rng.Int31n(1 << 10) // 10-bit values: 3.2x compression
	}
	col := pack.New(vals)
	fmt.Printf("column: %d values, %d-bit packed, %.1fx compression (%.1f MB -> %.1f MB)\n\n",
		n, col.Width(), col.Ratio(), float64(col.PlainBytes())/1e6, float64(col.Bytes())/1e6)

	pred := func(v int32) bool { return v < 100 }
	cfg := sim.Config{Threads: 256, ItemsPerThread: 8}

	gPlain, gPacked := device.NewClock(device.V100()), device.NewClock(device.V100())
	a := gpu.Select(gPlain, cfg, vals, pred, gpu.SelectIf)
	b := gpu.SelectPacked(gPacked, cfg, col, pred)
	if len(a) != len(b) {
		panic("packed scan changed the result")
	}
	fmt.Printf("GPU: plain %.3f ms, packed %.3f ms  -> %.2fx speedup\n",
		gPlain.Milliseconds(), gPacked.Milliseconds(), gPlain.Seconds()/gPacked.Seconds())

	cPlain, cPacked := device.NewClock(device.I76900()), device.NewClock(device.I76900())
	c := cpu.Select(cPlain, vals, pred, cpu.SelectSIMDPred)
	d := cpu.SelectPacked(cPacked, col, pred)
	if len(c) != len(d) {
		panic("packed scan changed the result")
	}
	fmt.Printf("CPU: plain %.3f ms, packed %.3f ms  -> %.2fx speedup\n",
		cPlain.Milliseconds(), cPacked.Milliseconds(), cPlain.Seconds()/cPacked.Seconds())

	fmt.Println("\nSection 5.5: \"GPUs have higher compute to bandwidth ratio than CPUs which")
	fmt.Println("could allow use of non-byte addressable packing schemes\" — quantified.")
}
