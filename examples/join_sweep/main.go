// Join sweep example: the Figure 13 experiment in miniature — probe a
// linear-probing hash table whose footprint sweeps across every cache
// boundary of both devices, and watch the CPU/GPU ratio move through the
// paper's three regimes (~16x cache-resident, ~14.5x GPU-L2-vs-CPU-L3,
// ~10.5x out of cache).
//
//	go run ./examples/join_sweep
package main

import (
	"fmt"
	"math/rand"

	"crystal/internal/bench"
	"crystal/internal/cpu"
	"crystal/internal/device"
	"crystal/internal/gpu"
	"crystal/internal/sim"
)

func main() {
	const nProbe = 1 << 22
	pk := make([]int32, nProbe)
	pv := make([]int32, nProbe)
	rng := rand.New(rand.NewSource(7))

	fmt.Println("hash join probe phase: 4M probe tuples, 50% fill (simulated ms)")
	fmt.Printf("%8s %12s %12s %10s %8s\n", "HT size", "CPU Scalar", "CPU Prefetch", "GPU", "ratio")
	for _, htBytes := range []int64{8 << 10, 128 << 10, 2 << 20, 32 << 20, 512 << 20} {
		gclk := device.NewClock(device.V100())
		ht := gpu.BuildHashTableBytes(gclk, htBytes,
			func(i int) int32 { return int32(i + 1) },
			func(i int) int32 { return int32(i * 3) })
		nKeys := ht.Capacity() / 2
		var checksum int64
		for i := range pk {
			pk[i] = int32(rng.Intn(nKeys) + 1)
			pv[i] = 1
			checksum += int64(pv[i]) + int64(3*(pk[i]-1))
		}

		cclk := device.NewClock(device.I76900())
		if got := cpu.ProbeSum(cclk, pk, pv, ht, cpu.JoinScalar); got != checksum {
			panic("CPU scalar checksum mismatch")
		}
		pclk := device.NewClock(device.I76900())
		cpu.ProbeSum(pclk, pk, pv, ht, cpu.JoinPrefetch)

		gprobe := device.NewClock(device.V100())
		if got := gpu.ProbeSum(gprobe, sim.DefaultConfig(0), pk, pv, ht); got != checksum {
			panic("GPU checksum mismatch")
		}

		fmt.Printf("%8s %12.3f %12.3f %10.3f %7.1fx\n",
			bench.HumanBytes(htBytes), cclk.Milliseconds(), pclk.Milliseconds(),
			gprobe.Milliseconds(), cclk.Seconds()/gprobe.Seconds())
	}
	fmt.Println("\nsteps: CPU degrades past 256KB (L2) and 20MB (L3); GPU past 6MB (L2).")
	fmt.Println("All three engines return the identical join checksum.")
}
