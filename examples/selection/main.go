// Selection example: sweep predicate selectivity over all five selection
// variants (Figure 12 in miniature) and print when each implementation
// matters — the CPU branching variant collapses at mid selectivity while
// the GPU doesn't care.
//
//	go run ./examples/selection
package main

import (
	"fmt"
	"math/rand"

	"crystal/internal/cpu"
	"crystal/internal/device"
	"crystal/internal/gpu"
	"crystal/internal/sim"
)

func main() {
	const n = 1 << 22
	in := make([]int32, n)
	rng := rand.New(rand.NewSource(42))
	for i := range in {
		in[i] = rng.Int31n(1000)
	}

	fmt.Println("selection scan: time in simulated ms at 4M rows")
	fmt.Printf("%8s %10s %10s %12s %10s\n", "sigma", "CPU If", "CPU Pred", "CPU SIMDPred", "GPU")
	for _, sigma := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cut := int32(sigma * 1000)
		pred := func(v int32) bool { return v < cut }
		times := make([]float64, 0, 4)
		for _, variant := range []cpu.SelectVariant{cpu.SelectIf, cpu.SelectPred, cpu.SelectSIMDPred} {
			clk := device.NewClock(device.I76900())
			out := cpu.Select(clk, in, pred, variant)
			if len(out) == 0 && sigma > 0 {
				panic("selection lost rows")
			}
			times = append(times, clk.Milliseconds())
		}
		gclk := device.NewClock(device.V100())
		gpu.Select(gclk, sim.DefaultConfig(0), in, pred, gpu.SelectIf)
		times = append(times, gclk.Milliseconds())
		fmt.Printf("%8.1f %10.3f %10.3f %12.3f %10.3f\n", sigma, times[0], times[1], times[2], times[3])
	}
	fmt.Println("\nnote the CPU If hump at sigma=0.5 (branch mispredictions) and the flat GPU")
	fmt.Println("line: a mispredicted branch does not stall the SIMT pipeline (Section 4.2)")
}
