// SSB q2.1 example: run the Section 5.3 case-study query end-to-end on
// every engine, verify they agree row-for-row, decode the dictionary-coded
// group keys back to SQL-level values, and compare against the analytic
// model.
//
//	go run ./examples/ssb_q21
package main

import (
	"fmt"

	"crystal/internal/device"
	"crystal/internal/model"
	"crystal/internal/queries"
	"crystal/internal/ssb"
)

func main() {
	ds := ssb.Generate(1)
	q, err := queries.ByID("q2.1")
	if err != nil {
		panic(err)
	}
	fmt.Println(q.Describe())
	fmt.Println()

	ref := queries.Reference(ds, q)
	fmt.Printf("%-16s %12s %10s\n", "engine", "ms (SF 1)", "rows")
	for _, e := range queries.Engines() {
		res := queries.Run(ds, q, e)
		status := "OK"
		if !res.Equal(ref) {
			status = "MISMATCH"
		}
		fmt.Printf("%-16s %12.3f %10d  %s\n", e, res.Milliseconds(), len(res.Groups), status)
	}

	// Decode a few result rows: payloads pack in join order (brand, year).
	fmt.Println("\nfirst result rows (decoded):")
	rows := ref.Rows()
	for i, row := range rows {
		if i >= 5 {
			break
		}
		vals := queries.UnpackGroup(row[0], 2)
		fmt.Printf("  year=%d brand=%s revenue=%d\n", vals[1], ssb.BrandName(vals[0]), row[1])
	}
	fmt.Printf("  ... %d rows total\n", len(rows))

	p := model.SF20()
	fmt.Println("\nSection 5.3 model at SF 20:")
	fmt.Printf("  GPU %.2f ms, CPU %.2f ms (paper derives 3.7 and 47; measures 3.86 and 125)\n",
		model.Query21(device.V100(), p)*1e3, model.Query21(device.I76900(), p)*1e3)
}
