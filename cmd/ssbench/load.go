package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"crystal/internal/bench"
	"crystal/internal/loadgen"
	"crystal/internal/serve"
	"crystal/internal/ssb"
)

// The -load mode runs the seeded overload simulator against an in-process
// serving stack instead of the paper tables: it measures closed-loop
// saturation, then drives open-loop Poisson traffic at multiples of that
// rate and reports goodput, shed rate, coalesce rate and latency
// percentiles per phase. Deterministic under -load-seed apart from
// wall-clock measurement; it uses its own small generated dataset (real
// executions back every admitted request, so SF-scale data would measure
// the dataset, not the serving layer).
var (
	loadRun       = flag.Bool("load", false, "run the overload load simulator instead of the paper tables")
	loadMult      = flag.String("load-mult", "1,3,10", "comma-separated offered-load multiples of measured saturation")
	loadSeed      = flag.Int64("load-seed", 2026, "workload seed (schedules are byte-deterministic per seed)")
	loadDur       = flag.Duration("load-dur", 2*time.Second, "scheduled span of each open-loop phase")
	loadRows      = flag.Int("load-rows", 1<<14, "fact rows of the load-test dataset")
	loadWorkers   = flag.Int("load-workers", 4, "serving worker pool size")
	loadQueue     = flag.Int("load-queue", 16, "pending-queue depth (shedding past it)")
	loadDeadline  = flag.Duration("load-deadline", time.Second, "per-request queue-wait deadline")
	loadAdhoc     = flag.Float64("load-adhoc", 0.6, "fraction of requests carrying seeded ad-hoc SQL instead of a catalog query")
	loadPlacement = flag.String("load-placement", "", "route requests through the unified scheduler on this placement (cpu, gpu, hybrid or auto; empty = classic CPU engine)")
	loadBatch     = flag.Int("load-batch", 0, "shared-scan batch cap: at pickup a worker drains up to N-1 scan-compatible pending requests into one shared execution (0 or 1 = disabled)")
	loadDelay     = flag.Duration("load-delay", 0, "fixed wall-clock delay per real execution, paid once per shared-scan batch (emulates a slow backend deterministically)")
	loadJSON      = flag.Bool("load-json", false, "emit the full sweep as JSON instead of the report table")
)

func parseMultipliers(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || m <= 0 {
			return nil, fmt.Errorf("bad -load-mult entry %q (want positive numbers)", f)
		}
		out = append(out, m)
	}
	return out, nil
}

func runLoad() error {
	mults, err := parseMultipliers(*loadMult)
	if err != nil {
		return err
	}
	ds := ssb.GenerateRows(*loadRows)
	newService := func() *serve.Service {
		return serve.New(ds, "load", serve.Options{
			Workers:    *loadWorkers,
			QueueDepth: *loadQueue,
			Shed:       true,
			// Smaller than the ad-hoc pool: the LRU churns, so misses —
			// and therefore coalescing windows — persist all phase
			// instead of only at cold start.
			ResultCacheSize: 64,
			MaxBatch:        *loadBatch,
			ExecDelay:       *loadDelay,
		})
	}
	cfg := loadgen.Config{
		Seed:          *loadSeed,
		AdhocFraction: *loadAdhoc,
		AdhocPool:     128,
		Placement:     *loadPlacement,
		Deadline:      *loadDeadline,
	}
	sweep, err := loadgen.RunSweep(context.Background(), newService, cfg, loadgen.SweepOptions{
		Multipliers:   mults,
		PhaseDuration: *loadDur,
	})
	if err != nil {
		return err
	}
	if *loadJSON {
		data, err := json.MarshalIndent(sweep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	target := "engine=cpu"
	if *loadPlacement != "" {
		target = "placement=" + *loadPlacement
	}
	if *loadBatch > 1 {
		target += fmt.Sprintf(", batch<=%d", *loadBatch)
	}
	bench.Banner(os.Stdout, fmt.Sprintf(
		"overload sweep: %d rows, %d workers, queue %d, %s, seed %d",
		*loadRows, *loadWorkers, *loadQueue, target, *loadSeed))
	fmt.Printf("saturation (closed loop at worker count): %.1f qps\n", sweep.SaturationQPS)
	fmt.Printf("  %s\n", sweep.Saturation)
	fmt.Println("open-loop phases (Poisson arrivals at multiples of saturation):")
	for _, r := range sweep.Phases {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println()
	fmt.Println("shed requests fail fast with ErrOverloaded (HTTP 429 from ssbserve); expired")
	fmt.Println("requests waited past their deadline and were dropped at worker pickup without")
	fmt.Println("executing; coalesced completions shared a concurrent identical execution")
	return nil
}
