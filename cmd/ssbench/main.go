// Command ssbench regenerates the paper's full-query evaluation on the
// Star Schema Benchmark:
//
//	-fig3   MonetDB vs GPU-coprocessor vs Hyper (Figure 3)
//	-fig16  Hyper, Standalone CPU, Omnisci, Standalone GPU (Figure 16)
//	-case21 the Section 5.3 q2.1 case study (model vs measured)
//	-cost   the Section 5.4 dollar-cost comparison (Table 3)
//	-sql    one ad-hoc SQL statement, compiled by internal/sql, on every engine
//	-load   the seeded overload simulator against an in-process serving stack
//	-all    everything (except -sql, -explain, -percentiles and -load)
//
// -load measures closed-loop saturation, then offers open-loop Poisson
// traffic with Zipf query popularity at -load-mult multiples of that rate
// and reports goodput, shed rate, coalesce rate and p50/p99 per phase
// (see internal/loadgen; -load-json emits the sweep as JSON).
//
// -explain q4.1 runs the named query traced through the unified scheduler
// on the cpu, gpu and hybrid placements (over -interconnect, GPU arms
// sized by -hybrid-gpus) and prints each run's EXPLAIN ANALYZE span tree:
// per-executor kernel and transfer times, bytes shipped, morsels pruned,
// and the merge cost — the same tree ssbserve's /trace endpoint renders.
//
// -percentiles reports p50/p95/p99 simulated latency per engine across
// the 13 catalog queries, next to the mean the tables report. The bench
// gates (benchgate, BENCH_*.json) deliberately stay on means — a seeded
// simulation has no tail noise to trim — so percentiles are an
// observability surface, not a gating one.
//
// -partitions N runs every scan as N zone-mapped morsels (identical times
// on the uniform layout; combine with -cluster orderdate to watch pruning
// skip morsels and the plan costs drop), and appends a pruning report.
//
// -packed runs every scan over the bit-packed fact encoding (Section 5.5):
// rows are identical, the GPU engines get cheaper in proportion to the
// compression ratio while the CPU engines pay unpack arithmetic, the
// coprocessor ships compressed bytes over PCIe, and a per-column
// compression report is appended. Combine with -cluster to watch the sort
// column's per-frame widths collapse.
//
// Queries execute functionally at the given scale factor (default 2; the
// paper uses 20) and the reported milliseconds are additionally
// extrapolated to SF 20 with the linear bandwidth model, so the rows are
// directly comparable with the paper's figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"crystal/internal/bench"
	"crystal/internal/device"
	"crystal/internal/fleet"
	"crystal/internal/model"
	"crystal/internal/planner"
	"crystal/internal/queries"
	sqlfe "crystal/internal/sql"
	"crystal/internal/ssb"
	"crystal/internal/trace"
)

var (
	flagSF  = flag.Int("sf", 2, "scale factor to execute functionally (paper: 20)")
	fig3    = flag.Bool("fig3", false, "run Figure 3")
	fig16   = flag.Bool("fig16", false, "run Figure 16")
	case21  = flag.Bool("case21", false, "run the Section 5.3 q2.1 case study")
	cost    = flag.Bool("cost", false, "run the Section 5.4 cost comparison")
	multi   = flag.Bool("multigpu", false, "run the Section 5.5 multi-GPU scaling extension")
	plans   = flag.Bool("plans", false, "rank the q2.1 join orders with the cost-based planner (Section 5.3)")
	all     = flag.Bool("all", false, "run everything")
	dataset = flag.String("data", "", "load a dataset written by datagen instead of generating")
	sqlStmt = flag.String("sql", "", "run one ad-hoc SQL statement across every engine and print its rows")
	parts   = flag.Int("partitions", 0, "split each fact scan into this many zone-mapped morsels (0 = monolithic)")
	cluster = flag.String("cluster", "", "sort the fact table by this column first (clustered layouts give zone maps pruning power)")
	packed  = flag.Bool("packed", false, "scan the bit-packed fact encoding (Section 5.5 compressed execution)")
	gpus    = flag.Int("gpus", 0, "sweep fleet execution from 1 up to N GPUs and report scaling efficiency")
	link    = flag.String("interconnect", "nvlink", "fleet interconnect for -gpus and -hybrid (pcie or nvlink)")
	hybrid  = flag.Bool("hybrid", false, "run hybrid CPU+GPU co-execution on both interconnects and report the planner's placement verdicts")
	hgpus   = flag.Int("hybrid-gpus", 1, "GPU-arm fleet size for -hybrid and -explain")
	explain = flag.String("explain", "", "run this catalog query traced on the cpu, gpu and hybrid placements and print the EXPLAIN ANALYZE span trees")
	pcts    = flag.Bool("percentiles", false, "report p50/p95/p99 simulated latency per engine (means stay the gated metric)")
)

// packedFact is the shared packed encoding when -packed is set (built once,
// after any -cluster re-sort).
var packedFact *ssb.PackedFact

const paperSF = 20

func main() {
	flag.Parse()
	if *loadRun {
		// The load simulator brings its own small dataset and serving
		// stack; none of the paper-table machinery below applies.
		if err := runLoad(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if !(*fig3 || *fig16 || *case21 || *cost || *multi || *plans || *gpus > 0 || *hybrid ||
		*sqlStmt != "" || *explain != "" || *pcts) {
		*all = true
	}
	if *gpus > 0 {
		// Fail fast on a bad -interconnect, before minutes of dataset
		// generation and benchmark sections run for nothing.
		if _, err := fleet.ParseInterconnect(*link); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var ds *ssb.Dataset
	var err error
	if *dataset != "" {
		ds, err = ssb.Load(*dataset)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("generating SSB at SF %d...\n", *flagSF)
		ds = ssb.Generate(*flagSF)
	}
	if *cluster != "" {
		if !slices.Contains(ssb.FactColumns(), *cluster) {
			fmt.Fprintf(os.Stderr, "unknown -cluster column %q (fact columns: %s)\n",
				*cluster, strings.Join(ssb.FactColumns(), ", "))
			os.Exit(1)
		}
		fmt.Printf("clustering fact table by %s...\n", *cluster)
		ds = ds.ClusterBy(*cluster)
	}
	fmt.Printf("dataset: SF %d, %d fact rows, %.2f GB\n", ds.SF, ds.Lineorder.Rows(), float64(ds.Bytes())/1e9)
	if *parts > 0 {
		fmt.Printf("partitioned execution: %d zone-mapped morsels per scan\n", *parts)
	}
	if *packed {
		fmt.Print("packing fact columns...\n")
		packedFact = ds.Pack()
		fmt.Printf("compressed execution: %.2f GB packed (%.2fx)\n",
			float64(packedFact.Bytes())/1e9, packedFact.Ratio())
	}
	fmt.Println()

	// Times are extrapolated to SF 20 by scaling the fact-dependent portion.
	scaleTo := int64(paperSF) * ssb.LineorderPerSF
	scale := func(r *queries.Result) float64 {
		return bench.MS(bench.Scale(r.Seconds, int64(ds.Lineorder.Rows()), scaleTo))
	}

	if *all || *fig3 {
		runTable(ds, scale,
			"Figure 3: coprocessor evaluation, SSB extrapolated to SF 20 (ms)",
			[]queries.Engine{queries.EngineMonet, queries.EngineCoproc, queries.EngineHyper})
		fmt.Println("paper: GPU coprocessor 1.5x faster than MonetDB but 1.4x slower than Hyper;")
		fmt.Println("       every coprocessor query is bound by PCIe transfer time")
		fmt.Println()
	}
	if *all || *fig16 {
		tb := runTable(ds, scale,
			"Figure 16: standalone engines, SSB extrapolated to SF 20 (ms)",
			[]queries.Engine{queries.EngineHyper, queries.EngineCPU, queries.EngineOmnisci, queries.EngineGPU})
		// Same execution flags as the table above, so the ratio annotates
		// what is actually displayed (packed runs shift it: the CPU pays
		// unpack cycles while the GPU banks the traffic saving).
		var ratios []float64
		for _, q := range queries.All() {
			plan := queries.Compile(ds, q)
			ratios = append(ratios, exec(plan, queries.EngineCPU).Seconds/exec(plan, queries.EngineGPU).Seconds)
		}
		fmt.Printf("mean Standalone CPU / Standalone GPU ratio: %.1fx (paper: ~25x; bandwidth ratio 16.2x)\n", mean(ratios))
		fmt.Println("paper: Standalone CPU ~1.17x faster than Hyper; Standalone GPU ~16x faster than Omnisci")
		fmt.Println()
		_ = tb
	}
	if *all || *case21 {
		runCase21(ds, scale)
	}
	if *all || *cost {
		runCost(ds)
	}
	if *all || *multi {
		runMultiGPU(ds)
	}
	if *gpus > 0 {
		if err := runFleetSweep(ds, *gpus, *link); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *all || *hybrid {
		if err := runHybrid(ds, *hgpus); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *all || *plans {
		runPlans(ds)
	}
	if *parts > 0 {
		runPruneReport(ds, *parts)
	}
	if *packed {
		runPackedReport(ds)
	}
	if *pcts {
		runPercentiles(ds)
	}
	if *explain != "" {
		if err := runExplain(ds, *explain, *link, *hgpus); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *sqlStmt != "" {
		if err := runSQL(ds, scale, *sqlStmt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runExplain runs one catalog query traced through the unified scheduler
// on each placement and prints the EXPLAIN ANALYZE trees: the same span
// renderer ssbserve's /trace?format=text endpoint uses, so what a bench
// user reads locally is exactly what the service records in flight.
func runExplain(ds *ssb.Dataset, id, linkName string, gpuArms int) error {
	ic, err := fleet.ParseInterconnect(linkName)
	if err != nil {
		return err
	}
	q, err := queries.ByID(id)
	if err != nil {
		return err
	}
	bench.Banner(os.Stdout, fmt.Sprintf("EXPLAIN ANALYZE %s over %s (%d GPU arm(s))", q.ID, ic, gpuArms))
	plan := queries.Compile(ds, q)
	fl := fleet.Spec{GPUs: gpuArms, Link: ic}
	opts := runOpts()
	opts.Trace = true
	for _, pl := range []struct {
		name string
		frac float64
	}{{"cpu", 1}, {"gpu", 0}, {"hybrid", -1}} {
		hr, err := plan.RunHybrid(fl, pl.frac, opts)
		if err != nil {
			return err
		}
		tr := &trace.Trace{
			Query:        q.ID,
			Placement:    pl.name,
			GPUs:         hr.GPUs,
			Interconnect: hr.Interconnect,
			Sim:          hr.Result.Seconds,
			Wall:         hr.Trace.Wall,
			Root:         &trace.Span{Phase: trace.PhaseRequest, Children: []*trace.Span{hr.Trace}},
		}
		fmt.Print(trace.Render(tr))
		fmt.Println()
	}
	return nil
}

// runPercentiles prints the per-engine latency distribution over the 13
// catalog queries: the mean the bench tables gate on, then p50/p95/p99
// from the same log-bucketed histograms the serving layer exposes on
// /metrics. Gating (benchgate, BENCH_*.json) stays on means; the
// percentile columns are observability only.
func runPercentiles(ds *ssb.Dataset) {
	bench.Banner(os.Stdout, "per-engine latency percentiles, extrapolated to SF 20 (ms)")
	scaleTo := int64(paperSF) * ssb.LineorderPerSF
	hists := map[queries.Engine]*trace.Histogram{}
	sums := map[queries.Engine]float64{}
	for _, e := range queries.Engines() {
		hists[e] = &trace.Histogram{}
	}
	for _, q := range queries.All() {
		plan := queries.Compile(ds, q)
		for _, e := range queries.Engines() {
			sec := bench.Scale(exec(plan, e).Seconds, int64(ds.Lineorder.Rows()), scaleTo)
			hists[e].Observe(sec)
			sums[e] += sec
		}
	}
	tb := &bench.Table{Title: "simulated latency (ms)", Columns: []string{"mean", "p50", "p95", "p99"}, NoMean: true}
	for _, e := range queries.Engines() {
		h := hists[e]
		tb.AddRow(string(e),
			bench.MS(sums[e]/float64(h.Count())),
			bench.MS(h.Quantile(0.50)), bench.MS(h.Quantile(0.95)), bench.MS(h.Quantile(0.99)))
	}
	tb.Fprint(os.Stdout)
	fmt.Println("gating note: benchgate and the BENCH_*.json baselines compare means only;")
	fmt.Println("the simulation is seeded and deterministic, so percentiles add no gate signal")
	fmt.Println()
}

// runSQL compiles one ad-hoc statement through the SQL frontend, reorders
// its joins with the cost-based planner (payload order preserved), runs it
// on every engine and on every scheduler placement (cpu, gpu, fleet,
// hybrid), cross-checks the rows — order included for ORDER BY statements —
// and prints the result table.
func runSQL(ds *ssb.Dataset, scale func(*queries.Result) float64, stmt string) error {
	q, err := sqlfe.Compile(stmt)
	if err != nil {
		return err
	}
	q = planner.OptimizeGrouped(device.V100(), ds, q)
	bench.Banner(os.Stdout, "ad-hoc SQL ("+q.ID+"), extrapolated to SF 20")
	fmt.Printf("%s\n\n", q.Describe())

	tb := &bench.Table{Title: "engine times (ms)"}
	plan := queries.Compile(ds, q)
	var results []*queries.Result
	for _, e := range queries.Engines() {
		res := exec(plan, e)
		results = append(results, res)
		tb.Columns = append(tb.Columns, string(e))
	}
	var vals []float64
	for _, res := range results {
		vals = append(vals, scale(res))
	}
	tb.AddRow(q.ID, vals...)
	tb.Fprint(os.Stdout)

	for i, res := range results[1:] {
		if !res.Equal(results[0]) {
			return fmt.Errorf("engine %s disagrees with %s on the result rows",
				queries.Engines()[i+1], queries.Engines()[0])
		}
	}

	// The four scheduler placements must return the same rows in the same
	// order as the engines (fleet merges per-device sorted runs, hybrid
	// sorts host-side — both must land on the identical total order).
	ic, err := fleet.ParseInterconnect(*link)
	if err != nil {
		return err
	}
	fl := fleet.Spec{GPUs: max(*hgpus, 2), Link: ic}
	ptb := &bench.Table{Title: "placement times (ms)", Columns: []string{"cpu", "gpu", "fleet", "hybrid"}}
	var pvals []float64
	for _, pl := range []string{"cpu", "gpu", "fleet", "hybrid"} {
		var res *queries.Result
		switch pl {
		case "cpu":
			res = exec(plan, queries.EngineCPU)
		case "gpu":
			res = exec(plan, queries.EngineGPU)
		case "fleet":
			fr, err := plan.RunFleet(fl, runOpts())
			if err != nil {
				return err
			}
			res = fr.Result
		case "hybrid":
			hr, err := plan.RunHybrid(fl, -1, runOpts())
			if err != nil {
				return err
			}
			res = hr.Result
		}
		if !res.Equal(results[0]) {
			return fmt.Errorf("placement %s disagrees with the engines on the result rows", pl)
		}
		pvals = append(pvals, scale(res))
	}
	ptb.AddRow(q.ID, pvals...)
	ptb.Fprint(os.Stdout)

	rows := q.DecodeRows(results[0])
	fmt.Printf("\n%d result row(s):\n", len(rows))
	if len(rows) > 0 {
		var hdr strings.Builder
		for _, gp := range q.GroupPayloads() {
			fmt.Fprintf(&hdr, "%-14s", gp.Payload)
		}
		for _, s := range q.AggList() {
			fmt.Fprintf(&hdr, "%16s", s.SQL())
		}
		fmt.Println(hdr.String())
	}
	for _, r := range rows {
		for _, l := range r.Labels {
			fmt.Printf("%-14s", l)
		}
		for _, v := range r.Vals {
			fmt.Printf("%16d", v)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

// runPlans reproduces the Section 5.3 plan-selection exercise: every join
// order of q2.1 costed on both devices.
func runPlans(ds *ssb.Dataset) {
	bench.Banner(os.Stdout, "Section 5.3: cost-based join ordering for q2.1")
	q, err := queries.ByID("q2.1")
	if err != nil {
		panic(err)
	}
	for _, dev := range []*device.Spec{device.V100(), device.I76900()} {
		fmt.Printf("%s:\n", dev.Name)
		for i, p := range planner.Choose(dev, ds, q) {
			marker := " "
			if i == 0 {
				marker = "*"
			}
			fmt.Printf("  %s %s\n", marker, p.Describe())
		}
	}
	fmt.Println("on the GPU the planner lands on the paper's hand-picked supplier->part->date;")
	fmt.Println("on the CPU it prefers the most selective join (part) first, because dependent")
	fmt.Println("probes are latency bound and shrinking them early pays more than cache fit")
	fmt.Println()
}

// runFleetSweep runs every catalog query on fleets of 1..n GPUs (powers of
// two, plus n itself) over the chosen interconnect and reports per-query
// simulated milliseconds at SF 20, then the q1.x flight's speedup and
// scaling efficiency per fleet size. The -partitions and -packed flags
// apply; shards always fit the V100's 32 GB here, so no spill term shows.
func runFleetSweep(ds *ssb.Dataset, n int, linkName string) error {
	ic, err := fleet.ParseInterconnect(linkName)
	if err != nil {
		return err
	}
	var counts []int
	for k := 1; k < n; k *= 2 {
		counts = append(counts, k)
	}
	counts = append(counts, n)

	bench.Banner(os.Stdout, fmt.Sprintf("multi-GPU fleet sweep over %s, extrapolated to SF 20 (ms)", ic))
	scaleTo := int64(paperSF) * ssb.LineorderPerSF
	scale := func(sec float64) float64 {
		return bench.MS(bench.Scale(sec, int64(ds.Lineorder.Rows()), scaleTo))
	}
	tb := &bench.Table{Title: "fleet times (ms)"}
	for _, k := range counts {
		tb.Columns = append(tb.Columns, fmt.Sprintf("%d GPU(s)", k))
	}
	// flight[k] accumulates the q1.x flight's simulated seconds per count.
	flight := map[int]float64{}
	for _, q := range queries.All() {
		plan := queries.Compile(ds, q)
		var vals []float64
		for _, k := range counts {
			fr, err := plan.RunFleet(fleet.Spec{GPUs: k, Link: ic}, runOpts())
			if err != nil {
				return err
			}
			vals = append(vals, scale(fr.Result.Seconds))
			if strings.HasPrefix(q.ID, "q1.") {
				flight[k] += fr.Result.Seconds
			}
		}
		tb.AddRow(q.ID, vals...)
	}
	tb.Fprint(os.Stdout)

	fmt.Println("q1.x flight (scan bound — the purest scaling signal):")
	base := flight[counts[0]]
	for _, k := range counts {
		speedup := base / flight[k]
		fmt.Printf("  %2d GPU(s): %8.3f ms  %5.2fx speedup  %3.0f%% scaling efficiency\n",
			k, scale(flight[k]), speedup, speedup/float64(k)*100)
	}
	fmt.Println("merge and launch overheads bound the tail: each device pays its kernel")
	fmt.Println("launch and ships its partial aggregates, so efficiency falls with the fleet")
	fmt.Println()
	return nil
}

// runHybrid prints the hybrid CPU+GPU co-execution crossover: every
// catalog query priced and executed as pure CPU, pure GPU (host-resident —
// every referenced column ships per query) and the planner-split hybrid,
// on both interconnects, with planner.ChoosePlacement's verdict per query.
// On PCIe the shipment drowns the GPU arm and the planner stays on the
// CPU; on NVLink the hybrid split wins the scan-heavy flights.
func runHybrid(ds *ssb.Dataset, gpuArms int) error {
	scaleTo := int64(paperSF) * ssb.LineorderPerSF
	scale := func(sec float64) float64 {
		return bench.MS(bench.Scale(sec, int64(ds.Lineorder.Rows()), scaleTo))
	}
	for _, ic := range fleet.Interconnects() {
		bench.Banner(os.Stdout, fmt.Sprintf(
			"hybrid CPU+GPU co-execution over %s (%d GPU arm(s)), extrapolated to SF 20 (ms)", ic, gpuArms))
		tb := &bench.Table{Title: "placement times (ms)"}
		tb.Columns = []string{"cpu", "gpu", "hybrid"}
		fl := fleet.Spec{GPUs: gpuArms, Link: ic}
		verdicts := map[planner.Placement]int{}
		for _, q := range queries.All() {
			plan := queries.Compile(ds, q)
			var vals []float64
			for _, frac := range []float64{1, 0, -1} {
				hr, err := plan.RunHybrid(fl, frac, runOpts())
				if err != nil {
					return err
				}
				vals = append(vals, scale(hr.Result.Seconds))
			}
			nParts := *parts
			if nParts < gpuArms+1 {
				nParts = gpuArms + 1
			}
			choice, _, err := planner.ChoosePlacement(fl, ds, q, ds.Partition(nParts), packedFact)
			if err != nil {
				return err
			}
			verdicts[choice]++
			tb.AddRow(fmt.Sprintf("%-5s -> %s", q.ID, choice), vals...)
		}
		tb.Fprint(os.Stdout)
		fmt.Printf("planner verdicts: %d cpu, %d gpu, %d hybrid of %d queries\n\n",
			verdicts[planner.PlaceCPU], verdicts[planner.PlaceGPU], verdicts[planner.PlaceHybrid],
			len(queries.All()))
	}
	fmt.Println("hybrid wins only where the interconnect can feed the GPU arms: the PCIe")
	fmt.Println("shipment costs more than the CPU's direct scan (the paper's coprocessor")
	fmt.Println("verdict), while NVLink turns the same split into combined throughput")
	fmt.Println()
	return nil
}

// runMultiGPU prints the Section 5.5 "Distributed+Hybrid" extension: q2.1
// sharded across 1..8 V100s with replicated dimension tables.
func runMultiGPU(ds *ssb.Dataset) {
	bench.Banner(os.Stdout, "Section 5.5 extension: multi-GPU scaling (q2.1, fact table sharded)")
	q, err := queries.ByID("q2.1")
	if err != nil {
		panic(err)
	}
	plan := queries.Compile(ds, q)
	base := 0.0
	for _, k := range []int{1, 2, 4, 8} {
		res, err := plan.RunMultiGPU(k)
		if err != nil {
			panic(err)
		}
		if k == 1 {
			base = res.Seconds
		}
		fmt.Printf("  %d GPU(s): %8.3f ms  (%.2fx)\n", k, res.Milliseconds(), base/res.Seconds)
	}
	fmt.Println("scaling is sub-linear: dimension builds are replicated on every device")
	fmt.Println()
}

// exec runs one compiled plan on one engine, honoring the -partitions and
// -packed flags. With no pruning (the uniform layout) the partitioned
// times are identical to the monolithic ones; with -cluster they can only
// be cheaper; with -packed the rows stay identical while the simulated
// seconds reflect the compression asymmetry. Callers compile once per
// query so the hash-table builds and the plan's zone-map cache are shared
// across engines.
func exec(plan *queries.Plan, e queries.Engine) *queries.Result {
	return plan.RunPartitioned(e, runOpts())
}

// runOpts carries the -partitions and -packed flags into a run.
func runOpts() queries.RunOptions {
	opts := queries.RunOptions{}
	opts.Partition.Partitions = *parts
	opts.Partition.Packed = packedFact
	return opts
}

// runPackedReport summarizes the -packed encoding: per fact column, the
// frame-width range, the packed footprint and the compression ratio, plus
// the planner's packed-vs-plain scan verdict per device and the q1.1
// coprocessor transfer saving.
func runPackedReport(ds *ssb.Dataset) {
	bench.Banner(os.Stdout, "compressed execution (Section 5.5)")
	rows := ds.Lineorder.Rows()
	for _, col := range ssb.FactColumns() {
		fr := packedFact.Col(col)
		lo, hi := fr.WidthRange(0, rows)
		fmt.Printf("  %-11s %2d..%2d bits/frame  %8.2f MB packed  (%.2fx)\n",
			col, lo, hi, float64(fr.Bytes())/1e6, fr.Ratio())
	}
	q, err := queries.ByID("q1.1")
	if err != nil {
		panic(err)
	}
	var filterCols []string
	for _, f := range q.FactFilters {
		filterCols = append(filterCols, f.Col)
	}
	for _, dev := range []*device.Spec{device.V100(), device.I76900()} {
		plain := planner.ScanCost(dev, int64(rows), len(filterCols))
		pk := planner.ScanCostPacked(dev, packedFact, int64(rows), filterCols)
		verdict := "packed wins"
		if pk >= plain {
			verdict = "plain wins (unpack is compute bound)"
		}
		fmt.Printf("  q1.1 filter scan on %-14s plain %8.3f ms, packed %8.3f ms  -> %s\n",
			dev.Name, bench.MS(plain), bench.MS(pk), verdict)
	}
	plan := queries.Compile(ds, q)
	coldOpts := queries.RunOptions{}
	coldOpts.Partition.Packed = packedFact
	cold := plan.RunPartitioned(queries.EngineCoproc, coldOpts)
	plain := plan.Run(queries.EngineCoproc)
	// q1.1 joins no dimensions, so its whole transfer is fact columns the
	// residency cache can elide; queries with joins keep shipping their
	// (small) replicated dimension tables even when fully resident.
	fmt.Printf("  q1.1 coprocessor PCIe: %.2f MB plain -> %.2f MB packed -> 0 MB fully resident (planner: %.3f ms -> %.3f ms -> 0)\n",
		float64(plain.TransferBytes)/1e6, float64(cold.TransferBytes)/1e6,
		bench.MS(planner.TransferCost(plain.TransferBytes, 0)),
		bench.MS(planner.TransferCost(cold.TransferBytes, 0)))
	fmt.Println()
}

func runTable(ds *ssb.Dataset, scale func(*queries.Result) float64, title string, engines []queries.Engine) *bench.Table {
	tb := &bench.Table{Title: title}
	for _, e := range engines {
		tb.Columns = append(tb.Columns, string(e))
	}
	for _, q := range queries.All() {
		plan := queries.Compile(ds, q)
		var vals []float64
		for _, e := range engines {
			vals = append(vals, scale(exec(plan, e)))
		}
		tb.AddRow(q.ID, vals...)
	}
	tb.Fprint(os.Stdout)
	return tb
}

// runPruneReport summarizes what zone maps buy at the requested partition
// count: per query, the morsels pruned and the planner's monolithic vs
// pruning-aware cost on the GPU device.
func runPruneReport(ds *ssb.Dataset, n int) {
	bench.Banner(os.Stdout, fmt.Sprintf("zone-map pruning at %d morsels", n))
	morsels := ds.Partition(n)
	dev := device.V100()
	totalPruned, total := 0, 0
	for _, q := range queries.All() {
		pr := planner.PruneEstimate(morsels, q)
		mono := planner.Choose(dev, ds, q)[0].Seconds
		pruned := planner.ChoosePartitioned(dev, ds, q, morsels)[0].Seconds
		fmt.Printf("  %-5s %3d/%3d morsels pruned   plan cost %8.3f ms -> %8.3f ms\n",
			q.ID, pr.Pruned, pr.Morsels, bench.MS(mono), bench.MS(pruned))
		totalPruned += pr.Pruned
		total += pr.Morsels
	}
	fmt.Printf("total: %d/%d morsels pruned", totalPruned, total)
	if totalPruned == 0 {
		fmt.Printf(" (uniform layouts never prune; try -cluster orderdate)")
	}
	fmt.Println()
	fmt.Println()
}

func runCase21(ds *ssb.Dataset, scale func(*queries.Result) float64) {
	bench.Banner(os.Stdout, "Section 5.3 case study: SSB q2.1, extrapolated to SF 20")
	q, err := queries.ByID("q2.1")
	if err != nil {
		panic(err)
	}
	plan := queries.Compile(ds, q)
	gpuT := scale(plan.RunGPU())
	cpuT := scale(plan.RunCPU())
	p := model.SF20()
	gpuModel := bench.MS(model.Query21(device.V100(), p))
	cpuModel := bench.MS(model.Query21(device.I76900(), p))
	fmt.Printf("GPU: model %6.2f ms, measured %6.2f ms   (paper: 3.7 model, 3.86 measured)\n", gpuModel, gpuT)
	fmt.Printf("CPU: model %6.2f ms, measured %6.2f ms   (paper: 47 model, 125 measured)\n", cpuModel, cpuT)
	fmt.Println("the GPU tracks its bandwidth model; the CPU lands far above its model because")
	fmt.Println("chained join probes stall the pipeline (no latency hiding; Section 5.3)")
	fmt.Println()
}

func runCost(ds *ssb.Dataset) {
	bench.Banner(os.Stdout, "Section 5.4: cost comparison (Table 3)")
	var ratios []float64
	for _, q := range queries.All() {
		plan := queries.Compile(ds, q)
		ratios = append(ratios, plan.RunCPU().Seconds/plan.RunGPU().Seconds)
	}
	speedup := mean(ratios)
	c := bench.DefaultCost()
	fmt.Printf("renting: CPU $%.3f/h (r5.2xlarge), GPU $%.2f/h (p3.2xlarge), ratio %.1fx\n",
		c.CPURentPerHour, c.GPURentPerHour, c.Ratio())
	fmt.Printf("mean SSB speedup: %.1fx\n", speedup)
	fmt.Printf("GPU cost effectiveness: %.1fx better per dollar (paper: ~4x with 25x speedup)\n\n", c.Effectiveness(speedup))
}

func mean(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
