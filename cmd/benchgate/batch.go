package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"crystal/internal/loadgen"
	"crystal/internal/queries"
	"crystal/internal/serve"
	"crystal/internal/ssb"
)

// The batch baseline (BENCH_batch.json) holds the shared-scan batching
// gate. Its deterministic half prices the q1.x flight once solo and once as
// one shared-scan batch and records the simulated traffic split; every
// measurement re-proves row identity (each member's rows byte-identical to
// its solo run) and strict traffic subadditivity (the shared scan moves
// fewer bytes than the solo scans combined). Its wall-clock half re-runs
// the seeded 3x overload sweep with batching off and on against a service
// whose every execution pays a fixed delay, and gates that batching clears
// measurably more goodput — machine-dependent values are informational, the
// ratio is the invariant.
var flagBatchFile = flag.String("batch-file", "BENCH_batch.json", "shared-scan batching baseline file")

const (
	// batchRows is small enough that the fixed delay below dominates each
	// request's real execution; the batching win is paying that delay once
	// per shared scan, so the measurement must not be drowned by scan work.
	batchRows = 1 << 13
	// batchExecDelay is the fixed per-execution delay of the wall-clock
	// comparison: a batch pays it once for all members, solo traffic pays
	// it per request, so the goodput ratio isolates the batching win.
	batchExecDelay = 4 * time.Millisecond
	batchWorkers   = 2
	batchQueue     = 16
	batchMax       = 8
	// batchGoodputFloor is the minimum batching-on / batching-off goodput
	// ratio at 3x overload: well above scheduler noise, well below the
	// ratio healthy batch formation delivers.
	batchGoodputFloor = 1.1
)

// batchBaseline is the checked-in shared-scan batching document.
type batchBaseline struct {
	Rows       int      `json:"rows"`
	Partitions int      `json:"partitions"`
	Queries    []string `json:"queries"`
	// SharedScanBytes / SoloScanBytes and BatchSeconds / SoloSeconds are
	// the deterministic simulated costs of the flight batched vs solo.
	SharedScanBytes int64   `json:"shared_scan_bytes"`
	SoloScanBytes   int64   `json:"solo_scan_bytes"`
	BatchSeconds    float64 `json:"batch_seconds"`
	SoloSeconds     float64 `json:"solo_seconds"`
	// The wall-clock overload comparison (informational apart from the
	// on/off ratio): goodput at 3x of measured saturation with batching
	// off and on, and how many completions rode a batch.
	MaxBatch      int     `json:"max_batch"`
	ExecDelayMs   float64 `json:"exec_delay_ms"`
	OffGoodputQPS float64 `json:"off_goodput_qps"`
	OnGoodputQPS  float64 `json:"on_goodput_qps"`
	Batched       int64   `json:"batched"`
	Note          string  `json:"note"`
}

// measureBatch runs both halves of the batching gate. Row identity and
// traffic subadditivity are enforced here — at -write as much as at -check
// — so a baseline can never record a broken batch.
func measureBatch() (batchBaseline, error) {
	out := batchBaseline{
		Rows:        batchRows,
		Partitions:  hybridPartitions,
		Queries:     []string{"q1.1", "q1.2", "q1.3"},
		MaxBatch:    batchMax,
		ExecDelayMs: float64(batchExecDelay) / float64(time.Millisecond),
		Note:        "goodput values are informational (reference machine); the gate re-measures and checks the on/off ratio, row identity and traffic subadditivity",
	}
	ds := ssb.GenerateRows(batchRows)
	opts := queries.RunOptions{}
	opts.Partition.Partitions = hybridPartitions
	plans := make([]*queries.Plan, len(out.Queries))
	solos := make([]*queries.ScheduledResult, len(out.Queries))
	for i, id := range out.Queries {
		q, err := queries.ByID(id)
		if err != nil {
			return out, err
		}
		plans[i] = queries.Compile(ds, q)
		solos[i], err = plans[i].RunScheduled(plans[i].ScheduleEngine(queries.EngineGPU, opts))
		if err != nil {
			return out, err
		}
		out.SoloSeconds += solos[i].Result.Seconds
	}
	br, err := queries.RunBatch(plans, queries.EngineGPU, opts)
	if err != nil {
		return out, err
	}
	for i, m := range br.Members {
		if !m.Result.Equal(solos[i].Result) {
			return out, fmt.Errorf("batch member %s: rows differ from its solo run", out.Queries[i])
		}
	}
	out.SharedScanBytes = br.SharedScanBytes
	out.SoloScanBytes = br.SoloScanBytes
	out.BatchSeconds = br.Seconds
	if out.SharedScanBytes >= out.SoloScanBytes {
		return out, fmt.Errorf("shared scan %d bytes not strictly under solo sum %d: batching deduplicated nothing",
			out.SharedScanBytes, out.SoloScanBytes)
	}
	if out.BatchSeconds >= out.SoloSeconds {
		return out, fmt.Errorf("batch %.6fs not strictly under solo sum %.6fs", out.BatchSeconds, out.SoloSeconds)
	}

	newService := func(maxBatch int) func() *serve.Service {
		return func() *serve.Service {
			return serve.New(ds, "bench", serve.Options{
				Workers:    batchWorkers,
				QueueDepth: batchQueue,
				Shed:       true,
				// Tiny against the ad-hoc pool: replays stay rare, so the
				// comparison measures execution, not cache hits.
				ResultCacheSize: 8,
				MaxBatch:        maxBatch,
				ExecDelay:       batchExecDelay,
			})
		}
	}
	cfg := loadgen.Config{
		Seed:          serveSeed,
		AdhocFraction: 0.6,
		AdhocPool:     128,
		Deadline:      serveDeadline,
	}
	sweepOpts := loadgen.SweepOptions{Multipliers: []float64{3}, PhaseDuration: *flagServeDur}
	off, err := loadgen.RunSweep(context.Background(), newService(0), cfg, sweepOpts)
	if err != nil {
		return out, fmt.Errorf("batching-off sweep: %w", err)
	}
	on, err := loadgen.RunSweep(context.Background(), newService(batchMax), cfg, sweepOpts)
	if err != nil {
		return out, fmt.Errorf("batching-on sweep: %w", err)
	}
	out.OffGoodputQPS = off.Phases[0].GoodputQPS
	out.OnGoodputQPS = on.Phases[0].GoodputQPS
	out.Batched = on.Phases[0].Batched
	return out, nil
}

// checkBatch gates the fresh measurement: the deterministic costs against
// the baseline with the usual tolerance, and the wall-clock half on its
// shape invariants.
func checkBatch(base, cur batchBaseline) error {
	if base.Rows != cur.Rows || base.Partitions != cur.Partitions || base.MaxBatch != cur.MaxBatch {
		return fmt.Errorf("batch baseline shape changed (rows/partitions/maxbatch %d/%d/%d vs %d/%d/%d); re-baseline",
			base.Rows, base.Partitions, base.MaxBatch, cur.Rows, cur.Partitions, cur.MaxBatch)
	}
	if len(base.Queries) != len(cur.Queries) {
		return fmt.Errorf("batch query set changed (%d vs %d entries); re-baseline", len(cur.Queries), len(base.Queries))
	}
	gate := func(label string, got, want float64) error {
		if rel := (got - want) / want; rel > tolerance {
			return fmt.Errorf("REGRESSION at %s: %.6g vs baseline %.6g (+%.1f%%)", label, got, want, rel*100)
		}
		return nil
	}
	if err := gate("batched flight seconds", cur.BatchSeconds, base.BatchSeconds); err != nil {
		return err
	}
	if err := gate("batched flight scan bytes", float64(cur.SharedScanBytes), float64(base.SharedScanBytes)); err != nil {
		return err
	}
	if cur.Batched == 0 {
		return fmt.Errorf("3x overload with batching on batched nothing; formation never engaged")
	}
	if cur.OnGoodputQPS < batchGoodputFloor*cur.OffGoodputQPS {
		return fmt.Errorf("3x goodput with batching on (%.1f qps) not at least %.1fx batching off (%.1f qps)",
			cur.OnGoodputQPS, batchGoodputFloor, cur.OffGoodputQPS)
	}
	return nil
}

func printBatch(b batchBaseline) {
	fmt.Printf("  flight %v batched: scan %d -> %d bytes, %.6fs -> %.6fs simulated\n",
		b.Queries, b.SoloScanBytes, b.SharedScanBytes, b.SoloSeconds, b.BatchSeconds)
	fmt.Printf("  3x overload goodput: off %8.1f qps  on %8.1f qps (%d batched, delay %.0fms, cap %d)\n",
		b.OffGoodputQPS, b.OnGoodputQPS, b.Batched, b.ExecDelayMs, b.MaxBatch)
}
