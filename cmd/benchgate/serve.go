package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"crystal/internal/loadgen"
	"crystal/internal/serve"
	"crystal/internal/ssb"
)

// The serving baseline records wall-clock overload behavior — goodput and
// p99 at 1x and 10x of measured saturation, per scheduler placement — in
// BENCH_serve.json. Unlike the simulated-seconds gates, these numbers are
// machine-dependent, so the check does NOT compare them against the
// checked-in values: it re-measures and gates on shape invariants that
// hold on any machine — no congestion collapse (10x goodput stays within
// a factor of saturation), coalescing engages under overload, shedding
// engages and accounts for every refused request, and admitted p99 stays
// bounded by the deadline. The recorded values document the reference
// machine for humans reading the diff.
var (
	flagServeFile = flag.String("serve-file", "BENCH_serve.json", "serving overload baseline file")
	flagServeDur  = flag.Duration("serve-dur", time.Second, "open-loop phase span per multiplier")
)

// Serving-baseline shape: fixed knobs so the workload is identical across
// -write and -check runs apart from the machine's wall clock.
const (
	serveRows     = 1 << 14
	serveWorkers  = 4
	serveQueue    = 16
	serveSeed     = 2026
	serveDeadline = time.Second
	// collapseFloor is the minimum 10x-goodput / saturation-goodput ratio:
	// overload must not destroy throughput for the admitted work. Healthy
	// runs sit near or above 1.0 (cached completions are cheap); collapse
	// shows up as orders of magnitude, so the floor is deliberately loose.
	collapseFloor = 0.5
)

var serveMultipliers = []float64{1, 10}

// servePhase is one open-loop phase's record.
type servePhase struct {
	Multiplier   float64 `json:"multiplier"`
	Offered      int64   `json:"offered"`
	Completed    int64   `json:"completed"`
	Shed         int64   `json:"shed"`
	Expired      int64   `json:"expired"`
	Failed       int64   `json:"failed"`
	Coalesced    int64   `json:"coalesced"`
	GoodputQPS   float64 `json:"goodput_qps"`
	ShedRate     float64 `json:"shed_rate"`
	CoalesceRate float64 `json:"coalesce_rate"`
	P99Ms        float64 `json:"p99_ms"`
}

// servePlacement is one placement's sweep.
type servePlacement struct {
	Placement     string       `json:"placement"`
	SaturationQPS float64      `json:"saturation_qps"`
	Phases        []servePhase `json:"phases"`
}

// serveBaseline is the checked-in serving overload document.
type serveBaseline struct {
	Rows       int              `json:"rows"`
	Workers    int              `json:"workers"`
	QueueDepth int              `json:"queue_depth"`
	Seed       int64            `json:"seed"`
	DeadlineMs float64          `json:"deadline_ms"`
	Note       string           `json:"note"`
	Placements []servePlacement `json:"placements"`
}

func measureServe() (serveBaseline, error) {
	out := serveBaseline{
		Rows:       serveRows,
		Workers:    serveWorkers,
		QueueDepth: serveQueue,
		Seed:       serveSeed,
		DeadlineMs: float64(serveDeadline) / float64(time.Millisecond),
		Note:       "wall-clock values are informational (reference machine); the gate re-measures and checks shape invariants only",
	}
	ds := ssb.GenerateRows(serveRows)
	newService := func() *serve.Service {
		return serve.New(ds, "bench", serve.Options{
			Workers:    serveWorkers,
			QueueDepth: serveQueue,
			Shed:       true,
			// Smaller than the ad-hoc pool so the result cache churns and
			// coalescing windows persist past cold start.
			ResultCacheSize: 64,
		})
	}
	for _, placement := range []string{"cpu", "gpu", "hybrid"} {
		cfg := loadgen.Config{
			Seed:          serveSeed,
			AdhocFraction: 0.6,
			AdhocPool:     128,
			Placement:     placement,
			Deadline:      serveDeadline,
		}
		sweep, err := loadgen.RunSweep(context.Background(), newService, cfg, loadgen.SweepOptions{
			Multipliers:   serveMultipliers,
			PhaseDuration: *flagServeDur,
		})
		if err != nil {
			return out, fmt.Errorf("placement %s: %w", placement, err)
		}
		entry := servePlacement{Placement: placement, SaturationQPS: sweep.SaturationQPS}
		for _, r := range sweep.Phases {
			entry.Phases = append(entry.Phases, servePhase{
				Multiplier:   r.Multiplier,
				Offered:      r.Offered,
				Completed:    r.Completed,
				Shed:         r.Shed,
				Expired:      r.Expired,
				Failed:       r.Failed,
				Coalesced:    r.Coalesced,
				GoodputQPS:   r.GoodputQPS,
				ShedRate:     r.ShedRate,
				CoalesceRate: r.CoalesceRate,
				P99Ms:        float64(r.P99) / float64(time.Millisecond),
			})
		}
		out.Placements = append(out.Placements, entry)
	}
	return out, nil
}

// checkServe gates the freshly measured sweep on its shape invariants and
// verifies the baseline document still describes the same experiment.
func checkServe(base, cur serveBaseline) error {
	if base.Rows != cur.Rows || base.Workers != cur.Workers || base.QueueDepth != cur.QueueDepth || base.Seed != cur.Seed {
		return fmt.Errorf("serving baseline shape changed (rows/workers/queue/seed %d/%d/%d/%d vs %d/%d/%d/%d); re-baseline",
			base.Rows, base.Workers, base.QueueDepth, base.Seed, cur.Rows, cur.Workers, cur.QueueDepth, cur.Seed)
	}
	if len(base.Placements) != len(cur.Placements) {
		return fmt.Errorf("placement set changed (%d vs %d); re-baseline", len(cur.Placements), len(base.Placements))
	}
	for i, p := range cur.Placements {
		if b := base.Placements[i]; b.Placement != p.Placement {
			return fmt.Errorf("placement entry %d is %s, baseline has %s; re-baseline", i, p.Placement, b.Placement)
		}
		if p.SaturationQPS <= 0 {
			return fmt.Errorf("%s: no saturation throughput measured", p.Placement)
		}
		for _, ph := range p.Phases {
			label := fmt.Sprintf("%s at %.0fx", p.Placement, ph.Multiplier)
			if got := ph.Completed + ph.Shed + ph.Expired + ph.Failed; got != ph.Offered {
				return fmt.Errorf("%s: outcomes %d != offered %d (silent drop or double-send)", label, got, ph.Offered)
			}
			if ph.Failed != 0 {
				return fmt.Errorf("%s: %d requests failed outside the shed/expired protocol", label, ph.Failed)
			}
			if ph.Completed == 0 {
				return fmt.Errorf("%s: nothing completed", label)
			}
			if ph.Multiplier < 2 {
				continue
			}
			// Overload-phase invariants.
			if ph.Shed == 0 {
				return fmt.Errorf("%s: shed nothing; admission control is not engaging", label)
			}
			if ph.Coalesced == 0 {
				return fmt.Errorf("%s: coalesced nothing; single-flight is not engaging", label)
			}
			if ph.GoodputQPS < collapseFloor*p.SaturationQPS {
				return fmt.Errorf("%s: goodput %.1f qps collapsed below %.0f%% of saturation %.1f qps",
					label, ph.GoodputQPS, collapseFloor*100, p.SaturationQPS)
			}
			if maxP99 := 2 * base.DeadlineMs; ph.P99Ms > maxP99 {
				return fmt.Errorf("%s: admitted p99 %.1fms exceeds twice the %.0fms deadline", label, ph.P99Ms, base.DeadlineMs)
			}
		}
	}
	return nil
}

func printServe(b serveBaseline) {
	for _, p := range b.Placements {
		fmt.Printf("  %-7s saturation %8.1f qps\n", p.Placement, p.SaturationQPS)
		for _, ph := range p.Phases {
			fmt.Printf("    %4.0fx goodput %8.1f qps  shed %5.1f%%  coalesce %4.1f%% (%d)  p99 %8.1fms\n",
				ph.Multiplier, ph.GoodputQPS, 100*ph.ShedRate, 100*ph.CoalesceRate, ph.Coalesced, ph.P99Ms)
		}
	}
}
