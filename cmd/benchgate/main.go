// Command benchgate is the fleet benchmark-regression gate: it measures
// the q1.x flight's simulated seconds and scaling efficiency on NVLink
// fleets of 1/2/4/8 GPUs over a fixed generated dataset, and either writes
// the result as the checked-in baseline (-write, `make bench-baseline`) or
// compares against it and fails on regression (-check, `make bench-check`,
// wired into CI).
//
// Simulated seconds are deterministic — the device model prices integer
// traffic counts — so the gate is exact up to floating-point platform
// differences; the 5% tolerance exists to absorb intentional model tweaks,
// not measurement noise. A >5% simulated-seconds regression on any fleet
// size fails the check; improvements pass with a reminder to re-baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"crystal/internal/fleet"
	"crystal/internal/queries"
	"crystal/internal/ssb"
)

var (
	flagFile  = flag.String("file", "BENCH_fleet.json", "baseline file")
	flagRows  = flag.Int("rows", 1<<21, "fact rows of the fixed benchmark dataset")
	flagWrite = flag.Bool("write", false, "write the baseline")
	flagCheck = flag.Bool("check", false, "check against the baseline")
)

// tolerance is the allowed relative simulated-seconds regression.
const tolerance = 0.05

// gateEntry is one fleet size's measurement.
type gateEntry struct {
	GPUs int `json:"gpus"`
	// FlightSeconds is the q1.x flight's total simulated seconds.
	FlightSeconds float64 `json:"flight_seconds"`
	// Speedup is vs the 1-GPU fleet; Efficiency is Speedup/GPUs.
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// gateBaseline is the checked-in baseline document.
type gateBaseline struct {
	Rows         int         `json:"rows"`
	Interconnect string      `json:"interconnect"`
	TolerancePct float64     `json:"tolerance_pct"`
	Fleet        []gateEntry `json:"fleet"`
}

func measure(rows int) (gateBaseline, error) {
	ds := ssb.GenerateRows(rows)
	out := gateBaseline{Rows: rows, Interconnect: "nvlink", TolerancePct: tolerance * 100}
	flightIDs := []string{"q1.1", "q1.2", "q1.3"}
	plans := make([]*queries.Plan, len(flightIDs))
	for i, id := range flightIDs {
		q, err := queries.ByID(id)
		if err != nil {
			return out, err
		}
		plans[i] = queries.Compile(ds, q)
	}
	var base float64
	for _, gpus := range []int{1, 2, 4, 8} {
		var flight float64
		for _, plan := range plans {
			fr, err := plan.RunFleet(fleet.Spec{GPUs: gpus, Link: fleet.NVLink()}, queries.RunOptions{})
			if err != nil {
				return out, err
			}
			flight += fr.Result.Seconds
		}
		if gpus == 1 {
			base = flight
		}
		speedup := base / flight
		out.Fleet = append(out.Fleet, gateEntry{
			GPUs:          gpus,
			FlightSeconds: flight,
			Speedup:       speedup,
			Efficiency:    speedup / float64(gpus),
		})
	}
	return out, nil
}

func main() {
	flag.Parse()
	if *flagWrite == *flagCheck {
		fmt.Fprintln(os.Stderr, "benchgate: pass exactly one of -write or -check")
		os.Exit(2)
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run() error {
	if *flagCheck {
		return check()
	}
	cur, err := measure(*flagRows)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*flagFile, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, %s):\n", *flagFile, cur.Rows, cur.Interconnect)
	printEntries(cur.Fleet)
	return nil
}

func check() error {
	data, err := os.ReadFile(*flagFile)
	if err != nil {
		return fmt.Errorf("reading baseline (run `make bench-baseline` first): %w", err)
	}
	var base gateBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", *flagFile, err)
	}
	cur, err := measure(base.Rows)
	if err != nil {
		return err
	}
	fmt.Printf("checking against %s (%d rows, %s, %.0f%% tolerance):\n",
		*flagFile, base.Rows, base.Interconnect, base.TolerancePct)
	printEntries(cur.Fleet)
	if len(cur.Fleet) != len(base.Fleet) {
		return fmt.Errorf("fleet sizes changed (%d vs %d entries); re-baseline", len(cur.Fleet), len(base.Fleet))
	}
	failed := false
	improved := false
	for i, b := range base.Fleet {
		c := cur.Fleet[i]
		if c.GPUs != b.GPUs {
			return fmt.Errorf("fleet entry %d is %d GPUs, baseline has %d; re-baseline", i, c.GPUs, b.GPUs)
		}
		rel := (c.FlightSeconds - b.FlightSeconds) / b.FlightSeconds
		switch {
		case rel > tolerance:
			fmt.Printf("  REGRESSION at %d GPU(s): %.6fs vs baseline %.6fs (+%.1f%%)\n",
				c.GPUs, c.FlightSeconds, b.FlightSeconds, rel*100)
			failed = true
		case rel < -tolerance:
			improved = true
		}
	}
	if failed {
		return fmt.Errorf("q1.x flight regressed more than %.0f%% — investigate, or re-run `make bench-baseline` for an intentional model change", tolerance*100)
	}
	if improved {
		fmt.Println("improved more than 5% on some fleet size: consider `make bench-baseline` to lock it in")
	}
	fmt.Println("bench gate passed")
	return nil
}

func printEntries(es []gateEntry) {
	for _, e := range es {
		fmt.Printf("  %2d GPU(s): flight %.6fs  %5.2fx speedup  %3.0f%% efficiency\n",
			e.GPUs, e.FlightSeconds, e.Speedup, e.Efficiency*100)
	}
}
