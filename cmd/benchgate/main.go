// Command benchgate is the benchmark-regression gate: it measures the
// q1.x flight's simulated seconds on NVLink fleets of 1/2/4/8 GPUs and on
// the scheduler's host-resident placements (cpu, gpu, hybrid over both
// interconnects) against a fixed generated dataset, and either writes the
// results as the checked-in baselines (-write, `make bench-baseline`) or
// compares against them and fails on regression (-check, `make
// bench-check`, wired into CI).
//
// Simulated seconds are deterministic — the device model prices integer
// traffic counts — so the gate is exact up to floating-point platform
// differences; the 5% tolerance exists to absorb intentional model tweaks,
// not measurement noise. A >5% simulated-seconds regression on any fleet
// size or any placement fails the check; improvements pass with a reminder
// to re-baseline.
//
// It also maintains BENCH_sort.json, the ORDER BY / top-N placement
// baseline: top-5 ordered variants of one grouped query per flight, timed
// on the cpu (heap/merge), gpu (radix), fleet (per-device sorted runs,
// host k-way merge) and hybrid placements, gated with the same tolerance.
//
// It also maintains BENCH_serve.json, the wall-clock serving-overload
// baseline: goodput and p99 at 1x and 10x of measured saturation for the
// cpu, gpu and hybrid scheduler placements (see serve.go). Those values
// are machine-dependent, so -check re-measures and gates on shape
// invariants (no congestion collapse, coalescing and shedding engage,
// deadline-bounded p99) rather than comparing wall clocks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"crystal/internal/fleet"
	"crystal/internal/queries"
	"crystal/internal/ssb"
)

var (
	flagFile       = flag.String("file", "BENCH_fleet.json", "fleet baseline file")
	flagHybridFile = flag.String("hybrid-file", "BENCH_hybrid.json", "hybrid placement baseline file")
	flagSortFile   = flag.String("sort-file", "BENCH_sort.json", "ORDER BY / top-N placement baseline file")
	flagRows       = flag.Int("rows", 1<<21, "fact rows of the fixed benchmark dataset")
	flagWrite      = flag.Bool("write", false, "write the baselines")
	flagCheck      = flag.Bool("check", false, "check against the baselines")
)

// tolerance is the allowed relative simulated-seconds regression.
const tolerance = 0.05

// hybridPartitions is the morsel count of the placement measurements: fine
// enough that the balanced CPU fraction is honored (the crossover regime
// the planner's model is pinned on), matching TestHybridCrossover.
const hybridPartitions = 64

// gateEntry is one fleet size's measurement.
type gateEntry struct {
	GPUs int `json:"gpus"`
	// FlightSeconds is the q1.x flight's total simulated seconds.
	FlightSeconds float64 `json:"flight_seconds"`
	// Speedup is vs the 1-GPU fleet; Efficiency is Speedup/GPUs.
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// gateBaseline is the checked-in fleet baseline document.
type gateBaseline struct {
	Rows         int         `json:"rows"`
	Interconnect string      `json:"interconnect"`
	TolerancePct float64     `json:"tolerance_pct"`
	Fleet        []gateEntry `json:"fleet"`
}

// hybridEntry is one interconnect's placement measurement: the q1.x
// flight's total simulated seconds on each host-resident placement, all
// executed through the unified scheduler (a 1-GPU arm, 64 morsels).
type hybridEntry struct {
	Interconnect  string  `json:"interconnect"`
	CPUSeconds    float64 `json:"cpu_seconds"`
	GPUSeconds    float64 `json:"gpu_seconds"`
	HybridSeconds float64 `json:"hybrid_seconds"`
}

// hybridBaseline is the checked-in hybrid placement baseline document.
type hybridBaseline struct {
	Rows         int           `json:"rows"`
	Partitions   int           `json:"partitions"`
	TolerancePct float64       `json:"tolerance_pct"`
	Links        []hybridEntry `json:"links"`
}

// flightPlans compiles the q1.x flight against ds.
func flightPlans(ds *ssb.Dataset) ([]*queries.Plan, error) {
	flightIDs := []string{"q1.1", "q1.2", "q1.3"}
	plans := make([]*queries.Plan, len(flightIDs))
	for i, id := range flightIDs {
		q, err := queries.ByID(id)
		if err != nil {
			return nil, err
		}
		plans[i] = queries.Compile(ds, q)
	}
	return plans, nil
}

func measureFleet(ds *ssb.Dataset) (gateBaseline, error) {
	out := gateBaseline{Rows: ds.Lineorder.Rows(), Interconnect: "nvlink", TolerancePct: tolerance * 100}
	plans, err := flightPlans(ds)
	if err != nil {
		return out, err
	}
	var base float64
	for _, gpus := range []int{1, 2, 4, 8} {
		var flight float64
		for _, plan := range plans {
			fr, err := plan.RunFleet(fleet.Spec{GPUs: gpus, Link: fleet.NVLink()}, queries.RunOptions{})
			if err != nil {
				return out, err
			}
			flight += fr.Result.Seconds
		}
		if gpus == 1 {
			base = flight
		}
		speedup := base / flight
		out.Fleet = append(out.Fleet, gateEntry{
			GPUs:          gpus,
			FlightSeconds: flight,
			Speedup:       speedup,
			Efficiency:    speedup / float64(gpus),
		})
	}
	return out, nil
}

func measureHybrid(ds *ssb.Dataset) (hybridBaseline, error) {
	out := hybridBaseline{Rows: ds.Lineorder.Rows(), Partitions: hybridPartitions, TolerancePct: tolerance * 100}
	plans, err := flightPlans(ds)
	if err != nil {
		return out, err
	}
	opts := queries.RunOptions{}
	opts.Partition.Partitions = hybridPartitions
	for _, link := range fleet.Interconnects() {
		entry := hybridEntry{Interconnect: link.Name}
		fl := fleet.Spec{GPUs: 1, Link: link}
		for _, plan := range plans {
			// frac 1 = pure CPU, 0 = pure GPU, -1 = the balanced hybrid split.
			for _, m := range []struct {
				frac float64
				out  *float64
			}{{1, &entry.CPUSeconds}, {0, &entry.GPUSeconds}, {-1, &entry.HybridSeconds}} {
				hr, err := plan.RunHybrid(fl, m.frac, opts)
				if err != nil {
					return out, err
				}
				*m.out += hr.Result.Seconds
			}
		}
		out.Links = append(out.Links, entry)
	}
	return out, nil
}

// sortEntry is one grouped query's ORDER BY ... LIMIT measurement: the
// top-5 variant's total simulated seconds on each placement (cpu heap/merge,
// single-GPU radix, 4-GPU fleet sorted-run merge, balanced hybrid).
type sortEntry struct {
	Query         string  `json:"query"`
	CPUSeconds    float64 `json:"cpu_seconds"`
	GPUSeconds    float64 `json:"gpu_seconds"`
	FleetSeconds  float64 `json:"fleet_seconds"`
	HybridSeconds float64 `json:"hybrid_seconds"`
}

// sortBaseline is the checked-in ORDER BY baseline document.
type sortBaseline struct {
	Rows         int         `json:"rows"`
	FleetGPUs    int         `json:"fleet_gpus"`
	Limit        int         `json:"limit"`
	Partitions   int         `json:"partitions"`
	TolerancePct float64     `json:"tolerance_pct"`
	Queries      []sortEntry `json:"queries"`
}

// sortFleetGPUs is the device count of the fleet arm of the sort baseline:
// enough shards that the sorted-run merge is a real k-way merge.
const sortFleetGPUs = 4

// measureSort times top-5 ORDER BY variants of one grouped query per SSB
// flight (ORDER BY the aggregate descending, then the first group column)
// on every placement, through the same unified scheduler as the other
// baselines.
func measureSort(ds *ssb.Dataset) (sortBaseline, error) {
	out := sortBaseline{
		Rows: ds.Lineorder.Rows(), FleetGPUs: sortFleetGPUs, Limit: 5,
		Partitions: hybridPartitions, TolerancePct: tolerance * 100,
	}
	opts := queries.RunOptions{}
	opts.Partition.Partitions = hybridPartitions
	for _, id := range []string{"q2.1", "q3.1", "q4.1"} {
		q, err := queries.ByID(id)
		if err != nil {
			return out, err
		}
		q.OrderBy = []queries.OrderKey{{Item: 0, Desc: true}, {Item: -1, Group: 0}}
		q.Limit = out.Limit
		plan := queries.Compile(ds, q)
		entry := sortEntry{Query: id}
		fl := fleet.Spec{GPUs: 1, Link: fleet.NVLink()}
		for _, m := range []struct {
			frac float64
			out  *float64
		}{{1, &entry.CPUSeconds}, {0, &entry.GPUSeconds}, {-1, &entry.HybridSeconds}} {
			hr, err := plan.RunHybrid(fl, m.frac, opts)
			if err != nil {
				return out, err
			}
			*m.out = hr.Result.Seconds
		}
		fr, err := plan.RunFleet(fleet.Spec{GPUs: sortFleetGPUs, Link: fleet.NVLink()}, opts)
		if err != nil {
			return out, err
		}
		entry.FleetSeconds = fr.Result.Seconds
		out.Queries = append(out.Queries, entry)
	}
	return out, nil
}

func main() {
	flag.Parse()
	if *flagWrite == *flagCheck {
		fmt.Fprintln(os.Stderr, "benchgate: pass exactly one of -write or -check")
		os.Exit(2)
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func run() error {
	if *flagCheck {
		return check()
	}
	ds := ssb.GenerateRows(*flagRows)
	curFleet, err := measureFleet(ds)
	if err != nil {
		return err
	}
	if err := writeJSON(*flagFile, curFleet); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, %s):\n", *flagFile, curFleet.Rows, curFleet.Interconnect)
	printEntries(curFleet.Fleet)
	curHybrid, err := measureHybrid(ds)
	if err != nil {
		return err
	}
	if err := writeJSON(*flagHybridFile, curHybrid); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, %d morsels):\n", *flagHybridFile, curHybrid.Rows, curHybrid.Partitions)
	printHybrid(curHybrid.Links)
	curSort, err := measureSort(ds)
	if err != nil {
		return err
	}
	if err := writeJSON(*flagSortFile, curSort); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, top-%d, %d-GPU fleet):\n", *flagSortFile, curSort.Rows, curSort.Limit, curSort.FleetGPUs)
	printSort(curSort.Queries)
	curServe, err := measureServe()
	if err != nil {
		return err
	}
	if err := writeJSON(*flagServeFile, curServe); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, %d workers, queue %d):\n",
		*flagServeFile, curServe.Rows, curServe.Workers, curServe.QueueDepth)
	printServe(curServe)
	curBatch, err := measureBatch()
	if err != nil {
		return err
	}
	if err := writeJSON(*flagBatchFile, curBatch); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, %d morsels):\n", *flagBatchFile, curBatch.Rows, curBatch.Partitions)
	printBatch(curBatch)
	return nil
}

func check() error {
	data, err := os.ReadFile(*flagFile)
	if err != nil {
		return fmt.Errorf("reading baseline (run `make bench-baseline` first): %w", err)
	}
	var base gateBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", *flagFile, err)
	}
	hdata, err := os.ReadFile(*flagHybridFile)
	if err != nil {
		return fmt.Errorf("reading hybrid baseline (run `make bench-baseline` first): %w", err)
	}
	var hbase hybridBaseline
	if err := json.Unmarshal(hdata, &hbase); err != nil {
		return fmt.Errorf("parsing %s: %w", *flagHybridFile, err)
	}
	if hbase.Rows != base.Rows {
		return fmt.Errorf("baseline row counts disagree (%d fleet vs %d hybrid); re-baseline", base.Rows, hbase.Rows)
	}
	ds := ssb.GenerateRows(base.Rows)
	cur, err := measureFleet(ds)
	if err != nil {
		return err
	}
	fmt.Printf("checking against %s (%d rows, %s, %.0f%% tolerance):\n",
		*flagFile, base.Rows, base.Interconnect, base.TolerancePct)
	printEntries(cur.Fleet)
	if len(cur.Fleet) != len(base.Fleet) {
		return fmt.Errorf("fleet sizes changed (%d vs %d entries); re-baseline", len(cur.Fleet), len(base.Fleet))
	}
	failed := false
	improved := false
	gate := func(label string, got, want float64) {
		rel := (got - want) / want
		switch {
		case rel > tolerance:
			fmt.Printf("  REGRESSION at %s: %.6fs vs baseline %.6fs (+%.1f%%)\n", label, got, want, rel*100)
			failed = true
		case rel < -tolerance:
			improved = true
		}
	}
	for i, b := range base.Fleet {
		c := cur.Fleet[i]
		if c.GPUs != b.GPUs {
			return fmt.Errorf("fleet entry %d is %d GPUs, baseline has %d; re-baseline", i, c.GPUs, b.GPUs)
		}
		gate(fmt.Sprintf("%d GPU(s)", c.GPUs), c.FlightSeconds, b.FlightSeconds)
	}
	curH, err := measureHybrid(ds)
	if err != nil {
		return err
	}
	fmt.Printf("checking against %s (%d rows, %d morsels, %.0f%% tolerance):\n",
		*flagHybridFile, hbase.Rows, hbase.Partitions, hbase.TolerancePct)
	printHybrid(curH.Links)
	if len(curH.Links) != len(hbase.Links) {
		return fmt.Errorf("interconnect set changed (%d vs %d entries); re-baseline", len(curH.Links), len(hbase.Links))
	}
	for i, b := range hbase.Links {
		c := curH.Links[i]
		if c.Interconnect != b.Interconnect {
			return fmt.Errorf("link entry %d is %s, baseline has %s; re-baseline", i, c.Interconnect, b.Interconnect)
		}
		gate(c.Interconnect+" cpu placement", c.CPUSeconds, b.CPUSeconds)
		gate(c.Interconnect+" gpu placement", c.GPUSeconds, b.GPUSeconds)
		gate(c.Interconnect+" hybrid placement", c.HybridSeconds, b.HybridSeconds)
	}
	sdata0, err := os.ReadFile(*flagSortFile)
	if err != nil {
		return fmt.Errorf("reading sort baseline (run `make bench-baseline` first): %w", err)
	}
	var sortBase sortBaseline
	if err := json.Unmarshal(sdata0, &sortBase); err != nil {
		return fmt.Errorf("parsing %s: %w", *flagSortFile, err)
	}
	if sortBase.Rows != base.Rows {
		return fmt.Errorf("baseline row counts disagree (%d fleet vs %d sort); re-baseline", base.Rows, sortBase.Rows)
	}
	curSort, err := measureSort(ds)
	if err != nil {
		return err
	}
	fmt.Printf("checking against %s (%d rows, top-%d, %d-GPU fleet, %.0f%% tolerance):\n",
		*flagSortFile, sortBase.Rows, sortBase.Limit, sortBase.FleetGPUs, sortBase.TolerancePct)
	printSort(curSort.Queries)
	if len(curSort.Queries) != len(sortBase.Queries) {
		return fmt.Errorf("sort query set changed (%d vs %d entries); re-baseline", len(curSort.Queries), len(sortBase.Queries))
	}
	for i, b := range sortBase.Queries {
		c := curSort.Queries[i]
		if c.Query != b.Query {
			return fmt.Errorf("sort entry %d is %s, baseline has %s; re-baseline", i, c.Query, b.Query)
		}
		gate(c.Query+" ordered cpu", c.CPUSeconds, b.CPUSeconds)
		gate(c.Query+" ordered gpu", c.GPUSeconds, b.GPUSeconds)
		gate(c.Query+" ordered fleet", c.FleetSeconds, b.FleetSeconds)
		gate(c.Query+" ordered hybrid", c.HybridSeconds, b.HybridSeconds)
	}
	if failed {
		return fmt.Errorf("q1.x flight regressed more than %.0f%% — investigate, or re-run `make bench-baseline` for an intentional model change", tolerance*100)
	}
	if improved {
		fmt.Println("improved more than 5% on some fleet size or placement: consider `make bench-baseline` to lock it in")
	}
	sdata, err := os.ReadFile(*flagServeFile)
	if err != nil {
		return fmt.Errorf("reading serving baseline (run `make bench-baseline` first): %w", err)
	}
	var sbase serveBaseline
	if err := json.Unmarshal(sdata, &sbase); err != nil {
		return fmt.Errorf("parsing %s: %w", *flagServeFile, err)
	}
	curServe, err := measureServe()
	if err != nil {
		return err
	}
	fmt.Printf("checking %s overload invariants (%d rows, %d workers, queue %d; wall-clock values informational):\n",
		*flagServeFile, curServe.Rows, curServe.Workers, curServe.QueueDepth)
	printServe(curServe)
	if err := checkServe(sbase, curServe); err != nil {
		return err
	}
	bdata, err := os.ReadFile(*flagBatchFile)
	if err != nil {
		return fmt.Errorf("reading batch baseline (run `make bench-baseline` first): %w", err)
	}
	var bbase batchBaseline
	if err := json.Unmarshal(bdata, &bbase); err != nil {
		return fmt.Errorf("parsing %s: %w", *flagBatchFile, err)
	}
	curBatch, err := measureBatch()
	if err != nil {
		return err
	}
	fmt.Printf("checking %s shared-scan batching invariants (%d rows, %d morsels):\n",
		*flagBatchFile, curBatch.Rows, curBatch.Partitions)
	printBatch(curBatch)
	if err := checkBatch(bbase, curBatch); err != nil {
		return err
	}
	fmt.Println("bench gate passed")
	return nil
}

func printEntries(es []gateEntry) {
	for _, e := range es {
		fmt.Printf("  %2d GPU(s): flight %.6fs  %5.2fx speedup  %3.0f%% efficiency\n",
			e.GPUs, e.FlightSeconds, e.Speedup, e.Efficiency*100)
	}
}

func printHybrid(es []hybridEntry) {
	for _, e := range es {
		fmt.Printf("  %-6s cpu %.6fs  gpu %.6fs  hybrid %.6fs\n",
			e.Interconnect, e.CPUSeconds, e.GPUSeconds, e.HybridSeconds)
	}
}

func printSort(es []sortEntry) {
	for _, e := range es {
		fmt.Printf("  %-5s cpu %.6fs  gpu %.6fs  fleet %.6fs  hybrid %.6fs\n",
			e.Query, e.CPUSeconds, e.GPUSeconds, e.FleetSeconds, e.HybridSeconds)
	}
}
