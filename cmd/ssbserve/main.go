// Command ssbserve exposes the concurrent SSB query service over HTTP:
//
//	GET  /query?id=q2.1&engine=gpu  execute one catalog query on one engine
//	POST /sql?engine=gpu            execute an ad-hoc SQL statement (body)
//	GET  /sql?q=SELECT...&engine=gpu  same, statement in the query string
//	GET  /engines                   list engines and their aliases
//	GET  /stats                     cache hit rates, named vs ad-hoc traffic
//	GET  /metrics                   Prometheus text exposition (counters,
//	                                per-(engine,placement) latency histograms)
//	GET  /trace?id=t42              one recorded trace (&format=text renders
//	                                the EXPLAIN ANALYZE tree); without id,
//	                                the flight recorder's recent and slowest
//
// Both query endpoints accept &partitions=N to run the fact scan as N
// zone-mapped morsels: rows are identical to the monolithic run, morsels
// the filters cannot match are skipped (see pruned_morsels in the response
// and /stats), and the surviving morsels fan out across the service's
// bounded helper pool.
//
// Both also accept &packed=1 to scan the bit-packed fact encoding (built
// once per dataset): rows are identical, simulated seconds reflect the
// compression asymmetry, and coprocessor requests ship compressed bytes
// over PCIe — or none at all for columns the device residency cache holds
// (see resident_cols in the response and the device cache line in /stats).
// -devicecache sizes that cache; -devicecache -1 disables it.
//
// Both accept &gpus=N (&interconnect=pcie|nvlink) to run on the modeled
// multi-GPU fleet: the fact scan is range-sharded across N V100s, the
// partial aggregates merge over the chosen interconnect, and the response
// carries per-device telemetry (devices, merge_bytes). Fleet requests must
// use engine=gpu; rows are identical to single-device execution at any
// fleet size. -fleetmem constrains each fleet device's memory so shards
// spill (the graceful-degradation experiment).
//
// Both accept &placement=cpu|gpu|hybrid|auto to route through the unified
// scheduler over host-resident data: "cpu" runs the standalone CPU engine,
// "gpu" ships every referenced column to the fleet per query, "hybrid"
// co-executes CPU and GPU arms over a planner-split morsel set, and "auto"
// lets the planner's bytes-moved model choose (the response reports what
// it picked). &gpus=N sizes the GPU arm (default 1); leave engine unset.
// The response carries the resolved placement, the CPU arm's live-row
// share (cpu_frac) and per-executor telemetry (executors).
//
// Both accept &deadline= (a Go duration, e.g. 500ms) and &priority=N for
// admission control. With -shed, a submission past -queuedepth fails fast
// with HTTP 429 and a Retry-After header — unless a strictly
// lower-priority request is pending, which is evicted (429) to admit the
// newcomer. A request whose queue wait exceeds its deadline is dropped at
// worker pickup with HTTP 504, never executed. Without -shed a full queue
// applies backpressure instead. Concurrent identical requests coalesce
// into one execution ("coalesced" in the response and /stats).
//
// The service schedules requests across a bounded worker pool and caches
// SQL bindings, compiled plans and recent results, so repeated queries are
// served from memory while simulated engine times stay identical to a cold
// run. Plan and result caches key on the canonical form of the bound
// query, so any respelling of the same statement — whitespace, comments,
// filter order — hits the same entries.
//
//	ssbserve -sf 1 -workers 8 -addr :8080
//	curl 'localhost:8080/query?id=q2.1&engine=gpu'
//	curl -d "SELECT SUM(revenue), d_year FROM lineorder, date \
//	         WHERE lo_orderdate = d_datekey GROUP BY d_year" \
//	     'localhost:8080/sql?engine=gpu'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"crystal/internal/fleet"
	"crystal/internal/queries"
	"crystal/internal/serve"
	"crystal/internal/ssb"
	"crystal/internal/trace"
)

var (
	flagAddr     = flag.String("addr", ":8080", "listen address")
	flagSF       = flag.Int("sf", 1, "scale factor to generate")
	flagRows     = flag.Int("rows", 0, "generate exactly this many fact rows instead of -sf")
	flagWorkers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flagData     = flag.String("data", "", "load a dataset written by datagen instead of generating")
	flagDevCache = flag.Int64("devicecache", 0, "device residency cache capacity in bytes for packed columns (0 = the V100's 32 GB, negative = disabled)")
	flagFleetMem = flag.Int64("fleetmem", 0, "per-fleet-device memory capacity in bytes for &gpus=N requests (0 = the V100's 32 GB; small values make shards spill)")
	flagTrace    = flag.Bool("trace", true, "trace every request into the flight recorder (GET /trace); latency histograms on /metrics work either way")
	flagQueue    = flag.Int("queuedepth", 0, "pending-request queue depth (0 = 4x workers)")
	flagShed     = flag.Bool("shed", false, "shed load past the queue depth (HTTP 429) instead of blocking submissions")
	flagBatch    = flag.Int("maxbatch", 0, "shared-scan batch cap: at pickup a worker drains up to N-1 scan-compatible pending requests into one shared execution (0 or 1 = disabled)")
)

// retryAfterSeconds is the Retry-After hint on 429 responses: one second
// comfortably outlives a full queue drain at any realistic depth.
const retryAfterSeconds = "1"

func main() {
	flag.Parse()
	if *flagFleetMem < 0 {
		log.Fatal("-fleetmem must be >= 0 (0 = the V100's 32 GB; unlike -devicecache, negative does not mean disabled)")
	}

	var ds *ssb.Dataset
	var version string
	var err error
	switch {
	case *flagData != "":
		ds, err = ssb.Load(*flagData)
		if err != nil {
			log.Fatal(err)
		}
		version = *flagData
	case *flagRows > 0:
		ds = ssb.GenerateRows(*flagRows)
		version = fmt.Sprintf("rows%d", *flagRows)
	default:
		ds = ssb.Generate(*flagSF)
		version = fmt.Sprintf("sf%d", *flagSF)
	}
	log.Printf("dataset %s: %d fact rows, %.2f GB", version, ds.Lineorder.Rows(), float64(ds.Bytes())/1e9)

	svc := serve.New(ds, version, serve.Options{
		Workers:                *flagWorkers,
		QueueDepth:             *flagQueue,
		Shed:                   *flagShed,
		DeviceCacheBytes:       *flagDevCache,
		FleetDeviceMemoryBytes: *flagFleetMem,
		Trace:                  *flagTrace,
		MaxBatch:               *flagBatch,
	})
	log.Printf("serving on %s with %d workers", *flagAddr, svc.Workers())

	srv := &http.Server{
		Addr:              *flagAddr,
		Handler:           newMux(svc),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	err = srv.ListenAndServe()
	// Shutdown (or a listener error) stops accepting; drain the pool before
	// exiting so in-flight queries finish.
	svc.Close()
	if !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// newMux routes the server's endpoints; split from main so the metrics
// smoke test can drive the exact handler set the binary serves.
func newMux(svc *serve.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", handleQuery(svc))
	mux.HandleFunc("/sql", handleSQL(svc))
	mux.HandleFunc("/engines", handleEngines)
	mux.HandleFunc("/stats", handleStats(svc))
	mux.HandleFunc("/metrics", handleMetrics(svc))
	mux.HandleFunc("/trace", handleTrace(svc))
	return mux
}

// queryResponse is the JSON shape of one /query or /sql result.
type queryResponse struct {
	Query        string  `json:"query"`
	Engine       string  `json:"engine"`
	Version      string  `json:"version"`
	Adhoc        bool    `json:"adhoc"`
	Rows         [][]any `json:"rows"`
	SimMS        float64 `json:"sim_ms"`
	WallMS       float64 `json:"wall_ms"`
	PlanCached   bool    `json:"plan_cached"`
	ResultCached bool    `json:"result_cached"`
	// Coalesced marks a response that shared a concurrent identical
	// request's execution (single-flight) rather than running itself.
	Coalesced bool `json:"coalesced,omitempty"`
	// Batched marks a response that rode a shared-scan batch of
	// BatchSize scan-compatible requests; BatchShareMS is its apportioned
	// share of the batch's simulated time (sim_ms stays solo-identical).
	Batched      bool    `json:"batched,omitempty"`
	BatchSize    int     `json:"batch_size,omitempty"`
	BatchShareMS float64 `json:"batch_share_ms,omitempty"`
	// Partitions echoes the requested morsel count; Morsels and
	// PrunedMorsels report how many the scan was split into and how many
	// zone maps skipped.
	Partitions    int `json:"partitions,omitempty"`
	Morsels       int `json:"morsels"`
	PrunedMorsels int `json:"pruned_morsels"`
	// Packed reports whether the bit-packed fact encoding was scanned;
	// TransferBytes is the PCIe traffic a coprocessor run shipped (or, for
	// fleet runs, the spilled-shard interconnect traffic) and ResidentCols
	// the column transfers residency caches elided.
	Packed        bool  `json:"packed,omitempty"`
	TransferBytes int64 `json:"transfer_bytes,omitempty"`
	ResidentCols  int   `json:"resident_cols,omitempty"`
	// GPUs/Interconnect echo the fleet shape of a &gpus=N request; Devices
	// carries its per-device telemetry and MergeBytes the partial-aggregate
	// traffic that crossed the interconnect.
	GPUs         int                   `json:"gpus,omitempty"`
	Interconnect string                `json:"interconnect,omitempty"`
	Devices      []queries.FleetDevice `json:"devices,omitempty"`
	MergeBytes   int64                 `json:"merge_bytes,omitempty"`
	// Placement is the resolved placement of a &placement= request ("auto"
	// reports what the planner chose), CPUFrac the live-row share its CPU
	// arm scanned, and Executors the per-executor telemetry.
	Placement string                   `json:"placement,omitempty"`
	CPUFrac   float64                  `json:"cpu_frac,omitempty"`
	Executors []queries.ExecutorResult `json:"executors,omitempty"`
	// TraceID is the flight-recorder handle of this request's trace when
	// the server traces (-trace): GET /trace?id=<TraceID> replays it.
	TraceID string `json:"trace_id,omitempty"`
}

func handleQuery(svc *serve.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			httpError(w, http.StatusBadRequest, errors.New("missing ?id= (try q2.1)"))
			return
		}
		serveRequest(svc, w, r, serve.Request{
			QueryID: id,
			Engine:  queries.Engine(r.URL.Query().Get("engine")),
		})
	}
}

// handleSQL executes an ad-hoc statement: POST with the statement as the
// request body (or form field "q"), or GET with ?q=.
func handleSQL(svc *serve.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		stmt := r.URL.Query().Get("q")
		if stmt == "" && r.Method == http.MethodPost {
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			stmt = string(body)
			// Accept form posts (curl --data-urlencode q=...) as well as a
			// raw statement body.
			if vals, err := url.ParseQuery(stmt); err == nil && vals.Get("q") != "" {
				stmt = vals.Get("q")
			}
		}
		if strings.TrimSpace(stmt) == "" {
			httpError(w, http.StatusBadRequest, errors.New("missing SQL statement: POST it as the body or pass ?q="))
			return
		}
		serveRequest(svc, w, r, serve.Request{
			SQL:    stmt,
			Engine: queries.Engine(r.URL.Query().Get("engine")),
		})
	}
}

// serveRequest runs one request through the service and writes the shared
// JSON response shape.
func serveRequest(svc *serve.Service, w http.ResponseWriter, r *http.Request, req serve.Request) {
	if v := r.URL.Query().Get("nocache"); v != "" {
		noCache, err := strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad nocache value %q: want a boolean", v))
			return
		}
		req.NoCache = noCache
	}
	if v := r.URL.Query().Get("partitions"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad partitions value %q: want a non-negative integer", v))
			return
		}
		req.Partitions = n
	}
	if v := r.URL.Query().Get("packed"); v != "" {
		packed, err := strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad packed value %q: want a boolean", v))
			return
		}
		req.Packed = packed
	}
	if v := r.URL.Query().Get("gpus"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad gpus value %q: want a non-negative integer", v))
			return
		}
		req.GPUs = n
	}
	if v := r.URL.Query().Get("placement"); v != "" {
		p, err := serve.ParsePlacement(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		req.Placement = p
	}
	if v := r.URL.Query().Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad deadline value %q: want a positive duration like 500ms", v))
			return
		}
		req.Deadline = d
	}
	if v := r.URL.Query().Get("priority"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad priority value %q: want an integer (higher preempts lower when shedding)", v))
			return
		}
		req.Priority = p
	}
	if v := r.URL.Query().Get("interconnect"); v != "" {
		// Validate eagerly, like every other parameter — and refuse the
		// combination that would otherwise silently run on one device.
		if _, err := fleet.ParseInterconnect(v); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if req.GPUs == 0 && req.Placement == "" {
			httpError(w, http.StatusBadRequest, errors.New("interconnect requires a fleet or a placement: pass gpus=N or placement= as well"))
			return
		}
		req.Interconnect = v
	}
	resp, err := svc.Do(r.Context(), req)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, serve.ErrOverloaded):
			// Shed by admission control: the client should back off and
			// retry; Retry-After carries the hint.
			w.Header().Set("Retry-After", retryAfterSeconds)
			status = http.StatusTooManyRequests
		case errors.Is(err, serve.ErrExpired):
			// Admitted but its deadline lapsed in the queue; never executed.
			status = http.StatusGatewayTimeout
		case errors.Is(err, r.Context().Err()):
			status = http.StatusRequestTimeout
		case resp.Err != nil:
			status = http.StatusBadRequest
		}
		httpError(w, status, err)
		return
	}
	out := queryResponse{
		Query:         resp.Query.ID,
		Engine:        string(resp.Request.Engine),
		Version:       resp.Version,
		Adhoc:         resp.Adhoc,
		Rows:          decodeRows(resp.Query, resp.Result),
		SimMS:         resp.SimSeconds * 1e3,
		WallMS:        float64(resp.Wall) / float64(time.Millisecond),
		PlanCached:    resp.PlanCached,
		ResultCached:  resp.ResultCached,
		Coalesced:     resp.Coalesced,
		Batched:       resp.Batched,
		BatchSize:     resp.BatchSize,
		BatchShareMS:  resp.BatchShareSeconds * 1e3,
		Partitions:    resp.Request.Partitions,
		Morsels:       resp.Morsels,
		PrunedMorsels: resp.Pruned,
		Packed:        resp.Packed,
		TransferBytes: resp.TransferBytes,
		ResidentCols:  resp.ResidentCols,
		GPUs:          resp.GPUs,
		Interconnect:  resp.Interconnect,
		Devices:       resp.Devices,
		MergeBytes:    resp.MergeBytes,
		Placement:     resp.Placement,
		CPUFrac:       resp.CPUFrac,
		Executors:     resp.Executors,
		TraceID:       resp.TraceID,
	}
	writeJSON(w, out)
}

// decodeRows unpacks the result's packed group keys into per-payload
// columns followed by every aggregate value of the statement — in statement
// order for ORDER BY results (LIMIT already applied), group-key order
// otherwise.
func decodeRows(q queries.Query, res *queries.Result) [][]any {
	n := len(q.GroupPayloads())
	rows := q.DecodeRows(res)
	out := make([][]any, 0, len(rows))
	for _, r := range rows {
		row := make([]any, 0, n+len(r.Vals))
		for _, l := range r.Labels {
			row = append(row, l)
		}
		for _, v := range r.Vals {
			row = append(row, v)
		}
		out = append(out, row)
	}
	return out
}

type engineInfo struct {
	Alias string `json:"alias"`
	Name  string `json:"name"`
}

func handleEngines(w http.ResponseWriter, _ *http.Request) {
	var out []engineInfo
	for _, e := range queries.Engines() {
		out = append(out, engineInfo{Alias: serve.EngineAlias(e), Name: string(e)})
	}
	writeJSON(w, out)
}

func handleStats(svc *serve.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st := svc.Stats()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "dataset %s, %d workers, %d requests (%d named, %d ad-hoc, %d errors)\n",
				st.Version, st.Workers, st.Requests, st.NamedRequests, st.AdhocRequests, st.Errors)
			fmt.Fprintf(w, "plan cache:   %.0f%% hit rate, %d entries\n",
				st.PlanHitRate*100, st.CachedPlans)
			fmt.Fprintf(w, "result cache: %.0f%% hit rate, %d entries\n",
				st.ResultHitRate*100, st.CachedResults)
			fmt.Fprintf(w, "partitioned:  %d requests, %d/%d morsels pruned (%.0f%%)\n",
				st.PartitionedRequests, st.PrunedMorsels, st.Morsels, st.PruneRate*100)
			fmt.Fprintf(w, "packed:       %d requests, %.2f MB shipped over PCIe, %d column transfers elided\n",
				st.PackedRequests, float64(st.TransferBytes)/1e6, st.ResidentCols)
			fmt.Fprintf(w, "fleet:        %d requests, %d morsels (%d pruned), %.2f MB spilled, %d spill transfers elided, %.2f MB merged\n",
				st.FleetRequests, st.FleetMorsels, st.FleetPruned,
				float64(st.FleetSpillBytes)/1e6, st.FleetResidentCols, float64(st.FleetMergeBytes)/1e6)
			for _, d := range st.FleetDevices {
				fmt.Fprintf(w, "  gpu %-2d      %d requests, %d morsels, %d rows, %.3f sim ms, %.2f MB spilled\n",
					d.Device, d.Requests, d.Morsels, d.Rows, d.SimSeconds*1e3, float64(d.SpillBytes)/1e6)
			}
			fmt.Fprintf(w, "placement:    %d requests (%s), %d morsels (%d pruned), %.2f MB shipped, %.2f MB merged\n",
				st.HybridRequests, placementTally(st.PlacementRequests),
				st.HybridMorsels, st.HybridPruned,
				float64(st.HybridShipBytes)/1e6, float64(st.HybridMergeBytes)/1e6)
			for _, ex := range st.HybridExecutors {
				fmt.Fprintf(w, "  %-11s %d requests, %d morsels, %d rows, %.3f sim ms, %.2f MB shipped\n",
					ex.Label, ex.Requests, ex.Morsels, ex.Rows, ex.SimSeconds*1e3, float64(ex.ShipBytes)/1e6)
			}
			if st.DeviceCacheCapBytes > 0 {
				fmt.Fprintf(w, "device cache: %d columns, %.2f/%.2f GB pinned, %.0f%% hit rate, %d evictions\n\n",
					st.DeviceCacheCols, float64(st.DeviceCacheUsedBytes)/1e9,
					float64(st.DeviceCacheCapBytes)/1e9, st.ResidencyHitRate*100, st.ResidentEvictions)
			} else {
				fmt.Fprintf(w, "device cache: disabled\n\n")
			}
			st.Table().Fprint(w)
			return
		}
		writeJSON(w, st)
	}
}

// handleMetrics serves the Prometheus text exposition: every service
// counter plus the per-(engine, placement) latency histograms, rendered
// from one consistent snapshot of the stats accumulator.
func handleMetrics(svc *serve.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := svc.WriteMetrics(w); err != nil {
			log.Printf("writing metrics: %v", err)
		}
	}
}

// traceSummary is one flight-recorder entry in the /trace listing.
type traceSummary struct {
	ID        string  `json:"id"`
	Query     string  `json:"query"`
	Engine    string  `json:"engine,omitempty"`
	Placement string  `json:"placement,omitempty"`
	Cached    bool    `json:"cached,omitempty"`
	SimMS     float64 `json:"sim_ms"`
	WallMS    float64 `json:"wall_ms"`
}

func summarize(ts []*trace.Trace) []traceSummary {
	out := make([]traceSummary, 0, len(ts))
	for _, t := range ts {
		out = append(out, traceSummary{
			ID:        t.ID,
			Query:     t.Query,
			Engine:    t.Engine,
			Placement: t.Placement,
			Cached:    t.Cached,
			SimMS:     t.Sim * 1e3,
			WallMS:    float64(t.Wall) / float64(time.Millisecond),
		})
	}
	return out
}

// handleTrace serves the flight recorder: ?id= replays one trace (JSON,
// or the EXPLAIN ANALYZE tree with &format=text); without an id it lists
// the recent and slowest retained traces.
func handleTrace(svc *serve.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := svc.TraceRecorder()
		if rec == nil {
			httpError(w, http.StatusNotFound, errors.New("tracing is disabled: restart with -trace"))
			return
		}
		id := r.URL.Query().Get("id")
		if id == "" {
			writeJSON(w, map[string]any{
				"recent":  summarize(rec.Recent()),
				"slowest": summarize(rec.Slowest()),
			})
			return
		}
		tr := rec.Get(id)
		if tr == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("trace %q not found (evicted or never recorded)", id))
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, trace.Render(tr))
			return
		}
		writeJSON(w, tr)
	}
}

// placementTally renders the per-placement request counts ("auto"
// requests count under what the planner chose) in a stable order.
func placementTally(counts map[string]int64) string {
	if len(counts) == 0 {
		return "none"
	}
	var parts []string
	for _, p := range []string{serve.PlacementCPU, serve.PlacementGPU, serve.PlacementHybrid} {
		if n := counts[p]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, p))
		}
	}
	return strings.Join(parts, ", ")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
