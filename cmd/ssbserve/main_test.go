package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crystal/internal/serve"
	"crystal/internal/ssb"
	"crystal/internal/trace"
)

// TestMetricsSmoke is the end-to-end observability smoke test (make
// metrics-smoke): boot the real handler set, drive mixed traffic through
// /query, then scrape /metrics and validate the exposition, follow a
// trace_id through /trace in both formats, and check the no-id listing.
func TestMetricsSmoke(t *testing.T) {
	svc := serve.New(ssb.GenerateRows(1<<12), "smoke", serve.Options{Workers: 2, Trace: true})
	defer svc.Close()
	srv := httptest.NewServer(newMux(svc))
	defer srv.Close()

	get := func(path string, wantStatus int) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d\n%s", path, resp.StatusCode, wantStatus, body)
		}
		return string(body)
	}

	var lastTraceID string
	for _, path := range []string{
		"/query?id=q1.1&engine=cpu",
		"/query?id=q2.1&engine=gpu&gpus=2&partitions=8",
		"/query?id=q4.1&placement=hybrid&gpus=2&interconnect=nvlink",
		"/query?id=q1.1&engine=cpu", // result-cache hit
	} {
		var qr queryResponse
		if err := json.Unmarshal([]byte(get(path, http.StatusOK)), &qr); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if qr.TraceID == "" {
			t.Fatalf("GET %s: no trace_id in response", path)
		}
		lastTraceID = qr.TraceID
	}

	// /metrics: valid exposition with the latency histogram grid.
	metrics := get("/metrics", http.StatusOK)
	if err := trace.Validate(metrics); err != nil {
		t.Fatalf("invalid /metrics exposition: %v", err)
	}
	for _, want := range []string{
		"# TYPE ssb_requests_total counter",
		"# TYPE ssb_request_wall_seconds histogram",
		`engine="cpu",placement="classic"`,
		`placement="hybrid"`,
		`le="+Inf"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /trace?id=: the JSON trace round-trips, the text format renders the
	// EXPLAIN ANALYZE tree.
	var tr trace.Trace
	if err := json.Unmarshal([]byte(get("/trace?id="+lastTraceID, http.StatusOK)), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != lastTraceID || tr.Root == nil {
		t.Fatalf("trace %s round-tripped wrong: %+v", lastTraceID, tr)
	}
	text := get("/trace?id="+lastTraceID+"&format=text", http.StatusOK)
	if !strings.Contains(text, "q1.1") || !strings.Contains(text, "└─") {
		t.Errorf("text trace missing tree rendering:\n%s", text)
	}

	// /trace without id lists the recorder's retained traces.
	var listing struct {
		Recent  []traceSummary `json:"recent"`
		Slowest []traceSummary `json:"slowest"`
	}
	if err := json.Unmarshal([]byte(get("/trace", http.StatusOK)), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Recent) != 4 || len(listing.Slowest) == 0 {
		t.Errorf("listing has %d recent / %d slowest, want 4 / >0",
			len(listing.Recent), len(listing.Slowest))
	}

	get("/trace?id=t999", http.StatusNotFound)
}

// TestOverloadHTTP pins the admission-control HTTP mapping on a shedding
// single-worker service: a request storm yields only 200s and 429s (each
// 429 carrying Retry-After), an unmeetable deadline maps to 504 without
// executing, and malformed deadline/priority parameters are 400s.
func TestOverloadHTTP(t *testing.T) {
	// ExecDelay pins every uncached execution to 2ms so the storm below
	// must overrun a depth-1 queue on any machine, not drain it.
	svc := serve.New(ssb.GenerateRows(1<<12), "overload", serve.Options{
		Workers: 1, QueueDepth: 1, Shed: true, ExecDelay: 2 * time.Millisecond,
	})
	defer svc.Close()
	srv := httptest.NewServer(newMux(svc))
	defer srv.Close()

	const storm = 30
	statuses := make([]int, storm)
	retryAfter := make([]string, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/query?id=q4.1&engine=cpu&nocache=1&priority=1")
			if err != nil {
				t.Errorf("storm request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Error("429 response missing its Retry-After header")
			}
		default:
			t.Errorf("storm request %d: status %d, want 200 or 429", i, st)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("storm of %d against a depth-1 queue: %d ok / %d shed, want both nonzero", storm, ok, shed)
	}
	st := svc.Stats()
	if st.Shed != int64(shed) {
		t.Errorf("stats recorded %d shed, HTTP clients observed %d 429s", st.Shed, shed)
	}

	// A deadline no queue wait can meet: dropped at pickup, 504, and the
	// response body names the expiry.
	resp, err := http.Get(srv.URL + "/query?id=q1.1&engine=cpu&nocache=1&deadline=1ns")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("unmeetable deadline: status %d, want 504\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline expired") {
		t.Errorf("504 body does not name the expiry: %s", body)
	}

	for _, path := range []string{
		"/query?id=q1.1&deadline=banana",
		"/query?id=q1.1&deadline=-1s",
		"/query?id=q1.1&priority=high",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestEvictionHTTP pins accounting parity on the HTTP surface for the
// OTHER shed path: a queued victim evicted by a higher-priority arrival
// must observe exactly what a refused newcomer observes — 429 with a
// Retry-After header — and increment the same shed counter.
func TestEvictionHTTP(t *testing.T) {
	svc := serve.New(ssb.GenerateRows(1<<12), "evict", serve.Options{
		Workers: 1, QueueDepth: 1, Shed: true, ExecDelay: 200 * time.Millisecond,
	})
	defer svc.Close()
	srv := httptest.NewServer(newMux(svc))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return 0, ""
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}
	waitPending := func(n int) {
		t.Helper()
		for i := 0; i < 2000; i++ {
			if svc.Stats().Pending == n {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("queue never reached %d pending", n)
	}

	var wg sync.WaitGroup
	results := make([]int, 2)
	var victimRetry string
	wg.Add(1)
	go func() { // occupies the worker for ExecDelay
		defer wg.Done()
		st, _ := get("/query?id=q1.1&engine=cpu&nocache=1")
		if st != http.StatusOK {
			t.Errorf("blocker: status %d, want 200", st)
		}
	}()
	waitPending(0) // picked up; the queue slot below is the only one
	time.Sleep(20 * time.Millisecond)
	wg.Add(1)
	go func() { // the victim: queued at priority 1
		defer wg.Done()
		results[0], victimRetry = get("/query?id=q1.2&engine=cpu&priority=1")
	}()
	waitPending(1)
	wg.Add(1)
	go func() { // priority 2 evicts the victim and takes its slot
		defer wg.Done()
		results[1], _ = get("/query?id=q1.3&engine=cpu&priority=2")
	}()
	wg.Wait()

	if results[0] != http.StatusTooManyRequests {
		t.Errorf("evicted victim: status %d, want 429", results[0])
	}
	if victimRetry == "" {
		t.Error("evicted victim's 429 missing its Retry-After header")
	}
	if results[1] != http.StatusOK {
		t.Errorf("evictor: status %d, want 200", results[1])
	}
	if st := svc.Stats(); st.Shed != 1 {
		t.Errorf("stats recorded %d shed, want exactly the evicted victim", st.Shed)
	}
}
