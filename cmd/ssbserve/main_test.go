package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crystal/internal/serve"
	"crystal/internal/ssb"
	"crystal/internal/trace"
)

// TestMetricsSmoke is the end-to-end observability smoke test (make
// metrics-smoke): boot the real handler set, drive mixed traffic through
// /query, then scrape /metrics and validate the exposition, follow a
// trace_id through /trace in both formats, and check the no-id listing.
func TestMetricsSmoke(t *testing.T) {
	svc := serve.New(ssb.GenerateRows(1<<12), "smoke", serve.Options{Workers: 2, Trace: true})
	defer svc.Close()
	srv := httptest.NewServer(newMux(svc))
	defer srv.Close()

	get := func(path string, wantStatus int) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d\n%s", path, resp.StatusCode, wantStatus, body)
		}
		return string(body)
	}

	var lastTraceID string
	for _, path := range []string{
		"/query?id=q1.1&engine=cpu",
		"/query?id=q2.1&engine=gpu&gpus=2&partitions=8",
		"/query?id=q4.1&placement=hybrid&gpus=2&interconnect=nvlink",
		"/query?id=q1.1&engine=cpu", // result-cache hit
	} {
		var qr queryResponse
		if err := json.Unmarshal([]byte(get(path, http.StatusOK)), &qr); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if qr.TraceID == "" {
			t.Fatalf("GET %s: no trace_id in response", path)
		}
		lastTraceID = qr.TraceID
	}

	// /metrics: valid exposition with the latency histogram grid.
	metrics := get("/metrics", http.StatusOK)
	if err := trace.Validate(metrics); err != nil {
		t.Fatalf("invalid /metrics exposition: %v", err)
	}
	for _, want := range []string{
		"# TYPE ssb_requests_total counter",
		"# TYPE ssb_request_wall_seconds histogram",
		`engine="cpu",placement="classic"`,
		`placement="hybrid"`,
		`le="+Inf"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /trace?id=: the JSON trace round-trips, the text format renders the
	// EXPLAIN ANALYZE tree.
	var tr trace.Trace
	if err := json.Unmarshal([]byte(get("/trace?id="+lastTraceID, http.StatusOK)), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != lastTraceID || tr.Root == nil {
		t.Fatalf("trace %s round-tripped wrong: %+v", lastTraceID, tr)
	}
	text := get("/trace?id="+lastTraceID+"&format=text", http.StatusOK)
	if !strings.Contains(text, "q1.1") || !strings.Contains(text, "└─") {
		t.Errorf("text trace missing tree rendering:\n%s", text)
	}

	// /trace without id lists the recorder's retained traces.
	var listing struct {
		Recent  []traceSummary `json:"recent"`
		Slowest []traceSummary `json:"slowest"`
	}
	if err := json.Unmarshal([]byte(get("/trace", http.StatusOK)), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Recent) != 4 || len(listing.Slowest) == 0 {
		t.Errorf("listing has %d recent / %d slowest, want 4 / >0",
			len(listing.Recent), len(listing.Slowest))
	}

	get("/trace?id=t999", http.StatusNotFound)
}
