// Command docscheck is the docs gate of `make docs`: it verifies that every
// relative link in the given markdown files points at a file or directory
// that actually exists in the repo. External links (http, https, mailto),
// pure in-page anchors, and links that resolve outside the working
// directory (site-relative GitHub links such as a CI badge's
// ../../actions/... path) are skipped — CI has no network, and anchor
// validity is an editorial concern — so the gate catches exactly the class
// of rot that creeps in as files move: README and docs/ referencing paths
// that no longer exist.
//
//	docscheck README.md docs/ARCHITECTURE.md
//
// Exit status is non-zero if any link is broken, with one line per finding.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target) and
// [text](target "title"); images are the same shape with a leading bang
// and are checked identically.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck file.md [file.md ...]")
		os.Exit(2)
	}
	broken := 0
	for _, file := range os.Args[1:] {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			broken++
			continue
		}
		inFence := false
		for _, line := range strings.Split(string(data), "\n") {
			// Fenced code blocks hold shell snippets and diagrams, not
			// links; `](x)` sequences inside them are false positives.
			if trimmed := strings.TrimSpace(line); strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipLink(target) {
					continue
				}
				// Strip an in-page fragment from a file link.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if resolved == ".." || strings.HasPrefix(resolved, ".."+string(filepath.Separator)) {
					continue // escapes the repo: a site-relative GitHub link
				}
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "docscheck: %s: broken link %q (%s does not exist)\n", file, m[1], resolved)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// skipLink reports whether the target is external or a pure anchor, neither
// of which the filesystem can validate.
func skipLink(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
