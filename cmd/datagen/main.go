// Command datagen generates a Star Schema Benchmark dataset in the
// repository's columnar binary format, or verifies an existing file.
//
//	datagen -sf 4 -o ssb_sf4.bin
//	datagen -verify ssb_sf4.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"crystal/internal/ssb"
)

func main() {
	sf := flag.Int("sf", 1, "scale factor (6M fact rows per unit)")
	rows := flag.Int("rows", 0, "exact fact-row count (overrides -sf, uses SF-1 dimensions)")
	out := flag.String("o", "ssb.bin", "output path")
	verify := flag.String("verify", "", "load the given file and print a summary instead of generating")
	flag.Parse()

	if *verify != "" {
		ds, err := ssb.Load(*verify)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: SF %d\n", *verify, ds.SF)
		fmt.Printf("  lineorder: %d rows\n", ds.Lineorder.Rows())
		for _, d := range []*ssb.Dim{&ds.Date, &ds.Customer, &ds.Supplier, &ds.Part} {
			fmt.Printf("  %-9s: %d rows, %d attribute columns\n", d.Name, d.Rows(), len(d.Attrs))
		}
		fmt.Printf("  total: %.2f GB\n", float64(ds.Bytes())/1e9)
		return
	}

	var ds *ssb.Dataset
	if *rows > 0 {
		ds = ssb.GenerateRows(*rows)
	} else {
		ds = ssb.Generate(*sf)
	}
	if err := ds.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d fact rows, %.2f GB\n", *out, ds.Lineorder.Rows(), float64(ds.Bytes())/1e9)
}
