// Command microbench regenerates the operator microbenchmarks of the paper:
//
//	-fig9    Q0 selection vs tile configuration (Figure 9)
//	-tilecmp independent-threads vs Crystal kernels (Section 3.3)
//	-fig10   projection Q1/Q2 on CPU, CPU-Opt and GPU with models (Figure 10)
//	-fig12   selection vs selectivity, all variants with models (Figure 12)
//	-fig13   hash join vs hash-table size, all variants with models (Figure 13)
//	-fig14   radix histogram and shuffle vs radix bits (Figure 14)
//	-sort    full 32-bit key/value sort, LSB on CPU vs MSB on GPU (Section 4.4)
//	-all     everything
//
// Operators execute functionally at -n elements (default 2^22 so a full run
// finishes in seconds); reported times are the simulated device times
// extrapolated linearly to the paper's input sizes (2^28/2^29), which is
// exact within the bandwidth model for fixed structure sizes.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"crystal/internal/bench"
	"crystal/internal/cpu"
	"crystal/internal/device"
	"crystal/internal/gpu"
	"crystal/internal/model"
	"crystal/internal/sim"
)

var (
	flagN    = flag.Int("n", 1<<22, "elements to execute functionally")
	fig9     = flag.Bool("fig9", false, "run Figure 9 (tile configuration sweep)")
	tilecmp  = flag.Bool("tilecmp", false, "run Section 3.3 tiled vs independent threads")
	fig10    = flag.Bool("fig10", false, "run Figure 10 (projection)")
	fig12    = flag.Bool("fig12", false, "run Figure 12 (selection)")
	fig13    = flag.Bool("fig13", false, "run Figure 13 (hash join)")
	fig14    = flag.Bool("fig14", false, "run Figure 14 (radix partitioning)")
	sortFlag = flag.Bool("sort", false, "run Section 4.4 sort comparison")
	buildF   = flag.Bool("build", false, "run the Section 4.3 build-phase sweep")
	all      = flag.Bool("all", false, "run every microbenchmark")
)

func main() {
	flag.Parse()
	if !(*fig9 || *tilecmp || *fig10 || *fig12 || *fig13 || *fig14 || *sortFlag || *buildF) {
		*all = true
	}
	n := *flagN
	fmt.Printf("crystal microbenchmarks: functional n=%d, times extrapolated to paper scale\n", n)
	fmt.Printf("devices: %s vs %s (bandwidth ratio %.1fx)\n\n",
		device.V100(), device.I76900(), device.V100().BandwidthRatio(device.I76900()))

	if *all || *fig9 {
		runFig9(n)
	}
	if *all || *tilecmp {
		runTileCmp(n)
	}
	if *all || *fig10 {
		runFig10(n)
	}
	if *all || *fig12 {
		runFig12(n)
	}
	if *all || *fig13 {
		runFig13(n)
	}
	if *all || *fig14 {
		runFig14(n)
	}
	if *all || *sortFlag {
		runSort(n)
	}
	if *all || *buildF {
		runBuild()
	}
}

// paperN29 is the input size of the Q0/projection/selection benchmarks
// ("size of input array is 2^29"); Section 4.4 sorts 2^28 entries and the
// join probes 256M tuples.
const (
	paperN29 = int64(1) << 28 // see EXPERIMENTS.md: 2^28 reproduces the
	// paper's absolute numbers; taking "2^29" literally doubles every
	// CPU/GPU value but leaves all ratios intact.
	paperSort = int64(1) << 28
	paperJoin = int64(256) << 20
)

func randInts(n int, limit int32, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = rng.Int31n(limit)
	}
	return out
}

func runFig9(n int) {
	in := randInts(n, 1000, 1)
	pred := func(v int32) bool { return v < 500 }
	fig := bench.Figure{
		Title:  "Figure 9: Q0 runtime vs tile configuration (sigma=0.5)",
		XLabel: "block size",
		YLabel: "ms at 2^28 elements",
	}
	blockSizes := []int{32, 64, 128, 256, 512, 1024}
	for _, bs := range blockSizes {
		fig.XTicks = append(fig.XTicks, fmt.Sprint(bs))
	}
	for _, ipt := range []int{1, 2, 4} {
		var vals []float64
		for _, bs := range blockSizes {
			clk := device.NewClock(device.V100())
			cfg := sim.Config{Threads: bs, ItemsPerThread: ipt}
			gpu.Select(clk, cfg, in, pred, gpu.SelectIf)
			vals = append(vals, bench.MS(bench.ScaleClock(clk, int64(n), paperN29)))
		}
		fig.AddSeries(fmt.Sprintf("items/thread=%d", ipt), vals)
	}
	fig.Fprint(os.Stdout)
	fmt.Println("paper: best at block 128-256 with 4 items/thread (~2 ms); worst ~14 ms at 32x1")
	fmt.Println()
}

func runTileCmp(n int) {
	in := randInts(n, 1000, 2)
	pred := func(v int32) bool { return v < 500 }
	tiled, indep := device.NewClock(device.V100()), device.NewClock(device.V100())
	gpu.Select(tiled, sim.DefaultConfig(0), in, pred, gpu.SelectIf)
	gpu.SelectIndependent(indep, in, pred)
	tms := bench.MS(bench.ScaleClock(tiled, int64(n), paperN29))
	ims := bench.MS(bench.ScaleClock(indep, int64(n), paperN29))
	bench.Banner(os.Stdout, "Section 3.3: Q0 independent threads vs Crystal (2^28 elems, sigma=0.5)")
	fmt.Printf("independent threads: %8.2f ms   (paper: 19 ms)\n", ims)
	fmt.Printf("Crystal tile-based:  %8.2f ms   (paper: 2.1 ms)\n", tms)
	fmt.Printf("speedup:             %8.1fx  (paper: ~9x)\n\n", ims/tms)
}

func runFig10(n int) {
	x1 := make([]float32, n)
	x2 := make([]float32, n)
	rng := rand.New(rand.NewSource(3))
	for i := range x1 {
		x1[i], x2[i] = rng.Float32(), rng.Float32()
	}
	scale := func(clk *device.Clock) float64 {
		return bench.MS(bench.ScaleClock(clk, int64(n), paperN29))
	}
	run := func(q string, sigmoid bool) (float64, float64, float64) {
		c1 := device.NewClock(device.I76900())
		c2 := device.NewClock(device.I76900())
		c3 := device.NewClock(device.V100())
		if sigmoid {
			cpu.ProjectSigmoid(c1, x1, x2, 2, 3, cpu.ProjectNaive)
			cpu.ProjectSigmoid(c2, x1, x2, 2, 3, cpu.ProjectOpt)
			gpu.ProjectSigmoid(c3, sim.DefaultConfig(0), x1, x2, 2, 3)
		} else {
			cpu.Project(c1, x1, x2, 2, 3, cpu.ProjectNaive)
			cpu.Project(c2, x1, x2, 2, 3, cpu.ProjectOpt)
			gpu.Project(c3, sim.DefaultConfig(0), x1, x2, 2, 3)
		}
		_ = q
		return scale(c1), scale(c2), scale(c3)
	}
	tb := bench.Table{
		Title:   "Figure 10: projection microbenchmark (ms at 2^28 elements)",
		Columns: []string{"CPU", "CPU-Opt", "GPU", "CPU model", "GPU model"},
	}
	cpuModel := bench.MS(model.Project(device.I76900(), paperN29))
	gpuModel := bench.MS(model.Project(device.V100(), paperN29))
	a, b, c := run("Q1", false)
	tb.AddRow("Q1", a, b, c, cpuModel, gpuModel)
	a, b, c = run("Q2", true)
	tb.AddRow("Q2 (sigmoid)", a, b, c, cpuModel, gpuModel)
	tb.Fprint(os.Stdout)
	fmt.Println("paper: Q1 90.5 / 64.0 / 3.9 ms; Q2 282.4 / 69.6 / 3.9 ms; CPU-Opt/GPU ~16.6x")
	fmt.Println()
}

func runFig12(n int) {
	in := randInts(n, 1000, 4)
	fig := bench.Figure{
		Title:  "Figure 12: selection scan vs selectivity (ms at 2^28 elements)",
		XLabel: "sigma",
		YLabel: "ms",
	}
	sigmas := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	for _, s := range sigmas {
		fig.XTicks = append(fig.XTicks, fmt.Sprintf("%.1f", s))
	}
	series := map[string][]float64{}
	order := []string{"CPU If", "CPU Pred", "CPU SIMDPred", "GPU If", "GPU Pred", "CPU model", "GPU model"}
	for _, s := range sigmas {
		cut := int32(s * 1000)
		pred := func(v int32) bool { return v < cut }
		for variant, name := range map[cpu.SelectVariant]string{
			cpu.SelectIf: "CPU If", cpu.SelectPred: "CPU Pred", cpu.SelectSIMDPred: "CPU SIMDPred",
		} {
			clk := device.NewClock(device.I76900())
			cpu.Select(clk, in, pred, variant)
			series[name] = append(series[name], bench.MS(bench.ScaleClock(clk, int64(n), paperN29)))
		}
		for variant, name := range map[gpu.SelectVariant]string{
			gpu.SelectIf: "GPU If", gpu.SelectPred: "GPU Pred",
		} {
			clk := device.NewClock(device.V100())
			gpu.Select(clk, sim.DefaultConfig(0), in, pred, variant)
			series[name] = append(series[name], bench.MS(bench.ScaleClock(clk, int64(n), paperN29)))
		}
		series["CPU model"] = append(series["CPU model"], bench.MS(model.Select(device.I76900(), paperN29, s)))
		series["GPU model"] = append(series["GPU model"], bench.MS(model.Select(device.V100(), paperN29, s)))
	}
	for _, name := range order {
		fig.AddSeries(name, series[name])
	}
	fig.Fprint(os.Stdout)
	fmt.Println("paper: CPU If peaks mid-selectivity; SIMDPred tracks the model; GPU If = GPU Pred;")
	fmt.Println("       average CPU/GPU ratio 15.8 vs bandwidth ratio 16.2")
	fmt.Println()
}

func runFig13(n int) {
	htSizes := []int64{
		8 << 10, 32 << 10, 128 << 10, 512 << 10,
		2 << 20, 8 << 20, 32 << 20, 128 << 20, 512 << 20, 1 << 30,
	}
	fig := bench.Figure{
		Title:  "Figure 13: hash join probe vs hash-table size (ms, 256M probes)",
		XLabel: "HT size",
		YLabel: "ms",
	}
	for _, h := range htSizes {
		fig.XTicks = append(fig.XTicks, bench.HumanBytes(h))
	}
	series := map[string][]float64{}
	order := []string{"CPU Scalar", "CPU SIMD", "CPU Prefetch", "GPU", "CPU model", "GPU model"}
	pk := make([]int32, n)
	pv := make([]int32, n)
	rng := rand.New(rand.NewSource(5))
	for _, h := range htSizes {
		// Build once per size on each device (build time not plotted).
		gclk := device.NewClock(device.V100())
		ht := gpu.BuildHashTableBytes(gclk, h, func(i int) int32 { return int32(i + 1) }, func(i int) int32 { return int32(i) })
		nKeys := ht.Capacity() / 2
		for i := range pk {
			pk[i] = int32(rng.Intn(nKeys) + 1)
			pv[i] = int32(i & 1023)
		}
		for variant, name := range map[cpu.JoinVariant]string{
			cpu.JoinScalar: "CPU Scalar", cpu.JoinSIMD: "CPU SIMD", cpu.JoinPrefetch: "CPU Prefetch",
		} {
			clk := device.NewClock(device.I76900())
			cpu.ProbeSum(clk, pk, pv, ht, variant)
			series[name] = append(series[name], bench.MS(bench.ScaleClock(clk, int64(n), paperJoin)))
		}
		clk := device.NewClock(device.V100())
		gpu.ProbeSum(clk, sim.DefaultConfig(0), pk, pv, ht)
		series["GPU"] = append(series["GPU"], bench.MS(bench.ScaleClock(clk, int64(n), paperJoin)))
		series["CPU model"] = append(series["CPU model"], bench.MS(model.JoinProbe(device.I76900(), paperJoin, h)))
		series["GPU model"] = append(series["GPU model"], bench.MS(model.JoinProbe(device.V100(), paperJoin, h)))
	}
	for _, name := range order {
		fig.AddSeries(name, series[name])
	}
	fig.Fprint(os.Stdout)
	fmt.Println("paper: steps at 256KB/20MB (CPU) and 6MB (GPU); segments ~5.5x, ~14.5x, ~10.5x")
	fmt.Println()
}

func runFig14(n int) {
	keys := make([]uint32, n)
	vals := make([]int32, n)
	rng := rand.New(rand.NewSource(6))
	for i := range keys {
		keys[i] = rng.Uint32()
		vals[i] = int32(i)
	}
	histFig := bench.Figure{
		Title:  "Figure 14a: radix histogram phase vs radix bits (ms, 256M entries)",
		XLabel: "radix r",
		YLabel: "ms",
	}
	shufFig := bench.Figure{
		Title:  "Figure 14b: radix shuffle phase vs radix bits (ms, 256M entries)",
		XLabel: "radix r",
		YLabel: "ms",
	}
	var cpuHist, cpuShuf, gpuSHist, gpuSShuf, gpuUHist, gpuUShuf, mCPUh, mCPUs, mGPUh, mGPUs []float64
	for r := 3; r <= 11; r++ {
		histFig.XTicks = append(histFig.XTicks, fmt.Sprint(r))
		shufFig.XTicks = append(shufFig.XTicks, fmt.Sprint(r))

		clk := device.NewClock(device.I76900())
		if _, _, _, err := cpu.RadixPartition(clk, keys, vals, r, 0); err != nil {
			panic(err)
		}
		passes := clk.Passes()
		cpuHist = append(cpuHist, scalePass(clk.Spec(), &passes[0], n))
		cpuShuf = append(cpuShuf, scalePass(clk.Spec(), &passes[1], n))

		gpuSHist = append(gpuSHist, gpuRadixPhase(keys, vals, r, true, 0, n))
		gpuSShuf = append(gpuSShuf, gpuRadixPhase(keys, vals, r, true, 2, n))
		gpuUHist = append(gpuUHist, gpuRadixPhase(keys, vals, r, false, 0, n))
		gpuUShuf = append(gpuUShuf, gpuRadixPhase(keys, vals, r, false, 2, n))

		mCPUh = append(mCPUh, bench.MS(model.RadixHistogram(device.I76900(), paperJoin)))
		mCPUs = append(mCPUs, bench.MS(model.RadixShuffle(device.I76900(), paperJoin)))
		mGPUh = append(mGPUh, bench.MS(model.RadixHistogram(device.V100(), paperJoin)))
		mGPUs = append(mGPUs, bench.MS(model.RadixShuffle(device.V100(), paperJoin)))
	}
	histFig.AddSeries("CPU Stable", cpuHist)
	histFig.AddSeries("GPU Stable", gpuSHist)
	histFig.AddSeries("GPU Unstable", gpuUHist)
	histFig.AddSeries("CPU model", mCPUh)
	histFig.AddSeries("GPU model", mGPUh)
	histFig.Fprint(os.Stdout)
	shufFig.AddSeries("CPU Stable", cpuShuf)
	shufFig.AddSeries("GPU Stable", gpuSShuf)
	shufFig.AddSeries("GPU Unstable", gpuUShuf)
	shufFig.AddSeries("CPU model", mCPUs)
	shufFig.AddSeries("GPU model", mGPUs)
	shufFig.Fprint(os.Stdout)
	fmt.Println("paper: histogram flat and bandwidth bound; GPU Stable limited to 7 bits, GPU")
	fmt.Println("       Unstable to 8; CPU flat to 8 bits then deteriorates (L1 buffer spill)")
	fmt.Println()
}

// gpuRadixPhase runs one GPU radix-partition pass and returns the scaled
// time of the pass at index phase (0=histogram, 2=shuffle); NaN-free -1 is
// returned where the configuration is invalid (stable beyond 7 bits).
func gpuRadixPhase(keys []uint32, vals []int32, r int, stable bool, phase int, n int) float64 {
	clk := device.NewClock(device.V100())
	if _, _, _, err := gpu.RadixPartition(clk, sim.DefaultConfig(0), keys, vals, r, 0, stable); err != nil {
		return -1
	}
	passes := clk.Passes()
	return scalePass(clk.Spec(), &passes[phase], n)
}

func scalePass(spec *device.Spec, p *device.Pass, n int) float64 {
	return bench.MS(bench.Scale(spec.PassTime(p), int64(n), paperJoin))
}

func runSort(n int) {
	keys := make([]uint32, n)
	vals := make([]int32, n)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = rng.Uint32()
		vals[i] = int32(i)
	}
	cclk := device.NewClock(device.I76900())
	cpu.LSBRadixSort(cclk, keys, vals)
	gclk := device.NewClock(device.V100())
	gpu.MSBRadixSort(gclk, sim.DefaultConfig(0), keys, vals)
	cms := bench.MS(bench.ScaleClock(cclk, int64(n), paperSort))
	gms := bench.MS(bench.ScaleClock(gclk, int64(n), paperSort))
	bench.Banner(os.Stdout, "Section 4.4: sort 2^28 32-bit key/value pairs")
	fmt.Printf("CPU LSB radix sort (4x8-bit stable passes):   %8.1f ms  (paper: 464 ms)\n", cms)
	fmt.Printf("GPU MSB radix sort (4x8-bit unstable passes): %8.1f ms  (paper: 27.08 ms)\n", gms)
	fmt.Printf("speedup: %.2fx  (paper: 17.13x; bandwidth ratio 16.2x)\n\n", cms/gms)
	fmt.Printf("models: CPU %.1f ms, GPU %.1f ms\n\n",
		bench.MS(model.Sort(device.I76900(), paperSort)), bench.MS(model.Sort(device.V100(), paperSort)))
}

// runBuild reproduces the Section 4.3 discussion point: "The runtime of the
// build phase ... shows a linear increase with size of the build relation.
// The build phase runtimes are less affected by caches as writes to [the]
// hash table end up going to memory."
func runBuild() {
	fig := bench.Figure{
		Title:  "Section 4.3: hash-join build phase vs build relation size",
		XLabel: "build rows",
		YLabel: "ms",
	}
	sizes := []int{1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22}
	var cpuMS, gpuMS []float64
	for _, n := range sizes {
		fig.XTicks = append(fig.XTicks, fmt.Sprintf("%dK", n>>10))
		keys := make([]int32, n)
		vals := make([]int32, n)
		for i := range keys {
			keys[i], vals[i] = int32(i+1), int32(i)
		}
		cclk := device.NewClock(device.I76900())
		cpu.BuildHashTable(cclk, keys, vals, 0.5)
		cpuMS = append(cpuMS, cclk.Milliseconds())
		gclk := device.NewClock(device.V100())
		gpu.BuildHashTable(gclk, keys, vals, 0.5)
		gpuMS = append(gpuMS, gclk.Milliseconds())
	}
	fig.AddSeries("CPU build", cpuMS)
	fig.AddSeries("GPU build", gpuMS)
	fig.Fprint(os.Stdout)
	fmt.Println("paper: build time grows linearly with the build relation; caches help little")
	fmt.Println()
}
