# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` locally means a green CI run.

GO ?= go

.PHONY: all build test lint fuzz bench-smoke serve ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Each fuzz target runs its corpus plus ~20s of new inputs: the dataset
# decoder and the SQL frontend (parse -> canonical print fixed point, bind
# never panics).
fuzz:
	$(GO) test ./internal/ssb -run='^$$' -fuzz=FuzzRead -fuzztime=20s
	$(GO) test ./internal/sql -run='^$$' -fuzz=FuzzParse -fuzztime=20s

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

serve:
	$(GO) run ./cmd/ssbserve

ci: build lint test fuzz bench-smoke
