# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` locally means a green CI run.

GO ?= go

# Coverage floors for the packages the differential/invariance harness
# guards; set to the measured pre-harness baselines so the new tests stay
# load-bearing. Raise them if coverage improves, never lower them.
COVER_FLOOR_QUERIES ?= 96.7
COVER_FLOOR_SSB     ?= 86.5

.PHONY: all build test lint fuzz cover bench-smoke serve ci

all: build test

build:
	$(GO) build ./...

# -timeout 30m: the differential/invariance harness in internal/queries
# runs ~1500 engine executions; under -race on a small runner that can
# brush against go test's default 10m per-package limit.
test:
	$(GO) test -race -timeout 30m ./...

# Each fuzz target runs its corpus plus ~20s of new inputs: the dataset
# decoder, the SQL frontend (parse -> canonical print fixed point, bind
# never panics), and zone-map pruning (a pruned morsel never contains a
# matching row).
fuzz:
	$(GO) test ./internal/ssb -run='^$$' -fuzz=FuzzRead -fuzztime=20s
	$(GO) test ./internal/sql -run='^$$' -fuzz=FuzzParse -fuzztime=20s
	$(GO) test ./internal/queries -run='^$$' -fuzz=FuzzZoneMap -fuzztime=20s

cover:
	@set -e; \
	check() { \
		pct=$$($(GO) test -cover "$$1" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		echo "$$1 coverage: $$pct% (floor $$2%)"; \
		awk "BEGIN { exit !($$pct >= $$2) }" || { echo "coverage of $$1 fell below $$2%"; exit 1; }; \
	}; \
	check ./internal/queries $(COVER_FLOOR_QUERIES); \
	check ./internal/ssb $(COVER_FLOOR_SSB)

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

serve:
	$(GO) run ./cmd/ssbserve

ci: build lint test cover fuzz bench-smoke
