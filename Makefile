# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` locally means a green CI run.

GO ?= go

.PHONY: all build test lint bench-smoke serve ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

serve:
	$(GO) run ./cmd/ssbserve

ci: build lint test bench-smoke
