# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` locally means a green CI run.

GO ?= go

# Coverage floors for the packages the differential/invariance harness
# guards; set to the measured pre-harness baselines so the new tests stay
# load-bearing. Raise them if coverage improves, never lower them.
COVER_FLOOR_QUERIES ?= 98.5
COVER_FLOOR_SSB     ?= 88.0
COVER_FLOOR_FLEET   ?= 90.0
COVER_FLOOR_SCHED   ?= 90.0
COVER_FLOOR_TRACE   ?= 90.0
COVER_FLOOR_SERVE   ?= 96.0
COVER_FLOOR_LOADGEN ?= 90.0

.PHONY: all build test lint fuzz cover docs bench-smoke bench-baseline bench-check metrics-smoke load-smoke batch-smoke serve ci

# Markdown files the docs gate link-checks, and the packages whose godoc
# must render (a missing or syntactically broken doc comment fails go doc).
DOCS_MD   = README.md docs/ARCHITECTURE.md
DOC_PKGS  = ./internal/pack ./internal/device ./internal/serve ./internal/fleet ./internal/sched ./internal/trace ./internal/loadgen

all: build test

build:
	$(GO) build ./...

# -timeout 30m: the differential/invariance harness in internal/queries
# runs ~1500 engine executions; under -race on a small runner that can
# brush against go test's default 10m per-package limit.
test:
	$(GO) test -race -timeout 30m ./...

# Each fuzz target runs its corpus plus ~20s of new inputs: the dataset
# decoder, the SQL frontend (parse -> canonical print fixed point, bind
# never panics; ORDER BY / LIMIT / multi-aggregate grammar included),
# zone-map pruning (a pruned morsel never contains a matching row), bit
# packing (pack -> unpack equals the plain column), fleet shard assignment
# (no morsel lost, duplicated, or resident beyond device capacity after
# spill accounting), and the 64-bit GPU radix sort (output is a stable
# sorted permutation of the input on the masked key bits).
fuzz:
	$(GO) test ./internal/ssb -run='^$$' -fuzz=FuzzRead -fuzztime=20s
	$(GO) test ./internal/sql -run='^$$' -fuzz=FuzzParse -fuzztime=20s
	$(GO) test ./internal/queries -run='^$$' -fuzz=FuzzZoneMap -fuzztime=20s
	$(GO) test ./internal/pack -run='^$$' -fuzz=FuzzPackRoundTrip -fuzztime=20s
	$(GO) test ./internal/fleet -run='^$$' -fuzz=FuzzShardAssignment -fuzztime=20s
	$(GO) test ./internal/gpu -run='^$$' -fuzz=FuzzRadixSort -fuzztime=20s

# Docs gate: every relative link in README/docs resolves, and godoc
# renders non-empty for the packages above.
docs:
	$(GO) run ./cmd/docscheck $(DOCS_MD)
	@set -e; for p in $(DOC_PKGS); do \
		out=$$($(GO) doc -all $$p); \
		if [ -z "$$out" ]; then echo "go doc renders empty for $$p"; exit 1; fi; \
		echo "go doc $$p: $$(printf '%s\n' "$$out" | wc -l) lines"; \
	done

cover:
	@set -e; \
	check() { \
		pct=$$($(GO) test -cover "$$1" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		echo "$$1 coverage: $$pct% (floor $$2%)"; \
		awk "BEGIN { exit !($$pct >= $$2) }" || { echo "coverage of $$1 fell below $$2%"; exit 1; }; \
	}; \
	check ./internal/queries $(COVER_FLOOR_QUERIES); \
	check ./internal/ssb $(COVER_FLOOR_SSB); \
	check ./internal/fleet $(COVER_FLOOR_FLEET); \
	check ./internal/sched $(COVER_FLOOR_SCHED); \
	check ./internal/trace $(COVER_FLOOR_TRACE); \
	check ./internal/serve $(COVER_FLOOR_SERVE); \
	check ./internal/loadgen $(COVER_FLOOR_LOADGEN)

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Benchmark gate: bench-baseline records the q1.x flight's simulated
# seconds and scaling efficiency at 1/2/4/8 GPUs into BENCH_fleet.json,
# its cpu/gpu/hybrid placement seconds on both interconnects into
# BENCH_hybrid.json, and top-5 ORDER BY variants per placement into
# BENCH_sort.json; bench-check fails when anything regresses by more
# than 5% (simulated seconds are deterministic, so the tolerance only
# absorbs intentional model changes).
bench-baseline:
	$(GO) run ./cmd/benchgate -write

bench-check:
	$(GO) run ./cmd/benchgate -check

# Observability gate: boot the real ssbserve handler set, drive traffic,
# scrape /metrics, and validate the Prometheus exposition plus the /trace
# surface end to end.
metrics-smoke:
	$(GO) test ./cmd/ssbserve -run TestMetricsSmoke -count=1 -v

# Overload gate: a 30-second seeded 3x-overload run through the loadgen
# simulator (measured saturation, then open-loop Poisson traffic) asserting
# the shed-rate and p99 bounds plus request conservation — the wall-clock
# end of the invariants TestOverloadGracefulDegradation pins in-process.
load-smoke:
	LOAD_SMOKE_SECONDS=30 $(GO) test ./internal/loadgen -run TestLoadSmoke -count=1 -v -timeout 10m

# Shared-scan batching gate: the differential harness proves every batch
# member's rows and simulated seconds identical to its solo run across all
# placements, and the seeded 3x-overload comparison proves batching clears
# measurably more goodput than single-flight alone (benchgate -check holds
# the same invariants against BENCH_batch.json). BATCH_GOODPUT_STRICT arms
# the wall-clock ratio assertion, which only holds without the race
# detector's instrumentation — the plain `-race ./...` run still checks
# formation, conservation and row identity.
batch-smoke:
	$(GO) test ./internal/queries -run TestDifferentialBatchAgree -count=1 -v -timeout 10m
	BATCH_GOODPUT_STRICT=1 $(GO) test ./internal/loadgen -run TestBatchingGoodputWin -count=1 -v

serve:
	$(GO) run ./cmd/ssbserve

ci: build lint test cover fuzz docs bench-smoke bench-check metrics-smoke load-smoke batch-smoke
