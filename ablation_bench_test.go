package repro_test

import (
	"math/rand"
	"sync"
	"testing"

	"crystal/internal/bench"
	"crystal/internal/cpu"
	"crystal/internal/crystal"
	"crystal/internal/device"
	"crystal/internal/gpu"
	"crystal/internal/pack"
	"crystal/internal/queries"
	"crystal/internal/sim"
	"crystal/internal/ssb"
)

// Ablation benchmarks: quantify the design choices DESIGN.md calls out by
// toggling one mechanism at a time. Each reports its effect as a ratio.

var (
	sf1Once sync.Once
	sf1DS   *ssb.Dataset
)

// BenchmarkAblation_GPUSortLSBvsMSB quantifies the Section 4.4 structural
// argument: stable LSB partitioning is register-limited to 7 bits and needs
// five passes over 32-bit keys, while unstable MSB partitioning does 8 bits
// in four passes. Reports LSB/MSB simulated-time ratio (expect ~1.3x).
func BenchmarkAblation_GPUSortLSBvsMSB(b *testing.B) {
	keys := make([]uint32, benchN)
	vals := make([]int32, benchN)
	rng := rand.New(rand.NewSource(21))
	for i := range keys {
		keys[i] = rng.Uint32()
		vals[i] = int32(i)
	}
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		lsb := device.NewClock(device.V100())
		gpu.LSBRadixSort(lsb, sim.DefaultConfig(0), keys, vals)
		msb := device.NewClock(device.V100())
		gpu.MSBRadixSort(msb, sim.DefaultConfig(0), keys, vals)
		ratio = lsb.Seconds() / msb.Seconds()
	}
	b.ReportMetric(ratio, "lsb/msb")
}

// BenchmarkAblation_RadixJoinVsNoPartitioning quantifies the Section 4.3
// discussion: for a single join whose hash table exceeds the LLC, the
// partitioned radix join beats the no-partitioning join. Reports
// noPartitioning/radix (expect >1 out of cache).
func BenchmarkAblation_RadixJoinVsNoPartitioning(b *testing.B) {
	// 2^21 build rows -> a 32 MB no-partitioning table, past the 20 MB L3.
	const n = 1 << 21
	bk := make([]int32, n)
	bv := make([]int32, n)
	for i := range bk {
		bk[i], bv[i] = int32(i+1), int32(i)
	}
	pk := make([]int32, n)
	pv := make([]int32, n)
	rng := rand.New(rand.NewSource(22))
	for i := range pk {
		pk[i] = int32(rng.Intn(n) + 1)
	}
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		radix := device.NewClock(device.I76900())
		cpu.RadixJoin(radix, bk, bv, pk, pv, 10)
		noPart := device.NewClock(device.I76900())
		ht := cpu.BuildHashTable(noPart, bk, bv, 0.5)
		cpu.ProbeSum(noPart, pk, pv, ht, cpu.JoinScalar)
		ratio = noPart.Seconds() / radix.Seconds()
	}
	b.ReportMetric(ratio, "noPart/radix")
}

// BenchmarkAblation_DependentProbeLatency toggles the Section 5.3 latency
// wall: the same q2.1-shaped probe pass priced with and without the CPU's
// dependent-probe latency floor. The ratio is the measured-over-model gap
// of the case study (~4-5x).
func BenchmarkAblation_DependentProbeLatency(b *testing.B) {
	pass := &device.Pass{
		BytesRead: 1 << 30, // ~1 GB of fact columns (SF 20 q2.1)
		Probes: []device.ProbeSet{
			{Count: 120e6, StructBytes: 256 << 10, Dependent: true}, // supplier
			{Count: 24e6, StructBytes: 8 << 20, Dependent: true},    // part
			{Count: 1e6, StructBytes: 32 << 10, Dependent: true},    // date
		},
	}
	withWall := device.I76900()
	noWall := device.I76900()
	noWall.DependentProbeNs = 0
	noWall.DependentStall = noWall.RandomStall
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		ratio = withWall.PassTime(pass) / noWall.PassTime(pass)
	}
	b.ReportMetric(ratio, "wall/noWall")
}

// BenchmarkAblation_SelectiveLoads quantifies BlockLoadSel (the
// min(4|L|/C, |L|sigma) term of Section 5.3): global traffic of a selective
// tile load at 1% selectivity vs a full tile load. Reports full/selective
// bytes (the GPU's effective read saving on late pipeline columns).
func BenchmarkAblation_SelectiveLoads(b *testing.B) {
	const n = benchN
	col := make([]int32, n)
	bitmap := make([]uint8, n)
	rng := rand.New(rand.NewSource(23))
	for i := range bitmap {
		if rng.Intn(100) == 0 {
			bitmap[i] = 1
		}
	}
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(n)
		items := make([]int32, cfg.TileSize())
		sel := sim.Run(device.V100(), cfg, func(blk *sim.Block) {
			local := make([]int32, cfg.TileSize())
			crystal.BlockLoadSel(blk, col, bitmap[blk.Offset:blk.Offset+blk.TileElems], local)
		})
		full := sim.Run(device.V100(), cfg, func(blk *sim.Block) {
			local := make([]int32, cfg.TileSize())
			crystal.BlockLoad(blk, col, local)
		})
		_ = items
		ratio = float64(full.BytesRead) / float64(sel.BytesRead)
	}
	b.ReportMetric(ratio, "full/selective")
}

// BenchmarkAblation_WriteCombiningSpill toggles the Figure 14b CPU
// deterioration: shuffle time at r=11 over r=8 (the L1 buffer spill).
func BenchmarkAblation_WriteCombiningSpill(b *testing.B) {
	keys := make([]uint32, benchN)
	vals := make([]int32, benchN)
	rng := rand.New(rand.NewSource(24))
	for i := range keys {
		keys[i] = rng.Uint32()
		vals[i] = int32(i)
	}
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		c8 := device.NewClock(device.I76900())
		if _, _, _, err := cpu.RadixPartition(c8, keys, vals, 8, 0); err != nil {
			b.Fatal(err)
		}
		c11 := device.NewClock(device.I76900())
		if _, _, _, err := cpu.RadixPartition(c11, keys, vals, 11, 0); err != nil {
			b.Fatal(err)
		}
		p8, p11 := c8.Passes(), c11.Passes()
		ratio = c11.Spec().PassTime(&p11[1]) / c8.Spec().PassTime(&p8[1])
	}
	b.ReportMetric(ratio, "r11/r8")
}

// BenchmarkAblation_PackedScan quantifies the Section 5.5 compression
// asymmetry: the speedup of scanning a 10-bit packed column over a plain
// 4-byte column, on each device. The GPU's compute-to-bandwidth ratio keeps
// the packed scan bandwidth bound (speedup ~ compression ratio); the CPU
// tips into compute bound and gains little or loses.
func BenchmarkAblation_PackedScan(b *testing.B) {
	vals := make([]int32, benchN)
	rng := rand.New(rand.NewSource(25))
	for i := range vals {
		vals[i] = rng.Int31n(1024)
	}
	col := pack.New(vals)
	pred := func(v int32) bool { return v < 10 }
	cfg := sim.Config{Threads: 256, ItemsPerThread: 8} // SSB tile config
	var gpuGain, cpuGain float64
	for i := 0; i < b.N; i++ {
		gPlain, gPacked := device.NewClock(device.V100()), device.NewClock(device.V100())
		gpu.Select(gPlain, cfg, vals, pred, gpu.SelectIf)
		gpu.SelectPacked(gPacked, cfg, col, pred)
		gpuGain = bench.ScaleClock(gPlain, benchN, paperN) / bench.ScaleClock(gPacked, benchN, paperN)

		cPlain, cPacked := device.NewClock(device.I76900()), device.NewClock(device.I76900())
		cpu.Select(cPlain, vals, pred, cpu.SelectSIMDPred)
		cpu.SelectPacked(cPacked, col, pred)
		cpuGain = bench.ScaleClock(cPlain, benchN, paperN) / bench.ScaleClock(cPacked, benchN, paperN)
	}
	b.ReportMetric(gpuGain, "gpuGain")
	b.ReportMetric(cpuGain, "cpuGain")
}

// BenchmarkAblation_MultiGPUScaling reports the q2.1 speedup of 4 sharded
// V100s over 1 (Section 5.5 Distributed+Hybrid extension).
func BenchmarkAblation_MultiGPUScaling(b *testing.B) {
	// Needs an SF-1 fact table: with tiny shards the replicated dimension
	// builds and launches dominate and nothing scales.
	sf1Once.Do(func() { sf1DS = ssb.Generate(1) })
	ds := sf1DS
	q, err := queries.ByID("q2.1")
	if err != nil {
		b.Fatal(err)
	}
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		one, err := queries.Compile(ds, q).RunMultiGPU(1)
		if err != nil {
			b.Fatal(err)
		}
		four, err := queries.Compile(ds, q).RunMultiGPU(4)
		if err != nil {
			b.Fatal(err)
		}
		ratio = one.Seconds / four.Seconds
	}
	b.ReportMetric(ratio, "x4speedup")
}
