package pack

import "fmt"

// Frames is a bit-packed int32 column split into fixed-size frames of
// FrameRows values, each independently frame-of-reference encoded with its
// own reference and bit width. Per-frame widths are what let the packed
// encoding coexist with the partitioned execution machinery: a clustered
// column whose values are locally narrow packs far below its global span,
// and because ssb.MorselAlign is a multiple of the frame size, every morsel
// covers whole frames — zone maps, Partition(n) and tile-aligned chunking
// all keep working on the packed layout.
//
// Storage is laid out as one contiguous stream: frame f's words follow
// frame f-1's. A full frame of n values at width w occupies exactly n*w/8
// bytes; with the frame sizes this repo uses (multiples of 1024 values)
// that is a multiple of every DRAM line the device models know (64 B and
// 128 B), so frames never share a line and distinct-line traffic counts
// merge exactly across any frame-aligned partitioning — the property that
// keeps packed partitioned runs simulated-second-identical to monolithic
// packed runs.
type Frames struct {
	frameRows int
	n         int
	frames    []*Column
	// offsets[f] is the byte offset of frame f's first word in the packed
	// stream; offsets[len(frames)] is the total footprint.
	offsets []int64
}

// NewFrames packs vals into frames of frameRows values each. frameRows must
// be positive; the line-exactness guarantees documented on Frames
// additionally require it to be a multiple of 1024 (256 B of packed storage
// per width bit), which ssb.MorselAlign satisfies.
func NewFrames(vals []int32, frameRows int) *Frames {
	if frameRows <= 0 {
		panic(fmt.Sprintf("pack: frame size %d must be positive", frameRows))
	}
	f := &Frames{frameRows: frameRows, n: len(vals)}
	numFrames := (len(vals) + frameRows - 1) / frameRows
	f.frames = make([]*Column, numFrames)
	f.offsets = make([]int64, numFrames+1)
	for i := 0; i < numFrames; i++ {
		lo := i * frameRows
		hi := lo + frameRows
		if hi > len(vals) {
			hi = len(vals)
		}
		f.frames[i] = New(vals[lo:hi])
		f.offsets[i+1] = f.offsets[i] + f.frames[i].Bytes()
	}
	return f
}

// Len returns the number of values.
func (f *Frames) Len() int { return f.n }

// FrameRows returns the frame size in values.
func (f *Frames) FrameRows() int { return f.frameRows }

// NumFrames returns the number of frames.
func (f *Frames) NumFrames() int { return len(f.frames) }

// Frame returns the i-th frame's packed column.
func (f *Frames) Frame(i int) *Column { return f.frames[i] }

// Get returns the i-th value.
func (f *Frames) Get(i int) int32 {
	fi := i / f.frameRows
	return f.frames[fi].Get(i - fi*f.frameRows)
}

// UnpackRange decodes [lo, hi) into dst (len >= hi-lo) and returns hi-lo;
// hi is clamped to Len.
func (f *Frames) UnpackRange(lo, hi int, dst []int32) int {
	if hi > f.n {
		hi = f.n
	}
	if lo < 0 || lo > hi {
		panic(fmt.Sprintf("pack: bad range [%d,%d)", lo, hi))
	}
	for at := lo; at < hi; {
		fi := at / f.frameRows
		base := fi * f.frameRows
		end := hi
		if fe := base + f.frameRows; end > fe {
			end = fe
		}
		f.frames[fi].UnpackRange(at-base, end-base, dst[at-lo:])
		at = end
	}
	return hi - lo
}

// Unpack decodes the whole column into a fresh slice.
func (f *Frames) Unpack() []int32 {
	out := make([]int32, f.n)
	f.UnpackRange(0, f.n, out)
	return out
}

// Bytes returns the packed storage footprint.
func (f *Frames) Bytes() int64 { return f.offsets[len(f.frames)] }

// PlainBytes returns the footprint of the equivalent 4-byte column.
func (f *Frames) PlainBytes() int64 { return int64(f.n) * 4 }

// Ratio returns the compression ratio (plain/packed), reported against one
// word minimum so constant columns stay finite.
func (f *Frames) Ratio() float64 {
	b := f.Bytes()
	if b == 0 {
		b = 8
	}
	return float64(f.PlainBytes()) / float64(b)
}

// BytesRange returns the packed bytes of the frames overlapping the value
// range [lo, hi) — the traffic a scan of those rows reads, and the PCIe
// bytes a coprocessor ships for them. Because frames never straddle a
// frame-aligned boundary, BytesRange is exactly additive over any
// frame-aligned partitioning of the column.
func (f *Frames) BytesRange(lo, hi int) int64 {
	if hi > f.n {
		hi = f.n
	}
	if lo < 0 || lo > hi {
		panic(fmt.Sprintf("pack: bad range [%d,%d)", lo, hi))
	}
	if lo == hi {
		return 0
	}
	first := lo / f.frameRows
	last := (hi - 1) / f.frameRows
	return f.offsets[last+1] - f.offsets[first]
}

// WidthRange returns the minimum and maximum per-frame bit widths over the
// value range [lo, hi) (compression reports; the planner's packed scan
// costing).
func (f *Frames) WidthRange(lo, hi int) (min, max uint) {
	if hi > f.n {
		hi = f.n
	}
	if lo < 0 || lo > hi {
		panic(fmt.Sprintf("pack: bad range [%d,%d)", lo, hi))
	}
	if lo == hi {
		return 0, 0
	}
	first := lo / f.frameRows
	last := (hi - 1) / f.frameRows
	min, max = f.frames[first].Width(), f.frames[first].Width()
	for i := first + 1; i <= last; i++ {
		w := f.frames[i].Width()
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	return min, max
}

// LineOf returns the index of the DRAM line (of lineBytes bytes) holding
// value i's first packed bit, or -1 when the value occupies no storage (a
// width-0 constant frame, whose value is metadata). Device models use it to
// count the distinct lines a selective scan of the packed layout touches,
// exactly as they count plain-column lines.
func (f *Frames) LineOf(i int, lineBytes int64) int64 {
	fi := i / f.frameRows
	c := f.frames[fi]
	if c.Width() == 0 {
		return -1
	}
	bit := uint64(i-fi*f.frameRows) * uint64(c.Width())
	return (f.offsets[fi] + int64(bit/8)) / lineBytes
}
