package pack

import (
	"math/rand"
	"testing"
)

func TestFramesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int32, 10_000) // not a multiple of the frame size
	for i := range vals {
		vals[i] = rng.Int31n(1 << 14)
	}
	f := NewFrames(vals, 2048)
	if f.Len() != len(vals) || f.NumFrames() != 5 || f.FrameRows() != 2048 {
		t.Fatalf("shape: len %d frames %d", f.Len(), f.NumFrames())
	}
	for i, want := range vals {
		if got := f.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
	got := f.Unpack()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatal("Unpack mismatch")
		}
	}
	// UnpackRange across frame boundaries.
	dst := make([]int32, 5000)
	f.UnpackRange(1000, 6000, dst)
	for i := range dst {
		if dst[i] != vals[1000+i] {
			t.Fatalf("UnpackRange mismatch at %d", i)
		}
	}
}

// TestFramesPerFrameWidths pins the point of per-frame encoding: a column
// whose values are locally narrow but globally wide packs to the local
// width, not the global span.
func TestFramesPerFrameWidths(t *testing.T) {
	vals := make([]int32, 4096)
	for i := range vals {
		base := int32(0)
		if i >= 2048 {
			base = 1 << 30 // second frame lives in a distant range
		}
		vals[i] = base + int32(i%16)
	}
	f := NewFrames(vals, 2048)
	lo, hi := f.WidthRange(0, len(vals))
	if lo != 4 || hi != 4 {
		t.Errorf("per-frame widths = %d..%d, want 4..4 (global span would need 31)", lo, hi)
	}
	if g := New(vals); g.Width() < 30 {
		t.Errorf("sanity: global packing width = %d, expected ~31", g.Width())
	}
	for i, want := range vals {
		if f.Get(i) != want {
			t.Fatalf("round trip broken at %d", i)
		}
	}
}

// TestFramesBytesRangeAdditive pins the invariance the partitioned cost
// model relies on: BytesRange sums exactly over any frame-aligned split.
func TestFramesBytesRangeAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]int32, 20_000)
	for i := range vals {
		vals[i] = rng.Int31n(1 << uint(1+i/2048)) // widths vary per frame
	}
	f := NewFrames(vals, 2048)
	total := f.BytesRange(0, len(vals))
	if total != f.Bytes() {
		t.Fatalf("BytesRange(full) = %d, Bytes = %d", total, f.Bytes())
	}
	for _, cuts := range [][]int{{8192}, {2048, 4096, 16384}, {2048, 4096, 6144, 8192, 10240, 12288, 14336, 16384, 18432}} {
		var sum int64
		lo := 0
		for _, hi := range append(cuts, len(vals)) {
			sum += f.BytesRange(lo, hi)
			lo = hi
		}
		if sum != total {
			t.Errorf("split %v: sum %d != total %d", cuts, sum, total)
		}
	}
	if f.BytesRange(5, 5) != 0 {
		t.Error("empty range should be zero bytes")
	}
}

// TestFramesLineAlignment pins the storage property the exact line counts
// depend on: with 2048-row frames, every frame starts on a 64 B and 128 B
// line boundary, so two frames never share a line.
func TestFramesLineAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]int32, 16_384)
	for i := range vals {
		vals[i] = rng.Int31n(1 << uint(1+i/2048*3)) // widths 1,4,7,...
	}
	f := NewFrames(vals, 2048)
	for fi := 0; fi < f.NumFrames(); fi++ {
		if off := f.offsets[fi]; off%128 != 0 {
			t.Errorf("frame %d starts at byte %d, not 128 B aligned", fi, off)
		}
	}
	// LineOf is monotone within a column and distinct across frames.
	for _, lineBytes := range []int64{64, 128} {
		last := int64(-1)
		for i := 0; i < f.Len(); i++ {
			l := f.LineOf(i, lineBytes)
			if l < last {
				t.Fatalf("LineOf not monotone at %d (line size %d)", i, lineBytes)
			}
			last = l
		}
	}
}

// TestFramesConstant: width-0 frames occupy no storage and report no line.
func TestFramesConstant(t *testing.T) {
	vals := make([]int32, 5000)
	for i := range vals {
		vals[i] = -7
	}
	f := NewFrames(vals, 2048)
	if f.Bytes() != 0 {
		t.Errorf("constant column packed to %d bytes", f.Bytes())
	}
	if f.LineOf(3000, 64) != -1 {
		t.Error("width-0 frame reported a storage line")
	}
	if f.Get(4999) != -7 {
		t.Error("constant value lost")
	}
	if lo, hi := f.WidthRange(0, len(vals)); lo != 0 || hi != 0 {
		t.Errorf("constant widths = %d..%d", lo, hi)
	}
}

func TestFramesEmptyAndBadArgs(t *testing.T) {
	f := NewFrames(nil, 2048)
	if f.Len() != 0 || f.Bytes() != 0 || f.NumFrames() != 0 {
		t.Error("empty frames")
	}
	if f.BytesRange(0, 0) != 0 {
		t.Error("empty BytesRange")
	}
	mustPanic(t, "zero frame size", func() { NewFrames([]int32{1}, 0) })
	g := NewFrames([]int32{1, 2, 3}, 2)
	mustPanic(t, "negative lo", func() { g.UnpackRange(-1, 2, make([]int32, 4)) })
	mustPanic(t, "inverted range", func() { g.BytesRange(2, 1) })
	mustPanic(t, "inverted width range", func() { g.WidthRange(2, 1) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

// TestFramesNegativeFrameOfReference: frames whose reference is negative —
// including a full-span frame where max-min overflows int32 — round-trip
// through the modular frame-of-reference arithmetic.
func TestFramesNegativeFrameOfReference(t *testing.T) {
	vals := []int32{-2147483648, 2147483647, -1, 0, 1, -1000000, 1000000}
	f := NewFrames(vals, 4) // first frame spans the full int32 range
	for i, want := range vals {
		if got := f.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
	if _, hi := f.WidthRange(0, len(vals)); hi != 32 {
		t.Errorf("full-span frame width = %d, want 32", hi)
	}
}
