package pack

import (
	"encoding/binary"
	"testing"
)

// FuzzPackRoundTrip asserts the invariant every packed execution path rests
// on: for any int32 column, pack → unpack equals the plain column — for
// both the single-frame Column and the framed encoding (with a small frame
// size so multi-frame paths and partial final frames are exercised), and
// the framed footprint bookkeeping stays consistent.
func FuzzPackRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
	f.Add(binary.LittleEndian.AppendUint32(
		binary.LittleEndian.AppendUint32(nil, 0x80000000), 0x7fffffff))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := make([]int32, len(data)/4)
		for i := range vals {
			vals[i] = int32(binary.LittleEndian.Uint32(data[i*4:]))
		}
		c := New(vals)
		if c.Len() != len(vals) {
			t.Fatalf("Column.Len = %d, want %d", c.Len(), len(vals))
		}
		for i, want := range vals {
			if got := c.Get(i); got != want {
				t.Fatalf("Column.Get(%d) = %d, want %d (width %d, ref %d)", i, got, want, c.Width(), c.Ref())
			}
		}
		fr := NewFrames(vals, 8)
		got := fr.Unpack()
		for i, want := range vals {
			if got[i] != want {
				t.Fatalf("Frames.Get(%d) = %d, want %d", i, got[i], want)
			}
		}
		if fr.Bytes() != fr.BytesRange(0, fr.Len()) {
			t.Fatalf("Frames bytes %d != full BytesRange %d", fr.Bytes(), fr.BytesRange(0, fr.Len()))
		}
		if fr.Bytes() > 0 && c.Width() > 0 && fr.Bytes() > c.PlainBytes()+8*int64(fr.NumFrames()) {
			t.Fatalf("framed footprint %d exceeds plain %d beyond word rounding", fr.Bytes(), c.PlainBytes())
		}
	})
}
