// Package pack implements bit-packed integer columns — the compression
// extension the paper's Section 5.5 singles out: "GPUs have higher compute
// to bandwidth ratio than CPUs which could allow use of non-byte
// addressable packing schemes."
//
// A packed Column stores each value in the minimum number of bits (after
// subtracting a frame-of-reference minimum), laid out contiguously across
// 64-bit words; Frames splits a column into fixed-size frames with
// independent references and widths, which is the form the execution
// engines scan (ssb.Dataset.Pack builds one per fact column). Scanning
// packed data reads width/32 of the plain column's bytes but pays an
// unpacking cost per element; on the GPU (14 Tflops against 880 GBps) the
// scan stays bandwidth bound and the traffic saving is a real speedup,
// while on the CPU the same scan can tip into compute bound — exactly the
// asymmetry the paper predicts.
//
// Packing is wired through the full stack: queries.RunOptions.Packed runs
// any engine over the encoding (row-identical to plain by construction),
// the coprocessor ships packed bytes over PCIe, internal/serve keeps hot
// packed columns resident in device memory, and the ablation benchmark
// BenchmarkAblation_PackedScan isolates the kernel-level effect.
package pack

import "fmt"

// Column is an immutable bit-packed int32 column.
type Column struct {
	words []uint64
	n     int
	width uint // bits per value, 1..32 (0 means all values equal Ref)
	ref   int32
}

// BitsFor returns the number of bits needed for the value range [0, maxDelta].
func BitsFor(maxDelta uint32) uint {
	w := uint(0)
	for maxDelta != 0 {
		w++
		maxDelta >>= 1
	}
	return w
}

// New packs vals with frame-of-reference encoding: width is chosen from the
// span max(vals)-min(vals).
func New(vals []int32) *Column {
	c := &Column{n: len(vals)}
	if len(vals) == 0 {
		return c
	}
	mn, mx := vals[0], vals[0]
	for _, v := range vals {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	c.ref = mn
	c.width = BitsFor(uint32(mx - mn))
	if c.width == 0 {
		return c // constant column: zero storage
	}
	c.words = make([]uint64, (uint(len(vals))*c.width+63)/64)
	for i, v := range vals {
		c.put(i, uint32(v-mn))
	}
	return c
}

func (c *Column) put(i int, v uint32) {
	bit := uint(i) * c.width
	word, off := bit/64, bit%64
	c.words[word] |= uint64(v) << off
	if off+c.width > 64 {
		c.words[word+1] |= uint64(v) >> (64 - off)
	}
}

// Get returns the i-th value.
func (c *Column) Get(i int) int32 {
	if c.width == 0 {
		return c.ref
	}
	bit := uint(i) * c.width
	word, off := bit/64, bit%64
	v := c.words[word] >> off
	if off+c.width > 64 {
		v |= c.words[word+1] << (64 - off)
	}
	mask := uint64(1)<<c.width - 1
	return c.ref + int32(v&mask)
}

// Len returns the number of values.
func (c *Column) Len() int { return c.n }

// Width returns the bits per value.
func (c *Column) Width() uint { return c.width }

// Ref returns the frame-of-reference minimum.
func (c *Column) Ref() int32 { return c.ref }

// Bytes returns the packed storage footprint.
func (c *Column) Bytes() int64 { return int64(len(c.words)) * 8 }

// PlainBytes returns the footprint of the equivalent 4-byte column.
func (c *Column) PlainBytes() int64 { return int64(c.n) * 4 }

// Ratio returns the compression ratio (plain/packed); +Inf for constant
// columns is avoided by reporting against one word minimum.
func (c *Column) Ratio() float64 {
	b := c.Bytes()
	if b == 0 {
		b = 8
	}
	return float64(c.PlainBytes()) / float64(b)
}

// Unpack decodes the whole column into a fresh slice.
func (c *Column) Unpack() []int32 {
	out := make([]int32, c.n)
	for i := range out {
		out[i] = c.Get(i)
	}
	return out
}

// UnpackRange decodes [lo, hi) into dst (len >= hi-lo) and returns hi-lo.
func (c *Column) UnpackRange(lo, hi int, dst []int32) int {
	if hi > c.n {
		hi = c.n
	}
	if lo < 0 || lo > hi {
		panic(fmt.Sprintf("pack: bad range [%d,%d)", lo, hi))
	}
	for i := lo; i < hi; i++ {
		dst[i-lo] = c.Get(i)
	}
	return hi - lo
}

// UnpackCyclesPerElem is the calibrated per-element decode cost in scalar
// cycles (two shifts, a mask, an add and the word bookkeeping).
const UnpackCyclesPerElem = 4.0
