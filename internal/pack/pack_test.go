package pack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsFor(t *testing.T) {
	cases := map[uint32]uint{0: 0, 1: 1, 2: 2, 3: 2, 7: 3, 8: 4, 255: 8, 1 << 31: 32}
	for v, want := range cases {
		if got := BitsFor(v); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int32, 10_000)
	for i := range vals {
		vals[i] = rng.Int31n(1000) - 500 // negative refs too
	}
	c := New(vals)
	if c.Len() != len(vals) {
		t.Fatalf("len = %d", c.Len())
	}
	for i, want := range vals {
		if got := c.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
	got := c.Unpack()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatal("Unpack mismatch")
		}
	}
	// 1000 distinct deltas need 10 bits: ratio >= 3x.
	if c.Width() != 10 {
		t.Errorf("width = %d, want 10", c.Width())
	}
	if c.Ratio() < 3 {
		t.Errorf("ratio = %.2f", c.Ratio())
	}
}

func TestPackRoundTripProperty(t *testing.T) {
	f := func(vals []int32) bool {
		c := New(vals)
		for i, want := range vals {
			if c.Get(i) != want {
				return false
			}
		}
		return c.Len() == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConstantColumn(t *testing.T) {
	c := New([]int32{42, 42, 42, 42})
	if c.Width() != 0 || c.Bytes() != 0 {
		t.Errorf("constant column should pack to zero bits, got width %d", c.Width())
	}
	for i := 0; i < 4; i++ {
		if c.Get(i) != 42 {
			t.Fatal("constant value lost")
		}
	}
	if c.Ratio() <= 0 {
		t.Error("ratio must stay finite")
	}
}

func TestEmptyColumn(t *testing.T) {
	c := New(nil)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Error("empty column")
	}
	if got := c.Unpack(); len(got) != 0 {
		t.Error("empty unpack")
	}
}

func TestUnpackRange(t *testing.T) {
	vals := []int32{10, 20, 30, 40, 50}
	c := New(vals)
	dst := make([]int32, 3)
	if m := c.UnpackRange(1, 4, dst); m != 3 {
		t.Fatalf("m = %d", m)
	}
	if dst[0] != 20 || dst[2] != 40 {
		t.Errorf("range = %v", dst)
	}
	// hi clamps to n.
	dst = make([]int32, 5)
	if m := c.UnpackRange(3, 10, dst); m != 2 {
		t.Errorf("clamped m = %d", m)
	}
}

func TestUnpackRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative lo should panic")
		}
	}()
	New([]int32{1}).UnpackRange(-1, 1, make([]int32, 2))
}

func TestWordBoundarySpans(t *testing.T) {
	// Width 20 values straddle 64-bit word boundaries every few entries.
	vals := make([]int32, 1000)
	rng := rand.New(rand.NewSource(2))
	for i := range vals {
		vals[i] = rng.Int31n(1 << 20)
	}
	c := New(vals)
	if c.Width() > 20 {
		t.Fatalf("width = %d", c.Width())
	}
	for i, want := range vals {
		if c.Get(i) != want {
			t.Fatalf("boundary span broken at %d", i)
		}
	}
}

func TestFullWidthValues(t *testing.T) {
	vals := []int32{-2147483648, 2147483647, 0, -1, 1}
	c := New(vals)
	if c.Width() != 32 {
		t.Fatalf("full-span width = %d, want 32", c.Width())
	}
	for i, want := range vals {
		if got := c.Get(i); got != want {
			t.Fatalf("full-width Get(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestNegativeFrameOfReference pins the reference handling for columns that
// live entirely below zero: the reference is the (negative) minimum and the
// width covers only the span, not the absolute magnitudes.
func TestNegativeFrameOfReference(t *testing.T) {
	vals := []int32{-1000, -993, -999, -1000, -994}
	c := New(vals)
	if c.Ref() != -1000 {
		t.Errorf("ref = %d, want -1000", c.Ref())
	}
	if c.Width() != 3 { // span 7 needs 3 bits
		t.Errorf("width = %d, want 3", c.Width())
	}
	for i, want := range vals {
		if got := c.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
}
