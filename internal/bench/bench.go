// Package bench is the reporting harness for the experiment reproduction:
// formatting for the paper's figures (series over a swept parameter) and
// tables (rows of per-query times), linear extrapolation from the executed
// input size to the paper's input size, and the Section 5.4 dollar-cost
// comparison.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one line of a figure: a name and one value per x-axis point.
type Series struct {
	Name   string
	Values []float64
}

// Figure is a reproduced figure: an x-axis and a set of series, printed as
// aligned columns so the rows a plot would show are directly comparable.
type Figure struct {
	Title  string
	XLabel string
	XTicks []string
	YLabel string
	Series []Series
}

// AddSeries appends a series to the figure.
func (f *Figure) AddSeries(name string, values []float64) {
	f.Series = append(f.Series, Series{Name: name, Values: values})
}

// Fprint renders the figure as an aligned text table.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", f.Title)
	if f.YLabel != "" {
		fmt.Fprintf(w, "   (values: %s)\n", f.YLabel)
	}
	width := 12
	for _, s := range f.Series {
		if len(s.Name)+2 > width {
			width = len(s.Name) + 2
		}
	}
	fmt.Fprintf(w, "%-*s", width, f.XLabel)
	for _, x := range f.XTicks {
		fmt.Fprintf(w, "%12s", x)
	}
	fmt.Fprintln(w)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-*s", width, s.Name)
		for i := range f.XTicks {
			if i < len(s.Values) && s.Values[i] >= 0 && !math.IsNaN(s.Values[i]) {
				fmt.Fprintf(w, "%12.3f", s.Values[i])
			} else {
				fmt.Fprintf(w, "%12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Table is a reproduced table: named columns and labelled rows.
type Table struct {
	Title   string
	Columns []string
	// NoMean suppresses the trailing mean row, for tables whose columns mix
	// units (e.g. counts next to latencies) where a column mean is
	// meaningless.
	NoMean bool
	rows   []tableRow
}

type tableRow struct {
	label  string
	values []float64
}

// AddRow appends a labelled row.
func (t *Table) AddRow(label string, values ...float64) {
	t.rows = append(t.rows, tableRow{label: label, values: values})
}

// Rows returns the number of rows added.
func (t *Table) Rows() int { return len(t.rows) }

// ColumnMean returns the mean of column i across rows.
func (t *Table) ColumnMean(i int) float64 {
	var sum float64
	n := 0
	for _, r := range t.rows {
		if i < len(r.values) {
			sum += r.values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fprint renders the table with a trailing geometric-mean-free "mean" row,
// matching the figures' mean columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	width := 8
	for _, r := range t.rows {
		if len(r.label)+2 > width {
			width = len(r.label) + 2
		}
	}
	fmt.Fprintf(w, "%-*s", width, "")
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%16s", c)
	}
	fmt.Fprintln(w)
	for _, r := range t.rows {
		fmt.Fprintf(w, "%-*s", width, r.label)
		for i := range t.Columns {
			if i < len(r.values) {
				fmt.Fprintf(w, "%16.3f", r.values[i])
			} else {
				fmt.Fprintf(w, "%16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	if !t.NoMean {
		fmt.Fprintf(w, "%-*s", width, "mean")
		for i := range t.Columns {
			fmt.Fprintf(w, "%16.3f", t.ColumnMean(i))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Scale linearly extrapolates a simulated time measured on n elements to
// the paper's element count. The traffic models are linear in the input
// size for a fixed working-structure size, so this is exact within the
// model (DESIGN.md Section 4).
func Scale(seconds float64, n, paperN int64) float64 {
	if n <= 0 {
		return seconds
	}
	return seconds * float64(paperN) / float64(n)
}

// MS converts seconds to milliseconds.
func MS(seconds float64) float64 { return seconds * 1e3 }

// Clocked is the subset of device.Clock the scaler needs.
type Clocked interface {
	Seconds() float64
	LaunchSeconds() float64
}

// ScaleClock extrapolates a clock's accumulated time from n executed
// elements to paperN, holding the fixed launch overhead constant (only the
// traffic terms are linear in the input).
func ScaleClock(c Clocked, n, paperN int64) float64 {
	launch := c.LaunchSeconds()
	return Scale(c.Seconds()-launch, n, paperN) + launch
}

// Cost is the Section 5.4 dollar-cost comparison.
type Cost struct {
	CPURentPerHour float64
	GPURentPerHour float64
}

// DefaultCost returns the AWS prices from Table 3 (r5.2xlarge vs
// p3.2xlarge).
func DefaultCost() Cost {
	return Cost{CPURentPerHour: 0.504, GPURentPerHour: 3.06}
}

// Ratio returns the renting-cost ratio GPU/CPU (~6x).
func (c Cost) Ratio() float64 { return c.GPURentPerHour / c.CPURentPerHour }

// Effectiveness returns the cost-effectiveness improvement of the GPU given
// a mean performance speedup: speedup / cost ratio (the paper's "4x more
// cost effective" with a 25x speedup and 6x cost).
func (c Cost) Effectiveness(speedup float64) float64 {
	return speedup / c.Ratio()
}

// GeoMean returns the geometric mean of vs (the paper reports mean
// speedups across the 13 SSB queries).
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	prod := 1.0
	for _, v := range vs {
		prod *= v
	}
	return pow(prod, 1/float64(len(vs)))
}

func pow(x, p float64) float64 { return math.Pow(x, p) }

// SortTicks sorts a slice of (tick, value) columns by numeric tick where
// possible, keeping series aligned; used by sweeps assembled from maps.
func SortTicks(ticks []string, series map[string][]float64) {
	idx := make([]int, len(ticks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ticks[idx[a]] < ticks[idx[b]] })
	reorder := func(vs []float64) {
		tmp := make([]float64, len(vs))
		copy(tmp, vs)
		for i, j := range idx {
			vs[i] = tmp[j]
		}
	}
	tmp := make([]string, len(ticks))
	copy(tmp, ticks)
	for i, j := range idx {
		ticks[i] = tmp[j]
	}
	for _, vs := range series {
		reorder(vs)
	}
}

// HumanBytes renders a byte count the way the Figure 13 x-axis labels do.
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// Banner renders a section banner for the CLI reports.
func Banner(w io.Writer, s string) {
	fmt.Fprintf(w, "%s\n%s\n", s, strings.Repeat("-", len(s)))
}
