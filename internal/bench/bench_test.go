package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFigurePrint(t *testing.T) {
	f := Figure{Title: "Fig X", XLabel: "sel", XTicks: []string{"0.0", "0.5", "1.0"}, YLabel: "ms"}
	f.AddSeries("CPU If", []float64{1, 2, 3})
	f.AddSeries("GPU", []float64{0.1, 0.2}) // short series pads with '-'
	var buf bytes.Buffer
	f.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Fig X", "CPU If", "GPU", "0.5", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestTablePrintAndMean(t *testing.T) {
	tb := Table{Title: "Fig 16", Columns: []string{"CPU", "GPU"}}
	tb.AddRow("q1.1", 10, 1)
	tb.AddRow("q1.2", 20, 2)
	if tb.Rows() != 2 {
		t.Error("row count")
	}
	if m := tb.ColumnMean(0); m != 15 {
		t.Errorf("mean = %f", m)
	}
	if m := tb.ColumnMean(5); m != 0 {
		t.Errorf("out-of-range mean = %f", m)
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	if !strings.Contains(buf.String(), "mean") {
		t.Error("missing mean row")
	}
}

func TestTableNoMean(t *testing.T) {
	tb := Table{Title: "stats", Columns: []string{"requests", "wall ms"}, NoMean: true}
	tb.AddRow("gpu", 12, 0.5)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	if strings.Contains(buf.String(), "mean") {
		t.Errorf("NoMean table still printed a mean row:\n%s", buf.String())
	}
}

func TestScale(t *testing.T) {
	if got := Scale(1.0, 1<<20, 1<<24); got != 16 {
		t.Errorf("scale = %f", got)
	}
	if got := Scale(2.0, 0, 100); got != 2.0 {
		t.Error("zero n should not scale")
	}
	if MS(0.25) != 250 {
		t.Error("MS")
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultCost()
	if r := c.Ratio(); math.Abs(r-6.07) > 0.05 {
		t.Errorf("cost ratio = %.2f, paper says ~6x", r)
	}
	// Paper: 25x speedup over 6x cost = ~4x cost effectiveness.
	if e := c.Effectiveness(25); e < 3.8 || e > 4.4 {
		t.Errorf("effectiveness = %.2f, want ~4", e)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Errorf("geomean = %f", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		8 << 10: "8KB",
		2 << 20: "2MB",
		1 << 30: "1GB",
	}
	for n, want := range cases {
		if got := HumanBytes(n); got != want {
			t.Errorf("HumanBytes(%d) = %s, want %s", n, got, want)
		}
	}
}

func TestSortTicks(t *testing.T) {
	ticks := []string{"c", "a", "b"}
	series := map[string][]float64{"s": {3, 1, 2}}
	SortTicks(ticks, series)
	if ticks[0] != "a" || series["s"][0] != 1 || series["s"][2] != 3 {
		t.Errorf("sort ticks wrong: %v %v", ticks, series["s"])
	}
}

func TestBanner(t *testing.T) {
	var buf bytes.Buffer
	Banner(&buf, "Hello")
	if !strings.Contains(buf.String(), "-----") {
		t.Error("banner underline missing")
	}
}
