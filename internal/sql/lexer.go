// Package sql is the ad-hoc query frontend: a small SQL dialect covering
// the star-schema shape the engines execute —
//
//	SELECT agg [, agg | group cols]... FROM lineorder [, dims | JOIN dim ON ...]
//	[WHERE pred AND ...] [GROUP BY cols] [ORDER BY keys] [LIMIT n]
//
// where agg is SUM/AVG/MIN/MAX over an engine aggregate expression or
// COUNT(*), and ORDER BY keys are 1-based select-list ordinals or grouped
// columns, each optionally DESC.
//
// — compiled in three stages: lexer -> parser (AST with a canonical
// printer) -> binder, which lowers the AST onto the SSB schema and emits a
// queries.Query that runs unchanged on all six engines. The dialect parses
// the output of queries.Describe, so every built-in SSB query round-trips
// through the frontend (see the golden test).
package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkNumber
	tkString
	tkPunct // one of ( ) , . ; * - = < <= > >=
)

// token is one lexeme with its byte offset (for error messages).
type token struct {
	kind tokenKind
	text string // idents lowercased; punctuation verbatim; strings unquoted
	num  int64  // valid when kind == tkNumber
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tkEOF:
		return "end of input"
	case tkString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes the statement. "--" comments run to end of line. Strings
// are single-quoted with no escapes (SSB literals never contain quotes).
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			toks = append(toks, token{kind: tkIdent, text: strings.ToLower(src[start:i]), pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			n, err := strconv.ParseInt(src[start:i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: number %q at offset %d out of range", src[start:i], start)
			}
			toks = append(toks, token{kind: tkNumber, text: strconv.FormatInt(n, 10), num: n, pos: start})
		case c == '\'':
			start := i
			i++
			for i < len(src) && src[i] != '\'' {
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("sql: unterminated string starting at offset %d", start)
			}
			toks = append(toks, token{kind: tkString, text: src[start+1 : i], pos: start})
			i++
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < len(src) && src[i] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{kind: tkPunct, text: op, pos: i - len(op)})
		case strings.ContainsRune("(),.;*-=", rune(c)):
			toks = append(toks, token{kind: tkPunct, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tkEOF, pos: len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// keywords are reserved: they never lex into column or table names.
var keywords = map[string]bool{
	"select": true, "sum": true, "from": true, "where": true, "and": true,
	"group": true, "by": true, "between": true, "in": true, "join": true,
	"inner": true, "on": true, "as": true,
	"count": true, "avg": true, "min": true, "max": true,
	"order": true, "limit": true, "asc": true, "desc": true,
}
