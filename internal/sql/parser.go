package sql

import "fmt"

// Parse lexes and parses one SELECT statement. The grammar (README "SQL
// dialect" section):
//
//	select   := SELECT item (',' item)* FROM table (',' table)* join*
//	            [WHERE pred (AND pred)*] [GROUP BY col (',' col)*]
//	            [ORDER BY key (',' key)*] [LIMIT number] [';']
//	item     := func '(' col [('*'|'-') col] ')' | COUNT '(' '*' ')' | col
//	func     := SUM | COUNT | AVG | MIN | MAX
//	table    := ident [[AS] ident]
//	join     := [INNER] JOIN table ON col '=' col
//	pred     := col op literal | col BETWEEN literal AND literal
//	          | col IN '(' literal (',' literal)* ')' | col '=' col
//	          | number '=' number          (tautology, e.g. WHERE 1=1)
//	key      := (number | col) [ASC | DESC]    (number: 1-based select ordinal)
//	op       := '=' | '<' | '<=' | '>' | '>='
//	col      := ident ['.' ident]
//	literal  := ['-'] number | 'string'
func Parse(src string) (*Select, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.punct(";") // optional terminator
	if t := p.peek(); t.kind != tkEOF {
		return nil, p.errorf("unexpected %s after statement", t)
	}
	return sel, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tkEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// keyword consumes the given keyword if it is next.
func (p *parser) keyword(kw string) bool {
	if t := p.peek(); t.kind == tkIdent && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf("expected %s, got %s", kw, p.peek())
	}
	return nil
}

// punct consumes the given punctuation token if it is next.
func (p *parser) punct(s string) bool {
	if t := p.peek(); t.kind == tkPunct && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.punct(s) {
		return p.errorf("expected %q, got %s", s, p.peek())
	}
	return nil
}

// ident consumes a non-keyword identifier.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tkIdent || keywords[t.text] {
		return "", p.errorf("expected identifier, got %s", t)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := &Select{}
	for {
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		t, err := p.parseTable()
		if err != nil {
			return nil, err
		}
		sel.Tables = append(sel.Tables, t)
		if !p.punct(",") {
			break
		}
	}
	for {
		if p.keyword("inner") {
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
		} else if !p.keyword("join") {
			break
		}
		t, err := p.parseTable()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		left, err := p.parseCol()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		right, err := p.parseCol()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Table: t, Left: left, Right: right})
	}
	if p.keyword("where") {
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			sel.Where = append(sel.Where, pred)
			if !p.keyword("and") {
				break
			}
		}
	}
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseCol()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, c)
			if !p.punct(",") {
				break
			}
		}
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			var it OrderItem
			if t := p.peek(); t.kind == tkNumber {
				p.next()
				if t.num < 1 {
					return nil, fmt.Errorf("sql: offset %d: ORDER BY ordinal %d is not a 1-based select position", t.pos, t.num)
				}
				it.Ordinal = int(t.num)
			} else {
				c, err := p.parseCol()
				if err != nil {
					return nil, err
				}
				it.Col = &c
			}
			if p.keyword("desc") {
				it.Desc = true
			} else {
				p.keyword("asc") // ascending is the default; ASC is accepted noise
			}
			sel.OrderBy = append(sel.OrderBy, it)
			if !p.punct(",") {
				break
			}
		}
	}
	if p.keyword("limit") {
		t := p.peek()
		if t.kind != tkNumber {
			return nil, p.errorf("expected row count after LIMIT, got %s", t)
		}
		p.next()
		if t.num < 1 {
			return nil, fmt.Errorf("sql: offset %d: LIMIT %d must be at least 1", t.pos, t.num)
		}
		sel.Limit = int(t.num)
	}
	return sel, nil
}

// aggFuncs maps the aggregate keyword to its canonical spelling.
var aggFuncs = map[string]string{
	"sum": "SUM", "count": "COUNT", "avg": "AVG", "min": "MIN", "max": "MAX",
}

func (p *parser) parseItem() (SelectItem, error) {
	for kw, fn := range aggFuncs {
		if !p.keyword(kw) {
			continue
		}
		if err := p.expectPunct("("); err != nil {
			return SelectItem{}, err
		}
		agg := &AggExpr{Func: fn}
		if fn == "COUNT" && p.punct("*") {
			agg.Star = true
			if err := p.expectPunct(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: agg}, nil
		}
		var err error
		if agg.Left, err = p.parseCol(); err != nil {
			return SelectItem{}, err
		}
		switch {
		case p.punct("*"):
			agg.Op = '*'
		case p.punct("-"):
			agg.Op = '-'
		}
		if agg.Op != 0 {
			if agg.Right, err = p.parseCol(); err != nil {
				return SelectItem{}, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Agg: agg}, nil
	}
	c, err := p.parseCol()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: &c}, nil
}

func (p *parser) parseTable() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	t := TableRef{Name: name}
	p.keyword("as")
	if tok := p.peek(); tok.kind == tkIdent && !keywords[tok.text] {
		t.Alias = tok.text
		p.next()
	}
	return t, nil
}

func (p *parser) parseCol() (ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.punct(".") {
		col, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Col: col}, nil
	}
	return ColRef{Col: first}, nil
}

func (p *parser) parsePred() (Pred, error) {
	// Constant predicate: Describe emits "WHERE 1=1" as the conjunct anchor.
	if t := p.peek(); t.kind == tkNumber {
		lhs := p.next()
		if err := p.expectPunct("="); err != nil {
			return Pred{}, err
		}
		rhs := p.peek()
		if rhs.kind != tkNumber {
			return Pred{}, p.errorf("expected number, got %s", rhs)
		}
		p.next()
		if lhs.num != rhs.num {
			return Pred{}, fmt.Errorf("sql: offset %d: constant predicate %d = %d is always false", lhs.pos, lhs.num, rhs.num)
		}
		return Pred{Kind: predTrivial}, nil
	}
	col, err := p.parseCol()
	if err != nil {
		return Pred{}, err
	}
	if p.keyword("between") {
		lo, err := p.parseLiteral()
		if err != nil {
			return Pred{}, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return Pred{}, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return Pred{}, err
		}
		return Pred{Kind: predBetween, Col: col, Lo: lo, Hi: hi}, nil
	}
	if p.keyword("in") {
		if err := p.expectPunct("("); err != nil {
			return Pred{}, err
		}
		var list []Literal
		for {
			l, err := p.parseLiteral()
			if err != nil {
				return Pred{}, err
			}
			list = append(list, l)
			if !p.punct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return Pred{}, err
		}
		return Pred{Kind: predIn, Col: col, List: list}, nil
	}
	var op string
	for _, cand := range []string{"=", "<=", ">=", "<", ">"} {
		if p.punct(cand) {
			op = cand
			break
		}
	}
	if op == "" {
		return Pred{}, p.errorf("expected comparison operator, got %s", p.peek())
	}
	// "col = other.col" is a join predicate; any other operand is a literal.
	if op == "=" {
		if t := p.peek(); t.kind == tkIdent && !keywords[t.text] {
			rhs, err := p.parseCol()
			if err != nil {
				return Pred{}, err
			}
			return Pred{Kind: predJoinEq, Col: col, RHS: rhs}, nil
		}
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return Pred{}, err
	}
	return Pred{Kind: predCompare, Col: col, Op: op, Lit: lit}, nil
}

func (p *parser) parseLiteral() (Literal, error) {
	neg := p.punct("-")
	t := p.peek()
	switch {
	case t.kind == tkNumber:
		p.next()
		n := t.num
		if neg {
			n = -n
		}
		return Literal{Num: n}, nil
	case t.kind == tkString && !neg:
		p.next()
		return Literal{IsStr: true, Str: t.text}, nil
	default:
		return Literal{}, p.errorf("expected literal, got %s", t)
	}
}
