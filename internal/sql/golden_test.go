package sql

import (
	"testing"

	"crystal/internal/device"
	"crystal/internal/planner"
	"crystal/internal/queries"
	"crystal/internal/ssb"
)

var goldenDS = ssb.GenerateRows(60_000)

// TestThirteenQueriesRoundTripThroughSQL is the tentpole golden test: every
// built-in SSB query, rendered as SQL by Describe, must parse, bind to the
// hand-built definition modulo the binder's filter-order normalization, and
// produce row-identical results on all six engines. Where the hand-tuned
// filter order is already canonical (everything but flight 1), the bound
// query must also match second-for-second.
func TestThirteenQueriesRoundTripThroughSQL(t *testing.T) {
	for _, hand := range queries.All() {
		stmt := hand.Describe()
		bound, err := Compile(stmt)
		if err != nil {
			t.Errorf("%s: Describe output does not compile: %v\n%s", hand.ID, err, stmt)
			continue
		}
		norm := normalizeHand(hand)
		if got, want := bound.Canonical(), norm.Canonical(); got != want {
			t.Errorf("%s: canonical forms differ\n  sql:  %s\n  hand: %s", hand.ID, got, want)
			continue
		}
		physEqual := bound.Canonical() == hand.Canonical()
		for _, e := range queries.Engines() {
			want := queries.Run(goldenDS, hand, e)
			got := queries.Run(goldenDS, bound, e)
			if !got.Equal(want) {
				t.Errorf("%s on %s: SQL-bound rows differ from hand-built", hand.ID, e)
			}
			if physEqual && got.Seconds != want.Seconds {
				t.Errorf("%s on %s: SQL-bound simulated %.9fs, hand-built %.9fs", hand.ID, e, got.Seconds, want.Seconds)
			}
		}
	}
}

// normalizeHand applies the binder's filter-order normalization to a
// catalog query (on deep copies; the catalog's own order is untouched).
func normalizeHand(q queries.Query) queries.Query {
	copyFilters := func(fs []queries.Filter) []queries.Filter {
		out := append([]queries.Filter(nil), fs...)
		for i := range out {
			out[i].In = append([]int32(nil), out[i].In...)
		}
		return out
	}
	q.FactFilters = sortFilters(copyFilters(q.FactFilters))
	q.Joins = append([]queries.JoinSpec(nil), q.Joins...)
	for i := range q.Joins {
		q.Joins[i].Filters = sortFilters(copyFilters(q.Joins[i].Filters))
	}
	return q
}

// TestAdhocQueryRunsEverywhere compiles a query that is NOT one of the 13
// SSB definitions and checks all engines agree with the row-at-a-time
// reference — the point of the frontend.
func TestAdhocQueryRunsEverywhere(t *testing.T) {
	q := mustCompile(t, `SELECT SUM(lo.revenue), supplier.nation, date.year
		FROM lineorder, supplier, date
		WHERE lo.suppkey = supplier.key AND supplier.region = 'EUROPE'
		  AND lo.orderdate = date.key AND date.year BETWEEN 1995 AND 1996
		  AND lo.quantity > 40
		GROUP BY supplier.nation, date.year`)
	want := queries.Reference(goldenDS, q)
	if len(want.Groups) == 0 {
		t.Fatal("ad-hoc query selected no rows; pick a wider predicate")
	}
	for _, e := range queries.Engines() {
		got := queries.Run(goldenDS, q, e)
		if !got.Equal(want) {
			t.Errorf("%s disagrees with reference on ad-hoc query", e)
		}
	}
	// Payloads decode through the bound query like any catalog query.
	rows := q.DecodeRows(queries.Run(goldenDS, q, queries.EngineGPU))
	for _, r := range rows {
		if len(r.Labels) != 2 {
			t.Fatalf("decoded row labels = %v", r.Labels)
		}
	}
}

// TestOptimizeGroupedPreservesRows reorders an ad-hoc query's joins with
// the cost-based planner and checks the rows (and packed keys) survive.
func TestOptimizeGroupedPreservesRows(t *testing.T) {
	q := mustCompile(t, `SELECT SUM(revenue), date.year
		FROM lineorder, date, part, supplier
		WHERE orderdate = date.key AND partkey = part.key AND suppkey = supplier.key
		  AND part.category = 'MFGR#12' AND supplier.region = 'AMERICA'
		GROUP BY date.year`)
	want := queries.Reference(goldenDS, q)
	for _, dev := range []*device.Spec{device.V100(), device.I76900()} {
		opt := planner.OptimizeGrouped(dev, goldenDS, q)
		got := queries.Run(goldenDS, opt, queries.EngineGPU)
		if !got.Equal(want) {
			t.Errorf("%s: optimized join order changed the result rows", dev.Name)
		}
	}
}

// TestReadmeSpellingsMatchCatalog pins the README's SSB-style renderings
// of q1.1, q2.1, q3.1 and q4.1 to the hand-built definitions: identical
// result rows (packed keys included). Canonical forms can differ where the
// SSB text uses open-ended ranges (q1.1's lo_quantity < 25) against the
// catalog's closed ones, so row identity is the contract here; exact
// canonical equality for Describe renderings is covered above.
func TestReadmeSpellingsMatchCatalog(t *testing.T) {
	spellings := map[string]string{
		"q1.1": `SELECT SUM(lo_extendedprice * lo_discount) FROM lineorder
			WHERE lo_orderdate BETWEEN 19930101 AND 19931231
			  AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25`,
		"q2.1": `SELECT SUM(lo_revenue), p_brand1, d_year
			FROM lineorder, supplier, part, date
			WHERE lo_suppkey = s_suppkey AND s_region = 'AMERICA'
			  AND lo_partkey = p_partkey AND p_category = 'MFGR#12'
			  AND lo_orderdate = d_datekey
			GROUP BY p_brand1, d_year`,
		"q3.1": `SELECT SUM(lo_revenue), c_nation, s_nation, d_year
			FROM lineorder, customer, supplier, date
			WHERE lo_custkey = c_custkey AND c_region = 'ASIA'
			  AND lo_suppkey = s_suppkey AND s_region = 'ASIA'
			  AND lo_orderdate = d_datekey AND d_year BETWEEN 1992 AND 1997
			GROUP BY c_nation, s_nation, d_year`,
		"q4.1": `SELECT SUM(lo_revenue - lo_supplycost), c_nation, d_year
			FROM lineorder, supplier, customer, part, date
			WHERE lo_suppkey = s_suppkey AND s_region = 'AMERICA'
			  AND lo_custkey = c_custkey AND c_region = 'AMERICA'
			  AND lo_partkey = p_partkey AND p_mfgr BETWEEN 'MFGR#1' AND 'MFGR#2'
			  AND lo_orderdate = d_datekey
			GROUP BY c_nation, d_year`,
	}
	for id, stmt := range spellings {
		hand, err := queries.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		bound := mustCompile(t, stmt)
		want := queries.Reference(goldenDS, hand)
		got := queries.Reference(goldenDS, bound)
		if !got.Equal(want) {
			t.Errorf("%s: README spelling produces different rows than the catalog query", id)
		}
	}
}
