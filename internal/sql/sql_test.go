package sql

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"crystal/internal/queries"
	"crystal/internal/ssb"
)

func mustCompile(t *testing.T, stmt string) queries.Query {
	t.Helper()
	q, err := Compile(stmt)
	if err != nil {
		t.Fatalf("Compile(%q): %v", stmt, err)
	}
	return q
}

func TestParseCanonicalFixedPoint(t *testing.T) {
	cases := []string{
		"SELECT SUM(lo.revenue) FROM lineorder",
		"select   sum( revenue )\nfrom lineorder ;",
		"-- comment\nSELECT SUM(lo.extprice * lo.discount) FROM lineorder WHERE 1=1 AND lo.discount BETWEEN 1 AND 3",
		"SELECT SUM(revenue), d.year FROM lineorder, date WHERE lo_orderdate = d.key GROUP BY d.year",
		"SELECT SUM(revenue) FROM lineorder JOIN supplier ON lo.suppkey = supplier.key WHERE supplier.region = 'ASIA'",
		"SELECT SUM(revenue) FROM lineorder, customer AS cst WHERE custkey = cst.key AND cst.city IN ('UNITED KI1', 'UNITED KI5')",
		"SELECT SUM(revenue) FROM lineorder WHERE quantity >= -5 AND discount <= 3 AND extprice > 10 AND supplycost < 99",
	}
	for _, src := range cases {
		ast, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		canon := ast.String()
		ast2, err := Parse(canon)
		if err != nil {
			t.Errorf("canonical %q does not re-parse: %v", canon, err)
			continue
		}
		if again := ast2.String(); again != canon {
			t.Errorf("canonical print not a fixed point:\n first %q\nsecond %q", canon, again)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM lineorder",
		"SUM(revenue) FROM lineorder",
		"SELECT SUM(revenue)", // no FROM
		"SELECT SUM(revenue revenue) FROM lineorder",                        // bad agg expr
		"SELECT SUM(a + b) FROM lineorder",                                  // unsupported operator
		"SELECT SUM(revenue) FROM lineorder WHERE",                          // dangling WHERE
		"SELECT SUM(revenue) FROM lineorder WHERE 1 = 2",                    // always false
		"SELECT SUM(revenue) FROM lineorder WHERE quantity",                 // no operator
		"SELECT SUM(revenue) FROM lineorder WHERE quantity ! 3",             // bad character
		"SELECT SUM(revenue) FROM lineorder WHERE q BETWEEN 1",              // half a BETWEEN
		"SELECT SUM(revenue) FROM lineorder WHERE q IN ()",                  // empty IN
		"SELECT SUM(revenue) FROM lineorder WHERE q IN (1,",                 // unclosed IN
		"SELECT SUM(revenue) FROM lineorder GROUP year",                     // missing BY
		"SELECT SUM(revenue) FROM lineorder JOIN date",                      // missing ON
		"SELECT SUM(revenue) FROM lineorder; SELECT 1",                      // trailing statement
		"SELECT SUM(revenue) FROM lineorder WHERE x = 'oops",                // unterminated string
		"SELECT SUM(revenue) FROM lineorder WHERE x = 99999999999999999999", // number overflow
		"SELECT SUM(select) FROM lineorder",                                 // keyword as identifier
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestBindSimpleAggregate(t *testing.T) {
	q := mustCompile(t, "SELECT SUM(lo.extprice * lo.discount) FROM lineorder WHERE lo.discount BETWEEN 1 AND 3 AND lo.quantity < 25")
	if q.Agg != queries.AggSumExtDisc {
		t.Errorf("agg = %v", q.Agg)
	}
	want := []queries.Filter{
		{Col: "discount", Lo: 1, Hi: 3},
		{Col: "quantity", Lo: math.MinInt32, Hi: 24},
	}
	if !reflect.DeepEqual(q.FactFilters, want) {
		t.Errorf("filters = %+v", q.FactFilters)
	}
	if len(q.Joins) != 0 {
		t.Errorf("joins = %+v", q.Joins)
	}
	if !strings.HasPrefix(q.ID, "sql-") {
		t.Errorf("id = %q", q.ID)
	}
}

func TestBindComparisonOperators(t *testing.T) {
	cases := map[string]queries.Filter{
		"quantity = 7":  {Col: "quantity", Lo: 7, Hi: 7},
		"quantity < 7":  {Col: "quantity", Lo: math.MinInt32, Hi: 6},
		"quantity <= 7": {Col: "quantity", Lo: math.MinInt32, Hi: 7},
		"quantity > 7":  {Col: "quantity", Lo: 8, Hi: math.MaxInt32},
		"quantity >= 7": {Col: "quantity", Lo: 7, Hi: math.MaxInt32},
	}
	for pred, want := range cases {
		q := mustCompile(t, "SELECT SUM(revenue) FROM lineorder WHERE "+pred)
		if len(q.FactFilters) != 1 || !reflect.DeepEqual(q.FactFilters[0], want) {
			t.Errorf("%s -> %+v, want %+v", pred, q.FactFilters, want)
		}
	}
}

func TestBindDictionaryLiterals(t *testing.T) {
	q := mustCompile(t, `SELECT SUM(revenue), part.brand1, date.year
		FROM lineorder, supplier, part, date
		WHERE lo.suppkey = supplier.key AND supplier.region = 'AMERICA'
		  AND lo.partkey = part.key AND part.category = 'MFGR#12'
		  AND lo.orderdate = date.key
		GROUP BY part.brand1, date.year`)
	if got := q.Joins[0].Filters[0]; got.Lo != ssb.America || got.Hi != ssb.America {
		t.Errorf("region filter = %+v", got)
	}
	if got := q.Joins[1].Filters[0]; got.Lo != ssb.CategoryCode("MFGR#12") {
		t.Errorf("category filter = %+v", got)
	}
	// SSB-style column names and numeric codes bind to the same query.
	alt := mustCompile(t, `SELECT SUM(lo_revenue), p_brand1, d_year
		FROM lineorder, supplier, part, date
		WHERE lo_suppkey = s_suppkey AND s_region = 1
		  AND lo_partkey = p_partkey AND p_category = 'MFGR#12'
		  AND lo_orderdate = d_datekey
		GROUP BY p_brand1, d_year`)
	if alt.Canonical() != q.Canonical() {
		t.Errorf("SSB-style spelling binds differently:\n%s\n%s", alt.Canonical(), q.Canonical())
	}
	if alt.ID != q.ID {
		t.Errorf("equivalent statements got different ids: %s vs %s", alt.ID, q.ID)
	}
}

func TestBindGroupByOrderControlsPayloadOrder(t *testing.T) {
	base := `SELECT SUM(revenue) FROM lineorder, part, date
		WHERE lo.partkey = part.key AND lo.orderdate = date.key GROUP BY `
	ab := mustCompile(t, base+"part.brand1, date.year")
	ba := mustCompile(t, base+"date.year, part.brand1")
	if ab.Joins[0].Dim != "part" || ab.Joins[1].Dim != "date" {
		t.Errorf("brand-first join order = %v, %v", ab.Joins[0].Dim, ab.Joins[1].Dim)
	}
	if ba.Joins[0].Dim != "date" || ba.Joins[1].Dim != "part" {
		t.Errorf("year-first join order = %v, %v", ba.Joins[0].Dim, ba.Joins[1].Dim)
	}
	if ab.Canonical() == ba.Canonical() {
		t.Error("different GROUP BY orders must not share a canonical form (they pack keys differently)")
	}
}

func TestBindErrors(t *testing.T) {
	cases := []struct{ stmt, wantSub string }{
		{"SELECT SUM(revenue) FROM date WHERE year = 1997", "fact table"},
		{"SELECT SUM(revenue) FROM nosuch", "unknown table"},
		{"SELECT SUM(revenue) FROM lineorder, lineorder", "listed twice"},
		{"SELECT SUM(revenue) FROM lineorder, date, date", "listed twice"},
		{"SELECT SUM(revenue) FROM lineorder, date WHERE date.year = 1997", "never joined"},
		{"SELECT SUM(revenue) FROM lineorder WHERE nosuch = 1", "unknown column"},
		{"SELECT SUM(revenue) FROM lineorder, customer, supplier WHERE custkey = customer.key AND suppkey = supplier.key AND city = 'UNITED KI1'", "ambiguous"},
		{"SELECT SUM(revenue) FROM lineorder, date WHERE orderdate = date.key AND date.city = 'UNITED KI1'", "no column"},
		{"SELECT SUM(quantity) FROM lineorder", "unsupported aggregate"},
		{"SELECT SUM(revenue - discount) FROM lineorder", "unsupported aggregate"},
		{"SELECT SUM(year) FROM lineorder, date WHERE orderdate = date.key", "fact columns only"},
		{"SELECT SUM(revenue), year FROM lineorder, date WHERE orderdate = date.key", "GROUP BY"},
		{"SELECT revenue FROM lineorder", "at least one aggregate"},
		{"SELECT COUNT(year) FROM lineorder, date WHERE orderdate = date.key", "fact columns only"},
		{"SELECT MIN(quantity) FROM lineorder", "unsupported aggregate"},
		{"SELECT SUM(revenue) FROM lineorder ORDER BY 3", "select list has 1"},
		{"SELECT SUM(revenue) FROM lineorder, date WHERE orderdate = date.key GROUP BY year ORDER BY yearmonthnum", "grouped columns"},
		{"SELECT SUM(revenue) FROM lineorder LIMIT 5", "LIMIT without ORDER BY"},
		{"SELECT SUM(revenue) FROM lineorder, date WHERE orderdate = date.key GROUP BY orderdate", "fact columns is not supported"},
		{"SELECT SUM(revenue) FROM lineorder, date WHERE orderdate = date.key GROUP BY date.key", "dimension key"},
		{"SELECT SUM(revenue) FROM lineorder, date WHERE orderdate = date.key GROUP BY year, yearmonthnum", "one payload per join"},
		{"SELECT SUM(revenue) FROM lineorder, date WHERE orderdate = date.key AND orderdate = date.key", "joined twice"},
		{"SELECT SUM(revenue) FROM lineorder, date WHERE suppkey = date.key", "references"},
		{"SELECT SUM(revenue) FROM lineorder, date WHERE quantity = date.key", "not a foreign key"},
		{"SELECT SUM(revenue) FROM lineorder, date WHERE orderdate = year", "dimension key"},
		{"SELECT SUM(revenue) FROM lineorder, date WHERE orderdate = date.key AND date.key = 19970101", "dimension keys are not supported"},
		{"SELECT SUM(revenue) FROM lineorder WHERE quantity = 'MFGR#12'", "numeric"},
		{"SELECT SUM(revenue) FROM lineorder, supplier WHERE suppkey = supplier.key AND supplier.region = 'ATLANTIS'", "not a valid region"},
		{"SELECT SUM(revenue) FROM lineorder, part WHERE partkey = part.key AND part.brand1 = 'MFGR#9999'", "not a valid brand1"},
		{"SELECT SUM(revenue) FROM lineorder WHERE quantity = 99999999999", "32-bit"},
		{"SELECT SUM(revenue) FROM lineorder WHERE quantity BETWEEN 10 AND 1", "empty range"},
		{"SELECT SUM(revenue) FROM lineorder x, date x WHERE orderdate = x.key", "ambiguous"},
	}
	for _, tc := range cases {
		_, err := Compile(tc.stmt)
		if err == nil {
			t.Errorf("Compile(%q): expected error containing %q", tc.stmt, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Compile(%q) error %q does not mention %q", tc.stmt, err, tc.wantSub)
		}
	}
}

func TestBindAliases(t *testing.T) {
	// User aliases, builtin short aliases and AS all refer to the same table.
	q := mustCompile(t, `SELECT SUM(revenue) FROM lineorder AS f, supplier AS sup
		WHERE f.suppkey = sup.key AND s.nation = 'UNITED STATES'`)
	if q.Joins[0].Filters[0].Lo != 9 {
		t.Errorf("nation filter = %+v", q.Joins[0].Filters[0])
	}
}
