package sql

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"crystal/internal/queries"
	"crystal/internal/ssb"
)

// The binder's schema view. Table identities are the canonical names the
// queries package resolves ("lineorder" for the fact table, dimension names
// for DimTable); the maps below admit short aliases and the SSB-standard
// prefixed column names so queries read naturally in either style.
const factTable = "lineorder"

// builtinTables maps every accepted table spelling to its identity.
var builtinTables = map[string]string{
	"lineorder": factTable, "lo": factTable,
	"date": "date", "d": "date",
	"customer": "customer", "cust": "customer", "c": "customer",
	"supplier": "supplier", "supp": "supplier", "s": "supplier",
	"part": "part", "p": "part",
}

// ssbPrefix maps the SSB column-name prefix of an unqualified reference
// ("lo_revenue", "d_year", "p_brand1") to its table identity.
var ssbPrefix = map[string]string{
	"lo": factTable, "d": "date", "c": "customer", "s": "supplier", "p": "part",
}

// factCols lists the fact columns with their accepted synonyms.
var factCols = map[string]string{
	"orderdate": "orderdate", "custkey": "custkey", "partkey": "partkey",
	"suppkey": "suppkey", "quantity": "quantity", "discount": "discount",
	"extprice": "extprice", "extendedprice": "extprice",
	"revenue": "revenue", "supplycost": "supplycost",
}

// dimCols lists each dimension's attribute columns with synonyms.
var dimCols = map[string]map[string]string{
	"date":     {"year": "year", "yearmonthnum": "yearmonthnum", "weeknuminyear": "weeknuminyear"},
	"customer": {"region": "region", "nation": "nation", "city": "city"},
	"supplier": {"region": "region", "nation": "nation", "city": "city"},
	"part":     {"mfgr": "mfgr", "category": "category", "brand1": "brand1", "brand": "brand1"},
}

// dimKeyNames lists each dimension's key-column spellings ("key" plus the
// SSB natural-key name).
var dimKeyNames = map[string]string{
	"datekey": "date", "custkey": "customer", "suppkey": "supplier", "partkey": "part",
}

// fkDim maps a fact foreign key to the dimension it references.
var fkDim = map[string]string{
	"orderdate": "date", "custkey": "customer", "suppkey": "supplier", "partkey": "part",
}

// dimFK is the inverse of fkDim.
var dimFK = map[string]string{
	"date": "orderdate", "customer": "custkey", "supplier": "suppkey", "part": "partkey",
}

// column is a resolved reference: the table identity plus the canonical
// column name ("key" for a dimension's key column).
type column struct {
	table string
	col   string
}

func (c column) String() string { return c.table + "." + c.col }

// Compile parses and binds one statement, returning a validated
// queries.Query ready to run on any engine. The query's ID is "sql-" plus a
// short hash of its canonical form, so equivalent statements (whitespace,
// comments, filter order) share an identity.
func Compile(stmt string) (queries.Query, error) {
	sel, err := Parse(stmt)
	if err != nil {
		return queries.Query{}, err
	}
	return Bind(sel)
}

// Bind lowers a parsed statement onto the SSB star schema. Semantic checks
// beyond name resolution — column existence per table, well-formed filters,
// group-key capacity — are delegated to queries.Query.Validate, the same
// gate the built-in catalog passes through.
func Bind(sel *Select) (queries.Query, error) {
	b := &binder{scope: map[string]string{}}
	q, err := b.bind(sel)
	if err != nil {
		return queries.Query{}, err
	}
	q.ID = "sql-" + shortHash(q.Canonical())
	if err := q.Validate(); err != nil {
		return queries.Query{}, err
	}
	return q, nil
}

type binder struct {
	scope   map[string]string // alias or table spelling -> table identity
	dims    []string          // dimension identities in textual order
	hasFact bool
	joined  map[string]bool             // dims with a join predicate
	filters map[string][]queries.Filter // dim -> its filters, textual order
}

func (b *binder) bind(sel *Select) (queries.Query, error) {
	b.joined = map[string]bool{}
	b.filters = map[string][]queries.Filter{}
	for _, t := range sel.Tables {
		if err := b.addTable(t); err != nil {
			return queries.Query{}, err
		}
	}
	for _, j := range sel.Joins {
		if err := b.addTable(j.Table); err != nil {
			return queries.Query{}, err
		}
		if err := b.addJoinEq(j.Left, j.Right); err != nil {
			return queries.Query{}, err
		}
	}
	if !b.hasFact {
		return queries.Query{}, fmt.Errorf("sql: FROM must include the fact table lineorder")
	}

	var q queries.Query
	for _, p := range sel.Where {
		switch p.Kind {
		case predTrivial:
			// WHERE 1=1 anchors Describe's conjunct list; no semantics.
		case predJoinEq:
			if err := b.addJoinEq(p.Col, p.RHS); err != nil {
				return queries.Query{}, err
			}
		default:
			c, err := b.resolve(p.Col)
			if err != nil {
				return queries.Query{}, err
			}
			f, err := b.filterFor(c, p)
			if err != nil {
				return queries.Query{}, err
			}
			if c.table == factTable {
				q.FactFilters = append(q.FactFilters, f)
			} else {
				b.filters[c.table] = append(b.filters[c.table], f)
			}
		}
	}
	for _, dim := range b.dims {
		if !b.joined[dim] {
			return queries.Query{}, fmt.Errorf("sql: dimension %s is never joined to lineorder (add %s = %s.key or a JOIN ... ON clause)",
				dim, dimFK[dim], dim)
		}
	}

	// Joins in textual order; GROUP BY assigns payloads below.
	payload := map[string]string{}
	var groupDims []string
	for _, g := range sel.GroupBy {
		c, err := b.resolve(g)
		if err != nil {
			return queries.Query{}, err
		}
		switch {
		case c.table == factTable:
			return queries.Query{}, fmt.Errorf("sql: GROUP BY %s: grouping by fact columns is not supported", c)
		case c.col == "key":
			return queries.Query{}, fmt.Errorf("sql: GROUP BY %s: grouping by a dimension key is not supported", c)
		case payload[c.table] != "":
			return queries.Query{}, fmt.Errorf("sql: GROUP BY lists two %s columns; the packed group key carries one payload per join", c.table)
		}
		payload[c.table] = c.col
		groupDims = append(groupDims, c.table)
	}
	if err := b.checkItems(sel, payload, groupDims); err != nil {
		return queries.Query{}, err
	}

	// Emit joins in textual order, except that payload-carrying joins take
	// the GROUP BY order among their own slots: packed group keys follow
	// join order, so GROUP BY (a, b) and GROUP BY (b, a) pack differently.
	var payloadSlots []int
	for i, dim := range b.dims {
		if payload[dim] != "" {
			payloadSlots = append(payloadSlots, i)
		}
	}
	order := append([]string(nil), b.dims...)
	for i, dim := range groupDims {
		order[payloadSlots[i]] = dim
	}
	for _, dim := range order {
		q.Joins = append(q.Joins, queries.JoinSpec{
			Dim:     dim,
			FactFK:  dimFK[dim],
			Filters: sortFilters(b.filters[dim]),
			Payload: payload[dim],
		})
	}
	q.FactFilters = sortFilters(q.FactFilters)

	if err := b.bindAggs(sel, &q); err != nil {
		return queries.Query{}, err
	}
	if err := b.bindOrder(sel, &q, payload, groupDims); err != nil {
		return queries.Query{}, err
	}
	q.Limit = sel.Limit
	return q, nil
}

// sortFilters puts a conjunct list into canonical order (by column, then
// bounds) and sorts IN sets. Conjuncts commute, so the rows are unchanged;
// what this buys is determinism: every spelling of the same statement
// binds to the same physical filter order, executes with the same memory
// traffic, and lands on the same Canonical cache key. (The hand-built
// catalog keeps its own, selectivity-tuned order — the binder only speaks
// for ad-hoc text.)
func sortFilters(fs []queries.Filter) []queries.Filter {
	for i := range fs {
		if fs[i].In != nil {
			sort.Slice(fs[i].In, func(a, b int) bool { return fs[i].In[a] < fs[i].In[b] })
		}
	}
	sort.SliceStable(fs, func(a, b int) bool { return filterKey(fs[a]) < filterKey(fs[b]) })
	return fs
}

func filterKey(f queries.Filter) string {
	if f.In != nil {
		return fmt.Sprintf("%s:in:%v", f.Col, f.In)
	}
	return fmt.Sprintf("%s:%d:%d", f.Col, f.Lo, f.Hi)
}

// addTable brings a FROM or JOIN table into scope.
func (b *binder) addTable(t TableRef) error {
	id, ok := builtinTables[t.Name]
	if !ok {
		return fmt.Errorf("sql: unknown table %q (schema: lineorder, date, customer, supplier, part)", t.Name)
	}
	if id == factTable {
		if b.hasFact {
			return fmt.Errorf("sql: lineorder listed twice")
		}
		b.hasFact = true
	} else {
		for _, d := range b.dims {
			if d == id {
				return fmt.Errorf("sql: dimension %s listed twice", id)
			}
		}
		b.dims = append(b.dims, id)
	}
	if t.Alias != "" {
		if have, ok := b.scope[t.Alias]; ok && have != id {
			return fmt.Errorf("sql: alias %q is ambiguous (%s vs %s)", t.Alias, have, id)
		}
		b.scope[t.Alias] = id
	}
	return nil
}

// inScope reports whether a table identity was brought in by FROM/JOIN.
func (b *binder) inScope(id string) bool {
	if id == factTable {
		return b.hasFact
	}
	for _, d := range b.dims {
		if d == id {
			return true
		}
	}
	return false
}

// tableOf resolves a qualifier (user alias, table name or builtin alias)
// to an in-scope table identity.
func (b *binder) tableOf(name string) (string, error) {
	if id, ok := b.scope[name]; ok {
		return id, nil
	}
	if id, ok := builtinTables[name]; ok && b.inScope(id) {
		return id, nil
	}
	return "", fmt.Errorf("sql: unknown table or alias %q", name)
}

// resolve binds a column reference to an in-scope table and canonical
// column name.
func (b *binder) resolve(c ColRef) (column, error) {
	if c.Table != "" {
		id, err := b.tableOf(c.Table)
		if err != nil {
			return column{}, err
		}
		col, ok := b.lookupIn(id, c.Col)
		if !ok {
			return column{}, fmt.Errorf("sql: table %s has no column %q", id, c.Col)
		}
		return column{table: id, col: col}, nil
	}
	// SSB-prefixed shorthand: lo_revenue, d_year, p_brand1, ...
	if i := strings.IndexByte(c.Col, '_'); i > 0 {
		if id, ok := ssbPrefix[c.Col[:i]]; ok && b.inScope(id) {
			if col, ok := b.lookupIn(id, c.Col[i+1:]); ok {
				return column{table: id, col: col}, nil
			}
			return column{}, fmt.Errorf("sql: table %s has no column %q", id, c.Col[i+1:])
		}
	}
	// Unqualified: the column must be unambiguous across in-scope tables.
	// The fact table wins outright — its FK names double as the dimensions'
	// natural-key synonyms (suppkey both lineorder FK and supplier key), and
	// a bare FK name always means the fact side.
	if b.hasFact {
		if col, ok := b.lookupIn(factTable, c.Col); ok {
			return column{table: factTable, col: col}, nil
		}
	}
	var found []column
	for _, dim := range b.dims {
		if col, ok := b.lookupIn(dim, c.Col); ok {
			found = append(found, column{table: dim, col: col})
		}
	}
	switch len(found) {
	case 1:
		return found[0], nil
	case 0:
		return column{}, fmt.Errorf("sql: unknown column %q", c.Col)
	default:
		var names []string
		for _, f := range found {
			names = append(names, f.String())
		}
		return column{}, fmt.Errorf("sql: column %q is ambiguous (%s)", c.Col, strings.Join(names, ", "))
	}
}

// lookupIn resolves a column spelling within one table, applying synonyms.
func (b *binder) lookupIn(table, name string) (string, bool) {
	if table == factTable {
		col, ok := factCols[name]
		return col, ok
	}
	if name == "key" || dimKeyNames[name] == table {
		return "key", true
	}
	col, ok := dimCols[table][name]
	return col, ok
}

// addJoinEq records a fact-FK = dimension-key predicate.
func (b *binder) addJoinEq(l, r ColRef) error {
	lc, err := b.resolve(l)
	if err != nil {
		return err
	}
	rc, err := b.resolve(r)
	if err != nil {
		return err
	}
	if lc.table != factTable {
		lc, rc = rc, lc
	}
	if lc.table != factTable || rc.table == factTable {
		return fmt.Errorf("sql: join %s = %s must link a lineorder foreign key to a dimension key", lc, rc)
	}
	dim, isFK := fkDim[lc.col]
	if !isFK {
		return fmt.Errorf("sql: %s is not a foreign key (want orderdate, custkey, suppkey or partkey)", lc)
	}
	if rc.col != "key" {
		return fmt.Errorf("sql: join %s = %s must compare against the dimension key, not %s", lc, rc, rc)
	}
	if dim != rc.table {
		return fmt.Errorf("sql: %s references %s, not %s", lc, dim, rc.table)
	}
	if b.joined[dim] {
		return fmt.Errorf("sql: dimension %s joined twice", dim)
	}
	b.joined[dim] = true
	return nil
}

// checkItems validates the select list: at least one aggregate, and any
// plain columns must mirror the GROUP BY list in order.
func (b *binder) checkItems(sel *Select, payload map[string]string, groupDims []string) error {
	var plain []column
	aggs := 0
	for _, it := range sel.Items {
		if it.Agg != nil {
			aggs++
			continue
		}
		c, err := b.resolve(*it.Col)
		if err != nil {
			return err
		}
		plain = append(plain, c)
	}
	if aggs == 0 {
		return fmt.Errorf("sql: the select list needs at least one aggregate (SUM, COUNT, AVG, MIN or MAX)")
	}
	if len(plain) == 0 {
		return nil // SELECT SUM(...) alone is fine even with GROUP BY
	}
	if len(plain) != len(groupDims) {
		return fmt.Errorf("sql: select list has %d grouped columns but GROUP BY has %d", len(plain), len(groupDims))
	}
	for i, c := range plain {
		if c.table != groupDims[i] || c.col != payload[groupDims[i]] {
			return fmt.Errorf("sql: select column %s does not match GROUP BY column %s.%s", c, groupDims[i], payload[groupDims[i]])
		}
	}
	return nil
}

// bindAggs lowers the select list's aggregates. A single plain SUM
// normalizes to the legacy Agg field (Aggs stays nil), so such statements
// share canonical keys — and with them plan and result caches — with every
// pre-existing query; anything else becomes the AggSpec list.
func (b *binder) bindAggs(sel *Select, q *queries.Query) error {
	var specs []queries.AggSpec
	for _, it := range sel.Items {
		if it.Agg == nil {
			continue
		}
		s, err := b.bindAggExpr(it.Agg)
		if err != nil {
			return err
		}
		specs = append(specs, s)
	}
	if len(specs) == 1 && specs[0].Func == queries.FuncSum {
		q.Agg = specs[0].Expr
		return nil
	}
	q.Aggs = specs
	return nil
}

// bindAggExpr lowers one aggregate expression onto an AggSpec: COUNT counts
// surviving fact rows whatever its argument, the other functions apply to
// the three engine aggregate expressions.
func (b *binder) bindAggExpr(agg *AggExpr) (queries.AggSpec, error) {
	fn := agg.Func
	if fn == "" {
		fn = "SUM"
	}
	if fn == "COUNT" {
		if !agg.Star {
			c, err := b.resolve(agg.Left)
			if err != nil {
				return queries.AggSpec{}, err
			}
			if c.table != factTable {
				return queries.AggSpec{}, fmt.Errorf("sql: COUNT over %s: aggregates read fact columns only", c)
			}
		}
		return queries.AggSpec{Func: queries.FuncCount}, nil
	}
	left, err := b.resolve(agg.Left)
	if err != nil {
		return queries.AggSpec{}, err
	}
	if left.table != factTable {
		return queries.AggSpec{}, fmt.Errorf("sql: %s over %s: aggregates read fact columns only", fn, left)
	}
	var right column
	if agg.Op != 0 {
		if right, err = b.resolve(agg.Right); err != nil {
			return queries.AggSpec{}, err
		}
		if right.table != factTable {
			return queries.AggSpec{}, fmt.Errorf("sql: %s over %s: aggregates read fact columns only", fn, right)
		}
	}
	var kind queries.AggKind
	switch {
	case agg.Op == 0 && left.col == "revenue":
		kind = queries.AggSumRevenue
	case agg.Op == '*' && ((left.col == "extprice" && right.col == "discount") || (left.col == "discount" && right.col == "extprice")):
		kind = queries.AggSumExtDisc
	case agg.Op == '-' && left.col == "revenue" && right.col == "supplycost":
		kind = queries.AggSumProfit
	default:
		return queries.AggSpec{}, fmt.Errorf("sql: unsupported aggregate %s; the engines implement %s over revenue, extprice * discount and revenue - supplycost", agg, fn)
	}
	var f queries.AggFunc
	switch fn {
	case "AVG":
		f = queries.FuncAvg
	case "MIN":
		f = queries.FuncMin
	case "MAX":
		f = queries.FuncMax
	default:
		f = queries.FuncSum
	}
	return queries.AggSpec{Func: f, Expr: kind}, nil
}

// bindOrder lowers the ORDER BY keys: select-list ordinals map to their
// aggregate index (or, for plain items, their group slot — checkItems
// pinned plain items to GROUP BY order, so the j-th plain item is slot j),
// and column references must name a grouped column.
func (b *binder) bindOrder(sel *Select, q *queries.Query, payload map[string]string, groupDims []string) error {
	if len(sel.OrderBy) == 0 {
		return nil
	}
	type pos struct{ agg, group int }
	positions := make([]pos, len(sel.Items))
	aggIdx, plainIdx := 0, 0
	for i, it := range sel.Items {
		if it.Agg != nil {
			positions[i] = pos{agg: aggIdx, group: -1}
			aggIdx++
		} else {
			positions[i] = pos{agg: -1, group: plainIdx}
			plainIdx++
		}
	}
	for _, o := range sel.OrderBy {
		k := queries.OrderKey{Desc: o.Desc}
		if o.Col != nil {
			c, err := b.resolve(*o.Col)
			if err != nil {
				return err
			}
			slot := -1
			for i, dim := range groupDims {
				if dim == c.table && payload[dim] == c.col {
					slot = i
				}
			}
			if slot < 0 {
				return fmt.Errorf("sql: ORDER BY %s: order keys must be select-list ordinals or grouped columns", c)
			}
			k.Item, k.Group = -1, slot
		} else {
			if o.Ordinal > len(sel.Items) {
				return fmt.Errorf("sql: ORDER BY %d: the select list has %d items", o.Ordinal, len(sel.Items))
			}
			p := positions[o.Ordinal-1]
			if p.agg >= 0 {
				k.Item = p.agg
			} else {
				k.Item, k.Group = -1, p.group
			}
		}
		q.OrderBy = append(q.OrderBy, k)
	}
	return nil
}

// filterFor lowers one predicate on a resolved column into a Filter.
func (b *binder) filterFor(c column, p Pred) (queries.Filter, error) {
	if c.col == "key" {
		return queries.Filter{}, fmt.Errorf("sql: filtering on %s: predicates on dimension keys are not supported", c)
	}
	enc := func(l Literal) (int32, error) { return encodeLiteral(c, l) }
	switch p.Kind {
	case predBetween:
		lo, err := enc(p.Lo)
		if err != nil {
			return queries.Filter{}, err
		}
		hi, err := enc(p.Hi)
		if err != nil {
			return queries.Filter{}, err
		}
		return queries.Filter{Col: c.col, Lo: lo, Hi: hi}, nil
	case predIn:
		in := make([]int32, len(p.List))
		for i, l := range p.List {
			v, err := enc(l)
			if err != nil {
				return queries.Filter{}, err
			}
			in[i] = v
		}
		return queries.Filter{Col: c.col, In: in}, nil
	default: // predCompare
		v, err := enc(p.Lit)
		if err != nil {
			return queries.Filter{}, err
		}
		f := queries.Filter{Col: c.col, Lo: math.MinInt32, Hi: math.MaxInt32}
		switch p.Op {
		case "=":
			f.Lo, f.Hi = v, v
		case "<=":
			f.Hi = v
		case ">=":
			f.Lo = v
		case "<":
			if v == math.MinInt32 {
				return queries.Filter{}, fmt.Errorf("sql: %s < %d matches nothing", c, v)
			}
			f.Hi = v - 1
		case ">":
			if v == math.MaxInt32 {
				return queries.Filter{}, fmt.Errorf("sql: %s > %d matches nothing", c, v)
			}
			f.Lo = v + 1
		}
		return f, nil
	}
}

// encodeLiteral turns a literal into the column's int32 domain, decoding
// SSB dictionary strings ('AMERICA', 'MFGR#12', 'UNITED KI1') for the
// dictionary-encoded attributes.
func encodeLiteral(c column, l Literal) (int32, error) {
	if !l.IsStr {
		if l.Num < math.MinInt32 || l.Num > math.MaxInt32 {
			return 0, fmt.Errorf("sql: literal %d for %s outside the 32-bit column domain", l.Num, c)
		}
		return int32(l.Num), nil
	}
	var code int32 = -1
	switch c.col {
	case "region":
		code = indexOf(ssb.Regions, l.Str)
	case "nation":
		code = indexOf(ssb.Nations, l.Str)
	case "city":
		code = ssb.CityCode(l.Str)
	case "mfgr":
		var m int32
		if _, err := fmt.Sscanf(l.Str, "MFGR#%1d", &m); err == nil && m >= 1 && m <= ssb.NumMfgr {
			code = m - 1
		}
	case "category":
		if v := ssb.CategoryCode(l.Str); v >= 0 && v < ssb.NumCategories {
			code = v
		}
	case "brand1":
		if v := ssb.BrandCode(l.Str); v >= 0 && v < ssb.NumBrands {
			code = v
		}
	default:
		return 0, fmt.Errorf("sql: column %s is numeric; string literal '%s' cannot apply", c, l.Str)
	}
	if code < 0 {
		return 0, fmt.Errorf("sql: '%s' is not a valid %s literal", l.Str, c.col)
	}
	return code, nil
}

func indexOf(dict []string, s string) int32 {
	for i, v := range dict {
		if v == s {
			return int32(i)
		}
	}
	return -1
}

func shortHash(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%08x", h.Sum64()&0xffffffff)
}
