package sql

import (
	"testing"

	"crystal/internal/queries"
)

// FuzzParse feeds arbitrary statements to the frontend: the parser must
// never panic, any statement it accepts must have a canonical print that
// re-parses to the same canonical print (a fixed point), and the binder
// must turn the AST into either a valid query or an error — never a panic.
func FuzzParse(f *testing.F) {
	// Seed with the 13 SSB queries in the dialect plus tricky shapes.
	for _, q := range queries.All() {
		f.Add(q.Describe())
	}
	f.Add("SELECT SUM(lo_extendedprice * lo_discount) FROM lineorder WHERE lo_discount BETWEEN 1 AND 3")
	f.Add("SELECT SUM(revenue), s.city FROM lineorder, supplier s WHERE suppkey = s.key GROUP BY s.city")
	f.Add("select sum(revenue) from lineorder join date on orderdate = date.key where year in (1993, 1995)")
	f.Add("SELECT SUM(revenue) FROM lineorder WHERE quantity >= -1 AND discount < 11")
	f.Add("-- comment\nSELECT SUM(revenue) FROM lineorder;")
	f.Add("SELECT SUM(revenue) FROM lineorder WHERE 1=1 AND city IN ('UNITED KI1')")
	f.Add("SELECT d.year, SUM(lo.revenue), COUNT(*) FROM lineorder lo, date d WHERE lo.orderdate = d.key GROUP BY d.year ORDER BY 2 DESC LIMIT 5")
	f.Add("SELECT AVG(revenue), MIN(quantity), MAX(discount) FROM lineorder ORDER BY 1 ASC, 3 DESC")
	f.Add("select count(*), year from lineorder join date on orderdate = date.key group by year order by year desc limit 1")
	f.Add("SELECT SUM(revenue), city FROM lineorder, supplier WHERE suppkey = supplier.key GROUP BY city ORDER BY city")
	f.Add("SELECT COUNT(revenue) FROM lineorder LIMIT 3")

	f.Fuzz(func(t *testing.T, src string) {
		ast, err := Parse(src)
		if err != nil {
			return // rejected input; only panics are bugs
		}
		canon := ast.String()
		ast2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical print does not re-parse: %v\n input: %q\n canon: %q", err, src, canon)
		}
		if again := ast2.String(); again != canon {
			t.Fatalf("canonical print is not a fixed point:\n input: %q\n first: %q\nsecond: %q", src, canon, again)
		}
		// Binding must never panic; errors are fine. A bound query must
		// pass the same validation gate as the built-in catalog.
		q, err := Bind(ast)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("bound query fails validation: %v\n input: %q", err, src)
		}
		// Equivalent text (the canonical form) must bind to the same
		// canonical query — the property the serve cache keys rely on.
		q2, err := Bind(ast2)
		if err != nil {
			t.Fatalf("canonical text fails to bind: %v\n input: %q", err, src)
		}
		if q.Canonical() != q2.Canonical() {
			t.Fatalf("canonical text binds differently:\n%s\n%s", q.Canonical(), q2.Canonical())
		}
	})
}
