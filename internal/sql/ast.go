package sql

import (
	"strconv"
	"strings"
)

// ColRef is a possibly-qualified column reference (table may be empty).
type ColRef struct {
	Table string
	Col   string
}

func (c ColRef) String() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// Literal is an integer or single-quoted string constant.
type Literal struct {
	IsStr bool
	Str   string
	Num   int64
}

func (l Literal) String() string {
	if l.IsStr {
		return "'" + l.Str + "'"
	}
	return strconv.FormatInt(l.Num, 10)
}

// AggExpr is one aggregate of the select list: Func ("SUM", "COUNT",
// "AVG", "MIN", "MAX"; empty means SUM) over a column, optionally combined
// with a second one ("a * b" or "a - b"). Op is 0, '*' or '-'. Star marks
// COUNT(*), which carries no argument.
type AggExpr struct {
	Func  string
	Star  bool
	Left  ColRef
	Op    byte
	Right ColRef
}

func (a AggExpr) String() string {
	f := a.Func
	if f == "" {
		f = "SUM"
	}
	if a.Star || f == "COUNT" {
		// COUNT counts surviving rows whatever its argument; canonical form
		// is always COUNT(*).
		return "COUNT(*)"
	}
	if a.Op == 0 {
		return f + "(" + a.Left.String() + ")"
	}
	return f + "(" + a.Left.String() + " " + string(a.Op) + " " + a.Right.String() + ")"
}

// OrderItem is one ORDER BY key: a 1-based select-list ordinal (Ordinal >=
// 1) or a grouped column reference, optionally descending.
type OrderItem struct {
	Ordinal int
	Col     *ColRef
	Desc    bool
}

func (o OrderItem) String() string {
	var s string
	if o.Col != nil {
		s = o.Col.String()
	} else {
		s = strconv.Itoa(o.Ordinal)
	}
	if o.Desc {
		s += " DESC"
	}
	return s
}

// SelectItem is one projection: either the aggregate or a grouped column.
type SelectItem struct {
	Agg *AggExpr
	Col *ColRef
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

func (t TableRef) String() string {
	if t.Alias == "" {
		return t.Name
	}
	return t.Name + " " + t.Alias
}

// JoinClause is an explicit "JOIN table ON left = right".
type JoinClause struct {
	Table TableRef
	Left  ColRef
	Right ColRef
}

// predKind discriminates the Pred variants.
type predKind int

const (
	predCompare predKind = iota // Col Op Lit
	predBetween                 // Col BETWEEN Lo AND Hi
	predIn                      // Col IN (List...)
	predJoinEq                  // Col = RHS (two column refs)
	predTrivial                 // constant tautology such as 1=1
)

// Pred is one WHERE conjunct.
type Pred struct {
	Kind   predKind
	Col    ColRef
	Op     string // predCompare: = < <= > >=
	Lit    Literal
	Lo, Hi Literal
	List   []Literal
	RHS    ColRef
}

func (p Pred) String() string {
	switch p.Kind {
	case predBetween:
		return p.Col.String() + " BETWEEN " + p.Lo.String() + " AND " + p.Hi.String()
	case predIn:
		var vals []string
		for _, l := range p.List {
			vals = append(vals, l.String())
		}
		return p.Col.String() + " IN (" + strings.Join(vals, ", ") + ")"
	case predJoinEq:
		return p.Col.String() + " = " + p.RHS.String()
	case predTrivial:
		return "1 = 1"
	default:
		return p.Col.String() + " " + p.Op + " " + p.Lit.String()
	}
}

// Select is the parsed statement. Limit is 0 when the statement has no
// LIMIT clause.
type Select struct {
	Items   []SelectItem
	Tables  []TableRef
	Joins   []JoinClause
	Where   []Pred
	GroupBy []ColRef
	OrderBy []OrderItem
	Limit   int
}

// String renders the statement in canonical form: uppercase keywords,
// single spaces, no comments, trivial (1=1) conjuncts dropped, no trailing
// semicolon. Canonical output re-parses to an AST that prints identically
// (the fuzz fixed point), and serves as the human-readable normalized text.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Agg != nil {
			b.WriteString(it.Agg.String())
		} else {
			b.WriteString(it.Col.String())
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.Tables {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	for _, j := range s.Joins {
		b.WriteString(" JOIN " + j.Table.String() + " ON " + j.Left.String() + " = " + j.Right.String())
	}
	first := true
	for _, p := range s.Where {
		if p.Kind == predTrivial {
			continue
		}
		if first {
			b.WriteString(" WHERE ")
			first = false
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(p.String())
	}
	for i, g := range s.GroupBy {
		if i == 0 {
			b.WriteString(" GROUP BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(g.String())
	}
	for i, o := range s.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.String())
	}
	if s.Limit > 0 {
		b.WriteString(" LIMIT " + strconv.Itoa(s.Limit))
	}
	return b.String()
}
