package sql

import (
	"strconv"
	"strings"
)

// ColRef is a possibly-qualified column reference (table may be empty).
type ColRef struct {
	Table string
	Col   string
}

func (c ColRef) String() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// Literal is an integer or single-quoted string constant.
type Literal struct {
	IsStr bool
	Str   string
	Num   int64
}

func (l Literal) String() string {
	if l.IsStr {
		return "'" + l.Str + "'"
	}
	return strconv.FormatInt(l.Num, 10)
}

// AggExpr is the SUM argument: a column, optionally combined with a second
// one ("a * b" or "a - b"). Op is 0, '*' or '-'.
type AggExpr struct {
	Left  ColRef
	Op    byte
	Right ColRef
}

func (a AggExpr) String() string {
	if a.Op == 0 {
		return "SUM(" + a.Left.String() + ")"
	}
	return "SUM(" + a.Left.String() + " " + string(a.Op) + " " + a.Right.String() + ")"
}

// SelectItem is one projection: either the aggregate or a grouped column.
type SelectItem struct {
	Agg *AggExpr
	Col *ColRef
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

func (t TableRef) String() string {
	if t.Alias == "" {
		return t.Name
	}
	return t.Name + " " + t.Alias
}

// JoinClause is an explicit "JOIN table ON left = right".
type JoinClause struct {
	Table TableRef
	Left  ColRef
	Right ColRef
}

// predKind discriminates the Pred variants.
type predKind int

const (
	predCompare predKind = iota // Col Op Lit
	predBetween                 // Col BETWEEN Lo AND Hi
	predIn                      // Col IN (List...)
	predJoinEq                  // Col = RHS (two column refs)
	predTrivial                 // constant tautology such as 1=1
)

// Pred is one WHERE conjunct.
type Pred struct {
	Kind   predKind
	Col    ColRef
	Op     string // predCompare: = < <= > >=
	Lit    Literal
	Lo, Hi Literal
	List   []Literal
	RHS    ColRef
}

func (p Pred) String() string {
	switch p.Kind {
	case predBetween:
		return p.Col.String() + " BETWEEN " + p.Lo.String() + " AND " + p.Hi.String()
	case predIn:
		var vals []string
		for _, l := range p.List {
			vals = append(vals, l.String())
		}
		return p.Col.String() + " IN (" + strings.Join(vals, ", ") + ")"
	case predJoinEq:
		return p.Col.String() + " = " + p.RHS.String()
	case predTrivial:
		return "1 = 1"
	default:
		return p.Col.String() + " " + p.Op + " " + p.Lit.String()
	}
}

// Select is the parsed statement.
type Select struct {
	Items   []SelectItem
	Tables  []TableRef
	Joins   []JoinClause
	Where   []Pred
	GroupBy []ColRef
}

// String renders the statement in canonical form: uppercase keywords,
// single spaces, no comments, trivial (1=1) conjuncts dropped, no trailing
// semicolon. Canonical output re-parses to an AST that prints identically
// (the fuzz fixed point), and serves as the human-readable normalized text.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Agg != nil {
			b.WriteString(it.Agg.String())
		} else {
			b.WriteString(it.Col.String())
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.Tables {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	for _, j := range s.Joins {
		b.WriteString(" JOIN " + j.Table.String() + " ON " + j.Left.String() + " = " + j.Right.String())
	}
	first := true
	for _, p := range s.Where {
		if p.Kind == predTrivial {
			continue
		}
		if first {
			b.WriteString(" WHERE ")
			first = false
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(p.String())
	}
	for i, g := range s.GroupBy {
		if i == 0 {
			b.WriteString(" GROUP BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(g.String())
	}
	return b.String()
}
