// Package sched defines the scheduler abstraction every execution path of
// the repo runs through: a Schedule assigns zone-mapped morsel ranges to
// abstract Executors — CPU engine workers, GPU fleet devices, or the
// coprocessor path — and queries.Plan.RunScheduled runs the assignments and
// merges their partial aggregates on the host. Partitioned, fleet,
// coprocessor and hybrid CPU+GPU executions are all just schedules with
// different assignment shapes, so there is exactly one merge, stats and
// telemetry path.
//
// The contract between a schedule and its runner:
//
//   - Every morsel index in [0, Morsels) appears in exactly one
//     assignment (Validate checks this), so partial aggregates are
//     disjoint integer sums and the host merge is exact: rows are
//     identical to a monolithic run at any split.
//   - An assignment's Spilled indices are the subset of its morsels whose
//     referenced columns are host-resident and must cross Link before the
//     executor can scan them; shipment overlaps execution, coprocessor
//     style, so the executor's time is the max of the two.
//   - An assignment with Merge set produces its partial aggregate table on
//     the far side of Link: the runner prices 16 bytes per group of
//     host-bound merge traffic for it. Host executors leave Merge unset
//     and merge for free.
//   - Executors report simulated time, not wall clock: the runner's
//     makespan is the slowest assignment, because assignments model
//     devices (and engine workers) running concurrently.
//
// The split helpers (CPUFraction, SplitHybrid) are the mechanism shared by
// the hybrid executor (queries.Plan.RunHybrid) and the hybrid cost model
// (planner.HybridCost): both sides derive the CPU/GPU division from the
// same code, so the model can never price a placement the executor would
// not produce.
package sched

import (
	"fmt"
	"time"

	"crystal/internal/device"
	"crystal/internal/fleet"
	"crystal/internal/ssb"
)

// Kind classifies an executor for telemetry: a host CPU engine worker, a
// GPU fleet device, or the single-device coprocessor path.
type Kind string

// The executor kinds of the four placements (partitioned CPU, fleet GPU,
// coprocessor, hybrid = CPU + GPU together).
const (
	KindCPU    Kind = "cpu"
	KindGPU    Kind = "gpu"
	KindCoproc Kind = "coproc"
)

// Label names an executor for telemetry and trace spans: the kind alone
// for host executors ("cpu", "coproc"), kind plus fleet index for
// devices ("gpu0", "gpu3").
func Label(k Kind, device int) string {
	if device < 0 {
		return string(k)
	}
	return fmt.Sprintf("%s%d", k, device)
}

// Partial is one executor's contribution to a scheduled run: its partial
// aggregate table plus the telemetry the runner folds into the merged
// result and the per-executor stats.
type Partial struct {
	// Groups is the executor's partial aggregate table. Values are integer
	// sums, so merging partials by key-wise addition is exact.
	Groups map[int64]int64
	// Accs is the raw accumulator table of a multi-aggregate execution
	// (group key -> one 8-byte slot per aggregate slot); nil for legacy
	// single-SUM queries. Every slot's merge operator (add, min, max) is
	// associative and commutative, so partials merge exactly in any order,
	// like Groups.
	Accs map[int64][]int64
	// Seconds is the executor's simulated time, spill shipment overlap
	// included: max(KernelSeconds, ShipSeconds).
	Seconds float64
	// KernelSeconds is the pure execution component (scan, probe,
	// aggregate) and ShipSeconds the interconnect shipment component of
	// Seconds; the two overlap, so Seconds is their max, not their sum.
	// Executors that move no bytes leave ShipSeconds zero.
	KernelSeconds float64
	ShipSeconds   float64
	// Rows is the fact rows the executor actually scanned (zone-pruned
	// morsels excluded); Pruned counts its assigned morsels that zone maps
	// skipped.
	Rows   int64
	Pruned int
	// ShipBytes is the interconnect traffic the executor's spilled morsels
	// cost, and ResidentCols the column shipments a device residency cache
	// elided.
	ShipBytes    int64
	ResidentCols int
}

// GroupCount returns the number of groups in the partial's aggregate table
// (whichever representation the execution produced).
func (p *Partial) GroupCount() int {
	if p.Accs != nil {
		return len(p.Accs)
	}
	return len(p.Groups)
}

// Executor runs one assignment of morsel indices and reports its partial
// aggregate. Implementations live with their engines (package queries);
// they must be safe for concurrent use, like the plans they wrap.
type Executor interface {
	// Kind classifies the executor for telemetry.
	Kind() Kind
	// Device is the fleet device index for GPU executors, -1 for host
	// executors.
	Device() int
	// Execute runs the assignment and returns the executor's partial.
	Execute(a Assignment) Partial
}

// Assignment binds one executor to the morsel indices it owns.
type Assignment struct {
	// Executor runs the assignment.
	Executor Executor
	// Morsels are the owned morsel indices (into the schedule's morsel
	// list). An empty assignment is an idle executor: no launch, no time.
	Morsels []int
	// Spilled is the subset of Morsels that is host-resident: the
	// executor ships the referenced columns of its unpruned spilled
	// morsels over the schedule's link, overlapped with execution.
	Spilled []int
	// Merge marks the partial aggregate as produced across the link: the
	// runner charges 16 bytes per group of merge traffic for it.
	Merge bool
}

// Schedule is a complete placement of one query's morsel list onto a set
// of executors.
type Schedule struct {
	// Assignments place every morsel on exactly one executor.
	Assignments []Assignment
	// Link is the interconnect spilled columns and merged partials cross.
	Link fleet.Interconnect
	// Morsels is the length of the morsel list the assignments index.
	Morsels int
	// Packed reports whether the run scans the bit-packed fact encoding
	// (stamped onto the merged result).
	Packed bool
	// Trace asks the runner to build a span tree for the execution; when
	// false the runner allocates nothing for tracing.
	Trace bool
	// BuildWall is the host wall-clock time the schedule builder spent
	// (morsel resolution, pruning, split/shard construction); stamped only
	// when Trace is set, and surfaced as the trace's schedule span.
	BuildWall time.Duration
}

// Validate checks the schedule's core invariant: every morsel index in
// [0, Morsels) appears in exactly one assignment, and each assignment's
// Spilled set is a subset of its Morsels. A schedule produced by the
// Plan.Schedule* builders always validates; the check is the safety net
// for hand-built schedules.
func (s Schedule) Validate() error {
	seen := make([]bool, s.Morsels)
	for ai := range s.Assignments {
		a := &s.Assignments[ai]
		owned := make(map[int]bool, len(a.Morsels))
		for _, mi := range a.Morsels {
			if mi < 0 || mi >= s.Morsels {
				return fmt.Errorf("sched: assignment %d owns morsel %d outside [0, %d)", ai, mi, s.Morsels)
			}
			if seen[mi] {
				return fmt.Errorf("sched: morsel %d assigned twice", mi)
			}
			seen[mi] = true
			owned[mi] = true
		}
		for _, mi := range a.Spilled {
			if !owned[mi] {
				return fmt.Errorf("sched: assignment %d spills morsel %d it does not own", ai, mi)
			}
		}
	}
	for mi, ok := range seen {
		if !ok {
			return fmt.Errorf("sched: morsel %d unassigned", mi)
		}
	}
	return nil
}

// Split is the hybrid division of a morsel list: the indices the host CPU
// engine scans and the indices the GPU fleet scans.
type Split struct {
	CPU []int
	GPU []int
}

// CPUFraction is the live-row fraction a hybrid schedule routes to the
// host CPU engine: the arms are balanced by resident scan throughput, so
// the CPU takes cpuBW / (cpuBW + gpus·gpuBW) of the scanned rows. The
// fraction is deliberately blind to the interconnect — data is
// host-resident, so the GPU arm's shipment cost is the schedule's price,
// not its shape, and HybridCost is what decides whether that price wins.
func CPUFraction(cpu, gpu *device.Spec, gpus int) float64 {
	if gpus < 1 {
		gpus = 1
	}
	total := cpu.ReadBandwidth + float64(gpus)*gpu.ReadBandwidth
	if total <= 0 {
		return 0
	}
	return cpu.ReadBandwidth / total
}

// SplitHybrid divides a morsel list between the CPU and GPU arms of a
// hybrid schedule, zone-map aware: pruned morsels go to the CPU arm (they
// cost nothing to scan, and keeping them host-side means the GPU arm never
// ships a byte for them), and the CPU arm additionally takes the leading
// live morsels until it holds frac of the live rows — pruned-heavy ranges
// to the CPU, scan-heavy ranges to the GPU. frac <= 0 sends every morsel
// to the GPU arm (the pure-GPU placement) and frac >= 1 every morsel to
// the CPU arm (the pure-CPU placement).
func SplitHybrid(morsels []ssb.Morsel, pruned []bool, frac float64) Split {
	var sp Split
	if frac <= 0 {
		sp.GPU = make([]int, len(morsels))
		for i := range morsels {
			sp.GPU[i] = i
		}
		return sp
	}
	var liveRows int64
	for i, m := range morsels {
		if !pruned[i] {
			liveRows += int64(m.Rows())
		}
	}
	want := frac * float64(liveRows)
	var cpuRows int64
	for i, m := range morsels {
		if pruned[i] {
			sp.CPU = append(sp.CPU, i)
			continue
		}
		if frac >= 1 || float64(cpuRows) < want {
			sp.CPU = append(sp.CPU, i)
			cpuRows += int64(m.Rows())
			continue
		}
		sp.GPU = append(sp.GPU, i)
	}
	return sp
}
