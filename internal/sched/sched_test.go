package sched

import (
	"strings"
	"testing"

	"crystal/internal/device"
	"crystal/internal/ssb"
)

// fakeExec satisfies Executor for schedule-shape tests; Validate never
// calls Execute.
type fakeExec struct{ kind Kind }

func (f fakeExec) Kind() Kind                 { return f.kind }
func (f fakeExec) Device() int                { return -1 }
func (f fakeExec) Execute(Assignment) Partial { return Partial{} }

func TestValidate(t *testing.T) {
	ex := fakeExec{KindCPU}
	ok := Schedule{
		Morsels: 4,
		Assignments: []Assignment{
			{Executor: ex, Morsels: []int{0, 2}, Spilled: []int{2}},
			{Executor: ex, Morsels: []int{1, 3}},
		},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}

	cases := []struct {
		name string
		s    Schedule
		want string
	}{
		{"out of range", Schedule{Morsels: 2, Assignments: []Assignment{
			{Executor: ex, Morsels: []int{0, 5}},
			{Executor: ex, Morsels: []int{1}},
		}}, "outside"},
		{"negative index", Schedule{Morsels: 2, Assignments: []Assignment{
			{Executor: ex, Morsels: []int{-1, 0, 1}},
		}}, "outside"},
		{"duplicate", Schedule{Morsels: 2, Assignments: []Assignment{
			{Executor: ex, Morsels: []int{0, 1}},
			{Executor: ex, Morsels: []int{1}},
		}}, "twice"},
		{"unassigned", Schedule{Morsels: 3, Assignments: []Assignment{
			{Executor: ex, Morsels: []int{0, 2}},
		}}, "unassigned"},
		{"foreign spill", Schedule{Morsels: 2, Assignments: []Assignment{
			{Executor: ex, Morsels: []int{0}, Spilled: []int{1}},
			{Executor: ex, Morsels: []int{1}},
		}}, "does not own"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: invalid schedule accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCPUFraction(t *testing.T) {
	cpu, gpu := device.I76900(), device.V100()
	frac := CPUFraction(cpu, gpu, 1)
	want := cpu.ReadBandwidth / (cpu.ReadBandwidth + gpu.ReadBandwidth)
	if frac != want {
		t.Errorf("CPUFraction(1 GPU) = %v, want %v", frac, want)
	}
	if frac <= 0 || frac >= 0.5 {
		t.Errorf("CPU fraction %v should be a small minority share", frac)
	}
	// More GPU arms shrink the CPU's share monotonically.
	if f4 := CPUFraction(cpu, gpu, 4); f4 >= frac {
		t.Errorf("4-GPU fraction %v not below 1-GPU fraction %v", f4, frac)
	}
	// gpus < 1 clamps to one arm rather than dividing by zero weight.
	if got := CPUFraction(cpu, gpu, 0); got != want {
		t.Errorf("CPUFraction(0 GPUs) = %v, want the 1-GPU value %v", got, want)
	}
	// Degenerate zero-bandwidth specs route everything to the GPU arm.
	if got := CPUFraction(&device.Spec{}, &device.Spec{}, 2); got != 0 {
		t.Errorf("zero-bandwidth fraction = %v, want 0", got)
	}
}

// splitMorsels builds n equal-sized morsels for split tests.
func splitMorsels(n int) []ssb.Morsel {
	ds := ssb.GenerateRows(n * ssb.MorselAlign)
	return ds.Partition(n)
}

func TestSplitHybrid(t *testing.T) {
	morsels := splitMorsels(8)
	pruned := make([]bool, 8)

	// frac <= 0: pure GPU, every index in order.
	sp := SplitHybrid(morsels, pruned, 0)
	if len(sp.CPU) != 0 || len(sp.GPU) != 8 {
		t.Fatalf("frac 0 split = %d CPU / %d GPU, want 0/8", len(sp.CPU), len(sp.GPU))
	}
	for i, mi := range sp.GPU {
		if mi != i {
			t.Fatalf("frac 0 GPU order %v not identity", sp.GPU)
		}
	}

	// frac >= 1: pure CPU.
	sp = SplitHybrid(morsels, pruned, 1)
	if len(sp.CPU) != 8 || len(sp.GPU) != 0 {
		t.Fatalf("frac 1 split = %d CPU / %d GPU, want 8/0", len(sp.CPU), len(sp.GPU))
	}

	// A quarter share takes the live prefix: 2 of 8 equal morsels.
	sp = SplitHybrid(morsels, pruned, 0.25)
	if len(sp.CPU) != 2 || sp.CPU[0] != 0 || sp.CPU[1] != 1 {
		t.Fatalf("frac 0.25 CPU arm = %v, want the [0 1] prefix", sp.CPU)
	}
	if len(sp.GPU) != 6 {
		t.Fatalf("frac 0.25 GPU arm holds %d morsels, want 6", len(sp.GPU))
	}

	// Every index lands on exactly one arm.
	seen := map[int]int{}
	for _, mi := range sp.CPU {
		seen[mi]++
	}
	for _, mi := range sp.GPU {
		seen[mi]++
	}
	for i := 0; i < 8; i++ {
		if seen[i] != 1 {
			t.Fatalf("morsel %d assigned %d times", i, seen[i])
		}
	}

	// Zone-pruned morsels always ride the CPU arm (free to scan there,
	// and the GPU arm never ships a byte for them), and do not count
	// toward the CPU's live-row share.
	pruned[3], pruned[6] = true, true
	sp = SplitHybrid(morsels, pruned, 0.25)
	cpuSet := map[int]bool{}
	for _, mi := range sp.CPU {
		cpuSet[mi] = true
	}
	if !cpuSet[3] || !cpuSet[6] {
		t.Fatalf("pruned morsels not on the CPU arm: %v", sp.CPU)
	}
	liveCPU := 0
	for _, mi := range sp.CPU {
		if !pruned[mi] {
			liveCPU++
		}
	}
	if liveCPU != 2 {
		t.Errorf("CPU arm holds %d live morsels, want 2 (a quarter of 6 live, rounded up)", liveCPU)
	}
}

// TestLabel pins the executor naming convention telemetry and trace spans
// key on: bare kind for host executors, kind+index for fleet devices.
func TestLabel(t *testing.T) {
	cases := []struct {
		kind   Kind
		device int
		want   string
	}{
		{KindCPU, -1, "cpu"},
		{KindCoproc, -1, "coproc"},
		{KindGPU, 0, "gpu0"},
		{KindGPU, 3, "gpu3"},
	}
	for _, c := range cases {
		if got := Label(c.kind, c.device); got != c.want {
			t.Errorf("Label(%q, %d) = %q, want %q", c.kind, c.device, got, c.want)
		}
	}
}

// TestGroupCount covers both partial representations: the legacy
// single-SUM Groups table and the multi-aggregate Accs table, which wins
// when both are present.
func TestGroupCount(t *testing.T) {
	legacy := &Partial{Groups: map[int64]int64{1: 1, 2: 2}}
	if got := legacy.GroupCount(); got != 2 {
		t.Errorf("legacy GroupCount() = %d, want 2", got)
	}
	multi := &Partial{
		Groups: map[int64]int64{1: 1},
		Accs:   map[int64][]int64{1: {1, 2}, 2: {3, 4}, 3: {5, 6}},
	}
	if got := multi.GroupCount(); got != 3 {
		t.Errorf("multi-aggregate GroupCount() = %d, want 3", got)
	}
	empty := &Partial{}
	if got := empty.GroupCount(); got != 0 {
		t.Errorf("empty GroupCount() = %d, want 0", got)
	}
}
