package crystal

import (
	"math/rand"
	"testing"

	"crystal/internal/pack"
)

// TestBlockLoadPackedValuesAndTraffic: the packed tile load decodes exactly
// the plain values and charges the tile's packed bytes — width/32 of the
// plain traffic.
func TestBlockLoadPackedValuesAndTraffic(t *testing.T) {
	const n = 2048
	vals := make([]int32, n)
	rng := rand.New(rand.NewSource(9))
	for i := range vals {
		vals[i] = rng.Int31n(1 << 10) // 10-bit frame
	}
	col := pack.NewFrames(vals, n)
	b := testBlock(t, n)
	items := make([]int32, n)
	if m := BlockLoadPacked(b, col, items); m != n {
		t.Fatalf("loaded %d of %d", m, n)
	}
	for i := range vals {
		if items[i] != vals[i] {
			t.Fatalf("decoded value %d wrong", i)
		}
	}
	wantBytes := col.Bytes()
	if got := b.Pass().BytesRead; got != wantBytes {
		t.Errorf("packed load charged %d bytes, want %d", got, wantBytes)
	}
	if plain := int64(n) * 4; wantBytes*3 > plain {
		t.Errorf("10-bit frame should read under a third of plain: %d vs %d", wantBytes, plain)
	}
}

// TestBlockLoadSelPackedTraffic: the selective packed load charges only the
// distinct packed lines touched, which for a sparse bitmap is far below the
// full frame, and never exceeds it for a dense one.
func TestBlockLoadSelPackedTraffic(t *testing.T) {
	const n = 2048
	vals := make([]int32, n)
	rng := rand.New(rand.NewSource(10))
	for i := range vals {
		vals[i] = rng.Int31n(1 << 10)
	}
	col := pack.NewFrames(vals, n)

	// Sparse: one element in 256.
	b := testBlock(t, n)
	bitmap := make([]uint8, n)
	for i := 0; i < n; i += 256 {
		bitmap[i] = 1
	}
	items := make([]int32, n)
	BlockLoadSelPacked(b, col, bitmap, items)
	sparse := b.Pass().BytesRead
	for i := 0; i < n; i += 256 {
		if items[i] != vals[i] {
			t.Fatalf("selective decode wrong at %d", i)
		}
	}
	if full := col.Bytes(); sparse >= full {
		t.Errorf("sparse selective load read %d bytes, full frame is %d", sparse, full)
	}

	// Dense: every element — the line count caps at the frame's lines.
	b2 := testBlock(t, n)
	for i := range bitmap {
		bitmap[i] = 1
	}
	BlockLoadSelPacked(b2, col, bitmap, items)
	if dense, full := b2.Pass().BytesRead, col.Bytes(); dense > full+b2.LineSize() {
		t.Errorf("dense selective load read %d bytes, frame is %d", dense, full)
	}
}

// TestBlockLoadPackedConstantFrame: a width-0 frame decodes its constant
// and charges nothing — the value is metadata, not storage.
func TestBlockLoadPackedConstantFrame(t *testing.T) {
	const n = 512
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = 77
	}
	col := pack.NewFrames(vals, n)
	b := testBlock(t, n)
	items := make([]int32, n)
	BlockLoadPacked(b, col, items)
	if items[0] != 77 || items[n-1] != 77 {
		t.Error("constant frame decoded wrong")
	}
	if b.Pass().BytesRead != 0 {
		t.Errorf("constant frame charged %d bytes", b.Pass().BytesRead)
	}
	bitmap := make([]uint8, n)
	bitmap[5] = 1
	b2 := testBlock(t, n)
	BlockLoadSelPacked(b2, col, bitmap, items)
	if b2.Pass().BytesRead != 0 {
		t.Errorf("selective constant frame charged %d bytes", b2.Pass().BytesRead)
	}
}
