package crystal

import (
	"sync/atomic"

	"crystal/internal/device"
	"crystal/internal/sim"
)

// SlotOp is the merge operator of one accumulator slot in a MultiAggTable.
// SUM and COUNT slots add; MIN/MAX slots converge with a CAS loop, which is
// how a real GPU kernel implements atomicMin/atomicMax on 64-bit values.
type SlotOp int

const (
	SlotAdd SlotOp = iota
	SlotMin
	SlotMax
)

// Identity returns the slot's merge identity (0 for add, the extreme
// sentinels for min/max).
func (op SlotOp) Identity() int64 {
	switch op {
	case SlotMin:
		return int64(^uint64(0) >> 1) // math.MaxInt64
	case SlotMax:
		return -int64(^uint64(0)>>1) - 1 // math.MinInt64
	default:
		return 0
	}
}

// Merge combines an accumulated value with a delta under the operator.
func (op SlotOp) Merge(acc, v int64) int64 {
	switch op {
	case SlotMin:
		if v < acc {
			return v
		}
		return acc
	case SlotMax:
		if v > acc {
			return v
		}
		return acc
	default:
		return acc + v
	}
}

// MultiAggTable is the multi-accumulator generalization of AggTable: each
// group key owns a fixed vector of 8-byte accumulator slots (one per
// aggregate slot of the statement — SUM and COUNT take one, AVG takes two).
// Updates stay atomic per slot, so concurrent GPU blocks can accumulate
// into the same group exactly like the single-sum table.
type MultiAggTable struct {
	keys  []int64
	vals  []int64 // capacity * slots, flattened
	ops   []SlotOp
	slots int
	mask  uint64
	n     int64
}

// NewMultiAggTable creates a table for up to n distinct groups with the
// given accumulator slot operators (50% fill, capacity a power of two).
func NewMultiAggTable(n int, ops []SlotOp) *MultiAggTable {
	capacity := 2
	for float64(capacity)*0.5 < float64(n) {
		capacity <<= 1
	}
	t := &MultiAggTable{
		keys:  make([]int64, capacity),
		vals:  make([]int64, capacity*len(ops)),
		ops:   append([]SlotOp(nil), ops...),
		slots: len(ops),
		mask:  uint64(capacity - 1),
	}
	for i := range t.keys {
		t.keys[i] = aggEmpty
	}
	for s := range t.vals {
		t.vals[s] = t.ops[s%t.slots].Identity()
	}
	return t
}

// Slots returns the number of accumulator slots per group.
func (t *MultiAggTable) Slots() int { return t.slots }

// Bytes returns the table footprint: an 8-byte key plus 8 bytes per slot
// for every slot of capacity.
func (t *MultiAggTable) Bytes() int64 { return int64(len(t.keys)) * int64(8+8*t.slots) }

// Groups returns the number of distinct groups accumulated.
func (t *MultiAggTable) Groups() int { return int(atomic.LoadInt64(&t.n)) }

func (t *MultiAggTable) slotMerge(idx int, op SlotOp, v int64) {
	addr := &t.vals[idx]
	if op == SlotAdd {
		atomic.AddInt64(addr, v)
		return
	}
	for {
		cur := atomic.LoadInt64(addr)
		next := op.Merge(cur, v)
		if next == cur || atomic.CompareAndSwapInt64(addr, cur, next) {
			return
		}
	}
}

// Update merges one row's slot deltas into the accumulators for group key.
func (t *MultiAggTable) Update(key int64, deltas []int64) {
	if key == aggEmpty {
		panic("crystal: reserved aggregation key")
	}
	h := (uint64(key) * 0x9E3779B97F4A7C15) & t.mask
	for {
		k := atomic.LoadInt64(&t.keys[h])
		if k == key {
			break
		}
		if k == aggEmpty {
			if atomic.CompareAndSwapInt64(&t.keys[h], aggEmpty, key) {
				atomic.AddInt64(&t.n, 1)
				break
			}
			continue
		}
		h = (h + 1) & t.mask
	}
	base := int(h) * t.slots
	for s := 0; s < t.slots; s++ {
		t.slotMerge(base+s, t.ops[s], deltas[s])
	}
}

// Each calls fn for every (key, accumulator vector) pair in unspecified
// order. The slice passed to fn aliases the table; callers copy if needed.
func (t *MultiAggTable) Each(fn func(key int64, acc []int64)) {
	for i, k := range t.keys {
		if k != aggEmpty {
			fn(k, t.vals[i*t.slots:(i+1)*t.slots])
		}
	}
}

// BlockMultiAggUpdate accumulates the selected rows' slot-delta vectors into
// the global table and meters the random probes exactly like BlockAggUpdate;
// the per-row struct is wider (8 + 8*slots bytes), which Bytes() reflects.
func BlockMultiAggUpdate(b *sim.Block, t *MultiAggTable, groupKeys []int64, deltas [][]int64, bitmap []uint8, n int) {
	var probes int64
	for i := 0; i < n; i++ {
		if bitmap != nil && bitmap[i] == 0 {
			continue
		}
		t.Update(groupKeys[i], deltas[i])
		probes++
	}
	b.Pass().AddProbes(device.ProbeSet{Count: probes, StructBytes: t.Bytes()})
}
