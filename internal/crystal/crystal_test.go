package crystal

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"crystal/internal/device"
	"crystal/internal/sim"
)

func testBlock(t *testing.T, elems int) *sim.Block {
	t.Helper()
	var got *sim.Block
	// Run a single-block grid to obtain a realistic Block context.
	cfg := sim.Config{Threads: 128, ItemsPerThread: (elems + 127) / 128, Elems: elems}
	sim.Run(device.V100(), cfg, func(b *sim.Block) { got = b })
	if got == nil {
		t.Fatal("no block executed")
	}
	return got
}

func TestBlockLoadStoreRoundTrip(t *testing.T) {
	const n = 512
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(i * 3)
	}
	b := testBlock(t, n)
	items := make([]int32, n)
	if got := BlockLoad(b, col, items); got != n {
		t.Fatalf("BlockLoad = %d, want %d", got, n)
	}
	out := make([]int32, n)
	BlockStore(b, items, n, out, 0)
	for i := range col {
		if out[i] != col[i] {
			t.Fatalf("round trip mismatch at %d: %d != %d", i, out[i], col[i])
		}
	}
	if b.Pass().BytesRead != 4*n {
		t.Errorf("BytesRead = %d, want %d", b.Pass().BytesRead, 4*n)
	}
	if b.Pass().BytesWritten != 4*n {
		t.Errorf("BytesWritten = %d, want %d", b.Pass().BytesWritten, 4*n)
	}
}

func TestBlockLoadPartialTile(t *testing.T) {
	col := make([]int32, 100)
	b := testBlock(t, 100) // tile capacity 128, only 100 valid
	items := make([]int32, 128)
	if got := BlockLoad(b, col, items); got != 100 {
		t.Fatalf("partial tile load = %d, want 100", got)
	}
	if b.FullTile() {
		t.Error("tile of 100/128 should not report full")
	}
}

func TestBlockPredAndScanShuffle(t *testing.T) {
	const n = 1024
	col := make([]int32, n)
	rng := rand.New(rand.NewSource(7))
	for i := range col {
		col[i] = int32(rng.Intn(100))
	}
	b := testBlock(t, n)
	items := make([]int32, n)
	BlockLoad(b, col, items)
	bitmap := make([]uint8, n)
	BlockPred(b, items, n, func(v int32) bool { return v > 50 }, bitmap)

	indices := make([]int32, n)
	total := BlockScan(b, bitmap, n, indices)

	want := 0
	for _, v := range col {
		if v > 50 {
			want++
		}
	}
	if total != want {
		t.Fatalf("scan total = %d, want %d", total, want)
	}

	shuffled := make([]int32, n)
	m := BlockShuffle(b, items, bitmap, indices, n, shuffled)
	if m != want {
		t.Fatalf("shuffle moved %d, want %d", m, want)
	}
	// Shuffle must preserve input order of the matched entries (stability).
	j := 0
	for _, v := range col {
		if v > 50 {
			if shuffled[j] != v {
				t.Fatalf("shuffle order broken at %d", j)
			}
			j++
		}
	}
}

func TestBlockPredAnd(t *testing.T) {
	const n = 256
	a := make([]int32, n)
	c := make([]int32, n)
	for i := range a {
		a[i], c[i] = int32(i), int32(n-i)
	}
	b := testBlock(t, n)
	bitmap := make([]uint8, n)
	BlockPred(b, a, n, func(v int32) bool { return v >= 64 }, bitmap)
	BlockPredAnd(b, c, n, func(v int32) bool { return v >= 64 }, bitmap)
	for i := 0; i < n; i++ {
		want := uint8(0)
		if a[i] >= 64 && c[i] >= 64 {
			want = 1
		}
		if bitmap[i] != want {
			t.Fatalf("combined predicate wrong at %d", i)
		}
	}
}

func TestBlockScanMatchesSequentialProperty(t *testing.T) {
	f := func(bits []bool) bool {
		if len(bits) == 0 {
			return true
		}
		if len(bits) > 4096 {
			bits = bits[:4096]
		}
		n := len(bits)
		bitmap := make([]uint8, n)
		for i, v := range bits {
			if v {
				bitmap[i] = 1
			}
		}
		b := testBlockQuick(n)
		indices := make([]int32, n)
		total := BlockScan(b, bitmap, n, indices)
		sum := int32(0)
		for i := 0; i < n; i++ {
			if indices[i] != sum {
				return false
			}
			sum += int32(bitmap[i])
		}
		return total == int(sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func testBlockQuick(elems int) *sim.Block {
	var got *sim.Block
	cfg := sim.Config{Threads: 128, ItemsPerThread: (elems + 127) / 128, Elems: elems}
	sim.Run(device.V100(), cfg, func(b *sim.Block) { got = b })
	return got
}

func TestBlockLoadSelTrafficAndValues(t *testing.T) {
	const n = 1024
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(i)
	}
	b := testBlock(t, n)

	// Sparse selection: one element out of every 64 -> one 128B line each.
	bitmap := make([]uint8, n)
	for i := 0; i < n; i += 64 {
		bitmap[i] = 1
	}
	items := make([]int32, n)
	BlockLoadSel(b, col, bitmap, items)
	for i := 0; i < n; i += 64 {
		if items[i] != col[i] {
			t.Fatalf("selected item %d not loaded", i)
		}
	}
	// 16 selected entries, each on its own 128-byte line (32 int32s/line).
	wantBytes := int64(16 * 128)
	if b.Pass().BytesRead != wantBytes {
		t.Errorf("sparse LoadSel read %d bytes, want %d", b.Pass().BytesRead, wantBytes)
	}

	// Dense selection must not exceed a full-tile read by more than a line.
	b2 := testBlock(t, n)
	for i := range bitmap {
		bitmap[i] = 1
	}
	BlockLoadSel(b2, col, bitmap, items)
	if b2.Pass().BytesRead > 4*n+128 {
		t.Errorf("dense LoadSel read %d bytes, want <= %d", b2.Pass().BytesRead, 4*n)
	}
}

func TestBlockAggregateSum(t *testing.T) {
	const n = 300
	vals := make([]int32, n)
	bitmap := make([]uint8, n)
	var want int64
	for i := range vals {
		vals[i] = int32(i)
		if i%3 == 0 {
			bitmap[i] = 1
			want += int64(i)
		}
	}
	b := testBlock(t, n)
	if got := BlockAggregateSum(b, vals, bitmap, n); got != want {
		t.Errorf("masked sum = %d, want %d", got, want)
	}
	allWant := int64(n*(n-1)) / 2
	if got := BlockAggregateSum(b, vals, nil, n); got != allWant {
		t.Errorf("full sum = %d, want %d", got, allWant)
	}
	f := BlockAggregateSumF(b, []float32{1.5, 2.5}, nil, 2)
	if f != 4.0 {
		t.Errorf("float sum = %f", f)
	}
}

func TestBlockStoreScattered(t *testing.T) {
	b := testBlock(t, 4)
	out := make([]int32, 8)
	BlockStoreScattered(b, []int32{10, 20, 30}, 3, out, []int32{7, 0, 3})
	if out[7] != 10 || out[0] != 20 || out[3] != 30 {
		t.Errorf("scattered store wrong: %v", out)
	}
	if b.Pass().RandomWrites != 3 {
		t.Errorf("RandomWrites = %d, want 3", b.Pass().RandomWrites)
	}
}

func TestHashTableBasic(t *testing.T) {
	ht := NewHashTable(100, 0.5, true)
	if ht.Capacity() < 200 {
		t.Errorf("capacity %d too small for 50%% fill of 100", ht.Capacity())
	}
	for i := int32(0); i < 100; i++ {
		ht.Insert(i*7, i)
	}
	for i := int32(0); i < 100; i++ {
		v, ok := ht.Get(i * 7)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v want %d", i*7, v, ok, i)
		}
	}
	if _, ok := ht.Get(999999); ok {
		t.Error("found absent key")
	}
	if ht.Bytes() != int64(ht.Capacity())*8 {
		t.Errorf("Bytes = %d", ht.Bytes())
	}
	if ht.String() == "" {
		t.Error("empty String")
	}
}

func TestHashTableKeyOnly(t *testing.T) {
	ht := NewHashTable(10, 0.5, false)
	ht.Insert(42, 0)
	if _, ok := ht.Get(42); !ok {
		t.Error("key-only table lost key")
	}
	if ht.Bytes() != int64(ht.Capacity())*4 {
		t.Errorf("key-only Bytes = %d, want 4/slot", ht.Bytes())
	}
}

func TestHashTableInsertPanicsOnSentinel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inserting EmptyKey should panic")
		}
	}()
	NewHashTable(4, 0.5, true).Insert(EmptyKey, 0)
}

func TestHashTableConcurrentBuild(t *testing.T) {
	const n = 10000
	ht := NewHashTable(n, 0.5, true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				ht.Insert(int32(i), int32(i*2))
			}
		}(w)
	}
	wg.Wait()
	for i := int32(0); i < n; i++ {
		v, ok := ht.Get(i)
		if !ok || v != i*2 {
			t.Fatalf("concurrent build lost key %d", i)
		}
	}
}

func TestHashTableBytesSweep(t *testing.T) {
	for _, want := range []int64{8 << 10, 1 << 20, 64 << 20} {
		ht := NewHashTableBytes(want)
		if ht.Bytes() != want {
			t.Errorf("NewHashTableBytes(%d).Bytes() = %d", want, ht.Bytes())
		}
	}
}

func TestHashTableGetProperty(t *testing.T) {
	f := func(keys []int32) bool {
		ht := NewHashTable(len(keys)+1, 0.5, true)
		ref := map[int32]int32{}
		for i, k := range keys {
			if k == EmptyKey {
				continue
			}
			if _, dup := ref[k]; dup {
				continue
			}
			ht.Insert(k, int32(i))
			ref[k] = int32(i)
		}
		for k, want := range ref {
			if v, ok := ht.Get(k); !ok || v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockLookup(t *testing.T) {
	ht := NewHashTable(64, 0.5, true)
	for i := int32(0); i < 64; i++ {
		ht.Insert(i, i*10)
	}
	const n = 128
	keys := make([]int32, n)
	bitmap := make([]uint8, n)
	for i := range keys {
		keys[i] = int32(i) // upper half misses
		bitmap[i] = 1
	}
	bitmap[0] = 0 // pre-filtered entry must not be probed
	b := testBlock(t, n)
	vals := make([]int32, n)
	matched := BlockLookup(b, ht, keys, n, bitmap, vals, false)
	if matched != 63 {
		t.Fatalf("matched = %d, want 63", matched)
	}
	for i := 1; i < 64; i++ {
		if bitmap[i] != 1 || vals[i] != int32(i*10) {
			t.Fatalf("hit %d lost: bit=%d val=%d", i, bitmap[i], vals[i])
		}
	}
	for i := 64; i < n; i++ {
		if bitmap[i] != 0 {
			t.Fatalf("miss %d kept its bit", i)
		}
	}
	ps := b.Pass().Probes
	if len(ps) != 1 || ps[0].Count != 127 {
		t.Fatalf("probe metering wrong: %+v", ps)
	}
	if ps[0].StructBytes != ht.Bytes() {
		t.Errorf("probe struct bytes = %d, want %d", ps[0].StructBytes, ht.Bytes())
	}
}

func TestBuildKernel(t *testing.T) {
	const n = 5000
	keys := make([]int32, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i], vals[i] = int32(i+1), int32(i*2)
	}
	ht := NewHashTable(n, 0.5, true)
	pass := sim.Run(device.V100(), sim.DefaultConfig(n), func(b *sim.Block) {
		BuildKernel(b, ht, keys, vals)
	})
	for i := int32(1); i <= n; i++ {
		v, ok := ht.Get(i)
		if !ok || v != (i-1)*2 {
			t.Fatalf("build lost key %d", i)
		}
	}
	if pass.BytesRead != 8*n {
		t.Errorf("build read %d bytes, want %d", pass.BytesRead, 8*n)
	}
	var writes int64
	for _, p := range pass.Probes {
		if p.Writes {
			writes += p.Count
		}
	}
	if writes != n {
		t.Errorf("build random writes = %d, want %d", writes, n)
	}
}

func TestAggTable(t *testing.T) {
	at := NewAggTable(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				at.Add(int64(i%10), 1)
			}
		}()
	}
	wg.Wait()
	if at.Groups() != 10 {
		t.Fatalf("groups = %d, want 10", at.Groups())
	}
	var keys []int64
	at.Each(func(k, sum int64) {
		keys = append(keys, k)
		if sum != 800 {
			t.Errorf("group %d sum = %d, want 800", k, sum)
		}
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, k := range keys {
		if k != int64(i) {
			t.Fatalf("unexpected group keys %v", keys)
		}
	}
	if at.Bytes() <= 0 {
		t.Error("agg table bytes")
	}
}

func TestBlockAggUpdate(t *testing.T) {
	const n = 256
	gk := make([]int64, n)
	dl := make([]int64, n)
	bm := make([]uint8, n)
	for i := range gk {
		gk[i] = int64(i % 4)
		dl[i] = 1
		if i%2 == 0 {
			bm[i] = 1
		}
	}
	at := NewAggTable(8)
	b := testBlock(t, n)
	BlockAggUpdate(b, at, gk, dl, bm, n)
	total := int64(0)
	at.Each(func(_, s int64) { total += s })
	if total != n/2 {
		t.Errorf("agg total = %d, want %d", total, n/2)
	}
	if len(b.Pass().Probes) == 0 {
		t.Error("agg update not metered")
	}
}

func TestBlockAggregateMinMaxCount(t *testing.T) {
	b := testBlock(t, 8)
	items := []int32{5, -3, 9, 0, 7, -8, 2, 4}
	bitmap := []uint8{1, 0, 1, 1, 0, 0, 1, 1}
	mn, ok := BlockAggregateMin(b, items, bitmap, 8)
	if !ok || mn != 0 {
		t.Errorf("masked min = %d,%v", mn, ok)
	}
	mx, ok := BlockAggregateMax(b, items, bitmap, 8)
	if !ok || mx != 9 {
		t.Errorf("masked max = %d,%v", mx, ok)
	}
	if c := BlockAggregateCount(b, bitmap, 8); c != 5 {
		t.Errorf("masked count = %d", c)
	}
	// Unmasked covers everything.
	mn, _ = BlockAggregateMin(b, items, nil, 8)
	mx, _ = BlockAggregateMax(b, items, nil, 8)
	if mn != -8 || mx != 9 {
		t.Errorf("full min/max = %d/%d", mn, mx)
	}
	if c := BlockAggregateCount(b, nil, 8); c != 8 {
		t.Errorf("full count = %d", c)
	}
	// Nothing selected.
	empty := make([]uint8, 8)
	if _, ok := BlockAggregateMin(b, items, empty, 8); ok {
		t.Error("empty min should report !ok")
	}
	if _, ok := BlockAggregateMax(b, items, empty, 8); ok {
		t.Error("empty max should report !ok")
	}
}
