// Package crystal is a Go port of the paper's primary contribution: the
// Crystal library of block-wide functions implementing the tile-based
// execution model (Section 3.3, Table 1).
//
// A block-wide function takes a set of tiles as input, performs one task
// co-operatively across the threads of a thread block, and outputs a set of
// tiles. Tiles live in "registers" (per-block slices) or shared memory; a
// full SQL operator pipeline over a tile runs inside a single kernel, so the
// input columns are read from global memory exactly once and the final
// output is written coalesced — the two properties that let the tile-based
// model saturate memory bandwidth where the independent-threads model of
// prior GPU databases cannot (Figure 4).
//
// Each primitive meters the global-memory traffic it generates into the
// owning block's device.Pass; shared-memory and register traffic is free,
// matching the paper's models.
package crystal

import (
	"crystal/internal/device"
	"crystal/internal/pack"
	"crystal/internal/sim"
)

// Value is the set of 4- and 8-byte column types Crystal tiles hold. The
// paper's workloads use 4-byte integers and floats throughout.
type Value interface {
	~int32 | ~uint32 | ~int64 | ~uint64 | ~float32 | ~float64
}

func bytesOf[T Value]() int64 {
	var v T
	switch any(v).(type) {
	case int64, uint64, float64:
		return 8
	default:
		return 4
	}
}

// BlockLoad copies this block's tile of items from the column in global
// memory into the register array items (len >= tile size). It returns the
// number of valid elements loaded (the final tile of a grid may be partial).
// Full tiles use vector instructions; the launch configuration's vector
// efficiency is accounted at launch level (Figure 9).
func BlockLoad[T Value](b *sim.Block, col []T, items []T) int {
	n := b.TileElems
	if rem := len(col) - b.Offset; n > rem {
		n = rem
	}
	if n <= 0 {
		return 0
	}
	copy(items[:n], col[b.Offset:b.Offset+n])
	b.Pass().BytesRead += int64(n) * bytesOf[T]()
	return n
}

// BlockLoadSel selectively loads the tile elements whose bitmap entry is
// set (Table 1: used after a previous selection or join has filtered the
// tile). Unselected register slots are left untouched. The traffic charged
// is the number of distinct cache lines actually touched, capped at the
// full tile — exactly the min(4|L|/C, |L|sigma) term of the Section 5.3
// column-access model, computed from the real bitmap rather than estimated.
func BlockLoadSel[T Value](b *sim.Block, col []T, bitmap []uint8, items []T) int {
	n := b.TileElems
	if rem := len(col) - b.Offset; n > rem {
		n = rem
	}
	if n <= 0 {
		return 0
	}
	elemBytes := bytesOf[T]()
	perLine := int(b.LineSize() / elemBytes)
	if perLine <= 0 {
		perLine = 1
	}
	lines := 0
	lastLine := -1
	for i := 0; i < n; i++ {
		if bitmap[i] == 0 {
			continue
		}
		items[i] = col[b.Offset+i]
		if line := (b.Offset + i) / perLine; line != lastLine {
			lines++
			lastLine = line
		}
	}
	b.Pass().BytesRead += int64(lines) * int64(perLine) * elemBytes
	return n
}

// BlockLoadPacked is BlockLoad over a bit-packed column (the Section 5.5
// compression extension): the block reads its tile's packed frames from
// global memory — width/32 of the plain traffic — and unpacks into the
// register array. Unpacking is register arithmetic the GPU's compute
// headroom absorbs (the asymmetry the paper predicts), so only the packed
// bytes are charged. The frame size equals the tile size in this repo, so a
// tile's traffic is exactly its frame's footprint and per-block charges
// merge exactly for any grid.
func BlockLoadPacked(b *sim.Block, col *pack.Frames, items []int32) int {
	n := b.TileElems
	if rem := col.Len() - b.Offset; n > rem {
		n = rem
	}
	if n <= 0 {
		return 0
	}
	col.UnpackRange(b.Offset, b.Offset+n, items)
	b.Pass().BytesRead += col.BytesRange(b.Offset, b.Offset+n)
	return n
}

// BlockLoadSelPacked is BlockLoadSel over a bit-packed column: only tile
// elements with a set bitmap entry are unpacked, and the traffic charged is
// the distinct DRAM lines of the packed layout actually touched. Packed
// lines hold 32/width times more values than plain ones, so selective loads
// keep their min(4|L|/C, |L|sigma) shape with the packed |L|.
func BlockLoadSelPacked(b *sim.Block, col *pack.Frames, bitmap []uint8, items []int32) int {
	n := b.TileElems
	if rem := col.Len() - b.Offset; n > rem {
		n = rem
	}
	if n <= 0 {
		return 0
	}
	lineBytes := b.LineSize()
	lines := int64(0)
	lastLine := int64(-1)
	for i := 0; i < n; i++ {
		if bitmap[i] == 0 {
			continue
		}
		items[i] = col.Get(b.Offset + i)
		if line := col.LineOf(b.Offset+i, lineBytes); line >= 0 && line != lastLine {
			lines++
			lastLine = line
		}
	}
	b.Pass().BytesRead += lines * lineBytes
	return n
}

// BlockStore copies n contiguous items from registers/shared memory to
// global memory at out[dst:]. The write is coalesced (Table 1).
func BlockStore[T Value](b *sim.Block, items []T, n int, out []T, dst int) {
	if n <= 0 {
		return
	}
	copy(out[dst:dst+n], items[:n])
	b.Pass().BytesWritten += int64(n) * bytesOf[T]()
}

// BlockStoreScattered writes n items to arbitrary per-item offsets; every
// write costs a full DRAM line. It exists to express the independent-threads
// baseline of Figure 4(a), not for use in tiled kernels.
func BlockStoreScattered[T Value](b *sim.Block, items []T, n int, out []T, offsets []int32) {
	for i := 0; i < n; i++ {
		out[offsets[i]] = items[i]
	}
	b.Pass().RandomWrites += int64(n)
}

// BlockPred applies pred to the first n items and stores the result in
// bitmap (Table 1). Predicate evaluation is register-only compute; the GPU
// saturates bandwidth regardless (Section 4.2), so no time is charged.
func BlockPred[T Value](b *sim.Block, items []T, n int, pred func(T) bool, bitmap []uint8) {
	for i := 0; i < n; i++ {
		if pred(items[i]) {
			bitmap[i] = 1
		} else {
			bitmap[i] = 0
		}
	}
}

// BlockPredAnd ands pred into an existing bitmap (the AndPred combinator of
// Figure 7(b)). Items with a zero bitmap entry are not evaluated.
func BlockPredAnd[T Value](b *sim.Block, items []T, n int, pred func(T) bool, bitmap []uint8) {
	for i := 0; i < n; i++ {
		if bitmap[i] != 0 && !pred(items[i]) {
			bitmap[i] = 0
		}
	}
}

// BlockScan co-operatively computes the exclusive prefix sum of the bitmap
// across the block and writes per-item output offsets into indices; it
// returns the total number of set entries (Table 1). The hierarchical
// shared-memory scan of the real implementation is free in the timing
// model, as the paper's measurements justify.
func BlockScan(b *sim.Block, bitmap []uint8, n int, indices []int32) int {
	total := int32(0)
	for i := 0; i < n; i++ {
		indices[i] = total
		total += int32(bitmap[i])
	}
	return int(total)
}

// BlockShuffle uses the bitmap and the scan offsets to rearrange the
// matched items into a contiguous prefix of out (in shared memory), so the
// subsequent BlockStore is coalesced (Table 1, Figure 6).
func BlockShuffle[T Value](b *sim.Block, items []T, bitmap []uint8, indices []int32, n int, out []T) int {
	m := 0
	for i := 0; i < n; i++ {
		if bitmap[i] != 0 {
			out[indices[i]] = items[i]
			m++
		}
	}
	return m
}

// BlockAggregateSum reduces the selected items of a tile to a single sum
// using hierarchical shared-memory reduction (Table 1); free in the timing
// model.
func BlockAggregateSum[T Value](b *sim.Block, items []T, bitmap []uint8, n int) int64 {
	var sum int64
	for i := 0; i < n; i++ {
		if bitmap == nil || bitmap[i] != 0 {
			sum += int64(items[i])
		}
	}
	return sum
}

// BlockAggregateSumF is BlockAggregateSum for floating-point tiles.
func BlockAggregateSumF[T Value](b *sim.Block, items []T, bitmap []uint8, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		if bitmap == nil || bitmap[i] != 0 {
			sum += float64(items[i])
		}
	}
	return sum
}

// BlockLookup probes the hash table for the selected keys of a tile
// (Table 1). For each key with a set bitmap entry it writes the matching
// payload into vals and keeps the bit; keys with no match have their bit
// cleared. Each lookup is metered as one random probe against the table's
// footprint; dependent marks probes that belong to the second or later join
// of a pipelined multi-join kernel (Section 5.3).
func BlockLookup(b *sim.Block, ht *HashTable, keys []int32, n int, bitmap []uint8, vals []int32, dependent bool) int {
	probes := int64(0)
	matched := 0
	for i := 0; i < n; i++ {
		if bitmap[i] == 0 {
			continue
		}
		probes++
		v, ok := ht.Get(keys[i])
		if !ok {
			bitmap[i] = 0
			continue
		}
		if vals != nil {
			vals[i] = v
		}
		matched++
	}
	b.Pass().AddProbes(device.ProbeSet{Count: probes, StructBytes: ht.Bytes(), Dependent: dependent})
	return matched
}

// BlockAggregateMin reduces the selected items of a tile to their minimum
// (Table 1's BlockAggregate covers the standard SQL aggregates). ok is
// false when no item is selected.
func BlockAggregateMin[T Value](b *sim.Block, items []T, bitmap []uint8, n int) (T, bool) {
	var mn T
	found := false
	for i := 0; i < n; i++ {
		if bitmap != nil && bitmap[i] == 0 {
			continue
		}
		if !found || items[i] < mn {
			mn = items[i]
		}
		found = true
	}
	return mn, found
}

// BlockAggregateMax reduces the selected items of a tile to their maximum;
// ok is false when no item is selected.
func BlockAggregateMax[T Value](b *sim.Block, items []T, bitmap []uint8, n int) (T, bool) {
	var mx T
	found := false
	for i := 0; i < n; i++ {
		if bitmap != nil && bitmap[i] == 0 {
			continue
		}
		if !found || items[i] > mx {
			mx = items[i]
		}
		found = true
	}
	return mx, found
}

// BlockAggregateCount counts the selected items of a tile.
func BlockAggregateCount(b *sim.Block, bitmap []uint8, n int) int64 {
	var c int64
	for i := 0; i < n; i++ {
		if bitmap == nil || bitmap[i] != 0 {
			c++
		}
	}
	return c
}
