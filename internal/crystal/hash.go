package crystal

import (
	"fmt"
	"math"
	"sync/atomic"

	"crystal/internal/device"
	"crystal/internal/sim"
)

// EmptyKey is the slot sentinel for unoccupied hash-table slots. SSB and the
// microbenchmark keys are non-negative, so the minimum int32 is safe.
const EmptyKey = math.MinInt32

// HashTable is the open-addressing, linear-probing hash table the paper's
// join operators use on both devices (Section 4.3): an array of slots, each
// a 4-byte key and a 4-byte payload, no pointers. The build phase inserts
// concurrently with compare-and-swap, mirroring the GPU build kernel.
type HashTable struct {
	keys []int32
	vals []int32
	mask uint32
	// hasPayload records whether the table stores payloads; key-only tables
	// (existence filters) occupy half the bytes.
	hasPayload bool
}

// NewHashTable creates a table with capacity for n keys at the given fill
// rate (the paper uses 50%). Capacity is rounded up to a power of two.
func NewHashTable(n int, fill float64, hasPayload bool) *HashTable {
	if fill <= 0 || fill > 1 {
		fill = 0.5
	}
	capacity := 1
	for float64(capacity)*fill < float64(n) || capacity < 2 {
		capacity <<= 1
	}
	ht := &HashTable{
		keys:       make([]int32, capacity),
		vals:       nil,
		mask:       uint32(capacity - 1),
		hasPayload: hasPayload,
	}
	if hasPayload {
		ht.vals = make([]int32, capacity)
	}
	for i := range ht.keys {
		ht.keys[i] = EmptyKey
	}
	return ht
}

// NewHashTableBytes creates a key+payload table whose footprint is exactly
// the given number of bytes (used by the Figure 13 sweep, which controls
// hash-table size directly).
func NewHashTableBytes(bytes int64) *HashTable {
	capacity := 1
	for int64(capacity)*8 < bytes {
		capacity <<= 1
	}
	ht := &HashTable{
		keys:       make([]int32, capacity),
		vals:       make([]int32, capacity),
		mask:       uint32(capacity - 1),
		hasPayload: true,
	}
	for i := range ht.keys {
		ht.keys[i] = EmptyKey
	}
	return ht
}

// Capacity returns the number of slots.
func (h *HashTable) Capacity() int { return len(h.keys) }

// Bytes returns the table's memory footprint, which determines the cache
// level it lives in and therefore the probe cost (Section 4.3 model).
func (h *HashTable) Bytes() int64 {
	per := int64(4)
	if h.hasPayload {
		per = 8
	}
	return int64(len(h.keys)) * per
}

func (h *HashTable) slot(key int32) uint32 {
	// Multiplicative hashing; the paper's tables hash 4-byte integer keys.
	return (uint32(key) * 2654435761) & h.mask
}

// Insert adds key with payload val. It is safe for concurrent use (the GPU
// build kernel inserts from thousands of threads via CAS). Duplicate keys
// occupy separate slots; Get returns the first in probe order.
func (h *HashTable) Insert(key, val int32) {
	if key == EmptyKey {
		panic("crystal: cannot insert the empty-key sentinel")
	}
	i := h.slot(key)
	for {
		if atomic.LoadInt32(&h.keys[i]) == EmptyKey &&
			atomic.CompareAndSwapInt32(&h.keys[i], EmptyKey, key) {
			if h.hasPayload {
				atomic.StoreInt32(&h.vals[i], val)
			}
			return
		}
		i = (i + 1) & h.mask
	}
}

// Get probes for key and returns its payload (zero for key-only tables).
func (h *HashTable) Get(key int32) (int32, bool) {
	i := h.slot(key)
	for {
		k := atomic.LoadInt32(&h.keys[i])
		if k == key {
			if h.hasPayload {
				return atomic.LoadInt32(&h.vals[i]), true
			}
			return 0, true
		}
		if k == EmptyKey {
			return 0, false
		}
		i = (i + 1) & h.mask
	}
}

// BuildKernel inserts this block's tile of (key, val) pairs into the table;
// it is the body of the GPU build-phase kernel. Build writes go to memory
// (Section 4.3 discussion: build writes are less affected by caches), so
// each insert is metered as a random scattered write plus the streaming
// read of the build columns.
func BuildKernel(b *sim.Block, ht *HashTable, keys, vals []int32) {
	n := b.TileElems
	kk := make([]int32, n)
	vv := make([]int32, n)
	nk := BlockLoad(b, keys, kk)
	if vals != nil {
		BlockLoad(b, vals, vv)
	}
	for i := 0; i < nk; i++ {
		v := int32(0)
		if vals != nil {
			v = vv[i]
		}
		ht.Insert(kk[i], v)
	}
	b.Pass().AddProbes(device.ProbeSet{Count: int64(nk), StructBytes: ht.Bytes(), Writes: true})
}

// AggTable is the global aggregation hash table GPU kernels update at the
// end of a pipelined query (Section 5.3): group key -> running sum, updated
// with atomic adds. Group counts in SSB are small (hundreds), so the table
// stays cache resident; the atomic traffic is what matters.
type AggTable struct {
	keys []int64
	sums []int64
	mask uint64
	n    int64
}

// NewAggTable creates an aggregation table for up to n distinct groups.
func NewAggTable(n int) *AggTable {
	capacity := 2
	for float64(capacity)*0.5 < float64(n) {
		capacity <<= 1
	}
	t := &AggTable{keys: make([]int64, capacity), sums: make([]int64, capacity), mask: uint64(capacity - 1)}
	for i := range t.keys {
		t.keys[i] = aggEmpty
	}
	return t
}

const aggEmpty = math.MinInt64

// Bytes returns the table footprint.
func (t *AggTable) Bytes() int64 { return int64(len(t.keys)) * 16 }

// Add atomically accumulates delta into the sum for group key.
func (t *AggTable) Add(key, delta int64) {
	if key == aggEmpty {
		panic("crystal: reserved aggregation key")
	}
	h := (uint64(key) * 0x9E3779B97F4A7C15) & t.mask
	for {
		k := atomic.LoadInt64(&t.keys[h])
		if k == key {
			atomic.AddInt64(&t.sums[h], delta)
			return
		}
		if k == aggEmpty {
			if atomic.CompareAndSwapInt64(&t.keys[h], aggEmpty, key) {
				atomic.AddInt64(&t.sums[h], delta)
				atomic.AddInt64(&t.n, 1)
				return
			}
			continue
		}
		h = (h + 1) & t.mask
	}
}

// Groups returns the number of distinct groups accumulated.
func (t *AggTable) Groups() int { return int(atomic.LoadInt64(&t.n)) }

// Each calls fn for every (key, sum) pair in unspecified order.
func (t *AggTable) Each(fn func(key, sum int64)) {
	for i, k := range t.keys {
		if k != aggEmpty {
			fn(k, t.sums[i])
		}
	}
}

// BlockAggUpdate accumulates the selected (key, delta) pairs of a tile into
// the global aggregation table and meters the random probes and atomics.
func BlockAggUpdate(b *sim.Block, t *AggTable, groupKeys []int64, deltas []int64, bitmap []uint8, n int) {
	var probes, updates int64
	for i := 0; i < n; i++ {
		if bitmap != nil && bitmap[i] == 0 {
			continue
		}
		t.Add(groupKeys[i], deltas[i])
		probes++
		updates++
	}
	b.Pass().AddProbes(device.ProbeSet{Count: probes, StructBytes: t.Bytes()})
	// Atomic adds to distinct cache-resident groups do not serialize on one
	// address the way the global output cursor does; they are priced as the
	// probe traffic above.
	_ = updates
}

func (h *HashTable) String() string {
	return fmt.Sprintf("hashtable{slots=%d, bytes=%d, payload=%v}", len(h.keys), h.Bytes(), h.hasPayload)
}
