package queriestest

import "testing"

// fakeResult is a minimal Result for exercising the assertion branches.
type fakeResult struct {
	rows [][2]int64
	ms   float64
}

func (f fakeResult) Rows() [][2]int64      { return f.rows }
func (f fakeResult) Milliseconds() float64 { return f.ms }

// recorder captures failures instead of failing the real test.
type recorder struct {
	testing.TB
	failed int
}

func (r *recorder) Helper()                       {}
func (r *recorder) Errorf(string, ...interface{}) { r.failed++ }

func TestSameRows(t *testing.T) {
	a := fakeResult{rows: [][2]int64{{1, 10}, {2, 20}}, ms: 1}
	b := fakeResult{rows: [][2]int64{{1, 10}, {2, 20}}, ms: 2}
	shorter := fakeResult{rows: [][2]int64{{1, 10}}}
	differs := fakeResult{rows: [][2]int64{{1, 10}, {2, 99}}}

	r := &recorder{TB: t}
	if !SameRows(r, "equal", a, b) || r.failed != 0 {
		t.Error("identical rows reported unequal")
	}
	if SameRows(r, "shorter", a, shorter) {
		t.Error("length mismatch not caught")
	}
	if SameRows(r, "differs", a, differs) {
		t.Error("value mismatch not caught")
	}
	if r.failed != 2 {
		t.Errorf("recorded %d failures, want 2", r.failed)
	}
}

func TestSameRun(t *testing.T) {
	a := fakeResult{rows: [][2]int64{{0, 5}}, ms: 1.5}
	same := fakeResult{rows: [][2]int64{{0, 5}}, ms: 1.5}
	slower := fakeResult{rows: [][2]int64{{0, 5}}, ms: 1.5000001}

	r := &recorder{TB: t}
	SameRun(r, "identical", a, same)
	if r.failed != 0 {
		t.Error("identical runs reported different")
	}
	SameRun(r, "slower", slower, a)
	if r.failed != 1 {
		t.Errorf("time drift not caught: %d failures", r.failed)
	}
}

func TestCheaper(t *testing.T) {
	base := fakeResult{rows: [][2]int64{{0, 5}}, ms: 2}
	cheap := fakeResult{rows: [][2]int64{{0, 5}}, ms: 1}

	r := &recorder{TB: t}
	Cheaper(r, "cheaper", cheap, base)
	if r.failed != 0 {
		t.Error("cheaper run rejected")
	}
	Cheaper(r, "equal", base, base)
	if r.failed != 1 {
		t.Error("equal-cost run accepted as cheaper")
	}
	Cheaper(r, "slower", base, cheap)
	if r.failed != 2 {
		t.Error("slower run accepted as cheaper")
	}
}
