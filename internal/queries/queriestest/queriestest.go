// Package queriestest holds the row-identity assertions the invariance
// harnesses share: partitioned, packed, fleet and served runs all pin the
// same two properties — identical result rows, and (where the model is
// exact) identical simulated time — against a reference execution.
//
// The helpers accept any result exposing the Rows/Milliseconds surface of
// *queries.Result rather than the concrete type: package queries' own
// internal test files import this package, so importing queries from here
// would cycle.
package queriestest

import "testing"

// Result is the slice of *queries.Result the assertions need. Rows returns
// the sorted (group key, aggregate) pairs; Milliseconds the simulated time
// (comparing it float-for-float is equivalent to comparing seconds).
type Result interface {
	Rows() [][2]int64
	Milliseconds() float64
}

// SameRows fails the test when the two results do not contain identical
// rows — the row-identity half of every invariance guarantee.
func SameRows(t testing.TB, label string, got, want Result) bool {
	t.Helper()
	g, w := got.Rows(), want.Rows()
	if len(g) != len(w) {
		t.Errorf("%s: result rows differ: %d vs %d groups", label, len(g), len(w))
		return false
	}
	for i := range g {
		if g[i] != w[i] {
			t.Errorf("%s: result rows differ at group %d: %v vs %v", label, i, g[i], w[i])
			return false
		}
	}
	return true
}

// SameRun asserts full invariance: identical rows AND identical simulated
// time, float for float — the guarantee exact-traffic-merge executions
// (partitioned, packed, served) make against their monolithic runs.
func SameRun(t testing.TB, label string, got, want Result) {
	t.Helper()
	SameRows(t, label, got, want)
	if got.Milliseconds() != want.Milliseconds() {
		t.Errorf("%s: simulated time differs: %.12f ms vs %.12f ms",
			label, got.Milliseconds(), want.Milliseconds())
	}
}

// Cheaper asserts identical rows with strictly smaller simulated time —
// what pruning, compression and residency wins must look like: never a row
// changed, always a cheaper run.
func Cheaper(t testing.TB, label string, got, want Result) {
	t.Helper()
	SameRows(t, label, got, want)
	if got.Milliseconds() >= want.Milliseconds() {
		t.Errorf("%s: run not cheaper: %.12f ms >= %.12f ms",
			label, got.Milliseconds(), want.Milliseconds())
	}
}
