package queries

import (
	"time"

	"crystal/internal/device"
	"crystal/internal/fleet"
	"crystal/internal/sched"
	"crystal/internal/ssb"
	"crystal/internal/trace"
)

// ExecutorResult is one executor's slice of a scheduled run: what it was
// assigned, what it scanned, and its share of the simulated time and
// interconnect traffic. It is the placement-agnostic telemetry every run
// path reports (FleetDevice is its fleet-shaped rendering).
type ExecutorResult struct {
	// Kind classifies the executor; Device is its fleet index (-1 for host
	// executors).
	Kind   sched.Kind `json:"kind"`
	Device int        `json:"device"`
	// Morsels is the number of morsels assigned; Pruned counts those its
	// zone maps skipped, and Rows the fact rows it actually scanned.
	Morsels int   `json:"morsels"`
	Pruned  int   `json:"pruned"`
	Rows    int64 `json:"rows"`
	// Seconds is the executor's simulated time, spill shipment overlap
	// included.
	Seconds float64 `json:"seconds"`
	// ShipBytes is the interconnect traffic the executor's host-resident
	// morsels cost, and ResidentCols the shipments a residency cache
	// elided.
	ShipBytes    int64 `json:"ship_bytes"`
	ResidentCols int   `json:"resident_cols"`
	// Groups is the size of the executor's partial aggregate table.
	Groups int `json:"groups"`
}

// ScheduledResult is the outcome of one scheduled execution: the merged
// result plus the per-executor telemetry and the merge-phase pricing. It
// is the single merge/stats surface behind RunPartitioned, RunFleet and
// RunHybrid.
type ScheduledResult struct {
	// Result is the merged result: Seconds is the schedule makespan (the
	// slowest executor plus the partial-aggregate merge), TransferBytes
	// the total interconnect shipment and ResidentCols the shipments
	// residency caches elided.
	Result *Result
	// Executors has one entry per assignment, idle executors included.
	Executors []ExecutorResult
	// MergeBytes is the partial-aggregate traffic that crossed the
	// interconnect (16 bytes per group per merging executor) and
	// MergeSeconds its transfer time.
	MergeBytes   int64
	MergeSeconds float64
	// Trace is the run's span tree, nil unless the schedule asked for
	// tracing (RunOptions.Trace): a run span with schedule, per-assignment
	// execute (kernel/transfer children) and merge spans whose simulated
	// seconds and byte attributions reproduce this result exactly
	// (trace.Verify holds by construction).
	Trace *trace.Span
}

// restrict narrows the run to the given morsel indices: foreign morsels
// are marked pruned (the engines' launches skip them without touching
// memory), so the restricted run scans exactly the owned live morsels.
// The full index set returns the receiver unchanged, which keeps
// single-executor schedules byte-identical to unscheduled runs.
func (ms *morselRun) restrict(idx []int) *morselRun {
	if len(idx) == len(ms.morsels) {
		return ms
	}
	prunedX := make([]bool, len(ms.morsels))
	for i := range prunedX {
		prunedX[i] = true
	}
	out := &morselRun{
		morsels:   ms.morsels,
		pruned:    prunedX,
		lim:       ms.lim,
		packed:    ms.packed,
		residency: ms.residency,
	}
	for _, mi := range idx {
		if ms.pruned[mi] {
			continue
		}
		prunedX[mi] = false
		out.live = append(out.live, ms.morsels[mi])
		out.scanned += int64(ms.morsels[mi].Rows())
	}
	return out
}

// engineExecutor runs one engine over its assigned morsels. It is the
// executor behind the single-placement schedules (partitioned runs, the
// coprocessor path) and the CPU arm of hybrid schedules.
type engineExecutor struct {
	p  *Plan
	ms *morselRun
	e  Engine
}

func (x engineExecutor) Kind() sched.Kind {
	switch x.e {
	case EngineGPU, EngineOmnisci:
		return sched.KindGPU
	case EngineCoproc:
		return sched.KindCoproc
	}
	return sched.KindCPU
}

func (x engineExecutor) Device() int { return -1 }

func (x engineExecutor) Execute(a sched.Assignment) sched.Partial {
	ms := x.ms.restrict(a.Morsels)
	var res *Result
	switch x.e {
	case EngineGPU:
		res = x.p.runGPU(ms)
	case EngineCPU:
		res = x.p.runCPU(ms)
	case EngineHyper:
		res = x.p.runHyper(ms)
	case EngineMonet:
		res = x.p.runMonet(ms)
	case EngineOmnisci:
		res = x.p.runOmnisci(ms)
	case EngineCoproc:
		res = x.p.runCoprocessor(ms)
	default:
		panic("queries: unknown engine " + string(x.e))
	}
	pruned := 0
	for _, mi := range a.Morsels {
		if x.ms.pruned[mi] {
			pruned++
		}
	}
	// Split the overlapped clock for trace attribution: on-device engines
	// are all kernel; the coprocessor recomputes its transfer term from the
	// same bytes and bandwidth model, so max(kernel, ship) == Seconds
	// exactly.
	kernel, ship := res.Seconds, 0.0
	if x.e == EngineCoproc {
		kernel = res.KernelSeconds
		ship = device.TransferTime(res.TransferBytes)
	}
	return sched.Partial{
		Groups:        res.Groups,
		Accs:          res.accs,
		Seconds:       res.Seconds,
		KernelSeconds: kernel,
		ShipSeconds:   ship,
		Rows:          ms.scanned,
		Pruned:        pruned,
		ShipBytes:     res.TransferBytes,
		ResidentCols:  res.ResidentCols,
	}
}

// gpuDeviceExecutor runs the tile-based GPU kernel on one fleet device
// over its assigned morsels: the launch skips every tile outside the
// assignment (and its zone-pruned morsels), so the device charges exactly
// its own traffic. Spilled morsels are host-resident: their referenced
// columns cross the link, overlapped with execution, with an optional
// per-device residency cache able to elide the shipment on packed runs.
type gpuDeviceExecutor struct {
	p    *Plan
	ms   *morselRun
	dev  *device.Spec
	link fleet.Interconnect
	idx  int
	res  Residency
}

func (x *gpuDeviceExecutor) Kind() sched.Kind { return sched.KindGPU }

func (x *gpuDeviceExecutor) Device() int { return x.idx }

func (x *gpuDeviceExecutor) Execute(a sched.Assignment) sched.Partial {
	ms := x.ms
	refCols := x.p.Query.ReferencedFactColumns()
	spilled := make(map[int]bool, len(a.Spilled))
	for _, mi := range a.Spilled {
		spilled[mi] = true
	}
	// The device's launch skips every tile outside its assignment (and its
	// zone-pruned morsels), so its pass meters exactly the owned traffic.
	prunedD := make([]bool, len(ms.morsels))
	for i := range prunedD {
		prunedD[i] = true
	}
	// Per referenced column, liveSpill is what this query's cold run ships
	// (spilled morsels its zone maps did not prune) and fullSpill the
	// device's whole spilled range — what an admitted residency miss ships
	// and pins, so that a resident column is always fully resident
	// regardless of which query populated it (the same rule the
	// coprocessor's residency cache follows). fullSpill is only consulted
	// through a residency cache, so cacheless runs skip it.
	var part sched.Partial
	var live []ssb.Morsel
	liveSpill := map[string]int64{}
	fullSpill := map[string]int64{}
	for _, mi := range a.Morsels {
		m := ms.morsels[mi]
		if spilled[mi] && x.res != nil {
			for _, c := range refCols {
				fullSpill[c] += ssb.MorselColumnBytes(ms.packed, m, c)
			}
		}
		if ms.pruned[mi] {
			part.Pruned++
			continue // zone maps are host-side: pruned morsels neither scan nor ship
		}
		prunedD[mi] = false
		live = append(live, m)
		part.Rows += int64(m.Rows())
		if spilled[mi] {
			for _, c := range refCols {
				liveSpill[c] += ssb.MorselColumnBytes(ms.packed, m, c)
			}
		}
	}
	msD := &morselRun{
		morsels: ms.morsels,
		pruned:  prunedD,
		live:    live,
		scanned: part.Rows,
		lim:     ms.lim,
		packed:  ms.packed,
	}
	resD := x.p.runGPUOn(x.dev, msD)

	for _, c := range refCols {
		if x.res == nil {
			part.ShipBytes += liveSpill[c]
			continue
		}
		if fullSpill[c] == 0 {
			continue
		}
		switch hit, admitted := x.res.Acquire(c, fullSpill[c]); {
		case hit:
			part.ResidentCols++
		case admitted:
			part.ShipBytes += fullSpill[c] // populate the whole spilled range
		default:
			part.ShipBytes += liveSpill[c] // ordinary cold transfer
		}
	}

	// Spill shipment overlaps with execution, coprocessor style: the
	// slower of the two bounds the device.
	part.Groups = resD.Groups
	part.Accs = resD.accs
	part.KernelSeconds = resD.Seconds
	part.ShipSeconds = x.link.TransferTime(part.ShipBytes)
	part.Seconds = part.KernelSeconds
	if part.ShipSeconds > part.Seconds {
		part.Seconds = part.ShipSeconds
	}
	return part
}

// ScheduleEngine places every morsel on a single engine executor — the
// schedule behind Run and RunPartitioned (the coprocessor path included).
func (p *Plan) ScheduleEngine(e Engine, opts RunOptions) sched.Schedule {
	var t0 time.Time
	if opts.Trace {
		t0 = time.Now()
	}
	ms := p.morselRun(opts)
	all := make([]int, len(ms.morsels))
	for i := range all {
		all[i] = i
	}
	s := sched.Schedule{
		Assignments: []sched.Assignment{{
			Executor: engineExecutor{p: p, ms: ms, e: e},
			Morsels:  all,
		}},
		Morsels: len(ms.morsels),
		Packed:  ms.packed != nil,
	}
	if opts.Trace {
		s.Trace = true
		s.BuildWall = time.Since(t0)
	}
	return s
}

// ScheduleFleet range-shards the morsels over the fleet's devices
// (fleet.Assign, spill accounting against each device's MemoryBytes) —
// the schedule behind RunFleet. Partitions below fl.GPUs are raised to
// fl.GPUs so every device gets a shard where the morsel count allows one.
func (p *Plan) ScheduleFleet(fl fleet.Spec, opts RunOptions) (sched.Schedule, error) {
	fl, err := fl.Normalized()
	if err != nil {
		return sched.Schedule{}, err
	}
	var t0 time.Time
	if opts.Trace {
		t0 = time.Now()
	}
	if opts.Partition.Partitions < fl.GPUs {
		opts.Partition.Partitions = fl.GPUs
	}
	opts.Partition.Residency = nil // single-device coprocessor knob; fleet uses Fleet.Residency
	ms := p.morselRun(opts)

	// A shard's storage footprint is its full fact rows — every column,
	// because the device must serve any query against its shard — in
	// whichever encoding this run scans. The footprint function is shared
	// with planner.FleetCost, so the model can never place shards
	// differently than this executor does.
	shardBytes := func(m ssb.Morsel) int64 { return ssb.MorselStorageBytes(ms.packed, m) }
	shards := fleet.Assign(ms.morsels, fl.GPUs, fl.Device.MemoryBytes, shardBytes)

	s := sched.Schedule{Link: fl.Link, Morsels: len(ms.morsels), Packed: ms.packed != nil}
	for d := range shards {
		sh := &shards[d]
		var res Residency
		if ms.packed != nil && d < len(opts.Fleet.Residency) {
			res = opts.Fleet.Residency[d]
		}
		s.Assignments = append(s.Assignments, sched.Assignment{
			Executor: &gpuDeviceExecutor{p: p, ms: ms, dev: fl.Device, link: fl.Link, idx: d, res: res},
			Morsels:  sh.Morsels,
			Spilled:  sh.Spilled,
			Merge:    true,
		})
	}
	if opts.Trace {
		s.Trace = true
		s.BuildWall = time.Since(t0)
	}
	return s, nil
}

// RunScheduled is the single execution entry point every run path wraps:
// it runs each assignment on its executor, merges the partial aggregates
// key-wise on the host (integer sums — or slot-wise accumulator merges for
// multi-aggregate statements, every operator associative and commutative —
// so rows are identical to a monolithic run at any split), takes the
// makespan over the concurrent executors, and prices the partial-aggregate
// merge of the link-crossing assignments. A query with ORDER BY then runs
// the sort phase on the placement's own hardware (executeSort) and appends
// its priced seconds. RunPartitioned, RunFleet, RunMultiGPU and RunHybrid
// are thin wrappers over this method, so merge, sort, stats and telemetry
// behave identically across every placement.
func (p *Plan) RunScheduled(s sched.Schedule) (*ScheduledResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	q := p.Query
	ast := newAggState(&q)
	out := &ScheduledResult{}
	merged := &Result{QueryID: q.ID, Groups: map[int64]int64{}}
	var accs map[int64][]int64
	if ast != nil {
		accs = map[int64][]int64{}
	}
	// Tracing is opt-in per schedule; the untraced path must not allocate a
	// single span, so every trace touch below is nil-guarded.
	var runSpan *trace.Span
	var runStart time.Time
	if s.Trace {
		runStart = time.Now()
		runSpan = &trace.Span{Phase: trace.PhaseRun, Children: []*trace.Span{
			{Phase: trace.PhaseSchedule, Wall: s.BuildWall},
		}}
	}
	var makespan float64
	pruned := 0
	for i := range s.Assignments {
		a := s.Assignments[i]
		er := ExecutorResult{Kind: a.Executor.Kind(), Device: a.Executor.Device(), Morsels: len(a.Morsels)}
		var span *trace.Span
		if runSpan != nil {
			span = &trace.Span{
				Name:    sched.Label(er.Kind, er.Device),
				Phase:   trace.PhaseExecute,
				Morsels: len(a.Morsels),
			}
			runSpan.Children = append(runSpan.Children, span)
		}
		if len(a.Morsels) > 0 { // empty assignment: idle executor, no launch, no time
			var execStart time.Time
			if span != nil {
				execStart = time.Now()
			}
			part := a.Executor.Execute(a)
			er.Pruned = part.Pruned
			er.Rows = part.Rows
			er.Seconds = part.Seconds
			er.ShipBytes = part.ShipBytes
			er.ResidentCols = part.ResidentCols
			er.Groups = part.GroupCount()
			if part.Accs != nil {
				// Multi-aggregate partial: merge raw accumulator vectors
				// slot-wise. A first-seen key adopts the partial's vector (the
				// executor is done with it); later partials merge in place.
				for k, acc := range part.Accs {
					if dst, ok := accs[k]; ok {
						ast.merge(dst, acc)
					} else {
						accs[k] = acc
					}
				}
			} else {
				for k, v := range part.Groups {
					merged.Groups[k] += v
				}
			}
			if a.Merge {
				out.MergeBytes += int64(part.GroupCount()) * aggRowBytes(&q)
			}
			if part.Seconds > makespan {
				makespan = part.Seconds
			}
			pruned += part.Pruned
			merged.TransferBytes += part.ShipBytes
			merged.ResidentCols += part.ResidentCols
			if span != nil {
				span.Wall = time.Since(execStart)
				span.Sim = part.Seconds
				span.Bytes = part.ShipBytes
				span.Rows = part.Rows
				span.Pruned = part.Pruned
				span.Children = append(span.Children, &trace.Span{
					Phase: trace.PhaseKernel, Sim: part.KernelSeconds,
				})
				if part.ShipBytes > 0 || part.ShipSeconds > 0 {
					span.Children = append(span.Children, &trace.Span{
						Phase: trace.PhaseTransfer, Sim: part.ShipSeconds, Bytes: part.ShipBytes,
					})
				}
			}
		}
		out.Executors = append(out.Executors, er)
	}
	finalizeGroups(&q, ast, accs, merged)
	if ast != nil {
		merged.accs = accs
	}
	if out.MergeBytes > 0 {
		out.MergeSeconds = s.Link.TransferTime(out.MergeBytes)
	}
	merged.Seconds = makespan + out.MergeSeconds
	// The ORDER BY phase runs on the placement's own hardware after the
	// merge; its priced stages extend the run's simulated seconds and, when
	// traced, become the run's sort span (one sort-pass child per stage, the
	// children summing exactly to the span).
	var so *sortOutcome
	if len(q.OrderBy) > 0 {
		var sortStart time.Time
		if runSpan != nil {
			sortStart = time.Now()
		}
		so = p.executeSort(s, resultRows(&q, merged))
		merged.Ordered = so.rows
		merged.Seconds += so.seconds
		if runSpan != nil {
			sp := &trace.Span{Phase: trace.PhaseSort, Sim: so.seconds, Wall: time.Since(sortStart)}
			for _, st := range so.stages {
				sp.Children = append(sp.Children, &trace.Span{
					Name: st.label, Phase: trace.PhaseSortPass, Sim: st.sim, Bytes: st.bytes,
				})
			}
			runSpan.Children = append(runSpan.Children, sp)
		}
	}
	merged.Morsels = s.Morsels
	merged.Pruned = pruned
	merged.Packed = s.Packed
	out.Result = merged
	if runSpan != nil {
		if out.MergeBytes > 0 {
			runSpan.Children = append(runSpan.Children, &trace.Span{
				Phase: trace.PhaseMerge, Sim: out.MergeSeconds, Bytes: out.MergeBytes,
			})
		}
		runSpan.Sim = merged.Seconds
		runSpan.Wall = time.Since(runStart)
		out.Trace = runSpan
	}
	return out, nil
}
