package queries

import (
	"fmt"

	"crystal/internal/device"
	"crystal/internal/ssb"
)

// RunMultiGPU executes the query on numGPUs V100s — the Section 5.5
// "Distributed+Hybrid" extension: the fact table is range-sharded across
// the devices, the (small) dimension hash tables are replicated, each GPU
// runs the tile-based kernel over its shard in parallel, and the partial
// aggregates cross PCIe to be merged on the host.
//
// Simulated time = max over shards (devices run concurrently) + the
// partial-aggregate transfer; dimension builds are replicated and charged
// on every device. SSB aggregates are tiny, so scaling is near linear in
// the number of GPUs until the replicated build and launch overheads
// dominate (see BenchmarkAblation_MultiGPUScaling).
func RunMultiGPU(ds *ssb.Dataset, q Query, numGPUs int) (*Result, error) {
	if numGPUs < 1 {
		return nil, fmt.Errorf("queries: need at least 1 GPU, got %d", numGPUs)
	}
	n := ds.Lineorder.Rows()
	merged := &Result{QueryID: q.ID, Groups: map[int64]int64{}}
	var slowest float64
	chunk := (n + numGPUs - 1) / numGPUs
	shards := 0
	for g := 0; g < numGPUs; g++ {
		lo, hi := g*chunk, (g+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		shards++
		res := RunGPU(ds.SliceFact(lo, hi), q)
		if res.Seconds > slowest {
			slowest = res.Seconds
		}
		for k, v := range res.Groups {
			merged.Groups[k] += v
		}
	}
	if len(q.GroupPayloads()) == 0 {
		// Shards each contribute the global-sum row; collapse is already a
		// sum. (Present even when empty.)
		if _, ok := merged.Groups[0]; !ok {
			merged.Groups[0] = 0
		}
	}
	// Each device ships its partial aggregate table to the host.
	aggBytes := int64(len(merged.Groups)) * 16 * int64(shards)
	merged.Seconds = slowest + device.TransferTime(aggBytes)
	return merged, nil
}
