package queries

import (
	"crystal/internal/fleet"
)

// RunMultiGPU executes the compiled plan on numGPUs V100s hanging off the
// host's PCIe fabric — the Section 5.5 "Distributed+Hybrid" extension. It
// is the historical single-call face of the fleet executor: the fact table
// is range-sharded across the devices as zone-mapped morsels, the (small)
// dimension hash tables are replicated, each GPU runs the tile-based
// kernel over its shard in parallel, and the partial aggregates cross the
// interconnect to be merged on the host.
//
// Callers who want to pick the interconnect, read per-device telemetry, or
// combine the fleet with packed scans and residency caches should use
// Plan.RunFleet directly; this wrapper pins the PCIe default.
func (p *Plan) RunMultiGPU(numGPUs int) (*Result, error) {
	fr, err := p.RunFleet(fleet.Spec{GPUs: numGPUs, Link: fleet.PCIe()}, RunOptions{})
	if err != nil {
		return nil, err
	}
	return fr.Result, nil
}
