package queries

import (
	"sync"
	"sync/atomic"

	"crystal/internal/crystal"
	"crystal/internal/pack"
	"crystal/internal/sim"
	"crystal/internal/ssb"
)

// colReader reads one fact column from either the plain slice or the
// bit-packed frames. Packed runs decode every value they touch through the
// encoding, which is what makes packed results row-identical to plain ones
// by construction rather than by coincidence.
type colReader struct {
	plain  []int32
	packed *pack.Frames
}

// at returns the row-th value of the column.
func (c colReader) at(row int) int32 {
	if c.packed != nil {
		return c.packed.Get(row)
	}
	return c.plain[row]
}

// dimFill sizes dimension hash tables like the paper's (Section 5.3:
// "the size of the part hash table (with perfect hashing) is 2x4x1M =
// 8MB"): capacity is the next power of two above the full dimension
// cardinality, independent of how many rows survive the dimension filters.
const dimFill = 0.99

// buildInfo is one constructed join hash table plus the traffic its build
// phase generated (charged differently per engine).
type buildInfo struct {
	spec     JoinSpec
	ht       *crystal.HashTable
	dimRows  int64
	inserted int64
	// bytesRead is the dimension column bytes the build scanned.
	bytesRead int64
}

// buildTables constructs the join hash tables for a query: each table maps
// the dimension key to the group-by payload (or is key-only for pure
// semijoin filters), and only rows passing the dimension filters are
// inserted — probing misses are how filtered dimensions drop fact rows.
func buildTables(ds *ssb.Dataset, q Query) []buildInfo {
	builds := make([]buildInfo, len(q.Joins))
	for ji, j := range q.Joins {
		d := DimTable(ds, j.Dim)
		ht := crystal.NewHashTable(d.Rows(), dimFill, j.Payload != "")
		filterCols := make([][]int32, len(j.Filters))
		for fi := range j.Filters {
			filterCols[fi] = d.Col(j.Filters[fi].Col)
		}
		var payload []int32
		if j.Payload != "" {
			payload = d.Col(j.Payload)
		}
		inserted := int64(0)
	rows:
		for i := 0; i < d.Rows(); i++ {
			for fi := range j.Filters {
				if !j.Filters[fi].Match(filterCols[fi][i]) {
					continue rows
				}
			}
			v := int32(0)
			if payload != nil {
				v = payload[i]
			}
			ht.Insert(d.Key[i], v)
			inserted++
		}
		builds[ji] = buildInfo{
			spec:      j,
			ht:        ht,
			dimRows:   int64(d.Rows()),
			inserted:  inserted,
			bytesRead: int64(d.Rows()) * int64(1+len(j.Filters)+btoi(j.Payload != "")) * 4,
		}
	}
	return builds
}

// btoi converts a bool to 0/1.
func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// pipeStats records the exact memory-access statistics of one pipelined
// pass over the fact table, from which each engine derives its traffic.
type pipeStats struct {
	// rows is the number of fact rows actually scanned (zone-pruned morsels
	// are excluded); totalRows is the full fact cardinality, which sizes
	// column footprints for random gathers regardless of pruning.
	rows      int64
	totalRows int64
	// colOrder is the sequence of fact columns the pass touches.
	colOrder []string
	// lines64 and lines128 count, per fact column, the distinct 64 B and
	// 128 B lines containing at least one row alive when the column was
	// read — the exact form of the min(4|L|/C, |L|sigma) term in the
	// Section 5.3 model. Morsel and chunk boundaries are line-aligned
	// (ssb.MorselAlign is a multiple of both line sizes), so per-chunk
	// counts sum to the exact distinct-line total no matter how the scan is
	// partitioned — which is what keeps simulated seconds identical across
	// partition counts.
	lines64  map[string]int64
	lines128 map[string]int64
	// packed reports whether the scan read the bit-packed fact encoding.
	// lines64/lines128 then count lines of the packed layout (frames are
	// line-aligned, so the counts stay exactly additive across partitions),
	// and scanBytes/footBytes hold per fact column the packed bytes of the
	// surviving morsels' frames and the full column's packed footprint.
	packed    bool
	scanBytes map[string]int64
	footBytes map[string]int64
	// evals[i] is the number of rows evaluated by fact filter i.
	evals []int64
	// probes[j] is the number of probes into join j's hash table.
	probes []int64
	// alive[k] is the number of rows alive after stage k (fact filters
	// first, then joins).
	alive []int64
	// out is the number of rows reaching the aggregate.
	out int64
}

// colScanBytes returns the streaming bytes of one full-column operator scan
// over the surviving morsels (the materializing engines' per-operator read).
func (st *pipeStats) colScanBytes(col string) int64 {
	if st.packed {
		return st.scanBytes[col]
	}
	return st.rows * 4
}

// colFootprint returns the resident footprint data-dependent gathers into
// the column address — the packed footprint shrinks it, improving cache
// residency exactly as smaller hash tables do.
func (st *pipeStats) colFootprint(col string) int64 {
	if st.packed {
		return st.footBytes[col]
	}
	return st.totalRows * 4
}

// decoded returns the number of values the pipeline decoded from packed
// frames: every filter evaluation, probed foreign key and aggregate input
// reads one. CPU devices charge pack.UnpackCyclesPerElem of register
// arithmetic per decode; GPUs absorb it (the Section 5.5 asymmetry).
func (st *pipeStats) decoded(q Query) int64 {
	var n int64
	for _, e := range st.evals {
		n += e
	}
	for _, p := range st.probes {
		n += p
	}
	return n + st.out*int64(len(q.AggColumns()))
}

// aggEstimate caps the aggregation-table sizing.
func aggEstimate(q Query) int {
	est := 1
	for _, j := range q.GroupPayloads() {
		switch j.Payload {
		case "year":
			est *= 7
		case "nation":
			est *= 25
		case "city":
			est *= 250
		case "brand1":
			est *= 1000
		case "category":
			est *= 25
		default:
			est *= 64
		}
		if est > 1<<20 {
			return 1 << 20
		}
	}
	return est
}

// chunkRows is the unit of wall-clock parallelism inside a morsel scan: 16
// tiles. Any tile-aligned chunking yields identical merged statistics (see
// pipeStats), so the chunk size is purely a scheduling knob.
const chunkRows = 16 * ssb.MorselAlign

// scanChunk is one contiguous, tile-aligned unit of scan work.
type scanChunk struct{ lo, hi int }

// chunkMorsels splits the surviving morsels into tile-aligned chunks.
// Morsel boundaries are themselves tile-aligned, so every chunk starts on a
// tile boundary and never spans two morsels.
func chunkMorsels(live []ssb.Morsel) []scanChunk {
	var chunks []scanChunk
	for _, m := range live {
		for lo := m.Lo; lo < m.Hi; lo += chunkRows {
			hi := lo + chunkRows
			if hi > m.Hi {
				hi = m.Hi
			}
			chunks = append(chunks, scanChunk{lo: lo, hi: hi})
		}
	}
	return chunks
}

// wstat is one worker's private accumulator for a morsel scan.
type wstat struct {
	lines64, lines128 map[string]int64
	evals, probes     []int64
	alive             []int64
	out               int64
	groups            map[int64]int64
	accs              map[int64][]int64
}

// runPipeline executes the query's probe pipeline over the full fact table
// as a single unmapped morsel — the monolithic path every engine's plain
// Run* method uses.
func runPipeline(ds *ssb.Dataset, q Query, builds []buildInfo) (*Result, *pipeStats) {
	all := []ssb.Morsel{{Lo: 0, Hi: ds.Lineorder.Rows()}}
	ms := &morselRun{morsels: all, pruned: []bool{false}, live: all, scanned: int64(ds.Lineorder.Rows())}
	return runPipelineMorsels(ds, q, builds, ms)
}

// runPipelineMorsels executes the query's probe pipeline functionally over
// the surviving morsels: fact filters in order, then the join probes, then
// the grouped aggregate, short-circuiting per row exactly like the
// generated kernels. Chunks of morsels are scanned in parallel — the
// calling goroutine always works, helpers are bounded by lim — and the
// per-chunk statistics merge exactly (tile alignment) into the returned
// access statistics.
func runPipelineMorsels(ds *ssb.Dataset, q Query, builds []buildInfo, ms *morselRun) (*Result, *pipeStats) {
	live, lim := ms.live, ms.lim
	st := &pipeStats{
		totalRows: int64(ds.Lineorder.Rows()),
		packed:    ms.packed != nil,
		lines64:   map[string]int64{},
		lines128:  map[string]int64{},
		evals:     make([]int64, len(q.FactFilters)),
		probes:    make([]int64, len(q.Joins)),
		alive:     make([]int64, len(q.FactFilters)+len(q.Joins)),
	}
	for _, m := range live {
		st.rows += int64(m.Rows())
	}

	filterCols := make([]colReader, len(q.FactFilters))
	for i := range q.FactFilters {
		filterCols[i] = ms.factReader(&ds.Lineorder, q.FactFilters[i].Col)
		st.colOrder = append(st.colOrder, q.FactFilters[i].Col)
	}
	fkCols := make([]colReader, len(q.Joins))
	for i := range q.Joins {
		fkCols[i] = ms.factReader(&ds.Lineorder, q.Joins[i].FactFK)
		st.colOrder = append(st.colOrder, q.Joins[i].FactFK)
	}
	ast := newAggState(&q)
	aggCols := q.AggColumns()
	aggSlices := make([]colReader, len(aggCols))
	for i, c := range aggCols {
		aggSlices[i] = ms.factReader(&ds.Lineorder, c)
		st.colOrder = append(st.colOrder, c)
	}
	numPayloads := len(q.GroupPayloads())

	if st.packed {
		// Per-column packed extents: scan bytes over the surviving morsels
		// (exactly additive — morsels cover whole frames) and the full
		// column footprint gathers address. Host-side metadata, no device
		// time.
		st.scanBytes = map[string]int64{}
		st.footBytes = map[string]int64{}
		for _, col := range st.colOrder {
			if _, ok := st.footBytes[col]; ok {
				continue
			}
			fr := ms.packed.Col(col)
			st.footBytes[col] = fr.Bytes()
			var b int64
			for _, m := range live {
				b += fr.BytesRange(m.Lo, m.Hi)
			}
			st.scanBytes[col] = b
		}
	}

	res := &Result{QueryID: q.ID, Groups: map[int64]int64{}}
	if ast != nil {
		res.accs = map[int64][]int64{}
	}
	chunks := chunkMorsels(live)
	if len(chunks) > 0 {
		var next int64
		var mu sync.Mutex
		worker := func() {
			ws := wstat{
				lines64:  map[string]int64{},
				lines128: map[string]int64{},
				evals:    make([]int64, len(q.FactFilters)),
				probes:   make([]int64, len(q.Joins)),
				alive:    make([]int64, len(st.alive)),
				groups:   map[int64]int64{},
			}
			if ast != nil {
				ws.accs = map[int64][]int64{}
			}
			last64 := map[string]int64{}
			last128 := map[string]int64{}
			// touch takes the column's resolved reader alongside its name so
			// the packed branch never re-resolves frames inside the row loop.
			touch := func(col string, cr colReader, row int) {
				if cr.packed != nil {
					// Packed lines hold 32/width times more rows than plain
					// ones; width-0 frames occupy no storage and touch none.
					fr := cr.packed
					if l := fr.LineOf(row, 64); l >= 0 && last64[col] != l+1 {
						last64[col] = l + 1
						ws.lines64[col]++
					}
					if l := fr.LineOf(row, 128); l >= 0 && last128[col] != l+1 {
						last128[col] = l + 1
						ws.lines128[col]++
					}
					return
				}
				if l := int64(row >> 4); last64[col] != l+1 {
					last64[col] = l + 1
					ws.lines64[col]++
				}
				if l := int64(row >> 5); last128[col] != l+1 {
					last128[col] = l + 1
					ws.lines128[col]++
				}
			}
			payloads := make([]int32, 0, numPayloads)
			vals := make([]int32, len(aggCols))
			for {
				ci := int(atomic.AddInt64(&next, 1) - 1)
				if ci >= len(chunks) {
					break
				}
			rows:
				for row := chunks[ci].lo; row < chunks[ci].hi; row++ {
					for i := range q.FactFilters {
						ws.evals[i]++
						touch(q.FactFilters[i].Col, filterCols[i], row)
						if !q.FactFilters[i].Match(filterCols[i].at(row)) {
							continue rows
						}
						ws.alive[i]++
					}
					payloads = payloads[:0]
					for ji := range q.Joins {
						ws.probes[ji]++
						touch(q.Joins[ji].FactFK, fkCols[ji], row)
						v, ok := builds[ji].ht.Get(fkCols[ji].at(row))
						if !ok {
							continue rows
						}
						ws.alive[len(q.FactFilters)+ji]++
						if q.Joins[ji].Payload != "" {
							payloads = append(payloads, v)
						}
					}
					for i := range vals {
						touch(aggCols[i], aggSlices[i], row)
						vals[i] = aggSlices[i].at(row)
					}
					ws.out++
					key := PackGroup(payloads)
					if ast != nil {
						acc, ok := ws.accs[key]
						if !ok {
							acc = ast.identity()
							ws.accs[key] = acc
						}
						ast.update(acc, vals)
					} else {
						ws.groups[key] += q.Agg.Eval(vals)
					}
				}
			}
			mu.Lock()
			defer mu.Unlock()
			for c, v := range ws.lines64 {
				st.lines64[c] += v
			}
			for c, v := range ws.lines128 {
				st.lines128[c] += v
			}
			for i, v := range ws.evals {
				st.evals[i] += v
			}
			for i, v := range ws.probes {
				st.probes[i] += v
			}
			for i, v := range ws.alive {
				st.alive[i] += v
			}
			st.out += ws.out
			for k, v := range ws.groups {
				res.Groups[k] += v
			}
			for k, acc := range ws.accs {
				dst, ok := res.accs[k]
				if !ok {
					res.accs[k] = acc
					continue
				}
				ast.merge(dst, acc)
			}
		}

		sim.RunWithHelpers(len(chunks), lim, worker)
	}

	// Multi-aggregate partials stay raw (res.accs); the scheduler's merge
	// finalizes and backfills. Legacy global aggregates backfill here so the
	// monolithic path keeps returning one row.
	if ast == nil && len(q.GroupPayloads()) == 0 && len(res.Groups) == 0 {
		res.Groups[0] = 0 // a global aggregate always yields one row
	}
	return res, st
}
