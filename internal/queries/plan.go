// Package queries implements the 13 Star Schema Benchmark queries for every
// engine the paper evaluates (Section 5): the tile-based Crystal engine on
// the GPU ("Standalone GPU"), an equivalent vectorized CPU engine
// ("Standalone CPU"), the GPU-as-coprocessor architecture of Section 3.1,
// and architecture stand-ins for the three third-party systems — Hyper
// (compiled push-based, scalar), MonetDB (operator-at-a-time with full
// materialization) and Omnisci (GPU, independent-threads kernels).
//
// All engines execute the same logical plans on the same generated data and
// must return identical result rows; their simulated runtimes differ only
// through the memory traffic their physical execution styles generate.
package queries

import (
	"fmt"
	"sort"

	"crystal/internal/ssb"
)

// Filter is a predicate on a single column: either an inclusive range
// [Lo, Hi] or, when In is non-nil, a small membership set.
type Filter struct {
	Col string
	Lo  int32
	Hi  int32
	In  []int32
}

// Match reports whether v satisfies the filter.
func (f *Filter) Match(v int32) bool {
	if f.In != nil {
		for _, x := range f.In {
			if v == x {
				return true
			}
		}
		return false
	}
	return f.Lo <= v && v <= f.Hi
}

// JoinSpec is one dimension join in plan order: the fact foreign key probes
// a hash table built over the dimension rows that satisfy Filters. Payload
// names the dimension attribute carried out for grouping ("" for pure
// semijoin filters).
type JoinSpec struct {
	Dim     string
	FactFK  string
	Filters []Filter
	Payload string
}

// AggKind selects the aggregate expression.
type AggKind int

const (
	// AggSumRevenue computes SUM(lo_revenue).
	AggSumRevenue AggKind = iota
	// AggSumExtDisc computes SUM(lo_extendedprice * lo_discount) (q1.x).
	AggSumExtDisc
	// AggSumProfit computes SUM(lo_revenue - lo_supplycost) (q4.x).
	AggSumProfit
)

// Columns returns the fact columns the aggregate reads.
func (a AggKind) Columns() []string {
	switch a {
	case AggSumExtDisc:
		return []string{"extprice", "discount"}
	case AggSumProfit:
		return []string{"revenue", "supplycost"}
	default:
		return []string{"revenue"}
	}
}

// Eval computes the aggregate delta for one row given the column values in
// the order returned by Columns.
func (a AggKind) Eval(v []int32) int64 {
	switch a {
	case AggSumExtDisc:
		return int64(v[0]) * int64(v[1])
	case AggSumProfit:
		return int64(v[0]) - int64(v[1])
	default:
		return int64(v[0])
	}
}

// Query is one SSB query: selections on the fact table, a pipeline of
// dimension joins (in plan order), and a grouped aggregate. Group keys are
// the Payload attributes of the joins that declare one, in join order.
//
// Agg is the single-SUM aggregate every engine has executed since the seed;
// Aggs, when non-nil, replaces it with an ordered list of aggregate
// functions (COUNT/AVG/MIN/MAX alongside SUM) evaluated in one pass.
// OrderBy/Limit request an ordered (optionally truncated) result; see
// OrderKey.
type Query struct {
	ID          string
	FactFilters []Filter
	Joins       []JoinSpec
	Agg         AggKind
	Aggs        []AggSpec
	OrderBy     []OrderKey
	Limit       int
}

// ReferencedFactColumns returns the distinct fact columns the query reads
// (filter columns, probed foreign keys, aggregate inputs), sorted so that
// transfer pricing and residency caches see a deterministic order. It is
// the column working set a coprocessor or a fleet spill must move.
func (q *Query) ReferencedFactColumns() []string {
	seen := map[string]bool{}
	var cols []string
	add := func(c string) {
		if !seen[c] {
			seen[c] = true
			cols = append(cols, c)
		}
	}
	for _, f := range q.FactFilters {
		add(f.Col)
	}
	for _, j := range q.Joins {
		add(j.FactFK)
	}
	for _, c := range q.AggColumns() {
		add(c)
	}
	sort.Strings(cols)
	return cols
}

// GroupEstimate returns the capped estimate of the number of result groups
// the engines size their aggregation tables with; schedulers use it to
// price cross-device partial-aggregate merges.
func (q *Query) GroupEstimate() int { return aggEstimate(*q) }

// GroupPayloads returns the joins that contribute a group-by key.
func (q *Query) GroupPayloads() []JoinSpec {
	var out []JoinSpec
	for _, j := range q.Joins {
		if j.Payload != "" {
			out = append(out, j)
		}
	}
	return out
}

// groupShift is the per-payload width in the packed group key; every SSB
// group attribute (year, brand, nation, city, category) fits in 20 bits.
const groupShift = 20

// PackGroup packs payload values (join order) into one int64 key.
func PackGroup(vals []int32) int64 {
	var key int64
	for _, v := range vals {
		key = key<<groupShift | int64(v)
	}
	return key
}

// UnpackGroup splits a packed key back into n payload values.
func UnpackGroup(key int64, n int) []int32 {
	out := make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = int32(key & (1<<groupShift - 1))
		key >>= groupShift
	}
	return out
}

// Row is one finalized output row: the packed group key plus the value of
// every aggregate of the statement, in statement order.
type Row struct {
	Key  int64
	Vals []int64
}

// Result is a query result: packed group key -> aggregate sum. Queries with
// no group-by use the single key 0.
type Result struct {
	QueryID string
	Groups  map[int64]int64
	// Aggs holds the finalized value of every aggregate per group for
	// multi-aggregate statements (nil for single-SUM queries, whose only
	// aggregate is Groups). Groups always carries the first aggregate, so
	// legacy consumers keep working.
	Aggs map[int64][]int64
	// Ordered is the ORDER BY output: finalized rows in statement order,
	// truncated to LIMIT. Nil when the query has no ORDER BY.
	Ordered []Row
	// Seconds is the engine's simulated execution time.
	Seconds float64
	// KernelSeconds is the pure execution component of Seconds for runs
	// whose transfer overlaps execution (the coprocessor): Seconds is
	// max(KernelSeconds, transfer time). On-device engines leave it zero —
	// their Seconds is all kernel. Like Morsels/Pruned it describes
	// execution, not rows: Equal ignores it.
	KernelSeconds float64
	// Morsels is the number of fact-table partitions the run was split into
	// (1 for a monolithic run); Pruned counts the morsels zone maps skipped.
	// Both describe execution, not the rows, so Equal ignores them.
	Morsels int
	Pruned  int
	// Packed reports whether the run scanned the bit-packed fact encoding.
	// TransferBytes is the PCIe traffic a coprocessor run actually shipped
	// (0 for on-device engines) and ResidentCols the referenced fact
	// columns a device-residency cache served without any transfer. Like
	// Morsels/Pruned they describe execution, not rows: Equal ignores them.
	Packed        bool
	TransferBytes int64
	ResidentCols  int

	// accs carries raw (unfinalized) accumulator vectors from a partial
	// multi-aggregate execution to the scheduler's merge; RunScheduled
	// consumes it and never sets it on results handed to callers.
	accs map[int64][]int64
}

// Rows returns the result rows for comparison and display: in statement
// order for ORDER BY results, otherwise sorted by group key. Only the first
// aggregate is projected; see Ordered/Aggs for the full vectors.
func (r *Result) Rows() [][2]int64 {
	if r.Ordered != nil {
		rows := make([][2]int64, len(r.Ordered))
		for i, row := range r.Ordered {
			rows[i] = [2]int64{row.Key, row.Vals[0]}
		}
		return rows
	}
	rows := make([][2]int64, 0, len(r.Groups))
	for k, v := range r.Groups {
		rows = append(rows, [2]int64{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
	return rows
}

// Equal reports whether two results contain identical rows — including every
// aggregate value and, for ORDER BY results, the output order.
func (r *Result) Equal(o *Result) bool {
	if (r.Ordered == nil) != (o.Ordered == nil) || len(r.Ordered) != len(o.Ordered) {
		return false
	}
	for i, a := range r.Ordered {
		b := o.Ordered[i]
		if a.Key != b.Key || len(a.Vals) != len(b.Vals) {
			return false
		}
		for s, v := range a.Vals {
			if b.Vals[s] != v {
				return false
			}
		}
	}
	if (r.Aggs == nil) != (o.Aggs == nil) || len(r.Aggs) != len(o.Aggs) {
		return false
	}
	for k, av := range r.Aggs {
		bv, ok := o.Aggs[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for s, v := range av {
			if bv[s] != v {
				return false
			}
		}
	}
	if len(r.Groups) != len(o.Groups) {
		return false
	}
	for k, v := range r.Groups {
		if o.Groups[k] != v {
			return false
		}
	}
	return true
}

// Milliseconds returns the simulated runtime in ms.
func (r *Result) Milliseconds() float64 { return r.Seconds * 1e3 }

// Clone returns a deep copy; mutating the copy's Groups cannot affect the
// original (used by caches that hand results to untrusted callers).
func (r *Result) Clone() *Result {
	out := &Result{
		QueryID:       r.QueryID,
		Seconds:       r.Seconds,
		KernelSeconds: r.KernelSeconds,
		Morsels:       r.Morsels,
		Pruned:        r.Pruned,
		Packed:        r.Packed,
		TransferBytes: r.TransferBytes,
		ResidentCols:  r.ResidentCols,
		Groups:        make(map[int64]int64, len(r.Groups)),
	}
	for k, v := range r.Groups {
		out.Groups[k] = v
	}
	if r.Aggs != nil {
		out.Aggs = make(map[int64][]int64, len(r.Aggs))
		for k, v := range r.Aggs {
			out.Aggs[k] = append([]int64(nil), v...)
		}
	}
	if r.Ordered != nil {
		out.Ordered = make([]Row, len(r.Ordered))
		for i, row := range r.Ordered {
			out.Ordered[i] = Row{Key: row.Key, Vals: append([]int64(nil), row.Vals...)}
		}
	}
	return out
}

// FactCol resolves a fact column by name (ssb.Lineorder.Col re-exported at
// the query layer; unknown names panic there).
func FactCol(l *ssb.Lineorder, name string) []int32 { return l.Col(name) }

// DimTable resolves a dimension by name.
func DimTable(ds *ssb.Dataset, name string) *ssb.Dim {
	switch name {
	case "date":
		return &ds.Date
	case "customer":
		return &ds.Customer
	case "supplier":
		return &ds.Supplier
	case "part":
		return &ds.Part
	}
	panic(fmt.Sprintf("queries: unknown dimension %q", name))
}

// All returns the 13 SSB queries (Section 5.1) with the paper's rewrite:
// dictionary-encoded literals and, for flight q1.x, date predicates pushed
// onto lo_orderdate directly. Join order follows Section 5.3 (most
// selective dimension first; q2.x joins supplier, then part, then date).
func All() []Query {
	uki1, uki5 := ssb.CityCode("UNITED KI1"), ssb.CityCode("UNITED KI5")
	us := int32(9) // UNITED STATES nation code
	return []Query{
		{
			ID: "q1.1",
			FactFilters: []Filter{
				{Col: "orderdate", Lo: 19930101, Hi: 19931231},
				{Col: "discount", Lo: 1, Hi: 3},
				{Col: "quantity", Lo: 1, Hi: 24},
			},
			Agg: AggSumExtDisc,
		},
		{
			ID: "q1.2",
			FactFilters: []Filter{
				{Col: "orderdate", Lo: 19940101, Hi: 19940131},
				{Col: "discount", Lo: 4, Hi: 6},
				{Col: "quantity", Lo: 26, Hi: 35},
			},
			Agg: AggSumExtDisc,
		},
		{
			ID: "q1.3",
			// d_weeknuminyear = 6 AND d_year = 1994: days 36..42 of 1994.
			FactFilters: []Filter{
				{Col: "orderdate", Lo: 19940205, Hi: 19940211},
				{Col: "discount", Lo: 5, Hi: 7},
				{Col: "quantity", Lo: 26, Hi: 35},
			},
			Agg: AggSumExtDisc,
		},
		{
			ID: "q2.1",
			Joins: []JoinSpec{
				{Dim: "supplier", FactFK: "suppkey", Filters: []Filter{{Col: "region", Lo: ssb.America, Hi: ssb.America}}},
				{Dim: "part", FactFK: "partkey", Filters: []Filter{{Col: "category", Lo: ssb.CategoryCode("MFGR#12"), Hi: ssb.CategoryCode("MFGR#12")}}, Payload: "brand1"},
				{Dim: "date", FactFK: "orderdate", Payload: "year"},
			},
			Agg: AggSumRevenue,
		},
		{
			ID: "q2.2",
			Joins: []JoinSpec{
				{Dim: "supplier", FactFK: "suppkey", Filters: []Filter{{Col: "region", Lo: ssb.Asia, Hi: ssb.Asia}}},
				{Dim: "part", FactFK: "partkey", Filters: []Filter{{Col: "brand1", Lo: ssb.BrandCode("MFGR#2221"), Hi: ssb.BrandCode("MFGR#2228")}}, Payload: "brand1"},
				{Dim: "date", FactFK: "orderdate", Payload: "year"},
			},
			Agg: AggSumRevenue,
		},
		{
			ID: "q2.3",
			Joins: []JoinSpec{
				{Dim: "supplier", FactFK: "suppkey", Filters: []Filter{{Col: "region", Lo: ssb.Europe, Hi: ssb.Europe}}},
				{Dim: "part", FactFK: "partkey", Filters: []Filter{{Col: "brand1", Lo: ssb.BrandCode("MFGR#2239"), Hi: ssb.BrandCode("MFGR#2239")}}, Payload: "brand1"},
				{Dim: "date", FactFK: "orderdate", Payload: "year"},
			},
			Agg: AggSumRevenue,
		},
		{
			ID: "q3.1",
			Joins: []JoinSpec{
				{Dim: "customer", FactFK: "custkey", Filters: []Filter{{Col: "region", Lo: ssb.Asia, Hi: ssb.Asia}}, Payload: "nation"},
				{Dim: "supplier", FactFK: "suppkey", Filters: []Filter{{Col: "region", Lo: ssb.Asia, Hi: ssb.Asia}}, Payload: "nation"},
				{Dim: "date", FactFK: "orderdate", Filters: []Filter{{Col: "year", Lo: 1992, Hi: 1997}}, Payload: "year"},
			},
			Agg: AggSumRevenue,
		},
		{
			ID: "q3.2",
			Joins: []JoinSpec{
				{Dim: "customer", FactFK: "custkey", Filters: []Filter{{Col: "nation", Lo: us, Hi: us}}, Payload: "city"},
				{Dim: "supplier", FactFK: "suppkey", Filters: []Filter{{Col: "nation", Lo: us, Hi: us}}, Payload: "city"},
				{Dim: "date", FactFK: "orderdate", Filters: []Filter{{Col: "year", Lo: 1992, Hi: 1997}}, Payload: "year"},
			},
			Agg: AggSumRevenue,
		},
		{
			ID: "q3.3",
			Joins: []JoinSpec{
				{Dim: "customer", FactFK: "custkey", Filters: []Filter{{Col: "city", In: []int32{uki1, uki5}}}, Payload: "city"},
				{Dim: "supplier", FactFK: "suppkey", Filters: []Filter{{Col: "city", In: []int32{uki1, uki5}}}, Payload: "city"},
				{Dim: "date", FactFK: "orderdate", Filters: []Filter{{Col: "year", Lo: 1992, Hi: 1997}}, Payload: "year"},
			},
			Agg: AggSumRevenue,
		},
		{
			ID: "q3.4",
			Joins: []JoinSpec{
				{Dim: "customer", FactFK: "custkey", Filters: []Filter{{Col: "city", In: []int32{uki1, uki5}}}, Payload: "city"},
				{Dim: "supplier", FactFK: "suppkey", Filters: []Filter{{Col: "city", In: []int32{uki1, uki5}}}, Payload: "city"},
				{Dim: "date", FactFK: "orderdate", Filters: []Filter{{Col: "yearmonthnum", Lo: 199712, Hi: 199712}}, Payload: "year"},
			},
			Agg: AggSumRevenue,
		},
		{
			ID: "q4.1",
			Joins: []JoinSpec{
				{Dim: "supplier", FactFK: "suppkey", Filters: []Filter{{Col: "region", Lo: ssb.America, Hi: ssb.America}}},
				{Dim: "customer", FactFK: "custkey", Filters: []Filter{{Col: "region", Lo: ssb.America, Hi: ssb.America}}, Payload: "nation"},
				{Dim: "part", FactFK: "partkey", Filters: []Filter{{Col: "mfgr", Lo: 0, Hi: 1}}},
				{Dim: "date", FactFK: "orderdate", Payload: "year"},
			},
			Agg: AggSumProfit,
		},
		{
			ID: "q4.2",
			Joins: []JoinSpec{
				{Dim: "supplier", FactFK: "suppkey", Filters: []Filter{{Col: "region", Lo: ssb.America, Hi: ssb.America}}, Payload: "nation"},
				{Dim: "customer", FactFK: "custkey", Filters: []Filter{{Col: "region", Lo: ssb.America, Hi: ssb.America}}},
				{Dim: "part", FactFK: "partkey", Filters: []Filter{{Col: "mfgr", Lo: 0, Hi: 1}}, Payload: "category"},
				{Dim: "date", FactFK: "orderdate", Filters: []Filter{{Col: "year", Lo: 1997, Hi: 1998}}, Payload: "year"},
			},
			Agg: AggSumProfit,
		},
		{
			ID: "q4.3",
			Joins: []JoinSpec{
				{Dim: "supplier", FactFK: "suppkey", Filters: []Filter{{Col: "nation", Lo: us, Hi: us}}, Payload: "city"},
				{Dim: "customer", FactFK: "custkey", Filters: []Filter{{Col: "region", Lo: ssb.America, Hi: ssb.America}}},
				{Dim: "part", FactFK: "partkey", Filters: []Filter{{Col: "category", Lo: ssb.CategoryCode("MFGR#14"), Hi: ssb.CategoryCode("MFGR#14")}}, Payload: "brand1"},
				{Dim: "date", FactFK: "orderdate", Filters: []Filter{{Col: "year", Lo: 1997, Hi: 1998}}, Payload: "year"},
			},
			Agg: AggSumProfit,
		},
	}
}

// ByID returns the query with the given id.
func ByID(id string) (Query, error) {
	for _, q := range All() {
		if q.ID == id {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("queries: unknown query %q", id)
}

// Reference executes the query row-at-a-time with plain Go maps; it is the
// correctness oracle every engine is validated against.
func Reference(ds *ssb.Dataset, q Query) *Result {
	// Dimension key -> row index maps.
	dimIdx := map[string]map[int32]int{}
	for _, j := range q.Joins {
		if dimIdx[j.Dim] == nil {
			d := DimTable(ds, j.Dim)
			m := make(map[int32]int, d.Rows())
			for i, k := range d.Key {
				m[k] = i
			}
			dimIdx[j.Dim] = m
		}
	}
	st := newAggState(&q)
	aggCols := q.AggColumns()
	aggSlices := make([][]int32, len(aggCols))
	for i, c := range aggCols {
		aggSlices[i] = FactCol(&ds.Lineorder, c)
	}
	filterSlices := make([][]int32, len(q.FactFilters))
	for i, f := range q.FactFilters {
		filterSlices[i] = FactCol(&ds.Lineorder, f.Col)
	}
	fkSlices := make([][]int32, len(q.Joins))
	for i, j := range q.Joins {
		fkSlices[i] = FactCol(&ds.Lineorder, j.FactFK)
	}

	groups := map[int64]int64{}
	var accs map[int64][]int64
	if st != nil {
		accs = map[int64][]int64{}
	}
	vals := make([]int32, len(aggCols))
	var payloads []int32
rows:
	for row := 0; row < ds.Lineorder.Rows(); row++ {
		for i := range q.FactFilters {
			if !q.FactFilters[i].Match(filterSlices[i][row]) {
				continue rows
			}
		}
		payloads = payloads[:0]
		for ji := range q.Joins {
			j := &q.Joins[ji]
			d := DimTable(ds, j.Dim)
			di, ok := dimIdx[j.Dim][fkSlices[ji][row]]
			if !ok {
				continue rows
			}
			for fi := range j.Filters {
				if !j.Filters[fi].Match(d.Col(j.Filters[fi].Col)[di]) {
					continue rows
				}
			}
			if j.Payload != "" {
				payloads = append(payloads, d.Col(j.Payload)[di])
			}
		}
		for i := range vals {
			vals[i] = aggSlices[i][row]
		}
		key := PackGroup(payloads)
		if st != nil {
			acc, ok := accs[key]
			if !ok {
				acc = st.identity()
				accs[key] = acc
			}
			st.update(acc, vals)
		} else {
			groups[key] += q.Agg.Eval(vals)
		}
	}
	res := &Result{QueryID: q.ID, Groups: groups}
	finalizeGroups(&q, st, accs, res)
	// The oracle orders with the plain sort.Slice comparator; engines order
	// with the real heap/merge/radix implementations, so the differential
	// harness compares independent orderings.
	if len(q.OrderBy) > 0 {
		res.Ordered = truncateRows(&q, orderRowsOracle(&q, resultRows(&q, res)))
	}
	return res
}
