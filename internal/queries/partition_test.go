package queries

import (
	"fmt"
	"math/rand"
	"testing"

	"crystal/internal/queries/queriestest"
	"crystal/internal/ssb"
)

// partitionCounts is the invariance matrix from the issue: counts that
// divide the fact table evenly and counts that do not.
var partitionCounts = []int{1, 2, 7, 16, 64}

// TestPartitionInvarianceCatalog is the core guarantee of partitioned
// execution: for every catalog query, every engine, and every partition
// count, the partitioned run returns rows AND simulated seconds identical
// to the monolithic run. On the uniformly generated dataset every morsel's
// zone spans the filters' ranges, so nothing prunes and the tile-aligned
// statistics merge makes the cost math exact — not approximately equal,
// float-for-float equal.
func TestPartitionInvarianceCatalog(t *testing.T) {
	for _, q := range All() {
		plan := Compile(testDS, q)
		for _, e := range Engines() {
			base := plan.Run(e)
			for _, n := range partitionCounts {
				res := plan.RunPartitioned(e, RunOptions{Partition: PartitionOptions{Partitions: n}})
				queriestest.SameRun(t, fmt.Sprintf("%s/%s at %d partitions", e, q.ID, n), res, base)
				if res.Pruned != 0 {
					t.Errorf("%s/%s: pruned %d morsels on uniform data", e, q.ID, res.Pruned)
				}
				if res.Morsels != n {
					t.Errorf("%s/%s: ran %d morsels, want %d", e, q.ID, res.Morsels, n)
				}
			}
		}
	}
}

// TestPartitionInvarianceGenerated extends the invariance property to a
// sample of generated queries. Wide filters guarantee no pruning on the
// uniform dataset (asserted), so seconds must match exactly too.
func TestPartitionInvarianceGenerated(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		q := RandomQuery(r, diffDS, i, GenOptions{WideFilters: true})
		if err := q.Validate(); err != nil {
			t.Fatalf("generated query invalid: %v", err)
		}
		plan := Compile(diffDS, q)
		for _, e := range []Engine{EngineCPU, EngineGPU, EngineMonet} {
			base := plan.Run(e)
			for _, n := range partitionCounts {
				res := plan.RunPartitioned(e, RunOptions{Partition: PartitionOptions{Partitions: n}})
				if res.Pruned != 0 {
					t.Fatalf("%s/%s: wide filters should never prune, got %d", e, q.ID, res.Pruned)
				}
				queriestest.SameRun(t, fmt.Sprintf("%s/%s at %d partitions", e, q.ID, n), res, base)
			}
		}
	}
}

// TestZonePruningSkipsMorsels is the acceptance demonstration: on a layout
// clustered by orderdate, a q1.1-style selective date filter must actually
// skip morsels — with rows unchanged and simulated time strictly cheaper
// on every engine.
func TestZonePruningSkipsMorsels(t *testing.T) {
	clustered := testDS.ClusterBy("orderdate")
	q, _ := ByID("q1.1") // orderdate in 1993: one year of seven
	plan := Compile(clustered, q)
	for _, e := range Engines() {
		base := plan.Run(e)
		res := plan.RunPartitioned(e, RunOptions{Partition: PartitionOptions{Partitions: 64}})
		if res.Pruned == 0 {
			t.Fatalf("%s: no morsels pruned on clustered layout", e)
		}
		queriestest.Cheaper(t, fmt.Sprintf("%s pruned run", e), res, base)
	}
	// The zone-mapped rows that do get scanned cost the same as in the
	// monolithic run, so pruning most of the table must save most of the
	// scan: the 1993 flight keeps ~1/7 of a clustered table.
	res := plan.RunPartitioned(EngineGPU, RunOptions{Partition: PartitionOptions{Partitions: 64}})
	if frac := float64(res.Pruned) / float64(res.Morsels); frac < 0.5 {
		t.Errorf("expected most morsels pruned, got %d/%d", res.Pruned, res.Morsels)
	}
}

func TestMatchesZone(t *testing.T) {
	z := ssb.Zone{Min: 100, Max: 200}
	cases := []struct {
		f    Filter
		want bool
	}{
		{Filter{Col: "x", Lo: 150, Hi: 160}, true},
		{Filter{Col: "x", Lo: 0, Hi: 100}, true},
		{Filter{Col: "x", Lo: 200, Hi: 300}, true},
		{Filter{Col: "x", Lo: 0, Hi: 99}, false},
		{Filter{Col: "x", Lo: 201, Hi: 999}, false},
		{Filter{Col: "x", In: []int32{5, 150}}, true},
		{Filter{Col: "x", In: []int32{5, 99, 201}}, false},
	}
	for i, c := range cases {
		if got := c.f.MatchesZone(z); got != c.want {
			t.Errorf("case %d: MatchesZone = %v, want %v", i, got, c.want)
		}
	}
}

func TestPruneMorselsConservative(t *testing.T) {
	morsels := []ssb.Morsel{
		{Lo: 0, Hi: 10, Zones: map[string]ssb.Zone{"quantity": {Min: 1, Max: 10}}},
		{Lo: 10, Hi: 20, Zones: map[string]ssb.Zone{"quantity": {Min: 11, Max: 20}}},
		{Lo: 20, Hi: 30}, // no zone map: never pruned
	}
	pruned := PruneMorsels(morsels, []Filter{{Col: "quantity", Lo: 12, Hi: 15}})
	if !pruned[0] || pruned[1] || pruned[2] {
		t.Errorf("pruned = %v, want [true false false]", pruned)
	}
	// A filter on a column without a zone entry never prunes.
	pruned = PruneMorsels(morsels, []Filter{{Col: "discount", Lo: 0, Hi: 0}})
	for i, p := range pruned {
		if p {
			t.Errorf("morsel %d pruned by unzoned column", i)
		}
	}
	// No filters: nothing prunes.
	for _, p := range PruneMorsels(morsels, nil) {
		if p {
			t.Error("pruned with no filters")
		}
	}
}

// TestRunPartitionedMatchesShim checks the Plan dispatch against the one
// compatibility shim (Run) and that the morsel cache on a plan returns a
// consistent partitioning.
func TestRunPartitionedMatchesShim(t *testing.T) {
	q, _ := ByID("q2.1")
	a := Compile(testDS, q).RunPartitioned(EngineCPU, RunOptions{Partition: PartitionOptions{Partitions: 7}})
	b := Run(testDS, q, EngineCPU)
	if !a.Equal(b) || a.Seconds != b.Seconds {
		t.Error("partitioned Plan dispatch disagrees with the Run shim")
	}
	plan := Compile(testDS, q)
	m1 := plan.Morsels(7)
	m2 := plan.Morsels(7)
	if &m1[0] != &m2[0] {
		t.Error("plan morsels not memoized")
	}
	if len(plan.Morsels(0)) != 1 {
		t.Error("Morsels(0) should clamp to one morsel")
	}
}

// TestMorselAlignMatchesGPUTile pins the invariant the whole design hangs
// on: the GPU tile size must equal the morsel alignment quantum, or pruned
// morsels would no longer map onto whole thread blocks.
func TestMorselAlignMatchesGPUTile(t *testing.T) {
	if ts := gpuConfig(0).TileSize(); ts != ssb.MorselAlign {
		t.Fatalf("GPU tile size %d != ssb.MorselAlign %d", ts, ssb.MorselAlign)
	}
	if ssb.MorselAlign%32 != 0 {
		t.Fatal("MorselAlign must be a multiple of the 128 B line (32 rows)")
	}
}

// TestBtoi pins the branch-based conversion (the old map-per-call version
// allocated on every build).
func TestBtoi(t *testing.T) {
	if btoi(true) != 1 || btoi(false) != 0 {
		t.Errorf("btoi: got %d/%d, want 1/0", btoi(true), btoi(false))
	}
}

func BenchmarkBtoi(b *testing.B) {
	s := 0
	for i := 0; i < b.N; i++ {
		s += btoi(i&1 == 0)
	}
	_ = s
}

// TestEngineWrappersMatchDispatch pins the exported one-shot wrappers to
// the Plan dispatch path (rows and seconds identical), and exercises
// Result.Clone isolation including the partitioning fields.
func TestEngineWrappersMatchDispatch(t *testing.T) {
	small := ssb.GenerateRows(4096)
	q, _ := ByID("q2.1")
	for e, res := range map[Engine]*Result{
		EngineHyper:   Compile(small, q).RunHyper(),
		EngineMonet:   Compile(small, q).RunMonet(),
		EngineOmnisci: Compile(small, q).RunOmnisci(),
	} {
		want := Run(small, q, e)
		if !res.Equal(want) || res.Seconds != want.Seconds {
			t.Errorf("%s wrapper disagrees with Plan dispatch", e)
		}
	}
	plan := Compile(small, q)
	if plan.Dataset() != small {
		t.Error("Dataset accessor lost the dataset")
	}
	res := plan.RunPartitioned(EngineCPU, RunOptions{Partition: PartitionOptions{Partitions: 2}})
	cl := res.Clone()
	if cl.Morsels != res.Morsels || cl.Pruned != res.Pruned || cl.Seconds != res.Seconds {
		t.Error("Clone dropped execution metadata")
	}
	for k := range cl.Groups {
		cl.Groups[k]++
	}
	if res.Equal(cl) {
		t.Error("Clone shares group storage with the original")
	}
}
