package queries

import (
	"strings"
	"testing"
)

// TestValidateErrorMessages pins the wording of every Validate error path:
// the SQL frontend surfaces these verbatim to users, so each must name the
// query, the offending column and the constraint.
func TestValidateErrorMessages(t *testing.T) {
	cases := []struct {
		name    string
		q       Query
		wantSub string
	}{
		{
			"no id",
			Query{},
			"no id",
		},
		{
			"unknown fact column",
			Query{ID: "x", FactFilters: []Filter{{Col: "lo_tax", Lo: 0, Hi: 1}}},
			`unknown fact column "lo_tax"`,
		},
		{
			"inverted fact range",
			Query{ID: "x", FactFilters: []Filter{{Col: "discount", Lo: 9, Hi: 2}}},
			"empty range [9,2]",
		},
		{
			"empty fact IN set",
			Query{ID: "x", FactFilters: []Filter{{Col: "discount", In: []int32{}}}},
			"empty IN set",
		},
		{
			"unknown dimension",
			Query{ID: "x", Joins: []JoinSpec{{Dim: "warehouse", FactFK: "suppkey"}}},
			`unknown dimension "warehouse"`,
		},
		{
			"unknown foreign key",
			Query{ID: "x", Joins: []JoinSpec{{Dim: "supplier", FactFK: "warehousekey"}}},
			`unknown FK "warehousekey"`,
		},
		{
			"dim filter on foreign column",
			Query{ID: "x", Joins: []JoinSpec{{Dim: "date", FactFK: "orderdate",
				Filters: []Filter{{Col: "region", Lo: 0, Hi: 1}}}}},
			`unknown date column "region"`,
		},
		{
			"inverted dim range",
			Query{ID: "x", Joins: []JoinSpec{{Dim: "date", FactFK: "orderdate",
				Filters: []Filter{{Col: "year", Lo: 1998, Hi: 1992}}}}},
			"empty range [1998,1992]",
		},
		{
			"empty dim IN set",
			Query{ID: "x", Joins: []JoinSpec{{Dim: "customer", FactFK: "custkey",
				Filters: []Filter{{Col: "city", In: nil, Lo: 1, Hi: 0}}}}},
			"empty range",
		},
		{
			"payload on foreign column",
			Query{ID: "x", Joins: []JoinSpec{{Dim: "part", FactFK: "partkey", Payload: "year"}}},
			`unknown part column "year"`,
		},
		{
			"packed group-key overflow",
			Query{ID: "x", Joins: []JoinSpec{
				{Dim: "customer", FactFK: "custkey", Payload: "nation"},
				{Dim: "supplier", FactFK: "suppkey", Payload: "nation"},
				{Dim: "part", FactFK: "partkey", Payload: "brand1"},
				{Dim: "date", FactFK: "orderdate", Payload: "year"},
			}},
			"4 group keys; the packed key holds at most 3",
		},
	}
	for _, tc := range cases {
		err := tc.q.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the query", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantSub)
		}
		if tc.q.ID != "" && !strings.Contains(err.Error(), tc.q.ID) {
			t.Errorf("%s: error %q does not name the query id", tc.name, err)
		}
	}
}

// TestValidateAcceptsBoundaryShapes covers the accepting edge of each rule:
// shapes close to the failure cases above that must stay valid.
func TestValidateAcceptsBoundaryShapes(t *testing.T) {
	cases := []Query{
		// Single-point range (Lo == Hi).
		{ID: "x", FactFilters: []Filter{{Col: "quantity", Lo: 24, Hi: 24}}},
		// One-element IN set; Lo/Hi garbage is ignored when In is set.
		{ID: "x", FactFilters: []Filter{{Col: "discount", In: []int32{4}, Lo: 9, Hi: 2}}},
		// Exactly three group keys fill the packed key.
		{ID: "x", Joins: []JoinSpec{
			{Dim: "customer", FactFK: "custkey", Payload: "city"},
			{Dim: "supplier", FactFK: "suppkey", Payload: "city"},
			{Dim: "date", FactFK: "orderdate", Payload: "year"},
		}},
		// A join may both filter and carry a payload on the same column.
		{ID: "x", Joins: []JoinSpec{{Dim: "part", FactFK: "partkey",
			Filters: []Filter{{Col: "brand1", Lo: 0, Hi: 10}}, Payload: "brand1"}}},
	}
	for i, q := range cases {
		if err := q.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected a valid query: %v", i, err)
		}
	}
}
