package queries

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"crystal/internal/fleet"
	"crystal/internal/queries/queriestest"
	"crystal/internal/trace"
)

// almostEq is the float tolerance for sums of per-member shares: the shares
// are products of exact solo seconds with a rational ratio, so their sum can
// differ from the recomputed total only by accumulation order.
func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestApportionProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(8)
		weights := make([]int64, n)
		var sumW int64
		for i := range weights {
			weights[i] = int64(r.Intn(1000))
			sumW += weights[i]
		}
		total := int64(0)
		if sumW > 0 {
			total = int64(r.Int63n(sumW + 1)) // shared scan: total <= sum of solos
		}
		got := apportion(total, weights)
		var sum int64
		for i, v := range got {
			sum += v
			if v < 0 {
				t.Fatalf("trial %d: negative share %d at %d", trial, v, i)
			}
			if v > weights[i] {
				t.Fatalf("trial %d: share %d exceeds weight %d at %d (total=%d weights=%v)",
					trial, v, weights[i], i, total, weights)
			}
		}
		if sum != total {
			t.Fatalf("trial %d: shares sum to %d, want %d (weights=%v got=%v)", trial, sum, total, weights, got)
		}
	}
	// Determinism: equal inputs, equal splits.
	a := apportion(100, []int64{3, 3, 3})
	b := apportion(100, []int64{3, 3, 3})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("apportion not deterministic: %v vs %v", a, b)
		}
	}
}

func TestScanFootprintCompatible(t *testing.T) {
	q1, err := ByID("q1.1")
	if err != nil {
		t.Fatal(err)
	}
	q41, err := ByID("q4.1")
	if err != nil {
		t.Fatal(err)
	}
	fp := ScanFootprint(&q1)
	if len(fp) == 0 {
		t.Fatal("q1.1 has an empty scan footprint")
	}
	if !Compatible(&q1, &q1) {
		t.Error("a query must be compatible with itself")
	}
	if !Compatible(&q41, &q41) {
		t.Error("q4.1 must be compatible with itself")
	}
	// Synthetic disjoint pair: one reads only revenue, the other only
	// extprice+discount — no shared fact column, nothing to deduplicate.
	rev := Query{ID: "rev", Agg: AggSumRevenue}
	extdisc := Query{ID: "extdisc", Agg: AggSumExtDisc}
	if Compatible(&rev, &extdisc) {
		t.Errorf("disjoint footprints reported compatible: %v vs %v",
			ScanFootprint(&rev), ScanFootprint(&extdisc))
	}
}

// TestDifferentialBatchAgree is the shared-scan batching differential
// harness: seeded batches of 2-8 compatible queries must produce, for every
// member, rows AND simulated seconds identical to the member's solo run of
// the same schedule — across engines, partition counts, packed/plain
// encodings, fleet shapes and hybrid splits, ORDER BY/LIMIT included — while
// the batch's shared traffic never exceeds the sum of the solo scans and the
// per-member shares sum exactly back to the batch totals.
func TestDifferentialBatchAgree(t *testing.T) {
	const rounds = 24
	r := rand.New(rand.NewSource(20260808))
	subadditive := 0
	for round := 0; round < rounds; round++ {
		size := 2 + r.Intn(7)
		qs := make([]Query, size)
		plans := make([]*Plan, size)
		for i := range qs {
			qs[i] = RandomQuery(r, diffDS, round*16+i, GenOptions{Extended: round%2 == 1})
			if err := qs[i].Validate(); err != nil {
				t.Fatalf("round %d: invalid generated query: %v", round, err)
			}
			plans[i] = Compile(diffDS, qs[i])
		}

		parts := []int{2, 7, 16, 64}[round%4]
		opts := RunOptions{Partition: PartitionOptions{Partitions: parts}, Trace: true}
		if round%3 == 1 {
			opts.Partition.Packed = diffPacked
		}
		gpus := []int{1, 2, 4, 8}[r.Intn(4)]
		link := fleet.Interconnects()[r.Intn(2)]
		fl := fleet.Spec{GPUs: gpus, Link: link}
		frac := []float64{-1, 0.25, 0.5, 0.75}[r.Intn(4)]

		type placementRun struct {
			label string
			batch func() (*BatchResult, error)
			solo  func(p *Plan) (*ScheduledResult, error)
		}
		engine := Engines()[round%len(Engines())]
		if opts.Partition.Packed != nil {
			engine = EngineCoproc
		}
		runs := []placementRun{
			{
				label: fmt.Sprintf("engine=%s parts=%d packed=%v", engine, parts, opts.Partition.Packed != nil),
				batch: func() (*BatchResult, error) { return RunBatch(plans, engine, opts) },
				solo: func(p *Plan) (*ScheduledResult, error) {
					return p.RunScheduled(p.ScheduleEngine(engine, opts))
				},
			},
			{
				label: fmt.Sprintf("fleet %dx%s parts=%d packed=%v", gpus, link.Name, parts, opts.Partition.Packed != nil),
				batch: func() (*BatchResult, error) { return RunBatchFleet(plans, fl, opts) },
				solo: func(p *Plan) (*ScheduledResult, error) {
					s, err := p.ScheduleFleet(fl, opts)
					if err != nil {
						return nil, err
					}
					return p.RunScheduled(s)
				},
			},
			{
				label: fmt.Sprintf("hybrid frac=%v %dx%s parts=%d", frac, gpus, link.Name, parts),
				batch: func() (*BatchResult, error) { return RunBatchHybrid(plans, fl, frac, opts) },
				solo: func(p *Plan) (*ScheduledResult, error) {
					s, _, err := p.ScheduleHybrid(fl, frac, opts)
					if err != nil {
						return nil, err
					}
					return p.RunScheduled(s)
				},
			},
		}
		for _, pr := range runs {
			br, err := pr.batch()
			if err != nil {
				t.Fatalf("round %d %s: batch failed: %v", round, pr.label, err)
			}
			if len(br.Members) != size {
				t.Fatalf("round %d %s: %d members, want %d", round, pr.label, len(br.Members), size)
			}
			var shareSum float64
			var scanSum, soloSum int64
			for i, m := range br.Members {
				label := fmt.Sprintf("round %d %s member %d (%s)", round, pr.label, i, qs[i].ID)
				sr, err := pr.solo(plans[i])
				if err != nil {
					t.Fatalf("%s: solo failed: %v", label, err)
				}
				// Full identity: rows, order, every aggregate value, and the
				// member's reported Seconds equal to its solo schedule's.
				if !m.Result.Equal(sr.Result) {
					t.Errorf("%s: batched rows differ from solo run", label)
				}
				queriestest.SameRun(t, label, m.Result, sr.Result)
				if m.ShareSeconds > sr.Result.Seconds*(1+1e-9) {
					t.Errorf("%s: share %.12f exceeds solo %.12f", label, m.ShareSeconds, sr.Result.Seconds)
				}
				shareSum += m.ShareSeconds
				scanSum += m.ScanBytes
				soloSum += m.SoloScanBytes
			}
			if !almostEq(shareSum, br.Seconds) {
				t.Errorf("round %d %s: shares sum %.12f, batch seconds %.12f", round, pr.label, shareSum, br.Seconds)
			}
			if scanSum != br.SharedScanBytes {
				t.Errorf("round %d %s: member scan bytes sum %d, shared %d", round, pr.label, scanSum, br.SharedScanBytes)
			}
			if soloSum != br.SoloScanBytes {
				t.Errorf("round %d %s: member solo bytes sum %d, total %d", round, pr.label, soloSum, br.SoloScanBytes)
			}
			if br.SharedScanBytes > br.SoloScanBytes {
				t.Errorf("round %d %s: shared scan %d exceeds sum of solos %d", round, pr.label, br.SharedScanBytes, br.SoloScanBytes)
			}
			if br.SharedScanBytes < br.SoloScanBytes {
				subadditive++
			}
			if br.Trace == nil {
				t.Fatalf("round %d %s: no batch trace", round, pr.label)
			}
			if err := trace.VerifyBatch(br.Trace); err != nil {
				t.Errorf("round %d %s: batch trace invariant: %v", round, pr.label, err)
			}
		}
	}
	// The harness is only load-bearing if batching actually deduplicates
	// traffic most of the time (generated queries share hot fact columns).
	if subadditive < rounds {
		t.Errorf("only %d/%d batch runs were strictly subadditive; batches too disjoint", subadditive, rounds*3)
	}
}

// TestBatchSingletonIdentity pins the degenerate batch: one member, whose
// share is its entire solo run — bytes and seconds exactly, no discount.
func TestBatchSingletonIdentity(t *testing.T) {
	q, err := ByID("q2.1")
	if err != nil {
		t.Fatal(err)
	}
	p := Compile(diffDS, q)
	opts := RunOptions{Partition: PartitionOptions{Partitions: 7}}
	br, err := RunBatch([]*Plan{p}, EngineGPU, opts)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := p.RunScheduled(p.ScheduleEngine(EngineGPU, opts))
	if err != nil {
		t.Fatal(err)
	}
	m := br.Members[0]
	queriestest.SameRun(t, "singleton batch", m.Result, sr.Result)
	if m.ShareSeconds != sr.Result.Seconds {
		t.Errorf("singleton share %.12f != solo %.12f", m.ShareSeconds, sr.Result.Seconds)
	}
	if br.Seconds != m.ShareSeconds {
		t.Errorf("batch seconds %.12f != single share %.12f", br.Seconds, m.ShareSeconds)
	}
	if m.ScanBytes != m.SoloScanBytes || br.SharedScanBytes != br.SoloScanBytes {
		t.Errorf("singleton scan bytes split: member %d/%d, batch %d/%d",
			m.ScanBytes, m.SoloScanBytes, br.SharedScanBytes, br.SoloScanBytes)
	}
}

// TestBatchSharedTrafficStrictlyLess pins the batching win the benchmark
// gate holds: two overlapping catalog queries batched onto one scan stream
// strictly less than their solo scans combined, and the batch's simulated
// seconds undercut the solo sum by the same mechanism.
func TestBatchSharedTrafficStrictlyLess(t *testing.T) {
	ids := []string{"q1.1", "q1.2", "q1.3"}
	plans := make([]*Plan, len(ids))
	var soloSeconds float64
	opts := RunOptions{Partition: PartitionOptions{Partitions: 7}}
	for i, id := range ids {
		q, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = Compile(diffDS, q)
		sr, err := plans[i].RunScheduled(plans[i].ScheduleEngine(EngineGPU, opts))
		if err != nil {
			t.Fatal(err)
		}
		soloSeconds += sr.Result.Seconds
	}
	br, err := RunBatch(plans, EngineGPU, opts)
	if err != nil {
		t.Fatal(err)
	}
	if br.SharedScanBytes >= br.SoloScanBytes {
		t.Errorf("shared scan %d not strictly less than solo sum %d", br.SharedScanBytes, br.SoloScanBytes)
	}
	if br.Seconds >= soloSeconds {
		t.Errorf("batch seconds %.9f not strictly less than solo sum %.9f", br.Seconds, soloSeconds)
	}
}
