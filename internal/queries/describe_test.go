package queries

import (
	"strings"
	"testing"
)

func TestAllQueriesValidate(t *testing.T) {
	for _, q := range All() {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.ID, err)
		}
	}
}

func TestValidateRejectsBadQueries(t *testing.T) {
	cases := []Query{
		{}, // no id
		{ID: "x", FactFilters: []Filter{{Col: "nope", Lo: 0, Hi: 1}}},                                                        // bad fact col
		{ID: "x", FactFilters: []Filter{{Col: "quantity", Lo: 5, Hi: 1}}},                                                    // empty range
		{ID: "x", FactFilters: []Filter{{Col: "quantity", In: []int32{}}}},                                                   // empty IN
		{ID: "x", Joins: []JoinSpec{{Dim: "nope", FactFK: "suppkey"}}},                                                       // bad dim
		{ID: "x", Joins: []JoinSpec{{Dim: "supplier", FactFK: "nope"}}},                                                      // bad FK
		{ID: "x", Joins: []JoinSpec{{Dim: "supplier", FactFK: "suppkey", Filters: []Filter{{Col: "brand1", Lo: 0, Hi: 1}}}}}, // wrong dim col
		{ID: "x", Joins: []JoinSpec{{Dim: "supplier", FactFK: "suppkey", Payload: "brand1"}}},                                // wrong payload
		{ID: "x", Joins: []JoinSpec{
			{Dim: "supplier", FactFK: "suppkey", Payload: "city"},
			{Dim: "customer", FactFK: "custkey", Payload: "city"},
			{Dim: "part", FactFK: "partkey", Payload: "brand1"},
			{Dim: "date", FactFK: "orderdate", Payload: "year"},
		}}, // 4 group keys
	}
	for i, q := range cases {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestDescribeRendersSQL(t *testing.T) {
	q, _ := ByID("q2.1")
	sql := q.Describe()
	for _, want := range []string{
		"SUM(lo.revenue)",
		"FROM lineorder, supplier, part, date",
		"lo.suppkey = supplier.key",
		"supplier.region = 'AMERICA'",
		"part.category = 'MFGR#12'",
		"GROUP BY part.brand1, date.year",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("q2.1 SQL missing %q:\n%s", want, sql)
		}
	}

	q11, _ := ByID("q1.1")
	sql = q11.Describe()
	for _, want := range []string{
		"SUM(lo.extprice * lo.discount)",
		"lo.orderdate BETWEEN 19930101 AND 19931231",
		"lo.discount BETWEEN 1 AND 3",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("q1.1 SQL missing %q:\n%s", want, sql)
		}
	}
	if strings.Contains(sql, "GROUP BY") {
		t.Error("q1.1 has no group by")
	}

	q33, _ := ByID("q3.3")
	if sql := q33.Describe(); !strings.Contains(sql, "customer.city IN ('UNITED KI1', 'UNITED KI5')") {
		t.Errorf("q3.3 IN rendering wrong:\n%s", sql)
	}
}

func TestFilterOrderInvariance(t *testing.T) {
	// Reordering the fact filters changes traffic but never the rows.
	q, _ := ByID("q1.1")
	reordered := q
	reordered.FactFilters = []Filter{q.FactFilters[2], q.FactFilters[0], q.FactFilters[1]}
	a := Compile(testDS, q).RunGPU()
	b := Compile(testDS, reordered).RunGPU()
	if !a.Equal(b) {
		t.Error("filter order changed the result rows")
	}
	c := Compile(testDS, reordered).RunCPU()
	if !a.Equal(c) {
		t.Error("CPU disagrees under reordered filters")
	}
}

func TestDecodeRows(t *testing.T) {
	q, _ := ByID("q2.1")
	res := Compile(testDS, q).RunGPU()
	rows := q.DecodeRows(res)
	if len(rows) != len(res.Groups) {
		t.Fatalf("decoded %d rows, want %d", len(rows), len(res.Groups))
	}
	for _, r := range rows {
		if len(r.Labels) != 2 {
			t.Fatalf("labels = %v", r.Labels)
		}
		if !strings.HasPrefix(r.Labels[0], "MFGR#12") {
			t.Errorf("brand label %q outside category", r.Labels[0])
		}
		if len(r.Labels[1]) != 4 || r.Labels[1][:3] != "199" {
			t.Errorf("year label %q", r.Labels[1])
		}
	}
	// No-group query decodes to a single unlabeled row.
	q11, _ := ByID("q1.1")
	res11 := Compile(testDS, q11).RunGPU()
	rows11 := q11.DecodeRows(res11)
	if len(rows11) != 1 || len(rows11[0].Labels) != 0 {
		t.Errorf("q1.1 decode = %+v", rows11)
	}
}
