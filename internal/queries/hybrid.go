package queries

import (
	"time"

	"crystal/internal/device"
	"crystal/internal/fleet"
	"crystal/internal/sched"
	"crystal/internal/ssb"
	"crystal/internal/trace"
)

// HybridResult is the outcome of one hybrid CPU+GPU co-execution: the
// merged result (row-identical to a monolithic run at any split — partial
// aggregates are integer sums) plus the per-executor telemetry and the
// merge-phase pricing.
type HybridResult struct {
	// Result is the merged result. Seconds is the schedule makespan (the
	// slowest arm plus the partial-aggregate merge); TransferBytes is the
	// GPU arm's interconnect shipment.
	Result *Result
	// GPUs and Interconnect echo the normalized fleet shape of the GPU
	// arm; CPUFrac is the live-row fraction the schedule routed to the
	// host CPU engine.
	GPUs         int
	Interconnect string
	CPUFrac      float64
	// Executors has one entry per arm: the CPU engine first, then one per
	// fleet device, idle arms included.
	Executors []ExecutorResult
	// MergeBytes is the partial-aggregate traffic the GPU arms sent across
	// the interconnect (the CPU arm merges host-side for free) and
	// MergeSeconds its transfer time.
	MergeBytes   int64
	MergeSeconds float64
	// Trace is the run's span tree, nil unless opts.Trace asked for one.
	Trace *trace.Span
}

// ScheduleHybrid splits the morsels between the host CPU engine and the
// GPU fleet — the schedule behind RunHybrid. The division is zone-map
// aware (sched.SplitHybrid): pruned morsels stay with the CPU arm, and
// the CPU arm additionally takes frac of the live rows, with the rest
// range-sharded over the fleet's devices. A negative frac asks for the
// default division, balanced by resident scan throughput
// (sched.CPUFraction). The returned fraction is the resolved one.
//
// Hybrid placement models the coprocessor world: the data is
// host-resident, so every GPU-routed morsel's referenced columns cross
// the interconnect (overlapped with execution) while the CPU arm scans
// host memory for free. That shipment is exactly what makes hybrid lose
// on PCIe and win on NVLink — planner.HybridCost prices it from this same
// split, so the model and the executor can never disagree about shape.
//
// Partitions below fl.GPUs+1 are raised to fl.GPUs+1 so every arm can get
// morsels where the count allows.
func (p *Plan) ScheduleHybrid(fl fleet.Spec, frac float64, opts RunOptions) (sched.Schedule, float64, error) {
	fl, err := fl.Normalized()
	if err != nil {
		return sched.Schedule{}, 0, err
	}
	var t0 time.Time
	if opts.Trace {
		t0 = time.Now()
	}
	if frac < 0 {
		frac = sched.CPUFraction(device.I76900(), fl.Device, fl.GPUs)
	}
	if frac > 1 {
		frac = 1
	}
	if opts.Partition.Partitions < fl.GPUs+1 {
		opts.Partition.Partitions = fl.GPUs + 1
	}
	opts.Partition.Residency = nil // single-device coprocessor knob
	ms := p.morselRun(opts)
	split := sched.SplitHybrid(ms.morsels, ms.pruned, frac)

	s := sched.Schedule{Link: fl.Link, Morsels: len(ms.morsels), Packed: ms.packed != nil}
	s.Assignments = append(s.Assignments, sched.Assignment{
		Executor: engineExecutor{p: p, ms: ms, e: EngineCPU},
		Morsels:  split.CPU,
		// Host arm: no spill, and its partial merges for free.
	})

	// The GPU arm range-shards its sub-list with the same scheduler the
	// fleet uses, capacity 0: data is host-resident, so every owned morsel
	// is spilled and its referenced columns cross the link per query.
	gpuMorsels := make([]ssb.Morsel, len(split.GPU))
	for i, mi := range split.GPU {
		gpuMorsels[i] = ms.morsels[mi]
	}
	shardBytes := func(m ssb.Morsel) int64 { return ssb.MorselStorageBytes(ms.packed, m) }
	shards := fleet.Assign(gpuMorsels, fl.GPUs, 0, shardBytes)
	for d := range shards {
		owned := make([]int, len(shards[d].Morsels))
		for i, li := range shards[d].Morsels {
			owned[i] = split.GPU[li]
		}
		var res Residency
		if ms.packed != nil && d < len(opts.Fleet.Residency) {
			res = opts.Fleet.Residency[d]
		}
		s.Assignments = append(s.Assignments, sched.Assignment{
			Executor: &gpuDeviceExecutor{p: p, ms: ms, dev: fl.Device, link: fl.Link, idx: d, res: res},
			Morsels:  owned,
			Spilled:  owned,
			Merge:    true,
		})
	}
	if opts.Trace {
		s.Trace = true
		s.BuildWall = time.Since(t0)
	}
	return s, frac, nil
}

// RunHybrid executes the compiled plan as a hybrid CPU+GPU co-execution
// over fl: the host CPU engine and the GPU fleet scan disjoint morsel
// sets concurrently (ScheduleHybrid decides the split; frac < 0 means the
// throughput-balanced default) and the partial aggregates merge host-side
// exactly as fleet merges do. It is a thin wrapper over RunScheduled.
//
// frac pins the live-row fraction of the CPU arm: 0 is the pure-GPU
// host-resident placement (every morsel ships over the link), 1 the
// pure-CPU placement. Rows are identical to a monolithic run at any frac.
func (p *Plan) RunHybrid(fl fleet.Spec, frac float64, opts RunOptions) (*HybridResult, error) {
	fl, err := fl.Normalized()
	if err != nil {
		return nil, err
	}
	s, frac, err := p.ScheduleHybrid(fl, frac, opts)
	if err != nil {
		return nil, err
	}
	sr, err := p.RunScheduled(s)
	if err != nil {
		return nil, err
	}
	return &HybridResult{
		Result:       sr.Result,
		GPUs:         fl.GPUs,
		Interconnect: fl.Link.Name,
		CPUFrac:      frac,
		Executors:    sr.Executors,
		MergeBytes:   sr.MergeBytes,
		MergeSeconds: sr.MergeSeconds,
		Trace:        sr.Trace,
	}, nil
}
