package queries

import (
	"fmt"
	"sort"
	"strings"
)

// Canonical returns a deterministic encoding of the query's physical form:
// the aggregate, the fact filters, and each join in plan order with its
// filters. The ID is excluded and IN-set order is normalized away, but
// filter order and join order are part of the encoding — both shape the
// memory traffic the engines charge, so queries that execute differently
// must never collide. Text-level freedom (whitespace, comments, conjunct
// order) is instead normalized by the SQL binder, which sorts filters into
// a canonical order before this encoding is taken.
//
// The serving layer uses this as its plan- and result-cache key: equal
// canonical forms guarantee identical rows and identical simulated
// seconds.
func (q *Query) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "agg=%d;fact=%s", q.Agg, canonFilters(q.FactFilters))
	for _, j := range q.Joins {
		fmt.Fprintf(&b, ";join=%s/%s/%s/%s", j.Dim, j.FactFK, j.Payload, canonFilters(j.Filters))
	}
	// The segments below are appended only when the feature is used, so
	// every pre-existing query keeps its exact historical key (and therefore
	// its cache entries and benchmark baselines).
	if q.Aggs != nil {
		parts := make([]string, len(q.Aggs))
		for i, s := range q.Aggs {
			parts[i] = fmt.Sprintf("%d.%d", s.Func, s.Expr)
		}
		fmt.Fprintf(&b, ";aggs=%s", strings.Join(parts, ","))
	}
	if len(q.OrderBy) > 0 {
		parts := make([]string, len(q.OrderBy))
		for i, k := range q.OrderBy {
			ref := fmt.Sprintf("a%d", k.Item)
			if k.Item < 0 {
				ref = fmt.Sprintf("g%d", k.Group)
			}
			if k.Desc {
				ref += "d"
			}
			parts[i] = ref
		}
		fmt.Fprintf(&b, ";order=%s", strings.Join(parts, ","))
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, ";limit=%d", q.Limit)
	}
	return b.String()
}

func canonFilters(fs []Filter) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		if f.In != nil {
			vals := append([]int32(nil), f.In...)
			sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
			strs := make([]string, len(vals))
			for vi, v := range vals {
				strs[vi] = fmt.Sprint(v)
			}
			parts[i] = fmt.Sprintf("%s:in:%s", f.Col, strings.Join(strs, ","))
		} else {
			parts[i] = fmt.Sprintf("%s:%d:%d", f.Col, f.Lo, f.Hi)
		}
	}
	return strings.Join(parts, "|")
}
