package queries

import (
	"fmt"
	"testing"

	"crystal/internal/device"
	"crystal/internal/fleet"
	"crystal/internal/queries/queriestest"
	"crystal/internal/ssb"
)

// fleetShapes is the acceptance matrix: every catalog query, every fleet
// size, both interconnects, both encodings.
var fleetGPUCounts = []int{1, 2, 4, 8}

// TestFleetInvarianceCatalog is the tentpole guarantee: all 13 catalog
// queries × {1,2,4,8} GPUs × {PCIe, NVLink} × {plain, packed} return rows
// identical to the monolithic single-device GPU run. Partial aggregates
// are integer sums, so sharding at any granularity must never change a row.
func TestFleetInvarianceCatalog(t *testing.T) {
	for _, q := range All() {
		plan := Compile(testDS, q)
		want := plan.Run(EngineGPU)
		for _, gpus := range fleetGPUCounts {
			for _, link := range fleet.Interconnects() {
				for _, packed := range []bool{false, true} {
					opts := RunOptions{}
					if packed {
						opts.Partition.Packed = testPacked
					}
					fr, err := plan.RunFleet(fleet.Spec{GPUs: gpus, Link: link}, opts)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("%s/%dx%s/packed=%v", q.ID, gpus, link.Name, packed)
					queriestest.SameRows(t, label, fr.Result, want)
					if fr.Result.Seconds <= 0 {
						t.Errorf("%s: no simulated time", label)
					}
					if fr.Result.Packed != packed {
						t.Errorf("%s: packed flag lost", label)
					}
					if len(fr.Devices) != gpus {
						t.Errorf("%s: %d device entries, want %d", label, len(fr.Devices), gpus)
					}
					var rows int64
					var morsels int
					for _, fd := range fr.Devices {
						rows += fd.Rows
						morsels += fd.Morsels
					}
					if int(rows) != testDS.Lineorder.Rows() {
						t.Errorf("%s: devices scanned %d rows, dataset has %d", label, rows, testDS.Lineorder.Rows())
					}
					if morsels != fr.Result.Morsels {
						t.Errorf("%s: device morsels sum to %d, result says %d", label, morsels, fr.Result.Morsels)
					}
					if fr.Result.TransferBytes != 0 {
						t.Errorf("%s: spill on a 32 GB device at test scale", label)
					}
				}
			}
		}
	}
}

// TestFleetOrderedInvariance extends the fleet invariance to ORDER BY:
// each device radix-sorts its shard of the groups, ships a (LIMIT-truncated)
// sorted run, and the host k-way merge must land on exactly the
// single-device order at every shard count, link, and encoding — the
// sorted-run-merge ≡ single-device-sort property.
func TestFleetOrderedInvariance(t *testing.T) {
	for _, base := range All() {
		q := base
		q.OrderBy = []OrderKey{{Item: 0, Desc: true}}
		if len(q.GroupPayloads()) > 0 {
			q.OrderBy = append(q.OrderBy, OrderKey{Item: -1, Group: 0})
			q.Limit = 5
		}
		plan := Compile(testDS, q)
		want := plan.Run(EngineGPU)
		if ref := normalizeRef(q, Reference(testDS, q)); !want.Equal(ref) {
			t.Fatalf("%s: single-GPU ordered run disagrees with the oracle", q.ID)
		}
		for _, gpus := range fleetGPUCounts {
			for _, link := range fleet.Interconnects() {
				for _, packed := range []bool{false, true} {
					opts := RunOptions{Partition: PartitionOptions{Partitions: 16}}
					if packed {
						opts.Partition.Packed = testPacked
					}
					fr, err := plan.RunFleet(fleet.Spec{GPUs: gpus, Link: link}, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !fr.Result.Equal(want) {
						t.Errorf("%s/%dx%s/packed=%v: fleet sorted-run merge differs from single-device sort",
							q.ID, gpus, link.Name, packed)
					}
					if fr.Result.Seconds <= 0 {
						t.Errorf("%s/%dx%s: no simulated time", q.ID, gpus, link.Name)
					}
				}
			}
		}
	}
}

// TestFleetScanScaling pins the acceptance bar for the bandwidth model:
// under the NVLink config, every scan-bound q1.x query must speed up at
// least 1.8x going from 1 to 2 GPUs, and fleet seconds must be monotone
// non-increasing in the device count. It runs at ssbench's default scale
// (SF 2, 12M fact rows) — the regime the acceptance criterion names, where
// the shard scan dominates the per-device kernel launch.
func TestFleetScanScaling(t *testing.T) {
	ds := ssb.Generate(2)
	for _, id := range []string{"q1.1", "q1.2", "q1.3"} {
		q, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		plan := Compile(ds, q)
		counts := []int{1, 2, 4}
		secs := map[int]float64{}
		for _, gpus := range counts {
			fr, err := plan.RunFleet(fleet.Spec{GPUs: gpus, Link: fleet.NVLink()}, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			secs[gpus] = fr.Result.Seconds
		}
		if speedup := secs[1] / secs[2]; speedup < 1.8 {
			t.Errorf("%s: 2-GPU NVLink speedup %.3fx, want >= 1.8x (1 GPU %.6fs, 2 GPUs %.6fs)",
				id, speedup, secs[1], secs[2])
		}
		prev := 0.0
		for _, gpus := range counts {
			if prev != 0 && secs[gpus] > prev {
				t.Errorf("%s: %d GPUs (%.9fs) slower than fewer (%.9fs)", id, gpus, secs[gpus], prev)
			}
			prev = secs[gpus]
		}
	}
}

// TestFleetMergeTerm pins the interconnect pricing of the partial-aggregate
// merge: the merge traffic grows with the number of active devices and the
// group cardinality, a scan-bound global aggregate ships exactly one
// 16-byte row per device, and the PCIe fleet is slower than the NVLink
// fleet by exactly the merge-time difference (the shards — and therefore
// the makespan — are identical).
func TestFleetMergeTerm(t *testing.T) {
	grouped, err := ByID("q2.2") // brand1 × year: a real merge payload
	if err != nil {
		t.Fatal(err)
	}
	plan := Compile(testDS, grouped)
	byGPUs := map[int]*FleetResult{}
	for _, gpus := range []int{2, 8} {
		fr, err := plan.RunFleet(fleet.Spec{GPUs: gpus, Link: fleet.NVLink()}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		byGPUs[gpus] = fr
		if fr.MergeBytes <= 0 || fr.MergeSeconds <= 0 {
			t.Fatalf("%d GPUs: no merge term (%d bytes, %.12fs)", gpus, fr.MergeBytes, fr.MergeSeconds)
		}
	}
	if byGPUs[8].MergeBytes <= byGPUs[2].MergeBytes {
		t.Errorf("merge bytes did not grow with the fleet: %d at 8 GPUs vs %d at 2",
			byGPUs[8].MergeBytes, byGPUs[2].MergeBytes)
	}

	// Same shards over the slower link: only the merge term changes.
	pcie, err := plan.RunFleet(fleet.Spec{GPUs: 8, Link: fleet.PCIe()}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nv := byGPUs[8]
	if pcie.MergeBytes != nv.MergeBytes {
		t.Fatalf("link choice changed merge bytes: %d vs %d", pcie.MergeBytes, nv.MergeBytes)
	}
	if pcie.Result.Seconds <= nv.Result.Seconds {
		t.Errorf("PCIe fleet (%.12fs) not slower than NVLink (%.12fs)", pcie.Result.Seconds, nv.Result.Seconds)
	}
	gotDiff := pcie.Result.Seconds - nv.Result.Seconds
	wantDiff := pcie.MergeSeconds - nv.MergeSeconds
	if rel := (gotDiff - wantDiff) / wantDiff; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("seconds difference %.15g is not the merge difference %.15g", gotDiff, wantDiff)
	}

	// A global aggregate ships one 16-byte partial per active device.
	scan, err := ByID("q1.1")
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Compile(testDS, scan).RunFleet(fleet.Spec{GPUs: 4, Link: fleet.NVLink()}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fr.MergeBytes != 4*16 {
		t.Errorf("q1.1 merge bytes = %d, want %d", fr.MergeBytes, 4*16)
	}
}

// smallV100 clones the V100 with a reduced memory capacity so test-scale
// shards spill.
func smallV100(memory int64) *device.Spec {
	d := device.V100()
	d.MemoryBytes = memory
	return d
}

// TestFleetSpill pins graceful degradation: shards that exceed device
// memory keep their rows host-resident, ship their referenced columns over
// the interconnect (packed runs ship packed bytes), and never change a
// row. A fully-spilled fleet is strictly slower than a resident one; a
// per-device residency cache elides the shipment entirely.
func TestFleetSpill(t *testing.T) {
	q, err := ByID("q1.1")
	if err != nil {
		t.Fatal(err)
	}
	plan := Compile(testDS, q)
	resident, err := plan.RunFleet(fleet.Spec{GPUs: 2, Link: fleet.PCIe()}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resident.Result.TransferBytes != 0 {
		t.Fatal("32 GB devices spilled at test scale")
	}

	// Zero device memory: every morsel spills, all referenced columns ship.
	spilled, err := plan.RunFleet(fleet.Spec{GPUs: 2, Device: smallV100(0), Link: fleet.PCIe()}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRows(t, "fully spilled fleet", spilled.Result, resident.Result)
	wantBytes := int64(testDS.Lineorder.Rows()) * 4 * int64(len(q.ReferencedFactColumns()))
	if spilled.Result.TransferBytes != wantBytes {
		t.Errorf("spill shipped %d bytes, want %d", spilled.Result.TransferBytes, wantBytes)
	}
	if spilled.Result.Seconds <= resident.Result.Seconds {
		t.Errorf("fully spilled fleet (%.9fs) not slower than resident (%.9fs)",
			spilled.Result.Seconds, resident.Result.Seconds)
	}
	for _, fd := range spilled.Devices {
		if fd.SpillBytes == 0 {
			t.Errorf("device %d reports no spill", fd.Device)
		}
	}

	// Partial capacity for half a shard, sharded into 16 morsels so the
	// spill boundary falls inside each shard: some morsels resident, some
	// spilled, fewer shipped bytes than the fully spilled run.
	shardBytes := int64(testDS.Lineorder.Rows()) / 2 * 36
	partial, err := plan.RunFleet(fleet.Spec{GPUs: 2, Device: smallV100(shardBytes / 2), Link: fleet.PCIe()},
		RunOptions{Partition: PartitionOptions{Partitions: 16}})
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRows(t, "partially spilled fleet", partial.Result, resident.Result)
	if partial.Result.TransferBytes == 0 || partial.Result.TransferBytes >= spilled.Result.TransferBytes {
		t.Errorf("partial spill shipped %d bytes, want between 0 and %d",
			partial.Result.TransferBytes, spilled.Result.TransferBytes)
	}

	// Packed spill ships compressed bytes: strictly fewer than plain.
	packedSpill, err := plan.RunFleet(fleet.Spec{GPUs: 2, Device: smallV100(0), Link: fleet.PCIe()},
		RunOptions{Partition: PartitionOptions{Packed: testPacked}})
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRows(t, "packed spilled fleet", packedSpill.Result, resident.Result)
	if packedSpill.Result.TransferBytes >= spilled.Result.TransferBytes {
		t.Errorf("packed spill shipped %d bytes, plain ships %d",
			packedSpill.Result.TransferBytes, spilled.Result.TransferBytes)
	}

	// Per-device residency caches elide the shipment; refusing caches
	// degrade to exactly the cold transfer.
	warm, err := plan.RunFleet(fleet.Spec{GPUs: 2, Device: smallV100(0), Link: fleet.PCIe()},
		RunOptions{Partition: PartitionOptions{Packed: testPacked}, Fleet: FleetOptions{Residency: []Residency{residentAll{}, residentAll{}}}})
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRows(t, "warm spilled fleet", warm.Result, resident.Result)
	if warm.Result.TransferBytes != 0 {
		t.Errorf("warm fleet still shipped %d bytes", warm.Result.TransferBytes)
	}
	if warm.Result.ResidentCols == 0 {
		t.Error("warm fleet reported no resident columns")
	}
	refused, err := plan.RunFleet(fleet.Spec{GPUs: 2, Device: smallV100(0), Link: fleet.PCIe()},
		RunOptions{Partition: PartitionOptions{Packed: testPacked}, Fleet: FleetOptions{Residency: []Residency{refuseAll{}, refuseAll{}}}})
	if err != nil {
		t.Fatal(err)
	}
	if refused.Result.TransferBytes != packedSpill.Result.TransferBytes ||
		refused.Result.Seconds != packedSpill.Result.Seconds {
		t.Error("refused residency differs from cacheless packed spill")
	}
}

// TestRunFleetValidation covers the error paths and the degenerate shapes.
func TestRunFleetValidation(t *testing.T) {
	q, err := ByID("q1.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(testDS, q).RunFleet(fleet.Spec{GPUs: 0}, RunOptions{}); err == nil {
		t.Error("0 GPUs accepted")
	}
	if _, err := Compile(testDS, q).RunFleet(fleet.Spec{GPUs: fleet.MaxGPUs + 1}, RunOptions{}); err == nil {
		t.Error("oversized fleet accepted")
	}

	// A 1-GPU fleet is the partitioned single-device run plus the merge
	// shipment of its one partial-aggregate table — seconds exactly.
	plan := Compile(testDS, q)
	single := plan.RunPartitioned(EngineGPU, RunOptions{Partition: PartitionOptions{Partitions: 1}})
	fr, err := plan.RunFleet(fleet.Spec{GPUs: 1, Link: fleet.PCIe()}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRows(t, "1-GPU fleet", fr.Result, single)
	if got, want := fr.Result.Seconds, single.Seconds+fr.MergeSeconds; got != want {
		t.Errorf("1-GPU fleet seconds %.15g, want exec+merge %.15g", got, want)
	}

	// More devices than morsels: the extras idle, rows unchanged.
	tiny := ssb.GenerateRows(3)
	fr, err = Compile(tiny, q).RunFleet(fleet.Spec{GPUs: 8}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRows(t, "over-sharded fleet", fr.Result, Compile(tiny, q).RunGPU())
	idle := 0
	for _, fd := range fr.Devices {
		if fd.Morsels == 0 {
			idle++
			if fd.Seconds != 0 {
				t.Errorf("idle device %d charged %.12fs", fd.Device, fd.Seconds)
			}
		}
	}
	if idle != 7 {
		t.Errorf("%d idle devices, want 7 (3 rows = one morsel)", idle)
	}
}

// TestFleetZonePruning: on a clustered layout a selective fleet run prunes
// morsels device-locally — rows unchanged, strictly cheaper than the
// unpruned fleet, and the pruned morsels neither scan nor ship.
func TestFleetZonePruning(t *testing.T) {
	clustered := testDS.ClusterBy("orderdate")
	q, err := ByID("q1.1")
	if err != nil {
		t.Fatal(err)
	}
	plan := Compile(clustered, q)
	base, err := plan.RunFleet(fleet.Spec{GPUs: 4, Link: fleet.NVLink()}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := plan.RunFleet(fleet.Spec{GPUs: 4, Link: fleet.NVLink()}, RunOptions{Partition: PartitionOptions{Partitions: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Result.Pruned == 0 {
		t.Fatal("no morsels pruned on the clustered layout")
	}
	queriestest.Cheaper(t, "pruned fleet", pruned.Result, base.Result)
	var devPruned int
	for _, fd := range pruned.Devices {
		devPruned += fd.Pruned
	}
	if devPruned != pruned.Result.Pruned {
		t.Errorf("device pruned counts sum to %d, result says %d", devPruned, pruned.Result.Pruned)
	}
}
