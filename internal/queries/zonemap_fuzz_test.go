package queries

import (
	"sync"
	"testing"

	"crystal/internal/ssb"
)

// fuzzData lazily builds the two layouts the zone-map fuzzer scans: the
// uniform generated layout (zones span everything, pruning is rare) and an
// orderdate-clustered layout (narrow zones, pruning is common). Lazy so
// plain test runs that never fuzz don't pay for the clustering sort.
var fuzzData = struct {
	once               sync.Once
	uniform, clustered *ssb.Dataset
}{}

func fuzzDatasets() (*ssb.Dataset, *ssb.Dataset) {
	fuzzData.once.Do(func() {
		fuzzData.uniform = ssb.GenerateRows(40_000)
		fuzzData.clustered = fuzzData.uniform.ClusterBy("orderdate")
	})
	return fuzzData.uniform, fuzzData.clustered
}

// FuzzZoneMap pins the one property zone-map pruning must never violate:
// a pruned morsel contains no row matching the filters. It fuzzes filter
// bounds over arbitrary columns and partition counts, on both the uniform
// and a clustered layout, and cross-checks the surviving row population
// against a full scan.
func FuzzZoneMap(f *testing.F) {
	f.Add(uint8(7), uint8(0), int32(19930101), int32(19931231), int32(1), int32(3), true)
	f.Add(uint8(64), uint8(4), int32(26), int32(35), int32(0), int32(0), false)
	f.Add(uint8(1), uint8(9), int32(-5), int32(5), int32(100), int32(50), true)
	f.Add(uint8(33), uint8(200), int32(0), int32(0), int32(0), int32(0), false)

	f.Fuzz(func(t *testing.T, parts, colPick uint8, lo1, hi1, lo2, hi2 int32, clustered bool) {
		uniform, sorted := fuzzDatasets()
		ds := uniform
		if clustered {
			ds = sorted
		}
		cols := ssb.FactColumns()
		var filters []Filter
		if lo1 > hi1 {
			lo1, hi1 = hi1, lo1
		}
		filters = append(filters, Filter{Col: cols[int(colPick)%len(cols)], Lo: lo1, Hi: hi1})
		if lo2 <= hi2 {
			filters = append(filters, Filter{Col: cols[int(colPick/16)%len(cols)], Lo: lo2, Hi: hi2})
		} else {
			// Odd bounds become an IN-set filter instead of a range.
			filters = append(filters, Filter{Col: cols[int(colPick/16)%len(cols)], In: []int32{lo2, hi2}})
		}

		morsels := ds.Partition(int(parts)%96 + 1)
		pruned := PruneMorsels(morsels, filters)

		match := func(row int) bool {
			for i := range filters {
				if !filters[i].Match(ds.Lineorder.Col(filters[i].Col)[row]) {
					return false
				}
			}
			return true
		}
		var full, kept int
		for row := 0; row < ds.Lineorder.Rows(); row++ {
			if match(row) {
				full++
			}
		}
		for i, m := range morsels {
			if pruned[i] {
				// The property under test: pruning never drops a matching row.
				for row := m.Lo; row < m.Hi; row++ {
					if match(row) {
						t.Fatalf("morsel [%d,%d) pruned but row %d matches %+v", m.Lo, m.Hi, row, filters)
					}
				}
				continue
			}
			for row := m.Lo; row < m.Hi; row++ {
				if match(row) {
					kept++
				}
			}
		}
		if kept != full {
			t.Fatalf("surviving morsels hold %d matching rows, full scan finds %d", kept, full)
		}
	})
}
