package queries

import (
	"fmt"
	"testing"

	"crystal/internal/fleet"
	"crystal/internal/queries/queriestest"
	"crystal/internal/sched"
)

// TestHybridInvarianceCatalog extends the fleet invariance guarantee to
// hybrid schedules: all 13 catalog queries × {1,2,4} GPU arms × both
// interconnects × {plain, packed} × a sweep of CPU fractions return rows
// identical to the monolithic single-device GPU run. Partial aggregates
// are disjoint integer sums, so the split point must never change a row.
func TestHybridInvarianceCatalog(t *testing.T) {
	for _, q := range All() {
		plan := Compile(testDS, q)
		want := plan.Run(EngineGPU)
		for _, gpus := range []int{1, 2, 4} {
			for _, link := range fleet.Interconnects() {
				for _, packed := range []bool{false, true} {
					for _, frac := range []float64{-1, 0, 0.3, 0.5, 1} {
						opts := RunOptions{}
						opts.Partition.Partitions = 16
						if packed {
							opts.Partition.Packed = testPacked
						}
						hr, err := plan.RunHybrid(fleet.Spec{GPUs: gpus, Link: link}, frac, opts)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("%s/%dx%s/packed=%v/frac=%v", q.ID, gpus, link.Name, packed, frac)
						queriestest.SameRows(t, label, hr.Result, want)
						if hr.Result.Seconds <= 0 {
							t.Errorf("%s: no simulated time", label)
						}
						if hr.Result.Packed != packed {
							t.Errorf("%s: packed flag lost", label)
						}
					}
				}
			}
		}
	}
}

// TestHybridStatsSumToTotals pins the per-executor telemetry to the merged
// result: executor morsel, pruned and row counts sum exactly to the result
// totals, the CPU arm never ships or merges, and the makespan-plus-merge
// seconds identity holds.
func TestHybridStatsSumToTotals(t *testing.T) {
	q, _ := ByID("q2.1")
	plan := Compile(testDS, q)
	opts := RunOptions{}
	opts.Partition.Partitions = 16
	hr, err := plan.RunHybrid(fleet.Spec{GPUs: 2, Link: fleet.NVLink()}, -1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hr.Executors) != 3 {
		t.Fatalf("%d executors, want CPU arm + 2 GPU arms", len(hr.Executors))
	}
	var morsels, pruned int
	var rows, ship int64
	var makespan float64
	kinds := map[sched.Kind]int{}
	for _, er := range hr.Executors {
		kinds[er.Kind]++
		morsels += er.Morsels
		pruned += er.Pruned
		rows += er.Rows
		ship += er.ShipBytes
		if er.Seconds > makespan {
			makespan = er.Seconds
		}
		if er.Kind == sched.KindCPU && er.ShipBytes != 0 {
			t.Errorf("CPU arm shipped %d bytes; host-resident scans are free", er.ShipBytes)
		}
	}
	if kinds[sched.KindCPU] != 1 || kinds[sched.KindGPU] != 2 {
		t.Errorf("executor kinds = %v, want 1 cpu + 2 gpu", kinds)
	}
	if morsels != hr.Result.Morsels {
		t.Errorf("executor morsels sum to %d, result says %d", morsels, hr.Result.Morsels)
	}
	if pruned != hr.Result.Pruned {
		t.Errorf("executor pruned sum to %d, result says %d", pruned, hr.Result.Pruned)
	}
	if int(rows) != testDS.Lineorder.Rows() {
		t.Errorf("executors scanned %d rows, dataset has %d", rows, testDS.Lineorder.Rows())
	}
	if ship != hr.Result.TransferBytes {
		t.Errorf("executor ship bytes sum to %d, result says %d", ship, hr.Result.TransferBytes)
	}
	if ship <= 0 {
		t.Error("GPU arms shipped nothing; hybrid models host-resident data")
	}
	if got, want := hr.Result.Seconds, makespan+hr.MergeSeconds; got != want {
		t.Errorf("seconds %.15g != makespan+merge %.15g", got, want)
	}
	if hr.MergeBytes <= 0 || hr.MergeSeconds <= 0 {
		t.Error("grouped hybrid run priced no partial-aggregate merge")
	}
	if hr.CPUFrac <= 0 || hr.CPUFrac >= 0.5 {
		t.Errorf("resolved CPU fraction %v outside the minority-share regime", hr.CPUFrac)
	}
}

// TestHybridPureFractions pins the degenerate splits to the placements
// they collapse into: frac 1 is exactly the partitioned CPU run (same
// rows, same seconds — the single-assignment schedule short-circuits to
// the engine's own morsel run), and frac 0 with one GPU arm is the
// host-resident single-device run: kernel seconds bounded below by the
// shipment, plus the one-table merge.
func TestHybridPureFractions(t *testing.T) {
	q, _ := ByID("q1.1")
	plan := Compile(testDS, q)
	fl := fleet.Spec{GPUs: 1, Link: fleet.NVLink()}

	cpuOnly, err := plan.RunHybrid(fl, 1, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	part := RunOptions{}
	part.Partition.Partitions = 2 // RunHybrid raises to GPUs+1
	queriestest.SameRun(t, "frac-1 hybrid vs partitioned CPU", cpuOnly.Result,
		plan.RunPartitioned(EngineCPU, part))
	if cpuOnly.MergeBytes != 0 {
		t.Errorf("pure-CPU hybrid priced %d merge bytes; host merges are free", cpuOnly.MergeBytes)
	}

	gpuOnly, err := plan.RunHybrid(fl, 0, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRows(t, "frac-0 hybrid vs GPU engine", gpuOnly.Result, plan.Run(EngineGPU))
	if gpuOnly.Result.TransferBytes <= 0 {
		t.Error("pure-GPU hybrid shipped nothing; host-resident data must cross the link")
	}
	if minShip := fl.Link.TransferTime(gpuOnly.Result.TransferBytes); gpuOnly.Result.Seconds < minShip {
		t.Errorf("seconds %.12g below the shipment floor %.12g", gpuOnly.Result.Seconds, minShip)
	}
}

// TestHybridValidation mirrors the fleet validation: a hybrid run rejects
// impossible fleets and degrades gracefully when morsels run out.
func TestHybridValidation(t *testing.T) {
	q, _ := ByID("q1.1")
	plan := Compile(testDS, q)
	if _, err := plan.RunHybrid(fleet.Spec{GPUs: -1}, -1, RunOptions{}); err == nil {
		t.Error("negative fleet accepted")
	}
	if _, err := plan.RunHybrid(fleet.Spec{GPUs: fleet.MaxGPUs + 1}, -1, RunOptions{}); err == nil {
		t.Error("oversized fleet accepted")
	}
	// The schedule builders validate the fleet themselves (they are public
	// API), and RunScheduled rejects a malformed schedule outright.
	if _, _, err := plan.ScheduleHybrid(fleet.Spec{GPUs: -1}, -1, RunOptions{}); err == nil {
		t.Error("ScheduleHybrid accepted a negative fleet")
	}
	if _, err := plan.ScheduleFleet(fleet.Spec{GPUs: -1}, RunOptions{}); err == nil {
		t.Error("ScheduleFleet accepted a negative fleet")
	}
	s := plan.ScheduleEngine(EngineCPU, RunOptions{})
	s.Morsels++ // one morsel now unassigned
	if _, err := plan.RunScheduled(s); err == nil {
		t.Error("RunScheduled accepted a schedule with an unassigned morsel")
	}
	// Fractions beyond 1 clamp to the pure-CPU split.
	over, err := plan.RunHybrid(fleet.Spec{GPUs: 1}, 2, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pure, err := plan.RunHybrid(fleet.Spec{GPUs: 1}, 1, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRun(t, "frac 2 vs frac 1", over.Result, pure.Result)
	if q.GroupEstimate() <= 0 {
		t.Error("group estimate not positive; schedulers price merges with it")
	}
}

// TestHybridPrunedMorselsRideCPU: on a clustered layout a selective filter
// prunes morsels, and the split policy routes every pruned morsel to the
// CPU arm — free to skip there, and the GPU arm never ships a byte for
// them. Rows still match the monolithic run.
func TestHybridPrunedMorselsRideCPU(t *testing.T) {
	clustered := testDS.ClusterBy("orderdate")
	q, _ := ByID("q1.1") // orderdate in 1993: one year of seven
	plan := Compile(clustered, q)
	opts := RunOptions{}
	opts.Partition.Partitions = 64
	hr, err := plan.RunHybrid(fleet.Spec{GPUs: 2, Link: fleet.NVLink()}, -1, opts)
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRows(t, "clustered hybrid", hr.Result, plan.Run(EngineGPU))
	if hr.Result.Pruned == 0 {
		t.Fatal("no morsels pruned on clustered layout")
	}
	for _, er := range hr.Executors {
		if er.Kind == sched.KindGPU && er.Pruned != 0 {
			t.Errorf("GPU arm %d carried %d pruned morsels; they belong to the CPU arm", er.Device, er.Pruned)
		}
	}
}

// coldAdmit is a Residency stub that always misses but admits: the first
// touch of a column ships and pins its whole spilled range.
type coldAdmit struct{}

func (coldAdmit) Acquire(string, int64) (bool, bool) { return false, true }

// TestHybridResidency: packed hybrid runs thread the per-device residency
// caches through to the GPU arms. An admitting cold cache ships each
// spilled column's full range once; rows never change.
func TestHybridResidency(t *testing.T) {
	q, _ := ByID("q1.1")
	plan := Compile(testDS, q)
	opts := RunOptions{}
	opts.Partition.Partitions = 16
	opts.Partition.Packed = testPacked
	opts.Fleet.Residency = []Residency{coldAdmit{}}
	hr, err := plan.RunHybrid(fleet.Spec{GPUs: 1, Link: fleet.PCIe()}, -1, opts)
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRows(t, "cold-admit hybrid", hr.Result, plan.Run(EngineGPU))
	if hr.Result.TransferBytes <= 0 {
		t.Error("admitted cold run shipped nothing")
	}
	if hr.Result.ResidentCols != 0 {
		t.Errorf("cold run reported %d resident columns", hr.Result.ResidentCols)
	}

	// A fleet whose shards fit device memory spills nothing: residency
	// caches are never consulted and no interconnect bytes move.
	fr, err := plan.RunFleet(fleet.Spec{GPUs: 2, Link: fleet.PCIe()},
		RunOptions{Partition: PartitionOptions{Packed: testPacked},
			Fleet: FleetOptions{Residency: []Residency{coldAdmit{}, coldAdmit{}}}})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Result.TransferBytes != 0 || fr.Result.ResidentCols != 0 {
		t.Errorf("resident fleet touched residency state: %d bytes / %d cols",
			fr.Result.TransferBytes, fr.Result.ResidentCols)
	}
}
