package queries

import (
	"fmt"
	"strings"

	"crystal/internal/ssb"
)

// validFactCols and validDimCols are the schema the planner checks against.
var validFactCols = map[string]bool{
	"orderdate": true, "custkey": true, "partkey": true, "suppkey": true,
	"quantity": true, "discount": true, "extprice": true, "revenue": true,
	"supplycost": true,
}

var validDims = map[string][]string{
	"date":     {"year", "yearmonthnum", "weeknuminyear"},
	"customer": {"region", "nation", "city"},
	"supplier": {"region", "nation", "city"},
	"part":     {"mfgr", "category", "brand1"},
}

// Validate checks a query against the SSB schema: referenced columns exist,
// join dimensions are known, filters are well formed, and the packed group
// key has room for every payload.
func (q *Query) Validate() error {
	if q.ID == "" {
		return fmt.Errorf("queries: query has no id")
	}
	for _, f := range q.FactFilters {
		if !validFactCols[f.Col] {
			return fmt.Errorf("queries: %s filters unknown fact column %q", q.ID, f.Col)
		}
		if err := f.validate(); err != nil {
			return fmt.Errorf("queries: %s: %w", q.ID, err)
		}
	}
	for _, j := range q.Joins {
		cols, ok := validDims[j.Dim]
		if !ok {
			return fmt.Errorf("queries: %s joins unknown dimension %q", q.ID, j.Dim)
		}
		if !validFactCols[j.FactFK] {
			return fmt.Errorf("queries: %s join %s uses unknown FK %q", q.ID, j.Dim, j.FactFK)
		}
		for _, f := range j.Filters {
			if !contains(cols, f.Col) {
				return fmt.Errorf("queries: %s filters unknown %s column %q", q.ID, j.Dim, f.Col)
			}
			if err := f.validate(); err != nil {
				return fmt.Errorf("queries: %s: %w", q.ID, err)
			}
		}
		if j.Payload != "" && !contains(cols, j.Payload) {
			return fmt.Errorf("queries: %s groups by unknown %s column %q", q.ID, j.Dim, j.Payload)
		}
	}
	if n := len(q.GroupPayloads()); n > 3 {
		return fmt.Errorf("queries: %s has %d group keys; the packed key holds at most 3", q.ID, n)
	}
	return nil
}

func (f *Filter) validate() error {
	if f.In != nil {
		if len(f.In) == 0 {
			return fmt.Errorf("filter on %q has an empty IN set", f.Col)
		}
		return nil
	}
	if f.Lo > f.Hi {
		return fmt.Errorf("filter on %q has empty range [%d,%d]", f.Col, f.Lo, f.Hi)
	}
	return nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Describe renders the query as the SQL it implements, with dictionary
// codes decoded back to SSB literals where the attribute is known.
func (q *Query) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s\nSELECT %s", q.ID, q.Agg.SQL())
	for _, j := range q.GroupPayloads() {
		fmt.Fprintf(&b, ", %s.%s", j.Dim, j.Payload)
	}
	tables := []string{"lineorder"}
	for _, j := range q.Joins {
		tables = append(tables, j.Dim)
	}
	fmt.Fprintf(&b, "\nFROM %s\nWHERE 1=1", strings.Join(tables, ", "))
	for _, f := range q.FactFilters {
		fmt.Fprintf(&b, "\n  AND %s", f.SQL("lo", f.Col, nil))
	}
	for _, j := range q.Joins {
		fmt.Fprintf(&b, "\n  AND lo.%s = %s.key", j.FactFK, j.Dim)
		for _, f := range j.Filters {
			fmt.Fprintf(&b, "\n  AND %s", f.SQL(j.Dim, f.Col, decodeFor(j.Dim, f.Col)))
		}
	}
	if gps := q.GroupPayloads(); len(gps) > 0 {
		var keys []string
		for _, j := range gps {
			keys = append(keys, j.Dim+"."+j.Payload)
		}
		fmt.Fprintf(&b, "\nGROUP BY %s", strings.Join(keys, ", "))
	}
	b.WriteString(";")
	return b.String()
}

// SQL renders the aggregate expression.
func (a AggKind) SQL() string {
	switch a {
	case AggSumExtDisc:
		return "SUM(lo.extprice * lo.discount)"
	case AggSumProfit:
		return "SUM(lo.revenue - lo.supplycost)"
	default:
		return "SUM(lo.revenue)"
	}
}

// SQL renders a filter as a predicate, using decode to turn dictionary
// codes back into literals when available.
func (f *Filter) SQL(table, col string, decode func(int32) string) string {
	render := func(v int32) string {
		if decode != nil {
			return fmt.Sprintf("'%s'", decode(v))
		}
		return fmt.Sprint(v)
	}
	ref := table + "." + col
	if f.In != nil {
		var vals []string
		for _, v := range f.In {
			vals = append(vals, render(v))
		}
		return fmt.Sprintf("%s IN (%s)", ref, strings.Join(vals, ", "))
	}
	if f.Lo == f.Hi {
		return fmt.Sprintf("%s = %s", ref, render(f.Lo))
	}
	return fmt.Sprintf("%s BETWEEN %s AND %s", ref, render(f.Lo), render(f.Hi))
}

// decodeFor returns the dictionary decoder for a dimension attribute, or
// nil for plain numeric attributes.
func decodeFor(dim, col string) func(int32) string {
	switch col {
	case "region":
		return func(v int32) string { return ssb.Regions[v] }
	case "nation":
		return func(v int32) string { return ssb.Nations[v] }
	case "city":
		return ssb.CityName
	case "mfgr":
		return ssb.MfgrName
	case "category":
		return ssb.CategoryName
	case "brand1":
		return ssb.BrandName
	}
	return nil
}

// DecodedRow is one result row with its group keys decoded back to
// SQL-level values (dictionary strings where the attribute has one).
type DecodedRow struct {
	Labels []string
	Sum    int64
}

// DecodeRows renders a result's rows with group keys decoded through the
// query's payload attributes, sorted by packed key (group-by order).
func (q *Query) DecodeRows(r *Result) []DecodedRow {
	gps := q.GroupPayloads()
	rows := r.Rows()
	out := make([]DecodedRow, len(rows))
	for i, row := range rows {
		vals := UnpackGroup(row[0], len(gps))
		labels := make([]string, len(gps))
		for j, gp := range gps {
			if dec := decodeFor(gp.Dim, gp.Payload); dec != nil {
				labels[j] = dec(vals[j])
			} else {
				labels[j] = fmt.Sprint(vals[j])
			}
		}
		out[i] = DecodedRow{Labels: labels, Sum: row[1]}
	}
	return out
}
