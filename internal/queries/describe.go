package queries

import (
	"fmt"
	"strings"

	"crystal/internal/ssb"
)

// validFactCols and validDimCols are the schema the planner checks against.
var validFactCols = map[string]bool{
	"orderdate": true, "custkey": true, "partkey": true, "suppkey": true,
	"quantity": true, "discount": true, "extprice": true, "revenue": true,
	"supplycost": true,
}

var validDims = map[string][]string{
	"date":     {"year", "yearmonthnum", "weeknuminyear"},
	"customer": {"region", "nation", "city"},
	"supplier": {"region", "nation", "city"},
	"part":     {"mfgr", "category", "brand1"},
}

// Validate checks a query against the SSB schema: referenced columns exist,
// join dimensions are known, filters are well formed, and the packed group
// key has room for every payload.
func (q *Query) Validate() error {
	if q.ID == "" {
		return fmt.Errorf("queries: query has no id")
	}
	for _, f := range q.FactFilters {
		if !validFactCols[f.Col] {
			return fmt.Errorf("queries: %s filters unknown fact column %q", q.ID, f.Col)
		}
		if err := f.validate(); err != nil {
			return fmt.Errorf("queries: %s: %w", q.ID, err)
		}
	}
	for _, j := range q.Joins {
		cols, ok := validDims[j.Dim]
		if !ok {
			return fmt.Errorf("queries: %s joins unknown dimension %q", q.ID, j.Dim)
		}
		if !validFactCols[j.FactFK] {
			return fmt.Errorf("queries: %s join %s uses unknown FK %q", q.ID, j.Dim, j.FactFK)
		}
		for _, f := range j.Filters {
			if !contains(cols, f.Col) {
				return fmt.Errorf("queries: %s filters unknown %s column %q", q.ID, j.Dim, f.Col)
			}
			if err := f.validate(); err != nil {
				return fmt.Errorf("queries: %s: %w", q.ID, err)
			}
		}
		if j.Payload != "" && !contains(cols, j.Payload) {
			return fmt.Errorf("queries: %s groups by unknown %s column %q", q.ID, j.Dim, j.Payload)
		}
	}
	if n := len(q.GroupPayloads()); n > 3 {
		return fmt.Errorf("queries: %s has %d group keys; the packed key holds at most 3", q.ID, n)
	}
	if q.Aggs != nil && len(q.Aggs) == 0 {
		return fmt.Errorf("queries: %s has an empty aggregate list", q.ID)
	}
	for i, s := range q.Aggs {
		if s.Func < FuncSum || s.Func > FuncMax {
			return fmt.Errorf("queries: %s aggregate %d has unknown function %d", q.ID, i, s.Func)
		}
		if s.Expr < AggSumRevenue || s.Expr > AggSumProfit {
			return fmt.Errorf("queries: %s aggregate %d has unknown expression %d", q.ID, i, s.Expr)
		}
	}
	for i, k := range q.OrderBy {
		if k.Item >= len(q.AggList()) || k.Item < -1 {
			return fmt.Errorf("queries: %s order key %d references aggregate %d of %d", q.ID, i, k.Item, len(q.AggList()))
		}
		if k.Item < 0 && (k.Group < 0 || k.Group >= len(q.GroupPayloads())) {
			return fmt.Errorf("queries: %s order key %d references group column %d of %d", q.ID, i, k.Group, len(q.GroupPayloads()))
		}
	}
	if q.Limit < 0 {
		return fmt.Errorf("queries: %s has negative limit %d", q.ID, q.Limit)
	}
	if q.Limit > 0 && len(q.OrderBy) == 0 {
		return fmt.Errorf("queries: %s has LIMIT without ORDER BY; the result order would be undefined", q.ID)
	}
	return nil
}

func (f *Filter) validate() error {
	if f.In != nil {
		if len(f.In) == 0 {
			return fmt.Errorf("filter on %q has an empty IN set", f.Col)
		}
		return nil
	}
	if f.Lo > f.Hi {
		return fmt.Errorf("filter on %q has empty range [%d,%d]", f.Col, f.Lo, f.Hi)
	}
	return nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Describe renders the query as the SQL it implements, with dictionary
// codes decoded back to SSB literals where the attribute is known.
func (q *Query) Describe() string {
	var b strings.Builder
	aggs := q.AggList()
	sqls := make([]string, len(aggs))
	for i, s := range aggs {
		sqls[i] = s.SQL()
	}
	fmt.Fprintf(&b, "-- %s\nSELECT %s", q.ID, strings.Join(sqls, ", "))
	for _, j := range q.GroupPayloads() {
		fmt.Fprintf(&b, ", %s.%s", j.Dim, j.Payload)
	}
	tables := []string{"lineorder"}
	for _, j := range q.Joins {
		tables = append(tables, j.Dim)
	}
	fmt.Fprintf(&b, "\nFROM %s\nWHERE 1=1", strings.Join(tables, ", "))
	for _, f := range q.FactFilters {
		fmt.Fprintf(&b, "\n  AND %s", f.SQL("lo", f.Col, nil))
	}
	for _, j := range q.Joins {
		fmt.Fprintf(&b, "\n  AND lo.%s = %s.key", j.FactFK, j.Dim)
		for _, f := range j.Filters {
			fmt.Fprintf(&b, "\n  AND %s", f.SQL(j.Dim, f.Col, decodeFor(j.Dim, f.Col)))
		}
	}
	gps := q.GroupPayloads()
	if len(gps) > 0 {
		var keys []string
		for _, j := range gps {
			keys = append(keys, j.Dim+"."+j.Payload)
		}
		fmt.Fprintf(&b, "\nGROUP BY %s", strings.Join(keys, ", "))
	}
	if len(q.OrderBy) > 0 {
		var keys []string
		for _, k := range q.OrderBy {
			var ref string
			if k.Item >= 0 {
				ref = fmt.Sprint(k.Item + 1) // 1-based select-list ordinal
			} else {
				ref = gps[k.Group].Dim + "." + gps[k.Group].Payload
			}
			if k.Desc {
				ref += " DESC"
			}
			keys = append(keys, ref)
		}
		fmt.Fprintf(&b, "\nORDER BY %s", strings.Join(keys, ", "))
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, "\nLIMIT %d", q.Limit)
	}
	b.WriteString(";")
	return b.String()
}

// exprSQL renders the aggregate input expression without the function.
func (a AggKind) exprSQL() string {
	switch a {
	case AggSumExtDisc:
		return "lo.extprice * lo.discount"
	case AggSumProfit:
		return "lo.revenue - lo.supplycost"
	default:
		return "lo.revenue"
	}
}

// SQL renders the aggregate expression.
func (a AggKind) SQL() string { return "SUM(" + a.exprSQL() + ")" }

// SQL renders the aggregate (COUNT always prints as COUNT(*)).
func (s AggSpec) SQL() string {
	if s.Func == FuncCount {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", s.Func, s.Expr.exprSQL())
}

// SQL renders a filter as a predicate, using decode to turn dictionary
// codes back into literals when available.
func (f *Filter) SQL(table, col string, decode func(int32) string) string {
	render := func(v int32) string {
		if decode != nil {
			return fmt.Sprintf("'%s'", decode(v))
		}
		return fmt.Sprint(v)
	}
	ref := table + "." + col
	if f.In != nil {
		var vals []string
		for _, v := range f.In {
			vals = append(vals, render(v))
		}
		return fmt.Sprintf("%s IN (%s)", ref, strings.Join(vals, ", "))
	}
	if f.Lo == f.Hi {
		return fmt.Sprintf("%s = %s", ref, render(f.Lo))
	}
	return fmt.Sprintf("%s BETWEEN %s AND %s", ref, render(f.Lo), render(f.Hi))
}

// decodeFor returns the dictionary decoder for a dimension attribute, or
// nil for plain numeric attributes.
func decodeFor(dim, col string) func(int32) string {
	switch col {
	case "region":
		return func(v int32) string { return ssb.Regions[v] }
	case "nation":
		return func(v int32) string { return ssb.Nations[v] }
	case "city":
		return ssb.CityName
	case "mfgr":
		return ssb.MfgrName
	case "category":
		return ssb.CategoryName
	case "brand1":
		return ssb.BrandName
	}
	return nil
}

// DecodedRow is one result row with its group keys decoded back to
// SQL-level values (dictionary strings where the attribute has one). Vals
// carries every aggregate of the statement in order; Sum is Vals[0], kept
// for the single-aggregate consumers that predate multi-aggregate results.
type DecodedRow struct {
	Labels []string
	Sum    int64
	Vals   []int64
}

// DecodeRows renders a result's rows with group keys decoded through the
// query's payload attributes — in statement order for ORDER BY results,
// otherwise sorted by packed key (group-by order).
func (q *Query) DecodeRows(r *Result) []DecodedRow {
	gps := q.GroupPayloads()
	var rows []Row
	if r.Ordered != nil {
		rows = r.Ordered
	} else {
		rows = resultRows(q, r)
	}
	out := make([]DecodedRow, len(rows))
	for i, row := range rows {
		vals := UnpackGroup(row.Key, len(gps))
		labels := make([]string, len(gps))
		for j, gp := range gps {
			if dec := decodeFor(gp.Dim, gp.Payload); dec != nil {
				labels[j] = dec(vals[j])
			} else {
				labels[j] = fmt.Sprint(vals[j])
			}
		}
		out[i] = DecodedRow{Labels: labels, Sum: row.Vals[0], Vals: append([]int64(nil), row.Vals...)}
	}
	return out
}
