package queries

import (
	"strings"
	"testing"
)

// TestAggFuncStrings pins the SQL spelling of every aggregate function and
// the slot width AVG needs to merge exactly across partials.
func TestAggFuncStrings(t *testing.T) {
	want := map[AggFunc]string{
		FuncSum:   "SUM",
		FuncCount: "COUNT",
		FuncAvg:   "AVG",
		FuncMin:   "MIN",
		FuncMax:   "MAX",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("AggFunc(%d).String() = %q, want %q", f, f.String(), s)
		}
		spec := AggSpec{Func: f, Expr: AggSumRevenue}
		slots := 1
		if f == FuncAvg {
			slots = 2
		}
		if spec.Slots() != slots {
			t.Errorf("%s.Slots() = %d, want %d", s, spec.Slots(), slots)
		}
	}
}

// TestAggSpecSQL pins the rendered aggregate expressions, including the
// canonical COUNT(*) print and all three input expressions.
func TestAggSpecSQL(t *testing.T) {
	cases := []struct {
		spec AggSpec
		want string
	}{
		{AggSpec{Func: FuncSum, Expr: AggSumRevenue}, "SUM(lo.revenue)"},
		{AggSpec{Func: FuncCount, Expr: AggSumRevenue}, "COUNT(*)"},
		{AggSpec{Func: FuncAvg, Expr: AggSumExtDisc}, "AVG(lo.extprice * lo.discount)"},
		{AggSpec{Func: FuncMin, Expr: AggSumProfit}, "MIN(lo.revenue - lo.supplycost)"},
		{AggSpec{Func: FuncMax, Expr: AggSumRevenue}, "MAX(lo.revenue)"},
	}
	for _, c := range cases {
		if got := c.spec.SQL(); got != c.want {
			t.Errorf("%v.SQL() = %q, want %q", c.spec, got, c.want)
		}
	}
	for _, k := range []AggKind{AggSumRevenue, AggSumExtDisc, AggSumProfit} {
		if got := k.SQL(); !strings.HasPrefix(got, "SUM(") {
			t.Errorf("AggKind(%d).SQL() = %q, want a SUM(...) rendering", k, got)
		}
	}
}

// TestCanonicalExtendedSegments pins the cache-key encoding of the
// multi-aggregate / ORDER BY / LIMIT segments — and that a query using
// none of them keeps its exact historical key, which is what preserves
// pre-existing cache entries and benchmark baselines.
func TestCanonicalExtendedSegments(t *testing.T) {
	base := Query{ID: "k", Agg: AggSumRevenue}
	legacy := base.Canonical()
	if strings.Contains(legacy, "aggs=") || strings.Contains(legacy, "order=") || strings.Contains(legacy, "limit=") {
		t.Fatalf("legacy query grew new canonical segments: %q", legacy)
	}

	ext := base
	ext.Aggs = []AggSpec{{Func: FuncSum, Expr: AggSumRevenue}, {Func: FuncAvg, Expr: AggSumProfit}}
	ext.OrderBy = []OrderKey{{Item: 1, Desc: true}, {Item: -1, Group: 0}}
	ext.Limit = 5
	got := ext.Canonical()
	if !strings.HasPrefix(got, legacy) {
		t.Fatalf("extended canonical %q does not extend the legacy prefix %q", got, legacy)
	}
	for _, seg := range []string{";aggs=0.0,2.2", ";order=a1d,g0", ";limit=5"} {
		if !strings.Contains(got, seg) {
			t.Errorf("canonical %q missing segment %q", got, seg)
		}
	}

	// Distinct order directions and targets must never collide.
	asc := ext
	asc.OrderBy = []OrderKey{{Item: 1}, {Item: -1, Group: 0}}
	if asc.Canonical() == ext.Canonical() {
		t.Error("ASC and DESC order keys share a canonical form")
	}
}

// TestResultEqualAndCloneExtended exercises the Ordered/Aggs arms of
// Result.Equal and Result.Clone: order-sensitive comparison, every
// mismatch branch, and deep-copy independence.
func TestResultEqualAndCloneExtended(t *testing.T) {
	mk := func() *Result {
		return &Result{
			Groups: map[int64]int64{1: 10, 2: 20},
			Aggs:   map[int64][]int64{1: {10, 3}, 2: {20, 4}},
			Ordered: []Row{
				{Key: 2, Vals: []int64{20, 4}},
				{Key: 1, Vals: []int64{10, 3}},
			},
		}
	}
	r := mk()
	if !r.Equal(mk()) {
		t.Fatal("identical extended results compare unequal")
	}

	perm := mk()
	perm.Ordered[0], perm.Ordered[1] = perm.Ordered[1], perm.Ordered[0]
	if r.Equal(perm) {
		t.Error("Equal ignored the output order")
	}
	noOrder := mk()
	noOrder.Ordered = nil
	if r.Equal(noOrder) || noOrder.Equal(r) {
		t.Error("Equal treats ordered and unordered results as equal")
	}
	val := mk()
	val.Ordered[1].Vals[1] = 99
	if r.Equal(val) {
		t.Error("Equal missed an ordered aggregate value change")
	}
	width := mk()
	width.Ordered[1].Vals = width.Ordered[1].Vals[:1]
	if r.Equal(width) {
		t.Error("Equal missed an ordered row width change")
	}
	aggs := mk()
	aggs.Aggs[2][1] = 99
	if r.Equal(aggs) {
		t.Error("Equal missed an aggregate slot change")
	}
	aggKey := mk()
	delete(aggKey.Aggs, 2)
	aggKey.Aggs[3] = []int64{20, 4}
	if r.Equal(aggKey) {
		t.Error("Equal missed an aggregate key change")
	}
	noAggs := mk()
	noAggs.Aggs = nil
	if r.Equal(noAggs) {
		t.Error("Equal treats multi-aggregate and legacy results as equal")
	}

	c := r.Clone()
	if !c.Equal(r) {
		t.Fatal("clone compares unequal to its source")
	}
	c.Ordered[0].Vals[0] = -1
	c.Aggs[1][0] = -1
	c.Groups[1] = -1
	if !r.Equal(mk()) {
		t.Error("mutating the clone reached the original result")
	}
}

// TestValidateExtendedErrors walks the validation rules the multi-aggregate
// and ORDER BY surface added.
func TestValidateExtendedErrors(t *testing.T) {
	valid := Query{
		ID:   "v",
		Agg:  AggSumRevenue,
		Aggs: []AggSpec{{Func: FuncSum, Expr: AggSumRevenue}, {Func: FuncCount}},
		Joins: []JoinSpec{
			{Dim: "date", FactFK: "orderdate", Payload: "year"},
		},
		OrderBy: []OrderKey{{Item: 0, Desc: true}, {Item: -1, Group: 0}},
		Limit:   5,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("fixture query invalid: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Query)
		want string
	}{
		{"empty aggregate list", func(q *Query) { q.Aggs = []AggSpec{} }, "empty aggregate list"},
		{"unknown function", func(q *Query) { q.Aggs[0].Func = 99 }, "unknown function"},
		{"unknown expression", func(q *Query) { q.Aggs[0].Expr = 99 }, "unknown expression"},
		{"order item out of range", func(q *Query) { q.OrderBy[0].Item = 2 }, "references aggregate"},
		{"order item below -1", func(q *Query) { q.OrderBy[0].Item = -2 }, "references aggregate"},
		{"order group out of range", func(q *Query) { q.OrderBy[1].Group = 1 }, "references group column"},
		{"negative limit", func(q *Query) { q.Limit = -1 }, "negative limit"},
		{"limit without order", func(q *Query) { q.OrderBy = nil }, "LIMIT without ORDER BY"},
	}
	for _, c := range cases {
		q := valid
		q.Aggs = append([]AggSpec(nil), valid.Aggs...)
		q.OrderBy = append([]OrderKey(nil), valid.OrderBy...)
		c.mut(&q)
		err := q.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

// TestDescribeExtended pins the SQL rendering of multi-aggregate, ORDER BY
// and LIMIT clauses, and that DecodeRows emits ordered rows in statement
// order with every aggregate value attached.
func TestDescribeExtended(t *testing.T) {
	q := Query{
		ID:   "desc-ext",
		Agg:  AggSumRevenue,
		Aggs: []AggSpec{{Func: FuncSum, Expr: AggSumRevenue}, {Func: FuncAvg, Expr: AggSumRevenue}, {Func: FuncCount}},
		Joins: []JoinSpec{
			{Dim: "date", FactFK: "orderdate", Payload: "year"},
		},
		OrderBy: []OrderKey{{Item: 1, Desc: true}, {Item: -1, Group: 0}},
		Limit:   3,
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	sql := q.Describe()
	for _, frag := range []string{"SUM(lo.revenue)", "AVG(lo.revenue)", "COUNT(*)", "ORDER BY 2 DESC, date.year", "LIMIT 3"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("Describe() missing %q:\n%s", frag, sql)
		}
	}

	res := Compile(testDS, q).Run(EngineCPU)
	if res.Ordered == nil {
		t.Fatal("ordered query produced no Ordered rows")
	}
	rows := q.DecodeRows(res)
	if len(rows) != len(res.Ordered) || len(rows) == 0 {
		t.Fatalf("DecodeRows returned %d rows for %d ordered rows", len(rows), len(res.Ordered))
	}
	for i, r := range rows {
		if len(r.Vals) != 3 {
			t.Fatalf("row %d carries %d aggregate values, want 3", i, len(r.Vals))
		}
		if r.Sum != r.Vals[0] {
			t.Errorf("row %d legacy Sum %d != Vals[0] %d", i, r.Sum, r.Vals[0])
		}
		if len(r.Labels) != 1 {
			t.Fatalf("row %d carries %d labels, want 1", i, len(r.Labels))
		}
		if i > 0 && rows[i-1].Vals[1] < r.Vals[1] {
			t.Errorf("rows %d,%d not in ORDER BY 2 DESC order: %d < %d", i-1, i, rows[i-1].Vals[1], r.Vals[1])
		}
	}

	// The unordered arm of DecodeRows: same query without ORDER BY comes
	// back in packed-key (group-by) order.
	plain := q
	plain.OrderBy = nil
	plain.Limit = 0
	pres := Compile(testDS, plain).Run(EngineCPU)
	prows := plain.DecodeRows(pres)
	if len(prows) == 0 {
		t.Fatal("unordered DecodeRows returned nothing")
	}
}
