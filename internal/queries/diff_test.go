package queries

import (
	"fmt"
	"math/rand"
	"testing"

	"crystal/internal/fleet"
	"crystal/internal/queries/queriestest"
	"crystal/internal/ssb"
)

// diffDS is the differential-harness dataset: big enough that generated
// queries produce non-trivial groups (16 full tiles), small enough that
// 200 queries x 6 engines stay fast under the race detector on one core.
var diffDS = ssb.GenerateRows(32_768)

// diffPacked is diffDS's bit-packed fact encoding, shared by the packed
// fleet arms of the differential harness.
var diffPacked = diffDS.Pack()

// TestDifferentialEnginesAgree is the cross-engine differential harness:
// 200 seeded random queries over the SSB schema, every engine checked
// row-for-row against the map-based reference oracle — the first
// systematic agreement check beyond the 13 hand-written golden queries.
// Every query additionally runs on a seeded-random fleet shape ({1,2,4,8}
// GPUs × {PCIe, NVLink} × {plain, packed}) that must be row-identical to
// the monolithic single-GPU result.
func TestDifferentialEnginesAgree(t *testing.T) {
	const numQueries = 200
	r := rand.New(rand.NewSource(20260726))
	nonEmpty := 0
	for i := 0; i < numQueries; i++ {
		q := RandomQuery(r, diffDS, i, GenOptions{})
		if err := q.Validate(); err != nil {
			t.Fatalf("generator produced invalid query %s: %v\n%s", q.ID, err, q.Describe())
		}
		want := normalizeRef(q, Reference(diffDS, q))
		if len(want.Groups) > 1 || (len(want.Groups) == 1 && want.Groups[0] != 0) {
			nonEmpty++
		}
		plan := Compile(diffDS, q)
		var gpuRun *Result
		for _, e := range Engines() {
			got := plan.Run(e)
			if e == EngineGPU {
				gpuRun = got
			}
			if !got.Equal(want) {
				t.Errorf("%s disagrees with reference on %s (%d vs %d groups)\n%s",
					e, q.ID, len(got.Groups), len(want.Groups), q.Describe())
			}
			if got.Seconds <= 0 {
				t.Errorf("%s/%s: no simulated time", e, q.ID)
			}
		}
		// Partitioned execution must agree with the oracle too; rotate the
		// partition count so the harness covers odd and even splits.
		parts := []int{2, 7, 16, 64}[i%4]
		if got := plan.RunPartitioned(EngineCPU, RunOptions{Partition: PartitionOptions{Partitions: parts}}); !got.Equal(want) {
			t.Errorf("partitioned CPU (%d morsels) disagrees with reference on %s", parts, q.ID)
		}
		// Fleet execution on a seeded-random shape: row-identical to the
		// monolithic single-GPU run (and therefore to the oracle).
		gpus := []int{1, 2, 4, 8}[r.Intn(4)]
		link := fleet.Interconnects()[r.Intn(2)]
		opts := RunOptions{Partition: PartitionOptions{Partitions: parts}}
		if r.Intn(2) == 1 {
			opts.Partition.Packed = diffPacked
		}
		fr, err := plan.RunFleet(fleet.Spec{GPUs: gpus, Link: link}, opts)
		if err != nil {
			t.Fatalf("fleet run failed on %s: %v", q.ID, err)
		}
		label := fmt.Sprintf("fleet %dx%s packed=%v on %s", gpus, link.Name, opts.Partition.Packed != nil, q.ID)
		queriestest.SameRows(t, label, fr.Result, gpuRun)
		queriestest.SameRows(t, label+" (oracle)", fr.Result, want)
		// Hybrid co-execution at a seeded-random CPU fraction (plus the
		// default balanced split every fourth query): whatever the split,
		// the merged rows must be identical to the oracle.
		frac := []float64{-1, 0.25, 0.5, 0.75}[r.Intn(4)]
		hr, err := plan.RunHybrid(fleet.Spec{GPUs: gpus, Link: link}, frac, opts)
		if err != nil {
			t.Fatalf("hybrid run failed on %s: %v", q.ID, err)
		}
		hlabel := fmt.Sprintf("hybrid frac=%v %dx%s on %s", frac, gpus, link.Name, q.ID)
		queriestest.SameRows(t, hlabel, hr.Result, gpuRun)
		queriestest.SameRows(t, hlabel+" (oracle)", hr.Result, want)
	}
	// The harness is only load-bearing if the generator produces real work:
	// most queries must return at least one non-trivial row.
	if nonEmpty < numQueries/2 {
		t.Errorf("only %d/%d generated queries returned rows; generator too narrow", nonEmpty, numQueries)
	}
}

// TestDifferentialOrderedAgree extends the differential harness to the
// ORDER BY / LIMIT / multi-aggregate surface: seeded Extended queries must
// be row- AND order-identical (Result.Equal compares the Ordered slice
// position by position, every aggregate value included) across all six
// engines, partitioned CPU execution, and seeded-random fleet and hybrid
// placements. Each LIMIT query is additionally checked against its own
// unlimited twin — the top-N path (heap or truncated merge) must return
// exactly the first k rows of the full sort.
func TestDifferentialOrderedAgree(t *testing.T) {
	const numQueries = 120
	r := rand.New(rand.NewSource(20260808))
	ordered, limited, multi := 0, 0, 0
	for i := 0; i < numQueries; i++ {
		q := RandomQuery(r, diffDS, i, GenOptions{Extended: true})
		if err := q.Validate(); err != nil {
			t.Fatalf("generator produced invalid query %s: %v\n%s", q.ID, err, q.Describe())
		}
		if len(q.OrderBy) > 0 {
			ordered++
		}
		if q.Limit > 0 {
			limited++
		}
		if q.Aggs != nil {
			multi++
		}
		want := normalizeRef(q, Reference(diffDS, q))
		plan := Compile(diffDS, q)
		var gpuRun *Result
		for _, e := range Engines() {
			got := plan.Run(e)
			if e == EngineGPU {
				gpuRun = got
			}
			if !got.Equal(want) {
				t.Errorf("%s disagrees with reference on %s\n%s", e, q.ID, q.Describe())
			}
			if got.Seconds <= 0 {
				t.Errorf("%s/%s: no simulated time", e, q.ID)
			}
		}
		parts := []int{2, 7, 16, 64}[i%4]
		if got := plan.RunPartitioned(EngineCPU, RunOptions{Partition: PartitionOptions{Partitions: parts}}); !got.Equal(want) {
			t.Errorf("partitioned CPU (%d morsels) disagrees with reference on %s", parts, q.ID)
		}
		gpus := []int{1, 2, 4, 8}[r.Intn(4)]
		link := fleet.Interconnects()[r.Intn(2)]
		opts := RunOptions{Partition: PartitionOptions{Partitions: parts}}
		if r.Intn(2) == 1 {
			opts.Partition.Packed = diffPacked
		}
		fr, err := plan.RunFleet(fleet.Spec{GPUs: gpus, Link: link}, opts)
		if err != nil {
			t.Fatalf("fleet run failed on %s: %v", q.ID, err)
		}
		if !fr.Result.Equal(want) {
			t.Errorf("fleet %dx%s packed=%v returned different rows or order on %s\n%s",
				gpus, link.Name, opts.Partition.Packed != nil, q.ID, q.Describe())
		}
		queriestest.SameRows(t, fmt.Sprintf("ordered fleet vs gpu on %s", q.ID), fr.Result, gpuRun)
		frac := []float64{-1, 0.25, 0.5, 0.75}[r.Intn(4)]
		hr, err := plan.RunHybrid(fleet.Spec{GPUs: gpus, Link: link}, frac, opts)
		if err != nil {
			t.Fatalf("hybrid run failed on %s: %v", q.ID, err)
		}
		if !hr.Result.Equal(want) {
			t.Errorf("hybrid frac=%v %dx%s returned different rows or order on %s\n%s",
				frac, gpus, link.Name, q.ID, q.Describe())
		}
		// Top-N property: the limited result must be the prefix of the full
		// ordering (rowLess is total, so the prefix is unique).
		if q.Limit > 0 {
			full := q
			full.Limit = 0
			fres := Compile(diffDS, full).Run(EngineCPU)
			prefix := truncateRows(&q, fres.Ordered)
			got := plan.Run(EngineCPU).Ordered
			if len(got) != len(prefix) {
				t.Fatalf("%s: top-%d returned %d rows, full sort prefix has %d", q.ID, q.Limit, len(got), len(prefix))
			}
			for j := range got {
				if got[j].Key != prefix[j].Key {
					t.Errorf("%s: top-%d row %d is key %d, full sort has %d", q.ID, q.Limit, j, got[j].Key, prefix[j].Key)
				}
			}
		}
	}
	// The extended generator must actually exercise the new surface.
	if ordered < numQueries/4 || limited < numQueries/10 || multi < numQueries/4 {
		t.Errorf("generator too narrow: %d ordered, %d limited, %d multi-aggregate of %d",
			ordered, limited, multi, numQueries)
	}
}

// TestRandomQueryDeterministic: the same seed must reproduce the same
// query, so a differential failure is replayable from its seed alone.
func TestRandomQueryDeterministic(t *testing.T) {
	a := RandomQuery(rand.New(rand.NewSource(42)), diffDS, 0, GenOptions{})
	b := RandomQuery(rand.New(rand.NewSource(42)), diffDS, 0, GenOptions{})
	if a.Canonical() != b.Canonical() {
		t.Fatalf("same seed, different queries:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	c := RandomQuery(rand.New(rand.NewSource(43)), diffDS, 0, GenOptions{})
	if a.Canonical() == c.Canonical() {
		t.Error("different seeds produced identical queries")
	}
}
