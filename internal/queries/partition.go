package queries

import (
	"fmt"

	"crystal/internal/sim"
	"crystal/internal/ssb"
)

// Limiter bounds intra-query helper parallelism (morsel scans, GPU block
// execution). It is sim.Gate re-exported at the query layer: the serving
// layer shares one Limiter across every in-flight request so a single
// partitioned query can never monopolize the host. A nil Limiter means
// "unbounded up to GOMAXPROCS", which is the standalone (non-served)
// behavior.
type Limiter = sim.Gate

// Residency models a device-memory cache of packed fact columns for the
// coprocessor architecture: keeping hot compressed columns resident on the
// GPU, instead of re-shipping them over PCIe per query, is what makes the
// coprocessor competitive at scale. Acquire looks up the named fact column
// (bytes of packed storage): hit means it is already device-resident and
// the engine skips its PCIe transfer entirely; otherwise admitted reports
// whether the cache accepted the column — if so, the engine ships it whole
// (the transfer is what populates device memory), and if not (the column
// exceeds the cache, or the cache has moved on), the engine falls back to
// the ordinary cold transfer. Implementations must be safe for concurrent
// use; internal/serve provides the capacity-bounded LRU.
type Residency interface {
	Acquire(col string, bytes int64) (hit, admitted bool)
}

// PartitionOptions configures the zone-mapped morsel scan every placement
// runs on. The zero value means default: a monolithic single-scan run of
// the plain columns with unbounded helpers.
type PartitionOptions struct {
	// Partitions is the number of morsels the fact table is split into.
	// Values below 1 run the monolithic single-scan path with no zone maps
	// (byte-for-byte the unpartitioned execution). 1 and above partition
	// through ssb.Dataset.Partition, so even a single morsel carries a zone
	// map and can be pruned outright by an unsatisfiable filter.
	Partitions int
	// Limiter bounds helper parallelism; nil means up to GOMAXPROCS.
	Limiter Limiter
	// Packed scans the bit-packed fact encoding instead of the plain
	// columns. Rows are identical by construction — the engines decode
	// values through the encoding at scan time — while simulated seconds
	// reflect the paper's Section 5.5 asymmetry: smaller streaming reads on
	// every engine, per-element unpack arithmetic on the CPU engines (which
	// can tip a scan compute bound), and compressed PCIe transfers on the
	// coprocessor. The encoding must have been built from this plan's
	// dataset (ssb.Dataset.Pack on the same fact layout).
	Packed *ssb.PackedFact
	// Residency, set together with Packed, lets the coprocessor skip PCIe
	// transfers of device-resident packed columns. Ignored by the on-device
	// engines, by plain runs, and by multi-executor schedules (which use
	// FleetOptions.Residency instead).
	Residency Residency
}

// FleetOptions configures the multi-device placements (fleet and hybrid
// schedules). The zero value means default: no per-device residency
// caching.
type FleetOptions struct {
	// Residency, consulted on packed runs, provides one device-memory
	// residency cache per fleet device (index = device). The semantics
	// mirror the coprocessor's Residency: a hit elides the interconnect
	// shipment of the device's spilled range of the column entirely, an
	// admitted miss ships (and pins) that whole range — so a resident
	// column is always fully resident, regardless of which query's zone
	// maps pruned what — and a refused admission degrades to the ordinary
	// cold transfer of the query's unpruned spilled morsels. nil entries
	// (or a short slice) disable caching for the remaining devices.
	// Ignored by single-device runs.
	Residency []Residency
}

// RunOptions configures one execution of a compiled plan. The options are
// grouped by the layer that consumes them — Partition for the morsel scan
// every placement shares, Fleet for the multi-device placements — and the
// zero value of every group means default.
type RunOptions struct {
	Partition PartitionOptions
	Fleet     FleetOptions
	// Trace asks the run for a span tree (ScheduledResult.Trace et al.):
	// per-assignment kernel/transfer/merge spans carrying simulated
	// seconds, wall clock and bytes moved. Off by default; the untraced
	// path allocates nothing for tracing.
	Trace bool
}

// MatchesZone reports whether the filter could match any value in the zone:
// false means every row in the zone's morsel fails the filter and the
// morsel can be skipped. It must never report false for a zone containing a
// matching value (the conservative direction FuzzZoneMap pins down); it may
// report true for a morsel with no matching rows — zone maps only know
// min/max, not which values are present.
func (f *Filter) MatchesZone(z ssb.Zone) bool {
	if f.In != nil {
		for _, v := range f.In {
			if z.Contains(v) {
				return true
			}
		}
		return false
	}
	return z.Overlaps(f.Lo, f.Hi)
}

// PruneMorsels evaluates the fact filters against each morsel's zone map
// and reports, per morsel, whether it can be skipped: a morsel is prunable
// when some filter cannot match its zone. Morsels without zone maps are
// never pruned. The check reads only per-morsel metadata (two int32s per
// filter), so it is charged as host work, not device time — which is
// exactly why pruning makes selective queries cheaper without perturbing
// the simulated cost of the rows that do get scanned.
func PruneMorsels(morsels []ssb.Morsel, filters []Filter) []bool {
	pruned := make([]bool, len(morsels))
	for i, m := range morsels {
		if m.Zones == nil {
			continue
		}
		for fi := range filters {
			z, ok := m.Zones[filters[fi].Col]
			if !ok {
				continue
			}
			if !filters[fi].MatchesZone(z) {
				pruned[i] = true
				break
			}
		}
	}
	return pruned
}

// morselRun is the resolved execution extent of one partitioned run: the
// full morsel list, the per-morsel pruning verdicts, the surviving morsels
// in row order, and the parallelism limiter.
type morselRun struct {
	morsels []ssb.Morsel
	pruned  []bool
	live    []ssb.Morsel
	scanned int64 // fact rows in surviving morsels
	lim     Limiter
	// packed is the fact encoding the scan reads (nil = plain columns);
	// residency is the coprocessor's device-memory column cache.
	packed    *ssb.PackedFact
	residency Residency
}

// factReader resolves one fact column against the run's encoding: the plain
// slice, or the packed frames the engines decode through.
func (ms *morselRun) factReader(l *ssb.Lineorder, name string) colReader {
	if ms.packed != nil {
		return colReader{packed: ms.packed.Col(name)}
	}
	return colReader{plain: l.Col(name)}
}

func (ms *morselRun) prunedCount() int {
	n := 0
	for _, p := range ms.pruned {
		if p {
			n++
		}
	}
	return n
}

// stamp records the partitioning and encoding outcome on a result.
func (ms *morselRun) stamp(res *Result) {
	res.Morsels = len(ms.morsels)
	res.Pruned = ms.prunedCount()
	res.Packed = ms.packed != nil
}

// morselRun resolves opts against the plan: the monolithic path uses a
// single zoneless morsel (no Partition scan, no pruning), the partitioned
// path fetches the plan's cached morsels and applies zone-map pruning to
// the query's fact filters.
func (p *Plan) morselRun(opts RunOptions) *morselRun {
	po := opts.Partition
	if po.Packed != nil && po.Packed.Rows() != p.ds.Lineorder.Rows() {
		panic(fmt.Sprintf("queries: packed encoding built for %d fact rows, dataset has %d",
			po.Packed.Rows(), p.ds.Lineorder.Rows()))
	}
	if po.Partitions < 1 {
		all := []ssb.Morsel{{Lo: 0, Hi: p.ds.Lineorder.Rows()}}
		return &morselRun{
			morsels:   all,
			pruned:    []bool{false},
			live:      all,
			scanned:   int64(p.ds.Lineorder.Rows()),
			lim:       po.Limiter,
			packed:    po.Packed,
			residency: po.Residency,
		}
	}
	morsels := p.Morsels(po.Partitions)
	ms := &morselRun{
		morsels:   morsels,
		pruned:    PruneMorsels(morsels, p.Query.FactFilters),
		lim:       po.Limiter,
		packed:    po.Packed,
		residency: po.Residency,
	}
	ms.live = make([]ssb.Morsel, 0, len(morsels))
	for i, m := range morsels {
		if ms.pruned[i] {
			continue
		}
		ms.live = append(ms.live, m)
		ms.scanned += int64(m.Rows())
	}
	return ms
}

// RunPartitioned executes the compiled plan on the chosen engine with the
// fact table split into opts.Partition.Partitions zone-mapped morsels — a
// thin wrapper over RunScheduled with a single-executor schedule
// (ScheduleEngine). Rows are always identical to Run; simulated seconds
// are identical too whenever no morsel is pruned (morsel boundaries are
// tile-aligned, so the per-morsel traffic statistics sum exactly to the
// monolithic pass's), and strictly cheaper when zone maps skip morsels.
func (p *Plan) RunPartitioned(e Engine, opts RunOptions) *Result {
	sr, err := p.RunScheduled(p.ScheduleEngine(e, opts))
	if err != nil {
		// Unreachable: ScheduleEngine covers every morsel exactly once.
		panic("queries: invalid engine schedule: " + err.Error())
	}
	return sr.Result
}
