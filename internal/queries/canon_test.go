package queries

import "testing"

func TestCanonicalExcludesIDKeepsFilterOrder(t *testing.T) {
	q, _ := ByID("q1.1")
	renamed := q
	renamed.ID = "something-else"
	if q.Canonical() != renamed.Canonical() {
		t.Errorf("ID leaked into the canonical form:\n%s\n%s", q.Canonical(), renamed.Canonical())
	}
	// Filter order is physical: evaluation order changes the short-circuit
	// traffic the engines charge, so reordered filters must not collide
	// (text-level order freedom is normalized by the SQL binder instead).
	reordered := q
	reordered.FactFilters = []Filter{q.FactFilters[2], q.FactFilters[0], q.FactFilters[1]}
	if q.Canonical() == reordered.Canonical() {
		t.Error("different filter orders share a canonical form; served seconds would be nondeterministic")
	}
}

func TestCanonicalNormalizesInSets(t *testing.T) {
	a := Query{ID: "a", Joins: []JoinSpec{{Dim: "customer", FactFK: "custkey",
		Filters: []Filter{{Col: "city", In: []int32{7, 3}}}}}}
	b := Query{ID: "b", Joins: []JoinSpec{{Dim: "customer", FactFK: "custkey",
		Filters: []Filter{{Col: "city", In: []int32{3, 7}}}}}}
	if a.Canonical() != b.Canonical() {
		t.Error("IN-set order leaked into the canonical form")
	}
}

func TestCanonicalDistinguishesSemantics(t *testing.T) {
	base, _ := ByID("q2.1")
	seen := map[string]string{base.Canonical(): "q2.1"}
	check := func(name string, q Query) {
		t.Helper()
		c := q.Canonical()
		if prev, dup := seen[c]; dup {
			t.Errorf("%s and %s share a canonical form: %s", name, prev, c)
		}
		seen[c] = name
	}
	agg := base
	agg.Agg = AggSumProfit
	check("different aggregate", agg)

	bounds := base
	bounds.FactFilters = []Filter{{Col: "quantity", Lo: 1, Hi: 10}}
	check("extra fact filter", bounds)

	order := base
	order.Joins = []JoinSpec{base.Joins[1], base.Joins[0], base.Joins[2]}
	check("different join order", order) // join order packs group keys differently

	payload := base
	payload.Joins = append([]JoinSpec(nil), base.Joins...)
	payload.Joins[2].Payload = ""
	check("dropped payload", payload)

	for _, q := range All() {
		if q.ID != "q2.1" {
			check(q.ID, q)
		}
	}
}

func TestCanonicalTreatsNilAndEmptyFiltersAlike(t *testing.T) {
	a := Query{ID: "a", Joins: []JoinSpec{{Dim: "date", FactFK: "orderdate"}}}
	b := Query{ID: "b", Joins: []JoinSpec{{Dim: "date", FactFK: "orderdate", Filters: []Filter{}}}}
	if a.Canonical() != b.Canonical() {
		t.Error("nil vs empty filter slice changed the canonical form")
	}
}
