package queries

import (
	"fmt"
	"math/rand"
	"testing"

	"crystal/internal/fleet"
	"crystal/internal/trace"
)

// checkTraceSums pins the tracer's exactness contract against one
// scheduled run: the span tree's simulated seconds and byte attributions
// must reproduce the ScheduledResult's totals bit-for-bit — no tolerance,
// because the tracer copies the runner's own values and recomputes
// overlapped terms through the same deterministic bandwidth model.
func checkTraceSums(t *testing.T, label string, sr *ScheduledResult) {
	t.Helper()
	run := sr.Trace
	if run == nil {
		t.Fatalf("%s: traced run returned no span tree", label)
	}
	if err := trace.Verify(run); err != nil {
		t.Errorf("%s: %v", label, err)
	}
	if run.Sim != sr.Result.Seconds {
		t.Errorf("%s: run span sim %g != Result.Seconds %g", label, run.Sim, sr.Result.Seconds)
	}
	var execSum float64
	for _, er := range sr.Executors {
		execSum += er.Seconds
	}
	if got := run.SumSim(trace.PhaseExecute); got != execSum {
		t.Errorf("%s: execute span sims sum to %g, executors to %g", label, got, execSum)
	}
	if got := run.SumBytes(trace.PhaseTransfer); got != sr.Result.TransferBytes {
		t.Errorf("%s: transfer span bytes %d != Result.TransferBytes %d",
			label, got, sr.Result.TransferBytes)
	}
	execs := 0
	for _, c := range run.Children {
		if c.Phase == trace.PhaseExecute {
			execs++
		}
	}
	if execs != len(sr.Executors) {
		t.Errorf("%s: %d execute spans for %d executors", label, execs, len(sr.Executors))
	}
	if m := run.Child(trace.PhaseMerge); m != nil {
		if m.Bytes != sr.MergeBytes || m.Sim != sr.MergeSeconds {
			t.Errorf("%s: merge span (%d bytes, %g s) != result (%d, %g)",
				label, m.Bytes, m.Sim, sr.MergeBytes, sr.MergeSeconds)
		}
	} else if sr.MergeBytes != 0 {
		t.Errorf("%s: %d merge bytes metered but no merge span", label, sr.MergeBytes)
	}
	if run.Child(trace.PhaseSchedule) == nil {
		t.Errorf("%s: run span has no schedule child", label)
	}
	// ORDER BY runs carry a sort span whose sort-pass children sum to it
	// bit-for-bit (the same left-to-right accumulation the runner performs);
	// unordered runs must not grow one.
	if s := run.Child(trace.PhaseSort); s != nil {
		if sr.Result.Ordered == nil {
			t.Errorf("%s: sort span on an unordered result", label)
		}
		var sum float64
		for _, c := range s.Children {
			if c.Phase != trace.PhaseSortPass {
				t.Errorf("%s: sort span has a %s child", label, c.Phase)
			}
			sum += c.Sim
		}
		if sum != s.Sim {
			t.Errorf("%s: sort passes sum to %g, sort span says %g", label, sum, s.Sim)
		}
	} else if sr.Result.Ordered != nil {
		t.Errorf("%s: ordered result but no sort span", label)
	}
}

// TestTraceSumInvariants is the trace-sum differential harness: 50 seeded
// random queries drawn over the full surface (ORDER BY / LIMIT /
// multi-aggregate included), each run traced on every placement the
// scheduler offers — single-engine CPU/GPU, the explicit-transfer
// coprocessor, a multi-GPU fleet, and the hybrid CPU+GPU split — asserting
// that leaf span seconds sum to the Result totals (sort passes included)
// and span byte attributions sum to the metered bytes, exactly.
func TestTraceSumInvariants(t *testing.T) {
	const numQueries = 50
	r := rand.New(rand.NewSource(20260808))
	ordered := 0
	for i := 0; i < numQueries; i++ {
		q := RandomQuery(r, diffDS, i, GenOptions{Extended: true})
		if len(q.OrderBy) > 0 {
			ordered++
		}
		plan := Compile(diffDS, q)
		opts := RunOptions{Trace: true, Partition: PartitionOptions{Partitions: []int{2, 7, 16, 64}[i%4]}}
		if i%2 == 1 {
			opts.Partition.Packed = diffPacked
		}

		for _, e := range []Engine{EngineCPU, EngineGPU, EngineCoproc} {
			sr, err := plan.RunScheduled(plan.ScheduleEngine(e, opts))
			if err != nil {
				t.Fatalf("%s/%s: %v", e, q.ID, err)
			}
			checkTraceSums(t, fmt.Sprintf("%s/%s", e, q.ID), sr)
		}

		gpus := []int{1, 2, 4, 8}[r.Intn(4)]
		link := fleet.Interconnects()[r.Intn(2)]
		spec := fleet.Spec{GPUs: gpus, Link: link}
		fs, err := plan.ScheduleFleet(spec, opts)
		if err != nil {
			t.Fatalf("fleet schedule on %s: %v", q.ID, err)
		}
		sr, err := plan.RunScheduled(fs)
		if err != nil {
			t.Fatalf("fleet run on %s: %v", q.ID, err)
		}
		checkTraceSums(t, fmt.Sprintf("fleet %dx%s/%s", gpus, link.Name, q.ID), sr)

		hs, frac, err := plan.ScheduleHybrid(spec, -1, opts)
		if err != nil {
			t.Fatalf("hybrid schedule on %s: %v", q.ID, err)
		}
		sr, err = plan.RunScheduled(hs)
		if err != nil {
			t.Fatalf("hybrid run on %s: %v", q.ID, err)
		}
		checkTraceSums(t, fmt.Sprintf("hybrid frac=%.2f/%s", frac, q.ID), sr)
	}
	if ordered < numQueries/4 {
		t.Errorf("only %d/%d traced queries had ORDER BY; sort spans under-covered", ordered, numQueries)
	}
}

// TestTraceOffAllocatesNothing: with RunOptions.Trace unset (the default)
// no placement returns a span tree — the observability layer must be
// invisible unless asked for.
func TestTraceOffReturnsNoSpans(t *testing.T) {
	plan := Compile(diffDS, RandomQuery(rand.New(rand.NewSource(7)), diffDS, 0, GenOptions{}))
	opts := RunOptions{Partition: PartitionOptions{Partitions: 4}}
	sr, err := plan.RunScheduled(plan.ScheduleEngine(EngineCPU, opts))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Trace != nil {
		t.Error("untraced engine run returned a span tree")
	}
	fr, err := plan.RunFleet(fleet.Spec{GPUs: 2, Link: fleet.Interconnects()[0]}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Trace != nil {
		t.Error("untraced fleet run returned a span tree")
	}
	hr, err := plan.RunHybrid(fleet.Spec{GPUs: 2, Link: fleet.Interconnects()[0]}, -1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Trace != nil {
		t.Error("untraced hybrid run returned a span tree")
	}
}

// TestTracedRunsMatchUntraced: tracing is observability only — a traced
// run's merged rows and simulated totals must be identical to the
// untraced run of the same schedule.
func TestTracedRunsMatchUntraced(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	q := RandomQuery(r, diffDS, 3, GenOptions{})
	plan := Compile(diffDS, q)
	base := RunOptions{Partition: PartitionOptions{Partitions: 8}}
	traced := base
	traced.Trace = true

	spec := fleet.Spec{GPUs: 4, Link: fleet.Interconnects()[1]}
	fr0, err := plan.RunFleet(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	fr1, err := plan.RunFleet(spec, traced)
	if err != nil {
		t.Fatal(err)
	}
	if fr1.Trace == nil {
		t.Fatal("traced fleet run returned no span tree")
	}
	if !fr1.Result.Equal(fr0.Result) || fr1.Result.Seconds != fr0.Result.Seconds {
		t.Error("tracing changed the fleet result")
	}

	hr0, err := plan.RunHybrid(spec, 0.5, base)
	if err != nil {
		t.Fatal(err)
	}
	hr1, err := plan.RunHybrid(spec, 0.5, traced)
	if err != nil {
		t.Fatal(err)
	}
	if hr1.Trace == nil {
		t.Fatal("traced hybrid run returned no span tree")
	}
	if !hr1.Result.Equal(hr0.Result) || hr1.Result.Seconds != hr0.Result.Seconds {
		t.Error("tracing changed the hybrid result")
	}
}
