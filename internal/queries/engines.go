package queries

import (
	"crystal/internal/device"
	"crystal/internal/pack"
	"crystal/internal/ssb"
)

// Engine identifies one of the evaluated systems (Figures 3 and 16).
type Engine string

// The engines of the Section 5 evaluation.
const (
	EngineGPU     Engine = "Standalone GPU" // tile-based Crystal kernels
	EngineCPU     Engine = "Standalone CPU" // vectorized CPU implementation
	EngineHyper   Engine = "Hyper (CPU)"    // compiled push-based, scalar
	EngineMonet   Engine = "MonetDB (CPU)"  // operator-at-a-time, materializing
	EngineOmnisci Engine = "Omnisci (GPU)"  // independent-threads GPU kernels
	EngineCoproc  Engine = "GPU Coprocessor"
)

// Engines lists all engines in report order.
func Engines() []Engine {
	return []Engine{EngineHyper, EngineCPU, EngineMonet, EngineOmnisci, EngineGPU, EngineCoproc}
}

// Run executes query q on the chosen engine, compiling a fresh plan.
//
// Deprecated: Run is the one compatibility shim kept from the pre-Plan
// top-level API. Compile once and use the Plan methods (Plan.Run,
// Plan.RunPartitioned, Plan.RunFleet, Plan.RunHybrid, Plan.RunMultiGPU)
// instead: they reuse the built hash tables across executions and expose
// the scheduled run paths.
func Run(ds *ssb.Dataset, q Query, e Engine) *Result {
	return Compile(ds, q).Run(e)
}

// Per-element compute costs (scalar-equivalent cycles) of the CPU engines.
// The standalone CPU engine is vectorized (Polychroniou-style); the
// Hyper stand-in compiles tight scalar loops — efficient but without SIMD
// predicate evaluation or vectorized probes, which is where the paper sees
// its 1.17x average gap (Section 5.2: "We believe Hyper is missing
// vectorization opportunities and using a different implementation of hash
// tables").
const (
	cpuFilterCycles = 1.0
	cpuProbeCycles  = 1.5
	cpuAggCycles    = 2.0

	hyperFilterCycles = 6.0
	hyperProbeCycles  = 4.0
	hyperAggCycles    = 4.0

	// hyperProbeFactor inflates Hyper's probe count: its hash tables chain
	// buckets rather than probing linearly, costing extra dependent
	// accesses per lookup (Section 5.2: "a different implementation of
	// hash tables").
	hyperProbeFactor = 1.35

	monetOpCycles = 4.0
)

// chargeBuilds prices the hash-table build phases on a CPU-like device.
func chargeBuilds(clk *device.Clock, builds []buildInfo) {
	for i := range builds {
		b := &builds[i]
		pass := &device.Pass{Label: "build " + b.spec.Dim, BytesRead: b.bytesRead}
		pass.AddProbes(device.ProbeSet{Count: b.inserted, StructBytes: b.ht.Bytes(), Writes: true})
		clk.Charge(pass)
	}
}

// RunCPU executes the compiled plan on the paper's "Standalone CPU": a
// vectorized, pipelined, multi-core implementation equivalent to the
// Crystal GPU kernels (Section 5.2). One pass over the fact table
// evaluates filters with SIMD predicates, probes the join hash tables, and
// aggregates into thread-local tables merged at the end.
func (p *Plan) RunCPU() *Result { return p.runCPU(p.morselRun(RunOptions{})) }

func (p *Plan) runCPU(ms *morselRun) *Result {
	clk := device.NewClock(device.I76900())
	chargeBuilds(clk, p.builds)
	res, st := runPipelineMorsels(p.ds, p.Query, p.builds, ms)
	clk.Charge(cpuProbePass(st, p.builds, p.Query, cpuFilterCycles, cpuProbeCycles, cpuAggCycles))
	res.Seconds = clk.Seconds()
	ms.stamp(res)
	return res
}

// RunHyper executes the compiled plan on the Hyper stand-in: the same
// pipelined push-based execution as the Standalone CPU, but with scalar
// predicate evaluation and tuple-at-a-time hash probes.
func (p *Plan) RunHyper() *Result { return p.runHyper(p.morselRun(RunOptions{})) }

func (p *Plan) runHyper(ms *morselRun) *Result {
	clk := device.NewClock(device.I76900())
	chargeBuilds(clk, p.builds)
	res, st := runPipelineMorsels(p.ds, p.Query, p.builds, ms)
	pass := cpuProbePass(st, p.builds, p.Query, hyperFilterCycles, hyperProbeCycles, hyperAggCycles)
	for i := range pass.Probes {
		pass.Probes[i].Count = int64(float64(pass.Probes[i].Count) * hyperProbeFactor)
	}
	res.Seconds = clk.Seconds() + clk.Spec().PassTime(pass)
	ms.stamp(res)
	return res
}

// cpuProbePass derives the CPU probe-phase traffic from the pipeline
// statistics: column reads are the 64 B lines actually touched (of the
// packed layout when the run scanned the compressed encoding), hash probes
// are random accesses into each table's footprint, and probes of multi-join
// pipelines are dependent (Section 5.3 latency wall). Packed runs
// additionally pay pack.UnpackCyclesPerElem of register arithmetic per
// decoded value — with only ~25 Gcycles/s against 53 GBps this is what can
// tip a CPU scan from bandwidth bound to compute bound, the asymmetry that
// makes packing a clear win only on the GPU (Section 5.5).
func cpuProbePass(st *pipeStats, builds []buildInfo, q Query, filterCyc, probeCyc, aggCyc float64) *device.Pass {
	pass := &device.Pass{Label: "probe pipeline (cpu)"}
	seen := map[string]bool{}
	for _, col := range st.colOrder {
		if seen[col] {
			continue
		}
		seen[col] = true
		pass.BytesRead += st.lines64[col] * 64
	}
	dependent := len(q.Joins) >= 2
	for ji := range builds {
		pass.AddProbes(device.ProbeSet{
			Count:       st.probes[ji],
			StructBytes: builds[ji].ht.Bytes(),
			Dependent:   dependent,
		})
	}
	// Thread-local aggregation tables are small and cache resident.
	pass.AddProbes(device.ProbeSet{Count: st.out, StructBytes: int64(aggEstimate(q)) * aggRowBytes(&q)})
	var cycles float64
	for _, e := range st.evals {
		cycles += filterCyc * float64(e)
	}
	for _, p := range st.probes {
		cycles += probeCyc * float64(p)
	}
	cycles += aggCyc * float64(st.out)
	if st.packed {
		cycles += pack.UnpackCyclesPerElem * float64(st.decoded(q))
	}
	pass.ComputeCycles = cycles
	// One global-cursor style atomic per vector of 1024 entries.
	pass.AtomicOps = st.rows / 1024
	pass.BytesWritten = int64(aggEstimate(q)) * aggRowBytes(&q)
	return pass
}

// RunMonet executes the compiled plan on the MonetDB stand-in:
// operator-at-a-time execution with full materialization between operators
// (Section 2.2). Each selection scans its entire column and materializes a
// candidate list; each join reads the candidate list back, gathers the
// foreign-key column at random, probes, and materializes again; the
// aggregate gathers its value columns through the final candidate list.
// Zone-pruned morsels drop out of every operator's scan, but random
// gathers still address the full column footprint.
func (pl *Plan) RunMonet() *Result { return pl.runMonet(pl.morselRun(RunOptions{})) }

func (pl *Plan) runMonet(ms *morselRun) *Result {
	q, builds := pl.Query, pl.builds
	clk := device.NewClock(device.I76900())
	chargeBuilds(clk, builds)
	res, st := runPipelineMorsels(pl.ds, q, builds, ms)

	// Per column, colScanBytes is what a full-column operator scan reads
	// (surviving morsels only; packed bytes on the compressed encoding) and
	// colFootprint the resident footprint that prices the data-dependent
	// gathers below. A packed operator decodes each value it materializes,
	// which on this CPU costs pack.UnpackCyclesPerElem on top of the
	// interpreter's per-element work; intermediates (candidate lists,
	// payloads) stay plain 4-byte columns.
	unpack := 0.0
	if st.packed {
		unpack = pack.UnpackCyclesPerElem
	}
	in := st.rows
	stage := 0
	for i := range q.FactFilters {
		p := &device.Pass{Label: "monet select " + q.FactFilters[i].Col}
		p.BytesRead = st.colScanBytes(q.FactFilters[i].Col) // full column scan, no short-circuit
		if i > 0 {
			p.BytesRead += in * 4 // read previous candidate list
			// Gather through the candidate list instead of scanning when it
			// is sparse: MonetDB still reads whole BATs, so keep full scan.
		}
		out := st.alive[stage]
		p.BytesWritten = out * 4 // materialize candidate list
		p.ComputeCycles = (monetOpCycles + unpack) * float64(st.rows)
		clk.Charge(p)
		in = out
		stage++
	}
	for ji := range q.Joins {
		p := &device.Pass{Label: "monet join " + q.Joins[ji].Dim}
		p.BytesRead = in * 4 // candidate list
		// Positional gather of the FK column through the candidate list and
		// the hash probe both chase data-dependent addresses; MonetDB's
		// interpreter does not software-pipeline or prefetch them, so they
		// hit the same latency wall as the pipelined engine's probes.
		p.AddProbes(device.ProbeSet{Count: in, StructBytes: st.colFootprint(q.Joins[ji].FactFK), Dependent: true})
		p.AddProbes(device.ProbeSet{Count: st.probes[ji], StructBytes: builds[ji].ht.Bytes(), Dependent: true})
		out := st.alive[stage]
		p.BytesWritten = out * 8 // candidate list + payload column
		p.ComputeCycles = (monetOpCycles + unpack) * float64(in)
		clk.Charge(p)
		in = out
		stage++
	}
	agg := &device.Pass{Label: "monet aggregate"}
	agg.BytesRead = in * int64(4+4*len(q.GroupPayloads()))
	for _, c := range q.AggColumns() {
		agg.AddProbes(device.ProbeSet{Count: in, StructBytes: st.colFootprint(c), Dependent: true})
	}
	agg.AddProbes(device.ProbeSet{Count: in, StructBytes: int64(aggEstimate(q)) * aggRowBytes(&q), Dependent: true})
	agg.ComputeCycles = (monetOpCycles + unpack*float64(len(q.AggColumns()))) * float64(in)
	agg.BytesWritten = int64(aggEstimate(q)) * aggRowBytes(&q)
	clk.Charge(agg)

	res.Seconds = clk.Seconds()
	ms.stamp(res)
	return res
}

// RunOmnisci executes the compiled plan on the Omnisci stand-in: the
// working set lives on the GPU (as in the standalone engine), but each
// operator runs as its own independent-threads kernel in the Figure 4(a)
// style — per-operator materialization, a second read for the offset
// computation, uncoalesced scatter writes, and per-match atomic cursor
// updates. Section 5.2 measures this style ~16x slower than the tile-based
// kernels.
func (pl *Plan) RunOmnisci() *Result { return pl.runOmnisci(pl.morselRun(RunOptions{})) }

func (pl *Plan) runOmnisci(ms *morselRun) *Result {
	q, builds := pl.Query, pl.builds
	clk := device.NewClock(device.V100())
	// Build phases are identical to the standalone GPU engine.
	for i := range builds {
		b := &builds[i]
		pass := &device.Pass{Label: "build " + b.spec.Dim, BytesRead: b.bytesRead, Kernels: 1}
		pass.AddProbes(device.ProbeSet{Count: b.inserted, StructBytes: b.ht.Bytes(), Writes: true})
		clk.Charge(pass)
	}
	res, st := runPipelineMorsels(pl.ds, q, builds, ms)

	// Packed runs shrink every operator's column scan and gather footprint;
	// the unpack arithmetic is absorbed by the GPU's compute headroom, as in
	// the standalone engine.
	in := st.rows
	stage := 0
	for i := range q.FactFilters {
		out := st.alive[stage]
		p := &device.Pass{Label: "omnisci select " + q.FactFilters[i].Col, Kernels: 3}
		p.BytesRead = 2 * st.colScanBytes(q.FactFilters[i].Col) // count pass + write pass (Figure 4a)
		if i > 0 {
			p.BytesRead += 2 * in * 4
		}
		p.RandomWrites = out // uncoalesced per-thread writes
		p.AtomicOps = out    // per-match cursor updates
		clk.Charge(p)
		in = out
		stage++
	}
	for ji := range q.Joins {
		out := st.alive[stage]
		p := &device.Pass{Label: "omnisci join " + q.Joins[ji].Dim, Kernels: 2}
		p.BytesRead = in * 4
		p.AddProbes(device.ProbeSet{Count: in, StructBytes: st.colFootprint(q.Joins[ji].FactFK)}) // gather FK
		p.AddProbes(device.ProbeSet{Count: st.probes[ji], StructBytes: builds[ji].ht.Bytes()})
		p.RandomWrites = out * 2 // row ids + payload, uncoalesced
		p.AtomicOps = out
		clk.Charge(p)
		in = out
		stage++
	}
	agg := &device.Pass{Label: "omnisci aggregate", Kernels: 1}
	agg.BytesRead = in * int64(4+4*len(q.GroupPayloads()))
	for _, c := range q.AggColumns() {
		agg.AddProbes(device.ProbeSet{Count: in, StructBytes: st.colFootprint(c)})
	}
	agg.AddProbes(device.ProbeSet{Count: in, StructBytes: int64(aggEstimate(q)) * aggRowBytes(&q)})
	agg.AtomicOps = in // one global atomic per aggregated row
	clk.Charge(agg)

	res.Seconds = clk.Seconds()
	ms.stamp(res)
	return res
}

// RunCoprocessor executes the compiled plan with the tile-based GPU
// kernels, but in the coprocessor architecture of Section 3.1: the
// referenced fact columns must first cross PCIe. With perfect overlap of
// transfer and execution the runtime is the maximum of the two, and since
// PCIe bandwidth is far below the GPU's memory bandwidth, the transfer
// dominates — which is why the coprocessor model cannot beat a decent CPU
// implementation (Figure 3). Packed runs ship compressed bytes instead of
// plain ones, and a Residency cache lets repeated queries skip the
// transfer of device-resident packed columns entirely — the two levers
// that make the coprocessor competitive.
func (pl *Plan) RunCoprocessor() *Result { return pl.runCoprocessor(pl.morselRun(RunOptions{})) }

func (pl *Plan) runCoprocessor(ms *morselRun) *Result {
	q := pl.Query
	res := pl.runGPU(ms)
	cols := q.ReferencedFactColumns()

	// Zone maps live on the host, so pruned morsels are never shipped: only
	// surviving fact rows cross PCIe (plus the replicated dimensions).
	// Packed runs ship the surviving frames' packed bytes instead; with a
	// residency cache, an admitted miss ships (and pins) the whole packed
	// column so that a resident column is always fully resident, a hit
	// ships nothing, and a refused admission (column larger than the
	// device, cache gone stale) degrades to the ordinary cold transfer.
	var bytes int64
	resident := 0
	for _, c := range cols {
		if ms.packed == nil {
			bytes += ms.scanned * 4
			continue
		}
		fr := ms.packed.Col(c)
		liveBytes := func() int64 {
			var b int64
			for _, m := range ms.live {
				b += fr.BytesRange(m.Lo, m.Hi)
			}
			return b
		}
		if ms.residency != nil {
			full := fr.Bytes()
			switch hit, admitted := ms.residency.Acquire(c, full); {
			case hit:
				resident++
			case admitted:
				bytes += full
			default:
				bytes += liveBytes()
			}
			continue
		}
		bytes += liveBytes()
	}
	for _, j := range q.Joins {
		d := DimTable(pl.ds, j.Dim)
		bytes += int64(d.Rows()) * int64(1+len(j.Filters)+btoi(j.Payload != "")) * 4
	}
	res.TransferBytes = bytes
	res.ResidentCols = resident
	transfer := device.TransferTime(bytes)
	exec := res.Seconds
	res.KernelSeconds = exec
	if transfer > exec {
		res.Seconds = transfer
	}
	return res
}
