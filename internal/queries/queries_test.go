package queries

import (
	"testing"

	"crystal/internal/ssb"
)

var testDS = ssb.GenerateRows(200_000)

func TestAllThirteenQueriesDefined(t *testing.T) {
	qs := All()
	if len(qs) != 13 {
		t.Fatalf("got %d queries, want 13", len(qs))
	}
	want := []string{"q1.1", "q1.2", "q1.3", "q2.1", "q2.2", "q2.3", "q3.1", "q3.2", "q3.3", "q3.4", "q4.1", "q4.2", "q4.3"}
	for i, q := range qs {
		if q.ID != want[i] {
			t.Errorf("query %d = %s, want %s", i, q.ID, want[i])
		}
	}
	if _, err := ByID("q2.1"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("q9.9"); err == nil {
		t.Error("unknown query id accepted")
	}
}

func TestFilterMatch(t *testing.T) {
	r := Filter{Lo: 5, Hi: 10}
	if !r.Match(5) || !r.Match(10) || r.Match(4) || r.Match(11) {
		t.Error("range filter wrong")
	}
	s := Filter{In: []int32{3, 7}}
	if !s.Match(3) || !s.Match(7) || s.Match(5) {
		t.Error("set filter wrong")
	}
}

func TestGroupPacking(t *testing.T) {
	vals := []int32{1997, 423, 88}
	key := PackGroup(vals)
	got := UnpackGroup(key, 3)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("unpack = %v, want %v", got, vals)
		}
	}
	if PackGroup(nil) != 0 {
		t.Error("empty group should pack to 0")
	}
}

func TestAggKinds(t *testing.T) {
	if got := AggSumRevenue.Eval([]int32{42}); got != 42 {
		t.Errorf("revenue agg = %d", got)
	}
	if got := AggSumExtDisc.Eval([]int32{100, 3}); got != 300 {
		t.Errorf("extdisc agg = %d", got)
	}
	if got := AggSumProfit.Eval([]int32{100, 60}); got != 40 {
		t.Errorf("profit agg = %d", got)
	}
	if len(AggSumRevenue.Columns()) != 1 || len(AggSumExtDisc.Columns()) != 2 {
		t.Error("agg columns wrong")
	}
}

func TestReferenceProducesGroups(t *testing.T) {
	q, _ := ByID("q2.1")
	res := Reference(testDS, q)
	if len(res.Groups) == 0 {
		t.Fatal("q2.1 reference returned no groups")
	}
	// Group payloads pack in join order: (p_brand1, d_year).
	for k := range res.Groups {
		vals := UnpackGroup(k, 2)
		if vals[0]/ssb.BrandsPerCat != ssb.CategoryCode("MFGR#12") {
			t.Fatalf("group brand %d outside category", vals[0])
		}
		if vals[1] < 1992 || vals[1] > 1998 {
			t.Fatalf("group year %d out of range", vals[1])
		}
	}
}

// TestEnginesMatchReference is the cross-engine validation invariant of
// DESIGN.md: every engine must return identical rows for all 13 queries.
func TestEnginesMatchReference(t *testing.T) {
	for _, q := range All() {
		want := Reference(testDS, q)
		for _, e := range Engines() {
			res := Run(testDS, q, e)
			if res.QueryID != q.ID {
				t.Errorf("%s/%s: wrong query id %s", e, q.ID, res.QueryID)
			}
			if !res.Equal(normalizeRef(q, want)) {
				t.Errorf("%s disagrees with reference on %s: %d vs %d groups",
					e, q.ID, len(res.Groups), len(want.Groups))
			}
			if res.Seconds <= 0 {
				t.Errorf("%s/%s: no simulated time", e, q.ID)
			}
		}
	}
}

func normalizeRef(q Query, r *Result) *Result {
	if len(q.GroupPayloads()) == 0 && len(r.Groups) == 0 {
		n := &Result{QueryID: r.QueryID, Groups: map[int64]int64{0: 0}}
		return n
	}
	return r
}

func TestResultRowsSortedAndEqual(t *testing.T) {
	r := &Result{Groups: map[int64]int64{5: 50, 1: 10, 3: 30}}
	rows := r.Rows()
	if len(rows) != 3 || rows[0][0] != 1 || rows[2][0] != 5 {
		t.Errorf("rows not sorted: %v", rows)
	}
	o := &Result{Groups: map[int64]int64{5: 50, 1: 10, 3: 30}}
	if !r.Equal(o) {
		t.Error("equal results reported unequal")
	}
	o.Groups[5] = 51
	if r.Equal(o) {
		t.Error("unequal results reported equal")
	}
	if r.Equal(&Result{Groups: map[int64]int64{1: 10}}) {
		t.Error("different sizes reported equal")
	}
	r.Seconds = 0.5
	if r.Milliseconds() != 500 {
		t.Error("ms conversion")
	}
}

func TestGPUFasterThanCPUOnEveryQuery(t *testing.T) {
	for _, q := range All() {
		gpu := Compile(testDS, q).RunGPU()
		cpu := Compile(testDS, q).RunCPU()
		if gpu.Seconds >= cpu.Seconds {
			t.Errorf("%s: GPU (%.6f) not faster than CPU (%.6f)", q.ID, gpu.Seconds, cpu.Seconds)
		}
	}
}

func TestEngineRelativeOrder(t *testing.T) {
	// Architecture sanity on a multi-join query: standalone CPU beats the
	// Hyper and MonetDB stand-ins; the tiled GPU beats the Omnisci
	// stand-in; and the coprocessor is slower than the standalone GPU.
	//
	// MonetDB's handicap (materialized gathers) only bites once the fact
	// columns outgrow the L3 cache, so this test needs a full SF-1 fact
	// table (24 MB per column), not the small shared dataset.
	if testing.Short() {
		t.Skip("needs SF-1 dataset")
	}
	big := ssb.Generate(1)
	q, _ := ByID("q2.1")
	times := map[Engine]float64{}
	for _, e := range Engines() {
		times[e] = Run(big, q, e).Seconds
	}
	if times[EngineCPU] >= times[EngineHyper] {
		t.Errorf("CPU (%.6f) should beat Hyper stand-in (%.6f)", times[EngineCPU], times[EngineHyper])
	}
	if times[EngineCPU] >= times[EngineMonet] {
		t.Errorf("CPU (%.6f) should beat MonetDB stand-in (%.6f)", times[EngineCPU], times[EngineMonet])
	}
	if times[EngineGPU] >= times[EngineOmnisci] {
		t.Errorf("GPU (%.6f) should beat Omnisci stand-in (%.6f)", times[EngineGPU], times[EngineOmnisci])
	}
	if times[EngineGPU] >= times[EngineCoproc] {
		t.Errorf("standalone GPU (%.6f) should beat coprocessor (%.6f)", times[EngineGPU], times[EngineCoproc])
	}
}

func TestCoprocessorBoundByPCIe(t *testing.T) {
	// Section 3.1: the coprocessor runtime is lower bounded by shipping the
	// referenced columns over PCIe.
	q, _ := ByID("q1.1")
	res := Compile(testDS, q).RunCoprocessor()
	// q1.1 references 4 fact columns.
	minTransfer := float64(4*4*testDS.Lineorder.Rows()) / 12.8e9
	if res.Seconds < minTransfer {
		t.Errorf("coprocessor %.6fs below PCIe floor %.6fs", res.Seconds, minTransfer)
	}
}

func TestPipelineStatsSanity(t *testing.T) {
	q, _ := ByID("q2.1")
	builds := buildTables(testDS, q)
	if len(builds) != 3 {
		t.Fatalf("builds = %d", len(builds))
	}
	// Supplier join is filter-only (key-only table); part carries brand.
	if builds[0].ht.Bytes() != int64(builds[0].ht.Capacity())*4 {
		t.Error("supplier table should be key-only")
	}
	if builds[1].spec.Payload != "brand1" {
		t.Error("part payload wrong")
	}
	// Roughly 1/5 of suppliers are AMERICA.
	frac := float64(builds[0].inserted) / float64(builds[0].dimRows)
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("supplier filter selectivity = %.3f", frac)
	}
	// Part category filter: 1/25.
	frac = float64(builds[1].inserted) / float64(builds[1].dimRows)
	if frac < 0.02 || frac > 0.06 {
		t.Errorf("part filter selectivity = %.3f", frac)
	}

	_, st := runPipeline(testDS, q, builds)
	if st.rows != int64(testDS.Lineorder.Rows()) {
		t.Error("stats rows wrong")
	}
	// Every fact row probes the first join.
	if st.probes[0] != st.rows {
		t.Errorf("first join probes = %d, want %d", st.probes[0], st.rows)
	}
	// Survivors shrink monotonically.
	prev := st.rows
	for i, a := range st.alive {
		if a > prev {
			t.Fatalf("stage %d grew: %d > %d", i, a, prev)
		}
		prev = a
	}
	if st.out != st.alive[len(st.alive)-1] {
		t.Error("out != final alive")
	}
	// Line counts: first column read in full.
	first := q.Joins[0].FactFK
	wantLines := (st.rows + 15) / 16
	if st.lines64[first] < wantLines-8 {
		t.Errorf("first column lines = %d, want ~%d", st.lines64[first], wantLines)
	}
	// Later columns touch fewer or equal lines.
	if st.lines64["revenue"] > st.lines64[first] {
		t.Error("selective column touched more lines than full scan")
	}
}

func TestQ1FlightSelectivities(t *testing.T) {
	// SSB q1.1 keeps roughly 1/7 * 3/11 * 0.48 ~ 1.9% of the fact table.
	q, _ := ByID("q1.1")
	builds := buildTables(testDS, q)
	_, st := runPipeline(testDS, q, builds)
	sel := float64(st.out) / float64(st.rows)
	if sel < 0.012 || sel > 0.028 {
		t.Errorf("q1.1 selectivity = %.4f, want ~0.019", sel)
	}
}

func TestRunPanicsOnUnknownEngine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown engine should panic")
		}
	}()
	q, _ := ByID("q1.1")
	Run(testDS, q, Engine("nope"))
}

func TestFactColAndDimTablePanics(t *testing.T) {
	for _, name := range []string{"orderdate", "custkey", "partkey", "suppkey", "quantity", "discount", "extprice", "revenue", "supplycost"} {
		if FactCol(&testDS.Lineorder, name) == nil {
			t.Errorf("FactCol(%s) nil", name)
		}
	}
	func() {
		defer func() { recover() }()
		FactCol(&testDS.Lineorder, "bogus")
		t.Error("FactCol should panic on unknown column")
	}()
	func() {
		defer func() { recover() }()
		DimTable(testDS, "bogus")
		t.Error("DimTable should panic on unknown dim")
	}()
}
