package queries

import (
	"fmt"
	"sync"

	"crystal/internal/crystal"
	"crystal/internal/device"
	"crystal/internal/sim"
)

// gpuConfig is the tile configuration the SSB evaluation uses (Section 5.2:
// thread block 256 with 8 items per thread, tile size 2048). The tile size
// equals ssb.MorselAlign, so a morsel is always a whole number of tiles and
// zone-map pruning maps exactly onto skipping thread blocks.
func gpuConfig(elems int) sim.Config {
	return sim.Config{Threads: 256, ItemsPerThread: 8, Elems: elems}
}

// RunGPU executes the compiled plan on the paper's "Standalone GPU": the
// full query compiled into a single tile-based Crystal kernel
// (Section 5.2). Each thread block loads a tile of the fact table,
// evaluates the selections with BlockPred, probes the join hash tables in
// a pipeline with BlockLookup, and updates the global aggregate — the fact
// columns are read from global memory exactly once, selectively, and
// nothing is materialized in between.
func (pl *Plan) RunGPU() *Result { return pl.runGPU(pl.morselRun(RunOptions{})) }

// blockSkips maps thread blocks to pruned morsels: skips[id] is true when
// block id's tile lies inside a zone-pruned morsel. Morsel boundaries snap
// to the tile size, so every block belongs to exactly one morsel. Returns
// nil when nothing is pruned (the common case pays no lookup).
func blockSkips(ms *morselRun, tileSize int) []bool {
	if ms.prunedCount() == 0 {
		return nil
	}
	var skips []bool
	for i, m := range ms.morsels {
		if !ms.pruned[i] {
			continue
		}
		hi := (m.Hi + tileSize - 1) / tileSize
		if skips == nil {
			skips = make([]bool, 0, hi)
		}
		for b := m.Lo / tileSize; b < hi; b++ {
			for len(skips) <= b {
				skips = append(skips, false)
			}
			skips[b] = true
		}
	}
	return skips
}

// runGPU executes the plan's kernel over the surviving morsels. The launch
// covers the full grid; blocks whose tile sits in a pruned morsel return
// before touching global memory, so they contribute no traffic — the
// zone-map check itself is host-side metadata work and costs no device
// time. With nothing pruned the launch is bit-identical to the monolithic
// one, which is what keeps partitioned simulated seconds exact.
func (pl *Plan) runGPU(ms *morselRun) *Result {
	return pl.runGPUOn(device.V100(), ms)
}

// runGPUOn is runGPU priced on an explicit device spec: the fleet executor
// runs one launch per fleet device, each covering only that device's shard
// (every other tile is skipped, so a shard charges exactly its own traffic
// plus the one launch — the property multi-device scaling hangs on).
func (pl *Plan) runGPUOn(dev *device.Spec, ms *morselRun) *Result {
	ds, q, builds := pl.ds, pl.Query, pl.builds
	clk := device.NewClock(dev)
	for i := range builds {
		b := &builds[i]
		pass := &device.Pass{Label: "gpu build " + b.spec.Dim, BytesRead: b.bytesRead, Kernels: 1}
		pass.AddProbes(device.ProbeSet{Count: b.inserted, StructBytes: b.ht.Bytes(), Writes: true})
		clk.Charge(pass)
	}

	n := ds.Lineorder.Rows()
	cfg := gpuConfig(n)
	if ms.packed != nil && cfg.TileSize()%ms.packed.FrameRows() != 0 {
		// BlockLoadPacked charges each tile the packed bytes of the frames
		// it overlaps; a tile smaller than a frame would double-charge the
		// frame across tiles. Fail loudly if the two quanta ever diverge.
		panic(fmt.Sprintf("queries: GPU tile size %d is not a multiple of the packed frame size %d",
			cfg.TileSize(), ms.packed.FrameRows()))
	}
	skips := blockSkips(ms, cfg.TileSize())
	filterCols := make([]colReader, len(q.FactFilters))
	for i := range q.FactFilters {
		filterCols[i] = ms.factReader(&ds.Lineorder, q.FactFilters[i].Col)
	}
	fkCols := make([]colReader, len(q.Joins))
	payloadIdx := make([]int, len(q.Joins)) // index into payload registers, -1 = none
	numPayloads := 0
	for i, j := range q.Joins {
		fkCols[i] = ms.factReader(&ds.Lineorder, j.FactFK)
		if j.Payload != "" {
			payloadIdx[i] = numPayloads
			numPayloads++
		} else {
			payloadIdx[i] = -1
		}
	}
	ast := newAggState(&q)
	aggCols := q.AggColumns()
	aggSlices := make([]colReader, len(aggCols))
	for i, c := range aggCols {
		aggSlices[i] = ms.factReader(&ds.Lineorder, c)
	}

	var aggTable *crystal.AggTable
	var scalarSum sim.Counter // used when the query has no group-by (q1.x)
	var multiTable *crystal.MultiAggTable
	var globalAcc []int64 // multi-aggregate global (no group-by) accumulator
	var accMu sync.Mutex
	if ast == nil {
		aggTable = crystal.NewAggTable(aggEstimate(q))
	} else {
		multiTable = crystal.NewMultiAggTable(aggEstimate(q), ast.ops)
		globalAcc = ast.identity()
	}

	pass := sim.RunBounded(clk.Spec(), cfg, func(b *sim.Block) {
		if b.ID < len(skips) && skips[b.ID] {
			return // tile inside a zone-pruned morsel: no loads, no probes
		}
		ts := cfg.TileSize()
		items := make([]int32, ts)
		bitmap := make([]uint8, ts)
		payloads := make([][]int32, numPayloads)
		for i := range payloads {
			payloads[i] = make([]int32, ts)
		}

		nn := b.TileElems
		first := true
		// The first column load reads the full tile; later ones load
		// selectively through the bitmap. On the packed encoding the same
		// pair of primitives reads the tile's frames instead — a tile is
		// exactly one frame (MorselAlign = tile size), so per-block packed
		// traffic merges exactly for any partitioning.
		loadCol := func(cr colReader) int {
			if first {
				first = false
				if cr.packed != nil {
					return crystal.BlockLoadPacked(b, cr.packed, items)
				}
				return crystal.BlockLoad(b, cr.plain, items)
			}
			if cr.packed != nil {
				return crystal.BlockLoadSelPacked(b, cr.packed, bitmap, items)
			}
			return crystal.BlockLoadSel(b, cr.plain, bitmap, items)
		}

		// Selections on the fact table.
		for i := range q.FactFilters {
			f := &q.FactFilters[i]
			m := loadCol(filterCols[i])
			if i == 0 {
				crystal.BlockPred(b, items, m, f.Match, bitmap)
			} else {
				crystal.BlockPredAnd(b, items, m, f.Match, bitmap)
			}
		}
		if len(q.FactFilters) == 0 {
			for i := 0; i < nn; i++ {
				bitmap[i] = 1
			}
		}

		// Pipelined join probes.
		for ji := range q.Joins {
			m := loadCol(fkCols[ji])
			var vals []int32
			if pi := payloadIdx[ji]; pi >= 0 {
				vals = payloads[pi]
			}
			crystal.BlockLookup(b, builds[ji].ht, items, m, bitmap, vals, false)
		}

		// Aggregate inputs. Multi-aggregate statements load every referenced
		// column's tile, then build per-row slot-delta vectors for the
		// multi-accumulator table; the legacy single-SUM path below is
		// untouched so its traffic stays bit-identical.
		if ast != nil {
			colVals := make([][]int32, len(aggCols))
			for ci := range aggCols {
				colVals[ci] = make([]int32, ts)
				m := loadCol(aggSlices[ci])
				copy(colVals[ci][:m], items[:m])
			}
			rowVals := make([]int32, len(aggCols))
			if numPayloads == 0 {
				// Hierarchical block reduction: merge rows into block-local
				// slots, then one global atomic per slot per block.
				local := ast.identity()
				row := make([]int64, ast.slots())
				updated := false
				for i := 0; i < nn; i++ {
					if bitmap[i] == 0 {
						continue
					}
					for ci := range aggCols {
						rowVals[ci] = colVals[ci][i]
					}
					ast.rowDeltas(rowVals, row)
					ast.merge(local, row)
					updated = true
				}
				if updated {
					b.Pass().AtomicOps += int64(ast.slots())
					accMu.Lock()
					ast.merge(globalAcc, local)
					accMu.Unlock()
				}
				return
			}
			keys := make([]int64, ts)
			rowDeltas := make([][]int64, ts)
			pvals := make([]int32, numPayloads)
			for i := 0; i < nn; i++ {
				if bitmap[i] == 0 {
					continue
				}
				for pi := 0; pi < numPayloads; pi++ {
					pvals[pi] = payloads[pi][i]
				}
				keys[i] = PackGroup(pvals)
				for ci := range aggCols {
					rowVals[ci] = colVals[ci][i]
				}
				d := make([]int64, ast.slots())
				ast.rowDeltas(rowVals, d)
				rowDeltas[i] = d
			}
			crystal.BlockMultiAggUpdate(b, multiTable, keys, rowDeltas, bitmap, nn)
			return
		}
		deltas := make([]int64, ts)
		for ci := range aggCols {
			m := loadCol(aggSlices[ci])
			for i := 0; i < m; i++ {
				if bitmap[i] == 0 {
					continue
				}
				switch {
				case ci == 0 && q.Agg == AggSumRevenue:
					deltas[i] = int64(items[i])
				case ci == 0:
					deltas[i] = int64(items[i])
				case q.Agg == AggSumExtDisc:
					deltas[i] *= int64(items[i])
				case q.Agg == AggSumProfit:
					deltas[i] -= int64(items[i])
				}
			}
		}

		if numPayloads == 0 {
			// q1.x: hierarchical block reduction, one atomic per block.
			var local int64
			for i := 0; i < nn; i++ {
				if bitmap[i] != 0 {
					local += deltas[i]
				}
			}
			if local != 0 {
				b.AtomicAdd(&scalarSum, local)
			}
			return
		}
		keys := make([]int64, ts)
		vals := make([]int32, numPayloads)
		for i := 0; i < nn; i++ {
			if bitmap[i] == 0 {
				continue
			}
			for pi := 0; pi < numPayloads; pi++ {
				vals[pi] = payloads[pi][i]
			}
			keys[i] = PackGroup(vals)
		}
		crystal.BlockAggUpdate(b, aggTable, keys, deltas, bitmap, nn)
	}, ms.lim)
	pass.Label = "gpu probe pipeline " + q.ID
	clk.Charge(pass)

	res := &Result{QueryID: q.ID, Groups: map[int64]int64{}}
	switch {
	case ast != nil && numPayloads == 0:
		res.accs = map[int64][]int64{0: globalAcc}
	case ast != nil:
		res.accs = map[int64][]int64{}
		multiTable.Each(func(k int64, acc []int64) {
			res.accs[k] = append([]int64(nil), acc...)
		})
	case numPayloads == 0:
		res.Groups[0] = scalarSum.Value()
		// An empty result still has the single global aggregate row.
	default:
		aggTable.Each(func(k, sum int64) { res.Groups[k] = sum })
	}
	res.Seconds = clk.Seconds()
	ms.stamp(res)
	return res
}
