package queries

import (
	"crystal/internal/fleet"
	"crystal/internal/ssb"
)

// FleetDevice is one device's share of a fleet execution: what it was
// assigned, what it scanned, and what its slice of the simulated time and
// interconnect traffic looked like.
type FleetDevice struct {
	// Device is the device index in [0, GPUs).
	Device int `json:"device"`
	// Morsels is the number of morsels sharded onto the device; Pruned
	// counts those its zone maps skipped, and Rows the fact rows it
	// actually scanned.
	Morsels int   `json:"morsels"`
	Pruned  int   `json:"pruned"`
	Rows    int64 `json:"rows"`
	// Seconds is the device's simulated time: its kernel launch over the
	// shard (replicated dimension builds included), overlapped with the
	// interconnect shipment of its spilled morsels, coprocessor style.
	Seconds float64 `json:"seconds"`
	// SpillBytes is the interconnect traffic the device's spilled morsels
	// cost this query (0 when the shard fits in device memory), and
	// ResidentCols the spilled columns a residency cache served without
	// shipping anything.
	SpillBytes   int64 `json:"spill_bytes"`
	ResidentCols int   `json:"resident_cols"`
	// Groups is the size of the device's partial aggregate table — the
	// rows it contributes to the cross-device merge.
	Groups int `json:"groups"`
}

// FleetResult is the outcome of one fleet execution: the merged result
// (row-identical to a single-device run by construction — partial
// aggregates are integer sums) plus the per-device telemetry and the
// merge-phase pricing.
type FleetResult struct {
	// Result is the merged result. Seconds is the fleet makespan: the
	// slowest device plus the partial-aggregate merge; TransferBytes is
	// the total spilled-shard traffic and ResidentCols the spill transfers
	// residency caches elided.
	Result *Result
	// GPUs and Interconnect echo the normalized fleet shape.
	GPUs         int
	Interconnect string
	// Devices has one entry per fleet device, idle devices included.
	Devices []FleetDevice
	// MergeBytes is the partial-aggregate traffic that crossed the
	// interconnect (16 bytes per group per active device) and MergeSeconds
	// its transfer time — the term that surfaces on high-cardinality
	// group-bys and vanishes on scan-bound flights.
	MergeBytes   int64
	MergeSeconds float64
}

// RunFleet compiles and executes q across a modeled multi-GPU fleet (a
// convenience for one-shot callers; serving layers should Compile once and
// call Plan.RunFleet).
func RunFleet(ds *ssb.Dataset, q Query, fl fleet.Spec, opts RunOptions) (*FleetResult, error) {
	return Compile(ds, q).RunFleet(fl, opts)
}

// RunFleet executes the compiled plan across fl: the fact table's
// zone-mapped morsels are range-sharded over the fleet's devices
// (fleet.Assign, spill accounting against each device's MemoryBytes), each
// device runs the tile-based GPU kernel over its own shard concurrently —
// one launch per device, every foreign tile skipped, so a device charges
// exactly its shard's traffic — and the partial aggregates merge on the
// host across the interconnect.
//
// Rows are identical to a single-device run at any shard count: partial
// aggregates are integer sums, so the merge is exact. Simulated seconds
// follow the bandwidth model — near-linear scaling on scan-bound queries
// until the per-device launch and replicated dimension builds dominate,
// with the merge term growing with group cardinality and shrinking with
// interconnect bandwidth. Shards that exceed device memory degrade
// gracefully: the spilled morsels stay host-resident and their referenced
// columns cross the interconnect, priced like a coprocessor transfer
// (overlapped with execution, packed runs shipping packed bytes, and
// opts.FleetResidency able to elide them entirely).
//
// opts.Partitions below fl.GPUs is raised to fl.GPUs so every device gets
// a shard where the morsel count allows one.
func (p *Plan) RunFleet(fl fleet.Spec, opts RunOptions) (*FleetResult, error) {
	fl, err := fl.Normalized()
	if err != nil {
		return nil, err
	}
	if opts.Partitions < fl.GPUs {
		opts.Partitions = fl.GPUs
	}
	opts.Residency = nil // single-device coprocessor knob; fleet uses FleetResidency
	ms := p.morselRun(opts)
	q := p.Query
	refCols := q.ReferencedFactColumns()

	// A shard's storage footprint is its full fact rows — every column,
	// because the device must serve any query against its shard — in
	// whichever encoding this run scans. The footprint function is shared
	// with planner.FleetCost, so the model can never place shards
	// differently than this executor does.
	shardBytes := func(m ssb.Morsel) int64 { return ssb.MorselStorageBytes(ms.packed, m) }
	shards := fleet.Assign(ms.morsels, fl.GPUs, fl.Device.MemoryBytes, shardBytes)

	out := &FleetResult{GPUs: fl.GPUs, Interconnect: fl.Link.Name}
	merged := &Result{QueryID: q.ID, Groups: map[int64]int64{}}
	var makespan float64
	for d := range shards {
		sh := &shards[d]
		fd := FleetDevice{Device: d, Morsels: len(sh.Morsels)}
		if len(sh.Morsels) == 0 {
			out.Devices = append(out.Devices, fd) // idle device: no launch, no time
			continue
		}
		spilled := make(map[int]bool, len(sh.Spilled))
		for _, mi := range sh.Spilled {
			spilled[mi] = true
		}
		// The device's launch skips every tile outside its shard (and its
		// zone-pruned morsels), so its pass meters exactly the shard's
		// traffic.
		prunedD := make([]bool, len(ms.morsels))
		for i := range prunedD {
			prunedD[i] = true
		}
		var res Residency
		if ms.packed != nil && d < len(opts.FleetResidency) {
			res = opts.FleetResidency[d]
		}
		// Per referenced column, liveSpill is what this query's cold run
		// ships (spilled morsels its zone maps did not prune) and fullSpill
		// the device's whole spilled range — what an admitted residency
		// miss ships and pins, so that a resident column is always fully
		// resident regardless of which query populated it (the same rule
		// the coprocessor's residency cache follows). fullSpill is only
		// consulted through a residency cache, so cacheless runs skip it.
		var live []ssb.Morsel
		liveSpill := map[string]int64{}
		fullSpill := map[string]int64{}
		for _, mi := range sh.Morsels {
			m := ms.morsels[mi]
			if spilled[mi] && res != nil {
				for _, c := range refCols {
					fullSpill[c] += ssb.MorselColumnBytes(ms.packed, m, c)
				}
			}
			if ms.pruned[mi] {
				fd.Pruned++
				continue // zone maps are host-side: pruned morsels neither scan nor ship
			}
			prunedD[mi] = false
			live = append(live, m)
			fd.Rows += int64(m.Rows())
			if spilled[mi] {
				for _, c := range refCols {
					liveSpill[c] += ssb.MorselColumnBytes(ms.packed, m, c)
				}
			}
		}
		msD := &morselRun{
			morsels: ms.morsels,
			pruned:  prunedD,
			live:    live,
			scanned: fd.Rows,
			lim:     ms.lim,
			packed:  ms.packed,
		}
		resD := p.runGPUOn(fl.Device, msD)

		for _, c := range refCols {
			if res == nil {
				fd.SpillBytes += liveSpill[c]
				continue
			}
			if fullSpill[c] == 0 {
				continue
			}
			switch hit, admitted := res.Acquire(c, fullSpill[c]); {
			case hit:
				fd.ResidentCols++
			case admitted:
				fd.SpillBytes += fullSpill[c] // populate the whole spilled range
			default:
				fd.SpillBytes += liveSpill[c] // ordinary cold transfer
			}
		}

		// Spill shipment overlaps with execution, coprocessor style: the
		// slower of the two bounds the device.
		fd.Seconds = resD.Seconds
		if t := fl.Link.TransferTime(fd.SpillBytes); t > fd.Seconds {
			fd.Seconds = t
		}
		fd.Groups = len(resD.Groups)
		for k, v := range resD.Groups {
			merged.Groups[k] += v
		}
		out.MergeBytes += int64(len(resD.Groups)) * 16
		if fd.Seconds > makespan {
			makespan = fd.Seconds
		}
		merged.TransferBytes += fd.SpillBytes
		merged.ResidentCols += fd.ResidentCols
		out.Devices = append(out.Devices, fd)
	}
	if len(q.GroupPayloads()) == 0 {
		if _, ok := merged.Groups[0]; !ok {
			merged.Groups[0] = 0 // a global aggregate always yields one row
		}
	}
	out.MergeSeconds = fl.Link.TransferTime(out.MergeBytes)
	merged.Seconds = makespan + out.MergeSeconds
	ms.stamp(merged)
	out.Result = merged
	return out, nil
}
