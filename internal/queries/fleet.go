package queries

import (
	"crystal/internal/fleet"
	"crystal/internal/trace"
)

// FleetDevice is one device's share of a fleet execution: what it was
// assigned, what it scanned, and what its slice of the simulated time and
// interconnect traffic looked like.
type FleetDevice struct {
	// Device is the device index in [0, GPUs).
	Device int `json:"device"`
	// Morsels is the number of morsels sharded onto the device; Pruned
	// counts those its zone maps skipped, and Rows the fact rows it
	// actually scanned.
	Morsels int   `json:"morsels"`
	Pruned  int   `json:"pruned"`
	Rows    int64 `json:"rows"`
	// Seconds is the device's simulated time: its kernel launch over the
	// shard (replicated dimension builds included), overlapped with the
	// interconnect shipment of its spilled morsels, coprocessor style.
	Seconds float64 `json:"seconds"`
	// SpillBytes is the interconnect traffic the device's spilled morsels
	// cost this query (0 when the shard fits in device memory), and
	// ResidentCols the spilled columns a residency cache served without
	// shipping anything.
	SpillBytes   int64 `json:"spill_bytes"`
	ResidentCols int   `json:"resident_cols"`
	// Groups is the size of the device's partial aggregate table — the
	// rows it contributes to the cross-device merge.
	Groups int `json:"groups"`
}

// FleetResult is the outcome of one fleet execution: the merged result
// (row-identical to a single-device run by construction — partial
// aggregates are integer sums) plus the per-device telemetry and the
// merge-phase pricing.
type FleetResult struct {
	// Result is the merged result. Seconds is the fleet makespan: the
	// slowest device plus the partial-aggregate merge; TransferBytes is
	// the total spilled-shard traffic and ResidentCols the spill transfers
	// residency caches elided.
	Result *Result
	// GPUs and Interconnect echo the normalized fleet shape.
	GPUs         int
	Interconnect string
	// Devices has one entry per fleet device, idle devices included.
	Devices []FleetDevice
	// MergeBytes is the partial-aggregate traffic that crossed the
	// interconnect (16 bytes per group per active device) and MergeSeconds
	// its transfer time — the term that surfaces on high-cardinality
	// group-bys and vanishes on scan-bound flights.
	MergeBytes   int64
	MergeSeconds float64
	// Trace is the run's span tree, nil unless opts.Trace asked for one.
	Trace *trace.Span
}

// RunFleet executes the compiled plan across fl: the fact table's
// zone-mapped morsels are range-sharded over the fleet's devices
// (ScheduleFleet — fleet.Assign with spill accounting against each
// device's MemoryBytes), each device runs the tile-based GPU kernel over
// its own shard concurrently — one launch per device, every foreign tile
// skipped, so a device charges exactly its shard's traffic — and the
// partial aggregates merge on the host across the interconnect. It is a
// thin wrapper over RunScheduled.
//
// Rows are identical to a single-device run at any shard count: partial
// aggregates are integer sums, so the merge is exact. Simulated seconds
// follow the bandwidth model — near-linear scaling on scan-bound queries
// until the per-device launch and replicated dimension builds dominate,
// with the merge term growing with group cardinality and shrinking with
// interconnect bandwidth. Shards that exceed device memory degrade
// gracefully: the spilled morsels stay host-resident and their referenced
// columns cross the interconnect, priced like a coprocessor transfer
// (overlapped with execution, packed runs shipping packed bytes, and
// opts.Fleet.Residency able to elide them entirely).
//
// opts.Partition.Partitions below fl.GPUs is raised to fl.GPUs so every
// device gets a shard where the morsel count allows one.
func (p *Plan) RunFleet(fl fleet.Spec, opts RunOptions) (*FleetResult, error) {
	fl, err := fl.Normalized()
	if err != nil {
		return nil, err
	}
	s, err := p.ScheduleFleet(fl, opts)
	if err != nil {
		return nil, err
	}
	sr, err := p.RunScheduled(s)
	if err != nil {
		return nil, err
	}
	out := &FleetResult{
		Result:       sr.Result,
		GPUs:         fl.GPUs,
		Interconnect: fl.Link.Name,
		MergeBytes:   sr.MergeBytes,
		MergeSeconds: sr.MergeSeconds,
		Trace:        sr.Trace,
	}
	out.Devices = FleetDevices(sr.Executors)
	return out, nil
}
