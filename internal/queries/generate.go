package queries

import (
	"fmt"
	"math/rand"

	"crystal/internal/ssb"
)

// dimFK maps each dimension to the fact foreign key that probes it.
var dimFK = map[string]string{
	"date":     "orderdate",
	"customer": "custkey",
	"supplier": "suppkey",
	"part":     "partkey",
}

// dimAttrs lists each dimension's filterable/groupable attributes.
var dimAttrs = map[string][]string{
	"date":     {"year", "yearmonthnum", "weeknuminyear"},
	"customer": {"region", "nation", "city"},
	"supplier": {"region", "nation", "city"},
	"part":     {"mfgr", "category", "brand1"},
}

// factFilterCols are the fact columns the generator filters on: the
// orderdate key plus the value columns (foreign keys other than orderdate
// are only useful through joins).
var factFilterCols = []string{"orderdate", "quantity", "discount", "extprice"}

// GenOptions tunes RandomQuery. The zero value generates the broadest mix.
type GenOptions struct {
	// WideFilters makes every range filter span at least half of the
	// column's observed domain. On the uniformly generated dataset this
	// guarantees zone maps prune nothing (every morsel's zone intersects a
	// wide range), which is what the partition-invariance property needs:
	// identical simulated seconds require identical scans.
	WideFilters bool
	// Extended additionally draws the post-seed statement surface:
	// multi-aggregate select lists (COUNT/AVG/MIN/MAX alongside SUM),
	// ORDER BY over aggregates and group columns, and LIMIT. The draws
	// happen after every base draw, so for any seed the base shape of the
	// query is identical with Extended on or off.
	Extended bool
}

// RandomQuery draws a pseudo-random query over the SSB schema from r:
// random fact filters with bounds sampled from the actual column values,
// a random join pipeline (each dimension at most once, in random order,
// with random dimension filters), at most three group-by payloads, and a
// random aggregate. The result always passes Validate; it is the input
// source for the cross-engine differential harness and the
// partition-invariance property test.
func RandomQuery(r *rand.Rand, ds *ssb.Dataset, n int, opt GenOptions) Query {
	q := Query{ID: fmt.Sprintf("gen%d", n), Agg: AggKind(r.Intn(3))}

	// Fact filters: 0..2 distinct columns.
	for _, ci := range r.Perm(len(factFilterCols))[:r.Intn(3)] {
		col := factFilterCols[ci]
		q.FactFilters = append(q.FactFilters, randomFilter(r, col, FactCol(&ds.Lineorder, col), opt))
	}

	// Joins: a random subset of the dimensions in random order.
	dims := []string{"date", "customer", "supplier", "part"}
	payloads := 0
	for _, di := range r.Perm(len(dims))[:1+r.Intn(len(dims))] {
		dim := dims[di]
		d := DimTable(ds, dim)
		j := JoinSpec{Dim: dim, FactFK: dimFK[dim]}
		attrs := dimAttrs[dim]
		for _, ai := range r.Perm(len(attrs))[:r.Intn(2)] {
			col := attrs[ai]
			j.Filters = append(j.Filters, randomFilter(r, col, d.Col(col), opt))
		}
		if payloads < 3 && r.Intn(2) == 0 {
			j.Payload = attrs[r.Intn(len(attrs))]
			payloads++
		}
		q.Joins = append(q.Joins, j)
	}
	if opt.Extended {
		extendQuery(r, &q)
	}
	return q
}

// extendQuery draws the ORDER BY / multi-aggregate surface onto a base
// query: a 1-3 aggregate select list about half the time (single plain SUM
// statements keep Aggs nil, exactly as the SQL binder normalizes them), up
// to two ORDER BY keys over the aggregates and group columns, and a LIMIT
// on half the ordered queries.
func extendQuery(r *rand.Rand, q *Query) {
	if r.Intn(2) == 0 {
		specs := make([]AggSpec, 1+r.Intn(3))
		for i := range specs {
			specs[i] = AggSpec{Func: AggFunc(r.Intn(5)), Expr: AggKind(r.Intn(3))}
		}
		if len(specs) == 1 && specs[0].Func == FuncSum {
			q.Agg = specs[0].Expr // the binder's single-SUM normalization
		} else {
			q.Aggs = specs
		}
	}
	if r.Intn(2) == 0 {
		groups := len(q.GroupPayloads())
		for range 1 + r.Intn(2) {
			k := OrderKey{Desc: r.Intn(2) == 0}
			if groups > 0 && r.Intn(3) == 0 {
				k.Item, k.Group = -1, r.Intn(groups)
			} else {
				k.Item = r.Intn(len(q.AggList()))
			}
			q.OrderBy = append(q.OrderBy, k)
		}
		if r.Intn(2) == 0 {
			q.Limit = 1 + r.Intn(8)
		}
	}
}

// randomFilter builds a filter whose bounds come from actual column values,
// so generated predicates are satisfiable and exercise real selectivities.
// Small-domain columns occasionally get an IN-set instead of a range.
func randomFilter(r *rand.Rand, col string, vals []int32, opt GenOptions) Filter {
	lo := vals[r.Intn(len(vals))]
	hi := vals[r.Intn(len(vals))]
	if lo > hi {
		lo, hi = hi, lo
	}
	if opt.WideFilters {
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		// Anchor one end at a domain extreme so the range covers at least
		// half the observed domain.
		mid := min + (max-min)/2
		if r.Intn(2) == 0 {
			lo, hi = min, maxI32(hi, mid)
		} else {
			lo, hi = minI32(lo, mid), max
		}
	} else if r.Intn(4) == 0 {
		// IN-set of up to 4 observed values (duplicates collapse via Match
		// semantics, so no dedup is needed).
		in := make([]int32, 1+r.Intn(4))
		for i := range in {
			in[i] = vals[r.Intn(len(vals))]
		}
		return Filter{Col: col, In: in}
	}
	return Filter{Col: col, Lo: lo, Hi: hi}
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
