package queries

import (
	"testing"

	"crystal/internal/ssb"
)

func TestMultiGPUMatchesSingleGPU(t *testing.T) {
	for _, q := range All() {
		single := Compile(testDS, q).RunGPU()
		for _, k := range []int{1, 2, 4, 7} {
			multi, err := Compile(testDS, q).RunMultiGPU(k)
			if err != nil {
				t.Fatal(err)
			}
			if !multi.Equal(single) {
				t.Errorf("%s on %d GPUs disagrees with single GPU", q.ID, k)
			}
		}
	}
}

func TestMultiGPUScalesDown(t *testing.T) {
	// Sharding the fact table across k devices divides the probe-phase
	// traffic; with replicated builds the speedup is sub-linear but the
	// time must be monotonically non-increasing for SSB-sized aggregates.
	q, _ := ByID("q2.1")
	prev := 0.0
	for _, k := range []int{1, 2, 4, 8} {
		res, err := Compile(testDS, q).RunMultiGPU(k)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && res.Seconds > prev*1.05 {
			t.Errorf("%d GPUs (%.6f) slower than fewer (%.6f)", k, res.Seconds, prev)
		}
		prev = res.Seconds
	}
	// 4 GPUs should beat 1 clearly on a fact-bound query.
	one, _ := Compile(testDS, q).RunMultiGPU(1)
	four, _ := Compile(testDS, q).RunMultiGPU(4)
	if four.Seconds >= one.Seconds {
		t.Errorf("4 GPUs (%.6f) should beat 1 (%.6f)", four.Seconds, one.Seconds)
	}
}

func TestMultiGPUValidation(t *testing.T) {
	q, _ := ByID("q1.1")
	if _, err := Compile(testDS, q).RunMultiGPU(0); err == nil {
		t.Error("0 GPUs accepted")
	}
	// More GPUs than rows still works (extra shards are empty).
	tiny := ssb.GenerateRows(3)
	res, err := Compile(tiny, q).RunMultiGPU(8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(Compile(tiny, q).RunGPU()) {
		t.Error("over-sharded result differs")
	}
}

func TestSliceFactView(t *testing.T) {
	sub := testDS.SliceFact(10, 20)
	if sub.Lineorder.Rows() != 10 {
		t.Fatalf("slice rows = %d", sub.Lineorder.Rows())
	}
	if sub.Lineorder.Revenue[0] != testDS.Lineorder.Revenue[10] {
		t.Error("slice misaligned")
	}
	if sub.Part.Rows() != testDS.Part.Rows() {
		t.Error("dimensions should be shared")
	}
}
