package queries

import (
	"crystal/internal/ssb"
)

// Plan is a compiled physical plan: one query bound to one dataset, with
// the dimension join hash tables already built. Compiling is the expensive,
// engine-independent part of execution (the build phase scans every
// dimension and inserts the surviving rows), so a Plan is what a serving
// layer caches and shares between requests.
//
// A Plan is safe for concurrent use: the hash tables are only probed after
// compilation (probes are atomic loads), and every Run* method keeps its
// mutable state per call. Simulated times are unaffected by reuse — each
// run re-charges the build traffic exactly as a cold execution would, so a
// cached plan returns the same Result (rows and Seconds) as queries.Run
// while skipping the functional build work.
type Plan struct {
	// Query is the compiled query in plan order.
	Query Query
	ds    *ssb.Dataset
	// builds are the constructed join hash tables plus the build-phase
	// traffic each engine charges on its own device clock.
	builds []buildInfo
}

// Compile builds the join hash tables for q over ds and returns the
// reusable plan.
func Compile(ds *ssb.Dataset, q Query) *Plan {
	return &Plan{Query: q, ds: ds, builds: buildTables(ds, q)}
}

// Dataset returns the dataset the plan was compiled against.
func (p *Plan) Dataset() *ssb.Dataset { return p.ds }

// Run executes the compiled plan on the chosen engine.
func (p *Plan) Run(e Engine) *Result {
	switch e {
	case EngineGPU:
		return p.RunGPU()
	case EngineCPU:
		return p.RunCPU()
	case EngineHyper:
		return p.RunHyper()
	case EngineMonet:
		return p.RunMonet()
	case EngineOmnisci:
		return p.RunOmnisci()
	case EngineCoproc:
		return p.RunCoprocessor()
	}
	panic("queries: unknown engine " + string(e))
}
