package queries

import (
	"sync"

	"crystal/internal/ssb"
)

// Plan is a compiled physical plan: one query bound to one dataset, with
// the dimension join hash tables already built. Compiling is the expensive,
// engine-independent part of execution (the build phase scans every
// dimension and inserts the surviving rows), so a Plan is what a serving
// layer caches and shares between requests.
//
// A Plan is safe for concurrent use: the hash tables are only probed after
// compilation (probes are atomic loads), the morsel cache is mutex-guarded,
// and every Run* method keeps its mutable state per call. Simulated times
// are unaffected by reuse — each run re-charges the build traffic exactly
// as a cold execution would, so a cached plan returns the same Result
// (rows and Seconds) as queries.Run while skipping the functional build
// work.
type Plan struct {
	// Query is the compiled query in plan order.
	Query Query
	ds    *ssb.Dataset
	// builds are the constructed join hash tables plus the build-phase
	// traffic each engine charges on its own device clock.
	builds []buildInfo

	// partsMu guards parts, the per-partition-count morsel cache: zone maps
	// cost one pass over the fact columns, so repeated partitioned runs of
	// a cached plan compute them once per count.
	partsMu sync.Mutex
	parts   map[int][]ssb.Morsel
}

// Compile builds the join hash tables for q over ds and returns the
// reusable plan.
func Compile(ds *ssb.Dataset, q Query) *Plan {
	return &Plan{Query: q, ds: ds, builds: buildTables(ds, q)}
}

// Dataset returns the dataset the plan was compiled against.
func (p *Plan) Dataset() *ssb.Dataset { return p.ds }

// Morsels returns the dataset's zone-mapped morsels for the given partition
// count, memoized on the plan. The cache lives here rather than on the
// Dataset deliberately: Dataset values are copied by SliceFact/ClusterBy
// (a mutex or cache field would be copied along and could serve another
// layout's morsels), so each distinct cached plan pays one zone-map scan
// per partition count instead.
func (p *Plan) Morsels(n int) []ssb.Morsel {
	if n < 1 {
		n = 1
	}
	p.partsMu.Lock()
	defer p.partsMu.Unlock()
	if p.parts == nil {
		p.parts = map[int][]ssb.Morsel{}
	}
	ms, ok := p.parts[n]
	if !ok {
		ms = p.ds.Partition(n)
		p.parts[n] = ms
	}
	return ms
}

// Run executes the compiled plan on the chosen engine as one monolithic
// scan (a single unmapped morsel — identical to RunPartitioned with any
// partition count as long as zone maps prune nothing).
func (p *Plan) Run(e Engine) *Result {
	return p.RunPartitioned(e, RunOptions{})
}
