package queries

import (
	"fmt"
	"math/bits"

	"crystal/internal/device"
	"crystal/internal/gpu"
	"crystal/internal/sched"
)

// Sort-phase compute costs (scalar-equivalent cycles) on the CPU engines:
// one comparator evaluation per row per merge pass, and one heap sift level
// per row for the bounded top-N heap. Exported through the cost helpers
// below so planner.SortCost/TopNCost price exactly what the executor runs.
const (
	SortCmpCycles = 8.0
	HeapCycles    = 12.0
)

// sortRowBytes is the byte width of one materialized result row in the sort
// phase: the 8-byte packed group key plus 8 bytes per aggregate.
func sortRowBytes(q *Query) int64 { return int64(8 + 8*len(q.AggList())) }

// SortRowBytes exposes the sort-phase row width to the planner, which
// prices SortCost/TopNCost with the same width the executor moves.
func (q *Query) SortRowBytes() int64 { return sortRowBytes(q) }

// sortStage is one sequential stage of the ORDER BY phase: the stages of a
// placement sum to the phase's simulated seconds, and the traced path
// renders each as a sort-pass span.
type sortStage struct {
	label string
	sim   float64
	bytes int64
}

// sortOutcome is the priced execution of the ORDER BY phase on one
// placement: the ordered (LIMIT-truncated) rows, the phase's simulated
// seconds, and its sequential stage decomposition.
type sortOutcome struct {
	rows    []Row
	seconds float64
	stages  []sortStage
}

func (o *sortOutcome) add(label string, sim float64, bytes int64) {
	o.seconds += sim
	o.stages = append(o.stages, sortStage{label: label, sim: sim, bytes: bytes})
}

// mergeSortRows stable-sorts rows with a bottom-up merge sort — the CPU
// engines' full ORDER BY algorithm. Returns the sorted rows and the number
// of merge passes (what the pass-priced model charges).
func mergeSortRows(q *Query, rows []Row) ([]Row, int) {
	n := len(rows)
	src := append([]Row(nil), rows...)
	if n <= 1 {
		return src, 0
	}
	dst := make([]Row, n)
	passes := 0
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j := lo, mid
			for o := lo; o < hi; o++ {
				if i < mid && (j >= hi || !q.rowLess(src[j], src[i])) {
					dst[o] = src[i]
					i++
				} else {
					dst[o] = src[j]
					j++
				}
			}
		}
		src, dst = dst, src
		passes++
	}
	return src, passes
}

// heapTopN keeps the first k rows of the total order with a bounded binary
// heap whose root is the worst kept row — the CPU top-N algorithm. The
// final pop-off emits the k rows in order.
func heapTopN(q *Query, rows []Row, k int) []Row {
	if k <= 0 || k >= len(rows) {
		out, _ := mergeSortRows(q, rows)
		return out
	}
	h := make([]Row, 0, k)
	// after reports whether a sorts after b (the heap keeps its worst row,
	// under the total order, at the root).
	after := func(a, b Row) bool { return q.rowLess(b, a) }
	down := func(i int) {
		for {
			l, r, top := 2*i+1, 2*i+2, i
			if l < len(h) && after(h[l], h[top]) {
				top = l
			}
			if r < len(h) && after(h[r], h[top]) {
				top = r
			}
			if top == i {
				return
			}
			h[i], h[top] = h[top], h[i]
			i = top
		}
	}
	for _, r := range rows {
		if len(h) < k {
			h = append(h, r)
			for i := len(h) - 1; i > 0; {
				parent := (i - 1) / 2
				if !after(h[i], h[parent]) {
					break
				}
				h[i], h[parent] = h[parent], h[i]
				i = parent
			}
			continue
		}
		if q.rowLess(r, h[0]) {
			h[0] = r
			down(0)
		}
	}
	out := make([]Row, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		down(0)
	}
	return out
}

// mergeRuns k-way-merges sorted runs under the total order, stopping after
// limit rows (0 = merge everything) — the host side of the fleet's
// sorted-run merge.
func mergeRuns(q *Query, runs [][]Row, limit int) []Row {
	idx := make([]int, len(runs))
	var out []Row
	for {
		best := -1
		for r := range runs {
			if idx[r] >= len(runs[r]) {
				continue
			}
			if best < 0 || q.rowLess(runs[r][idx[r]], runs[best][idx[best]]) {
				best = r
			}
		}
		if best < 0 {
			break
		}
		out = append(out, runs[best][idx[best]])
		idx[best]++
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// encodeOrderKey maps an order value to an order-preserving uint64 (two's
// complement flipped to unsigned order; descending keys are bit-inverted so
// ascending radix passes yield descending output).
func encodeOrderKey(v int64, desc bool) uint64 {
	u := uint64(v) ^ (1 << 63)
	if desc {
		u = ^u
	}
	return u
}

// radixSortRows sorts rows on the GPU clock: starting from the base packed-
// key order, one stable LSD radix sort per ORDER BY key from least to most
// significant. Keys are rebased to (key - min), so each sort runs only the
// passes the surviving bit width needs — the bits-moved win of sort keys
// with small ranges (Section 5.5 logic applied to the sort pipeline).
func radixSortRows(q *Query, clk *device.Clock, rows []Row) []Row {
	n := len(rows)
	cur := append([]Row(nil), rows...)
	if n <= 1 {
		return cur
	}
	cfg := gpuConfig(n)
	keys := make([]uint64, n)
	idx := make([]int32, n)
	for ki := len(q.OrderBy) - 1; ki >= 0; ki-- {
		k := q.OrderBy[ki]
		min := ^uint64(0)
		var max uint64
		for i, r := range cur {
			u := encodeOrderKey(orderVal(q, k, r), k.Desc)
			keys[i] = u
			if u < min {
				min = u
			}
			if u > max {
				max = u
			}
			idx[i] = int32(i)
		}
		width := bits.Len64(max - min)
		if width == 0 {
			continue // all rows equal on this key: no passes, no traffic
		}
		for i := range keys {
			keys[i] -= min
		}
		_, perm := gpu.LSBRadixSort64(clk, cfg, keys, idx, width)
		next := make([]Row, n)
		for i, p := range perm {
			next[i] = cur[p]
		}
		cur = next
	}
	return cur
}

// cpuSortPass and heapPass are the priced passes of the CPU sort paths;
// shared with the exported cost helpers so the planner model and the
// executor can never drift.
func cpuSortPass(n, rowBytes int64) *device.Pass {
	return &device.Pass{
		Label:         "sort merge pass",
		BytesRead:     n * rowBytes,
		BytesWritten:  n * rowBytes,
		ComputeCycles: SortCmpCycles * float64(n),
	}
}

func heapPass(n, rowBytes int64, k int) *device.Pass {
	levels := float64(bits.Len64(uint64(k)))
	return &device.Pass{
		Label:         "sort heap top-n",
		BytesRead:     n * rowBytes,
		BytesWritten:  int64(k) * rowBytes,
		ComputeCycles: HeapCycles * float64(n) * levels,
	}
}

// MergeSortCost prices a full merge sort of n rows of rowBytes each on dev:
// ceil(log2 n) passes, each streaming the rows in and out once.
func MergeSortCost(dev *device.Spec, n, rowBytes int64) float64 {
	if n <= 1 {
		return 0
	}
	passes := bits.Len64(uint64(n - 1)) // ceil(log2 n)
	return float64(passes) * dev.PassTime(cpuSortPass(n, rowBytes))
}

// TopNHeapCost prices the bounded-heap top-k over n rows of rowBytes each
// on dev: one streaming pass with log2(k)-deep sifts, writing k rows.
func TopNHeapCost(dev *device.Spec, n, rowBytes int64, k int) float64 {
	if n <= 1 {
		return 0
	}
	if k <= 0 || int64(k) >= n {
		return MergeSortCost(dev, n, rowBytes)
	}
	return dev.PassTime(heapPass(n, rowBytes, k))
}

// RadixSortCost prices the GPU LSD radix sort of n rows with `keys` ORDER BY
// keys, each estimated at keyBits significant bits after rebasing. It
// constructs the same histogram/prefix/shuffle passes RadixPartition64
// charges, so the planner's GPU sort estimate and the executed kernel share
// one pricing model.
func RadixSortCost(dev *device.Spec, n int64, keys, keyBits int) float64 {
	if n <= 1 || keys <= 0 {
		return 0
	}
	cfg := gpuConfig(int(n))
	numBlocks := int64(cfg.NumBlocks())
	var secs float64
	for _, r := range gpu.RadixPassWidths(keyBits) {
		numPart := int64(1) << r
		histBytes := numBlocks * numPart * 4
		secs += dev.PassTime(&device.Pass{BytesRead: n * 8, BytesWritten: histBytes, Kernels: 1})
		secs += dev.PassTime(&device.Pass{BytesRead: histBytes, BytesWritten: histBytes, Kernels: 1})
		secs += dev.PassTime(&device.Pass{BytesRead: n * 12, BytesWritten: n * 12, Kernels: 1})
	}
	return secs * float64(keys)
}

// hostSort runs the CPU ORDER BY path on rows: the bounded heap when the
// query has a LIMIT and the heap prices cheaper, the full merge sort
// otherwise — the heap-vs-sort decision the planner's TopNCost mirrors.
func hostSort(q *Query, rows []Row, o *sortOutcome) {
	host := device.I76900()
	n, rowBytes := int64(len(rows)), sortRowBytes(q)
	if q.Limit > 0 && int64(q.Limit) < n &&
		TopNHeapCost(host, n, rowBytes, q.Limit) < MergeSortCost(host, n, rowBytes) {
		o.rows = heapTopN(q, rows, q.Limit)
		o.add("heap top-"+fmt.Sprint(q.Limit), host.PassTime(heapPass(n, rowBytes, q.Limit)), 0)
		return
	}
	sorted, passes := mergeSortRows(q, rows)
	o.rows = truncateRows(q, sorted)
	t := host.PassTime(cpuSortPass(n, rowBytes))
	for p := 0; p < passes; p++ {
		o.add(fmt.Sprintf("merge pass %d", p), t, 0)
	}
}

// deviceSort runs the GPU radix path on one device clock and records one
// stage per ORDER BY key (each a stable multi-pass LSD sort).
func deviceSort(q *Query, dev *device.Spec, rows []Row, o *sortOutcome) []Row {
	clk := device.NewClock(dev)
	var last float64
	sorted := rows
	for ki := len(q.OrderBy) - 1; ki >= 0; ki-- {
		sub := Query{ID: q.ID, Aggs: q.Aggs, Agg: q.Agg, Joins: q.Joins, OrderBy: q.OrderBy[ki : ki+1]}
		sorted = radixSortRows(&sub, clk, sorted)
		now := clk.Seconds()
		o.add(fmt.Sprintf("radix key %d", ki), now-last, 0)
		last = now
	}
	return sorted
}

// sortDevice resolves the device spec a GPU-side sort runs on.
func sortDevice(x sched.Executor) *device.Spec {
	if g, ok := x.(*gpuDeviceExecutor); ok {
		return g.dev
	}
	return device.V100()
}

// executeSort runs the ORDER BY phase for a scheduled run on the placement
// the schedule implies — the same hardware that ran the scan:
//
//   - CPU-only schedules sort on the host (bounded heap for top-N when it
//     prices cheaper, merge sort otherwise).
//   - A single GPU executor radix-sorts on its device; the coprocessor
//     additionally ships the output rows back over PCIe.
//   - A multi-device fleet sorts each device's shard of the groups
//     independently (makespan), ships each device's leading run across the
//     link, and k-way-merges the sorted runs on the host — row- and
//     order-identical to a single-device sort because ORDER BY is a total
//     order.
//   - Hybrid (mixed-kind) schedules sort on the host, which already holds
//     the merged groups.
//
// Every stage is priced in bytes moved like the scan kernels, and the
// stages sum exactly to the phase's simulated seconds.
func (p *Plan) executeSort(s sched.Schedule, rows []Row) *sortOutcome {
	q := &p.Query
	o := &sortOutcome{}
	if len(rows) <= 1 {
		o.rows = truncateRows(q, rows)
		return o
	}
	var gpuEx []sched.Executor
	cpuish := false
	for i := range s.Assignments {
		a := &s.Assignments[i]
		if len(a.Morsels) == 0 {
			continue
		}
		switch a.Executor.Kind() {
		case sched.KindGPU:
			gpuEx = append(gpuEx, a.Executor)
		default:
			cpuish = true
		}
	}
	rowBytes := sortRowBytes(q)
	switch {
	case cpuish && len(gpuEx) == 0:
		coproc := false
		for i := range s.Assignments {
			if len(s.Assignments[i].Morsels) > 0 && s.Assignments[i].Executor.Kind() == sched.KindCoproc {
				coproc = true
			}
		}
		if coproc {
			// The coprocessor's groups live on the device: radix-sort there,
			// then ship the (truncated) output rows back over PCIe.
			dev := device.V100()
			o.rows = truncateRows(q, deviceSort(q, dev, rows, o))
			outBytes := int64(len(o.rows)) * rowBytes
			o.add("ship rows", device.TransferTime(outBytes), outBytes)
			return o
		}
		hostSort(q, rows, o)
	case len(gpuEx) == 1 && !cpuish:
		o.rows = truncateRows(q, deviceSort(q, sortDevice(gpuEx[0]), rows, o))
	case len(gpuEx) > 1 && !cpuish:
		// Fleet: contiguous shards of the base order, one radix sort per
		// device (concurrent — the stage is the slowest device), sorted runs
		// across the link, k-way merge on the host.
		n := len(rows)
		runs := make([][]Row, len(gpuEx))
		var makespan float64
		var shipBytes int64
		var shipped int64
		for d := range gpuEx {
			lo, hi := d*n/len(gpuEx), (d+1)*n/len(gpuEx)
			shard := rows[lo:hi]
			sub := &sortOutcome{}
			run := deviceSort(q, sortDevice(gpuEx[d]), shard, sub)
			if sub.seconds > makespan {
				makespan = sub.seconds
			}
			if q.Limit > 0 && q.Limit < len(run) {
				run = run[:q.Limit] // the global top-k is within every shard's top-k
			}
			runs[d] = run
			shipped += int64(len(run))
			shipBytes += int64(len(run)) * rowBytes
		}
		o.add(fmt.Sprintf("device sort x%d", len(gpuEx)), makespan, 0)
		o.add("ship runs", s.Link.TransferTime(shipBytes), shipBytes)
		merged := mergeRuns(q, runs, q.Limit)
		host := device.I76900()
		mergePass := &device.Pass{
			Label:         "merge sorted runs",
			BytesRead:     shipBytes,
			BytesWritten:  int64(len(merged)) * rowBytes,
			ComputeCycles: SortCmpCycles * float64(shipped) * float64(bits.Len(uint(len(gpuEx)))),
		}
		o.add("merge runs", host.PassTime(mergePass), 0)
		o.rows = merged
	default:
		// Hybrid (or an all-idle schedule): the merged groups are host-side.
		hostSort(q, rows, o)
	}
	return o
}
