package queries

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"crystal/internal/fleet"
	"crystal/internal/sched"
	"crystal/internal/sim"
	"crystal/internal/ssb"
	"crystal/internal/trace"
)

// ScanFootprint returns the fact columns a query's scan streams — its
// referenced fact columns, sorted. Two queries whose footprints overlap can
// share a scan: the shared columns stream through the device once and both
// pipelines consume the same tiles.
func ScanFootprint(q *Query) []string { return q.ReferencedFactColumns() }

// Compatible reports whether two queries are scan-compatible: their fact
// column footprints overlap, so batching them onto one shared morsel scan
// saves column traffic. Callers must additionally ensure both queries bind
// against the same dataset generation and fact encoding (plain vs packed) —
// the serving layer's batch former checks those request-level fields.
func Compatible(a, b *Query) bool {
	bs := map[string]bool{}
	for _, c := range ScanFootprint(b) {
		bs[c] = true
	}
	for _, c := range ScanFootprint(a) {
		if bs[c] {
			return true
		}
	}
	return false
}

// apportion splits total across members proportionally to weights using the
// largest-remainder method: the shares are integers, sum to total exactly,
// and never exceed the member's own weight when total <= sum(weights). Ties
// break toward the lower index, so the split is deterministic.
func apportion(total int64, weights []int64) []int64 {
	out := make([]int64, len(weights))
	var sumW int64
	for _, w := range weights {
		sumW += w
	}
	if total == 0 || len(weights) == 0 {
		return out
	}
	if sumW == 0 {
		// Unreachable for scan traffic (a counted line implies a toucher),
		// but keep the sum-exact contract for arbitrary inputs.
		out[0] = total
		return out
	}
	var assigned int64
	rems := make([]int64, len(weights))
	for i, w := range weights {
		out[i] = total * w / sumW
		rems[i] = total * w % sumW
		assigned += out[i]
	}
	for leftover := total - assigned; leftover > 0; leftover-- {
		best := -1
		for i := range rems {
			if rems[i] > 0 && (best < 0 || rems[i] > rems[best]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out[best]++
		rems[best] = 0
	}
	return out
}

// BatchMember is one query's slice of a shared-scan batch execution.
type BatchMember struct {
	// Query is the member's compiled query.
	Query Query
	// Result carries the member's rows from the shared scan — byte-identical
	// to its solo run by construction (tile-aligned chunks make the
	// per-member statistics and aggregates exactly additive) — and the
	// execution telemetry (Seconds, Morsels, TransferBytes, ...) of the
	// member's own solo schedule, so a batched response reports the same
	// simulated seconds a solo run of the same request would.
	Result *Result
	// ShareSeconds is the member's share of the batch's simulated time:
	// its solo seconds discounted by the fraction of its scan lines the
	// apportionment charged it after shared lines were split. Shares sum
	// exactly to BatchResult.Seconds, and a singleton batch's share equals
	// its solo seconds exactly.
	ShareSeconds float64
	// ScanBytes is the member's apportioned slice of the shared scan
	// traffic and SoloScanBytes what its solo scan would have streamed;
	// per batch, sum(ScanBytes) == SharedScanBytes exactly.
	ScanBytes     int64
	SoloScanBytes int64
	// Executors, MergeBytes and MergeSeconds echo the member's solo
	// schedule telemetry (per-arm splits, partial-aggregate merge pricing).
	Executors    []ExecutorResult
	MergeBytes   int64
	MergeSeconds float64
	// Trace is the member's span (Phase batch-member, Sim == ShareSeconds)
	// wrapping its solo run span; nil unless opts.Trace asked for one.
	Trace *trace.Span
}

// BatchResult is the outcome of one shared-scan batch execution
// (RunBatch / RunBatchFleet / RunBatchHybrid).
type BatchResult struct {
	// Members holds one entry per plan, in input order.
	Members []*BatchMember
	// Seconds is the batch's simulated time: the sum of the members'
	// ShareSeconds (exact by construction). At batch size >= 2 with
	// overlapping footprints it is strictly less than the sum of the
	// members' solo seconds — the shared-scan win.
	Seconds float64
	// SharedScanBytes counts each 64 B line of each fact column once when
	// any member touched it — what the shared scan actually streams.
	// SoloScanBytes is the sum of the members' solo line bytes; the gap is
	// the traffic the batch deduplicated.
	SharedScanBytes int64
	SoloScanBytes   int64
	// GPUs, Interconnect and CPUFrac echo the fleet shape of the fleet and
	// hybrid batch placements (zero values for the engine path).
	GPUs         int
	Interconnect string
	CPUFrac      float64
	// Trace is the batch span (Phase batch, Sim == Seconds) with one
	// batch-member child per member; nil unless opts.Trace asked for one.
	Trace *trace.Span
}

// batchMemberCtx is one member's resolved pipeline context for the shared
// scan: its query, join tables, column readers and per-canonical-morsel
// liveness mask.
type batchMemberCtx struct {
	q        *Query
	builds   []buildInfo
	filters  []colReader
	fks      []colReader
	aggCols  []string
	aggRead  []colReader
	ast      *aggState
	nPayload int
	live     []bool
}

// runBatchShared executes every member's filter/join/aggregate pipeline
// inside one shared pass over the union of the members' live morsels. Rows
// ascend in the outer loop and members evaluate in order within a row, so:
//
//   - each member's access statistics and partial aggregates are identical
//     to its solo runPipelineMorsels (chunks are tile-aligned and never span
//     morsels, so per-chunk distinct-line counts are exactly additive), and
//   - the union line counters see a monotone row sequence per column, so
//     consecutive-dedup counts exactly the distinct lines any member touched
//     — the traffic a shared scan streams once.
//
// It returns the raw per-member results (unfinalized aggregates), the
// per-member access stats, and the per-column union 64 B / 128 B line counts.
func runBatchShared(ds *ssb.Dataset, plans []*Plan, mss []*morselRun) ([]*Result, []*pipeStats, map[string]int64, map[string]int64) {
	n := len(plans)
	morsels := mss[0].morsels
	ctxs := make([]*batchMemberCtx, n)
	results := make([]*Result, n)
	stats := make([]*pipeStats, n)
	for i, p := range plans {
		q := &p.Query
		ms := mss[i]
		st := &pipeStats{
			totalRows: int64(ds.Lineorder.Rows()),
			packed:    ms.packed != nil,
			lines64:   map[string]int64{},
			lines128:  map[string]int64{},
			evals:     make([]int64, len(q.FactFilters)),
			probes:    make([]int64, len(q.Joins)),
			alive:     make([]int64, len(q.FactFilters)+len(q.Joins)),
		}
		for _, m := range ms.live {
			st.rows += int64(m.Rows())
		}
		ctx := &batchMemberCtx{q: q, builds: p.builds, ast: newAggState(q), nPayload: len(q.GroupPayloads())}
		ctx.filters = make([]colReader, len(q.FactFilters))
		for fi := range q.FactFilters {
			ctx.filters[fi] = ms.factReader(&ds.Lineorder, q.FactFilters[fi].Col)
			st.colOrder = append(st.colOrder, q.FactFilters[fi].Col)
		}
		ctx.fks = make([]colReader, len(q.Joins))
		for ji := range q.Joins {
			ctx.fks[ji] = ms.factReader(&ds.Lineorder, q.Joins[ji].FactFK)
			st.colOrder = append(st.colOrder, q.Joins[ji].FactFK)
		}
		ctx.aggCols = q.AggColumns()
		ctx.aggRead = make([]colReader, len(ctx.aggCols))
		for ai, c := range ctx.aggCols {
			ctx.aggRead[ai] = ms.factReader(&ds.Lineorder, c)
			st.colOrder = append(st.colOrder, c)
		}
		ctx.live = make([]bool, len(morsels))
		for mi := range morsels {
			ctx.live[mi] = !ms.pruned[mi]
		}
		if st.packed {
			st.scanBytes = map[string]int64{}
			st.footBytes = map[string]int64{}
			for _, col := range st.colOrder {
				if _, ok := st.footBytes[col]; ok {
					continue
				}
				fr := ms.packed.Col(col)
				st.footBytes[col] = fr.Bytes()
				var b int64
				for _, m := range ms.live {
					b += fr.BytesRange(m.Lo, m.Hi)
				}
				st.scanBytes[col] = b
			}
		}
		res := &Result{QueryID: q.ID, Groups: map[int64]int64{}}
		if ctx.ast != nil {
			res.accs = map[int64][]int64{}
		}
		ctxs[i], results[i], stats[i] = ctx, res, st
	}

	// Chunks over the union of the members' live morsels, each tagged with
	// its canonical morsel index so the row loop can gate members.
	type batchChunk struct{ mi, lo, hi int }
	var chunks []batchChunk
	for mi, m := range morsels {
		liveAny := false
		for i := range ctxs {
			if ctxs[i].live[mi] {
				liveAny = true
				break
			}
		}
		if !liveAny {
			continue
		}
		for lo := m.Lo; lo < m.Hi; lo += chunkRows {
			hi := lo + chunkRows
			if hi > m.Hi {
				hi = m.Hi
			}
			chunks = append(chunks, batchChunk{mi: mi, lo: lo, hi: hi})
		}
	}

	union64 := map[string]int64{}
	union128 := map[string]int64{}
	if len(chunks) == 0 {
		return results, stats, union64, union128
	}

	var next int64
	var mu sync.Mutex
	worker := func() {
		wss := make([]wstat, n)
		last64 := make([]map[string]int64, n)
		last128 := make([]map[string]int64, n)
		payloads := make([][]int32, n)
		vals := make([][]int32, n)
		for i, ctx := range ctxs {
			wss[i] = wstat{
				lines64:  map[string]int64{},
				lines128: map[string]int64{},
				evals:    make([]int64, len(ctx.q.FactFilters)),
				probes:   make([]int64, len(ctx.q.Joins)),
				alive:    make([]int64, len(ctx.q.FactFilters)+len(ctx.q.Joins)),
				groups:   map[int64]int64{},
			}
			if ctx.ast != nil {
				wss[i].accs = map[int64][]int64{}
			}
			last64[i] = map[string]int64{}
			last128[i] = map[string]int64{}
			payloads[i] = make([]int32, 0, ctx.nPayload)
			vals[i] = make([]int32, len(ctx.aggCols))
		}
		u64 := map[string]int64{}
		u128 := map[string]int64{}
		ulast64 := map[string]int64{}
		ulast128 := map[string]int64{}
		// touch meters one column read for member i and folds the same line
		// into the union trackers: the shared scan streams a line once no
		// matter how many members consume it.
		touch := func(i int, col string, cr colReader, row int) {
			var l64, l128 int64 = -1, -1
			if cr.packed != nil {
				l64 = cr.packed.LineOf(row, 64)
				l128 = cr.packed.LineOf(row, 128)
			} else {
				l64 = int64(row >> 4)
				l128 = int64(row >> 5)
			}
			if l64 >= 0 {
				if last64[i][col] != l64+1 {
					last64[i][col] = l64 + 1
					wss[i].lines64[col]++
				}
				if ulast64[col] != l64+1 {
					ulast64[col] = l64 + 1
					u64[col]++
				}
			}
			if l128 >= 0 {
				if last128[i][col] != l128+1 {
					last128[i][col] = l128 + 1
					wss[i].lines128[col]++
				}
				if ulast128[col] != l128+1 {
					ulast128[col] = l128 + 1
					u128[col]++
				}
			}
		}
		for {
			ci := int(atomic.AddInt64(&next, 1) - 1)
			if ci >= len(chunks) {
				break
			}
			c := chunks[ci]
			for row := c.lo; row < c.hi; row++ {
				for i, ctx := range ctxs {
					if !ctx.live[c.mi] {
						continue
					}
					q := ctx.q
					ws := &wss[i]
					dead := false
					for fi := range q.FactFilters {
						ws.evals[fi]++
						touch(i, q.FactFilters[fi].Col, ctx.filters[fi], row)
						if !q.FactFilters[fi].Match(ctx.filters[fi].at(row)) {
							dead = true
							break
						}
						ws.alive[fi]++
					}
					if dead {
						continue
					}
					payloads[i] = payloads[i][:0]
					for ji := range q.Joins {
						ws.probes[ji]++
						touch(i, q.Joins[ji].FactFK, ctx.fks[ji], row)
						v, ok := ctx.builds[ji].ht.Get(ctx.fks[ji].at(row))
						if !ok {
							dead = true
							break
						}
						ws.alive[len(q.FactFilters)+ji]++
						if q.Joins[ji].Payload != "" {
							payloads[i] = append(payloads[i], v)
						}
					}
					if dead {
						continue
					}
					for ai := range vals[i] {
						touch(i, ctx.aggCols[ai], ctx.aggRead[ai], row)
						vals[i][ai] = ctx.aggRead[ai].at(row)
					}
					ws.out++
					key := PackGroup(payloads[i])
					if ctx.ast != nil {
						acc, ok := ws.accs[key]
						if !ok {
							acc = ctx.ast.identity()
							ws.accs[key] = acc
						}
						ctx.ast.update(acc, vals[i])
					} else {
						ws.groups[key] += q.Agg.Eval(vals[i])
					}
				}
			}
		}
		mu.Lock()
		defer mu.Unlock()
		for i := range ctxs {
			ws, st, res := &wss[i], stats[i], results[i]
			for c, v := range ws.lines64 {
				st.lines64[c] += v
			}
			for c, v := range ws.lines128 {
				st.lines128[c] += v
			}
			for fi, v := range ws.evals {
				st.evals[fi] += v
			}
			for ji, v := range ws.probes {
				st.probes[ji] += v
			}
			for ai, v := range ws.alive {
				st.alive[ai] += v
			}
			st.out += ws.out
			for k, v := range ws.groups {
				res.Groups[k] += v
			}
			for k, acc := range ws.accs {
				if dst, ok := res.accs[k]; ok {
					ctxs[i].ast.merge(dst, acc)
				} else {
					res.accs[k] = acc
				}
			}
		}
		for c, v := range u64 {
			union64[c] += v
		}
		for c, v := range u128 {
			union128[c] += v
		}
	}
	sim.RunWithHelpers(len(chunks), mss[0].lim, worker)
	return results, stats, union64, union128
}

// runBatch is the shared core of the batch placements: one shared scan over
// the union of the members' live morsels produces every member's rows, and
// each member's own solo schedule (scheduleOf) prices it — the member's
// Result.Seconds is exactly its solo seconds, while its ShareSeconds
// discounts that by the apportioned fraction of its scan lines. Residency
// caching is disabled for batches (residency-dependent seconds would make
// the solo pricing depend on cache state).
func runBatch(plans []*Plan, opts RunOptions, scheduleOf func(*Plan) (sched.Schedule, error)) (*BatchResult, error) {
	if len(plans) == 0 {
		return nil, errors.New("queries: empty batch")
	}
	ds := plans[0].ds
	for i, p := range plans {
		if p.ds != ds {
			return nil, fmt.Errorf("queries: batch member %d compiled against a different dataset", i)
		}
	}
	opts.Partition.Residency = nil
	opts.Fleet.Residency = nil

	mss := make([]*morselRun, len(plans))
	for i, p := range plans {
		mss[i] = p.morselRun(opts)
		if len(mss[i].morsels) != len(mss[0].morsels) {
			return nil, fmt.Errorf("queries: batch member %d has %d morsels, member 0 has %d",
				i, len(mss[i].morsels), len(mss[0].morsels))
		}
	}

	raws, sts, union64, _ := runBatchShared(ds, plans, mss)

	out := &BatchResult{}
	for _, v := range union64 {
		out.SharedScanBytes += v * 64
	}

	// Per-column weights in member order, apportioned over the union count.
	memberLineBytes := make([]int64, len(plans))
	soloLineBytes := make([]int64, len(plans))
	for c, total := range union64 {
		weights := make([]int64, len(plans))
		for i := range plans {
			weights[i] = sts[i].lines64[c]
		}
		share := apportion(total, weights)
		for i := range plans {
			memberLineBytes[i] += share[i] * 64
		}
	}
	for i := range plans {
		for _, v := range sts[i].lines64 {
			soloLineBytes[i] += v * 64
		}
		out.SoloScanBytes += soloLineBytes[i]
	}

	var memberSpans []*trace.Span
	for i, p := range plans {
		q := p.Query
		s, err := scheduleOf(p)
		if err != nil {
			return nil, err
		}
		sr, err := p.RunScheduled(s)
		if err != nil {
			return nil, err
		}
		// Finalize the shared scan's raw aggregates into the member's rows;
		// ORDER BY runs on the member's own schedule hardware, exactly as the
		// solo run prices it (the sort seconds are already inside sr).
		raw := raws[i]
		finalizeGroups(&q, newAggState(&q), raw.accs, raw)
		if len(q.OrderBy) > 0 {
			raw.Ordered = p.executeSort(s, resultRows(&q, raw)).rows
		}
		raw.Seconds = sr.Result.Seconds
		raw.KernelSeconds = sr.Result.KernelSeconds
		raw.Morsels = sr.Result.Morsels
		raw.Pruned = sr.Result.Pruned
		raw.Packed = sr.Result.Packed
		raw.TransferBytes = sr.Result.TransferBytes
		raw.ResidentCols = sr.Result.ResidentCols

		ratio := 1.0
		if soloLineBytes[i] > 0 {
			ratio = float64(memberLineBytes[i]) / float64(soloLineBytes[i])
		}
		m := &BatchMember{
			Query:         q,
			Result:        raw,
			ShareSeconds:  sr.Result.Seconds * ratio,
			ScanBytes:     memberLineBytes[i],
			SoloScanBytes: soloLineBytes[i],
			Executors:     sr.Executors,
			MergeBytes:    sr.MergeBytes,
			MergeSeconds:  sr.MergeSeconds,
		}
		out.Seconds += m.ShareSeconds
		if opts.Trace && sr.Trace != nil {
			m.Trace = &trace.Span{
				Name:     q.ID,
				Phase:    trace.PhaseBatchMember,
				Sim:      m.ShareSeconds,
				Bytes:    m.ScanBytes,
				Rows:     sts[i].rows,
				Children: []*trace.Span{sr.Trace},
			}
			memberSpans = append(memberSpans, m.Trace)
		}
		out.Members = append(out.Members, m)
	}
	if opts.Trace && len(memberSpans) == len(plans) {
		out.Trace = &trace.Span{
			Phase:    trace.PhaseBatch,
			Sim:      out.Seconds,
			Bytes:    out.SharedScanBytes,
			Morsels:  len(mss[0].morsels),
			Children: memberSpans,
		}
	}
	return out, nil
}

// RunBatch executes the compiled plans as one shared-scan batch on a single
// engine: every member's filter/join/aggregate pipeline evaluates per tile
// inside one pass over the union of the members' live morsels, so shared
// column lines stream once and the saved traffic is split across members
// (BatchMember.ScanBytes, sum-exact). Each member's rows are byte-identical
// to its solo RunScheduled and its Result.Seconds is exactly the solo
// seconds; ShareSeconds carries the discounted split, summing exactly to
// BatchResult.Seconds. A batch of one is identical to the solo run.
func RunBatch(plans []*Plan, e Engine, opts RunOptions) (*BatchResult, error) {
	return runBatch(plans, opts, func(p *Plan) (sched.Schedule, error) {
		return p.ScheduleEngine(e, opts), nil
	})
}

// RunBatchFleet executes the plans as one shared-scan batch across the GPU
// fleet fl: scan sharing follows RunBatch, while each member is priced by
// its own fleet schedule (ScheduleFleet — identical shard map for every
// member, since fleet.Assign is query-independent). See RunBatch for the
// row-identity and traffic-splitting invariants.
func RunBatchFleet(plans []*Plan, fl fleet.Spec, opts RunOptions) (*BatchResult, error) {
	fl, err := fl.Normalized()
	if err != nil {
		return nil, err
	}
	if opts.Partition.Partitions < fl.GPUs {
		opts.Partition.Partitions = fl.GPUs
	}
	out, err := runBatch(plans, opts, func(p *Plan) (sched.Schedule, error) {
		return p.ScheduleFleet(fl, opts)
	})
	if err != nil {
		return nil, err
	}
	out.GPUs = fl.GPUs
	out.Interconnect = fl.Link.Name
	return out, nil
}

// RunBatchHybrid executes the plans as one shared-scan batch on the hybrid
// CPU+GPU placement (frac 1 is the pure-CPU arm, 0 pure-GPU, negative the
// throughput-balanced default — the same fractions the placement router
// maps cpu/gpu/hybrid onto). Scan sharing follows RunBatch; each member is
// priced by its own hybrid schedule at the same resolved fraction.
func RunBatchHybrid(plans []*Plan, fl fleet.Spec, frac float64, opts RunOptions) (*BatchResult, error) {
	fl, err := fl.Normalized()
	if err != nil {
		return nil, err
	}
	if opts.Partition.Partitions < fl.GPUs+1 {
		opts.Partition.Partitions = fl.GPUs + 1
	}
	resolved := frac
	out, err := runBatch(plans, opts, func(p *Plan) (sched.Schedule, error) {
		s, f, err := p.ScheduleHybrid(fl, frac, opts)
		resolved = f
		return s, err
	})
	if err != nil {
		return nil, err
	}
	out.GPUs = fl.GPUs
	out.Interconnect = fl.Link.Name
	out.CPUFrac = resolved
	return out, nil
}

// FleetDevices renders placement-agnostic executor telemetry as the
// fleet-shaped per-device view (RunFleet's Devices); the serving layer uses
// it to report batched fleet members with the same telemetry shape as solo
// fleet responses.
func FleetDevices(ers []ExecutorResult) []FleetDevice {
	out := make([]FleetDevice, 0, len(ers))
	for _, er := range ers {
		out = append(out, FleetDevice{
			Device:       er.Device,
			Morsels:      er.Morsels,
			Pruned:       er.Pruned,
			Rows:         er.Rows,
			Seconds:      er.Seconds,
			SpillBytes:   er.ShipBytes,
			ResidentCols: er.ResidentCols,
			Groups:       er.Groups,
		})
	}
	return out
}
