package queries

import (
	"sort"

	"crystal/internal/crystal"
)

// AggFunc is an aggregate function. FuncSum over one of the three AggKind
// expressions is the legacy shape every engine has run since the seed; the
// others arrived with the ORDER BY / multi-aggregate surface.
type AggFunc int

const (
	FuncSum AggFunc = iota
	FuncCount
	FuncAvg
	FuncMin
	FuncMax
)

// String returns the SQL spelling of the function.
func (f AggFunc) String() string {
	switch f {
	case FuncCount:
		return "COUNT"
	case FuncAvg:
		return "AVG"
	case FuncMin:
		return "MIN"
	case FuncMax:
		return "MAX"
	default:
		return "SUM"
	}
}

// AggSpec is one aggregate of a multi-aggregate statement: a function over
// one of the AggKind input expressions. FuncCount ignores Expr (COUNT(*)).
type AggSpec struct {
	Func AggFunc
	Expr AggKind
}

// Slots returns the number of 8-byte accumulator slots the aggregate needs:
// AVG carries (sum, count) so it can merge exactly across partials; every
// other function needs one.
func (s AggSpec) Slots() int {
	if s.Func == FuncAvg {
		return 2
	}
	return 1
}

// OrderKey is one ORDER BY key. Item >= 0 orders by the Item'th aggregate of
// AggList(); Item == -1 orders by group payload slot Group. Ties cascade to
// the next key and finally to the packed group key ascending, so ORDER BY
// always defines a total order — the reason every engine, placement, and
// sort algorithm must produce byte-identical output.
type OrderKey struct {
	Item  int
	Group int
	Desc  bool
}

// AggList returns the statement's aggregates: Aggs when set, otherwise the
// legacy single SUM over Agg.
func (q *Query) AggList() []AggSpec {
	if q.Aggs != nil {
		return q.Aggs
	}
	return []AggSpec{{Func: FuncSum, Expr: q.Agg}}
}

// AggColumns returns the distinct fact columns the statement's aggregate
// expressions read, in first-appearance order (exactly Agg.Columns() for
// legacy queries, so their scan footprint is unchanged).
func (q *Query) AggColumns() []string {
	if q.Aggs == nil {
		return q.Agg.Columns()
	}
	seen := map[string]bool{}
	var cols []string
	for _, s := range q.Aggs {
		if s.Func == FuncCount {
			continue
		}
		for _, c := range s.Expr.Columns() {
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
	}
	return cols
}

// aggState precomputes the accumulator layout of a multi-aggregate query:
// the slots each aggregate owns, each slot's merge operator, and where each
// aggregate's input columns sit in AggColumns order. It is nil for legacy
// single-SUM queries, which keep their original map[int64]int64 path —
// that is what keeps the pre-existing benchmarks byte-identical.
type aggState struct {
	specs  []AggSpec
	cols   []string
	colIdx [][]int
	slotOf []int
	ops    []crystal.SlotOp
}

func newAggState(q *Query) *aggState {
	if q.Aggs == nil {
		return nil
	}
	st := &aggState{specs: q.Aggs, cols: q.AggColumns()}
	pos := map[string]int{}
	for i, c := range st.cols {
		pos[c] = i
	}
	for _, s := range st.specs {
		st.slotOf = append(st.slotOf, len(st.ops))
		var idx []int
		if s.Func != FuncCount {
			for _, c := range s.Expr.Columns() {
				idx = append(idx, pos[c])
			}
		}
		st.colIdx = append(st.colIdx, idx)
		switch s.Func {
		case FuncMin:
			st.ops = append(st.ops, crystal.SlotMin)
		case FuncMax:
			st.ops = append(st.ops, crystal.SlotMax)
		case FuncAvg:
			st.ops = append(st.ops, crystal.SlotAdd, crystal.SlotAdd)
		default:
			st.ops = append(st.ops, crystal.SlotAdd)
		}
	}
	return st
}

func (st *aggState) slots() int { return len(st.ops) }

// identity returns a fresh accumulator vector of merge identities.
func (st *aggState) identity() []int64 {
	acc := make([]int64, len(st.ops))
	for i, op := range st.ops {
		acc[i] = op.Identity()
	}
	return acc
}

// eval computes spec i's input expression over one row's AggColumns values.
func (st *aggState) eval(i int, vals []int32) int64 {
	idx := st.colIdx[i]
	switch st.specs[i].Expr {
	case AggSumExtDisc:
		return int64(vals[idx[0]]) * int64(vals[idx[1]])
	case AggSumProfit:
		return int64(vals[idx[0]]) - int64(vals[idx[1]])
	default:
		return int64(vals[idx[0]])
	}
}

// rowDeltas fills out with one row's contribution vector (what a GPU block
// hands to MultiAggTable.Update: min/max slots carry the row value itself,
// add slots the delta).
func (st *aggState) rowDeltas(vals []int32, out []int64) {
	for i, s := range st.specs {
		slot := st.slotOf[i]
		switch s.Func {
		case FuncCount:
			out[slot] = 1
		case FuncAvg:
			out[slot] = st.eval(i, vals)
			out[slot+1] = 1
		default:
			out[slot] = st.eval(i, vals)
		}
	}
}

// update merges one row directly into an accumulator vector (the CPU path).
func (st *aggState) update(acc []int64, vals []int32) {
	for i, s := range st.specs {
		slot := st.slotOf[i]
		switch s.Func {
		case FuncCount:
			acc[slot]++
		case FuncAvg:
			acc[slot] += st.eval(i, vals)
			acc[slot+1]++
		case FuncMin:
			if v := st.eval(i, vals); v < acc[slot] {
				acc[slot] = v
			}
		case FuncMax:
			if v := st.eval(i, vals); v > acc[slot] {
				acc[slot] = v
			}
		default:
			acc[slot] += st.eval(i, vals)
		}
	}
}

// merge combines two accumulator vectors slot-wise; every operator is
// associative and commutative, so partials merge exactly in any order.
func (st *aggState) merge(dst, src []int64) {
	for s, op := range st.ops {
		dst[s] = op.Merge(dst[s], src[s])
	}
}

// finalize converts a raw accumulator vector into the per-aggregate values:
// AVG divides (integer division, matching the dictionary-coded int columns),
// and untouched MIN/MAX sentinels — only possible for the backfilled global
// aggregate row — collapse to 0.
func (st *aggState) finalize(acc []int64) []int64 {
	out := make([]int64, len(st.specs))
	for i, s := range st.specs {
		slot := st.slotOf[i]
		switch s.Func {
		case FuncAvg:
			if acc[slot+1] != 0 {
				out[i] = acc[slot] / acc[slot+1]
			}
		case FuncMin, FuncMax:
			if acc[slot] != st.ops[slot].Identity() {
				out[i] = acc[slot]
			}
		default:
			out[i] = acc[slot]
		}
	}
	return out
}

// aggRowBytes is the per-group footprint of the aggregation table the
// engines price: the 8-byte packed key plus 8 bytes per accumulator slot
// (exactly the historical 16 for legacy single-SUM queries).
func aggRowBytes(q *Query) int64 {
	if st := newAggState(q); st != nil {
		return int64(8 + 8*st.slots())
	}
	return 16
}

// AggRowBytes exposes the per-group accumulator footprint to the planner,
// which prices merge traffic with the same number the executor charges.
func (q *Query) AggRowBytes() int64 { return aggRowBytes(q) }

// finalizeGroups converts raw accumulators into the Result's public maps:
// Aggs (every aggregate) and Groups (the first aggregate, so legacy
// consumers keep working). Legacy queries keep their Groups map untouched
// apart from the global-aggregate backfill.
func finalizeGroups(q *Query, st *aggState, accs map[int64][]int64, res *Result) {
	if st == nil {
		if len(q.GroupPayloads()) == 0 && len(res.Groups) == 0 {
			res.Groups[0] = 0 // a global aggregate always yields one row
		}
		return
	}
	if len(q.GroupPayloads()) == 0 && len(accs) == 0 {
		accs[0] = st.identity()
	}
	res.Aggs = make(map[int64][]int64, len(accs))
	for k, acc := range accs {
		fin := st.finalize(acc)
		res.Aggs[k] = fin
		res.Groups[k] = fin[0]
	}
}

// resultRows materializes the finalized groups as rows sorted by packed key
// ascending — the base order every sort algorithm starts from.
func resultRows(q *Query, res *Result) []Row {
	keys := make([]int64, 0, len(res.Groups))
	for k := range res.Groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	rows := make([]Row, len(keys))
	for i, k := range keys {
		var vals []int64
		if res.Aggs != nil {
			vals = append([]int64(nil), res.Aggs[k]...)
		} else {
			vals = []int64{res.Groups[k]}
		}
		rows[i] = Row{Key: k, Vals: vals}
	}
	return rows
}

// orderVal extracts the value an OrderKey compares for one row.
func orderVal(q *Query, k OrderKey, r Row) int64 {
	if k.Item >= 0 {
		return r.Vals[k.Item]
	}
	return int64(UnpackGroup(r.Key, len(q.GroupPayloads()))[k.Group])
}

// rowLess is the total order ORDER BY defines: the keys in sequence, then
// the packed group key ascending as the final tie-break.
func (q *Query) rowLess(a, b Row) bool {
	for _, k := range q.OrderBy {
		av, bv := orderVal(q, k, a), orderVal(q, k, b)
		if av != bv {
			if k.Desc {
				return av > bv
			}
			return av < bv
		}
	}
	return a.Key < b.Key
}

// orderRowsOracle sorts rows with the comparator directly (the reference
// ordering the real sort implementations are tested against).
func orderRowsOracle(q *Query, rows []Row) []Row {
	// Always non-nil: a nil Ordered means "no ORDER BY", and an ordered
	// query with zero result rows must still carry an (empty) ordering.
	out := append(make([]Row, 0, len(rows)), rows...)
	sort.Slice(out, func(i, j int) bool { return q.rowLess(out[i], out[j]) })
	return out
}

// truncateRows applies LIMIT.
func truncateRows(q *Query, rows []Row) []Row {
	if q.Limit > 0 && len(rows) > q.Limit {
		return rows[:q.Limit]
	}
	return rows
}
