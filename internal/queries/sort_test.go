package queries

import (
	"math/rand"
	"testing"

	"crystal/internal/device"
)

// sortTestQuery builds a query shape for the sort-algorithm property tests:
// two group payloads (so Group order keys have two slots to unpack) and two
// aggregates (so Item order keys have two values to compare).
func sortTestQuery(keys []OrderKey, limit int) Query {
	return Query{
		ID:      "sorttest",
		Joins:   []JoinSpec{{Dim: "date", Payload: "year"}, {Dim: "part", Payload: "brand1"}},
		Aggs:    []AggSpec{{Func: FuncSum}, {Func: FuncMax}},
		OrderBy: keys,
		Limit:   limit,
	}
}

// randomSortRows draws n result rows with deliberately small value domains,
// so every ordering has heavy ties and the tests exercise the key-cascade
// and the packed-key tie-break.
func randomSortRows(r *rand.Rand, n int) []Row {
	rows := make([]Row, n)
	seen := map[int64]bool{}
	for i := range rows {
		var key int64
		for {
			key = PackGroup([]int32{int32(r.Intn(6)), int32(r.Intn(50))})
			if !seen[key] {
				seen[key] = true
				break
			}
		}
		rows[i] = Row{Key: key, Vals: []int64{int64(r.Intn(5) - 2), int64(r.Intn(1000))}}
	}
	return rows
}

// randomOrderKeys draws 1-2 order keys over the two aggregates and the two
// group slots of sortTestQuery.
func randomOrderKeys(r *rand.Rand) []OrderKey {
	keys := make([]OrderKey, 1+r.Intn(2))
	for i := range keys {
		k := OrderKey{Desc: r.Intn(2) == 0}
		if r.Intn(2) == 0 {
			k.Item = r.Intn(2)
		} else {
			k.Item, k.Group = -1, r.Intn(2)
		}
		keys[i] = k
	}
	return keys
}

// TestMergeSortMatchesOracle: the bottom-up merge sort must reproduce the
// comparator-defined total order exactly, for every size and key shape.
func TestMergeSortMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 17, 64, 257} {
		for trial := 0; trial < 20; trial++ {
			q := sortTestQuery(randomOrderKeys(r), 0)
			rows := randomSortRows(r, n)
			want := orderRowsOracle(&q, rows)
			got, passes := mergeSortRows(&q, rows)
			for i := range want {
				if got[i].Key != want[i].Key {
					t.Fatalf("n=%d trial=%d keys=%v: row %d is %d, want %d", n, trial, q.OrderBy, i, got[i].Key, want[i].Key)
				}
			}
			if n > 1 && passes <= 0 {
				t.Fatalf("n=%d: merge sort reported %d passes", n, passes)
			}
		}
	}
}

// TestHeapTopNMatchesOracle: the bounded heap must return exactly the first
// k rows of the full sort — the top-N ≡ sort-then-truncate property.
func TestHeapTopNMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 33, 128} {
		for _, k := range []int{0, 1, 2, 7, n, n + 3} {
			q := sortTestQuery(randomOrderKeys(r), k)
			rows := randomSortRows(r, n)
			want := orderRowsOracle(&q, rows)
			if k > 0 && k < len(want) {
				want = want[:k]
			}
			got := heapTopN(&q, rows, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: got %d rows, want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Key != want[i].Key {
					t.Fatalf("n=%d k=%d keys=%v: row %d is %d, want %d", n, k, q.OrderBy, i, got[i].Key, want[i].Key)
				}
			}
		}
	}
}

// TestRadixSortRowsMatchesOracle: the GPU per-key LSD radix sort must land
// on the same total order as the comparator oracle (its per-key stability is
// what makes the key cascade correct).
func TestRadixSortRowsMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	charged := false
	for _, n := range []int{0, 1, 2, 65, 300} {
		for trial := 0; trial < 10; trial++ {
			q := sortTestQuery(randomOrderKeys(r), 0)
			rows := randomSortRows(r, n)
			// The radix cascade assumes the base packed-key order, exactly as
			// executeSort receives it from resultRows.
			base, _ := mergeSortRows(&Query{}, rows) // no keys: packed-key ascending
			want := orderRowsOracle(&q, rows)
			clk := device.NewClock(device.V100())
			got := radixSortRows(&q, clk, base)
			for i := range want {
				if got[i].Key != want[i].Key {
					t.Fatalf("n=%d trial=%d keys=%v: row %d is %d, want %d", n, trial, q.OrderBy, i, got[i].Key, want[i].Key)
				}
			}
			// All rows can tie on every drawn key (width 0: no passes, no
			// traffic), so time is only required across the whole run.
			if clk.Seconds() > 0 {
				charged = true
			}
		}
	}
	if !charged {
		t.Error("no radix sort trial charged any simulated time")
	}
}

// TestMergeRunsMatchesOracle: k-way merging sorted runs must reproduce the
// total order of the union, with and without a limit — the fleet invariant.
func TestMergeRunsMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, nRuns := range []int{1, 2, 3, 8} {
		for _, limit := range []int{0, 1, 5} {
			q := sortTestQuery(randomOrderKeys(r), limit)
			rows := randomSortRows(r, 100)
			sorted := orderRowsOracle(&q, rows)
			// Deal the sorted rows round-robin: every run stays sorted.
			runs := make([][]Row, nRuns)
			for i, row := range sorted {
				runs[i%nRuns] = append(runs[i%nRuns], row)
			}
			got := mergeRuns(&q, runs, limit)
			want := sorted
			if limit > 0 && limit < len(want) {
				want = want[:limit]
			}
			if len(got) != len(want) {
				t.Fatalf("runs=%d limit=%d: got %d rows, want %d", nRuns, limit, len(got), len(want))
			}
			for i := range want {
				if got[i].Key != want[i].Key {
					t.Fatalf("runs=%d limit=%d: row %d is %d, want %d", nRuns, limit, i, got[i].Key, want[i].Key)
				}
			}
		}
	}
	if out := mergeRuns(&Query{}, nil, 0); len(out) != 0 {
		t.Fatalf("merging no runs returned %d rows", len(out))
	}
}

// TestEncodeOrderKey: the radix key encoding must be order-preserving
// (ascending) and order-inverting (descending) over the full int64 range.
func TestEncodeOrderKey(t *testing.T) {
	vals := []int64{-1 << 62, -100, -1, 0, 1, 99, 1 << 62}
	for i := 1; i < len(vals); i++ {
		if encodeOrderKey(vals[i-1], false) >= encodeOrderKey(vals[i], false) {
			t.Errorf("asc encoding not monotone at %d < %d", vals[i-1], vals[i])
		}
		if encodeOrderKey(vals[i-1], true) <= encodeOrderKey(vals[i], true) {
			t.Errorf("desc encoding not anti-monotone at %d < %d", vals[i-1], vals[i])
		}
	}
}

// TestSortCostModel checks the planner-facing cost helpers: zero for
// degenerate inputs, monotone in n, and the heap strictly cheaper than the
// full sort for a small k over many rows (the condition that makes
// placement=auto pick the heap).
func TestSortCostModel(t *testing.T) {
	host, gpu := device.I76900(), device.V100()
	if MergeSortCost(host, 1, 16) != 0 || TopNHeapCost(host, 0, 16, 5) != 0 || RadixSortCost(gpu, 1, 1, 20) != 0 {
		t.Fatal("degenerate sorts must cost nothing")
	}
	if MergeSortCost(host, 1000, 16) >= MergeSortCost(host, 100_000, 16) {
		t.Error("merge sort cost not monotone in n")
	}
	if TopNHeapCost(host, 100_000, 16, 5) >= MergeSortCost(host, 100_000, 16) {
		t.Error("heap top-5 over 100k rows should price under the full sort")
	}
	if TopNHeapCost(host, 100, 16, 100) != MergeSortCost(host, 100, 16) {
		t.Error("k >= n must fall back to the full-sort price")
	}
	if one, two := RadixSortCost(gpu, 10_000, 1, 20), RadixSortCost(gpu, 10_000, 2, 20); two <= one {
		t.Error("two sort keys must cost more than one")
	}
	q := sortTestQuery(nil, 0)
	if q.SortRowBytes() != 8+8*2 {
		t.Errorf("SortRowBytes = %d, want 24", q.SortRowBytes())
	}
	if q.AggRowBytes() != 8+8*2 {
		t.Errorf("AggRowBytes = %d, want 24 (SUM+MAX is two slots)", q.AggRowBytes())
	}
	avg := Query{Aggs: []AggSpec{{Func: FuncAvg}}}
	if avg.AggRowBytes() != 8+8*2 {
		t.Errorf("AVG AggRowBytes = %d, want 24 (sum+count slots)", avg.AggRowBytes())
	}
	if (&Query{}).AggRowBytes() != 16 {
		t.Error("legacy single-SUM row must stay 16 bytes")
	}
}
