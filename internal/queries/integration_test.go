package queries

import (
	"path/filepath"
	"testing"

	"crystal/internal/ssb"
)

// TestEnginesOnPersistedDataset is the cross-module integration test: a
// dataset round-trips through the binary columnar format (cmd/datagen's
// path) and every engine must produce the same rows on the loaded copy as
// on the in-memory original.
func TestEnginesOnPersistedDataset(t *testing.T) {
	ds := ssb.GenerateRows(50_000)
	path := filepath.Join(t.TempDir(), "ssb.bin")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ssb.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"q1.1", "q2.1", "q3.3", "q4.2"} {
		q, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		want := Compile(ds, q).RunGPU()
		for _, e := range Engines() {
			got := Run(loaded, q, e)
			if !got.Equal(want) {
				t.Errorf("%s on loaded dataset disagrees for %s", e, id)
			}
		}
	}
}

// TestTinyDatasets exercises the degenerate ends every engine must survive:
// single-row fact tables and filters that eliminate everything.
func TestTinyDatasets(t *testing.T) {
	for _, rows := range []int{1, 2, 7} {
		ds := ssb.GenerateRows(rows)
		for _, q := range All() {
			want := Reference(ds, q)
			for _, e := range Engines() {
				got := Run(ds, q, e)
				if !got.Equal(normalizeRef(q, want)) {
					t.Errorf("%s wrong on %d-row dataset for %s", e, rows, q.ID)
				}
			}
		}
	}
}

// TestDeterministicTiming: the simulator must be deterministic — same
// dataset, same query, same engine, identical simulated time.
func TestDeterministicTiming(t *testing.T) {
	q, _ := ByID("q3.1")
	for _, e := range Engines() {
		a := Run(testDS, q, e).Seconds
		b := Run(testDS, q, e).Seconds
		if a != b {
			t.Errorf("%s timing not deterministic: %.9f vs %.9f", e, a, b)
		}
	}
}

// TestAggregateSumsMatchBruteForce cross-checks the packed-group arithmetic
// end to end: the sum over all groups must equal the ungrouped total.
func TestAggregateSumsMatchBruteForce(t *testing.T) {
	q, _ := ByID("q4.1")
	res := Compile(testDS, q).RunGPU()
	var total int64
	for _, v := range res.Groups {
		total += v
	}
	// Brute force: same filters, no grouping.
	var want int64
	ref := Reference(testDS, q)
	for _, v := range ref.Groups {
		want += v
	}
	if total != want {
		t.Errorf("group sums total %d, brute force %d", total, want)
	}
}
