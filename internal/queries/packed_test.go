package queries

import (
	"fmt"
	"testing"

	"crystal/internal/queries/queriestest"
	"crystal/internal/ssb"
)

// testPacked is the packed encoding of the shared test dataset, built once.
var testPacked = testDS.Pack()

// TestPackedRowIdentityCatalog is the core guarantee of compressed
// execution: for every catalog query and every engine, scanning the
// bit-packed fact encoding returns rows identical to the plain run — the
// engines decode values through the encoding, so this pins the pack →
// unpack round trip across the full pipeline.
func TestPackedRowIdentityCatalog(t *testing.T) {
	for _, q := range All() {
		plan := Compile(testDS, q)
		for _, e := range Engines() {
			plain := plan.Run(e)
			packed := plan.RunPartitioned(e, RunOptions{Partition: PartitionOptions{Packed: testPacked}})
			queriestest.SameRows(t, fmt.Sprintf("%s/%s packed", e, q.ID), packed, plain)
			if !packed.Packed {
				t.Errorf("%s/%s: result not marked packed", e, q.ID)
			}
			if plain.Packed {
				t.Errorf("%s/%s: plain result marked packed", e, q.ID)
			}
		}
	}
}

// TestPartitionInvariancePacked extends the partition-invariance guarantee
// to compressed execution: packed partitioned runs return rows AND simulated
// seconds identical to the monolithic packed run at every partition count.
// Frames are line-aligned and morsels cover whole frames, so the packed
// traffic statistics merge exactly — float-for-float, like the plain runs.
func TestPartitionInvariancePacked(t *testing.T) {
	for _, q := range All() {
		plan := Compile(testDS, q)
		for _, e := range Engines() {
			base := plan.RunPartitioned(e, RunOptions{Partition: PartitionOptions{Packed: testPacked}})
			for _, n := range partitionCounts {
				res := plan.RunPartitioned(e, RunOptions{Partition: PartitionOptions{Partitions: n, Packed: testPacked}})
				queriestest.SameRun(t, fmt.Sprintf("%s/%s packed at %d partitions", e, q.ID, n), res, base)
				if res.Pruned != 0 {
					t.Errorf("%s/%s: pruned %d morsels on uniform data", e, q.ID, res.Pruned)
				}
			}
		}
	}
}

// TestPackedAsymmetry pins the Section 5.5 prediction the compressed path
// models: the GPU's compute-to-bandwidth headroom turns the traffic saving
// into runtime (packed strictly faster), while the CPU pays per-element
// unpack arithmetic that eats the saving — its packed gain must be strictly
// smaller than the GPU's.
func TestPackedAsymmetry(t *testing.T) {
	q, _ := ByID("q1.1") // scan-dominated: the compression effect is purest
	plan := Compile(testDS, q)
	gpuPlain := plan.RunGPU().Seconds
	gpuPacked := plan.RunPartitioned(EngineGPU, RunOptions{Partition: PartitionOptions{Packed: testPacked}}).Seconds
	cpuPlain := plan.RunCPU().Seconds
	cpuPacked := plan.RunPartitioned(EngineCPU, RunOptions{Partition: PartitionOptions{Packed: testPacked}}).Seconds

	if gpuPacked >= gpuPlain {
		t.Errorf("GPU packed scan not faster: %.9f >= %.9f", gpuPacked, gpuPlain)
	}
	gpuGain := gpuPlain / gpuPacked
	cpuGain := cpuPlain / cpuPacked
	if cpuGain >= gpuGain {
		t.Errorf("CPU gained as much as GPU from packing (%.3fx vs %.3fx); the asymmetry is lost", cpuGain, gpuGain)
	}
}

// TestPackedCoprocessorTransfer is the acceptance demonstration for the
// transfer side: on a transfer-bound query the coprocessor ships compressed
// bytes, so packed execution is strictly faster than plain — and with every
// referenced column device-resident the transfer disappears entirely,
// faster still.
func TestPackedCoprocessorTransfer(t *testing.T) {
	q, _ := ByID("q1.1") // no joins: transfer is pure fact-column traffic
	plan := Compile(testDS, q)
	plain := plan.RunPartitioned(EngineCoproc, RunOptions{})
	packed := plan.RunPartitioned(EngineCoproc, RunOptions{Partition: PartitionOptions{Packed: testPacked}})
	if packed.TransferBytes >= plain.TransferBytes {
		t.Fatalf("packed transfer not smaller: %d >= %d bytes", packed.TransferBytes, plain.TransferBytes)
	}
	if packed.Seconds >= plain.Seconds {
		t.Errorf("packed coprocessor not faster: %.9f >= %.9f", packed.Seconds, plain.Seconds)
	}

	// A residency cache that refuses admission degrades to exactly the
	// cold packed transfer — never worse than running without the cache.
	refused := plan.RunPartitioned(EngineCoproc, RunOptions{Partition: PartitionOptions{Packed: testPacked, Residency: refuseAll{}}})
	if refused.TransferBytes != packed.TransferBytes || refused.Seconds != packed.Seconds {
		t.Errorf("refused admission shipped %d bytes (%.9fs), cacheless packed ships %d (%.9fs)",
			refused.TransferBytes, refused.Seconds, packed.TransferBytes, packed.Seconds)
	}

	warm := plan.RunPartitioned(EngineCoproc, RunOptions{Partition: PartitionOptions{Packed: testPacked, Residency: residentAll{}}})
	if warm.ResidentCols == 0 {
		t.Fatal("warm run reported no resident columns")
	}
	if warm.TransferBytes != 0 {
		t.Errorf("fully resident q1.1 still shipped %d bytes", warm.TransferBytes)
	}
	if warm.Seconds >= packed.Seconds {
		t.Errorf("warm residency hit not faster than cold packed: %.9f >= %.9f", warm.Seconds, packed.Seconds)
	}
	if !warm.Equal(plain) {
		t.Error("residency cache changed the rows")
	}
}

// residentAll is a Residency stub with every column already on the device.
type residentAll struct{}

func (residentAll) Acquire(string, int64) (bool, bool) { return true, true }

// refuseAll is a Residency stub that never holds nor admits anything — the
// degraded mode of a cache too small for the working set.
type refuseAll struct{}

func (refuseAll) Acquire(string, int64) (bool, bool) { return false, false }

// TestPackedZonePruning checks the packed path composes with zone-map
// pruning: on a clustered layout the packed partitioned run prunes morsels,
// keeps rows identical, and is strictly cheaper than the monolithic packed
// run.
func TestPackedZonePruning(t *testing.T) {
	clustered := testDS.ClusterBy("orderdate")
	pf := clustered.Pack()
	q, _ := ByID("q1.1")
	plan := Compile(clustered, q)
	for _, e := range []Engine{EngineGPU, EngineCPU, EngineCoproc} {
		base := plan.RunPartitioned(e, RunOptions{Partition: PartitionOptions{Packed: pf}})
		res := plan.RunPartitioned(e, RunOptions{Partition: PartitionOptions{Partitions: 64, Packed: pf}})
		if res.Pruned == 0 {
			t.Fatalf("%s: no morsels pruned on clustered packed layout", e)
		}
		if !res.Equal(base) {
			t.Errorf("%s: pruning changed packed rows", e)
		}
		if res.Seconds >= base.Seconds {
			t.Errorf("%s: packed pruning not cheaper: %.9f >= %.9f", e, res.Seconds, base.Seconds)
		}
	}
	// A clustered orderdate column packs far below its uniform width: each
	// frame spans a narrow date range, which is exactly the per-morsel-width
	// payoff of frame-of-reference encoding.
	uniform := testPacked.Col("orderdate").Bytes()
	if clusteredBytes := pf.Col("orderdate").Bytes(); clusteredBytes >= uniform {
		t.Errorf("clustering did not shrink the packed sort column: %d >= %d", clusteredBytes, uniform)
	}
}

// TestPackedMismatchedEncodingPanics pins the guard against running a plan
// with an encoding built for a different fact layout.
func TestPackedMismatchedEncodingPanics(t *testing.T) {
	small := ssb.GenerateRows(4096)
	q, _ := ByID("q1.1")
	plan := Compile(small, q)
	defer func() {
		if recover() == nil {
			t.Error("mismatched packed encoding did not panic")
		}
	}()
	plan.RunPartitioned(EngineCPU, RunOptions{Partition: PartitionOptions{Packed: testPacked}})
}
