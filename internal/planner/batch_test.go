package planner

import (
	"testing"

	"crystal/internal/fleet"
	"crystal/internal/queries"
)

// TestBatchCostSubadditive pins the economics that justify shared scans in
// the cost model: a batch of overlapping queries prices strictly under the
// sum of its members priced alone on every arm (the union scan is charged
// once), yet strictly above any single member (the probe/aggregate deltas
// still accumulate).
func TestBatchCostSubadditive(t *testing.T) {
	ids := []string{"q1.1", "q1.2", "q1.3"}
	qs := make([]queries.Query, len(ids))
	for i, id := range ids {
		q, err := queries.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	plan := queries.Compile(hybridDS, qs[0])
	morsels := plan.Morsels(64)
	fl := fleet.Spec{GPUs: 1, Link: fleet.PCIe()}

	var sumCPU, sumGPU float64
	var singles []BatchEstimate
	for i := range qs {
		est, err := BatchCost(fl, hybridDS, qs[i:i+1], morsels, nil)
		if err != nil {
			t.Fatal(err)
		}
		if est.Members != 1 || est.CPUSeconds <= 0 || est.GPUSeconds <= 0 || est.HybridSeconds <= 0 {
			t.Fatalf("singleton estimate degenerate: %+v", est)
		}
		singles = append(singles, est)
		sumCPU += est.CPUSeconds
		sumGPU += est.GPUSeconds
	}
	batch, err := BatchCost(fl, hybridDS, qs, morsels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Members != len(qs) {
		t.Errorf("batch estimate reports %d members, want %d", batch.Members, len(qs))
	}
	if batch.CPUSeconds >= sumCPU {
		t.Errorf("batch CPU %.9f not strictly under sum of singles %.9f", batch.CPUSeconds, sumCPU)
	}
	if batch.GPUSeconds >= sumGPU {
		t.Errorf("batch GPU %.9f not strictly under sum of singles %.9f", batch.GPUSeconds, sumGPU)
	}
	for i, s := range singles {
		if batch.CPUSeconds <= s.CPUSeconds {
			t.Errorf("batch CPU %.9f not strictly above member %d alone %.9f", batch.CPUSeconds, i, s.CPUSeconds)
		}
	}
}

// TestChooseBatchPlacementRouting pins the routing rule: the returned
// placement is the argmin of the three arms with hybrid admitted only when
// it strictly beats both pure placements, and on PCIe the scan-heavy q1.x
// batch lands on CPU — the paper's coprocessor verdict carried over to
// batches.
func TestChooseBatchPlacementRouting(t *testing.T) {
	ids := []string{"q1.1", "q1.2", "q1.3"}
	qs := make([]queries.Query, len(ids))
	for i, id := range ids {
		q, err := queries.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	morsels := queries.Compile(hybridDS, qs[0]).Morsels(64)

	for _, link := range fleet.Interconnects() {
		fl := fleet.Spec{GPUs: 1, Link: link}
		place, est, err := ChooseBatchPlacement(fl, hybridDS, qs, morsels, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := PlaceCPU
		if est.GPUSeconds < est.CPUSeconds {
			want = PlaceGPU
		}
		if est.HybridSeconds < est.CPUSeconds && est.HybridSeconds < est.GPUSeconds {
			want = PlaceHybrid
		}
		if place != want {
			t.Errorf("%s: routed to %s, estimates say %s (cpu=%.9f gpu=%.9f hybrid=%.9f)",
				link.Name, place, want, est.CPUSeconds, est.GPUSeconds, est.HybridSeconds)
		}
		if link.Name == fleet.PCIe().Name && place != PlaceCPU {
			t.Errorf("PCIe batch routed to %s, want cpu (shipment drowns the GPU arm)", place)
		}
	}

	if _, _, err := ChooseBatchPlacement(fleet.Spec{GPUs: 1, Link: fleet.PCIe()}, hybridDS, nil, morsels, nil); err == nil {
		t.Error("empty batch priced without error")
	}
}
