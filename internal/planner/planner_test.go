package planner

import (
	"testing"

	"crystal/internal/device"
	"crystal/internal/queries"
	"crystal/internal/ssb"
)

var ds = ssb.GenerateRows(100_000)

// TestScanCostPackedAsymmetry pins the scheduler-facing verdict of Section
// 5.5: the packed filter scan is strictly cheaper than plain on the GPU
// (bandwidth bound, traffic shrinks) and strictly more expensive on this
// CPU (the per-element unpack arithmetic tips it compute bound).
func TestScanCostPackedAsymmetry(t *testing.T) {
	pf := ds.Pack()
	rows := int64(ds.Lineorder.Rows())
	cols := []string{"orderdate", "discount", "quantity"} // q1.1's filters
	gpuPlain := ScanCost(device.V100(), rows, len(cols))
	gpuPacked := ScanCostPacked(device.V100(), pf, rows, cols)
	if gpuPacked >= gpuPlain {
		t.Errorf("GPU packed scan not cheaper: %.9f >= %.9f", gpuPacked, gpuPlain)
	}
	cpuPlain := ScanCost(device.I76900(), rows, len(cols))
	cpuPacked := ScanCostPacked(device.I76900(), pf, rows, cols)
	if cpuPacked <= cpuPlain {
		t.Errorf("CPU packed scan should tip compute bound: %.9f <= %.9f", cpuPacked, cpuPlain)
	}
	// Degenerate inputs cost nothing.
	if ScanCostPacked(device.V100(), pf, 0, cols) != 0 || ScanCostPacked(device.V100(), pf, rows, nil) != 0 {
		t.Error("degenerate packed scans should be free")
	}
	// Fewer scanned rows (zone pruning) can only get cheaper.
	if half := ScanCostPacked(device.V100(), pf, rows/2, cols); half >= gpuPacked {
		t.Errorf("pruned packed scan not cheaper: %.9f >= %.9f", half, gpuPacked)
	}
}

// TestTransferCost pins the resident-vs-cold pricing: residency only ever
// shrinks the PCIe term, a fully resident working set is free, and
// residentBytes clamps so the cost never goes negative.
func TestTransferCost(t *testing.T) {
	cold := TransferCost(1<<30, 0)
	if cold != device.TransferTime(1<<30) {
		t.Errorf("cold transfer = %.9f, want raw PCIe time", cold)
	}
	warm := TransferCost(1<<30, 1<<29)
	if warm >= cold || warm <= 0 {
		t.Errorf("half-resident transfer = %.9f, cold %.9f", warm, cold)
	}
	if TransferCost(1<<30, 1<<30) != 0 {
		t.Error("fully resident transfer should be free")
	}
	if got := TransferCost(100, 200); got != 0 {
		t.Errorf("over-resident transfer = %.9f, want clamped 0", got)
	}
}

func TestStatsSelectivities(t *testing.T) {
	q, err := queries.ByID("q2.1")
	if err != nil {
		t.Fatal(err)
	}
	stats := Stats(ds, q)
	if len(stats) != 3 {
		t.Fatalf("stats = %d", len(stats))
	}
	// supplier region filter ~1/5; part category ~1/25; date unfiltered.
	if s := stats[0].Selectivity; s < 0.15 || s > 0.25 {
		t.Errorf("supplier selectivity = %.3f", s)
	}
	if s := stats[1].Selectivity; s < 0.02 || s > 0.06 {
		t.Errorf("part selectivity = %.3f", s)
	}
	if s := stats[2].Selectivity; s != 1.0 {
		t.Errorf("date selectivity = %.3f, want 1", s)
	}
	if stats[1].HTBytes <= stats[2].HTBytes {
		t.Error("part table should dwarf date table")
	}
}

func TestChooseOrdersPlansByCost(t *testing.T) {
	q, _ := queries.ByID("q2.1")
	plans := Choose(device.I76900(), ds, q)
	if len(plans) != 6 { // 3! permutations
		t.Fatalf("plans = %d, want 6", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Seconds < plans[i-1].Seconds {
			t.Fatal("plans not sorted by cost")
		}
	}
	if plans[0].Describe() == "" {
		t.Error("empty plan description")
	}
}

func TestBestPlanPutsSelectiveJoinsEarly(t *testing.T) {
	// A selective join placed first shrinks every later probe count; the
	// cheapest plan must not start with the unfiltered date join.
	q, _ := queries.ByID("q2.1")
	for _, dev := range []*device.Spec{device.V100(), device.I76900()} {
		best := Choose(dev, ds, q)[0]
		if best.Order[0].Dim == "date" {
			t.Errorf("%s: best plan starts with the unfiltered date join: %s", dev.Name, best.Describe())
		}
	}
}

func TestOptimizePreservesResults(t *testing.T) {
	// Optimizing may permute group-key order, so compare decoded group
	// multisets: the total and the number of groups must be identical.
	q, _ := queries.ByID("q2.1")
	opt := Optimize(device.V100(), ds, q)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	a := queries.RunGPU(ds, q)
	b := queries.RunGPU(ds, opt)
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("optimized plan changed group count: %d vs %d", len(a.Groups), len(b.Groups))
	}
	var ta, tb int64
	for _, v := range a.Groups {
		ta += v
	}
	for _, v := range b.Groups {
		tb += v
	}
	if ta != tb {
		t.Fatalf("optimized plan changed aggregate total: %d vs %d", ta, tb)
	}
}

func TestOptimizedPlanNotSlower(t *testing.T) {
	// The engine's simulated time under the optimizer's order must be no
	// worse than the hand-written order (they share the cost model).
	for _, id := range []string{"q2.1", "q3.1", "q4.1", "q4.3"} {
		q, _ := queries.ByID(id)
		opt := Optimize(device.I76900(), ds, q)
		hand := queries.RunCPU(ds, q).Seconds
		chosen := queries.RunCPU(ds, opt).Seconds
		if chosen > hand*1.02 {
			t.Errorf("%s: optimizer picked a slower plan: %.6f vs %.6f", id, chosen, hand)
		}
	}
}

func TestNoJoinQuery(t *testing.T) {
	q, _ := queries.ByID("q1.1")
	plans := Choose(device.V100(), ds, q)
	if len(plans) != 1 || len(plans[0].Order) != 0 {
		t.Fatalf("no-join query should have one empty plan, got %d", len(plans))
	}
	opt := Optimize(device.V100(), ds, q)
	if len(opt.Joins) != 0 {
		t.Error("optimize changed a no-join query")
	}
}

// TestOptimizeGroupedPreservesPayloadOrder checks the SQL-frontend variant
// of the optimizer: payload-carrying joins keep their relative order (the
// packed group-key layout), the result rows are bit-identical to the
// unoptimized query's, and the chosen plan is the cheapest that qualifies.
func TestOptimizeGroupedPreservesPayloadOrder(t *testing.T) {
	for _, id := range []string{"q2.1", "q3.1", "q4.1", "q4.2", "q4.3"} {
		q, _ := queries.ByID(id)
		for _, dev := range []*device.Spec{device.V100(), device.I76900()} {
			opt := OptimizeGrouped(dev, ds, q)
			var want, got []string
			for _, j := range q.Joins {
				if j.Payload != "" {
					want = append(want, j.Dim+"."+j.Payload)
				}
			}
			for _, j := range opt.Joins {
				if j.Payload != "" {
					got = append(got, j.Dim+"."+j.Payload)
				}
			}
			if len(want) != len(got) {
				t.Fatalf("%s on %s: payload joins lost: %v vs %v", id, dev.Name, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Errorf("%s on %s: payload order changed: %v vs %v", id, dev.Name, got, want)
				}
			}
			a := queries.Reference(ds, q)
			b := queries.Reference(ds, opt)
			if !a.Equal(b) {
				t.Errorf("%s on %s: grouped optimization changed the result rows", id, dev.Name)
			}
		}
	}
	// q1.x: no joins, the optimizer must be an identity.
	q, _ := queries.ByID("q1.2")
	if opt := OptimizeGrouped(device.V100(), ds, q); len(opt.Joins) != 0 {
		t.Error("OptimizeGrouped changed a no-join query")
	}
}

// TestPruneEstimateAndPartitionedCost: on the uniform layout zone maps
// prune nothing and partitioned plans cost exactly the monolithic ones; on
// a clustered layout the selective q1.1 date flight prunes most morsels and
// every plan gets strictly cheaper.
func TestPruneEstimateAndPartitionedCost(t *testing.T) {
	q21, _ := queries.ByID("q2.1")
	uniform := ds.Partition(32)
	pr := PruneEstimate(uniform, q21)
	if pr.Morsels != 32 || pr.Pruned != 0 || pr.ScannedRows != int64(ds.Lineorder.Rows()) {
		t.Fatalf("uniform pruning = %+v", pr)
	}
	a := Choose(device.V100(), ds, q21)
	b := ChoosePartitioned(device.V100(), ds, q21, uniform)
	if len(a) != len(b) {
		t.Fatalf("plan counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seconds != b[i].Seconds {
			t.Errorf("plan %d: unpruned partitioned cost %.9f != monolithic %.9f", i, b[i].Seconds, a[i].Seconds)
		}
	}

	clustered := ds.ClusterBy("orderdate")
	q11, _ := queries.ByID("q1.1")
	morsels := clustered.Partition(64)
	pr = PruneEstimate(morsels, q11)
	if pr.Pruned == 0 {
		t.Fatal("clustered q1.1 should prune morsels")
	}
	if pr.ScannedRows >= int64(clustered.Lineorder.Rows()) {
		t.Fatal("pruning did not shrink the scan")
	}
	mono := Choose(device.V100(), clustered, q11)[0].Seconds
	part := ChoosePartitioned(device.V100(), clustered, q11, morsels)[0].Seconds
	if part >= mono {
		t.Errorf("pruned plan cost %.9f not below monolithic %.9f", part, mono)
	}
}
