package planner

import (
	"testing"

	"crystal/internal/device"
	"crystal/internal/fleet"
	"crystal/internal/queries"
	"crystal/internal/ssb"
)

var ds = ssb.GenerateRows(100_000)

// TestScanCostPackedAsymmetry pins the scheduler-facing verdict of Section
// 5.5: the packed filter scan is strictly cheaper than plain on the GPU
// (bandwidth bound, traffic shrinks) and strictly more expensive on this
// CPU (the per-element unpack arithmetic tips it compute bound).
func TestScanCostPackedAsymmetry(t *testing.T) {
	pf := ds.Pack()
	rows := int64(ds.Lineorder.Rows())
	cols := []string{"orderdate", "discount", "quantity"} // q1.1's filters
	gpuPlain := ScanCost(device.V100(), rows, len(cols))
	gpuPacked := ScanCostPacked(device.V100(), pf, rows, cols)
	if gpuPacked >= gpuPlain {
		t.Errorf("GPU packed scan not cheaper: %.9f >= %.9f", gpuPacked, gpuPlain)
	}
	cpuPlain := ScanCost(device.I76900(), rows, len(cols))
	cpuPacked := ScanCostPacked(device.I76900(), pf, rows, cols)
	if cpuPacked <= cpuPlain {
		t.Errorf("CPU packed scan should tip compute bound: %.9f <= %.9f", cpuPacked, cpuPlain)
	}
	// Degenerate inputs cost nothing.
	if ScanCostPacked(device.V100(), pf, 0, cols) != 0 || ScanCostPacked(device.V100(), pf, rows, nil) != 0 {
		t.Error("degenerate packed scans should be free")
	}
	// Fewer scanned rows (zone pruning) can only get cheaper.
	if half := ScanCostPacked(device.V100(), pf, rows/2, cols); half >= gpuPacked {
		t.Errorf("pruned packed scan not cheaper: %.9f >= %.9f", half, gpuPacked)
	}
}

// TestTransferCost pins the resident-vs-cold pricing: residency only ever
// shrinks the PCIe term, a fully resident working set is free, and
// residentBytes clamps so the cost never goes negative.
func TestTransferCost(t *testing.T) {
	cold := TransferCost(1<<30, 0)
	if cold != device.TransferTime(1<<30) {
		t.Errorf("cold transfer = %.9f, want raw PCIe time", cold)
	}
	warm := TransferCost(1<<30, 1<<29)
	if warm >= cold || warm <= 0 {
		t.Errorf("half-resident transfer = %.9f, cold %.9f", warm, cold)
	}
	if TransferCost(1<<30, 1<<30) != 0 {
		t.Error("fully resident transfer should be free")
	}
	if got := TransferCost(100, 200); got != 0 {
		t.Errorf("over-resident transfer = %.9f, want clamped 0", got)
	}
}

func TestStatsSelectivities(t *testing.T) {
	q, err := queries.ByID("q2.1")
	if err != nil {
		t.Fatal(err)
	}
	stats := Stats(ds, q)
	if len(stats) != 3 {
		t.Fatalf("stats = %d", len(stats))
	}
	// supplier region filter ~1/5; part category ~1/25; date unfiltered.
	if s := stats[0].Selectivity; s < 0.15 || s > 0.25 {
		t.Errorf("supplier selectivity = %.3f", s)
	}
	if s := stats[1].Selectivity; s < 0.02 || s > 0.06 {
		t.Errorf("part selectivity = %.3f", s)
	}
	if s := stats[2].Selectivity; s != 1.0 {
		t.Errorf("date selectivity = %.3f, want 1", s)
	}
	if stats[1].HTBytes <= stats[2].HTBytes {
		t.Error("part table should dwarf date table")
	}
}

func TestChooseOrdersPlansByCost(t *testing.T) {
	q, _ := queries.ByID("q2.1")
	plans := Choose(device.I76900(), ds, q)
	if len(plans) != 6 { // 3! permutations
		t.Fatalf("plans = %d, want 6", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Seconds < plans[i-1].Seconds {
			t.Fatal("plans not sorted by cost")
		}
	}
	if plans[0].Describe() == "" {
		t.Error("empty plan description")
	}
}

func TestBestPlanPutsSelectiveJoinsEarly(t *testing.T) {
	// A selective join placed first shrinks every later probe count; the
	// cheapest plan must not start with the unfiltered date join.
	q, _ := queries.ByID("q2.1")
	for _, dev := range []*device.Spec{device.V100(), device.I76900()} {
		best := Choose(dev, ds, q)[0]
		if best.Order[0].Dim == "date" {
			t.Errorf("%s: best plan starts with the unfiltered date join: %s", dev.Name, best.Describe())
		}
	}
}

func TestOptimizePreservesResults(t *testing.T) {
	// Optimizing may permute group-key order, so compare decoded group
	// multisets: the total and the number of groups must be identical.
	q, _ := queries.ByID("q2.1")
	opt := Optimize(device.V100(), ds, q)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	a := queries.Compile(ds, q).RunGPU()
	b := queries.Compile(ds, opt).RunGPU()
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("optimized plan changed group count: %d vs %d", len(a.Groups), len(b.Groups))
	}
	var ta, tb int64
	for _, v := range a.Groups {
		ta += v
	}
	for _, v := range b.Groups {
		tb += v
	}
	if ta != tb {
		t.Fatalf("optimized plan changed aggregate total: %d vs %d", ta, tb)
	}
}

func TestOptimizedPlanNotSlower(t *testing.T) {
	// The engine's simulated time under the optimizer's order must be no
	// worse than the hand-written order (they share the cost model).
	for _, id := range []string{"q2.1", "q3.1", "q4.1", "q4.3"} {
		q, _ := queries.ByID(id)
		opt := Optimize(device.I76900(), ds, q)
		hand := queries.Compile(ds, q).RunCPU().Seconds
		chosen := queries.Compile(ds, opt).RunCPU().Seconds
		if chosen > hand*1.02 {
			t.Errorf("%s: optimizer picked a slower plan: %.6f vs %.6f", id, chosen, hand)
		}
	}
}

func TestNoJoinQuery(t *testing.T) {
	q, _ := queries.ByID("q1.1")
	plans := Choose(device.V100(), ds, q)
	if len(plans) != 1 || len(plans[0].Order) != 0 {
		t.Fatalf("no-join query should have one empty plan, got %d", len(plans))
	}
	opt := Optimize(device.V100(), ds, q)
	if len(opt.Joins) != 0 {
		t.Error("optimize changed a no-join query")
	}
}

// TestOptimizeGroupedPreservesPayloadOrder checks the SQL-frontend variant
// of the optimizer: payload-carrying joins keep their relative order (the
// packed group-key layout), the result rows are bit-identical to the
// unoptimized query's, and the chosen plan is the cheapest that qualifies.
func TestOptimizeGroupedPreservesPayloadOrder(t *testing.T) {
	for _, id := range []string{"q2.1", "q3.1", "q4.1", "q4.2", "q4.3"} {
		q, _ := queries.ByID(id)
		for _, dev := range []*device.Spec{device.V100(), device.I76900()} {
			opt := OptimizeGrouped(dev, ds, q)
			var want, got []string
			for _, j := range q.Joins {
				if j.Payload != "" {
					want = append(want, j.Dim+"."+j.Payload)
				}
			}
			for _, j := range opt.Joins {
				if j.Payload != "" {
					got = append(got, j.Dim+"."+j.Payload)
				}
			}
			if len(want) != len(got) {
				t.Fatalf("%s on %s: payload joins lost: %v vs %v", id, dev.Name, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Errorf("%s on %s: payload order changed: %v vs %v", id, dev.Name, got, want)
				}
			}
			a := queries.Reference(ds, q)
			b := queries.Reference(ds, opt)
			if !a.Equal(b) {
				t.Errorf("%s on %s: grouped optimization changed the result rows", id, dev.Name)
			}
		}
	}
	// q1.x: no joins, the optimizer must be an identity.
	q, _ := queries.ByID("q1.2")
	if opt := OptimizeGrouped(device.V100(), ds, q); len(opt.Joins) != 0 {
		t.Error("OptimizeGrouped changed a no-join query")
	}
}

// TestPruneEstimateAndPartitionedCost: on the uniform layout zone maps
// prune nothing and partitioned plans cost exactly the monolithic ones; on
// a clustered layout the selective q1.1 date flight prunes most morsels and
// every plan gets strictly cheaper.
func TestPruneEstimateAndPartitionedCost(t *testing.T) {
	q21, _ := queries.ByID("q2.1")
	uniform := ds.Partition(32)
	pr := PruneEstimate(uniform, q21)
	if pr.Morsels != 32 || pr.Pruned != 0 || pr.ScannedRows != int64(ds.Lineorder.Rows()) {
		t.Fatalf("uniform pruning = %+v", pr)
	}
	a := Choose(device.V100(), ds, q21)
	b := ChoosePartitioned(device.V100(), ds, q21, uniform)
	if len(a) != len(b) {
		t.Fatalf("plan counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seconds != b[i].Seconds {
			t.Errorf("plan %d: unpruned partitioned cost %.9f != monolithic %.9f", i, b[i].Seconds, a[i].Seconds)
		}
	}

	clustered := ds.ClusterBy("orderdate")
	q11, _ := queries.ByID("q1.1")
	morsels := clustered.Partition(64)
	pr = PruneEstimate(morsels, q11)
	if pr.Pruned == 0 {
		t.Fatal("clustered q1.1 should prune morsels")
	}
	if pr.ScannedRows >= int64(clustered.Lineorder.Rows()) {
		t.Fatal("pruning did not shrink the scan")
	}
	mono := Choose(device.V100(), clustered, q11)[0].Seconds
	part := ChoosePartitioned(device.V100(), clustered, q11, morsels)[0].Seconds
	if part >= mono {
		t.Errorf("pruned plan cost %.9f not below monolithic %.9f", part, mono)
	}
}

// TestFleetCostScaling pins the fleet model's shape: more devices price
// cheaper on a scan-bound query (near-linear until overheads dominate),
// and the estimate carries per-device entries for the whole fleet.
func TestFleetCostScaling(t *testing.T) {
	q, err := queries.ByID("q1.1")
	if err != nil {
		t.Fatal(err)
	}
	morsels := ds.Partition(32)
	prev := 0.0
	for _, gpus := range []int{1, 2, 4, 8} {
		est, err := FleetCost(fleet.Spec{GPUs: gpus, Link: fleet.NVLink()}, ds, q, morsels, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(est.DeviceSeconds) != gpus {
			t.Fatalf("%d GPUs: %d device estimates", gpus, len(est.DeviceSeconds))
		}
		if est.Seconds <= 0 {
			t.Fatalf("%d GPUs: non-positive estimate", gpus)
		}
		if prev != 0 && est.Seconds >= prev {
			t.Errorf("%d GPUs (%.9fs) not cheaper than fewer (%.9fs)", gpus, est.Seconds, prev)
		}
		prev = est.Seconds
	}
	if _, err := FleetCost(fleet.Spec{GPUs: 0}, ds, q, morsels, nil); err == nil {
		t.Error("0-GPU fleet accepted")
	}
}

// TestFleetCostMergeAndSpill pins the two interconnect terms: the merge
// grows with group cardinality and prices higher on the slower link, and
// shards that exceed device memory add spill traffic that degrades (but
// never corrupts) the estimate.
func TestFleetCostMergeAndSpill(t *testing.T) {
	grouped, err := queries.ByID("q2.2")
	if err != nil {
		t.Fatal(err)
	}
	scan, err := queries.ByID("q1.1")
	if err != nil {
		t.Fatal(err)
	}
	morsels := ds.Partition(32)

	nv, err := FleetCost(fleet.Spec{GPUs: 4, Link: fleet.NVLink()}, ds, grouped, morsels, nil)
	if err != nil {
		t.Fatal(err)
	}
	pcie, err := FleetCost(fleet.Spec{GPUs: 4, Link: fleet.PCIe()}, ds, grouped, morsels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nv.MergeBytes != pcie.MergeBytes {
		t.Errorf("link changed merge bytes: %d vs %d", nv.MergeBytes, pcie.MergeBytes)
	}
	if pcie.MergeSeconds <= nv.MergeSeconds {
		t.Errorf("PCIe merge (%.12fs) not pricier than NVLink (%.12fs)", pcie.MergeSeconds, nv.MergeSeconds)
	}
	scanEst, err := FleetCost(fleet.Spec{GPUs: 4, Link: fleet.NVLink()}, ds, scan, morsels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scanEst.MergeBytes >= nv.MergeBytes {
		t.Errorf("global aggregate merge (%d bytes) should be below the grouped merge (%d)",
			scanEst.MergeBytes, nv.MergeBytes)
	}

	// Zero-memory devices spill everything; the estimate degrades but stays
	// finite and keeps per-device entries.
	tinyDev := device.V100()
	tinyDev.MemoryBytes = 0
	spilled, err := FleetCost(fleet.Spec{GPUs: 4, Device: tinyDev, Link: fleet.PCIe()}, ds, scan, morsels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if spilled.SpillBytes == 0 {
		t.Fatal("zero-memory fleet reported no spill")
	}
	fits, err := FleetCost(fleet.Spec{GPUs: 4, Link: fleet.PCIe()}, ds, scan, morsels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fits.SpillBytes != 0 {
		t.Fatal("32 GB fleet spilled at test scale")
	}
	if spilled.Seconds <= fits.Seconds {
		t.Errorf("spilled estimate (%.9fs) not above resident estimate (%.9fs)", spilled.Seconds, fits.Seconds)
	}
}

// TestFleetCostPackedPlacement pins the scheduler/executor agreement on
// packed runs: with device memory sized between the packed and the plain
// shard footprint, the plain estimate spills while the packed one places
// everything resident — matching what queries.RunFleet executes — and the
// packed scan term follows ScanCostPacked (cheaper on the GPU device).
func TestFleetCostPackedPlacement(t *testing.T) {
	q, err := queries.ByID("q1.1")
	if err != nil {
		t.Fatal(err)
	}
	pf := ds.Pack()
	morsels := ds.Partition(16)

	// Plain shard bytes per device at 2 GPUs ~ rows/2 * 36; packed is
	// smaller by the compression ratio. Pick a capacity in between.
	plainShard := int64(ds.Lineorder.Rows()) / 2 * 36
	dev := device.V100()
	dev.MemoryBytes = plainShard / 2
	fl := fleet.Spec{GPUs: 2, Device: dev, Link: fleet.PCIe()}

	plain, err := FleetCost(fl, ds, q, morsels, nil)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := FleetCost(fl, ds, q, morsels, pf)
	if err != nil {
		t.Fatal(err)
	}
	if plain.SpillBytes == 0 {
		t.Fatal("plain estimate should spill at half-shard capacity")
	}
	if packed.SpillBytes >= plain.SpillBytes {
		t.Errorf("packed estimate spills %d bytes, plain %d — packing should shrink or clear the spill",
			packed.SpillBytes, plain.SpillBytes)
	}

	// The executor must agree with the model about whether packing spills.
	fr, err := queries.Compile(ds, q).RunFleet(fl, queries.RunOptions{Partition: queries.PartitionOptions{Partitions: 16, Packed: pf}})
	if err != nil {
		t.Fatal(err)
	}
	if (packed.SpillBytes > 0) != (fr.Result.TransferBytes > 0) {
		t.Errorf("model and executor disagree about packed spill: estimate %d bytes, engine shipped %d",
			packed.SpillBytes, fr.Result.TransferBytes)
	}
	plainRun, err := queries.Compile(ds, q).RunFleet(fl, queries.RunOptions{Partition: queries.PartitionOptions{Partitions: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if (plain.SpillBytes > 0) != (plainRun.Result.TransferBytes > 0) {
		t.Errorf("model and executor disagree about plain spill: estimate %d bytes, engine shipped %d",
			plain.SpillBytes, plainRun.Result.TransferBytes)
	}
}
