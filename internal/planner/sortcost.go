package planner

import (
	"crystal/internal/device"
	"crystal/internal/queries"
)

// sortKeyBits is the planner's estimate of the significant bit width of one
// rebased ORDER BY key on the GPU radix path: group payloads fit the packed
// key's 20-bit slot, and SSB aggregate magnitudes rebase into a similar
// range, so three stable 7-bit passes per key is the planning assumption.
const sortKeyBits = 20

// SortCost prices the full ORDER BY sort of the query's estimated result
// rows on dev: the LSD radix sort on GPUs, the merge sort on the host —
// both through the same exported pricing helpers the executor's sort phase
// charges, so the planner and the sort it routes to can never drift. The
// cost is zero for queries without ORDER BY.
func SortCost(dev *device.Spec, q queries.Query) float64 {
	if len(q.OrderBy) == 0 {
		return 0
	}
	n := int64(q.GroupEstimate())
	if dev.IsGPU() {
		return queries.RadixSortCost(dev, n, len(q.OrderBy), sortKeyBits)
	}
	return queries.MergeSortCost(dev, n, q.SortRowBytes())
}

// TopNCost prices the query's ORDER BY ... LIMIT k on dev: on the host the
// cheaper of the bounded heap and the full merge sort (the same
// heap-vs-sort decision the executor makes), on GPUs the radix sort (the
// device sorts fully and truncates; there is no priced GPU heap).
func TopNCost(dev *device.Spec, q queries.Query) float64 {
	if len(q.OrderBy) == 0 {
		return 0
	}
	if dev.IsGPU() || q.Limit <= 0 {
		return SortCost(dev, q)
	}
	n := int64(q.GroupEstimate())
	heap := queries.TopNHeapCost(dev, n, q.SortRowBytes(), q.Limit)
	if full := queries.MergeSortCost(dev, n, q.SortRowBytes()); full < heap {
		return full
	}
	return heap
}

// OrderCost is the ORDER BY term a placement estimate adds: TopNCost when
// the query carries a LIMIT, SortCost otherwise, zero without ORDER BY.
func OrderCost(dev *device.Spec, q queries.Query) float64 {
	if q.Limit > 0 {
		return TopNCost(dev, q)
	}
	return SortCost(dev, q)
}
