package planner

import (
	"fmt"
	"testing"

	"crystal/internal/fleet"
	"crystal/internal/queries"
	"crystal/internal/ssb"
)

// hybridDS is the crossover dataset: big enough that scans dominate the
// replicated dimension builds, the regime the placement pin is about.
var hybridDS = ssb.GenerateRows(200_000)

// TestHybridCrossover is the tentpole's placement pin: hybrid
// co-execution must LOSE to pure CPU on PCIe for the whole scan-heavy
// q1.x flight (the interconnect cannot feed the GPU arm — the paper's
// coprocessor verdict), and WIN on NVLink against both pure placements
// for q1.1, the flight's wide-filter scan (combined throughput exceeds
// either arm alone). The highly selective q1.2/q1.3 stay CPU-won even on
// NVLink — the CPU engine loads later columns selectively while the
// host-resident GPU arm must ship them whole — so the NVLink win is
// pinned where scans, not selections, dominate. Both the executed
// schedules and the cost model must land on the same side, and
// ChoosePlacement must route accordingly.
func TestHybridCrossover(t *testing.T) {
	for _, id := range []string{"q1.1", "q1.2", "q1.3"} {
		q, err := queries.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		plan := queries.Compile(hybridDS, q)
		opts := queries.RunOptions{}
		opts.Partition.Partitions = 64 // fine split so the balanced fraction is honored
		morsels := plan.Morsels(64)

		for _, tc := range []struct {
			link       fleet.Interconnect
			hybridWins bool
		}{
			{fleet.PCIe(), false},
			{fleet.NVLink(), id == "q1.1"},
		} {
			if tc.link.Name == fleet.NVLink().Name && !tc.hybridWins {
				// q1.2/q1.3 on NVLink sit in the selective regime where
				// neither side is pinned; the q1.x contrast is covered by
				// the PCIe arm and the q1.1 NVLink win.
				continue
			}
			fl := fleet.Spec{GPUs: 1, Link: tc.link}
			hybrid, err := plan.RunHybrid(fl, -1, opts)
			if err != nil {
				t.Fatal(err)
			}
			cpuOnly, err := plan.RunHybrid(fl, 1, opts)
			if err != nil {
				t.Fatal(err)
			}
			gpuOnly, err := plan.RunHybrid(fl, 0, opts)
			if err != nil {
				t.Fatal(err)
			}
			choice, est, err := ChoosePlacement(fl, hybridDS, q, morsels, nil)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("%s over %s", id, tc.link.Name)
			if tc.hybridWins {
				if hybrid.Result.Seconds >= cpuOnly.Result.Seconds {
					t.Errorf("%s: executed hybrid (%.9gs) did not beat pure CPU (%.9gs)",
						label, hybrid.Result.Seconds, cpuOnly.Result.Seconds)
				}
				if hybrid.Result.Seconds >= gpuOnly.Result.Seconds {
					t.Errorf("%s: executed hybrid (%.9gs) did not beat pure GPU (%.9gs)",
						label, hybrid.Result.Seconds, gpuOnly.Result.Seconds)
				}
				if est.Seconds >= est.PureCPUSeconds || est.Seconds >= est.PureGPUSeconds {
					t.Errorf("%s: model prices hybrid %.9gs against cpu %.9gs / gpu %.9gs — should win both",
						label, est.Seconds, est.PureCPUSeconds, est.PureGPUSeconds)
				}
				if choice != PlaceHybrid {
					t.Errorf("%s: planner chose %q, want hybrid", label, choice)
				}
			} else {
				if hybrid.Result.Seconds <= cpuOnly.Result.Seconds {
					t.Errorf("%s: executed hybrid (%.9gs) should lose to pure CPU (%.9gs) — PCIe cannot feed the GPU arm",
						label, hybrid.Result.Seconds, cpuOnly.Result.Seconds)
				}
				if est.Seconds <= est.PureCPUSeconds {
					t.Errorf("%s: model prices hybrid %.9gs under pure CPU %.9gs on PCIe",
						label, est.Seconds, est.PureCPUSeconds)
				}
				if choice != PlaceCPU {
					t.Errorf("%s: planner chose %q, want cpu", label, choice)
				}
			}
			// The device-resident fleet is priced for reference and must be
			// positive; at this scale the working set fits device memory, so
			// it dominates every host-resident placement — the reason
			// ChoosePlacement routes only among the latter.
			if est.FleetSeconds <= 0 {
				t.Errorf("%s: no fleet reference price", label)
			}
			if est.FleetSeconds >= est.Seconds {
				t.Errorf("%s: resident fleet (%.9gs) should dominate host-resident hybrid (%.9gs)",
					label, est.FleetSeconds, est.Seconds)
			}
		}
	}
}

// TestHybridCostShape pins the model's accounting identities: the ship
// bytes vanish at frac 1, cover every referenced live byte at frac 0, and
// the estimate is the slowest arm plus the merge.
func TestHybridCostShape(t *testing.T) {
	q, err := queries.ByID("q2.1")
	if err != nil {
		t.Fatal(err)
	}
	morsels := hybridDS.Partition(64)
	fl := fleet.Spec{GPUs: 2, Link: fleet.NVLink()}
	est, err := HybridCost(fl, hybridDS, q, morsels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.GPUs != 2 || len(est.DeviceSeconds) != 2 {
		t.Fatalf("estimate covers %d device arms (GPUs=%d), want 2", len(est.DeviceSeconds), est.GPUs)
	}
	if est.CPUFrac <= 0 || est.CPUFrac >= 0.5 {
		t.Errorf("balanced CPU fraction %v outside the minority-share regime", est.CPUFrac)
	}
	if est.ShipBytes <= 0 {
		t.Error("hybrid estimate ships nothing; data is host-resident")
	}
	if est.MergeBytes != int64(q.GroupEstimate())*16*2 {
		t.Errorf("merge bytes %d, want 16 per estimated group per GPU arm", est.MergeBytes)
	}
	slowest := est.CPUSeconds
	for _, ds := range est.DeviceSeconds {
		if ds > slowest {
			slowest = ds
		}
	}
	if got, want := est.Seconds, slowest+est.MergeSeconds; got != want {
		t.Errorf("estimate %.15g != slowest arm + merge %.15g", got, want)
	}
	// The executor and the model must agree on the hybrid ship volume:
	// both derive the split and shard map from the same sched helpers.
	opts := queries.RunOptions{}
	opts.Partition.Partitions = 64
	hr, err := queries.Compile(hybridDS, q).RunHybrid(fl, -1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Result.TransferBytes != est.ShipBytes {
		t.Errorf("executor shipped %d bytes, model prices %d — split or shard map diverged",
			hr.Result.TransferBytes, est.ShipBytes)
	}

	if _, err := HybridCost(fleet.Spec{GPUs: fleet.MaxGPUs + 1}, hybridDS, q, morsels, nil); err == nil {
		t.Error("oversized fleet accepted")
	}
	if _, _, err := ChoosePlacement(fleet.Spec{GPUs: -2}, hybridDS, q, morsels, nil); err == nil {
		t.Error("negative fleet accepted")
	}
}
