// Package planner implements the join-order selection the paper applies by
// hand in Section 5.3 ("We choose a query plan where lineorder first joins
// supplier, then part, and finally date; this plan delivers the highest
// performance among the several promising plans that we have evaluated").
//
// The planner enumerates the permutations of a query's join pipeline,
// prices each with the same device model the engines use — streaming column
// reads with line skipping, per-join probe traffic against each hash
// table's cache residency, survivor cardinalities from the dimension
// selectivities — and returns the cheapest. Because both sides share the
// model, the planner's choice is exactly the order that minimizes the
// engine's simulated runtime.
package planner

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"crystal/internal/device"
	"crystal/internal/fleet"
	"crystal/internal/pack"
	"crystal/internal/queries"
	"crystal/internal/ssb"
)

// JoinStats summarizes one join for costing: the dimension cardinality, the
// hash-table footprint and the selectivity its filters impose on fact rows.
type JoinStats struct {
	Spec        queries.JoinSpec
	DimRows     int64
	HTBytes     int64
	Selectivity float64
}

// Stats computes per-join statistics from the dataset (an exact pass over
// the dimension tables; dimensions are tiny).
func Stats(ds *ssb.Dataset, q queries.Query) []JoinStats {
	out := make([]JoinStats, len(q.Joins))
	for i, j := range q.Joins {
		d := queries.DimTable(ds, j.Dim)
		match := 0
		filterCols := make([][]int32, len(j.Filters))
		for fi := range j.Filters {
			filterCols[fi] = d.Col(j.Filters[fi].Col)
		}
	rows:
		for r := 0; r < d.Rows(); r++ {
			for fi := range j.Filters {
				if !j.Filters[fi].Match(filterCols[fi][r]) {
					continue rows
				}
			}
			match++
		}
		sel := 1.0
		if d.Rows() > 0 {
			sel = float64(match) / float64(d.Rows())
		}
		// Hash tables are sized to the full dimension (Section 5.3 "perfect
		// hashing" footprint), payload or not.
		slots := int64(1)
		for float64(slots)*0.99 < float64(d.Rows()) {
			slots <<= 1
		}
		per := int64(4)
		if j.Payload != "" {
			per = 8
		}
		out[i] = JoinStats{Spec: j, DimRows: int64(d.Rows()), HTBytes: slots * per, Selectivity: sel}
	}
	return out
}

// Cost prices one join order on the device: per join, the (line-skipped)
// read of the foreign-key column for the surviving rows plus the probe
// traffic against the table's cache residency; selectivities compound down
// the pipeline.
func Cost(dev *device.Spec, factRows int64, order []JoinStats) float64 {
	pass := &device.Pass{Label: "plan cost"}
	alive := float64(factRows)
	lineElems := float64(dev.LineSize / 4)
	colLines := float64(factRows) / lineElems
	dependent := len(order) >= 2
	for _, js := range order {
		// FK column lines touched: every line if survivors are dense,
		// otherwise one line per survivor.
		lines := colLines * (1 - math.Pow(1-alive/float64(factRows), lineElems))
		if alive < lines {
			lines = alive
		}
		pass.BytesRead += int64(lines) * dev.LineSize
		pass.AddProbes(device.ProbeSet{
			Count:       int64(alive),
			StructBytes: js.HTBytes,
			Dependent:   dependent,
		})
		alive *= js.Selectivity
	}
	return dev.PassTime(pass)
}

// ScanCost prices the fact-filter scan of a plan: each filter column is
// streamed once over the scanned rows. The term is identical for every
// join order (fact filters run before the probe pipeline), so it never
// changes a plan ranking — but it is where zone-map pruning shows up:
// pruned morsels shrink factRows, and with them the absolute cost a
// scheduler compares against the monolithic plan.
func ScanCost(dev *device.Spec, factRows int64, filterCols int) float64 {
	if filterCols == 0 || factRows == 0 {
		return 0
	}
	pass := &device.Pass{Label: "fact scan", BytesRead: factRows * 4 * int64(filterCols)}
	return dev.PassTime(pass)
}

// ScanCostPacked prices the same fact-filter scan over the bit-packed
// encoding: each column streams its packed bytes (scaled to the scanned
// fraction of the table) and, on CPU devices, pays the per-element unpack
// arithmetic the paper's Section 5.5 warns can tip the scan compute bound.
// GPUs absorb the unpacking in their compute headroom, so for them packed
// is always at most the plain ScanCost — a scheduler compares the two
// numbers to decide whether packed execution wins on a given device.
func ScanCostPacked(dev *device.Spec, pf *ssb.PackedFact, factRows int64, filterCols []string) float64 {
	if len(filterCols) == 0 || factRows == 0 {
		return 0
	}
	frac := float64(factRows) / float64(pf.Rows())
	pass := &device.Pass{Label: "fact scan (packed)"}
	for _, c := range filterCols {
		pass.BytesRead += int64(float64(pf.Col(c).Bytes()) * frac)
	}
	if !dev.IsGPU() {
		pass.ComputeCycles = pack.UnpackCyclesPerElem * float64(factRows) * float64(len(filterCols))
	}
	return dev.PassTime(pass)
}

// TransferCost prices the coprocessor's PCIe shipment of a column working
// set of which residentBytes are already pinned in device memory: the
// resident portion costs nothing (the whole point of the residency cache),
// the remainder crosses the link at PCIe bandwidth. residentBytes clamps to
// totalBytes, so a fully resident working set is free.
func TransferCost(totalBytes, residentBytes int64) float64 {
	if residentBytes > totalBytes {
		residentBytes = totalBytes
	}
	return device.TransferTime(totalBytes - residentBytes)
}

// FleetEstimate is the cost model's price of one query on a multi-GPU
// fleet: the per-device execution estimates (the makespan is their max),
// the spilled-shard interconnect traffic, and the cross-device
// partial-aggregate merge. It is the scheduler's side of the bargain
// queries.RunFleet executes: both consume the same fleet.Assign shard map,
// so the model and the engine can never disagree about placement.
type FleetEstimate struct {
	// GPUs is the fleet size the estimate prices.
	GPUs int
	// Seconds is the fleet estimate: max per-device seconds plus the merge.
	Seconds float64
	// DeviceSeconds is each device's estimated time (shard scan and probe
	// pipeline, overlapped with its spill shipment).
	DeviceSeconds []float64
	// SpillBytes is the total referenced-column traffic of shards exceeding
	// device memory; it is priced per device, overlapped with execution,
	// inside DeviceSeconds.
	SpillBytes int64
	// MergeBytes is the partial-aggregate traffic (16 bytes per estimated
	// group per active device) and MergeSeconds its interconnect time.
	MergeBytes   int64
	MergeSeconds float64
}

// FleetCost prices one query across a fleet of devices holding the given
// morsels: range-shard the morsels (fleet.Assign, the same scheduler the
// executor uses), price each device's shard — zone-pruned morsels charge
// nothing, spilled morsels additionally cross the interconnect like a
// coprocessor transfer — and add the partial-aggregate merge, sized by the
// query's group estimate. packed, when non-nil, prices the run over the
// bit-packed encoding: shards place (and spill) by their packed storage
// and the scan term pays ScanCostPacked, exactly as queries.RunFleet
// executes it — passing the executor's encoding keeps the model and the
// engine agreeing about placement on packed runs too. The returned
// estimate follows the same bandwidth model the engines meter, so its
// scaling shape (near-linear on scan-bound queries, merge-bound on
// high-cardinality group-bys, interconnect-bound once shards spill)
// matches queries.RunFleet's simulated seconds.
func FleetCost(fl fleet.Spec, ds *ssb.Dataset, q queries.Query, morsels []ssb.Morsel, packed *ssb.PackedFact) (FleetEstimate, error) {
	fl, err := fl.Normalized()
	if err != nil {
		return FleetEstimate{}, err
	}
	stats := Stats(ds, q)
	refCols := q.ReferencedFactColumns()
	var filterCols []string
	for _, f := range q.FactFilters {
		filterCols = append(filterCols, f.Col)
	}
	// Footprints come from the same shared helpers queries.RunFleet prices
	// placement with — agreement by shared code, not by parallel copies.
	shardBytes := func(m ssb.Morsel) int64 { return ssb.MorselStorageBytes(packed, m) }
	spillCost := func(m ssb.Morsel) int64 {
		var b int64
		for _, c := range refCols {
			b += ssb.MorselColumnBytes(packed, m, c)
		}
		return b
	}
	shards := fleet.Assign(morsels, fl.GPUs, fl.Device.MemoryBytes, shardBytes)

	est := FleetEstimate{GPUs: fl.GPUs}
	pruned := queries.PruneMorsels(morsels, q.FactFilters)
	var makespan float64
	for _, sh := range shards {
		if len(sh.Morsels) == 0 {
			est.DeviceSeconds = append(est.DeviceSeconds, 0)
			continue
		}
		spilled := make(map[int]bool, len(sh.Spilled))
		for _, mi := range sh.Spilled {
			spilled[mi] = true
		}
		var rows, spillBytes int64
		for _, mi := range sh.Morsels {
			if pruned[mi] {
				continue // host-side zone check: neither scanned nor shipped
			}
			rows += int64(morsels[mi].Rows())
			if spilled[mi] {
				spillBytes += spillCost(morsels[mi])
			}
		}
		var scan float64
		if packed != nil {
			scan = ScanCostPacked(fl.Device, packed, rows, filterCols)
		} else {
			scan = ScanCost(fl.Device, rows, len(filterCols))
		}
		sec := scan + Cost(fl.Device, rows, stats)
		est.SpillBytes += spillBytes
		if t := fl.Link.TransferTime(spillBytes); t > sec {
			sec = t // spill overlaps execution, coprocessor style
		}
		est.DeviceSeconds = append(est.DeviceSeconds, sec)
		if sec > makespan {
			makespan = sec
		}
		est.MergeBytes += int64(q.GroupEstimate()) * q.AggRowBytes()
	}
	est.MergeSeconds = fl.Link.TransferTime(est.MergeBytes)
	// ORDER BY queries sort on the fleet's devices after the merge
	// (per-device runs plus a host merge in the executor; the estimate
	// prices the dominant radix term).
	est.Seconds = makespan + est.MergeSeconds + OrderCost(fl.Device, q)
	return est, nil
}

// Plan is one costed join order.
type Plan struct {
	Order   []queries.JoinSpec
	Seconds float64
}

// Describe renders the order as a pipeline.
func (p *Plan) Describe() string {
	s := "lineorder"
	for _, j := range p.Order {
		s += " ⋈ " + j.Dim
	}
	return fmt.Sprintf("%s (%.3f ms)", s, p.Seconds*1e3)
}

// Pruning summarizes zone-map pruning of a morsel set under a query's fact
// filters: how many morsels the partitioned scan would skip and how many
// fact rows actually reach the pipeline. It is exact, not an estimate —
// zone maps are metadata, so the planner can afford to evaluate them.
type Pruning struct {
	Morsels int
	Pruned  int
	// ScannedRows is the fact cardinality surviving zone-map pruning; it is
	// the row count partitioned plans are priced against.
	ScannedRows int64
}

// PruneEstimate evaluates the query's fact filters against each morsel's
// zone map (the same conservative check the engines use at run time).
func PruneEstimate(morsels []ssb.Morsel, q queries.Query) Pruning {
	pr := Pruning{Morsels: len(morsels)}
	for i, skip := range queries.PruneMorsels(morsels, q.FactFilters) {
		if skip {
			pr.Pruned++
		} else {
			pr.ScannedRows += int64(morsels[i].Rows())
		}
	}
	return pr
}

// Choose enumerates every permutation of the query's joins, prices them on
// dev and returns them sorted cheapest first. SSB queries join at most four
// dimensions, so exhaustive enumeration (<= 24 plans) is exact.
func Choose(dev *device.Spec, ds *ssb.Dataset, q queries.Query) []Plan {
	return choose(dev, int64(ds.Lineorder.Rows()), ds, q)
}

// ChoosePartitioned prices the query's join orders for a partitioned
// execution over the given morsels: zone-pruned morsels charge nothing, so
// every plan's scan term shrinks to the surviving fact rows. Pruning is
// join-order independent (it only reads fact filters), so the ranking
// matches Choose's — what changes is the absolute cost, which a scheduler
// comparing partitioned against monolithic execution (or sizing a morsel
// fan-out) needs to get right.
func ChoosePartitioned(dev *device.Spec, ds *ssb.Dataset, q queries.Query, morsels []ssb.Morsel) []Plan {
	return choose(dev, PruneEstimate(morsels, q).ScannedRows, ds, q)
}

func choose(dev *device.Spec, factRows int64, ds *ssb.Dataset, q queries.Query) []Plan {
	scan := ScanCost(dev, factRows, len(q.FactFilters))
	stats := Stats(ds, q)
	n := len(stats)
	if n == 0 {
		return []Plan{{Seconds: scan + Cost(dev, factRows, nil)}}
	}
	var plans []Plan
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			order := make([]JoinStats, n)
			specs := make([]queries.JoinSpec, n)
			for i, pi := range perm {
				order[i] = stats[pi]
				specs[i] = stats[pi].Spec
			}
			plans = append(plans, Plan{
				Order:   specs,
				Seconds: scan + Cost(dev, factRows, order),
			})
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	sort.Slice(plans, func(i, j int) bool { return plans[i].Seconds < plans[j].Seconds })
	return plans
}

// Optimize returns a copy of the query with its joins reordered to the
// cheapest plan for the device. Group-by payload order follows join order,
// so the caller must decode result keys against the optimized query.
func Optimize(dev *device.Spec, ds *ssb.Dataset, q queries.Query) queries.Query {
	plans := Choose(dev, ds, q)
	if len(plans) == 0 || len(plans[0].Order) == 0 {
		return q
	}
	out := q
	out.Joins = plans[0].Order
	return out
}

// OptimizeGrouped returns a copy of the query with its joins reordered to
// the cheapest plan that keeps the payload-carrying joins in their original
// relative order. Packed group keys follow join order, so unlike Optimize
// the result rows — keys included — are identical to the input query's;
// this is the variant the SQL frontend uses, where the GROUP BY clause has
// already fixed the payload order. The identity order always qualifies, so
// a plan is always found.
func OptimizeGrouped(dev *device.Spec, ds *ssb.Dataset, q queries.Query) queries.Query {
	want := payloadDims(q.Joins)
	for _, p := range Choose(dev, ds, q) {
		if len(p.Order) == 0 {
			return q
		}
		if slices.Equal(payloadDims(p.Order), want) {
			out := q
			out.Joins = p.Order
			return out
		}
	}
	return q
}

// payloadDims lists the dimensions of payload-carrying joins in join order.
func payloadDims(joins []queries.JoinSpec) []string {
	var out []string
	for _, j := range joins {
		if j.Payload != "" {
			out = append(out, j.Dim)
		}
	}
	return out
}
