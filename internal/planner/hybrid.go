package planner

import (
	"crystal/internal/device"
	"crystal/internal/fleet"
	"crystal/internal/queries"
	"crystal/internal/sched"
	"crystal/internal/ssb"
)

// Placement names where the planner routes one query among the
// host-resident placements the serving layer exposes.
type Placement string

// The placements ChoosePlacement decides between. All three scan
// host-resident data: PlaceCPU is the standalone CPU engine, PlaceGPU the
// GPU fleet with every referenced column shipped over the interconnect
// per query (the multi-device coprocessor), and PlaceHybrid the CPU and
// GPU arms co-executing a split morsel set.
const (
	PlaceCPU    Placement = "cpu"
	PlaceGPU    Placement = "gpu"
	PlaceHybrid Placement = "hybrid"
)

// HybridEstimate is the cost model's price of one query's hybrid CPU+GPU
// co-execution, alongside the pure placements it competes against. It is
// the scheduler's side of the bargain queries.Plan.RunHybrid executes:
// both derive the CPU/GPU division from sched.CPUFraction and
// sched.SplitHybrid and the GPU shard map from fleet.Assign, so the model
// can never price a placement the executor would not produce.
type HybridEstimate struct {
	// GPUs is the fleet size of the GPU arm and CPUFrac the live-row
	// fraction the split routes to the host CPU engine.
	GPUs    int
	CPUFrac float64
	// CPUSeconds is the CPU arm's estimated time inside the hybrid
	// schedule and DeviceSeconds each GPU arm's (shard scan and probe
	// pipeline, overlapped with its interconnect shipment).
	CPUSeconds    float64
	DeviceSeconds []float64
	// ShipBytes is the GPU arms' referenced-column traffic: hybrid models
	// host-resident data, so every GPU-routed live morsel crosses the
	// link per query.
	ShipBytes int64
	// MergeBytes is the partial-aggregate traffic (16 bytes per estimated
	// group per active GPU arm — the CPU arm merges host-side for free)
	// and MergeSeconds its interconnect time.
	MergeBytes   int64
	MergeSeconds float64
	// Seconds is the hybrid estimate: the slowest arm plus the merge.
	Seconds float64

	// PureCPUSeconds prices the pure-CPU placement (the host engine scans
	// everything, nothing crosses the link) and PureGPUSeconds the
	// pure-GPU placement (the same fleet with a zero CPU fraction: every
	// live morsel ships). Hybrid must beat both to be chosen.
	PureCPUSeconds float64
	PureGPUSeconds float64
	// FleetSeconds prices the device-resident fleet placement (FleetCost)
	// for reference: when the working set fits device memory a resident
	// fleet dominates every host-resident placement, which is why
	// ChoosePlacement routes only among the latter — the placement
	// surface of a host that owns the data.
	FleetSeconds float64
}

// scanCostFor prices the fact-filter scan in whichever encoding the run
// uses.
func scanCostFor(dev *device.Spec, packed *ssb.PackedFact, rows int64, filterCols []string) float64 {
	if packed != nil {
		return ScanCostPacked(dev, packed, rows, filterCols)
	}
	return ScanCost(dev, rows, len(filterCols))
}

// hybridArms prices the hybrid schedule at one CPU fraction: the split
// comes from sched.SplitHybrid, the GPU shard map from fleet.Assign with
// zero capacity (host-resident data — everything spills), the CPU arm
// runs on the host device and each GPU arm overlaps its shipment with
// execution, exactly the shape queries.Plan.ScheduleHybrid builds.
func hybridArms(fl fleet.Spec, ds *ssb.Dataset, q queries.Query, morsels []ssb.Morsel, packed *ssb.PackedFact, frac float64) HybridEstimate {
	stats := Stats(ds, q)
	refCols := q.ReferencedFactColumns()
	var filterCols []string
	for _, f := range q.FactFilters {
		filterCols = append(filterCols, f.Col)
	}
	cpu := device.I76900()
	pruned := queries.PruneMorsels(morsels, q.FactFilters)
	split := sched.SplitHybrid(morsels, pruned, frac)

	est := HybridEstimate{GPUs: fl.GPUs, CPUFrac: frac}
	var makespan float64
	if len(split.CPU) > 0 {
		var rows int64
		for _, mi := range split.CPU {
			if !pruned[mi] {
				rows += int64(morsels[mi].Rows())
			}
		}
		est.CPUSeconds = scanCostFor(cpu, packed, rows, filterCols) + Cost(cpu, rows, stats)
		makespan = est.CPUSeconds
	}

	shardBytes := func(m ssb.Morsel) int64 { return ssb.MorselStorageBytes(packed, m) }
	spillCost := func(m ssb.Morsel) int64 {
		var b int64
		for _, c := range refCols {
			b += ssb.MorselColumnBytes(packed, m, c)
		}
		return b
	}
	gpuMorsels := make([]ssb.Morsel, len(split.GPU))
	for i, mi := range split.GPU {
		gpuMorsels[i] = morsels[mi]
	}
	shards := fleet.Assign(gpuMorsels, fl.GPUs, 0, shardBytes)
	for _, sh := range shards {
		if len(sh.Morsels) == 0 {
			est.DeviceSeconds = append(est.DeviceSeconds, 0)
			continue
		}
		var rows, ship int64
		for _, li := range sh.Morsels {
			mi := split.GPU[li]
			if pruned[mi] {
				continue // host-side zone check: neither scanned nor shipped
			}
			rows += int64(morsels[mi].Rows())
			ship += spillCost(morsels[mi])
		}
		sec := scanCostFor(fl.Device, packed, rows, filterCols) + Cost(fl.Device, rows, stats)
		est.ShipBytes += ship
		if t := fl.Link.TransferTime(ship); t > sec {
			sec = t // shipment overlaps execution, coprocessor style
		}
		est.DeviceSeconds = append(est.DeviceSeconds, sec)
		if sec > makespan {
			makespan = sec
		}
		est.MergeBytes += int64(q.GroupEstimate()) * q.AggRowBytes()
	}
	est.MergeSeconds = fl.Link.TransferTime(est.MergeBytes)
	est.Seconds = makespan + est.MergeSeconds
	return est
}

// HybridCost prices one query's hybrid CPU+GPU co-execution over fl at
// the throughput-balanced default split (sched.CPUFraction), against the
// pure-CPU, pure-GPU and device-resident fleet placements. The hybrid and
// pure-GPU placements model host-resident data — their GPU arms ship every
// referenced column over fl.Link per query — which is what decides the
// interconnect crossover: on PCIe the shipment drowns the GPU's bandwidth
// advantage and pure CPU wins (the paper's Section 6 verdict), while on an
// NVLink-class link the hybrid's combined throughput beats both pure
// placements.
func HybridCost(fl fleet.Spec, ds *ssb.Dataset, q queries.Query, morsels []ssb.Morsel, packed *ssb.PackedFact) (HybridEstimate, error) {
	fl, err := fl.Normalized()
	if err != nil {
		return HybridEstimate{}, err
	}
	cpu := device.I76900()
	frac := sched.CPUFraction(cpu, fl.Device, fl.GPUs)
	est := hybridArms(fl, ds, q, morsels, packed, frac)

	stats := Stats(ds, q)
	var filterCols []string
	for _, f := range q.FactFilters {
		filterCols = append(filterCols, f.Col)
	}
	liveRows := PruneEstimate(morsels, q).ScannedRows
	est.PureCPUSeconds = scanCostFor(cpu, packed, liveRows, filterCols) + Cost(cpu, liveRows, stats)
	est.PureGPUSeconds = hybridArms(fl, ds, q, morsels, packed, 0).Seconds
	// The ORDER BY phase runs where each placement's merged groups live:
	// host-side for the CPU and mixed-kind hybrid placements (heap-vs-sort,
	// TopNCost), on the devices for the pure-GPU arm — the same routing
	// queries.Plan.RunScheduled derives from the schedule's executor kinds.
	est.Seconds += OrderCost(cpu, q)
	est.PureCPUSeconds += OrderCost(cpu, q)
	est.PureGPUSeconds += OrderCost(fl.Device, q)
	fe, err := FleetCost(fl, ds, q, morsels, packed)
	if err != nil {
		return HybridEstimate{}, err
	}
	est.FleetSeconds = fe.Seconds
	return est, nil
}

// ChoosePlacement routes one query among the host-resident placements:
// hybrid is chosen only when HybridCost says it strictly beats every pure
// placement, otherwise the cheaper of pure CPU and pure GPU wins. On PCIe
// the shipment-bound GPU arm loses to the host engine for scan-heavy
// queries (the paper's coprocessor verdict); on an NVLink-class link the
// hybrid split wins — the crossover the regression tests pin on both
// interconnects.
func ChoosePlacement(fl fleet.Spec, ds *ssb.Dataset, q queries.Query, morsels []ssb.Morsel, packed *ssb.PackedFact) (Placement, HybridEstimate, error) {
	est, err := HybridCost(fl, ds, q, morsels, packed)
	if err != nil {
		return "", HybridEstimate{}, err
	}
	best, bestSec := PlaceCPU, est.PureCPUSeconds
	if est.PureGPUSeconds < bestSec {
		best, bestSec = PlaceGPU, est.PureGPUSeconds
	}
	if est.Seconds < bestSec {
		best = PlaceHybrid
	}
	return best, est, nil
}
