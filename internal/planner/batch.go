package planner

import (
	"errors"

	"crystal/internal/device"
	"crystal/internal/fleet"
	"crystal/internal/queries"
	"crystal/internal/sched"
	"crystal/internal/ssb"
)

// BatchEstimate is the cost model's price of one shared-scan batch on each
// host-resident placement: one scan of the union footprint over the union
// of the members' live morsels, charged once, plus each member's own
// probe/aggregate/sort delta. It is the batch-shaped sibling of
// HybridEstimate — both derive splits and shard maps from the same
// scheduler primitives the executor uses, so the model can never price a
// shape queries.RunBatch* would not produce.
type BatchEstimate struct {
	// Members is the batch size and GPUs the fleet size of the GPU arms.
	Members int
	GPUs    int
	// CPUSeconds, GPUSeconds and HybridSeconds price the batch on the
	// pure-CPU, pure-GPU and throughput-balanced hybrid placements.
	CPUSeconds    float64
	GPUSeconds    float64
	HybridSeconds float64
	// CPUFrac is the hybrid split's live-row CPU fraction.
	CPUFrac float64
}

// unionFilterCols returns the distinct fact filter columns across the batch
// (what the shared scan streams for filtering) and unionRefCols the distinct
// referenced fact columns (what a GPU arm ships once for the whole batch).
func unionCols(qs []queries.Query) (filterCols, refCols []string) {
	seenF, seenR := map[string]bool{}, map[string]bool{}
	for i := range qs {
		for _, f := range qs[i].FactFilters {
			if !seenF[f.Col] {
				seenF[f.Col] = true
				filterCols = append(filterCols, f.Col)
			}
		}
		for _, c := range qs[i].ReferencedFactColumns() {
			if !seenR[c] {
				seenR[c] = true
				refCols = append(refCols, c)
			}
		}
	}
	return filterCols, refCols
}

// batchArms prices the batch on one hybrid split (frac 1 = pure CPU,
// 0 = pure GPU): per arm, the union scan is charged once and every member
// adds its probe/aggregate cost over the arm's rows it is live on. The
// union liveness (a morsel prunes only when every member's zone maps prune
// it) matches the shared scan queries.runBatchShared executes.
func batchArms(fl fleet.Spec, ds *ssb.Dataset, qs []queries.Query, morsels []ssb.Morsel, packed *ssb.PackedFact, frac float64) float64 {
	filterCols, refCols := unionCols(qs)
	cpu := device.I76900()

	prunedPer := make([][]bool, len(qs))
	for i := range qs {
		prunedPer[i] = queries.PruneMorsels(morsels, qs[i].FactFilters)
	}
	prunedAll := make([]bool, len(morsels))
	for mi := range morsels {
		prunedAll[mi] = true
		for i := range qs {
			if !prunedPer[i][mi] {
				prunedAll[mi] = false
				break
			}
		}
	}
	split := sched.SplitHybrid(morsels, prunedAll, frac)

	memberRows := func(idx []int, i int) int64 {
		var rows int64
		for _, mi := range idx {
			if !prunedPer[i][mi] {
				rows += int64(morsels[mi].Rows())
			}
		}
		return rows
	}
	unionRows := func(idx []int) int64 {
		var rows int64
		for _, mi := range idx {
			if !prunedAll[mi] {
				rows += int64(morsels[mi].Rows())
			}
		}
		return rows
	}

	var makespan float64
	if len(split.CPU) > 0 {
		sec := scanCostFor(cpu, packed, unionRows(split.CPU), filterCols)
		for i := range qs {
			sec += Cost(cpu, memberRows(split.CPU, i), Stats(ds, qs[i]))
		}
		makespan = sec
	}

	shardBytes := func(m ssb.Morsel) int64 { return ssb.MorselStorageBytes(packed, m) }
	spillCost := func(m ssb.Morsel) int64 {
		var b int64
		for _, c := range refCols {
			b += ssb.MorselColumnBytes(packed, m, c)
		}
		return b
	}
	gpuMorsels := make([]ssb.Morsel, len(split.GPU))
	for i, mi := range split.GPU {
		gpuMorsels[i] = morsels[mi]
	}
	shards := fleet.Assign(gpuMorsels, fl.GPUs, 0, shardBytes)
	var mergeBytes int64
	for _, sh := range shards {
		if len(sh.Morsels) == 0 {
			continue
		}
		var ship int64
		owned := make([]int, len(sh.Morsels))
		for li, si := range sh.Morsels {
			mi := split.GPU[si]
			owned[li] = mi
			if !prunedAll[mi] {
				ship += spillCost(morsels[mi]) // union footprint ships once per batch
			}
		}
		sec := scanCostFor(fl.Device, packed, unionRows(owned), filterCols)
		for i := range qs {
			sec += Cost(fl.Device, memberRows(owned, i), Stats(ds, qs[i]))
			mergeBytes += int64(qs[i].GroupEstimate()) * qs[i].AggRowBytes()
		}
		if t := fl.Link.TransferTime(ship); t > sec {
			sec = t
		}
		if sec > makespan {
			makespan = sec
		}
	}
	sec := makespan + fl.Link.TransferTime(mergeBytes)
	// Each member's ORDER BY phase runs after its own merge; host-side for
	// any placement with a CPU arm, on the devices for pure GPU.
	sortDev := cpu
	if frac == 0 {
		sortDev = fl.Device
	}
	for i := range qs {
		sec += OrderCost(sortDev, qs[i])
	}
	return sec
}

// BatchCost prices one shared-scan batch of compatible queries on the
// host-resident placements: the shared scan (union footprint over the union
// of live morsels) is charged once per arm, and every member adds its own
// probe/aggregate/sort delta — the batch-shaped HybridCost. placement=auto
// batch requests route through ChooseBatchPlacement exactly as singles
// route through ChoosePlacement.
func BatchCost(fl fleet.Spec, ds *ssb.Dataset, qs []queries.Query, morsels []ssb.Morsel, packed *ssb.PackedFact) (BatchEstimate, error) {
	if len(qs) == 0 {
		return BatchEstimate{}, errors.New("planner: empty batch")
	}
	fl, err := fl.Normalized()
	if err != nil {
		return BatchEstimate{}, err
	}
	cpu := device.I76900()
	frac := sched.CPUFraction(cpu, fl.Device, fl.GPUs)
	est := BatchEstimate{
		Members:       len(qs),
		GPUs:          fl.GPUs,
		CPUFrac:       frac,
		CPUSeconds:    batchArms(fl, ds, qs, morsels, packed, 1),
		GPUSeconds:    batchArms(fl, ds, qs, morsels, packed, 0),
		HybridSeconds: batchArms(fl, ds, qs, morsels, packed, frac),
	}
	return est, nil
}

// ChooseBatchPlacement routes one shared-scan batch among the host-resident
// placements: hybrid only when it strictly beats both pure placements,
// otherwise the cheaper of pure CPU and pure GPU — the batch-shaped
// ChoosePlacement.
func ChooseBatchPlacement(fl fleet.Spec, ds *ssb.Dataset, qs []queries.Query, morsels []ssb.Morsel, packed *ssb.PackedFact) (Placement, BatchEstimate, error) {
	est, err := BatchCost(fl, ds, qs, morsels, packed)
	if err != nil {
		return "", BatchEstimate{}, err
	}
	best, bestSec := PlaceCPU, est.CPUSeconds
	if est.GPUSeconds < bestSec {
		best, bestSec = PlaceGPU, est.GPUSeconds
	}
	if est.HybridSeconds < bestSec {
		best = PlaceHybrid
	}
	return best, est, nil
}
