package cpu

import (
	"math"

	"crystal/internal/device"
)

// ProjectVariant selects between the two CPU projection implementations of
// Section 4.1.
type ProjectVariant int

const (
	// ProjectNaive is a plain multi-threaded loop: scalar arithmetic and
	// regular (write-allocating) stores.
	ProjectNaive ProjectVariant = iota
	// ProjectOpt adds non-temporal writes and SIMD arithmetic ("CPU-Opt").
	ProjectOpt
)

func (v ProjectVariant) String() string {
	if v == ProjectOpt {
		return "CPU-Opt"
	}
	return "CPU"
}

// Project evaluates Q1: SELECT a*x1 + b*x2 FROM R (Section 4.1).
func Project(clk *device.Clock, x1, x2 []float32, a, b float32, variant ProjectVariant) []float32 {
	out := make([]float32, len(x1))
	parallelFor(len(x1), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = a*x1[i] + b*x2[i]
		}
	})
	clk.Charge(projectPass("cpu project q1 "+variant.String(), len(x1), variant, cyclesProjectQ1, cyclesProjQ1SIMD))
	return out
}

// ProjectSigmoid evaluates Q2: SELECT sigmoid(a*x1 + b*x2) FROM R — the
// most complex projection a SQL query will realistically contain. Without
// SIMD the scalar exp makes it compute bound (Figure 10: 282 ms vs the
// 64 ms bandwidth model); with AVX2 it saturates bandwidth again.
func ProjectSigmoid(clk *device.Clock, x1, x2 []float32, a, b float32, variant ProjectVariant) []float32 {
	out := make([]float32, len(x1))
	parallelFor(len(x1), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			x := float64(a*x1[i] + b*x2[i])
			out[i] = float32(1 / (1 + math.Exp(-x)))
		}
	})
	clk.Charge(projectPass("cpu project q2 "+variant.String(), len(x1), variant, cyclesSigmoid, cyclesSigmoidSIMD))
	return out
}

func projectPass(label string, n int, variant ProjectVariant, scalarCycles, simdCycles float64) *device.Pass {
	pass := &device.Pass{
		Label:        label,
		BytesRead:    int64(n) * 8, // two input columns
		BytesWritten: int64(n) * 4,
	}
	if variant == ProjectNaive {
		pass.BytesRead += int64(n) * 4 // read-for-ownership of output lines
		pass.ComputeCycles = scalarCycles * float64(n)
	} else {
		pass.ComputeCycles = simdCycles * float64(n)
	}
	return pass
}
