package cpu

import (
	"sync/atomic"

	"crystal/internal/device"
)

// SelectVariant selects among the paper's three CPU selection-scan
// implementations (Section 4.2, Figure 12).
type SelectVariant int

const (
	// SelectIf is the naive branching implementation (Figure 15a); it pays
	// branch misprediction penalties at mid selectivities.
	SelectIf SelectVariant = iota
	// SelectPred uses branch-free predication (Figure 15b).
	SelectPred
	// SelectSIMDPred uses vectorized selective stores with streaming writes
	// (Polychroniou et al.).
	SelectSIMDPred
)

func (v SelectVariant) String() string {
	switch v {
	case SelectIf:
		return "CPU If"
	case SelectPred:
		return "CPU Pred"
	case SelectSIMDPred:
		return "CPU SIMDPred"
	}
	return "unknown"
}

// Select runs the multi-threaded selection scan of Section 3.2 on in: the
// input is partitioned across cores; each core processes one vector
// (~1024 entries) at a time, counting matches in a first pass over the
// L1-resident vector, claiming output space from a global cursor, and
// copying matches in a second pass. Output is stable (input order).
func Select(clk *device.Clock, in []int32, pred func(int32) bool, variant SelectVariant) []int32 {
	n := len(in)
	numVec := (n + VectorSize - 1) / VectorSize
	counts := make([]int32, numVec+1)
	var atomics int64

	// Pass over vectors: count matches per vector. The second pass reads the
	// vector from L1, so only one streaming read of the column is charged.
	parallelFor(numVec, func(_, lo, hi int) {
		local := int64(0)
		for v := lo; v < hi; v++ {
			s, e := v*VectorSize, (v+1)*VectorSize
			if e > n {
				e = n
			}
			c := int32(0)
			for i := s; i < e; i++ {
				if pred(in[i]) {
					c++
				}
			}
			counts[v+1] = c
			local++ // one global-cursor update per vector
		}
		atomic.AddInt64(&atomics, local)
	})
	for v := 0; v < numVec; v++ {
		counts[v+1] += counts[v]
	}
	total := counts[numVec]
	out := make([]int32, total)
	parallelFor(numVec, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			s, e := v*VectorSize, (v+1)*VectorSize
			if e > n {
				e = n
			}
			o := counts[v]
			for i := s; i < e; i++ {
				if pred(in[i]) {
					out[o] = in[i]
					o++
				}
			}
		}
	})

	sigma := 0.0
	if n > 0 {
		sigma = float64(total) / float64(n)
	}
	pass := &device.Pass{
		Label:        "cpu select " + variant.String(),
		BytesRead:    int64(n) * 4,
		BytesWritten: int64(total) * 4,
		AtomicOps:    atomics,
	}
	switch variant {
	case SelectIf:
		pass.ComputeCycles = cyclesSelectIf * float64(n)
		pass.Mispredicts = mispredicts(int64(n), sigma)
	case SelectPred:
		pass.ComputeCycles = cyclesSelectPred * float64(n)
	case SelectSIMDPred:
		pass.ComputeCycles = cyclesSelectSIMD * float64(n)
	}
	if variant != SelectSIMDPred {
		// Scalar stores allocate the output lines in cache before writing
		// (read-for-ownership); the SIMD variant uses streaming stores.
		pass.BytesRead += int64(total) * 4
	}
	clk.Charge(pass)
	return out
}
