// Package cpu implements the paper's CPU-side operators: multi-threaded,
// vector-at-a-time selection scans (branching, predicated and SIMD
// variants), projections (naive and optimized with non-temporal writes +
// SIMD), linear-probing hash joins (scalar, vertically-vectorized SIMD and
// group-prefetching variants), and the radix partitioning / LSB radix sort
// of Polychroniou & Ross.
//
// Go has no SIMD intrinsics, so the SIMD variants execute the same
// lane-batched algorithms scalar-wise while the timing model charges them
// their calibrated per-element instruction costs (DESIGN.md substitution
// table). All operators run functionally on real data across goroutines and
// meter their memory traffic into device.Pass records priced by the
// i7-6900 model.
package cpu

import (
	"runtime"
	"sync"

	"crystal/internal/device"
)

// VectorSize is the number of entries a thread processes at a time: small
// enough to fit in L1 (Section 3.2 "a vector is about 1000 entries").
const VectorSize = 1024

// Per-element instruction costs in scalar-equivalent core cycles, calibrated
// so the CPU variants land where Figures 10, 12 and 13 put them relative to
// the bandwidth models (see DESIGN.md). SIMD costs are per *element*, i.e.
// already divided by the 8 AVX2 lanes.
const (
	cyclesSelectIf    = 1.5 // branchy compare + conditional store
	cyclesSelectPred  = 2.0 // predicated compare + unconditional store + cursor add
	cyclesSelectSIMD  = 0.4 // vectorized compare + selective store
	cyclesProjectQ1   = 3.0 // scalar multiply-add per element
	cyclesProjQ1SIMD  = 0.5
	cyclesSigmoid     = 27.0 // scalar exp + divide
	cyclesSigmoidSIMD = 3.4  // vectorized polynomial exp
	cyclesProbeScalar = 3.0
	cyclesProbeSIMD   = 5.0 // 2 gathers + de-interleave per 8 keys (Section 4.3)
	cyclesProbePrefet = 5.0 // scalar probe + prefetch instruction overhead
	cyclesRadixHist   = 2.0
	cyclesRadixShuf   = 2.0
)

// prefetchStall is the residual stall factor of group-prefetched probes:
// prefetching hides most, not all, of the DRAM latency (Section 4.3 shows
// "limited improvement ... when data size is larger than the L3 cache").
const prefetchStall = 1.08

// parallelFor splits [0, n) into contiguous per-thread ranges and runs fn
// on each concurrently, mirroring the paper's partition-per-core execution.
func parallelFor(n int, fn func(worker, lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// mispredicts returns the expected branch mispredictions for n branchy
// iterations at selectivity sigma: the predictor fails on roughly
// 2*sigma*(1-sigma) of them (Section 4.2).
func mispredicts(n int64, sigma float64) int64 {
	return int64(2 * sigma * (1 - sigma) * float64(n))
}

var _ = device.Pass{} // anchor the import for doc tooling
