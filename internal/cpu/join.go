package cpu

import (
	"sync/atomic"

	"crystal/internal/crystal"
	"crystal/internal/device"
)

// JoinVariant selects among the paper's three CPU probe-phase
// implementations of the no-partitioning linear-probing hash join
// (Section 4.3, Figure 13).
type JoinVariant int

const (
	// JoinScalar probes tuple-at-a-time.
	JoinScalar JoinVariant = iota
	// JoinSIMD uses vertical vectorization: one key per AVX2 lane, gathers
	// into the hash table. The 8-byte slots mean each gather fills half a
	// register, so every 8 keys cost two gathers plus de-interleaving —
	// which is why it loses to scalar (Section 4.3).
	JoinSIMD
	// JoinPrefetch adds group software prefetching to the scalar probe,
	// hiding most DRAM latency at the cost of extra instructions.
	JoinPrefetch
)

func (v JoinVariant) String() string {
	switch v {
	case JoinScalar:
		return "CPU Scalar"
	case JoinSIMD:
		return "CPU SIMD"
	case JoinPrefetch:
		return "CPU Prefetch"
	}
	return "unknown"
}

// BuildHashTable builds the shared linear-probing table from the build
// relation's key and value columns (Section 4.3 build phase: writes stream
// to memory and are little affected by caches).
func BuildHashTable(clk *device.Clock, keys, vals []int32, fill float64) *crystal.HashTable {
	ht := crystal.NewHashTable(len(keys), fill, vals != nil)
	parallelFor(len(keys), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := int32(0)
			if vals != nil {
				v = vals[i]
			}
			ht.Insert(keys[i], v)
		}
	})
	pass := &device.Pass{Label: "cpu join build", BytesRead: int64(len(keys)) * 8}
	pass.AddProbes(device.ProbeSet{Count: int64(len(keys)), StructBytes: ht.Bytes(), Writes: true})
	clk.Charge(pass)
	return ht
}

// ProbeSum runs the probe phase of the Q4 microbenchmark: for every probe
// tuple that finds a match, A.v + B.v is added to a per-thread local sum;
// locals are combined with one atomic each at the end (Section 4.3).
func ProbeSum(clk *device.Clock, probeKeys, probeVals []int32, ht *crystal.HashTable, variant JoinVariant) int64 {
	var sum int64
	n := len(probeKeys)
	parallelFor(n, func(_, lo, hi int) {
		var local int64
		switch variant {
		case JoinSIMD:
			// Vertical vectorization: process 8 keys per "register",
			// reloading finished lanes (functionally identical; the lane
			// bookkeeping cost is charged in the pass below).
			for base := lo; base < hi; base += 8 {
				end := base + 8
				if end > hi {
					end = hi
				}
				for i := base; i < end; i++ {
					if v, ok := ht.Get(probeKeys[i]); ok {
						local += int64(probeVals[i]) + int64(v)
					}
				}
			}
		default:
			for i := lo; i < hi; i++ {
				if v, ok := ht.Get(probeKeys[i]); ok {
					local += int64(probeVals[i]) + int64(v)
				}
			}
		}
		atomic.AddInt64(&sum, local)
	})

	pass := &device.Pass{
		Label:     "cpu join probe " + variant.String(),
		BytesRead: int64(n) * 8, // probe key + payload columns
	}
	ps := device.ProbeSet{Count: int64(n), StructBytes: ht.Bytes()}
	switch variant {
	case JoinScalar:
		pass.ComputeCycles = cyclesProbeScalar * float64(n)
	case JoinSIMD:
		pass.ComputeCycles = cyclesProbeSIMD * float64(n)
	case JoinPrefetch:
		pass.ComputeCycles = cyclesProbePrefet * float64(n)
		ps.StallOverride = prefetchStall
	}
	pass.AddProbes(ps)
	clk.Charge(pass)
	return sum
}
