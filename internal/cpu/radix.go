package cpu

import (
	"fmt"

	"crystal/internal/device"
)

// l1Bytes is the per-core L1 budget available to the software
// write-combining buffers of the radix shuffle (Section 4.4: beyond 8 bits
// "the size of the partition buffers needed exceeds the size of L1 cache
// and the performance starts to deteriorate").
const l1Bytes = 32 << 10

// bufBytesPerPartition is the write-combining buffer footprint per
// partition: one cache line of keys plus one of payloads.
const bufBytesPerPartition = 128

// RadixHistogram runs the histogram phase of a radix-partitioning pass:
// each thread scans its chunk once, counting entries per partition in an
// L1-resident histogram (Section 4.4). It returns the per-thread histogram
// matrix and the per-partition totals.
func RadixHistogram(clk *device.Clock, keys []uint32, r, shift int, workers int) ([][]int64, []int64) {
	numPart := 1 << r
	mask := uint32(numPart - 1)
	n := len(keys)
	if workers <= 0 {
		workers = 8
	}
	hists := make([][]int64, workers)
	chunk := (n + workers - 1) / workers
	parallelForN(workers, n, func(w, lo, hi int) {
		h := make([]int64, numPart)
		for i := lo; i < hi; i++ {
			h[(keys[i]>>shift)&mask]++
		}
		hists[w] = h
	}, chunk)
	counts := make([]int64, numPart)
	for _, h := range hists {
		if h == nil {
			continue
		}
		for p, c := range h {
			counts[p] += c
		}
	}
	clk.Charge(&device.Pass{
		Label:         "cpu radix histogram",
		BytesRead:     int64(n) * 4,
		BytesWritten:  int64(workers) * int64(numPart) * 4,
		ComputeCycles: cyclesRadixHist * float64(n),
	})
	return hists, counts
}

// parallelForN runs fn over exactly `workers` fixed chunks (so per-worker
// histograms line up with per-worker scatter offsets, which is what makes
// the partition stable).
func parallelForN(workers, n int, fn func(w, lo, hi int), chunk int) {
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
		go func(w, lo, hi int) {
			if lo < hi {
				fn(w, lo, hi)
			}
			done <- struct{}{}
		}(w, lo, hi)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

// RadixPartition performs one stable radix-partitioning pass over
// (keys, vals) on bits [shift, shift+r), following Polychroniou & Ross:
// histogram phase, a 2D prefix sum over (partition, thread), then each
// thread scatters its chunk through L1-resident write-combining buffers.
// Output is stable. Returns the partitioned arrays and partition counts.
func RadixPartition(clk *device.Clock, keys []uint32, vals []int32, r, shift int) ([]uint32, []int32, []int64, error) {
	if r <= 0 || r > 16 {
		return nil, nil, nil, fmt.Errorf("cpu: radix bits %d out of range (1..16)", r)
	}
	n := len(keys)
	workers := 8
	hists, counts := RadixHistogram(clk, keys, r, shift, workers)
	numPart := 1 << r
	mask := uint32(numPart - 1)

	// 2D prefix sum in (partition, thread) order => stable partitioning.
	offsets := make([][]int64, workers)
	running := int64(0)
	for p := 0; p < numPart; p++ {
		for w := 0; w < workers; w++ {
			if offsets[w] == nil {
				offsets[w] = make([]int64, numPart)
			}
			offsets[w][p] = running
			if hists[w] != nil {
				running += hists[w][p]
			}
		}
	}

	outK := make([]uint32, n)
	var outV []int32
	if vals != nil {
		outV = make([]int32, n)
	}
	chunk := (n + workers - 1) / workers
	parallelForN(workers, n, func(w, lo, hi int) {
		off := offsets[w]
		for i := lo; i < hi; i++ {
			p := (keys[i] >> shift) & mask
			pos := off[p]
			off[p]++
			outK[pos] = keys[i]
			if vals != nil {
				outV[pos] = vals[i]
			}
		}
	}, chunk)

	elemBytes := int64(4)
	if vals != nil {
		elemBytes = 8
	}
	pass := &device.Pass{
		Label:         "cpu radix shuffle",
		BytesRead:     int64(n) * elemBytes,
		BytesWritten:  int64(n) * elemBytes,
		ComputeCycles: cyclesRadixShuf * float64(n),
	}
	// Write-combining buffer spill: with 2^r partitions the buffers exceed
	// L1 and a growing fraction of output lines lose write combining,
	// costing a read-for-ownership on the way out.
	if buf := int64(numPart) * bufBytesPerPartition; buf > l1Bytes {
		spill := 1 - float64(l1Bytes)/float64(buf)
		pass.BytesRead += int64(spill * float64(int64(n)*elemBytes))
	}
	clk.Charge(pass)
	return outK, outV, counts, nil
}

// LSBRadixSort sorts (keys, vals) by key with the least-significant-bit
// radix sort of Polychroniou & Ross: four stable 8-bit partitioning passes
// (Section 4.4: "On the CPU, we use stable partitioning to implement LSB
// radix sort. It ends up running 4 radix partitioning passes each looking
// at 8-bits at [a] time").
func LSBRadixSort(clk *device.Clock, keys []uint32, vals []int32) ([]uint32, []int32) {
	k := append([]uint32(nil), keys...)
	v := append([]int32(nil), vals...)
	for pass := 0; pass < 4; pass++ {
		var err error
		k, v, _, err = RadixPartition(clk, k, v, 8, 8*pass)
		if err != nil {
			panic(err) // unreachable: 8 bits is always valid
		}
	}
	return k, v
}
