package cpu

import (
	"math/rand"
	"testing"
)

func TestRadixJoinChecksum(t *testing.T) {
	const nBuild, nProbe = 1 << 14, 1 << 17
	bk := make([]int32, nBuild)
	bv := make([]int32, nBuild)
	for i := range bk {
		bk[i], bv[i] = int32(i+1), int32(5*i)
	}
	pk := make([]int32, nProbe)
	pv := make([]int32, nProbe)
	rng := rand.New(rand.NewSource(11))
	var want int64
	for i := range pk {
		pk[i] = int32(rng.Intn(2*nBuild) + 1)
		pv[i] = int32(i % 31)
		if pk[i] <= nBuild {
			want += int64(pv[i]) + int64(5*(pk[i]-1))
		}
	}
	got := RadixJoin(newClock(), bk, bv, pk, pv, 8)
	if got != want {
		t.Fatalf("radix join checksum = %d, want %d", got, want)
	}
	// And it matches the no-partitioning join's answer.
	ht := BuildHashTable(newClock(), bk, bv, 0.5)
	if np := ProbeSum(newClock(), pk, pv, ht, JoinScalar); np != got {
		t.Fatalf("radix join (%d) disagrees with no-partitioning join (%d)", got, np)
	}
}

func TestRadixJoinDefaultsBits(t *testing.T) {
	bk := []int32{1, 2, 3}
	bv := []int32{10, 20, 30}
	pk := []int32{2, 3, 4}
	pv := []int32{1, 1, 1}
	got := RadixJoin(newClock(), bk, bv, pk, pv, 0) // 0 -> default 8 bits
	if got != (1+20)+(1+30) {
		t.Fatalf("checksum = %d", got)
	}
}

func TestRadixJoinBeatsNoPartitioningOutOfCache(t *testing.T) {
	// Section 4.3: "radix join is faster for a single join". With a build
	// relation whose hash table exceeds the LLC, partitioning into
	// cache-resident chunks wins despite the extra passes.
	const nBuild, nProbe = 1 << 21, 1 << 21 // 32 MB no-partitioning table
	bk := make([]int32, nBuild)
	bv := make([]int32, nBuild)
	for i := range bk {
		bk[i], bv[i] = int32(i+1), int32(i)
	}
	pk := make([]int32, nProbe)
	pv := make([]int32, nProbe)
	rng := rand.New(rand.NewSource(12))
	for i := range pk {
		pk[i] = int32(rng.Intn(nBuild) + 1)
	}

	radix := newClock()
	RadixJoin(radix, bk, bv, pk, pv, 10)

	noPart := newClock()
	ht := BuildHashTable(noPart, bk, bv, 0.5)
	ProbeSum(noPart, pk, pv, ht, JoinScalar)

	if radix.Seconds() >= noPart.Seconds() {
		t.Errorf("radix join (%.5fs) should beat no-partitioning (%.5fs) out of cache",
			radix.Seconds(), noPart.Seconds())
	}
}
