package cpu

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crystal/internal/device"
)

func newClock() *device.Clock { return device.NewClock(device.I76900()) }

func TestSelectVariantsAgreeAndAreStable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := make([]int32, 100_000)
	for i := range in {
		in[i] = int32(rng.Intn(1000))
	}
	pred := func(v int32) bool { return v < 300 }
	var want []int32
	for _, v := range in {
		if pred(v) {
			want = append(want, v)
		}
	}
	for _, variant := range []SelectVariant{SelectIf, SelectPred, SelectSIMDPred} {
		got := Select(newClock(), in, pred, variant)
		if len(got) != len(want) {
			t.Fatalf("%v: %d rows, want %d", variant, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: row %d mismatch (stability)", variant, i)
			}
		}
	}
}

func TestSelectEdgeCases(t *testing.T) {
	if got := Select(newClock(), nil, func(int32) bool { return true }, SelectIf); len(got) != 0 {
		t.Error("empty input should give empty output")
	}
	in := []int32{5}
	if got := Select(newClock(), in, func(int32) bool { return true }, SelectPred); len(got) != 1 || got[0] != 5 {
		t.Errorf("singleton select = %v", got)
	}
}

func TestSelectIfHumpAtMidSelectivity(t *testing.T) {
	// Figure 12: CPU If peaks at sigma=0.5 from branch mispredictions,
	// while CPU Pred is flat-ish and SIMDPred is fastest.
	const n = 1 << 20
	in := make([]int32, n)
	rng := rand.New(rand.NewSource(2))
	for i := range in {
		in[i] = int32(rng.Intn(1000))
	}
	timeAt := func(variant SelectVariant, cut int32) float64 {
		clk := newClock()
		Select(clk, in, func(v int32) bool { return v < cut }, variant)
		return clk.Seconds()
	}
	ifMid := timeAt(SelectIf, 500)
	ifLow := timeAt(SelectIf, 0)
	ifHigh := timeAt(SelectIf, 1000)
	if !(ifMid > ifLow && ifMid > ifHigh) {
		t.Errorf("CPU If should peak mid-selectivity: low %.5f mid %.5f high %.5f", ifLow, ifMid, ifHigh)
	}
	predMid := timeAt(SelectPred, 500)
	if predMid >= ifMid {
		t.Errorf("CPU Pred (%.5f) should beat CPU If (%.5f) at sigma=0.5", predMid, ifMid)
	}
	simdMid := timeAt(SelectSIMDPred, 500)
	if simdMid >= predMid {
		t.Errorf("SIMDPred (%.5f) should beat Pred (%.5f)", simdMid, predMid)
	}
	// At sigma=0 If does no writes and beats Pred (paper: "CPU Pred does
	// better than CPU If at all selectivities except 0").
	predLow := timeAt(SelectPred, 0)
	if ifLow >= predLow {
		t.Errorf("at sigma=0 CPU If (%.5f) should beat Pred (%.5f)", ifLow, predLow)
	}
}

func TestProjectCorrectness(t *testing.T) {
	const n = 50_000
	x1 := make([]float32, n)
	x2 := make([]float32, n)
	rng := rand.New(rand.NewSource(3))
	for i := range x1 {
		x1[i], x2[i] = rng.Float32(), rng.Float32()
	}
	for _, v := range []ProjectVariant{ProjectNaive, ProjectOpt} {
		out := Project(newClock(), x1, x2, 2, 3, v)
		for i := range out {
			want := 2*x1[i] + 3*x2[i]
			if math.Abs(float64(out[i]-want)) > 1e-5 {
				t.Fatalf("%v: out[%d] = %f, want %f", v, i, out[i], want)
			}
		}
	}
}

func TestProjectOptFasterThanNaive(t *testing.T) {
	const n = 1 << 20
	x1 := make([]float32, n)
	x2 := make([]float32, n)
	naive, opt := newClock(), newClock()
	Project(naive, x1, x2, 1, 1, ProjectNaive)
	Project(opt, x1, x2, 1, 1, ProjectOpt)
	if opt.Seconds() >= naive.Seconds() {
		t.Errorf("CPU-Opt (%.5f) should beat CPU (%.5f) on Q1", opt.Seconds(), naive.Seconds())
	}
}

func TestSigmoidComputeBoundOnlyWhenScalar(t *testing.T) {
	// Figure 10 Q2: naive is compute bound (~4x over the bandwidth model),
	// CPU-Opt is bandwidth bound.
	const n = 1 << 20
	x1 := make([]float32, n)
	x2 := make([]float32, n)
	naive, opt := newClock(), newClock()
	ProjectSigmoid(naive, x1, x2, 1, 1, ProjectNaive)
	ProjectSigmoid(opt, x1, x2, 1, 1, ProjectOpt)
	ratio := naive.Seconds() / opt.Seconds()
	if ratio < 3 || ratio > 6 {
		t.Errorf("Q2 naive/opt ratio = %.2f, paper gives 282/69.6 ~ 4.1", ratio)
	}
	out := ProjectSigmoid(newClock(), []float32{0}, []float32{0}, 1, 1, ProjectOpt)
	if out[0] != 0.5 {
		t.Errorf("sigmoid(0) = %f", out[0])
	}
}

func TestBuildAndProbeSumAllVariants(t *testing.T) {
	const nBuild, nProbe = 4096, 1 << 16
	bk := make([]int32, nBuild)
	bv := make([]int32, nBuild)
	for i := range bk {
		bk[i], bv[i] = int32(i+1), int32(3*i)
	}
	pk := make([]int32, nProbe)
	pv := make([]int32, nProbe)
	rng := rand.New(rand.NewSource(4))
	var want int64
	for i := range pk {
		pk[i] = int32(rng.Intn(2*nBuild) + 1)
		pv[i] = int32(i % 97)
		if pk[i] <= nBuild {
			want += int64(pv[i]) + int64(3*(pk[i]-1))
		}
	}
	ht := BuildHashTable(newClock(), bk, bv, 0.5)
	for _, v := range []JoinVariant{JoinScalar, JoinSIMD, JoinPrefetch} {
		if got := ProbeSum(newClock(), pk, pv, ht, v); got != want {
			t.Errorf("%v checksum = %d, want %d", v, got, want)
		}
	}
}

func TestJoinVariantOrdering(t *testing.T) {
	// Figure 13, cache-resident region: SIMD and Prefetch are both slower
	// than Scalar (gather overhead / prefetch instruction overhead).
	const nProbe = 1 << 20
	bk := make([]int32, 2048)
	bv := make([]int32, 2048)
	for i := range bk {
		bk[i], bv[i] = int32(i+1), int32(i)
	}
	ht := BuildHashTable(newClock(), bk, bv, 0.5)
	pk := make([]int32, nProbe)
	pv := make([]int32, nProbe)
	rng := rand.New(rand.NewSource(5))
	for i := range pk {
		pk[i] = int32(rng.Intn(2048) + 1)
	}
	times := map[JoinVariant]float64{}
	for _, v := range []JoinVariant{JoinScalar, JoinSIMD, JoinPrefetch} {
		clk := newClock()
		ProbeSum(clk, pk, pv, ht, v)
		times[v] = clk.Seconds()
	}
	if times[JoinSIMD] <= times[JoinScalar] {
		t.Errorf("CPU SIMD (%.5f) should lose to Scalar (%.5f) — gather overhead", times[JoinSIMD], times[JoinScalar])
	}
	if times[JoinPrefetch] <= times[JoinScalar] {
		t.Errorf("Prefetch (%.5f) should lose to Scalar (%.5f) when cache resident", times[JoinPrefetch], times[JoinScalar])
	}
}

func TestPrefetchHelpsOutOfCache(t *testing.T) {
	// Out of cache, prefetching reduces the stall and beats scalar.
	pk := make([]int32, 1<<18)
	pv := make([]int32, 1<<18)
	const nBuild = 1 << 22 // 64 MB table > 20 MB L3
	bk := make([]int32, nBuild)
	for i := range bk {
		bk[i] = int32(i + 1)
	}
	rng := rand.New(rand.NewSource(6))
	for i := range pk {
		pk[i] = int32(rng.Intn(nBuild) + 1)
	}
	ht := BuildHashTable(newClock(), bk, nil, 0.5)
	sc, pf := newClock(), newClock()
	ProbeSum(sc, pk, pv, ht, JoinScalar)
	ProbeSum(pf, pk, pv, ht, JoinPrefetch)
	if pf.Seconds() >= sc.Seconds() {
		t.Errorf("Prefetch (%.5f) should beat Scalar (%.5f) out of cache", pf.Seconds(), sc.Seconds())
	}
}

func TestRadixPartitionStableAndCorrect(t *testing.T) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint32, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = rng.Uint32()
		vals[i] = int32(i)
	}
	for _, r := range []int{3, 8, 11} {
		outK, outV, counts, err := RadixPartition(newClock(), keys, vals, r, 4)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint32((1 << r) - 1)
		var total int64
		for _, c := range counts {
			total += c
		}
		if total != n {
			t.Fatalf("r=%d: counts sum %d", r, total)
		}
		seen := make([]bool, n)
		pos := 0
		for p := uint32(0); p < uint32(1<<r); p++ {
			prev := int32(-1)
			for c := int64(0); c < counts[p]; c++ {
				idx := outV[pos]
				if seen[idx] {
					t.Fatalf("duplicate element %d", idx)
				}
				seen[idx] = true
				if (keys[idx]>>4)&mask != p {
					t.Fatalf("wrong partition for %d", idx)
				}
				if idx <= prev {
					t.Fatalf("r=%d: stability violated in partition %d", r, p)
				}
				prev = idx
				if outK[pos] != keys[idx] {
					t.Fatalf("key/val pairing broken")
				}
				pos++
			}
		}
	}
}

func TestRadixPartitionRejectsBadBits(t *testing.T) {
	if _, _, _, err := RadixPartition(newClock(), []uint32{1}, nil, 0, 0); err == nil {
		t.Error("r=0 accepted")
	}
	if _, _, _, err := RadixPartition(newClock(), []uint32{1}, nil, 17, 0); err == nil {
		t.Error("r=17 accepted")
	}
}

func TestRadixShuffleDeterioratesBeyond8Bits(t *testing.T) {
	// Figure 14b: CPU shuffle is bandwidth bound to 8 bits, then the
	// write-combining buffers outgrow L1.
	const n = 1 << 20
	keys := make([]uint32, n)
	vals := make([]int32, n)
	rng := rand.New(rand.NewSource(8))
	for i := range keys {
		keys[i] = rng.Uint32()
	}
	shuffleTime := func(r int) float64 {
		clk := newClock()
		_, _, _, err := RadixPartition(clk, keys, vals, r, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Subtract the histogram pass: passes[0] is histogram, [1] shuffle.
		return clk.Spec().PassTime(&clk.Passes()[1])
	}
	t8, t10 := shuffleTime(8), shuffleTime(10)
	if t10 <= t8*1.1 {
		t.Errorf("shuffle at r=10 (%.5f) should clearly exceed r=8 (%.5f)", t10, t8)
	}
	t4 := shuffleTime(4)
	if math.Abs(t4-t8)/t8 > 0.05 {
		t.Errorf("shuffle should be flat up to 8 bits: r=4 %.5f vs r=8 %.5f", t4, t8)
	}
}

func TestLSBRadixSort(t *testing.T) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint32, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = rng.Uint32()
		vals[i] = int32(i)
	}
	clk := newClock()
	outK, outV := LSBRadixSort(clk, keys, vals)
	for i := 1; i < n; i++ {
		if outK[i-1] > outK[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	seen := make([]bool, n)
	for i, idx := range outV {
		if seen[idx] {
			t.Fatalf("duplicate payload %d", idx)
		}
		seen[idx] = true
		if keys[idx] != outK[i] {
			t.Fatal("pairing broken")
		}
	}
	// 4 passes x 2 charged passes each.
	if len(clk.Passes()) != 8 {
		t.Errorf("LSB sort charged %d passes, want 8", len(clk.Passes()))
	}
}

func TestLSBRadixSortProperty(t *testing.T) {
	f := func(keys []uint32) bool {
		outK, _ := LSBRadixSort(newClock(), keys, nil)
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if outK[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMispredictsModel(t *testing.T) {
	if mispredicts(1000, 0) != 0 || mispredicts(1000, 1) != 0 {
		t.Error("no mispredictions at the extremes")
	}
	if got := mispredicts(1000, 0.5); got != 500 {
		t.Errorf("mispredicts(1000, 0.5) = %d, want 500", got)
	}
}

func TestVariantStrings(t *testing.T) {
	for _, s := range []string{
		SelectIf.String(), SelectPred.String(), SelectSIMDPred.String(),
		JoinScalar.String(), JoinSIMD.String(), JoinPrefetch.String(),
		ProjectNaive.String(), ProjectOpt.String(),
	} {
		if s == "" || s == "unknown" {
			t.Errorf("bad variant string %q", s)
		}
	}
	if SelectVariant(99).String() != "unknown" || JoinVariant(99).String() != "unknown" {
		t.Error("out-of-range variants should stringify as unknown")
	}
}

func TestParallelForCoversRange(t *testing.T) {
	seen := make([]int32, 10_000)
	parallelFor(len(seen), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	parallelFor(0, func(_, _, _ int) { t.Error("fn called for n=0") })
}
