package cpu

import (
	"crystal/internal/crystal"
	"crystal/internal/device"
)

// RadixJoin implements the partitioned hash join discussed in Section 4.3:
// both relations are radix partitioned into cache-sized chunks, then each
// pair of corresponding partitions is joined with a small, cache-resident
// hash table. It is faster than the no-partitioning join for a single large
// join, but it must see the whole input before starting, so it cannot be
// pipelined into multi-join plans — which is why the paper's SSB engines
// stay with the no-partitioning join.
//
// It computes SUM(build.v + probe.v) over matches, like the Q4
// microbenchmark, and returns the checksum.
func RadixJoin(clk *device.Clock, buildKeys, buildVals, probeKeys, probeVals []int32, radixBits int) int64 {
	if radixBits <= 0 {
		radixBits = 8
	}
	numPart := 1 << radixBits

	bk, bv, bCounts := partitionInt32(clk, buildKeys, buildVals, radixBits)
	pk, pv, pCounts := partitionInt32(clk, probeKeys, probeVals, radixBits)

	var sum int64
	var bOff, pOff int64
	var probePass device.Pass
	probePass.Label = "radix join per-partition probe"
	for p := 0; p < numPart; p++ {
		bn, pn := bCounts[p], pCounts[p]
		if bn > 0 && pn > 0 {
			ht := crystal.NewHashTable(int(bn), 0.5, true)
			for i := bOff; i < bOff+bn; i++ {
				ht.Insert(bk[i], bv[i])
			}
			for i := pOff; i < pOff+pn; i++ {
				if v, ok := ht.Get(pk[i]); ok {
					sum += int64(pv[i]) + int64(v)
				}
			}
			// Per-partition tables are cache resident by construction; the
			// probes never leave cache (the whole point of radix joins).
			probePass.AddProbes(device.ProbeSet{Count: bn + pn, StructBytes: ht.Bytes()})
		}
		bOff += bn
		pOff += pn
	}
	probePass.BytesRead = int64(len(buildKeys))*8 + int64(len(probeKeys))*8
	probePass.ComputeCycles = cyclesProbeScalar * float64(len(buildKeys)+len(probeKeys))
	clk.Charge(&probePass)
	return sum
}

// partitionInt32 radix partitions an (int32 key, int32 val) pair on the low
// radixBits of the key, charging one histogram and one shuffle pass.
func partitionInt32(clk *device.Clock, keys, vals []int32, radixBits int) ([]int32, []int32, []int64) {
	uk := make([]uint32, len(keys))
	for i, k := range keys {
		uk[i] = uint32(k)
	}
	outK, outV, counts, err := RadixPartition(clk, uk, vals, radixBits, 0)
	if err != nil {
		panic(err) // radixBits validated by caller
	}
	sk := make([]int32, len(outK))
	for i, k := range outK {
		sk[i] = int32(k)
	}
	return sk, outV, counts
}
