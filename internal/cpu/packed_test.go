package cpu

import (
	"math/rand"
	"testing"

	"crystal/internal/pack"
)

func TestCPUSelectPackedMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	vals := make([]int32, 200_000)
	for i := range vals {
		vals[i] = rng.Int31n(1024)
	}
	col := pack.New(vals)
	pred := func(v int32) bool { return v >= 700 }

	plain := Select(newClock(), vals, pred, SelectSIMDPred)
	packed := SelectPacked(newClock(), col, pred)
	if len(plain) != len(packed) {
		t.Fatalf("packed: %d rows, want %d", len(packed), len(plain))
	}
	for i := range plain {
		if plain[i] != packed[i] {
			t.Fatalf("row %d differs (stability)", i)
		}
	}
}

func TestCPUPackedScanCanLose(t *testing.T) {
	// Section 5.5 asymmetry: with a low compute-to-bandwidth ratio, the
	// unpack arithmetic costs the CPU more than the traffic it saves.
	const n = 1 << 21
	vals := make([]int32, n)
	rng := rand.New(rand.NewSource(42))
	for i := range vals {
		vals[i] = rng.Int31n(1 << 20) // 20-bit width: only 1.6x compression
	}
	col := pack.New(vals)
	pred := func(v int32) bool { return v < 1000 }

	plainClk, packedClk := newClock(), newClock()
	Select(plainClk, vals, pred, SelectSIMDPred)
	SelectPacked(packedClk, col, pred)
	if packedClk.Seconds() <= plainClk.Seconds() {
		t.Errorf("20-bit packed scan (%.6f) should lose to plain (%.6f) on the CPU",
			packedClk.Seconds(), plainClk.Seconds())
	}
}

func TestCPUPackedEmptyColumn(t *testing.T) {
	col := pack.New(nil)
	if got := SelectPacked(newClock(), col, func(int32) bool { return true }); len(got) != 0 {
		t.Error("empty packed select should return nothing")
	}
}
