package cpu

import (
	"sync"

	"crystal/internal/device"
	"crystal/internal/pack"
)

// SelectPacked runs the selection scan over a bit-packed column (the
// Section 5.5 compression extension). The CPU reads width/32 of the plain
// traffic but pays the unpack arithmetic per element; with only ~1 Tflop
// against 53 GBps this can tip the scan from bandwidth bound to compute
// bound — the asymmetry the paper predicts makes packing more attractive
// on GPUs than CPUs. The full-query path charges the same asymmetry
// through queries.RunOptions.Packed; this operator is its isolated
// kernel-level form (BenchmarkAblation_PackedScan).
func SelectPacked(clk *device.Clock, col *pack.Column, pred func(int32) bool) []int32 {
	n := col.Len()
	numChunks := (n + VectorSize - 1) / VectorSize
	outs := make([][]int32, numChunks)
	var wg sync.WaitGroup
	workers := 8
	chunkPer := (numChunks + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunkPer
		hi := lo + chunkPer
		if hi > numChunks {
			hi = numChunks
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			buf := make([]int32, VectorSize)
			for c := lo; c < hi; c++ {
				s, e := c*VectorSize, (c+1)*VectorSize
				if e > n {
					e = n
				}
				m := col.UnpackRange(s, e, buf)
				var out []int32
				for i := 0; i < m; i++ {
					if pred(buf[i]) {
						out = append(out, buf[i])
					}
				}
				outs[c] = out
			}
		}(lo, hi)
	}
	wg.Wait()

	var res []int32
	for _, o := range outs {
		res = append(res, o...)
	}
	pass := &device.Pass{
		Label:        "cpu packed select",
		BytesRead:    (int64(n)*int64(col.Width()) + 63) / 64 * 8,
		BytesWritten: int64(len(res)) * 4,
		// Unpack + predicate, vectorized where the width allows.
		ComputeCycles: (pack.UnpackCyclesPerElem + cyclesSelectSIMD) * float64(n),
		AtomicOps:     int64(numChunks),
	}
	clk.Charge(pass)
	return res
}
