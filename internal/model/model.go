// Package model implements the paper's closed-form cost models: the
// bandwidth-saturation formulas of Sections 4.1-4.4 (project, select, hash
// join, radix partition, sort), the Section 3.1 coprocessor lower bound,
// and the Section 5.3 full-query model for q2.1. The benchmark harness
// prints these next to the measured (simulated) times, exactly as the
// paper's figures plot "Model" lines next to measurements.
package model

import "crystal/internal/device"

// Project is the Section 4.1 model for Q1/Q2: two 4-byte input columns are
// read and one is written; runtime = 2*4N/Br + 4N/Bw.
func Project(dev *device.Spec, n int64) float64 {
	return float64(2*4*n)/dev.ReadBandwidth + float64(4*n)/dev.WriteBandwidth
}

// Select is the Section 4.2 model: the whole input column is read and the
// matching entries are written; runtime = 4N/Br + 4*sigma*N/Bw.
func Select(dev *device.Spec, n int64, sigma float64) float64 {
	return float64(4*n)/dev.ReadBandwidth + 4*sigma*float64(n)/dev.WriteBandwidth
}

// JoinProbe is the Section 4.3 model for the probe phase of the
// no-partitioning hash join with |P| probe tuples (key+payload columns) and
// a hash table of htBytes.
//
// If the table fits in a cache level K, runtime is the maximum of the
// streaming term 4*2*|P|/Br and the cache-probe term (1-pi_{K-1})*|P|*C/B_K;
// beyond the last level the DRAM-probe term (1-pi)*|P|*C/Br adds to the
// streaming term instead.
func JoinProbe(dev *device.Spec, probes int64, htBytes int64) float64 {
	stream := float64(4*2*probes) / dev.ReadBandwidth
	llc := dev.LastLevelCache()
	if htBytes <= llc.Size {
		// Served by the deepest cache level that holds it; hits in smaller
		// levels are discounted per the (1 - pi_{K-1}) factor.
		var t float64
		covered := 0.0
		for _, c := range dev.Caches {
			frac := 1.0
			if htBytes > 0 {
				frac = float64(c.Size) / float64(htBytes)
				if frac > 1 {
					frac = 1
				}
			}
			hit := frac - covered
			if hit < 0 {
				hit = 0
			}
			covered = frac
			if c.Bandwidth > 0 && hit > 0 {
				t += float64(probes) * hit * float64(c.ProbeGranularity) / c.Bandwidth
			}
		}
		if t > stream {
			return t
		}
		return stream
	}
	pi := float64(llc.Size) / float64(htBytes)
	dram := (1 - pi) * float64(probes) * float64(dev.LineSize) / dev.ReadBandwidth
	return stream + dram
}

// RadixHistogram is the Section 4.4 histogram-phase model: one streaming
// read of the key column.
func RadixHistogram(dev *device.Spec, n int64) float64 {
	return float64(4*n) / dev.ReadBandwidth
}

// RadixShuffle is the Section 4.4 shuffle-phase model: key and payload
// columns are read and the partitioned columns written.
func RadixShuffle(dev *device.Spec, n int64) float64 {
	return float64(2*4*n)/dev.ReadBandwidth + float64(2*4*n)/dev.WriteBandwidth
}

// Sort models the 4-pass radix sort of Section 4.4 (LSB with 8-bit stable
// passes on the CPU, MSB with 8-bit unstable passes on the GPU): four
// histogram+shuffle pass pairs.
func Sort(dev *device.Spec, n int64) float64 {
	return 4 * (RadixHistogram(dev, n) + RadixShuffle(dev, n))
}

// CoprocessorBound is the Section 3.1 lower bound for the coprocessor
// architecture: shipping cols 4-byte fact columns of |L| rows over PCIe.
func CoprocessorBound(cols int, rows int64) float64 {
	return device.TransferTime(int64(cols) * 4 * rows)
}

// Q21Params carries the Section 5.3 case-study parameters.
type Q21Params struct {
	L      int64   // lineorder cardinality (120M at SF 20)
	S      int64   // supplier cardinality
	D      int64   // date cardinality
	PartHT int64   // part hash-table bytes (8 MB at SF 20)
	Sigma1 float64 // supplier join selectivity (1/5)
	Sigma2 float64 // part join selectivity (1/25)
}

// Query21 is the Section 5.3 model for SSB q2.1: r1 (fact column access) +
// r2 (hash-table probes) + r3 (result writes). On the GPU the part table
// only partially fits in L2 (pi = available L2 / HT size); on the CPU all
// three tables fit in L3, so r2 only reads the tables themselves once.
func Query21(dev *device.Spec, p Q21Params) float64 {
	c := float64(dev.LineSize)
	br, bw := dev.ReadBandwidth, dev.WriteBandwidth
	fl := float64(p.L)

	colLines := 4 * fl / c
	linesFK2 := minf(colLines, fl*p.Sigma1)
	linesRest := minf(colLines, fl*p.Sigma1*p.Sigma2)
	r1 := (colLines + linesFK2 + 2*linesRest) * c / br

	var r2 float64
	if dev.IsGPU() {
		// Supplier and date tables stay in L2; the part table exceeds it.
		avail := float64(dev.LastLevelCache().Size) - float64(2*4*p.S+2*4*p.D)
		pi := avail / float64(p.PartHT)
		if pi > 1 {
			pi = 1
		}
		if pi < 0 {
			pi = 0
		}
		r2 = (float64(2*p.S) + float64(2*p.D) + (1-pi)*fl*p.Sigma1) * c / br
	} else {
		r2 = (float64(2*p.S) + float64(2*p.D) + 2*float64(p.PartHT)/c) * c / br
	}

	out := fl * p.Sigma1 * p.Sigma2
	r3 := out*c/br + out*c/bw
	return r1 + r2 + r3
}

// SF20 returns the Section 5.3 parameters at scale factor 20 (the paper's
// evaluation point): |L|=120M, |S|=40k, |D|=2.5k, part HT 8 MB, selectivity
// 1/5 and 1/25.
func SF20() Q21Params {
	return Q21Params{
		L:      120_000_000,
		S:      40_000,
		D:      2_557,
		PartHT: 8 << 20,
		Sigma1: 1.0 / 5,
		Sigma2: 1.0 / 25,
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
