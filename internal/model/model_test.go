package model

import (
	"math"
	"testing"

	"crystal/internal/device"
)

func TestProjectModelMatchesPaperNumbers(t *testing.T) {
	// Figure 10 model lines at N=2^28: GPU ~3.7 ms, CPU-Opt ~60 ms.
	n := int64(1) << 28
	gpu := Project(device.V100(), n) * 1e3
	cpu := Project(device.I76900(), n) * 1e3
	if gpu < 3 || gpu > 4.5 {
		t.Errorf("GPU project model = %.2f ms, paper ~3.9", gpu)
	}
	if cpu < 55 || cpu > 70 {
		t.Errorf("CPU project model = %.2f ms, paper ~64", cpu)
	}
	// Ratio near the bandwidth ratio 16.2.
	if r := cpu / gpu; r < 15 || r > 18 {
		t.Errorf("project ratio = %.1f", r)
	}
}

func TestSelectModelShape(t *testing.T) {
	n := int64(1) << 28
	dev := device.V100()
	if Select(dev, n, 0) >= Select(dev, n, 0.5) || Select(dev, n, 0.5) >= Select(dev, n, 1) {
		t.Error("select model should grow with selectivity")
	}
	// At sigma=0.5 and N=2^28 the GPU model is ~1.8 ms (Section 3.3's
	// measured 2.1 ms includes atomics).
	got := Select(dev, n, 0.5) * 1e3
	if got < 1.5 || got > 2.5 {
		t.Errorf("GPU select model = %.2f ms", got)
	}
}

func TestJoinProbeRegimes(t *testing.T) {
	gpu, cpu := device.V100(), device.I76900()
	probes := int64(256) << 20
	// Cache resident on both: ratio ~bandwidth-bound regimes of Section 4.3.
	small := JoinProbe(cpu, probes, 8<<10) / JoinProbe(gpu, probes, 8<<10)
	if small < 12 || small > 20 {
		t.Errorf("tiny-table ratio = %.1f, want ~16", small)
	}
	mid := JoinProbe(cpu, probes, 2<<20) / JoinProbe(gpu, probes, 2<<20)
	if mid < 10 || mid > 18 {
		t.Errorf("1-4MB ratio = %.1f, want ~14.5", mid)
	}
	big := JoinProbe(cpu, probes, 512<<20) / JoinProbe(gpu, probes, 512<<20)
	if big < 6 || big > 11 {
		t.Errorf("out-of-cache ratio = %.1f, want ~8.1 (model)", big)
	}
	// Monotone in hash-table size.
	prev := 0.0
	for h := int64(8 << 10); h <= 1<<30; h <<= 1 {
		v := JoinProbe(gpu, probes, h)
		if v+1e-12 < prev {
			t.Fatalf("GPU join model decreased at %d", h)
		}
		prev = v
	}
}

func TestRadixAndSortModels(t *testing.T) {
	n := int64(1) << 28
	cpu, gpu := device.I76900(), device.V100()
	// Section 4.4: sorting 2^28 pairs takes 464 ms on CPU, 27 ms on GPU.
	cpuMS := Sort(cpu, n) * 1e3
	gpuMS := Sort(gpu, n) * 1e3
	if cpuMS < 350 || cpuMS > 500 {
		t.Errorf("CPU sort model = %.0f ms, paper measures 464", cpuMS)
	}
	if gpuMS < 20 || gpuMS > 32 {
		t.Errorf("GPU sort model = %.1f ms, paper measures 27", gpuMS)
	}
	if r := cpuMS / gpuMS; r < 14 || r > 19 {
		t.Errorf("sort ratio = %.1f, paper 17.13", r)
	}
	if RadixHistogram(cpu, n) >= RadixShuffle(cpu, n) {
		t.Error("histogram pass should be cheaper than shuffle pass")
	}
}

func TestCoprocessorBound(t *testing.T) {
	// Section 3.1: q1.1 ships 4 columns of 120M rows; 16L/Bp ~ 150 ms.
	got := CoprocessorBound(4, 120_000_000) * 1e3
	if got < 140 || got > 160 {
		t.Errorf("coprocessor bound = %.0f ms, want ~150", got)
	}
}

func TestQuery21PaperNumbers(t *testing.T) {
	// Section 5.3: expected runtimes ~47 ms (CPU) and ~3.7 ms (GPU).
	p := SF20()
	gpu := Query21(device.V100(), p) * 1e3
	cpu := Query21(device.I76900(), p) * 1e3
	if gpu < 2.5 || gpu > 5 {
		t.Errorf("GPU q2.1 model = %.2f ms, paper derives 3.7", gpu)
	}
	// Plugging Table 2 constants into the printed equations yields ~23 ms;
	// the paper quotes 47 ms (it appears not to apply the min() line
	// skipping to r1). Either way the model sits well below the measured
	// 125 ms — which is the section's point.
	if cpu < 18 || cpu > 60 {
		t.Errorf("CPU q2.1 model = %.1f ms, paper derives 47", cpu)
	}
}

func TestQuery21PiClamping(t *testing.T) {
	p := SF20()
	p.PartHT = 1 << 10 // tiny: pi clamps to 1
	small := Query21(device.V100(), p)
	p.PartHT = 1 << 34 // huge: pi clamps to 0
	big := Query21(device.V100(), p)
	if !(small < big) || math.IsNaN(small) || math.IsNaN(big) {
		t.Errorf("pi clamping broken: %f vs %f", small, big)
	}
}
