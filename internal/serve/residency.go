package serve

import (
	"container/list"
	"strconv"
	"sync"
)

// deviceCache is the simulated GPU's device-memory column cache: a
// capacity-bounded LRU of packed fact columns pinned in device memory, so
// repeated coprocessor requests skip their PCIe transfer entirely. Capacity
// is the device's memory size (device.Spec.MemoryBytes) unless overridden;
// entries are keyed by dataset generation plus column name, so a dataset
// swap can never serve stale residency (SetDataset additionally purges, as
// a real deployment would free device memory).
//
// Acquire implements queries.Residency: a hit means the column is already
// resident (the coprocessor ships nothing); a miss admits the column,
// because the transfer the engine then charges is exactly what populates
// device memory. Columns larger than the whole capacity are never admitted.
type deviceCache struct {
	mu    sync.Mutex
	cap   int64
	used  int64
	order *list.List // front = most recently used; values are *deviceEntry
	items map[string]*list.Element
	// gen is the dataset generation admissions are accepted for; it only
	// ever advances (concurrent SetDataset purges may apply out of order).
	// A request that snapshotted an older generation while a SetDataset
	// raced past it can still miss (and pay its transfer) but is refused
	// admission — its column belongs to a dataset no future request will
	// ever look up, so admitting it would pin dead bytes against the
	// capacity.
	gen uint64

	hits      int64
	misses    int64
	evictions int64
}

type deviceEntry struct {
	key   string
	bytes int64
}

func newDeviceCache(capacity int64, gen uint64) *deviceCache {
	return &deviceCache{
		cap:   capacity,
		gen:   gen,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// acquire looks up the column under the request's dataset generation,
// admitting it (and evicting least-recently-used columns to make room) on
// a miss. hit reports the column was already resident; admitted reports
// whether a missing column was accepted — misses from a stale generation
// or larger than the whole capacity are refused, and the engine falls back
// to an ordinary cold transfer.
func (c *deviceCache) acquire(gen uint64, col string, bytes int64) (hit, admitted bool) {
	key := cacheKey(strconv.FormatUint(gen, 10), col)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return true, true
	}
	c.misses++
	if gen != c.gen {
		return false, false // in-flight request from a purged generation
	}
	if bytes > c.cap {
		return false, false // larger than the whole device: never resident
	}
	for c.used+bytes > c.cap {
		oldest := c.order.Back()
		e := oldest.Value.(*deviceEntry)
		c.order.Remove(oldest)
		delete(c.items, e.key)
		c.used -= e.bytes
		c.evictions++
	}
	c.items[key] = c.order.PushFront(&deviceEntry{key: key, bytes: bytes})
	c.used += bytes
	return false, true
}

// purge frees every pinned column and advances to the given generation
// (dataset swap): admissions from older generations are refused from here
// on. The generation is monotone — a purge for an older generation that
// lost the race to a newer one is a no-op, so the cache can never regress
// to refusing current-generation admissions.
func (c *deviceCache) purge(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen < c.gen {
		return
	}
	c.order.Init()
	clear(c.items)
	c.used = 0
	c.gen = gen
}

// deviceCacheStats is a point-in-time snapshot of the cache counters.
type deviceCacheStats struct {
	capacity, used          int64
	cols                    int
	hits, misses, evictions int64
}

func (c *deviceCache) snapshot() deviceCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return deviceCacheStats{
		capacity:  c.cap,
		used:      c.used,
		cols:      len(c.items),
		hits:      c.hits,
		misses:    c.misses,
		evictions: c.evictions,
	}
}

// boundResidency binds the device cache to one dataset generation; it is
// the queries.Residency the coprocessor engine consults.
type boundResidency struct {
	cache *deviceCache
	gen   uint64
}

// Acquire implements queries.Residency.
func (r boundResidency) Acquire(col string, bytes int64) (hit, admitted bool) {
	return r.cache.acquire(r.gen, col, bytes)
}

// shapedResidency additionally scopes lookups to one fleet shape: the
// spilled byte range of a column depends on the shard map (device count
// and partition count), so a column pinned for one shape must never
// satisfy another shape's lookup — a hit would elide shipping bytes that
// were never resident.
type shapedResidency struct {
	cache *deviceCache
	gen   uint64
	shape string
}

// Acquire implements queries.Residency.
func (r shapedResidency) Acquire(col string, bytes int64) (hit, admitted bool) {
	return r.cache.acquire(r.gen, cacheKey(r.shape, col), bytes)
}
