package serve

import (
	"io"

	"crystal/internal/trace"
)

// WriteMetrics renders the service's counters, latency histograms and
// device-cache gauges as Prometheus text exposition (the GET /metrics
// surface). Metric names follow one scheme: an ssb_ prefix, _total for
// counters, _bytes/_seconds/_columns units, and the latency histograms
// labeled by (engine, placement) — the same grid Stats.Latency reports
// percentiles for. Everything renders from one single-lock snapshot of
// the stats accumulator, so counts and sums are mutually consistent.
func (s *Service) WriteMetrics(w io.Writer) error {
	st := s.snapshotStats()
	e := trace.NewExposition(w)

	cells := sortedLatency(st.latency)
	reqSamples := make([]trace.Sample, 0, len(cells))
	wallHists := make([]trace.HistSample, 0, len(cells))
	queueHists := make([]trace.HistSample, 0, len(cells))
	simHists := make([]trace.HistSample, 0, len(cells))
	for _, cell := range cells {
		labels := []string{"engine", cell.engine, "placement", cell.placement}
		reqSamples = append(reqSamples, trace.Sample{Labels: labels, Value: float64(cell.acc.requests)})
		wallHists = append(wallHists, trace.HistSample{Labels: labels, Hist: &cell.acc.wall})
		queueHists = append(queueHists, trace.HistSample{Labels: labels, Hist: &cell.acc.queue})
		simHists = append(simHists, trace.HistSample{Labels: labels, Hist: &cell.acc.sim})
	}
	e.Counter("ssb_requests_total", "Requests served, by engine and placement.", reqSamples)
	e.Counter("ssb_errors_total", "Requests rejected or failed.",
		[]trace.Sample{{Value: float64(st.errors)}})
	e.Counter("ssb_shed_total",
		"Submissions refused or evicted with ErrOverloaded under load shedding.",
		[]trace.Sample{{Value: float64(st.shed)}})
	e.Counter("ssb_deadline_expired_total",
		"Jobs dropped at worker pickup because their deadline elapsed in the queue.",
		[]trace.Sample{{Value: float64(st.expired)}})
	e.Counter("ssb_coalesced_total",
		"Responses that shared a concurrent identical request's execution (single-flight).",
		[]trace.Sample{{Value: float64(st.coalesced)}})
	e.Counter("ssb_batches_total",
		"Shared-scan batch executions formed at worker pickup (Options.MaxBatch).",
		[]trace.Sample{{Value: float64(st.batches)}})
	e.Counter("ssb_batched_requests_total",
		"Responses that rode a shared-scan batch instead of a solo execution.",
		[]trace.Sample{{Value: float64(st.batchedRequests)}})
	e.Counter("ssb_batch_scan_bytes_total",
		"Batch scan traffic, by accounting: shared (each line streamed once) vs solo (what the members' solo scans would have streamed).",
		[]trace.Sample{
			{Labels: []string{"accounting", "shared"}, Value: float64(st.batchSharedBytes)},
			{Labels: []string{"accounting", "solo"}, Value: float64(st.batchSoloBytes)},
		})
	e.Histogram("ssb_request_wall_seconds",
		"Execution wall clock per request (queue wait excluded), by engine and placement.", wallHists)
	e.Histogram("ssb_queue_wait_seconds",
		"Time requests sat in the admission queue before a worker picked them up.", queueHists)
	e.Histogram("ssb_sim_seconds",
		"Simulated device seconds per request under the bandwidth model.", simHists)

	e.Counter("ssb_plan_cache_hits_total", "Compiled-plan cache hits.",
		[]trace.Sample{{Value: float64(st.planHits)}})
	e.Counter("ssb_plan_cache_misses_total", "Compiled-plan cache misses.",
		[]trace.Sample{{Value: float64(st.planMisses)}})
	e.Counter("ssb_result_cache_hits_total", "Result cache hits.",
		[]trace.Sample{{Value: float64(st.resultHits)}})
	e.Counter("ssb_result_cache_misses_total", "Result cache misses.",
		[]trace.Sample{{Value: float64(st.resultMisses)}})

	e.Counter("ssb_transfer_bytes_total",
		"Interconnect traffic shipped, by path: coprocessor PCIe, fleet spill, placement-routed shipment.",
		[]trace.Sample{
			{Labels: []string{"path", "coproc"}, Value: float64(st.transferBytes)},
			{Labels: []string{"path", "fleet"}, Value: float64(st.fleetSpillBytes)},
			{Labels: []string{"path", "hybrid"}, Value: float64(st.hybridShipBytes)},
		})
	e.Counter("ssb_merge_bytes_total",
		"Partial-aggregate merge traffic that crossed the interconnect, by path.",
		[]trace.Sample{
			{Labels: []string{"path", "fleet"}, Value: float64(st.fleetMergeBytes)},
			{Labels: []string{"path", "hybrid"}, Value: float64(st.hybridMergeBytes)},
		})

	s.mu.RLock()
	workers := float64(s.opts.Workers)
	s.mu.RUnlock()
	s.cacheMu.Lock()
	cachedPlans, cachedResults := float64(s.plans.len()), float64(s.results.len())
	s.cacheMu.Unlock()
	e.Gauge("ssb_workers", "Execution pool size.", []trace.Sample{{Value: workers}})
	e.Gauge("ssb_queue_pending", "Requests waiting in the admission queue.",
		[]trace.Sample{{Value: float64(s.queue.len())}})
	e.Gauge("ssb_cached_plans", "Compiled plans resident in the plan cache.",
		[]trace.Sample{{Value: cachedPlans}})
	e.Gauge("ssb_cached_results", "Responses resident in the result cache.",
		[]trace.Sample{{Value: cachedResults}})

	if s.devCache != nil {
		dc := s.devCache.snapshot()
		e.Gauge("ssb_device_cache_capacity_bytes",
			"Simulated device memory dedicated to pinning packed columns.",
			[]trace.Sample{{Value: float64(dc.capacity)}})
		e.Gauge("ssb_device_cache_used_bytes", "Bytes of packed columns currently resident.",
			[]trace.Sample{{Value: float64(dc.used)}})
		e.Gauge("ssb_device_cache_columns", "Packed columns currently resident.",
			[]trace.Sample{{Value: float64(dc.cols)}})
		e.Counter("ssb_residency_hits_total",
			"Column transfers elided because the column was device-resident.",
			[]trace.Sample{{Value: float64(dc.hits)}})
		e.Counter("ssb_residency_misses_total", "Residency lookups that had to ship the column.",
			[]trace.Sample{{Value: float64(dc.misses)}})
		e.Counter("ssb_residency_evictions_total", "Columns evicted from device residency.",
			[]trace.Sample{{Value: float64(dc.evictions)}})
	}
	return e.Err()
}
