package serve

import "container/list"

// lru is a small mutex-free LRU map (callers synchronize): string keys,
// opaque values, least-recently-used eviction at a fixed capacity. Both the
// plan cache and the result cache are tiny (13 queries x 6 engines x a few
// dataset versions), so a plain list+map is plenty.
type lru struct {
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most recently used.
func (c *lru) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes key, evicting the LRU entry when over capacity.
func (c *lru) put(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// purge drops every entry.
func (c *lru) purge() {
	c.order.Init()
	clear(c.items)
}

// len returns the number of cached entries.
func (c *lru) len() int { return c.order.Len() }
