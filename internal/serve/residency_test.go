package serve

import (
	"context"
	"testing"

	"crystal/internal/queries"
	"crystal/internal/ssb"
)

// residencyDS is shared by the residency tests; packing it repeatedly per
// service is the point (each service builds its own encoding lazily).
var residencyDS = ssb.GenerateRows(100_000)

// TestPackedRequestsRowIdentical: a packed request returns exactly the rows
// of the plain request on every engine, and is marked packed.
func TestPackedRequestsRowIdentical(t *testing.T) {
	s := New(residencyDS, "v1", Options{Workers: 2})
	defer s.Close()
	for _, e := range queries.Engines() {
		plain, err := s.Do(context.Background(), Request{QueryID: "q2.1", Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		packed, err := s.Do(context.Background(), Request{QueryID: "q2.1", Engine: e, Packed: true})
		if err != nil {
			t.Fatal(err)
		}
		if !packed.Result.Equal(plain.Result) {
			t.Errorf("%s: packed rows differ from plain", e)
		}
		if !packed.Packed || plain.Packed {
			t.Errorf("%s: packed marker wrong: packed=%v plain=%v", e, packed.Packed, plain.Packed)
		}
	}
}

// TestPackedResultCacheSeparation: packed and plain responses for the same
// query/engine must come from distinct result-cache entries — their
// simulated seconds differ, and replaying one for the other would corrupt
// served latencies.
func TestPackedResultCacheSeparation(t *testing.T) {
	s := New(residencyDS, "v1", Options{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	plain, _ := s.Do(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU})
	packed, _ := s.Do(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU, Packed: true})
	if plain.SimSeconds == packed.SimSeconds {
		t.Fatal("packed and plain CPU runs report identical seconds; the asymmetry is lost")
	}
	again, _ := s.Do(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU, Packed: true})
	if !again.ResultCached {
		t.Error("repeated packed request missed the result cache")
	}
	if again.SimSeconds != packed.SimSeconds {
		t.Error("cached packed seconds drifted")
	}
}

// TestResidencyWarmCoprocessor is the serving-side acceptance check: a
// transfer-bound packed coprocessor request is strictly faster than plain,
// and a warm residency-cache hit is strictly faster still — with the
// savings visible in /stats.
func TestResidencyWarmCoprocessor(t *testing.T) {
	s := New(residencyDS, "v1", Options{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	// NoCache keeps every run executing: residency-dependent coprocessor
	// responses bypass the result cache anyway, but the plain baseline
	// should also be a real execution.
	plain, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCoproc, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCoproc, Packed: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCoproc, Packed: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.SimSeconds >= plain.SimSeconds {
		t.Errorf("packed coprocessor not faster than plain: %.9f >= %.9f", cold.SimSeconds, plain.SimSeconds)
	}
	if warm.SimSeconds >= cold.SimSeconds {
		t.Errorf("warm residency hit not faster than cold: %.9f >= %.9f", warm.SimSeconds, cold.SimSeconds)
	}
	if warm.ResidentCols == 0 || warm.TransferBytes != 0 {
		t.Errorf("warm run: %d resident cols, %d transfer bytes; want all resident, none shipped",
			warm.ResidentCols, warm.TransferBytes)
	}
	if !warm.Result.Equal(plain.Result) {
		t.Error("residency caching changed the rows")
	}
	if warm.ResultCached || cold.ResultCached {
		t.Error("residency-dependent responses must not be served from the result cache")
	}

	st := s.Stats()
	if st.ResidentHits == 0 {
		t.Error("stats report no residency hits after a warm run")
	}
	if st.ResidentMisses == 0 {
		t.Error("stats report no residency misses after a cold run")
	}
	if st.DeviceCacheCols == 0 || st.DeviceCacheUsedBytes == 0 {
		t.Error("stats report an empty device cache after packed coprocessor runs")
	}
	if st.PackedRequests < 2 {
		t.Errorf("stats counted %d packed requests, want >= 2", st.PackedRequests)
	}
}

// TestResidencyEviction: a device cache smaller than the working set must
// evict instead of growing, and a column larger than the whole capacity is
// never admitted.
func TestResidencyEviction(t *testing.T) {
	dc := newDeviceCache(1000, 0)
	if hit, admitted := dc.acquire(0, "a", 600); hit || !admitted {
		t.Fatalf("cold acquire: hit=%v admitted=%v, want miss+admit", hit, admitted)
	}
	if hit, _ := dc.acquire(0, "a", 600); !hit {
		t.Fatal("second acquire of a missed")
	}
	dc.acquire(0, "b", 600) // must evict a
	snap := dc.snapshot()
	if snap.evictions != 1 || snap.used != 600 || snap.cols != 1 {
		t.Errorf("after eviction: %+v", snap)
	}
	if hit, _ := dc.acquire(0, "a", 600); hit {
		t.Error("evicted column still reported resident")
	}
	if hit, admitted := dc.acquire(0, "huge", 5000); hit || admitted {
		t.Error("over-capacity column should be refused outright")
	}
	if got := dc.snapshot(); got.used > 1000 {
		t.Errorf("cache overfilled: %d bytes", got.used)
	}
}

// TestResidencyLRUOrder: touching a column refreshes its recency, so the
// least recently used one is evicted first.
func TestResidencyLRUOrder(t *testing.T) {
	dc := newDeviceCache(1000, 0)
	dc.acquire(0, "a", 400)
	dc.acquire(0, "b", 400)
	dc.acquire(0, "a", 400) // refresh a
	dc.acquire(0, "c", 400) // evicts b, not a
	if hit, _ := dc.acquire(0, "a", 400); !hit {
		t.Error("recently used column was evicted")
	}
	if hit, _ := dc.acquire(0, "b", 400); hit {
		t.Error("least recently used column was not evicted")
	}
}

// TestResidencyStaleGenerationNotAdmitted: a request that snapshotted an
// old generation while a dataset swap raced past it may miss, but must not
// pin its dead column against the capacity of the purged cache — and a
// purge for an older generation that lost the race must not regress the
// cache's generation.
func TestResidencyStaleGenerationNotAdmitted(t *testing.T) {
	dc := newDeviceCache(1000, 1)
	dc.acquire(1, "a", 400)
	dc.purge(2) // SetDataset: purge and advance
	if hit, admitted := dc.acquire(1, "a", 400); hit || admitted {
		t.Error("stale-generation acquire should be refused after purge")
	}
	if snap := dc.snapshot(); snap.cols != 0 || snap.used != 0 {
		t.Errorf("stale generation pinned dead bytes: %+v", snap)
	}
	if hit, admitted := dc.acquire(2, "a", 400); hit || !admitted {
		t.Error("current generation should miss cold and be admitted")
	}
	if snap := dc.snapshot(); snap.cols != 1 || snap.used != 400 {
		t.Errorf("current generation not admitted: %+v", snap)
	}
	// A racing purge for an older generation is a no-op: the generation is
	// monotone and current entries survive.
	dc.purge(1)
	if hit, _ := dc.acquire(2, "a", 400); !hit {
		t.Error("stale purge wiped current-generation residency")
	}
}

// TestResidencyInvalidatedBySwap: SetDataset frees the device cache and the
// packed encoding, so the first packed coprocessor request against the new
// dataset pays a cold transfer again.
func TestResidencyInvalidatedBySwap(t *testing.T) {
	s := New(residencyDS, "v1", Options{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	req := Request{QueryID: "q1.1", Engine: queries.EngineCoproc, Packed: true, NoCache: true}
	cold, _ := s.Do(ctx, req)
	warm, _ := s.Do(ctx, req)
	if warm.ResidentCols == 0 {
		t.Fatal("second run should be warm")
	}
	s.SetDataset("v2", ssb.GenerateRows(100_000))
	after, _ := s.Do(ctx, req)
	if after.ResidentCols != 0 {
		t.Error("dataset swap did not invalidate device residency")
	}
	if after.TransferBytes == 0 {
		t.Error("post-swap run shipped nothing")
	}
	_ = cold
}

// TestResidencyDisabled: a negative DeviceCacheBytes turns residency off —
// every packed coprocessor run pays its full transfer, and the stats stay
// zero.
func TestResidencyDisabled(t *testing.T) {
	s := New(residencyDS, "v1", Options{Workers: 1, DeviceCacheBytes: -1})
	defer s.Close()
	ctx := context.Background()
	req := Request{QueryID: "q1.1", Engine: queries.EngineCoproc, Packed: true, NoCache: true}
	a, _ := s.Do(ctx, req)
	b, _ := s.Do(ctx, req)
	if a.ResidentCols != 0 || b.ResidentCols != 0 {
		t.Error("disabled cache still reported resident columns")
	}
	if a.SimSeconds != b.SimSeconds {
		t.Error("disabled cache: repeated runs should cost the same")
	}
	if st := s.Stats(); st.ResidentHits != 0 || st.ResidentMisses != 0 || st.DeviceCacheCapBytes != 0 {
		t.Error("disabled cache leaked stats")
	}
}
