package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"crystal/internal/queries"
	"crystal/internal/trace"
)

// TestOfferDropsExpiredBeforeShed pins the full-queue expiry fix: a
// deadline-dead job occupying the only queue slot must be dropped (completed
// with ErrExpired) when a live newcomer arrives, admitting the newcomer —
// even when the newcomer's priority is LOWER than the dead job's, the case
// the old shed/evict policy refused outright (eviction requires a strictly
// lower-priority victim, and the dead job's priority was higher).
func TestOfferDropsExpiredBeforeShed(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 1, Shed: true})
	defer s.Close()
	started, release := blockExecutions(s)

	ctx := context.Background()
	blocker, err := s.Submit(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is parked; the queue slot below is the only one

	dead, err := s.Submit(ctx, Request{QueryID: "q1.2", Engine: queries.EngineCPU, Priority: 5, Deadline: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("queueing the doomed job: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // its deadline lapses in the queue

	// Lower priority than the dead job: the eviction carve-out can never
	// admit this — only the expiry drop can.
	live, err := s.Submit(ctx, Request{QueryID: "q1.3", Engine: queries.EngineCPU, Priority: 1})
	if err != nil {
		t.Fatalf("live lower-priority submission should be admitted after the expiry drop, got %v", err)
	}
	// The drop is synchronous with the offer: the dead job's response is
	// already buffered, shaped exactly like a worker-pickup expiry.
	select {
	case resp := <-dead:
		if !errors.Is(resp.Err, ErrExpired) {
			t.Fatalf("dropped job got %v, want ErrExpired", resp.Err)
		}
		if resp.Result != nil {
			t.Error("dropped job carries a result; it must never execute")
		}
		if resp.QueueWait < 5*time.Millisecond {
			t.Errorf("dropped job reports queue wait %v, want >= its 5ms deadline", resp.QueueWait)
		}
	default:
		t.Fatal("expired job's response not buffered at offer time")
	}
	close(release)
	if resp := <-blocker; resp.Err != nil {
		t.Fatalf("blocker failed: %v", resp.Err)
	}
	if resp := <-live; resp.Err != nil {
		t.Fatalf("admitted live request failed: %v", resp.Err)
	}
	st := s.Stats()
	if st.Expired != 1 {
		t.Errorf("stats recorded %d expired, want 1", st.Expired)
	}
	if st.Shed != 0 {
		t.Errorf("stats recorded %d shed, want 0 (the expiry drop made room)", st.Shed)
	}
}

// TestEvictionParityAccounting pins shed-path parity: an evicted victim and
// a refused newcomer must be indistinguishable in error type and accounting
// — both observe the typed ErrOverloaded (through Do, the path ssbserve maps
// to HTTP 429 + Retry-After) and each increments the shed counter exactly
// once. Runs both paths concurrently so -race covers the eviction handoff.
func TestEvictionParityAccounting(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 1, Shed: true})
	defer s.Close()
	started, release := blockExecutions(s)

	ctx := context.Background()
	blocker, err := s.Submit(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// The victim waits synchronously through Do — exactly what an HTTP
	// handler does — so its eviction must surface as a returned
	// ErrOverloaded, not just a channel payload.
	var wg sync.WaitGroup
	var victimErr error
	victimQueued := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(victimQueued)
		_, victimErr = s.Do(ctx, Request{QueryID: "q1.2", Engine: queries.EngineCPU, Priority: 1})
	}()
	<-victimQueued
	// Wait until the victim actually occupies the queue slot.
	for i := 0; s.queue.len() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	// Higher priority evicts the victim; equal priority is refused.
	evictor, err := s.Submit(ctx, Request{QueryID: "q1.3", Engine: queries.EngineCPU, Priority: 2})
	if err != nil {
		t.Fatalf("evicting submission should be admitted, got %v", err)
	}
	_, refusedErr := s.Do(ctx, Request{QueryID: "q2.1", Engine: queries.EngineCPU, Priority: 2})

	wg.Wait()
	if !errors.Is(victimErr, ErrOverloaded) {
		t.Errorf("evicted victim observed %v, want ErrOverloaded", victimErr)
	}
	if !errors.Is(refusedErr, ErrOverloaded) {
		t.Errorf("refused newcomer observed %v, want ErrOverloaded", refusedErr)
	}
	close(release)
	if resp := <-blocker; resp.Err != nil {
		t.Fatalf("blocker failed: %v", resp.Err)
	}
	if resp := <-evictor; resp.Err != nil {
		t.Fatalf("evictor failed: %v", resp.Err)
	}
	st := s.Stats()
	if st.Shed != 2 {
		t.Errorf("stats recorded %d shed, want 2 (eviction and refusal count identically)", st.Shed)
	}
	if st.Errors != 0 {
		t.Errorf("stats recorded %d errors; shed must not be double-counted as errors", st.Errors)
	}
}

// TestServeBatchesCompatibleQueries drives the end-to-end batch path: with
// MaxBatch enabled, compatible requests queued behind a parked worker are
// drained into one shared-scan execution whose members report rows and
// simulated seconds identical to their solo runs, with the Batched
// telemetry, the batch stats counters, the /metrics surface and the
// batch-phase trace all consistent.
func TestServeBatchesCompatibleQueries(t *testing.T) {
	ds := testData()
	s := New(ds, "v1", Options{Workers: 1, QueueDepth: 16, MaxBatch: 8, Trace: true})
	defer s.Close()
	started, release := blockExecutions(s)

	ctx := context.Background()
	blocker, err := s.Submit(ctx, Request{QueryID: "q3.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Three compatible requests (same engine shape, overlapping fact
	// footprints) queue while the worker is parked.
	ids := []string{"q1.1", "q1.2", "q1.3"}
	chans := make([]<-chan Response, len(ids))
	for i, id := range ids {
		chans[i], err = s.Submit(ctx, Request{QueryID: id, Engine: queries.EngineCPU})
		if err != nil {
			t.Fatalf("queueing %s: %v", id, err)
		}
	}
	close(release)
	if resp := <-blocker; resp.Err != nil {
		t.Fatalf("blocker failed: %v", resp.Err)
	}

	// Solo reference: a batching-disabled service over the same dataset.
	solo := New(ds, "v1", Options{Workers: 1})
	defer solo.Close()

	var shareSum, soloSum float64
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("batched %s failed: %v", ids[i], resp.Err)
		}
		if !resp.Batched {
			t.Fatalf("%s: response not batched", ids[i])
		}
		if resp.BatchSize != len(ids) {
			t.Errorf("%s: batch size %d, want %d", ids[i], resp.BatchSize, len(ids))
		}
		ref, err := solo.Do(ctx, Request{QueryID: ids[i], Engine: queries.EngineCPU})
		if err != nil {
			t.Fatalf("solo %s failed: %v", ids[i], err)
		}
		if !resp.Result.Equal(ref.Result) {
			t.Errorf("%s: batched rows differ from solo service", ids[i])
		}
		if resp.SimSeconds != ref.SimSeconds {
			t.Errorf("%s: batched sim %.12f != solo %.12f", ids[i], resp.SimSeconds, ref.SimSeconds)
		}
		if resp.BatchShareSeconds <= 0 || resp.BatchShareSeconds > resp.SimSeconds {
			t.Errorf("%s: share %.12f out of (0, %.12f]", ids[i], resp.BatchShareSeconds, resp.SimSeconds)
		}
		shareSum += resp.BatchShareSeconds
		soloSum += resp.SimSeconds
		if resp.Trace == nil {
			t.Fatalf("%s: no trace", ids[i])
		}
		var batchSpan *trace.Span
		for _, c := range resp.Trace.Root.Children {
			if c.Phase == trace.PhaseBatch {
				batchSpan = c
			}
		}
		if batchSpan == nil {
			t.Fatalf("%s: trace has no batch span", ids[i])
		}
		if err := trace.VerifyBatch(batchSpan); err != nil {
			t.Errorf("%s: batch trace invariant: %v", ids[i], err)
		}
	}
	// The q1.x footprints overlap heavily: the batch must be strictly
	// cheaper than the sum of its members' solo runs.
	if shareSum >= soloSum {
		t.Errorf("batch shares sum %.12f, not strictly under solo sum %.12f", shareSum, soloSum)
	}

	st := s.Stats()
	if st.Batches != 1 {
		t.Errorf("stats recorded %d batches, want 1", st.Batches)
	}
	if st.BatchedRequests != int64(len(ids)) {
		t.Errorf("stats recorded %d batched requests, want %d", st.BatchedRequests, len(ids))
	}
	if st.BatchRate <= 0 {
		t.Error("stats batch rate is zero with batched traffic")
	}
	if st.BatchSharedScanBytes <= 0 || st.BatchSharedScanBytes >= st.BatchSoloScanBytes {
		t.Errorf("batch scan bytes %d not strictly under solo %d", st.BatchSharedScanBytes, st.BatchSoloScanBytes)
	}

	var b strings.Builder
	if err := s.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"ssb_batches_total 1", "ssb_batched_requests_total 3", `ssb_batch_scan_bytes_total{accounting="shared"}`} {
		if !strings.Contains(b.String(), metric) {
			t.Errorf("metrics exposition missing %q", metric)
		}
	}
}

// TestServeBatchDropsExpiredPeers pins the drain-side expiry path: a
// deadline-dead request sitting between compatible peers is completed with
// ErrExpired during batch formation, and the remaining peers still batch.
func TestServeBatchDropsExpiredPeers(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 16, MaxBatch: 8})
	defer s.Close()
	started, release := blockExecutions(s)

	ctx := context.Background()
	blocker, err := s.Submit(ctx, Request{QueryID: "q3.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	leader, err := s.Submit(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := s.Submit(ctx, Request{QueryID: "q1.2", Engine: queries.EngineCPU, Deadline: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := s.Submit(ctx, Request{QueryID: "q1.3", Engine: queries.EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // the doomed peer's deadline lapses
	close(release)

	if resp := <-blocker; resp.Err != nil {
		t.Fatalf("blocker failed: %v", resp.Err)
	}
	if resp := <-doomed; !errors.Is(resp.Err, ErrExpired) {
		t.Fatalf("doomed peer got %v, want ErrExpired", resp.Err)
	}
	for name, ch := range map[string]<-chan Response{"leader": leader, "peer": peer} {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("%s failed: %v", name, resp.Err)
		}
		if !resp.Batched || resp.BatchSize != 2 {
			t.Errorf("%s: batched=%v size=%d, want a 2-member batch", name, resp.Batched, resp.BatchSize)
		}
	}
	if st := s.Stats(); st.Expired != 1 {
		t.Errorf("stats recorded %d expired, want 1", st.Expired)
	}
}

// TestDrainMatchingRequeue is the white-box queue test: drainMatching visits
// best-first, takes at most max, removes drops, and requeue restores a
// returned job's FIFO position among its priority class.
func TestDrainMatchingRequeue(t *testing.T) {
	q := newJobQueue()
	mk := func(id string, pri int) *job {
		return &job{req: Request{QueryID: id, Priority: pri}, enqueued: time.Now(), done: make(chan Response, 1)}
	}
	jobs := []*job{mk("a", 0), mk("b", 2), mk("c", 0), mk("d", 2), mk("e", 0)}
	for _, j := range jobs {
		q.push(j)
	}
	// Take the two priority-2 jobs (visited first), drop "c", keep the rest.
	taken, dropped := q.drainMatching(8, func(j *job) int {
		switch j.req.QueryID {
		case "b", "d":
			return drainTake
		case "c":
			return drainDrop
		default:
			return drainKeep
		}
	})
	if len(taken) != 2 || taken[0].req.QueryID != "b" || taken[1].req.QueryID != "d" {
		t.Fatalf("taken = %v, want [b d] in best-first order", ids(taken))
	}
	if len(dropped) != 1 || dropped[0].req.QueryID != "c" {
		t.Fatalf("dropped = %v, want [c]", ids(dropped))
	}
	// Put "b" back: it outranks every remaining job and pops first again.
	q.requeue([]*job{taken[0]})
	want := []string{"b", "a", "e"}
	for _, w := range want {
		j, ok := q.pop()
		if !ok || j.req.QueryID != w {
			t.Fatalf("pop got %q, want %q", j.req.QueryID, w)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not drained: %d left", q.len())
	}
	// max bounds the take count even when more match.
	for _, j := range jobs {
		q.push(j)
	}
	taken, _ = q.drainMatching(2, func(*job) int { return drainTake })
	if len(taken) != 2 {
		t.Fatalf("drainMatching(2) took %d jobs", len(taken))
	}
}

func ids(jobs []*job) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.req.QueryID
	}
	return out
}

// TestServeBatchPlacements drives the batch path through the scheduler
// placements: auto-routed, explicit hybrid, and device-resident fleet
// shapes all batch, and every member's rows and simulated seconds match a
// batching-disabled service's answer for the same request.
func TestServeBatchPlacements(t *testing.T) {
	ds := testData()
	cases := []struct {
		name string
		req  func(id string) Request
	}{
		{"auto placement", func(id string) Request {
			return Request{QueryID: id, Placement: "auto", Interconnect: "nvlink"}
		}},
		{"hybrid placement", func(id string) Request {
			return Request{QueryID: id, Placement: "hybrid", GPUs: 2, Partitions: 16}
		}},
		{"fleet", func(id string) Request {
			return Request{QueryID: id, Engine: queries.EngineGPU, GPUs: 2, Interconnect: "nvlink"}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(ds, "v1", Options{Workers: 1, QueueDepth: 16, MaxBatch: 8})
			defer s.Close()
			started, release := blockExecutions(s)
			ctx := context.Background()
			blocker, err := s.Submit(ctx, Request{QueryID: "q3.1", Engine: queries.EngineCPU, NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			<-started
			ids := []string{"q1.1", "q1.2", "q1.3"}
			chans := make([]<-chan Response, len(ids))
			for i, id := range ids {
				if chans[i], err = s.Submit(ctx, tc.req(id)); err != nil {
					t.Fatalf("queueing %s: %v", id, err)
				}
			}
			close(release)
			if resp := <-blocker; resp.Err != nil {
				t.Fatalf("blocker failed: %v", resp.Err)
			}
			solo := New(ds, "v1", Options{Workers: 1})
			defer solo.Close()
			for i, ch := range chans {
				resp := <-ch
				if resp.Err != nil {
					t.Fatalf("batched %s failed: %v", ids[i], resp.Err)
				}
				if !resp.Batched || resp.BatchSize != len(ids) {
					t.Fatalf("%s: batched=%v size=%d, want a full batch", ids[i], resp.Batched, resp.BatchSize)
				}
				ref, err := solo.Do(ctx, tc.req(ids[i]))
				if err != nil {
					t.Fatalf("solo %s failed: %v", ids[i], err)
				}
				if !resp.Result.Equal(ref.Result) {
					t.Errorf("%s: batched rows differ from solo service", ids[i])
				}
				if resp.SimSeconds != ref.SimSeconds {
					t.Errorf("%s: batched sim %.12f != solo %.12f", ids[i], resp.SimSeconds, ref.SimSeconds)
				}
				if resp.Placement != ref.Placement {
					t.Errorf("%s: batched placement %q != solo %q", ids[i], resp.Placement, ref.Placement)
				}
				if resp.GPUs != ref.GPUs || len(resp.Devices) != len(ref.Devices) {
					t.Errorf("%s: fleet telemetry differs (gpus %d vs %d, devices %d vs %d)",
						ids[i], resp.GPUs, ref.GPUs, len(resp.Devices), len(ref.Devices))
				}
			}
		})
	}
}

// TestBatchKeyRejects pins which shapes the batch former refuses to touch:
// standalone NoCache requests, malformed engine/placement/interconnect
// parameters, non-GPU engines with fleet or placement fields, and the two
// residency-dependent shapes whose solo pricing consults device-cache state
// the shared scan never sees.
func TestBatchKeyRejects(t *testing.T) {
	// DeviceCacheBytes defaults on (sized to the V100), so "plain" must
	// disable residency explicitly; "resident" adds the constrained-fleet
	// shard region that makes packed fleet runs residency-dependent too.
	plain := New(testData(), "v1", Options{Workers: 1, DeviceCacheBytes: -1})
	defer plain.Close()
	resident := New(testData(), "v1", Options{Workers: 1, FleetDeviceMemoryBytes: 1 << 20})
	defer resident.Close()

	cases := []struct {
		name string
		s    *Service
		req  Request
		ok   bool
	}{
		{"plain cpu", plain, Request{QueryID: "q1.1", Engine: queries.EngineCPU}, true},
		{"negative knobs normalize", plain, Request{QueryID: "q1.1", Engine: queries.EngineCPU, Partitions: -1, GPUs: -1}, true},
		{"nocache", plain, Request{QueryID: "q1.1", Engine: queries.EngineCPU, NoCache: true}, false},
		{"bad engine", plain, Request{QueryID: "q1.1", Engine: "warp"}, false},
		{"placement", plain, Request{QueryID: "q1.1", Placement: "auto"}, true},
		{"bad placement", plain, Request{QueryID: "q1.1", Placement: "moon"}, false},
		{"placement on cpu engine", plain, Request{QueryID: "q1.1", Engine: queries.EngineCPU, Placement: "auto"}, false},
		{"placement bad link", plain, Request{QueryID: "q1.1", Placement: "auto", Interconnect: "carrier-pigeon"}, false},
		{"fleet", plain, Request{QueryID: "q1.1", Engine: queries.EngineGPU, GPUs: 2}, true},
		{"fleet on cpu engine", plain, Request{QueryID: "q1.1", Engine: queries.EngineCPU, GPUs: 2}, false},
		{"fleet bad link", plain, Request{QueryID: "q1.1", Engine: queries.EngineGPU, GPUs: 2, Interconnect: "carrier-pigeon"}, false},
		{"packed fleet without residency", plain, Request{QueryID: "q1.1", Engine: queries.EngineGPU, GPUs: 2, Packed: true}, true},
		{"packed fleet with residency", resident, Request{QueryID: "q1.1", Engine: queries.EngineGPU, GPUs: 2, Packed: true}, false},
		{"packed coproc without residency", plain, Request{QueryID: "q1.1", Engine: queries.EngineCoproc, Packed: true}, true},
		{"packed coproc with residency", resident, Request{QueryID: "q1.1", Engine: queries.EngineCoproc, Packed: true}, false},
	}
	for _, tc := range cases {
		if _, got := tc.s.batchKey(tc.req); got != tc.ok {
			t.Errorf("%s: batchable=%v, want %v", tc.name, got, tc.ok)
		}
	}

	// Shape equality is what groups members: partitions and links separate.
	k1, _ := plain.batchKey(Request{QueryID: "q1.1", Engine: queries.EngineGPU, GPUs: 2, Partitions: 8})
	k2, _ := plain.batchKey(Request{QueryID: "q1.2", Engine: queries.EngineGPU, GPUs: 2, Partitions: 8})
	k3, _ := plain.batchKey(Request{QueryID: "q1.1", Engine: queries.EngineGPU, GPUs: 2, Partitions: 9})
	if k1 != k2 {
		t.Error("same shape with different queries must share a batch key")
	}
	if k1 == k3 {
		t.Error("different partition counts must not share a batch key")
	}
}

// TestServeBatchPackedAndWarmPlans covers the coprocessor-packed batch
// shape: with residency disabled, packed coprocessor requests batch like
// any other shape, reuse already-compiled plans, and pay the configured
// ExecDelay once for the whole batch.
func TestServeBatchPackedAndWarmPlans(t *testing.T) {
	ds := testData()
	s := New(ds, "v1", Options{
		Workers: 1, QueueDepth: 16, MaxBatch: 8,
		DeviceCacheBytes: -1, ExecDelay: time.Millisecond,
	})
	defer s.Close()
	ctx := context.Background()
	mk := func(id string) Request {
		return Request{QueryID: id, Engine: queries.EngineCoproc, Packed: true}
	}
	// Warm the plan cache solo, so the batch path hits it. The warm runs use
	// a different partition count: plan-cache keys ignore partitions, so the
	// plans warm, but result-cache keys include them, so the batch members
	// below stay cache misses and still batch (cache-resident work never
	// batches — the solo path replays it).
	ids := []string{"q1.1", "q1.2"}
	for _, id := range ids {
		warm := mk(id)
		warm.Partitions = 2
		if _, err := s.Do(ctx, warm); err != nil {
			t.Fatalf("warming %s: %v", id, err)
		}
	}
	started, release := blockExecutions(s)
	blocker, err := s.Submit(ctx, Request{QueryID: "q3.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	chans := make([]<-chan Response, len(ids))
	for i, id := range ids {
		if chans[i], err = s.Submit(ctx, mk(id)); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	if resp := <-blocker; resp.Err != nil {
		t.Fatalf("blocker failed: %v", resp.Err)
	}
	solo := New(ds, "v1", Options{Workers: 1, DeviceCacheBytes: -1})
	defer solo.Close()
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("batched packed %s failed: %v", ids[i], resp.Err)
		}
		if !resp.Batched || !resp.Packed {
			t.Errorf("%s: batched=%v packed=%v, want both", ids[i], resp.Batched, resp.Packed)
		}
		if !resp.PlanCached {
			t.Errorf("%s: plan not reused from the warm cache", ids[i])
		}
		ref, err := solo.Do(ctx, mk(ids[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Result.Equal(ref.Result) || resp.SimSeconds != ref.SimSeconds {
			t.Errorf("%s: packed batch differs from solo (sim %.12f vs %.12f)", ids[i], resp.SimSeconds, ref.SimSeconds)
		}
	}
}

// TestServeBatchGPUPlacementFleetMemory covers the explicit pure-GPU
// placement batch and the constrained-fleet memory override.
func TestServeBatchGPUPlacementFleetMemory(t *testing.T) {
	ds := testData()
	for _, tc := range []struct {
		name string
		opts Options
		req  func(id string) Request
	}{
		{"gpu placement", Options{Workers: 1, QueueDepth: 16, MaxBatch: 8},
			func(id string) Request { return Request{QueryID: id, Placement: "gpu"} }},
		{"constrained fleet", Options{Workers: 1, QueueDepth: 16, MaxBatch: 8, DeviceCacheBytes: -1, FleetDeviceMemoryBytes: 1 << 26},
			func(id string) Request { return Request{QueryID: id, Engine: queries.EngineGPU, GPUs: 2} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(ds, "v1", tc.opts)
			defer s.Close()
			started, release := blockExecutions(s)
			ctx := context.Background()
			blocker, err := s.Submit(ctx, Request{QueryID: "q3.1", Engine: queries.EngineCPU, NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			<-started
			ids := []string{"q1.1", "q1.2"}
			chans := make([]<-chan Response, len(ids))
			for i, id := range ids {
				if chans[i], err = s.Submit(ctx, tc.req(id)); err != nil {
					t.Fatal(err)
				}
			}
			close(release)
			if resp := <-blocker; resp.Err != nil {
				t.Fatalf("blocker failed: %v", resp.Err)
			}
			soloOpts := tc.opts
			soloOpts.MaxBatch = 0
			solo := New(ds, "v1", soloOpts)
			defer solo.Close()
			for i, ch := range chans {
				resp := <-ch
				if resp.Err != nil {
					t.Fatalf("batched %s failed: %v", ids[i], resp.Err)
				}
				if !resp.Batched {
					t.Fatalf("%s: not batched", ids[i])
				}
				ref, err := solo.Do(ctx, tc.req(ids[i]))
				if err != nil {
					t.Fatal(err)
				}
				if !resp.Result.Equal(ref.Result) || resp.SimSeconds != ref.SimSeconds {
					t.Errorf("%s: batch differs from solo (sim %.12f vs %.12f)", ids[i], resp.SimSeconds, ref.SimSeconds)
				}
			}
		})
	}
}

// TestFormBatchFallsBackToSolo pins the paths where batch formation bows
// out and the solo path proceeds: an unbatchable leader (NoCache), a leader
// that fails to bind, and a shape-matched peer whose SQL fails to bind (it
// is drained, returned to its queue position, and reports its own error
// solo).
func TestFormBatchFallsBackToSolo(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 16, MaxBatch: 8})
	defer s.Close()
	ctx := context.Background()

	park := func() (<-chan Response, chan<- struct{}) {
		started, release := blockExecutions(s)
		blocker, err := s.Submit(ctx, Request{QueryID: "q3.1", Engine: queries.EngineCPU, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		<-started
		return blocker, release
	}

	// NoCache leader with a compatible peer behind it: neither batches.
	blocker, release := park()
	lead, err := s.Submit(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := s.Submit(ctx, Request{QueryID: "q1.2", Engine: queries.EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	if resp := <-blocker; resp.Err != nil {
		t.Fatal(resp.Err)
	}
	for name, ch := range map[string]<-chan Response{"nocache leader": lead, "peer": peer} {
		if resp := <-ch; resp.Err != nil || resp.Batched {
			t.Errorf("%s: err=%v batched=%v, want solo success", name, resp.Err, resp.Batched)
		}
	}

	// A leader whose SQL does not bind falls through to the solo path's
	// error report; the live peer behind it still completes.
	blocker, release = park()
	bad, err := s.Submit(ctx, Request{SQL: "select sum(revenue) from nowhere", Engine: queries.EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	peer2, err := s.Submit(ctx, Request{QueryID: "q1.3", Engine: queries.EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	if resp := <-blocker; resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := <-bad; resp.Err == nil {
		t.Error("unbindable leader reported no error")
	}
	if resp := <-peer2; resp.Err != nil || resp.Batched {
		t.Errorf("peer behind bad leader: err=%v batched=%v, want solo success", resp.Err, resp.Batched)
	}

	// A bindable leader with a shape-matched but unbindable peer: the peer
	// is drained, requeued, and reports its own bind error.
	blocker, release = park()
	lead2, err := s.Submit(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	badPeer, err := s.Submit(ctx, Request{SQL: "select sum(revenue) from nowhere", Engine: queries.EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	if resp := <-blocker; resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := <-lead2; resp.Err != nil || resp.Batched {
		t.Errorf("leader with only unbindable peers: err=%v batched=%v, want solo success", resp.Err, resp.Batched)
	}
	if resp := <-badPeer; resp.Err == nil {
		t.Error("unbindable peer reported no error")
	}
}

// TestQueueSmallHelpers covers drainMatching's disabled guard and the
// shed-victim ordering helper directly.
func TestQueueSmallHelpers(t *testing.T) {
	q := newJobQueue()
	q.push(&job{req: Request{QueryID: "a"}, done: make(chan Response, 1)})
	if taken, dropped := q.drainMatching(0, func(*job) int { return drainTake }); taken != nil || dropped != nil {
		t.Errorf("drainMatching(0) = %v, %v, want nil, nil", taken, dropped)
	}
	lowOld := &job{req: Request{Priority: 1}, seq: 1}
	lowNew := &job{req: Request{Priority: 1}, seq: 2}
	high := &job{req: Request{Priority: 2}, seq: 3}
	if !worseJob(lowOld, high) || worseJob(high, lowOld) {
		t.Error("lower priority must be the worse keep")
	}
	if !worseJob(lowNew, lowOld) || worseJob(lowOld, lowNew) {
		t.Error("within a priority the newest arrival must be the worse keep")
	}
}

// TestBatchSkipsCachedWork pins the cache/batching interaction: work the
// result cache can answer never batches. A cache-resident peer drained by
// the batch former is requeued and replays solo, a cache-resident leader
// skips formation entirely, and batch members publish their results so
// later identical requests replay from cache.
func TestBatchSkipsCachedWork(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 16, MaxBatch: 8, ResultCacheSize: 8})
	defer s.Close()
	ctx := context.Background()
	mk := func(id string) Request { return Request{QueryID: id, Engine: queries.EngineCPU} }

	// Prime q1.2: the batch former must divert it back to the solo path.
	primed, err := s.Do(ctx, mk("q1.2"))
	if err != nil {
		t.Fatal(err)
	}
	started, release := blockExecutions(s)
	blocker, err := s.Submit(ctx, Request{QueryID: "q3.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ids := []string{"q1.1", "q1.2", "q1.3"}
	chans := make([]<-chan Response, len(ids))
	for i, id := range ids {
		if chans[i], err = s.Submit(ctx, mk(id)); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	if resp := <-blocker; resp.Err != nil {
		t.Fatalf("blocker failed: %v", resp.Err)
	}
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("%s failed: %v", ids[i], resp.Err)
		}
		if ids[i] == "q1.2" {
			if resp.Batched || !resp.ResultCached {
				t.Errorf("cached q1.2: batched=%v resultCached=%v, want a solo cache replay", resp.Batched, resp.ResultCached)
			}
			if !resp.Result.Equal(primed.Result) {
				t.Error("cached q1.2 replayed different rows")
			}
			continue
		}
		if !resp.Batched || resp.BatchSize != 2 {
			t.Errorf("%s: batched=%v size=%d, want a 2-member batch around the cached peer", ids[i], resp.Batched, resp.BatchSize)
		}
	}
	// The batch published its members under their solo keys: an identical
	// request replays from cache instead of executing again.
	rep, err := s.Do(ctx, mk("q1.1"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ResultCached || rep.Batched {
		t.Errorf("post-batch q1.1: resultCached=%v batched=%v, want a cache replay", rep.ResultCached, rep.Batched)
	}
	if st := s.Stats(); st.Batches != 1 || st.BatchedRequests != 2 {
		t.Errorf("stats: batches=%d batchedRequests=%d, want 1/2", st.Batches, st.BatchedRequests)
	}

	// Both flight members are now cache-resident: a parked pair never forms
	// a batch — the leader-side check skips formation and each replays solo.
	started2, release2 := blockExecutions(s)
	blocker2, err := s.Submit(ctx, Request{QueryID: "q3.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started2
	a, err := s.Submit(ctx, mk("q1.1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(ctx, mk("q1.3"))
	if err != nil {
		t.Fatal(err)
	}
	close(release2)
	if resp := <-blocker2; resp.Err != nil {
		t.Fatalf("second blocker failed: %v", resp.Err)
	}
	for _, ch := range []<-chan Response{a, b} {
		resp := <-ch
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if resp.Batched || !resp.ResultCached {
			t.Errorf("cached pair: batched=%v resultCached=%v, want solo cache replays", resp.Batched, resp.ResultCached)
		}
	}
	if st := s.Stats(); st.Batches != 1 {
		t.Errorf("cached pair formed a batch: batches=%d, want still 1", st.Batches)
	}
}
