package serve

import (
	"context"
	"io"
	"strings"
	"sync"
	"testing"

	"crystal/internal/queries"
	"crystal/internal/trace"
)

// mixedRequests covers every dispatch shape the service routes: classic
// engine dispatch, classic multi-GPU fleet, and the scheduler placements.
func mixedRequests() []Request {
	return []Request{
		{QueryID: "q1.1", Engine: queries.EngineCPU},
		{QueryID: "q2.1", Engine: queries.EngineCoproc, Packed: true},
		{QueryID: "q3.1", Engine: queries.EngineGPU, GPUs: 2, Partitions: 8},
		{QueryID: "q4.1", Placement: PlacementHybrid, GPUs: 2, Interconnect: "nvlink"},
		{QueryID: "q1.2", Placement: PlacementCPU},
		{QueryID: "q2.2", Placement: PlacementGPU, GPUs: 2},
	}
}

// TestTraceThroughService: with Options.Trace on, every response carries a
// recorded trace whose run span satisfies the tracer's invariants and
// whose simulated seconds equal the response's.
func TestTraceThroughService(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2, Trace: true})
	defer s.Close()

	for _, req := range mixedRequests() {
		req.NoCache = true
		resp, err := s.Do(context.Background(), req)
		if err != nil || resp.Err != nil {
			t.Fatalf("%+v: %v / %v", req, err, resp.Err)
		}
		if resp.TraceID == "" || resp.Trace == nil {
			t.Fatalf("%+v: traced service returned no trace", req)
		}
		got := s.TraceRecorder().Get(resp.TraceID)
		if got != resp.Trace {
			t.Errorf("%s: recorder lookup returned a different trace", resp.TraceID)
		}
		root := resp.Trace.Root
		if root.Phase != trace.PhaseRequest || root.Child(trace.PhaseAdmit) == nil || root.Child(trace.PhaseBind) == nil {
			t.Errorf("%s: malformed request span: %+v", resp.TraceID, root)
		}
		run := root.Child(trace.PhaseRun)
		if run == nil {
			t.Fatalf("%s: no run span on an executed request", resp.TraceID)
		}
		if err := trace.Verify(run); err != nil {
			t.Errorf("%s (%+v): %v", resp.TraceID, req, err)
		}
		if resp.Trace.Sim != resp.SimSeconds {
			t.Errorf("%s: trace sim %g != response sim %g", resp.TraceID, resp.Trace.Sim, resp.SimSeconds)
		}
		if resp.QueueWait < 0 {
			t.Errorf("%s: negative queue wait", resp.TraceID)
		}
		if resp.Trace.Query != req.QueryID {
			t.Errorf("trace query %q != request %q", resp.Trace.Query, req.QueryID)
		}
	}
	if n := s.TraceRecorder().Len(); n == 0 {
		t.Error("flight recorder retained nothing")
	}
}

// TestTraceCacheHit: a result-cache hit gets its own trace — a cache-hit
// marker instead of a run span, never a replay of the original's spans.
func TestTraceCacheHit(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, Trace: true})
	defer s.Close()

	req := Request{QueryID: "q1.1", Engine: queries.EngineCPU}
	first, err := s.Do(context.Background(), req)
	if err != nil || first.Err != nil {
		t.Fatal(err, first.Err)
	}
	second, err := s.Do(context.Background(), req)
	if err != nil || second.Err != nil {
		t.Fatal(err, second.Err)
	}
	if !second.ResultCached {
		t.Fatal("second identical request missed the result cache")
	}
	if second.TraceID == "" || second.TraceID == first.TraceID {
		t.Errorf("cache hit trace id %q (first %q): want a fresh trace", second.TraceID, first.TraceID)
	}
	if !second.Trace.Cached {
		t.Error("cache-hit trace not marked cached")
	}
	hit := second.Trace.Root.Child(trace.PhaseCacheHit)
	if hit == nil || !hit.Cached {
		t.Error("cache-hit trace has no cache-hit span")
	}
	if second.Trace.Root.Child(trace.PhaseRun) != nil {
		t.Error("cache-hit trace replays a run span")
	}
}

// TestTraceOffByDefault: without Options.Trace the service records
// nothing and responses carry no trace surface at all.
func TestTraceOffByDefault(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1})
	defer s.Close()
	if s.TraceRecorder() != nil {
		t.Fatal("untraced service built a flight recorder")
	}
	resp, err := s.Do(context.Background(), Request{QueryID: "q1.1", Engine: queries.EngineGPU})
	if err != nil || resp.Err != nil {
		t.Fatal(err, resp.Err)
	}
	if resp.TraceID != "" || resp.Trace != nil {
		t.Error("untraced response carries a trace")
	}
}

// TestStatsAndMetricsUnderLoad hammers Stats and the metrics exposition
// from reader goroutines while mixed-placement traffic executes (run
// under -race in CI): the single-lock snapshot must never tear, and the
// final tallies must be exact.
func TestStatsAndMetricsUnderLoad(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 4, Trace: true})
	defer s.Close()

	const rounds = 10
	reqs := mixedRequests()
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := s.Stats()
				var latReqs int64
				for _, l := range st.Latency {
					latReqs += l.Requests
				}
				if latReqs > st.Requests {
					t.Errorf("torn snapshot: %d latency observations for %d requests", latReqs, st.Requests)
					return
				}
				if err := s.WriteMetrics(io.Discard); err != nil {
					t.Errorf("WriteMetrics: %v", err)
					return
				}
			}
		}()
	}

	var clients sync.WaitGroup
	for c := 0; c < 4; c++ {
		clients.Add(1)
		go func(c int) {
			defer clients.Done()
			for i := 0; i < rounds; i++ {
				req := reqs[(i+c)%len(reqs)]
				req.NoCache = true
				if resp, err := s.Do(context.Background(), req); err != nil || resp.Err != nil {
					t.Errorf("%+v: %v / %v", req, err, resp.Err)
					return
				}
			}
		}(c)
	}
	clients.Wait()
	close(done)
	readers.Wait()

	st := s.Stats()
	if want := int64(4 * rounds); st.Requests != want {
		t.Errorf("requests = %d, want %d", st.Requests, want)
	}
	var latReqs int64
	for _, l := range st.Latency {
		latReqs += l.Requests
		if l.WallP50MS > l.WallP95MS || l.WallP95MS > l.WallP99MS {
			t.Errorf("%s/%s: percentiles not monotone: %g %g %g",
				l.Engine, l.Placement, l.WallP50MS, l.WallP95MS, l.WallP99MS)
		}
	}
	if latReqs != st.Requests {
		t.Errorf("latency grid holds %d observations for %d requests", latReqs, st.Requests)
	}
}

// TestMetricsExposition: the /metrics payload is valid Prometheus text
// exposition carrying the per-(engine, placement) latency histograms, and
// its request counter agrees with Stats.
func TestMetricsExposition(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2, Trace: true})
	defer s.Close()
	for _, req := range mixedRequests() {
		if resp, err := s.Do(context.Background(), req); err != nil || resp.Err != nil {
			t.Fatalf("%+v: %v / %v", req, err, resp.Err)
		}
	}

	var b strings.Builder
	if err := s.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := trace.Validate(out); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, out)
	}
	for _, want := range []string{
		`ssb_requests_total{engine="cpu",placement="classic"} 1`,
		`ssb_requests_total{engine="gpu",placement="fleet"} 1`,
		`ssb_request_wall_seconds_bucket{engine="cpu",placement="classic",le="+Inf"} 1`,
		`ssb_request_wall_seconds_count{engine="cpu",placement="classic"} 1`,
		"# TYPE ssb_queue_wait_seconds histogram",
		"# TYPE ssb_sim_seconds histogram",
		`placement="hybrid"`,
		"ssb_workers 2",
		"# TYPE ssb_transfer_bytes_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The exposition's request counter must agree with Stats — both render
	// from the same accumulator.
	st := s.Stats()
	var totalLat int64
	for _, l := range st.Latency {
		totalLat += l.Requests
	}
	if totalLat != st.Requests {
		t.Errorf("latency grid %d != requests %d", totalLat, st.Requests)
	}
}
