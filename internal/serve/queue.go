package serve

import (
	"container/heap"
	"sort"
	"sync"
	"time"
)

// job is one queued request. seq orders jobs of equal priority FIFO.
type job struct {
	req Request
	// enqueued is when submit put the job on the queue; the worker's
	// pickup delta is the request's queue wait (and what the deadline
	// check at pickup compares against Request.Deadline).
	enqueued time.Time
	seq      uint64
	done     chan Response
}

// jobQueue is the pending-request queue: a priority heap (higher
// Request.Priority first, FIFO within a priority) bounded by depth.
// Admission policy lives in push: when the queue is full it either
// blocks the submitter (backpressure, the historical behavior) or sheds
// — refusing the newcomer, unless a strictly lower-priority job is
// pending, in which case that victim is evicted to make room. Eviction
// removes the victim under the queue lock, so exactly one party (the
// evictor, never a worker) completes its done channel.
type jobQueue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	jobs     jobHeap
	seq      uint64
	closed   bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.notEmpty.L = &q.mu
	return q
}

// push enqueues the job, stamping its FIFO sequence number.
func (q *jobQueue) push(j *job) {
	q.mu.Lock()
	q.pushLocked(j)
	q.mu.Unlock()
}

func (q *jobQueue) pushLocked(j *job) {
	j.seq = q.seq
	q.seq++
	heap.Push(&q.jobs, j)
	q.notEmpty.Signal()
}

// offer enqueues the job if the pending count is below depth. When the
// queue is full it first drops every pending job whose deadline already
// expired — a dead job was only going to be discarded at worker pickup,
// and letting it hold a slot would shed a live newcomer (or evict a live
// victim) in its stead; the dropped jobs are returned in expired for the
// caller to complete with ErrExpired. If the queue is still full it
// evicts the worst pending job — lowest priority, newest within that
// priority — provided it is strictly lower priority than the newcomer,
// and returns it for the caller to shed. Otherwise the newcomer itself
// is refused (pushed = false, victim = nil).
func (q *jobQueue) offer(j *job, depth int) (pushed bool, victim *job, expired []*job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) >= depth {
		// Full-queue scan: collect expired slots before applying the
		// shed/evict policy. Indices are removed in descending order so
		// each heap.Remove leaves the earlier candidates' indices valid.
		now := time.Now()
		for i := len(q.jobs) - 1; i >= 0; i-- {
			p := q.jobs[i]
			if p.req.Deadline > 0 && now.Sub(p.enqueued) >= p.req.Deadline {
				expired = append(expired, heap.Remove(&q.jobs, i).(*job))
			}
		}
	}
	if len(q.jobs) < depth {
		q.pushLocked(j)
		return true, nil, expired
	}
	// Still full: find the worst pending job. The heap orders best-first,
	// so scan the backing slice (depth is small — a few times the worker
	// count — so O(depth) is fine).
	worst := 0
	for i := 1; i < len(q.jobs); i++ {
		if worseJob(q.jobs[i], q.jobs[worst]) {
			worst = i
		}
	}
	if q.jobs[worst].req.Priority >= j.req.Priority {
		return false, nil, expired // nothing strictly lower: shed the newcomer
	}
	victim = heap.Remove(&q.jobs, worst).(*job)
	q.pushLocked(j)
	return true, victim, expired
}

// Batch-drain verdicts for drainMatching's classifier.
const (
	drainKeep = iota // leave the job queued
	drainTake        // pull the job into the batch
	drainDrop        // remove the job as deadline-expired
)

// drainMatching removes up to max pending jobs the classifier takes
// (drainTake) and every job it drops (drainDrop, deadline-expired peers
// found during the scan), returning both sets. The scan walks the heap's
// backing slice in seq order so FIFO fairness within a priority is
// preserved; removals happen by descending index, keeping earlier indices
// valid. The classifier runs under the queue lock and must not call back
// into the queue.
func (q *jobQueue) drainMatching(max int, classify func(*job) int) (taken, dropped []*job) {
	if max <= 0 {
		return nil, nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	// Visit jobs best-first (the order workers would pop them) by sorting
	// candidate indices; the heap slice itself is only partially ordered.
	idx := make([]int, len(q.jobs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ja, jb := q.jobs[idx[a]], q.jobs[idx[b]]
		if ja.req.Priority != jb.req.Priority {
			return ja.req.Priority > jb.req.Priority
		}
		return ja.seq < jb.seq
	})
	var takeIdx, dropIdx []int
	for _, i := range idx {
		if len(takeIdx) >= max {
			break
		}
		switch classify(q.jobs[i]) {
		case drainTake:
			takeIdx = append(takeIdx, i)
		case drainDrop:
			dropIdx = append(dropIdx, i)
		}
	}
	remove := append(append([]int(nil), takeIdx...), dropIdx...)
	sort.Sort(sort.Reverse(sort.IntSlice(remove)))
	byIndex := map[int]*job{}
	for _, i := range remove {
		byIndex[i] = heap.Remove(&q.jobs, i).(*job)
	}
	for _, i := range takeIdx {
		taken = append(taken, byIndex[i])
	}
	for _, i := range dropIdx {
		dropped = append(dropped, byIndex[i])
	}
	return taken, dropped
}

// requeue pushes drained jobs back with their original sequence numbers
// intact, restoring their FIFO position within their priority — used by the
// batch former for shape-matched candidates whose footprints turned out
// disjoint.
func (q *jobQueue) requeue(jobs []*job) {
	if len(jobs) == 0 {
		return
	}
	q.mu.Lock()
	for _, j := range jobs {
		heap.Push(&q.jobs, j)
		q.notEmpty.Signal()
	}
	q.mu.Unlock()
}

// pop blocks until a job is available or the queue is closed and
// drained. Remaining jobs are still handed out after close, mirroring
// the drain semantics of closing a channel.
func (q *jobQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if len(q.jobs) == 0 {
		return nil, false
	}
	return heap.Pop(&q.jobs).(*job), true
}

// close wakes every waiting worker; pending jobs drain first.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.mu.Unlock()
}

// len reports the pending-job count.
func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// worseJob reports whether a is a worse candidate to keep than b:
// lower priority first, then later arrival (shed the newest of the
// lowest class — the oldest has waited longest and is closest to a
// worker).
func worseJob(a, b *job) bool {
	if a.req.Priority != b.req.Priority {
		return a.req.Priority < b.req.Priority
	}
	return a.seq > b.seq
}

// jobHeap orders jobs best-first: higher priority, then FIFO (lower
// seq) within a priority.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].req.Priority != h[j].req.Priority {
		return h[i].req.Priority > h[j].req.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
