package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"crystal/internal/queries"
	"crystal/internal/queries/queriestest"
)

// TestFleetRequests covers the fleet routing basics: a fleet request is
// row-identical to the single-device GPU request, reports its shape and
// per-device telemetry, and caches under its own (gpus, interconnect) key.
func TestFleetRequests(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	single, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: queries.EngineGPU})
	if err != nil {
		t.Fatal(err)
	}
	fleet2, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: "gpu", GPUs: 2, Interconnect: "nvlink"})
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRows(t, "2-GPU fleet vs single device", fleet2.Result, single.Result)
	if fleet2.GPUs != 2 || fleet2.Interconnect != "nvlink" {
		t.Errorf("fleet shape echo = %d/%q, want 2/nvlink", fleet2.GPUs, fleet2.Interconnect)
	}
	if len(fleet2.Devices) != 2 {
		t.Fatalf("%d device entries, want 2", len(fleet2.Devices))
	}
	if fleet2.Morsels != 2 {
		t.Errorf("fleet morsels = %d, want 2 (one shard per device)", fleet2.Morsels)
	}
	if fleet2.ResultCached {
		t.Error("first fleet request served from cache")
	}

	// Identical shape: a result-cache hit with the telemetry intact.
	again, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: "gpu", GPUs: 2, Interconnect: "nvlink"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.ResultCached {
		t.Error("repeated fleet request missed the result cache")
	}
	if len(again.Devices) != 2 || again.GPUs != 2 || again.MergeBytes != fleet2.MergeBytes {
		t.Error("cached fleet replay lost its telemetry")
	}
	queriestest.SameRun(t, "cached fleet replay", again.Result, fleet2.Result)

	// A different fleet size or link is a different physical execution:
	// plan shared, result recomputed.
	other, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: "gpu", GPUs: 4, Interconnect: "nvlink"})
	if err != nil {
		t.Fatal(err)
	}
	if !other.PlanCached || other.ResultCached {
		t.Errorf("4-GPU request: PlanCached=%v ResultCached=%v, want plan hit + result miss",
			other.PlanCached, other.ResultCached)
	}
	pcie, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: "gpu", GPUs: 2, Interconnect: "pcie"})
	if err != nil {
		t.Fatal(err)
	}
	if pcie.ResultCached {
		t.Error("pcie fleet request hit the nvlink entry")
	}
	if pcie.SimSeconds <= again.SimSeconds {
		t.Errorf("pcie fleet (%.12fs) not slower than nvlink (%.12fs): merge term lost",
			pcie.SimSeconds, again.SimSeconds)
	}

	// The default interconnect is PCIe, sharing its cache entry.
	deflt, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: "gpu", GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if deflt.Interconnect != "pcie" || !deflt.ResultCached {
		t.Errorf("default interconnect = %q (cached=%v), want pcie sharing the pcie entry",
			deflt.Interconnect, deflt.ResultCached)
	}
}

func TestFleetRequestErrors(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1})
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU, GPUs: 2}); err == nil {
		t.Error("fleet request on a CPU engine accepted")
	}
	if _, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: "gpu", GPUs: 2, Interconnect: "infiniband"}); err == nil {
		t.Error("unknown interconnect accepted")
	}
	if _, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: "gpu", GPUs: 100000}); err == nil {
		t.Error("absurd fleet size accepted")
	}
	// Negative GPUs clamps to single-device execution.
	resp, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: "gpu", GPUs: -3})
	if err != nil || resp.GPUs != 0 || len(resp.Devices) != 0 {
		t.Errorf("negative GPUs: err=%v gpus=%d devices=%d, want plain single-device run",
			err, resp.GPUs, len(resp.Devices))
	}
	if st := s.Stats(); st.Errors != 3 {
		t.Errorf("stats recorded %d errors, want 3", st.Errors)
	}
}

// TestFleetConcurrentSubmissions floods one Service with mixed -gpus
// values from many client goroutines (run under -race in CI): every
// response must be row-identical to the sequential reference, whatever
// fleet shape produced it.
func TestFleetConcurrentSubmissions(t *testing.T) {
	ds := testData()
	s := New(ds, "v1", Options{Workers: 4, MorselHelpers: 2})
	defer s.Close()

	ids := []string{"q1.1", "q2.1", "q3.2"}
	refs := map[string]*queries.Result{}
	for _, id := range ids {
		q := mustQuery(t, id)
		refs[id] = queries.Reference(ds, q)
	}
	links := []string{"pcie", "nvlink"}
	gpuCounts := []int{1, 2, 4}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				req := Request{
					QueryID:      ids[(c+i)%len(ids)],
					Engine:       "gpu",
					GPUs:         gpuCounts[(c+2*i)%len(gpuCounts)],
					Interconnect: links[(c+i)%len(links)],
					NoCache:      i%2 == 0,
				}
				resp, err := s.Do(context.Background(), req)
				if err != nil {
					errs <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				if !resp.Result.Equal(refs[req.QueryID]) {
					errs <- fmt.Errorf("client %d: %s on %d GPUs diverged from reference", c, req.QueryID, req.GPUs)
					return
				}
				if len(resp.Devices) != req.GPUs {
					errs <- fmt.Errorf("client %d: %d device entries for %d GPUs", c, len(resp.Devices), req.GPUs)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if want := int64(clients * 12); st.FleetRequests != want {
		t.Errorf("fleet requests = %d, want %d", st.FleetRequests, want)
	}
}

// TestFleetStatsSumToTotals is the regression gate for the per-device
// breakdown: across a mix of fleet shapes, the per-device /stats counters
// must sum exactly to the fleet totals, and the totals must match what the
// responses reported.
func TestFleetStatsSumToTotals(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	var wantMorsels, wantRows int64
	var wantRequests int64
	for _, req := range []Request{
		{QueryID: "q1.1", Engine: "gpu", GPUs: 1},
		{QueryID: "q1.1", Engine: "gpu", GPUs: 2, Partitions: 8},
		{QueryID: "q2.1", Engine: "gpu", GPUs: 4, Interconnect: "nvlink"},
		{QueryID: "q2.1", Engine: "gpu", GPUs: 4, Interconnect: "nvlink"}, // cache hit: still counted
		{QueryID: "q3.2", Engine: "gpu", GPUs: 2, Interconnect: "pcie", Packed: true},
	} {
		resp, err := s.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		wantRequests++
		for _, fd := range resp.Devices {
			wantMorsels += int64(fd.Morsels)
			wantRows += fd.Rows
		}
	}

	st := s.Stats()
	if st.FleetRequests != wantRequests {
		t.Errorf("fleet requests = %d, want %d", st.FleetRequests, wantRequests)
	}
	if st.FleetMorsels != wantMorsels || st.FleetRows != wantRows {
		t.Errorf("fleet totals = %d morsels / %d rows, responses say %d / %d",
			st.FleetMorsels, st.FleetRows, wantMorsels, wantRows)
	}
	var devMorsels, devPruned, devRows, devSpill, devResident, devRequests int64
	var devSeconds float64
	for _, d := range st.FleetDevices {
		devMorsels += d.Morsels
		devPruned += d.Pruned
		devRows += d.Rows
		devSpill += d.SpillBytes
		devResident += d.ResidentCols
		devSeconds += d.SimSeconds
		if d.Requests > devRequests {
			devRequests = d.Requests
		}
	}
	if devMorsels != st.FleetMorsels {
		t.Errorf("per-device morsels sum to %d, total says %d", devMorsels, st.FleetMorsels)
	}
	if devPruned != st.FleetPruned {
		t.Errorf("per-device pruned sum to %d, total says %d", devPruned, st.FleetPruned)
	}
	if devRows != st.FleetRows {
		t.Errorf("per-device rows sum to %d, total says %d", devRows, st.FleetRows)
	}
	if devSpill != st.FleetSpillBytes {
		t.Errorf("per-device spill sums to %d, total says %d", devSpill, st.FleetSpillBytes)
	}
	if devResident != st.FleetResidentCols {
		t.Errorf("per-device resident cols sum to %d, total says %d", devResident, st.FleetResidentCols)
	}
	// Device 0 participates in every fleet request.
	if devRequests != st.FleetRequests {
		t.Errorf("busiest device served %d requests, fleet served %d", devRequests, st.FleetRequests)
	}
	if len(st.FleetDevices) != 4 {
		t.Errorf("%d device rows, want 4 (largest fleet seen)", len(st.FleetDevices))
	}
	if devSeconds <= 0 {
		t.Error("per-device simulated seconds not accumulated")
	}
	if st.FleetSpillBytes != 0 {
		t.Error("32 GB fleet devices spilled at test scale")
	}
}

// TestFleetSpillServedWarm exercises the spill + per-device residency path
// end to end: with device memory constrained, a packed fleet request ships
// its spilled columns cold, a repeat is served warm from the per-device
// caches (and bypasses the result cache, like the coprocessor's residency
// path), and a dataset swap drops back to cold.
func TestFleetSpillServedWarm(t *testing.T) {
	ds := testData()
	s := New(ds, "v1", Options{Workers: 2, FleetDeviceMemoryBytes: 1})
	defer s.Close()
	ctx := context.Background()
	req := Request{QueryID: "q1.1", Engine: "gpu", GPUs: 2, Packed: true}

	cold, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.TransferBytes == 0 {
		t.Fatal("1-byte devices did not spill")
	}
	if cold.ResidentCols != 0 {
		t.Errorf("cold run reported %d resident columns", cold.ResidentCols)
	}

	warm, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.ResultCached {
		t.Error("residency-dependent fleet response served from the result cache")
	}
	if warm.TransferBytes != 0 {
		t.Errorf("warm run still shipped %d bytes", warm.TransferBytes)
	}
	if warm.ResidentCols == 0 {
		t.Error("warm run reported no resident columns")
	}
	// Spill traffic and elisions land in the fleet counters, not in the
	// coprocessor's PCIe line (that would double-report the bytes).
	if st := s.Stats(); st.TransferBytes != 0 || st.ResidentCols != 0 {
		t.Errorf("fleet spill leaked into coprocessor counters: %d bytes / %d cols",
			st.TransferBytes, st.ResidentCols)
	} else if st.FleetSpillBytes == 0 || st.FleetResidentCols == 0 {
		t.Errorf("fleet counters missed the spill: %d bytes / %d cols elided",
			st.FleetSpillBytes, st.FleetResidentCols)
	}
	// A genuinely different shard map (1 GPU holds both morsels, so its
	// spilled ranges differ from the 2-GPU shards) must not hit the first
	// shape's pinned byte ranges: its first packed run ships cold. A
	// request whose partition count merely clamps to the same effective
	// shape would share — that dedup is pinned by TestFleetPartitionsClamped.
	shaped, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: "gpu", GPUs: 1, Packed: true})
	if err != nil {
		t.Fatal(err)
	}
	if shaped.TransferBytes == 0 || shaped.ResidentCols != 0 {
		t.Errorf("new fleet shape served another shape's residency: %d bytes / %d cols",
			shaped.TransferBytes, shaped.ResidentCols)
	}
	queriestest.SameRows(t, "warm fleet vs cold", warm.Result, cold.Result)
	// At this scale the spill shipment overlaps entirely with execution, so
	// the win shows up as elided bytes; seconds must never get worse.
	if warm.SimSeconds > cold.SimSeconds {
		t.Errorf("warm fleet (%.12fs) slower than cold (%.12fs)", warm.SimSeconds, cold.SimSeconds)
	}

	// Plain fleet runs on the same constrained service still spill but are
	// residency-independent and therefore cacheable.
	plain, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: "gpu", GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.TransferBytes == 0 {
		t.Error("plain constrained fleet did not spill")
	}
	again, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: "gpu", GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !again.ResultCached {
		t.Error("plain spilled fleet response should cache")
	}

	// Swapping the dataset purges the per-device caches: cold again.
	s.SetDataset("v2", testData())
	swapped, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if swapped.TransferBytes == 0 {
		t.Error("post-swap fleet request served stale residency")
	}
}

// TestFleetPackedNoSpillCached: per-device residency caches enabled but
// device memory large enough that nothing spills — the response touches no
// residency state, so it is deterministic and caches normally.
func TestFleetPackedNoSpillCached(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2, FleetDeviceMemoryBytes: 1 << 40})
	defer s.Close()
	ctx := context.Background()
	req := Request{QueryID: "q1.1", Engine: "gpu", GPUs: 2, Packed: true}

	first, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.TransferBytes != 0 || first.ResidentCols != 0 {
		t.Fatalf("huge devices spilled: %d bytes / %d cols", first.TransferBytes, first.ResidentCols)
	}
	second, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.ResultCached {
		t.Error("residency-independent packed fleet response missed the result cache")
	}
	queriestest.SameRun(t, "cached no-spill packed fleet", second.Result, first.Result)
}

// TestFleetPartitionsClamped: partition counts beyond the tile count
// execute the same shard map and must share one cache entry.
func TestFleetPartitionsClamped(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2}) // 4096 rows = 2 tiles
	defer s.Close()
	ctx := context.Background()

	base, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: "gpu", GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	over, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: "gpu", GPUs: 2, Partitions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !over.ResultCached {
		t.Error("over-clamped partition count did not share the effective shape's entry")
	}
	if over.Request.Partitions != 2 {
		t.Errorf("echoed partitions = %d, want the effective 2", over.Request.Partitions)
	}
	queriestest.SameRun(t, "clamped partitions replay", over.Result, base.Result)
}
