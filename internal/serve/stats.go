package serve

import (
	"fmt"
	"sort"

	"crystal/internal/bench"
	"crystal/internal/queries"
	"crystal/internal/trace"
)

// engineAccum accumulates per-engine latency under the service mutex.
type engineAccum struct {
	requests    int64
	simSeconds  float64
	wallSeconds float64
}

// latencyAccum accumulates one (engine, placement) cell's latency
// distributions: execution wall clock, queue wait, and simulated seconds,
// each in a fixed-bucket log histogram (trace.Histogram), so percentiles
// and the Prometheus exposition come from the same counters. The
// histograms are updated under statsMu like every other tally.
type latencyAccum struct {
	requests int64
	wall     trace.Histogram
	queue    trace.Histogram
	sim      trace.Histogram
}

// placementLabel buckets a response for the latency histograms: the
// resolved placement for scheduler-routed requests, "fleet" for classic
// multi-GPU dispatch, "classic" for plain engine dispatch. Returns only
// static or already-allocated strings — the hot path must not allocate.
func placementLabel(resp *Response) string {
	switch {
	case resp.Placement != "":
		return resp.Placement
	case resp.GPUs > 0:
		return "fleet"
	default:
		return "classic"
	}
}

// hybridExecAccum accumulates one scheduler executor's served traffic
// across placement-routed requests (keyed by kind and device index).
type hybridExecAccum struct {
	kind         string
	device       int
	requests     int64
	morsels      int64
	pruned       int64
	rows         int64
	shipBytes    int64
	residentCols int64
	simSeconds   float64
}

// fleetDeviceAccum accumulates one fleet device's served traffic.
type fleetDeviceAccum struct {
	requests     int64
	morsels      int64
	pruned       int64
	rows         int64
	spillBytes   int64
	residentCols int64
	simSeconds   float64
}

// statsAccum is the service-internal running tally.
type statsAccum struct {
	requests      int64
	named         int64
	adhoc         int64
	partitioned   int64
	morsels       int64
	pruned        int64
	packed        int64
	transferBytes int64
	residentCols  int64
	errors        int64
	planHits      int64
	planMisses    int64
	resultHits    int64
	resultMisses  int64
	engines       map[queries.Engine]*engineAccum

	// Overload discipline: shed counts submissions refused or evicted
	// with ErrOverloaded (never executed, so not in requests), expired
	// counts jobs dropped at worker pickup past their deadline, and
	// coalesced counts responses that shared a concurrent identical
	// request's execution (a subset of requests).
	shed      int64
	expired   int64
	coalesced int64

	// Shared-scan batching: batches counts batch executions, batchedRequests
	// the responses that rode one (a subset of requests), and the byte pair
	// the scan traffic the batches actually streamed versus what the members'
	// solo scans would have — shared < solo is the batching win.
	batches          int64
	batchedRequests  int64
	batchSharedBytes int64
	batchSoloBytes   int64

	// Fleet tallies: request-level totals plus the per-device breakdown.
	// The per-device entries always sum to the totals — the invariant the
	// regression test pins.
	fleetRequests     int64
	fleetMorsels      int64
	fleetPruned       int64
	fleetRows         int64
	fleetSpillBytes   int64
	fleetResidentCols int64
	fleetMergeBytes   int64
	fleetDevices      []fleetDeviceAccum

	// Placement tallies: request-level totals plus the per-executor
	// breakdown, mirroring the fleet pair. The per-executor entries always
	// sum to the totals — the invariant TestHybridStatsSumToTotals pins.
	placements        map[string]int64
	hybridRequests    int64
	hybridMorsels     int64
	hybridPruned      int64
	hybridRows        int64
	hybridShipBytes   int64
	hybridResidentCol int64
	hybridMergeBytes  int64
	hybridExecutors   map[string]*hybridExecAccum

	// latency is the per-(engine alias, placement label) histogram grid.
	// Two map levels instead of a joined key so the steady-state record
	// path performs no string concatenation (and therefore no allocation).
	latency map[string]map[string]*latencyAccum
}

// executorLabel names one scheduler executor for the stats breakdown:
// the kind alone for host executors ("cpu"), kind plus device index for
// fleet devices ("gpu0", "gpu1", ...).
func executorLabel(er queries.ExecutorResult) string {
	if er.Device < 0 {
		return string(er.Kind)
	}
	return fmt.Sprintf("%s%d", er.Kind, er.Device)
}

func (a *statsAccum) record(resp Response) {
	a.requests++
	if resp.Adhoc {
		a.adhoc++
	} else {
		a.named++
	}
	// Fleet requests carry a normalized Partitions >= GPUs; their morsel
	// and pruning tallies live under the fleet counters below, not here.
	if resp.Request.Partitions > 0 && resp.GPUs == 0 {
		a.partitioned++
		a.morsels += int64(resp.Morsels)
		a.pruned += int64(resp.Pruned)
	}
	if resp.Packed {
		a.packed++
		// Fleet spill traffic and elisions are tallied under the fleet
		// counters below; adding them here too would double-report the
		// bytes and mislabel interconnect traffic as coprocessor PCIe.
		if resp.GPUs == 0 {
			a.transferBytes += resp.TransferBytes
			a.residentCols += int64(resp.ResidentCols)
		}
	}
	if resp.Placement != "" {
		// Placement-routed traffic: the GPUs echo names the GPU arm's
		// fleet size, not classic fleet dispatch, so it is tallied here
		// and never under the fleet counters below.
		if a.placements == nil {
			a.placements = map[string]int64{}
		}
		a.placements[resp.Placement]++
		a.hybridRequests++
		a.hybridMergeBytes += resp.MergeBytes
		if a.hybridExecutors == nil {
			a.hybridExecutors = map[string]*hybridExecAccum{}
		}
		for _, er := range resp.Executors {
			label := executorLabel(er)
			h := a.hybridExecutors[label]
			if h == nil {
				h = &hybridExecAccum{kind: string(er.Kind), device: er.Device}
				a.hybridExecutors[label] = h
			}
			h.requests++
			h.morsels += int64(er.Morsels)
			h.pruned += int64(er.Pruned)
			h.rows += er.Rows
			h.shipBytes += er.ShipBytes
			h.residentCols += int64(er.ResidentCols)
			h.simSeconds += er.Seconds
			a.hybridMorsels += int64(er.Morsels)
			a.hybridPruned += int64(er.Pruned)
			a.hybridRows += er.Rows
			a.hybridShipBytes += er.ShipBytes
			a.hybridResidentCol += int64(er.ResidentCols)
		}
	} else if resp.GPUs > 0 {
		a.fleetRequests++
		a.fleetMergeBytes += resp.MergeBytes
		for len(a.fleetDevices) < len(resp.Devices) {
			a.fleetDevices = append(a.fleetDevices, fleetDeviceAccum{})
		}
		for _, fd := range resp.Devices {
			d := &a.fleetDevices[fd.Device]
			d.requests++
			d.morsels += int64(fd.Morsels)
			d.pruned += int64(fd.Pruned)
			d.rows += fd.Rows
			d.spillBytes += fd.SpillBytes
			d.residentCols += int64(fd.ResidentCols)
			d.simSeconds += fd.Seconds
			a.fleetMorsels += int64(fd.Morsels)
			a.fleetPruned += int64(fd.Pruned)
			a.fleetRows += fd.Rows
			a.fleetSpillBytes += fd.SpillBytes
			a.fleetResidentCols += int64(fd.ResidentCols)
		}
	}
	if resp.PlanCached {
		a.planHits++
	} else {
		a.planMisses++
	}
	if resp.Coalesced {
		a.coalesced++
	}
	if resp.Batched {
		a.batchedRequests++
	}
	if resp.ResultCached {
		a.resultHits++
	} else {
		a.resultMisses++
	}
	e := a.engines[resp.Request.Engine]
	if e == nil {
		e = &engineAccum{}
		a.engines[resp.Request.Engine] = e
	}
	e.requests++
	e.simSeconds += resp.SimSeconds
	e.wallSeconds += resp.Wall.Seconds()

	alias := EngineAlias(resp.Request.Engine)
	place := placementLabel(&resp)
	if a.latency == nil {
		a.latency = map[string]map[string]*latencyAccum{}
	}
	byPlace := a.latency[alias]
	if byPlace == nil {
		byPlace = map[string]*latencyAccum{}
		a.latency[alias] = byPlace
	}
	l := byPlace[place]
	if l == nil {
		l = &latencyAccum{}
		byPlace[place] = l
	}
	l.requests++
	l.wall.Observe(resp.Wall.Seconds())
	l.queue.Observe(resp.QueueWait.Seconds())
	l.sim.Observe(resp.SimSeconds)
}

// snapshot deep-copies the accumulator so Stats and the metrics
// exposition can render without holding statsMu: every map, slice and
// histogram is cloned in this one critical section — the single-lock
// snapshot that makes multi-field aggregates (counts vs. their sums,
// per-executor rows vs. totals) mutually consistent in the copy.
func (a *statsAccum) snapshot() statsAccum {
	out := *a
	out.engines = make(map[queries.Engine]*engineAccum, len(a.engines))
	for k, v := range a.engines {
		c := *v
		out.engines[k] = &c
	}
	out.fleetDevices = append([]fleetDeviceAccum(nil), a.fleetDevices...)
	if a.placements != nil {
		out.placements = make(map[string]int64, len(a.placements))
		for k, v := range a.placements {
			out.placements[k] = v
		}
	}
	if a.hybridExecutors != nil {
		out.hybridExecutors = make(map[string]*hybridExecAccum, len(a.hybridExecutors))
		for k, v := range a.hybridExecutors {
			c := *v
			out.hybridExecutors[k] = &c
		}
	}
	if a.latency != nil {
		out.latency = make(map[string]map[string]*latencyAccum, len(a.latency))
		for alias, byPlace := range a.latency {
			cp := make(map[string]*latencyAccum, len(byPlace))
			for place, l := range byPlace {
				c := *l // trace.Histogram is a value: copying clones the counts
				cp[place] = &c
			}
			out.latency[alias] = cp
		}
	}
	return out
}

// FleetDeviceStats reports one fleet device's served traffic: every fleet
// request it participated in, what it was assigned and scanned, and its
// share of the simulated device time and spill traffic.
type FleetDeviceStats struct {
	Device       int     `json:"device"`
	Requests     int64   `json:"requests"`
	Morsels      int64   `json:"morsels"`
	Pruned       int64   `json:"pruned"`
	Rows         int64   `json:"rows"`
	SpillBytes   int64   `json:"spill_bytes"`
	ResidentCols int64   `json:"resident_cols"`
	SimSeconds   float64 `json:"sim_seconds"`
}

// HybridExecutorStats reports one scheduler executor's served traffic
// across placement-routed requests: the placement-routed requests it
// executed morsels for, what it scanned, its interconnect shipment and
// its share of the simulated time.
type HybridExecutorStats struct {
	// Label names the executor ("cpu", "gpu0", "gpu1", ...); Kind and
	// Device are its structured identity (Device is -1 for host executors).
	Label        string  `json:"label"`
	Kind         string  `json:"kind"`
	Device       int     `json:"device"`
	Requests     int64   `json:"requests"`
	Morsels      int64   `json:"morsels"`
	Pruned       int64   `json:"pruned"`
	Rows         int64   `json:"rows"`
	ShipBytes    int64   `json:"ship_bytes"`
	ResidentCols int64   `json:"resident_cols"`
	SimSeconds   float64 `json:"sim_seconds"`
}

// EngineStats reports one engine's served traffic: how much simulated
// device time it accounted for versus the wall-clock time the host spent
// producing it (caching and concurrency only affect the latter).
type EngineStats struct {
	Engine   queries.Engine `json:"engine"`
	Alias    string         `json:"alias"`
	Requests int64          `json:"requests"`
	// SimMS and WallMS are the mean per-request latencies in milliseconds.
	SimMS  float64 `json:"sim_ms"`
	WallMS float64 `json:"wall_ms"`
}

// LatencyStats reports one (engine, placement) cell's latency
// distribution: request count and p50/p95/p99 percentiles (milliseconds,
// linear interpolation within the log buckets) for the execution wall
// clock, the queue wait and the simulated seconds. Gating and the bench
// tables stay on means; percentiles are observability surface only.
type LatencyStats struct {
	Engine     string  `json:"engine"`
	Placement  string  `json:"placement"`
	Requests   int64   `json:"requests"`
	WallP50MS  float64 `json:"wall_p50_ms"`
	WallP95MS  float64 `json:"wall_p95_ms"`
	WallP99MS  float64 `json:"wall_p99_ms"`
	QueueP50MS float64 `json:"queue_p50_ms"`
	QueueP95MS float64 `json:"queue_p95_ms"`
	QueueP99MS float64 `json:"queue_p99_ms"`
	SimP50MS   float64 `json:"sim_p50_ms"`
	SimP95MS   float64 `json:"sim_p95_ms"`
	SimP99MS   float64 `json:"sim_p99_ms"`
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Version  string `json:"version"`
	Workers  int    `json:"workers"`
	Requests int64  `json:"requests"`
	// NamedRequests and AdhocRequests split successful traffic between
	// catalog queries (QueryID) and the SQL frontend.
	NamedRequests int64 `json:"named_requests"`
	AdhocRequests int64 `json:"adhoc_requests"`
	Errors        int64 `json:"errors"`

	// Overload discipline. Shed counts submissions refused or evicted
	// with ErrOverloaded under Options.Shed; Expired counts jobs dropped
	// at worker pickup because their Deadline elapsed in the queue.
	// Neither executes, so neither is included in Requests — the total
	// offered load is Requests + Shed + Expired. Coalesced counts
	// responses (a subset of Requests) that rode a concurrent identical
	// request's execution instead of running their own; CoalesceRate is
	// their fraction of Requests. Pending is the point-in-time depth of
	// the admission queue.
	Shed         int64   `json:"shed"`
	Expired      int64   `json:"expired"`
	Coalesced    int64   `json:"coalesced"`
	CoalesceRate float64 `json:"coalesce_rate"`
	Pending      int     `json:"pending"`

	// Shared-scan batching (Options.MaxBatch). Batches counts batch
	// executions and BatchedRequests the responses that rode one (a subset
	// of Requests; BatchRate is their fraction). BatchSharedScanBytes is the
	// scan traffic the batches actually streamed — each shared line charged
	// once — and BatchSoloScanBytes what the members' solo scans would have
	// streamed; the gap is the traffic batching deduplicated.
	Batches              int64   `json:"batches"`
	BatchedRequests      int64   `json:"batched_requests"`
	BatchRate            float64 `json:"batch_rate"`
	BatchSharedScanBytes int64   `json:"batch_shared_scan_bytes"`
	BatchSoloScanBytes   int64   `json:"batch_solo_scan_bytes"`

	// PartitionedRequests counts requests that asked for morsel-driven
	// execution; Morsels and PrunedMorsels tally their fact-scan partitions
	// and how many of those zone maps skipped. PruneRate is the fraction
	// skipped — on uniform data it stays 0 (and simulated seconds match the
	// monolithic runs exactly); on clustered data it is the scan work the
	// service never did.
	PartitionedRequests int64   `json:"partitioned_requests"`
	Morsels             int64   `json:"morsels"`
	PrunedMorsels       int64   `json:"pruned_morsels"`
	PruneRate           float64 `json:"prune_rate"`

	// PackedRequests counts requests that scanned the bit-packed fact
	// encoding; TransferBytes tallies the PCIe traffic their coprocessor
	// runs actually shipped and ResidentCols the column transfers the
	// device residency cache elided.
	PackedRequests int64 `json:"packed_requests"`
	TransferBytes  int64 `json:"transfer_bytes"`
	ResidentCols   int64 `json:"resident_cols"`

	// Fleet routing: request-level totals plus the per-device breakdown.
	// The FleetDevices entries sum exactly to the Fleet* totals (pinned by
	// a regression test) — a device that drifts from its peers shows up
	// here before it shows up as a latency regression.
	FleetRequests     int64              `json:"fleet_requests"`
	FleetMorsels      int64              `json:"fleet_morsels"`
	FleetPruned       int64              `json:"fleet_pruned"`
	FleetRows         int64              `json:"fleet_rows"`
	FleetSpillBytes   int64              `json:"fleet_spill_bytes"`
	FleetResidentCols int64              `json:"fleet_resident_cols"`
	FleetMergeBytes   int64              `json:"fleet_merge_bytes"`
	FleetDevices      []FleetDeviceStats `json:"fleet_devices,omitempty"`

	// Placement routing: how many requests resolved to each placement
	// ("auto" requests count under what the planner chose), the
	// request-level totals, and the per-executor breakdown. The
	// HybridExecutors entries sum exactly to the Hybrid* totals (pinned by
	// a regression test), so a starved or overloaded arm is visible here
	// before it shows up as a latency regression.
	PlacementRequests  map[string]int64      `json:"placement_requests,omitempty"`
	HybridRequests     int64                 `json:"hybrid_requests"`
	HybridMorsels      int64                 `json:"hybrid_morsels"`
	HybridPruned       int64                 `json:"hybrid_pruned"`
	HybridRows         int64                 `json:"hybrid_rows"`
	HybridShipBytes    int64                 `json:"hybrid_ship_bytes"`
	HybridResidentCols int64                 `json:"hybrid_resident_cols"`
	HybridMergeBytes   int64                 `json:"hybrid_merge_bytes"`
	HybridExecutors    []HybridExecutorStats `json:"hybrid_executors,omitempty"`

	// Device residency cache: capacity and occupancy of the simulated GPU
	// memory pinning packed columns, plus its hit/miss/eviction counters.
	// All zero when the cache is disabled.
	DeviceCacheCapBytes  int64   `json:"device_cache_cap_bytes"`
	DeviceCacheUsedBytes int64   `json:"device_cache_used_bytes"`
	DeviceCacheCols      int     `json:"device_cache_cols"`
	ResidentHits         int64   `json:"resident_hits"`
	ResidentMisses       int64   `json:"resident_misses"`
	ResidentEvictions    int64   `json:"resident_evictions"`
	ResidencyHitRate     float64 `json:"residency_hit_rate"`

	PlanHits      int64   `json:"plan_hits"`
	PlanMisses    int64   `json:"plan_misses"`
	PlanHitRate   float64 `json:"plan_hit_rate"`
	CachedPlans   int     `json:"cached_plans"`
	ResultHits    int64   `json:"result_hits"`
	ResultMisses  int64   `json:"result_misses"`
	ResultHitRate float64 `json:"result_hit_rate"`
	CachedResults int     `json:"cached_results"`

	Engines []EngineStats `json:"engines"`

	// Latency is the per-(engine, placement) latency percentile grid,
	// sorted by engine then placement for stable output.
	Latency []LatencyStats `json:"latency,omitempty"`
}

// snapshotStats deep-copies the running tally under a single statsMu
// acquisition. Stats and the metrics exposition render from the copy, so
// concurrent recordStats calls can never tear a multi-field aggregate in
// flight.
func (s *Service) snapshotStats() statsAccum {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats.snapshot()
}

// Stats snapshots the current counters. All tallies come from one
// single-lock snapshot of the accumulator; the dataset version and cache
// occupancies are single fields read under their own locks.
func (s *Service) Stats() Stats {
	out := Stats{Workers: s.opts.Workers}
	s.mu.RLock()
	out.Version = s.version
	s.mu.RUnlock()
	s.cacheMu.Lock()
	out.CachedPlans = s.plans.len()
	out.CachedResults = s.results.len()
	s.cacheMu.Unlock()
	st := s.snapshotStats()
	out.Requests = st.requests
	out.NamedRequests = st.named
	out.AdhocRequests = st.adhoc
	out.Shed = st.shed
	out.Expired = st.expired
	out.Coalesced = st.coalesced
	if st.requests > 0 {
		out.CoalesceRate = float64(st.coalesced) / float64(st.requests)
	}
	out.Pending = s.queue.len()
	out.Batches = st.batches
	out.BatchedRequests = st.batchedRequests
	if st.requests > 0 {
		out.BatchRate = float64(st.batchedRequests) / float64(st.requests)
	}
	out.BatchSharedScanBytes = st.batchSharedBytes
	out.BatchSoloScanBytes = st.batchSoloBytes
	out.PartitionedRequests = st.partitioned
	out.Morsels = st.morsels
	out.PrunedMorsels = st.pruned
	out.PruneRate = rate(st.pruned, st.morsels-st.pruned)
	out.PackedRequests = st.packed
	out.TransferBytes = st.transferBytes
	out.ResidentCols = st.residentCols
	out.FleetRequests = st.fleetRequests
	out.FleetMorsels = st.fleetMorsels
	out.FleetPruned = st.fleetPruned
	out.FleetRows = st.fleetRows
	out.FleetSpillBytes = st.fleetSpillBytes
	out.FleetResidentCols = st.fleetResidentCols
	out.FleetMergeBytes = st.fleetMergeBytes
	for d, a := range st.fleetDevices {
		out.FleetDevices = append(out.FleetDevices, FleetDeviceStats{
			Device:       d,
			Requests:     a.requests,
			Morsels:      a.morsels,
			Pruned:       a.pruned,
			Rows:         a.rows,
			SpillBytes:   a.spillBytes,
			ResidentCols: a.residentCols,
			SimSeconds:   a.simSeconds,
		})
	}
	if len(st.placements) > 0 {
		out.PlacementRequests = st.placements // snapshot's own copy
	}
	out.HybridRequests = st.hybridRequests
	out.HybridMorsels = st.hybridMorsels
	out.HybridPruned = st.hybridPruned
	out.HybridRows = st.hybridRows
	out.HybridShipBytes = st.hybridShipBytes
	out.HybridResidentCols = st.hybridResidentCol
	out.HybridMergeBytes = st.hybridMergeBytes
	for label, h := range st.hybridExecutors {
		out.HybridExecutors = append(out.HybridExecutors, HybridExecutorStats{
			Label:        label,
			Kind:         h.kind,
			Device:       h.device,
			Requests:     h.requests,
			Morsels:      h.morsels,
			Pruned:       h.pruned,
			Rows:         h.rows,
			ShipBytes:    h.shipBytes,
			ResidentCols: h.residentCols,
			SimSeconds:   h.simSeconds,
		})
	}
	// Host executors first, then GPU arms by device index: stable output.
	sort.Slice(out.HybridExecutors, func(i, j int) bool {
		a, b := out.HybridExecutors[i], out.HybridExecutors[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.Label < b.Label
	})
	if s.devCache != nil {
		dc := s.devCache.snapshot()
		out.DeviceCacheCapBytes = dc.capacity
		out.DeviceCacheUsedBytes = dc.used
		out.DeviceCacheCols = dc.cols
		out.ResidentHits = dc.hits
		out.ResidentMisses = dc.misses
		out.ResidentEvictions = dc.evictions
		out.ResidencyHitRate = rate(dc.hits, dc.misses)
	}
	out.Errors = st.errors
	out.PlanHits = st.planHits
	out.PlanMisses = st.planMisses
	out.ResultHits = st.resultHits
	out.ResultMisses = st.resultMisses
	out.PlanHitRate = rate(out.PlanHits, out.PlanMisses)
	out.ResultHitRate = rate(out.ResultHits, out.ResultMisses)
	// Report engines in the fixed evaluation order so output is stable.
	for _, e := range queries.Engines() {
		a := st.engines[e]
		if a == nil {
			continue
		}
		out.Engines = append(out.Engines, EngineStats{
			Engine:   e,
			Alias:    EngineAlias(e),
			Requests: a.requests,
			SimMS:    a.simSeconds / float64(a.requests) * 1e3,
			WallMS:   a.wallSeconds / float64(a.requests) * 1e3,
		})
	}
	for _, cell := range sortedLatency(st.latency) {
		l := cell.acc
		out.Latency = append(out.Latency, LatencyStats{
			Engine:     cell.engine,
			Placement:  cell.placement,
			Requests:   l.requests,
			WallP50MS:  l.wall.Quantile(0.50) * 1e3,
			WallP95MS:  l.wall.Quantile(0.95) * 1e3,
			WallP99MS:  l.wall.Quantile(0.99) * 1e3,
			QueueP50MS: l.queue.Quantile(0.50) * 1e3,
			QueueP95MS: l.queue.Quantile(0.95) * 1e3,
			QueueP99MS: l.queue.Quantile(0.99) * 1e3,
			SimP50MS:   l.sim.Quantile(0.50) * 1e3,
			SimP95MS:   l.sim.Quantile(0.95) * 1e3,
			SimP99MS:   l.sim.Quantile(0.99) * 1e3,
		})
	}
	return out
}

// latencyCell is one (engine, placement) histogram cell in sorted order.
type latencyCell struct {
	engine, placement string
	acc               *latencyAccum
}

// sortedLatency flattens the latency grid sorted by engine then placement
// so every rendering (Stats JSON, Prometheus exposition) is stable.
func sortedLatency(grid map[string]map[string]*latencyAccum) []latencyCell {
	var out []latencyCell
	for engine, byPlace := range grid {
		for place, acc := range byPlace {
			out = append(out, latencyCell{engine: engine, placement: place, acc: acc})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].engine != out[j].engine {
			return out[i].engine < out[j].engine
		}
		return out[i].placement < out[j].placement
	})
	return out
}

// Table renders the per-engine latency split with the repo's reporting
// harness: requests served, mean simulated device time, and mean host
// wall-clock time per engine.
func (st Stats) Table() *bench.Table {
	tb := &bench.Table{
		Title:   "served engines (dataset " + st.Version + ")",
		Columns: []string{"requests", "sim ms", "wall ms"},
		NoMean:  true,
	}
	for _, e := range st.Engines {
		tb.AddRow(e.Alias, float64(e.Requests), e.SimMS, e.WallMS)
	}
	return tb
}

func rate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
