package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"crystal/internal/queries"
	"crystal/internal/queries/queriestest"
)

// TestPlacementRequests covers the placement routing basics: a placement
// request is row-identical to the classic GPU request, echoes its resolved
// placement and per-executor telemetry, and caches under its own placement
// key — distinct placements (and the classic dispatch) never collide.
func TestPlacementRequests(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	classic, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: queries.EngineGPU})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := s.Do(ctx, Request{QueryID: "q2.1", Placement: "hybrid", Interconnect: "nvlink"})
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRows(t, "hybrid placement vs classic GPU", hybrid.Result, classic.Result)
	if hybrid.Placement != PlacementHybrid {
		t.Errorf("placement echo = %q, want hybrid", hybrid.Placement)
	}
	if hybrid.GPUs != 1 || hybrid.Interconnect != "nvlink" {
		t.Errorf("GPU arm shape = %d/%q, want the 1-GPU nvlink default", hybrid.GPUs, hybrid.Interconnect)
	}
	if len(hybrid.Executors) < 2 {
		t.Fatalf("%d executors, want the CPU arm plus at least one GPU arm", len(hybrid.Executors))
	}
	if hybrid.CPUFrac <= 0 || hybrid.CPUFrac >= 1 {
		t.Errorf("resolved CPU fraction %v not a genuine split", hybrid.CPUFrac)
	}
	if hybrid.ResultCached {
		t.Error("first placement request served from cache")
	}

	// Identical request: a result-cache hit with the telemetry intact.
	again, err := s.Do(ctx, Request{QueryID: "q2.1", Placement: "hybrid", Interconnect: "nvlink"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.ResultCached {
		t.Error("repeated placement request missed the result cache")
	}
	if again.Placement != hybrid.Placement || again.CPUFrac != hybrid.CPUFrac ||
		len(again.Executors) != len(hybrid.Executors) || again.MergeBytes != hybrid.MergeBytes {
		t.Error("cached placement replay lost its telemetry")
	}
	queriestest.SameRun(t, "cached placement replay", again.Result, hybrid.Result)

	// A different placement on the same query is a different physical
	// execution: plan shared, result recomputed.
	cpu, err := s.Do(ctx, Request{QueryID: "q2.1", Placement: "cpu", Interconnect: "nvlink"})
	if err != nil {
		t.Fatal(err)
	}
	if !cpu.PlanCached || cpu.ResultCached {
		t.Errorf("cpu placement: PlanCached=%v ResultCached=%v, want plan hit + result miss",
			cpu.PlanCached, cpu.ResultCached)
	}
	if cpu.Placement != PlacementCPU {
		t.Errorf("cpu placement echo = %q", cpu.Placement)
	}
	queriestest.SameRows(t, "cpu placement rows", cpu.Result, classic.Result)

	// The pure-GPU placement ships every referenced column: unlike the
	// device-resident classic dispatch, its transfer traffic is positive.
	gpu, err := s.Do(ctx, Request{QueryID: "q2.1", Placement: "gpu", Interconnect: "nvlink"})
	if err != nil {
		t.Fatal(err)
	}
	if gpu.ResultCached {
		t.Error("gpu placement hit another placement's entry")
	}
	if gpu.TransferBytes <= 0 {
		t.Error("host-resident gpu placement shipped nothing")
	}
	queriestest.SameRows(t, "gpu placement rows", gpu.Result, classic.Result)
}

// TestPlacementRequestErrors pins the request validation: unknown
// placements, engines other than the Standalone GPU, and unknown
// interconnects are rejected and counted.
func TestPlacementRequestErrors(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1})
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Do(ctx, Request{QueryID: "q1.1", Placement: "tpu"}); err == nil {
		t.Error("unknown placement accepted")
	}
	if _, err := s.Do(ctx, Request{QueryID: "q1.1", Placement: "hybrid", Engine: queries.EngineCPU}); err == nil {
		t.Error("placement request with a non-GPU engine accepted")
	}
	if _, err := s.Do(ctx, Request{QueryID: "q1.1", Placement: "hybrid", Interconnect: "infiniband"}); err == nil {
		t.Error("unknown interconnect accepted on a placement request")
	}
	// The Standalone GPU engine is the one explicit engine placement
	// routing accepts — it is the engine the GPU arms run.
	resp, err := s.Do(ctx, Request{QueryID: "q1.1", Placement: "hybrid", Engine: queries.EngineGPU})
	if err != nil {
		t.Fatalf("explicit GPU engine rejected: %v", err)
	}
	if resp.Placement != PlacementHybrid {
		t.Errorf("placement echo = %q", resp.Placement)
	}
	if st := s.Stats(); st.Errors != 3 {
		t.Errorf("stats recorded %d errors, want 3", st.Errors)
	}
}

func TestParsePlacement(t *testing.T) {
	for in, want := range map[string]string{
		"auto": PlacementAuto, "cpu": PlacementCPU, "gpu": PlacementGPU,
		"hybrid": PlacementHybrid, " Hybrid ": PlacementHybrid, "AUTO": PlacementAuto,
	} {
		got, err := ParsePlacement(in)
		if err != nil || got != want {
			t.Errorf("ParsePlacement(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParsePlacement("fpga"); err == nil || !strings.Contains(err.Error(), "hybrid") {
		t.Errorf("ParsePlacement(fpga) error %v should name the valid placements", err)
	}
}

// TestAutoPlacementResolved: an "auto" request reports the placement the
// planner chose (never the literal "auto"), and the choice is
// deterministic per generation — which is what lets auto responses cache.
func TestAutoPlacementResolved(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	first, err := s.Do(ctx, Request{QueryID: "q1.1", Placement: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	switch first.Placement {
	case PlacementCPU, PlacementGPU, PlacementHybrid:
	default:
		t.Fatalf("auto resolved to %q, want a concrete placement", first.Placement)
	}
	again, err := s.Do(ctx, Request{QueryID: "q1.1", Placement: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.ResultCached {
		t.Error("repeated auto request missed the result cache")
	}
	if again.Placement != first.Placement {
		t.Errorf("auto replay resolved %q, first run resolved %q", again.Placement, first.Placement)
	}
	// The stats tally counts auto traffic under what the planner chose.
	if st := s.Stats(); st.PlacementRequests[first.Placement] != 2 || st.PlacementRequests[PlacementAuto] != 0 {
		t.Errorf("placement tally = %v, want 2 under %q and none under auto",
			st.PlacementRequests, first.Placement)
	}
}

// TestPlacementConcurrentSubmissions floods one Service with mixed
// Placement values from many client goroutines (run under -race in CI):
// every response must be row-identical to the sequential reference,
// whatever placement produced it.
func TestPlacementConcurrentSubmissions(t *testing.T) {
	ds := testData()
	s := New(ds, "v1", Options{Workers: 4, MorselHelpers: 2})
	defer s.Close()

	ids := []string{"q1.1", "q2.1", "q3.2"}
	refs := map[string]*queries.Result{}
	for _, id := range ids {
		q := mustQuery(t, id)
		refs[id] = queries.Reference(ds, q)
	}
	placements := []string{"auto", "cpu", "gpu", "hybrid"}
	links := []string{"pcie", "nvlink"}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				req := Request{
					QueryID:      ids[(c+i)%len(ids)],
					Placement:    placements[(c+3*i)%len(placements)],
					GPUs:         1 + (c+i)%2,
					Interconnect: links[(c+i)%len(links)],
					Packed:       i%3 == 0,
					NoCache:      i%2 == 0,
				}
				resp, err := s.Do(context.Background(), req)
				if err != nil {
					errs <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				if !resp.Result.Equal(refs[req.QueryID]) {
					errs <- fmt.Errorf("client %d: %s placed %s diverged from reference", c, req.QueryID, req.Placement)
					return
				}
				if resp.Placement == "" || resp.Placement == PlacementAuto {
					errs <- fmt.Errorf("client %d: unresolved placement %q", c, resp.Placement)
					return
				}
				if len(resp.Executors) == 0 {
					errs <- fmt.Errorf("client %d: placement response carried no executors", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if want := int64(clients * 12); st.HybridRequests != want {
		t.Errorf("placement requests = %d, want %d", st.HybridRequests, want)
	}
	var resolved int64
	for _, n := range st.PlacementRequests {
		resolved += n
	}
	if resolved != st.HybridRequests {
		t.Errorf("placement tallies sum to %d, %d requests routed", resolved, st.HybridRequests)
	}
}

// TestHybridStatsSumToTotals is the regression gate for the per-executor
// breakdown: across a mix of placements (including a cache hit), the
// per-executor /stats counters must sum exactly to the hybrid totals, the
// totals must match what the responses reported, and none of it may leak
// into the fleet counters.
func TestHybridStatsSumToTotals(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	var wantRequests, wantMorsels, wantRows, wantShip, wantMerge int64
	for _, req := range []Request{
		{QueryID: "q1.1", Placement: "hybrid"},
		{QueryID: "q1.1", Placement: "hybrid", GPUs: 2, Interconnect: "nvlink"},
		{QueryID: "q2.1", Placement: "cpu"},
		{QueryID: "q2.1", Placement: "gpu", Interconnect: "nvlink"},
		{QueryID: "q2.1", Placement: "auto"},
		{QueryID: "q1.1", Placement: "hybrid"}, // cache hit: still counted
	} {
		resp, err := s.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		wantRequests++
		wantMerge += resp.MergeBytes
		for _, er := range resp.Executors {
			wantMorsels += int64(er.Morsels)
			wantRows += er.Rows
			wantShip += er.ShipBytes
		}
	}

	st := s.Stats()
	if st.HybridRequests != wantRequests {
		t.Errorf("hybrid requests = %d, want %d", st.HybridRequests, wantRequests)
	}
	if st.HybridMorsels != wantMorsels || st.HybridRows != wantRows {
		t.Errorf("hybrid totals = %d morsels / %d rows, responses say %d / %d",
			st.HybridMorsels, st.HybridRows, wantMorsels, wantRows)
	}
	if st.HybridShipBytes != wantShip || st.HybridMergeBytes != wantMerge {
		t.Errorf("hybrid traffic = %d ship / %d merge, responses say %d / %d",
			st.HybridShipBytes, st.HybridMergeBytes, wantShip, wantMerge)
	}
	var exMorsels, exPruned, exRows, exShip, exResident int64
	var exSeconds float64
	for _, ex := range st.HybridExecutors {
		exMorsels += ex.Morsels
		exPruned += ex.Pruned
		exRows += ex.Rows
		exShip += ex.ShipBytes
		exResident += ex.ResidentCols
		exSeconds += ex.SimSeconds
	}
	if exMorsels != st.HybridMorsels {
		t.Errorf("per-executor morsels sum to %d, total says %d", exMorsels, st.HybridMorsels)
	}
	if exPruned != st.HybridPruned {
		t.Errorf("per-executor pruned sum to %d, total says %d", exPruned, st.HybridPruned)
	}
	if exRows != st.HybridRows {
		t.Errorf("per-executor rows sum to %d, total says %d", exRows, st.HybridRows)
	}
	if exShip != st.HybridShipBytes {
		t.Errorf("per-executor ship bytes sum to %d, total says %d", exShip, st.HybridShipBytes)
	}
	if exResident != st.HybridResidentCols {
		t.Errorf("per-executor resident cols sum to %d, total says %d", exResident, st.HybridResidentCols)
	}
	if exSeconds <= 0 {
		t.Error("per-executor simulated seconds not accumulated")
	}
	// Stable breakdown order: host executors (Device -1) before GPU arms.
	if len(st.HybridExecutors) < 3 {
		t.Fatalf("%d executor rows, want at least cpu + gpu0 + gpu1", len(st.HybridExecutors))
	}
	if st.HybridExecutors[0].Label != "cpu" || st.HybridExecutors[1].Label != "gpu0" {
		t.Errorf("executor order = %q, %q, ...; want cpu first, then gpu arms",
			st.HybridExecutors[0].Label, st.HybridExecutors[1].Label)
	}
	// Placement traffic is tallied under the hybrid counters exclusively:
	// the GPUs echo names the GPU arm's size, not classic fleet dispatch.
	if st.FleetRequests != 0 || st.FleetMorsels != 0 {
		t.Errorf("placement traffic leaked into fleet counters: %d requests / %d morsels",
			st.FleetRequests, st.FleetMorsels)
	}
	var resolved int64
	for _, n := range st.PlacementRequests {
		resolved += n
	}
	if resolved != st.HybridRequests {
		t.Errorf("placement tallies sum to %d, %d requests routed", resolved, st.HybridRequests)
	}
}
