package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"crystal/internal/queries"
	"crystal/internal/queries/queriestest"
	"crystal/internal/ssb"
)

var (
	dsOnce sync.Once
	testDS *ssb.Dataset
)

// testData is a small dataset shared across tests; serving-layer behavior
// does not depend on scale.
func testData() *ssb.Dataset {
	dsOnce.Do(func() { testDS = ssb.GenerateRows(1 << 12) })
	return testDS
}

// allRequests is every (query, engine) pair: 13 x 6 = 78 requests.
func allRequests() []Request {
	var reqs []Request
	for _, q := range queries.All() {
		for _, e := range queries.Engines() {
			reqs = append(reqs, Request{QueryID: q.ID, Engine: e})
		}
	}
	return reqs
}

// TestEquivalenceWithSequentialRun is the tentpole correctness gate: all 13
// queries on all 6 engines, dispatched concurrently across >= 4 workers,
// must return row-for-row (and simulated-second) identical results to
// sequential queries.Run.
func TestEquivalenceWithSequentialRun(t *testing.T) {
	ds := testData()
	workers := 4
	s := New(ds, "v1", Options{Workers: workers})
	defer s.Close()
	if s.Workers() < 4 {
		t.Fatalf("want >= 4 workers, got %d", s.Workers())
	}

	reqs := allRequests()
	resps, err := s.RunAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("request %+v failed: %v", reqs[i], resp.Err)
		}
		q, err := queries.ByID(reqs[i].QueryID)
		if err != nil {
			t.Fatal(err)
		}
		want := queries.Run(ds, q, reqs[i].Engine)
		queriestest.SameRun(t, fmt.Sprintf("%s on %s served", q.ID, reqs[i].Engine), resp.Result, want)
	}
	st := s.Stats()
	if st.Requests != int64(len(reqs)) {
		t.Errorf("stats recorded %d requests, want %d", st.Requests, len(reqs))
	}
	if st.Errors != 0 {
		t.Errorf("stats recorded %d errors, want 0", st.Errors)
	}
}

// TestConcurrentSubmission hammers the pool from many client goroutines at
// once (run under -race in CI): every response must match the reference.
func TestConcurrentSubmission(t *testing.T) {
	ds := testData()
	s := New(ds, "v1", Options{Workers: 8})
	defer s.Close()

	refs := map[string]*queries.Result{}
	for _, q := range queries.All() {
		refs[q.ID] = queries.Reference(ds, q)
	}

	reqs := allRequests()
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range reqs {
				req := reqs[(i+c)%len(reqs)]
				resp, err := s.Do(context.Background(), req)
				if err != nil {
					errs <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				if !resp.Result.Equal(refs[req.QueryID]) {
					errs <- fmt.Errorf("client %d: %s on %s differs from reference", c, req.QueryID, req.Engine)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if want := int64(clients * len(reqs)); st.Requests != want {
		t.Errorf("stats recorded %d requests, want %d", st.Requests, want)
	}
	// 78 distinct requests served 16x each: the vast majority must have hit
	// the result cache, and plans are shared across engines.
	if st.ResultHits < st.ResultMisses {
		t.Errorf("expected mostly result hits, got %d hits / %d misses", st.ResultHits, st.ResultMisses)
	}
}

func TestPlanAndResultCache(t *testing.T) {
	ds := testData()
	s := New(ds, "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()
	req := Request{QueryID: "q2.1", Engine: queries.EngineCPU}

	first, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanCached || first.ResultCached {
		t.Errorf("first request: PlanCached=%v ResultCached=%v, want cold", first.PlanCached, first.ResultCached)
	}

	second, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.PlanCached || !second.ResultCached {
		t.Errorf("second request: PlanCached=%v ResultCached=%v, want both hits", second.PlanCached, second.ResultCached)
	}
	if !second.Result.Equal(first.Result) || second.SimSeconds != first.SimSeconds {
		t.Error("cached response differs from computed response")
	}

	// A different engine on the same query reuses the plan but not the result.
	other, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: queries.EngineGPU})
	if err != nil {
		t.Fatal(err)
	}
	if !other.PlanCached {
		t.Error("engine switch: plan should be shared across engines")
	}
	if other.ResultCached {
		t.Error("engine switch: result cache must be keyed by engine")
	}

	// NoCache bypasses the result cache but still reuses the plan.
	forced, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !forced.PlanCached {
		t.Error("NoCache: plan cache should still apply")
	}
	if forced.ResultCached {
		t.Error("NoCache: result must be recomputed")
	}
	if !forced.Result.Equal(first.Result) {
		t.Error("NoCache recomputation differs from original result")
	}

	st := s.Stats()
	if st.PlanHits != 3 || st.PlanMisses != 1 {
		t.Errorf("plan cache: %d hits / %d misses, want 3/1", st.PlanHits, st.PlanMisses)
	}
	if st.ResultHits != 1 || st.ResultMisses != 3 {
		t.Errorf("result cache: %d hits / %d misses, want 1/3", st.ResultHits, st.ResultMisses)
	}
	if st.CachedPlans != 1 {
		t.Errorf("cached plans = %d, want 1", st.CachedPlans)
	}
	if st.CachedResults != 2 {
		t.Errorf("cached results = %d, want 2 (cpu + gpu)", st.CachedResults)
	}
}

// TestSetDatasetInvalidation swaps the dataset and checks that nothing
// compiled against the old version is served: plans recompile and the new
// (differently sized) data produces a different result.
func TestSetDatasetInvalidation(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()
	req := Request{QueryID: "q1.1", Engine: queries.EngineCPU}

	old, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if old.Version != "v1" {
		t.Errorf("response version = %q, want v1", old.Version)
	}

	next := ssb.GenerateRows(1 << 11)
	s.SetDataset("v2", next)
	if st := s.Stats(); st.CachedPlans != 0 || st.CachedResults != 0 {
		t.Errorf("after swap: %d plans / %d results still cached", st.CachedPlans, st.CachedResults)
	}

	fresh, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Version != "v2" {
		t.Errorf("response version = %q, want v2", fresh.Version)
	}
	if fresh.PlanCached || fresh.ResultCached {
		t.Error("request after swap must recompile and recompute")
	}
	want := queries.Compile(next, mustQuery(t, "q1.1")).RunCPU()
	if !fresh.Result.Equal(want) {
		t.Error("post-swap result does not match the new dataset")
	}
	if fresh.Result.Equal(old.Result) && fresh.SimSeconds == old.SimSeconds {
		t.Error("post-swap response identical to pre-swap response; stale serve suspected")
	}
}

func mustQuery(t *testing.T, id string) queries.Query {
	t.Helper()
	q, err := queries.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestAliasEngineRequest submits engine aliases through the Go API: they
// must execute (not panic the worker) and share cache entries with the
// canonical engine name.
func TestAliasEngineRequest(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	byAlias, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: "gpu"})
	if err != nil {
		t.Fatal(err)
	}
	if byAlias.Request.Engine != queries.EngineGPU {
		t.Errorf("alias request not canonicalized: engine = %q", byAlias.Request.Engine)
	}
	byName, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: queries.EngineGPU})
	if err != nil {
		t.Fatal(err)
	}
	if !byName.ResultCached {
		t.Error("canonical-name request should hit the alias request's cache entry")
	}
	if !byName.Result.Equal(byAlias.Result) {
		t.Error("alias and canonical results differ")
	}
}

func TestRequestErrors(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1})
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Do(ctx, Request{QueryID: "q9.9", Engine: queries.EngineCPU}); err == nil {
		t.Error("unknown query id: want error")
	}
	if _, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: "Postgres"}); err == nil {
		t.Error("unknown engine: want error")
	}
	if st := s.Stats(); st.Errors != 2 {
		t.Errorf("stats recorded %d errors, want 2", st.Errors)
	}
}

func TestCloseRejectsSubmissions(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	resp, err := s.Do(context.Background(), Request{QueryID: "q1.1", Engine: queries.EngineCPU})
	if err != nil || resp.Err != nil {
		t.Fatalf("pre-close request failed: %v / %v", err, resp.Err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Submit(context.Background(), Request{QueryID: "q1.1", Engine: queries.EngineCPU}); err != ErrClosed {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
}

func TestDoHonorsContext(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := s.Do(ctx, Request{QueryID: "q4.1", Engine: queries.EngineMonet})
	// Either the request won the race and completed (err == nil), or the
	// canceled wait returned promptly with context.Canceled.
	if err != nil && err != context.Canceled {
		t.Errorf("Do with canceled context: err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("canceled Do did not return promptly")
	}
}

// TestDoHonorsContextWhileQueueFull saturates a 1-worker, depth-1 queue
// with slow requests and checks that a deadline-bound Do returns promptly
// instead of blocking on the enqueue.
func TestDoHonorsContextWhileQueueFull(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	// Fill the single worker and the single queue slot with uncached work.
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(context.Background(), Request{QueryID: "q4.1", Engine: queries.EngineGPU, NoCache: true}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU})
	if err != nil && err != context.DeadlineExceeded {
		t.Errorf("Do under full queue: err = %v, want DeadlineExceeded (or completion)", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("Do blocked %v past its 50ms deadline", elapsed)
	}
}

// TestCachedResultIsolation mutates a served result and checks the cache
// still returns the original rows.
func TestCachedResultIsolation(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	req := Request{QueryID: "q2.1", Engine: queries.EngineCPU}
	first, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want := first.Result.Clone()
	for k := range first.Result.Groups {
		first.Result.Groups[k] = -1 // caller trashes its copy
	}
	second, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.ResultCached {
		t.Fatal("expected a cache hit")
	}
	if !second.Result.Equal(want) {
		t.Error("cache served rows corrupted by an earlier caller's mutation")
	}
	for k := range second.Result.Groups {
		second.Result.Groups[k] = -2 // mutating a hit must not touch the cache
	}
	third, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Result.Equal(want) {
		t.Error("cache corrupted by mutating a cache-hit response")
	}
}

func TestParseEngine(t *testing.T) {
	cases := map[string]queries.Engine{
		"gpu":            queries.EngineGPU,
		"CPU":            queries.EngineCPU,
		"hyper":          queries.EngineHyper,
		"monet":          queries.EngineMonet,
		"monetdb":        queries.EngineMonet,
		"omnisci":        queries.EngineOmnisci,
		"coproc":         queries.EngineCoproc,
		"Standalone GPU": queries.EngineGPU,
		"Hyper (CPU)":    queries.EngineHyper,
	}
	for in, want := range cases {
		got, err := ParseEngine(in)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseEngine("duckdb"); err == nil {
		t.Error("ParseEngine(duckdb): want error")
	}
	for _, e := range queries.Engines() {
		rt, err := ParseEngine(EngineAlias(e))
		if err != nil || rt != e {
			t.Errorf("alias round-trip for %v failed: %v, %v", e, rt, err)
		}
	}
}

func TestStatsTable(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	if _, err := s.Do(context.Background(), Request{QueryID: "q1.1", Engine: queries.EngineGPU}); err != nil {
		t.Fatal(err)
	}
	tb := s.Stats().Table()
	var buf strings.Builder
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"v1", "gpu", "requests", "wall ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "mean") {
		t.Errorf("stats table should suppress the mean row:\n%s", out)
	}
}

func TestLRU(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.put("c", 3) // evicts b (least recently used after the get of a)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Error("a lost")
	}
	if v, ok := c.get("c"); !ok || v.(int) != 3 {
		t.Error("c lost")
	}
	c.put("a", 9)
	if v, _ := c.get("a"); v.(int) != 9 {
		t.Error("put did not refresh existing key")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	c.purge()
	if c.len() != 0 {
		t.Errorf("len after purge = %d, want 0", c.len())
	}
}

// TestSQLRequestMatchesNamedQuery submits q2.1 as SQL text (its Describe
// rendering) and checks the rows match the named request on every engine.
func TestSQLRequestMatchesNamedQuery(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()
	q21 := mustQuery(t, "q2.1")
	stmt := q21.Describe()
	for _, e := range queries.Engines() {
		named, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		adhoc, err := s.Do(ctx, Request{SQL: stmt, Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		if !adhoc.Result.Equal(named.Result) {
			t.Errorf("%s: SQL rows differ from named rows", e)
		}
		if !adhoc.Adhoc || named.Adhoc {
			t.Errorf("%s: Adhoc flags wrong: sql=%v named=%v", e, adhoc.Adhoc, named.Adhoc)
		}
		if len(adhoc.Query.GroupPayloads()) != 2 {
			t.Errorf("%s: resolved query lost its group shape", e)
		}
	}
	st := s.Stats()
	if st.NamedRequests != 6 || st.AdhocRequests != 6 {
		t.Errorf("traffic split = %d named / %d adhoc, want 6/6", st.NamedRequests, st.AdhocRequests)
	}
}

// TestSQLCanonicalCacheKey is the acceptance gate for the ad-hoc cache: an
// ad-hoc (non-SSB) query hits the plan cache on the second request, and
// respellings — whitespace, comments, filter order, literal style — hit
// the result cache too.
func TestSQLCanonicalCacheKey(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()
	const stmt = `SELECT SUM(revenue), supplier.nation FROM lineorder, supplier
		WHERE lo.suppkey = supplier.key AND supplier.region = 'ASIA' AND lo.quantity < 30
		GROUP BY supplier.nation`

	first, err := s.Do(ctx, Request{SQL: stmt, Engine: queries.EngineGPU})
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanCached || first.ResultCached {
		t.Error("first ad-hoc request should be cold")
	}
	second, err := s.Do(ctx, Request{SQL: stmt, Engine: queries.EngineGPU})
	if err != nil {
		t.Fatal(err)
	}
	if !second.PlanCached || !second.ResultCached {
		t.Errorf("second identical request: PlanCached=%v ResultCached=%v, want both", second.PlanCached, second.ResultCached)
	}

	// Same statement, different spelling: whitespace, comments, reordered
	// conjuncts, numeric region code instead of the dictionary literal.
	respelled := "-- respelled\nselect sum(lo_revenue), s_nation from lineorder, supplier where quantity <= 29 and s_region = 2 and suppkey = s_suppkey group by s_nation"
	third, err := s.Do(ctx, Request{SQL: respelled, Engine: queries.EngineGPU})
	if err != nil {
		t.Fatal(err)
	}
	if !third.PlanCached || !third.ResultCached {
		t.Errorf("respelled request: PlanCached=%v ResultCached=%v, want both", third.PlanCached, third.ResultCached)
	}
	if !third.Result.Equal(first.Result) || third.SimSeconds != first.SimSeconds {
		t.Error("respelled request served different rows or simulated time")
	}
	if third.Result.QueryID != third.Query.ID {
		t.Errorf("cache hit kept the other spelling's id: %s vs %s", third.Result.QueryID, third.Query.ID)
	}
}

// TestSQLNamedShareCanonicalEntries checks a named query and its SQL
// rendering share plan and result cache entries when their physical forms
// coincide. q2.1 qualifies: no fact filters (the binder's filter sort is a
// no-op) and the V100 planner lands on the catalog's hand-picked
// supplier->part->date order, so the canonical forms are equal. Queries
// where the forms diverge (flight 1's filter order, q4.3's join order) get
// independent entries by design — distinct physical plans never collide.
func TestSQLNamedShareCanonicalEntries(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()
	named, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: queries.EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	q21 := mustQuery(t, "q2.1")
	adhoc, err := s.Do(ctx, Request{SQL: q21.Describe(), Engine: queries.EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	if !adhoc.PlanCached || !adhoc.ResultCached {
		t.Errorf("SQL rendering of q2.1: PlanCached=%v ResultCached=%v, want both (shared with named)", adhoc.PlanCached, adhoc.ResultCached)
	}
	if !adhoc.Result.Equal(named.Result) {
		t.Error("shared entry served different rows")
	}
	if adhoc.SimSeconds != named.SimSeconds {
		t.Error("shared entry served different simulated seconds")
	}
	if adhoc.Result.QueryID != adhoc.Query.ID {
		t.Errorf("hit kept the named id: %s", adhoc.Result.QueryID)
	}
}

func TestSQLRequestErrors(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	cases := []Request{
		{SQL: "SELECT * FROM lineorder", Engine: queries.EngineCPU},                             // parse error
		{SQL: "SELECT SUM(tax) FROM lineorder", Engine: queries.EngineCPU},                      // bind error
		{SQL: "SELECT SUM(revenue) FROM lineorder", QueryID: "q1.1", Engine: queries.EngineCPU}, // both set
		{Engine: queries.EngineCPU}, // neither set
	}
	for _, req := range cases {
		if _, err := s.Do(ctx, req); err == nil {
			t.Errorf("request %+v: want error", req)
		}
	}
	if st := s.Stats(); st.Errors != int64(len(cases)) {
		t.Errorf("stats recorded %d errors, want %d", st.Errors, len(cases))
	}
}

// TestSQLBindCacheInvalidation swaps the dataset and checks an ad-hoc
// statement re-binds and re-executes against the new data.
func TestSQLBindCacheInvalidation(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()
	const stmt = "SELECT SUM(lo.extprice * lo.discount) FROM lineorder WHERE lo.discount BETWEEN 1 AND 3"
	old, err := s.Do(ctx, Request{SQL: stmt, Engine: queries.EngineGPU})
	if err != nil {
		t.Fatal(err)
	}
	s.SetDataset("v2", ssb.GenerateRows(1<<11))
	fresh, err := s.Do(ctx, Request{SQL: stmt, Engine: queries.EngineGPU})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.PlanCached || fresh.ResultCached {
		t.Error("ad-hoc request after swap must rebind and recompute")
	}
	if fresh.Version != "v2" {
		t.Errorf("version = %q, want v2", fresh.Version)
	}
	if fresh.Result.Equal(old.Result) && fresh.SimSeconds == old.SimSeconds {
		t.Error("post-swap ad-hoc response identical to pre-swap; stale bind suspected")
	}
}

// TestPartitionedRequests: a partitioned request returns rows and simulated
// seconds identical to the monolithic request (uniform data, nothing
// prunes), reports its morsel counts, and keys the result cache separately
// from the monolithic entry.
func TestPartitionedRequests(t *testing.T) {
	ds := testData()
	s := New(ds, "v1", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	mono, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: queries.EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	part, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: queries.EngineCPU, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	queriestest.SameRun(t, "partitioned vs monolithic", part.Result, mono.Result)
	if part.Morsels != 2 || part.Pruned != 0 {
		t.Errorf("morsels/pruned = %d/%d, want 2/0", part.Morsels, part.Pruned)
	}
	if mono.Morsels != 1 {
		t.Errorf("monolithic morsels = %d, want 1", mono.Morsels)
	}
	// The partitioned run shares the plan (same canonical query) but must
	// not have been served from the monolithic result entry.
	if !part.PlanCached {
		t.Error("partitioned request should reuse the compiled plan")
	}
	if part.ResultCached {
		t.Error("partitioned request must not hit the monolithic result entry")
	}
	// Repeating it hits its own cached entry, morsel stats intact.
	again, err := s.Do(ctx, Request{QueryID: "q2.1", Engine: queries.EngineCPU, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !again.ResultCached || again.Morsels != 2 {
		t.Errorf("cached partitioned replay: cached=%v morsels=%d", again.ResultCached, again.Morsels)
	}

	st := s.Stats()
	if st.PartitionedRequests != 2 {
		t.Errorf("partitioned requests = %d, want 2", st.PartitionedRequests)
	}
	if st.Morsels != 4 || st.PrunedMorsels != 0 {
		t.Errorf("morsel tally = %d/%d, want 4/0", st.Morsels, st.PrunedMorsels)
	}
}

// TestPartitionedPruningServed: on a clustered dataset the service reports
// pruned morsels and a cheaper simulated time, with identical rows.
func TestPartitionedPruningServed(t *testing.T) {
	clustered := testData().ClusterBy("orderdate")
	s := New(clustered, "clustered", Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	mono, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: queries.EngineGPU})
	if err != nil {
		t.Fatal(err)
	}
	// 4096 rows = 2 tiles, so request the maximum split.
	part, err := s.Do(ctx, Request{QueryID: "q1.1", Engine: queries.EngineGPU, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if part.Pruned == 0 {
		t.Fatalf("expected pruning on clustered layout, morsels=%d", part.Morsels)
	}
	queriestest.Cheaper(t, "pruned served run", part.Result, mono.Result)
	if st := s.Stats(); st.PruneRate <= 0 {
		t.Errorf("prune rate = %.3f, want > 0", st.PruneRate)
	}
}

// TestPartitionedConcurrency floods a 2-worker, 2-helper service with
// partitioned requests from many goroutines: the shared morsel gate must
// neither deadlock nor corrupt results (run under -race in CI).
func TestPartitionedConcurrency(t *testing.T) {
	ds := testData()
	s := New(ds, "v1", Options{Workers: 2, MorselHelpers: 2})
	defer s.Close()
	want := map[string]*queries.Result{}
	for _, id := range []string{"q1.1", "q2.1", "q3.2"} {
		q, _ := queries.ByID(id)
		want[id] = queries.Run(ds, q, queries.EngineCPU)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := []string{"q1.1", "q2.1", "q3.2"}
			for i := 0; i < 8; i++ {
				id := ids[(g+i)%len(ids)]
				resp, err := s.Do(context.Background(), Request{
					QueryID:    id,
					Engine:     queries.EngineCPU,
					Partitions: 1 + (g+i)%3,
					NoCache:    true,
				})
				if err != nil {
					errs <- err.Error()
					return
				}
				if !resp.Result.Equal(want[id]) || resp.SimSeconds != want[id].Seconds {
					errs <- "partitioned response diverged for " + id
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestGateBounds exercises the morsel gate directly: capacity is strict,
// and release restores it.
func TestGateBounds(t *testing.T) {
	g := make(gate, 2)
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("gate should grant up to capacity")
	}
	if g.TryAcquire() {
		t.Fatal("gate over capacity")
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}
