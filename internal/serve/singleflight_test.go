package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"crystal/internal/queries"
	"crystal/internal/ssb"
)

// TestSingleFlightCoalesces constructs a coalesce deterministically: the
// leader parks inside its execution, two identical requests are held at
// the flight wait (observed via the follower hook), and on release all
// three must share the one execution — exactly one run of the key, one
// leader response, two Coalesced responses with byte-identical rows.
func TestSingleFlightCoalesces(t *testing.T) {
	ds := testData()
	s := New(ds, "v1", Options{Workers: 3})
	defer s.Close()

	var mu sync.Mutex
	execs := map[string]int{}
	release := make(chan struct{})
	first := make(chan struct{}, 1)
	s.execHook = func(key string) {
		mu.Lock()
		execs[key]++
		mu.Unlock()
		select {
		case first <- struct{}{}:
			<-release // park only the first execution: the leader
		default:
		}
	}
	joined := make(chan struct{}, 8)
	s.flightHook = func() { joined <- struct{}{} }

	req := Request{QueryID: "q4.1", Engine: queries.EngineGPU}
	ctx := context.Background()
	chans := make([]<-chan Response, 3)
	var err error
	if chans[0], err = s.Submit(ctx, req); err != nil {
		t.Fatal(err)
	}
	<-first // leader is parked inside its execution; the flight is registered
	first <- struct{}{}
	for i := 1; i < 3; i++ {
		if chans[i], err = s.Submit(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case <-joined:
		case <-time.After(10 * time.Second):
			t.Fatal("follower never reached the flight wait")
		}
	}
	close(release)

	want := queries.Reference(ds, mustQuery(t, "q4.1"))
	var leaders, followers int
	for _, done := range chans {
		resp := <-done
		if resp.Err != nil {
			t.Fatalf("coalesced request failed: %v", resp.Err)
		}
		if !resp.Result.Equal(want) {
			t.Fatal("response rows differ from the reference: leader and followers must be byte-identical")
		}
		if resp.Coalesced {
			followers++
			if resp.ResultCached {
				t.Error("a response cannot be both coalesced and a cache hit")
			}
		} else {
			leaders++
		}
		if len(done) != 0 {
			t.Fatal("response channel received a second value")
		}
	}
	if leaders != 1 || followers != 2 {
		t.Fatalf("got %d leader / %d coalesced responses, want 1/2", leaders, followers)
	}
	mu.Lock()
	total := 0
	for _, n := range execs {
		total += n
	}
	mu.Unlock()
	if total != 1 {
		t.Fatalf("counted %d executions for 3 identical requests, want exactly 1", total)
	}
	// A later identical request is a plain cache hit, not a coalesce.
	resp, err := s.Do(ctx, req)
	if err != nil || !resp.ResultCached || resp.Coalesced {
		t.Fatalf("post-flight request: err=%v cached=%v coalesced=%v, want cache hit", err, resp.ResultCached, resp.Coalesced)
	}
	st := s.Stats()
	if st.Coalesced != 2 {
		t.Errorf("stats recorded %d coalesced, want 2", st.Coalesced)
	}
	if st.CoalesceRate <= 0 {
		t.Error("coalesce rate not reported")
	}
}

// TestSingleFlightSurvivesDatasetSwap swaps the dataset while a flight
// is mid-execution: the parked leader and its follower must both report
// the generation they joined — the old version's rows, byte-identical —
// while a request arriving after the swap executes fresh against the new
// generation and never shares the stale flight.
func TestSingleFlightSurvivesDatasetSwap(t *testing.T) {
	dsOld := ssb.GenerateRows(1 << 12)
	dsNew := ssb.GenerateRows(1 << 11) // different rows: aggregates differ
	s := New(dsOld, "v-old", Options{Workers: 3})
	defer s.Close()

	var mu sync.Mutex
	execs := map[string]int{}
	release := make(chan struct{})
	first := make(chan struct{}, 1)
	s.execHook = func(key string) {
		mu.Lock()
		execs[key]++
		mu.Unlock()
		select {
		case first <- struct{}{}:
			<-release
		default:
		}
	}
	joined := make(chan struct{}, 8)
	s.flightHook = func() { joined <- struct{}{} }

	req := Request{QueryID: "q2.1", Engine: queries.EngineCPU}
	ctx := context.Background()
	leader, err := s.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	<-first
	first <- struct{}{}
	follower, err := s.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-joined:
	case <-time.After(10 * time.Second):
		t.Fatal("follower never reached the flight wait")
	}
	// The swap lands while leader and follower are both mid-flight.
	s.SetDataset("v-new", dsNew)
	close(release)

	q := mustQuery(t, "q2.1")
	wantOld := queries.Reference(dsOld, q)
	wantNew := queries.Reference(dsNew, q)
	for name, done := range map[string]<-chan Response{"leader": leader, "follower": follower} {
		resp := <-done
		if resp.Err != nil {
			t.Fatalf("%s failed: %v", name, resp.Err)
		}
		if resp.Version != "v-old" {
			t.Fatalf("%s reports version %q, want the generation it joined (v-old)", name, resp.Version)
		}
		if !resp.Result.Equal(wantOld) {
			t.Fatalf("%s rows differ from its generation's reference", name)
		}
		if resp.Result.Equal(wantNew) && !wantOld.Equal(wantNew) {
			t.Fatalf("%s observed the new generation's rows from a stale flight", name)
		}
	}
	// Post-swap, the same request keys a new generation: fresh execution,
	// new rows, no sharing with the drained flight.
	resp, err := s.Do(ctx, req)
	if err != nil || resp.Err != nil {
		t.Fatalf("post-swap request failed: %v / %v", err, resp.Err)
	}
	if resp.Version != "v-new" || resp.Coalesced || resp.ResultCached {
		t.Fatalf("post-swap request: version=%q coalesced=%v cached=%v, want fresh v-new execution",
			resp.Version, resp.Coalesced, resp.ResultCached)
	}
	if !resp.Result.Equal(wantNew) {
		t.Fatal("post-swap rows differ from the new dataset's reference")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(execs) != 2 {
		t.Fatalf("counted %d distinct executed keys, want 2 (one per generation)", len(execs))
	}
	for key, n := range execs {
		if n != 1 {
			t.Fatalf("key %q executed %d times, want exactly once per (key, generation)", key, n)
		}
	}
}

// TestSingleFlightExactlyOnceUnderRace hammers the service from many
// goroutines with identical and distinct requests while another goroutine
// swaps datasets, and asserts the single-flight invariant wholesale:
// every (result-cache key, generation) executed at most once, every
// response's rows match the reference for the dataset version it reports,
// and nothing errors. Run under -race in CI.
func TestSingleFlightExactlyOnceUnderRace(t *testing.T) {
	dsA := ssb.GenerateRows(1 << 12)
	dsB := ssb.GenerateRows(1 << 11)
	s := New(dsA, "A", Options{Workers: 8})
	defer s.Close()

	var mu sync.Mutex
	execs := map[string]int{}
	s.execHook = func(key string) {
		mu.Lock()
		execs[key]++
		mu.Unlock()
	}

	shapes := []Request{
		{QueryID: "q1.1", Engine: queries.EngineCPU},
		{QueryID: "q1.1", Engine: queries.EngineGPU},
		{QueryID: "q2.1", Engine: queries.EngineGPU},
		{QueryID: "q3.1", Engine: queries.EngineHyper},
	}
	refs := map[string]map[string]*queries.Result{"A": {}, "B": {}}
	for _, shape := range shapes {
		q := mustQuery(t, shape.QueryID)
		refs["A"][shape.QueryID] = queries.Reference(dsA, q)
		refs["B"][shape.QueryID] = queries.Reference(dsB, q)
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		flip := false
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				if flip {
					s.SetDataset("A", dsA)
				} else {
					s.SetDataset("B", dsB)
				}
				flip = !flip
			}
		}
	}()

	const clients, iters = 8, 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				shape := shapes[r.Intn(len(shapes))]
				resp, err := s.Do(context.Background(), shape)
				if err != nil || resp.Err != nil {
					t.Errorf("request %+v failed: %v / %v", shape, err, resp.Err)
					return
				}
				if !resp.Result.Equal(refs[resp.Version][shape.QueryID]) {
					t.Errorf("%s on %s: rows differ from version %q's reference — stale generation observed",
						shape.QueryID, shape.Engine, resp.Version)
					return
				}
			}
		}(int64(c) + 7)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()

	mu.Lock()
	defer mu.Unlock()
	for key, n := range execs {
		if n != 1 {
			t.Errorf("key %q executed %d times, want exactly once per (key, generation)", key, n)
		}
	}
	if st := s.Stats(); st.Errors != 0 {
		t.Errorf("race run recorded %d errors", st.Errors)
	}
}
