package serve

import (
	"errors"
	"strconv"
	"time"

	"crystal/internal/device"
	"crystal/internal/fleet"
	"crystal/internal/planner"
	"crystal/internal/queries"
	"crystal/internal/ssb"
)

// batchShape is the request-level compatibility key for shared-scan
// batching: two queued requests may share a scan only when every field that
// changes the morsel map, the fact encoding or the execution placement
// agrees. Query identity is deliberately absent — that is the footprint
// check (queries.Compatible) the batch former applies after binding.
type batchShape struct {
	engine       queries.Engine
	placement    string
	interconnect string
	partitions   int
	gpus         int
	packed       bool
}

// canonBatchReq mirrors execute()'s request canonicalization for the batch
// former and reports whether the request is batchable at all. Requests that
// fail to parse are left for the solo path to report; NoCache requests
// (explicitly standalone) and residency-dependent shapes (coprocessor or
// constrained-fleet packed runs, whose solo seconds depend on device-cache
// state the batch path never consults) are never batched.
func (s *Service) canonBatchReq(req Request) (Request, fleet.Interconnect, bool) {
	var link fleet.Interconnect
	if req.NoCache {
		return req, link, false
	}
	engine := queries.EngineGPU
	if req.Engine != "" || req.Placement == "" {
		var err error
		if engine, err = ParseEngine(string(req.Engine)); err != nil {
			return req, link, false
		}
	}
	if req.Partitions < 0 {
		req.Partitions = 0
	}
	if req.GPUs < 0 {
		req.GPUs = 0
	}
	req.Engine = engine
	switch {
	case req.Placement != "":
		placement, err := ParsePlacement(req.Placement)
		if err != nil || engine != queries.EngineGPU {
			return req, link, false
		}
		req.Placement = placement
		if req.GPUs == 0 {
			req.GPUs = 1
		}
		if link, err = fleet.ParseInterconnect(req.Interconnect); err != nil {
			return req, link, false
		}
		req.Interconnect = link.Name
		if req.Partitions < req.GPUs+1 {
			req.Partitions = req.GPUs + 1
		}
	case req.GPUs > 0:
		if engine != queries.EngineGPU {
			return req, link, false
		}
		var err error
		if link, err = fleet.ParseInterconnect(req.Interconnect); err != nil {
			return req, link, false
		}
		req.Interconnect = link.Name
		if req.Partitions < req.GPUs {
			req.Partitions = req.GPUs
		}
		if req.Packed && s.devCache != nil && s.opts.FleetDeviceMemoryBytes > 0 {
			return req, link, false // per-device residency shape
		}
	default:
		req.Interconnect = ""
		if req.Packed && engine == queries.EngineCoproc && s.devCache != nil {
			return req, link, false // coprocessor residency shape
		}
	}
	return req, link, true
}

// resultCached reports whether the canonical result-cache entry for req at
// generation gen is already present. Cache-resident work gains nothing from a
// shared scan — a solo pickup replays the stored rows without executing — so
// the batch former leaves it on the solo path: a cached leader executes (and
// replays) alone, a cached drained peer goes back to its queue position. The
// key mirrors execute()'s resultKey exactly, including the partition raise
// and effective-partition clamp applied before that key is built.
func (s *Service) resultCached(ds *ssb.Dataset, gen uint64, canon string, req Request) bool {
	creq, _, ok := s.canonBatchReq(req)
	if !ok {
		return false
	}
	if creq.Placement != "" || creq.GPUs > 0 {
		if eff := ssb.EffectivePartitions(ds.Lineorder.Rows(), creq.Partitions); eff > 0 {
			creq.Partitions = eff
		}
	}
	key := cacheKey(strconv.FormatUint(gen, 10), canon, string(creq.Engine), strconv.Itoa(creq.Partitions),
		packedKey(creq.Packed), strconv.Itoa(creq.GPUs), creq.Interconnect, creq.Placement)
	s.cacheMu.Lock()
	_, hit := s.results.get(key)
	s.cacheMu.Unlock()
	return hit
}

// batchKey reduces a request to its batchShape, or reports it unbatchable.
func (s *Service) batchKey(req Request) (batchShape, bool) {
	creq, _, ok := s.canonBatchReq(req)
	if !ok {
		return batchShape{}, false
	}
	return batchShape{
		engine:       creq.Engine,
		placement:    creq.Placement,
		interconnect: creq.Interconnect,
		partitions:   creq.Partitions,
		gpus:         creq.GPUs,
		packed:       creq.Packed,
	}, true
}

// formBatch drains up to MaxBatch-1 pending requests that can share the
// leader's scan: same batchShape (engine, partitions, packed mode, fleet
// shape) and a fact-column footprint overlapping the leader's bound query.
// Deadline-expired peers found during the scan are completed with ErrExpired;
// shape-matched peers whose footprints turn out disjoint go back to their
// original queue position. Returns nil when batching is disabled, the leader
// is unbatchable, or no peer qualifies — the caller then executes solo.
func (s *Service) formBatch(leader *job) []*job {
	if s.opts.MaxBatch <= 1 || s.queue.len() == 0 {
		return nil
	}
	shape, ok := s.batchKey(leader.req)
	if !ok {
		return nil
	}
	s.mu.RLock()
	ds, gen := s.ds, s.gen
	s.mu.RUnlock()
	lq, lcanon, err := s.resolve(ds, gen, leader.req)
	if err != nil {
		return nil // the solo path reports the resolution error
	}
	if s.resultCached(ds, gen, lcanon, leader.req) {
		return nil // the solo path replays it from the result cache
	}
	// The classifier runs under the queue lock: shape matching is pure
	// parsing, so binding (which takes cache locks) waits until the drain
	// returns.
	now := time.Now()
	taken, dropped := s.queue.drainMatching(s.opts.MaxBatch-1, func(p *job) int {
		if p.req.Deadline > 0 && now.Sub(p.enqueued) >= p.req.Deadline {
			return drainDrop
		}
		if ps, ok := s.batchKey(p.req); ok && ps == shape {
			return drainTake
		}
		return drainKeep
	})
	for _, e := range dropped {
		s.recordExpired()
		e.done <- Response{Request: e.req, QueueWait: time.Since(e.enqueued), Err: ErrExpired}
	}
	// Bind each candidate and keep those whose footprints overlap the
	// leader's and whose results are not already cached; the rest are
	// re-pushed with their original sequence numbers, restoring their FIFO
	// position (a cached peer replays instantly when a worker pops it solo).
	var peers, back []*job
	for _, p := range taken {
		pq, pcanon, rerr := s.resolve(ds, gen, p.req)
		if rerr == nil && queries.Compatible(&lq, &pq) && !s.resultCached(ds, gen, pcanon, p.req) {
			peers = append(peers, p)
		} else {
			back = append(back, p)
		}
	}
	s.queue.requeue(back)
	if s.slots != nil {
		// Blocking mode: every queued job holds one admission slot its
		// popping worker would have released. Release the slots of the jobs
		// this drain permanently removed (batched peers and expired drops);
		// re-queued jobs keep theirs.
		for i := 0; i < len(peers)+len(dropped); i++ {
			<-s.slots
		}
	}
	return peers
}

// executeBatch runs the leader and its drained peers as one shared-scan
// batch on the leader's worker goroutine. The batch bypasses result-cache
// lookup and single-flight coalescing — it is a multi-query unit the per-key
// machinery cannot represent, and formBatch already diverted cache-resident
// work to the solo replay path — but shares the bind and plan caches, pays
// Options.ExecDelay once for the whole batch, publishes each member's result
// under its solo resultKey for later replays, and reports each member with
// the same rows and simulated seconds its solo run would have produced
// (queries.RunBatch's row-identity invariant), plus the Batched telemetry.
func (s *Service) executeBatch(leader *job, leaderWait time.Duration, peers []*job) {
	start := time.Now()
	jobs := append([]*job{leader}, peers...)
	waits := make([]time.Duration, len(jobs))
	waits[0] = leaderWait
	for i, p := range peers {
		waits[i+1] = time.Since(p.enqueued)
	}

	s.mu.RLock()
	ds, version, gen := s.ds, s.version, s.gen
	s.mu.RUnlock()

	fail := func(i int, err error) {
		s.recordError()
		jobs[i].done <- Response{Request: jobs[i].req, Version: version, QueueWait: waits[i], Err: err}
	}

	// Canonicalize every member against the snapshot. All members matched
	// one batchShape, so the canonical fields agree; the effective partition
	// count depends only on the snapshot and the shared partition count.
	var link fleet.Interconnect
	reqs := make([]Request, len(jobs))
	for i, j := range jobs {
		creq, lk, ok := s.canonBatchReq(j.req)
		if !ok {
			// Unreachable: formBatch only batches canonicalizable shapes.
			for k := range jobs {
				fail(k, errors.New("serve: batch member lost its shape"))
			}
			return
		}
		link = lk
		reqs[i] = creq
	}
	req0 := reqs[0]
	if req0.Placement != "" || req0.GPUs > 0 {
		if eff := ssb.EffectivePartitions(ds.Lineorder.Rows(), req0.Partitions); eff > 0 {
			for i := range reqs {
				reqs[i].Partitions = eff
			}
			req0 = reqs[0]
		}
	}

	// Bind and compile each member through the shared bind/plan caches.
	// A member that fails to bind (possible if a SetDataset raced in since
	// the batch formed) fails alone; the rest still batch.
	type liveMember struct {
		idx        int
		q          queries.Query
		canon      string
		plan       *queries.Plan
		bindWall   time.Duration
		planWall   time.Duration
		planCached bool
	}
	genKey := strconv.FormatUint(gen, 10)
	var live []liveMember
	for i := range jobs {
		bindStart := time.Now()
		q, canon, err := s.resolve(ds, gen, reqs[i])
		bindWall := time.Since(bindStart)
		if err != nil {
			fail(i, err)
			continue
		}
		planKey := cacheKey(genKey, canon)
		s.cacheMu.Lock()
		var entry *planEntry
		cached := false
		if v, ok := s.plans.get(planKey); ok {
			entry = v.(*planEntry)
			cached = true
		} else {
			entry = &planEntry{}
			if s.generation() == gen {
				s.plans.put(planKey, entry)
			}
		}
		s.cacheMu.Unlock()
		planStart := time.Now()
		entry.once.Do(func() { entry.plan = queries.Compile(ds, q) })
		live = append(live, liveMember{
			idx:        i,
			q:          q,
			canon:      canon,
			plan:       entry.plan,
			bindWall:   bindWall,
			planWall:   time.Since(planStart),
			planCached: cached,
		})
	}
	if len(live) == 0 {
		return
	}

	opts := queries.RunOptions{}
	opts.Partition.Partitions = req0.Partitions
	opts.Partition.Limiter = s.morsels
	opts.Trace = s.recorder != nil
	if req0.Packed {
		opts.Partition.Packed = s.packedFact(gen, ds)
	}
	if s.opts.ExecDelay > 0 {
		// Once per batch, not per member: the wall-clock counterpart of the
		// shared scan, and where batching's goodput win comes from under a
		// simulated slow backend.
		time.Sleep(s.opts.ExecDelay)
	}

	plans := make([]*queries.Plan, len(live))
	qs := make([]queries.Query, len(live))
	for li, m := range live {
		plans[li] = m.plan
		qs[li] = m.q
	}

	failLive := func(err error) {
		for _, m := range live {
			fail(m.idx, err)
		}
	}
	var br *queries.BatchResult
	var err error
	placement := req0.Placement
	switch {
	case req0.Placement != "":
		fl := fleet.Spec{GPUs: req0.GPUs, Link: link}
		if placement == PlacementAuto {
			choice, _, cerr := planner.ChooseBatchPlacement(fl, ds, qs,
				plans[0].Morsels(req0.Partitions), opts.Partition.Packed)
			if cerr != nil {
				failLive(cerr)
				return
			}
			placement = string(choice)
		}
		frac := -1.0 // hybrid: the throughput-balanced default split
		switch placement {
		case PlacementCPU:
			frac = 1
		case PlacementGPU:
			frac = 0
		}
		br, err = queries.RunBatchHybrid(plans, fl, frac, opts)
	case req0.GPUs > 0:
		dev := device.V100()
		if s.opts.FleetDeviceMemoryBytes > 0 {
			d := *dev
			d.MemoryBytes = s.opts.FleetDeviceMemoryBytes
			dev = &d
		}
		br, err = queries.RunBatchFleet(plans, fleet.Spec{GPUs: req0.GPUs, Device: dev, Link: link}, opts)
	default:
		br, err = queries.RunBatch(plans, req0.Engine, opts)
	}
	if err != nil {
		failLive(err)
		return
	}

	s.recordBatch(br.SharedScanBytes, br.SoloScanBytes)
	for li, lm := range live {
		i := li
		m := br.Members[i]
		resp := Response{
			Request:   reqs[lm.idx],
			Adhoc:     reqs[lm.idx].SQL != "",
			Packed:    reqs[lm.idx].Packed,
			QueueWait: waits[lm.idx],
			Version:   version,
			Query:     lm.q,
		}
		resp.Result = m.Result
		resp.Result.QueryID = lm.q.ID
		resp.SimSeconds = m.Result.Seconds
		resp.Morsels = m.Result.Morsels
		resp.Pruned = m.Result.Pruned
		resp.TransferBytes = m.Result.TransferBytes
		resp.ResidentCols = m.Result.ResidentCols
		resp.PlanCached = lm.planCached
		resp.Batched = true
		resp.BatchSize = len(live)
		resp.BatchShareSeconds = m.ShareSeconds
		switch {
		case req0.Placement != "":
			resp.Placement = placement
			resp.CPUFrac = br.CPUFrac
			resp.GPUs = br.GPUs
			resp.Interconnect = br.Interconnect
			resp.Executors = m.Executors
			resp.MergeBytes = m.MergeBytes
		case req0.GPUs > 0:
			resp.GPUs = br.GPUs
			resp.Interconnect = br.Interconnect
			resp.Devices = queries.FleetDevices(m.Executors)
			resp.MergeBytes = m.MergeBytes
		}
		resp.Wall = time.Since(start)
		if s.recorder != nil {
			// The run span is the batch span: every member's trace shows the
			// shared scan it rode, with its own batch-member child inside.
			s.finishTrace(&resp, start, waits[lm.idx], lm.bindWall, lm.planWall, br.Trace)
		}

		// Publish the member's result under its solo resultKey, exactly as
		// execute() would have: rows and simulated seconds are identical to
		// the solo run (RunBatch's row-identity invariant) and batch members
		// are never residency-dependent shapes, so the entry replays
		// deterministically. Batch provenance is per-request telemetry, not
		// part of the replayed identity, so the stored copy drops it.
		cached := resp
		cached.Result = resp.Result.Clone()
		cached.Devices = append([]queries.FleetDevice(nil), resp.Devices...)
		cached.Executors = append([]queries.ExecutorResult(nil), resp.Executors...)
		cached.Trace = nil
		cached.TraceID = ""
		cached.QueueWait = 0
		cached.Batched = false
		cached.BatchSize = 0
		cached.BatchShareSeconds = 0
		resultKey := cacheKey(genKey, lm.canon, string(reqs[lm.idx].Engine), strconv.Itoa(reqs[lm.idx].Partitions),
			packedKey(reqs[lm.idx].Packed), strconv.Itoa(reqs[lm.idx].GPUs), reqs[lm.idx].Interconnect, reqs[lm.idx].Placement)
		s.cacheMu.Lock()
		s.results.put(resultKey, &cached)
		s.cacheMu.Unlock()

		s.recordStats(resp)
		jobs[lm.idx].done <- resp
	}
}
