package serve

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crystal/internal/queries"
)

// blockExecutions installs an execHook that parks every real execution
// on the returned release channel, after announcing its result-cache key
// on started. Close(release) lets all executions proceed. Must be called
// before any traffic.
func blockExecutions(s *Service) (started chan string, release chan struct{}) {
	started = make(chan string, 64)
	release = make(chan struct{})
	s.execHook = func(key string) {
		started <- key
		<-release
	}
	return started, release
}

// TestOverloadGracefulDegradation drives a shedding service at 10x its
// closed-loop saturation concurrency with a seeded workload and pins the
// overload invariants: request conservation (every offered request ends
// as exactly one completed, shed or expired outcome — no silent drops,
// no double-sends), every shed submission observes ErrOverloaded, every
// admitted request gets a well-formed response, and goodput does not
// collapse: the overloaded run completes at least the 1x baseline count
// minus what it shed.
func TestOverloadGracefulDegradation(t *testing.T) {
	ds := testData()
	const workers = 4
	rng := rand.New(rand.NewSource(1))
	catalog := queries.All()

	// Pin every execution to at least a millisecond (Options.ExecDelay) so
	// the overload phase is overloaded by construction on any machine: 40
	// clients against 4 workers x 1ms can never drain a worker-deep queue
	// fast enough to avoid shedding, while 4 clients (== workers) never
	// fill it at all.
	opts := Options{Workers: workers, QueueDepth: workers, Shed: true, ExecDelay: time.Millisecond}

	// Phase 1 — 1x baseline: closed loop at exactly the worker count, no
	// shedding possible (offered concurrency == service parallelism).
	base := New(ds, "v1", opts)
	const perClient = 25
	run := func(s *Service, clients int, seed int64) (completed, shed, expired int64) {
		var wg sync.WaitGroup
		var nOK, nShed, nExpired atomic.Int64
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < perClient; i++ {
					q := catalog[r.Intn(len(catalog))]
					resp, err := s.Do(context.Background(), Request{
						QueryID:  q.ID,
						Engine:   queries.EngineCPU,
						NoCache:  true, // force a real execution per request
						Deadline: 30 * time.Second,
					})
					switch {
					case err == nil && resp.Err == nil && resp.Result != nil:
						nOK.Add(1)
					case errors.Is(err, ErrOverloaded):
						nShed.Add(1)
					case errors.Is(err, ErrExpired):
						nExpired.Add(1)
					default:
						t.Errorf("request ended in no recognized outcome: err=%v resp.Err=%v", err, resp.Err)
					}
				}
			}(seed + int64(c))
		}
		wg.Wait()
		return nOK.Load(), nShed.Load(), nExpired.Load()
	}

	baseOK, baseShed, baseExpired := run(base, workers, rng.Int63())
	st := base.Stats()
	base.Close()
	if baseShed != 0 || baseExpired != 0 {
		t.Fatalf("1x baseline shed %d / expired %d requests; want 0 (offered concurrency == workers)", baseShed, baseExpired)
	}
	if baseOK != workers*perClient {
		t.Fatalf("1x baseline completed %d, want %d", baseOK, workers*perClient)
	}
	if st.Requests != baseOK || st.Shed != 0 || st.Expired != 0 {
		t.Fatalf("1x baseline stats = %d requests / %d shed / %d expired, want %d/0/0",
			st.Requests, st.Shed, st.Expired, baseOK)
	}

	// Phase 2 — 10x overload: same per-client load, ten times the
	// clients, a queue shallow enough that shedding must happen.
	over := New(ds, "v1", opts)
	defer over.Close()
	clients := 10 * workers
	offered := int64(clients * perClient)
	ok, shedN, expiredN := run(over, clients, rng.Int63())

	// Conservation: every offered request ended in exactly one outcome.
	if got := ok + shedN + expiredN; got != offered {
		t.Fatalf("outcomes %d (ok %d + shed %d + expired %d) != offered %d: silent drop or double-send",
			got, ok, shedN, expiredN, offered)
	}
	// Goodput floor: completions never fall below the 1x baseline minus
	// what the overloaded run shed — shedding is the only loss channel,
	// and an admitted request is never abandoned.
	if ok < baseOK-shedN-expiredN {
		t.Fatalf("goodput %d below baseline-minus-shed floor %d", ok, baseOK-shedN-expiredN)
	}
	// Liveness floors: the queue starts empty, so at least one full
	// queue's worth of the burst is always admitted and completes; and a
	// 10x burst against a depth-4 queue must actually shed.
	if ok < int64(workers) {
		t.Fatalf("overload run completed only %d requests; even a full shed storm admits the first queue depth (%d)", ok, workers)
	}
	if shedN == 0 {
		t.Fatal("10x overload against a worker-deep queue shed nothing; admission control is not engaging")
	}
	ost := over.Stats()
	if ost.Requests != ok {
		t.Errorf("stats recorded %d requests, want %d completions", ost.Requests, ok)
	}
	if ost.Shed != shedN {
		t.Errorf("stats recorded %d shed, clients observed %d ErrOverloaded", ost.Shed, shedN)
	}
	if ost.Expired != expiredN {
		t.Errorf("stats recorded %d expired, clients observed %d ErrExpired", ost.Expired, expiredN)
	}
	if ost.Errors != 0 {
		t.Errorf("overload run recorded %d execution errors, want 0", ost.Errors)
	}
	t.Logf("10x overload: offered %d, completed %d, shed %d (%.1f%%), expired %d",
		offered, ok, shedN, 100*float64(shedN)/float64(offered), expiredN)
}

// TestShedEvictsLowerPriority pins the priority carve-out exactly: with
// the single worker parked and a depth-1 queue, a higher-priority
// newcomer evicts the queued lower-priority request (which observes
// ErrOverloaded on its own response channel, exactly once), while an
// equal-priority newcomer is itself refused.
func TestShedEvictsLowerPriority(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 1, Shed: true})
	defer s.Close()
	started, release := blockExecutions(s)

	ctx := context.Background()
	blocker, err := s.Submit(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now parked inside the blocker's execution

	low, err := s.Submit(ctx, Request{QueryID: "q1.2", Engine: queries.EngineCPU, Priority: 1})
	if err != nil {
		t.Fatalf("low-priority submission should queue, got %v", err)
	}
	high, err := s.Submit(ctx, Request{QueryID: "q1.3", Engine: queries.EngineCPU, Priority: 2})
	if err != nil {
		t.Fatalf("high-priority submission should evict and queue, got %v", err)
	}
	// The eviction is synchronous: low's response is already buffered.
	select {
	case resp := <-low:
		if !errors.Is(resp.Err, ErrOverloaded) {
			t.Fatalf("evicted request got %v, want ErrOverloaded", resp.Err)
		}
		if len(low) != 0 {
			t.Fatal("evicted request's channel received a second response")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evicted request never received its shed response")
	}
	// Equal priority never evicts: the newcomer is refused instead.
	if _, err := s.Submit(ctx, Request{QueryID: "q2.1", Engine: queries.EngineCPU, Priority: 2}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("equal-priority submission into a full queue: err = %v, want ErrOverloaded", err)
	}
	close(release)
	for _, done := range []<-chan Response{blocker, high} {
		resp := <-done
		if resp.Err != nil {
			t.Fatalf("admitted request failed: %v", resp.Err)
		}
	}
	if st := s.Stats(); st.Shed != 2 {
		t.Errorf("stats recorded %d shed, want 2 (one eviction, one refusal)", st.Shed)
	}
}

// TestDeadlineExpiresInQueue parks the worker, queues a request whose
// deadline cannot survive the wait, and checks the worker drops it at
// pickup: ErrExpired, no result, no execution, tallied under Expired.
func TestDeadlineExpiresInQueue(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 2})
	defer s.Close()
	started, release := blockExecutions(s)

	ctx := context.Background()
	blocker, err := s.Submit(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	doomed, err := s.Submit(ctx, Request{QueryID: "q1.2", Engine: queries.EngineCPU, Deadline: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the deadline lapse in the queue
	close(release)

	resp := <-doomed
	if !errors.Is(resp.Err, ErrExpired) {
		t.Fatalf("expired request got %v, want ErrExpired", resp.Err)
	}
	if resp.Result != nil {
		t.Error("expired request carries a result; it must never execute")
	}
	if resp.QueueWait < 10*time.Millisecond {
		t.Errorf("expired response reports queue wait %v, want >= its 10ms deadline", resp.QueueWait)
	}
	if (<-blocker).Err != nil {
		t.Fatal("blocker request failed")
	}
	st := s.Stats()
	if st.Expired != 1 {
		t.Errorf("stats recorded %d expired, want 1", st.Expired)
	}
	if st.Requests != 1 {
		t.Errorf("stats recorded %d requests, want 1 (the expired job never executed)", st.Requests)
	}
}

// TestDoDerivesDeadlineFromContext submits through Do with a context
// deadline but no Request.Deadline and checks the derived deadline sheds
// the job at pickup rather than executing it for a caller that is gone.
func TestDoDerivesDeadlineFromContext(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 2})
	defer s.Close()
	started, release := blockExecutions(s)

	blocker, err := s.Submit(context.Background(), Request{QueryID: "q1.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Do(ctx, Request{QueryID: "q1.2", Engine: queries.EngineCPU}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do past its context deadline: err = %v, want DeadlineExceeded", err)
	}
	time.Sleep(30 * time.Millisecond)
	close(release)
	<-blocker
	// The queued job must have been dropped at pickup, not executed.
	deadlineOK := false
	for i := 0; i < 100; i++ {
		if st := s.Stats(); st.Expired == 1 && st.Requests == 1 {
			deadlineOK = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !deadlineOK {
		st := s.Stats()
		t.Errorf("derived deadline did not drop the abandoned job: %d expired / %d requests, want 1/1",
			st.Expired, st.Requests)
	}
}

// TestSubmitHonorsContextWhileQueueFull pins the Submit fix: a full
// queue no longer blocks a submission whose context is already cancelled
// (checked before the wait) or is cancelled during the wait.
func TestSubmitHonorsContextWhileQueueFull(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	started, release := blockExecutions(s)
	defer close(release)

	bg := context.Background()
	if _, err := s.Submit(bg, Request{QueryID: "q1.1", Engine: queries.EngineCPU, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	<-started // worker parked; the queue's single slot is free
	if _, err := s.Submit(bg, Request{QueryID: "q1.2", Engine: queries.EngineCPU}); err != nil {
		t.Fatal(err) // fills the queue
	}

	// Already-cancelled context: must fail fast, never touch the wait.
	cancelled, cancel := context.WithCancel(bg)
	cancel()
	start := time.Now()
	if _, err := s.Submit(cancelled, Request{QueryID: "q1.3", Engine: queries.EngineCPU}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with pre-cancelled context on a full queue: err = %v, want Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("pre-cancelled Submit blocked on the full queue")
	}

	// Cancelled mid-wait: must unblock promptly.
	ctx, cancel2 := context.WithCancel(bg)
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, Request{QueryID: "q1.4", Engine: queries.EngineCPU})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // land the goroutine in the enqueue wait
	cancel2()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit cancelled mid-wait: err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit stayed blocked after its context was cancelled")
	}
}

// TestPriorityOrdersPickup parks the worker, queues low- then
// high-priority work in blocking mode, and checks workers drain the
// queue highest-priority-first, FIFO within a class.
func TestPriorityOrdersPickup(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 8})
	defer s.Close()
	started, release := blockExecutions(s)

	ctx := context.Background()
	if _, err := s.Submit(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	<-started
	// Queue four jobs while the worker is parked; distinct queries so
	// each pickup announces a distinguishable key.
	order := []struct {
		id  string
		pri int
	}{{"q1.2", 0}, {"q2.1", 5}, {"q2.2", 5}, {"q3.1", 1}}
	for _, o := range order {
		if _, err := s.Submit(ctx, Request{QueryID: o.id, Engine: queries.EngineCPU, NoCache: true, Priority: o.pri}); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	var got []string
	for i := 0; i < len(order); i++ {
		select {
		case key := <-started:
			got = append(got, key)
		case <-time.After(10 * time.Second):
			t.Fatal("queued job never started")
		}
	}
	want := []string{"q2.1", "q2.2", "q3.1", "q1.2"} // priority desc, FIFO within
	for i, id := range want {
		q, err := queries.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if wantFrag := q.Canonical(); !strings.Contains(got[i], wantFrag) {
			t.Fatalf("pickup %d = %q, want the canonical form of %s (priority order %v)", i, got[i], id, want)
		}
	}
}

// TestOverloadMetricsExposition checks the shed/expired/coalesced
// counters and the pending gauge reach the Prometheus exposition.
func TestOverloadMetricsExposition(t *testing.T) {
	s := New(testData(), "v1", Options{Workers: 1, QueueDepth: 1, Shed: true})
	defer s.Close()
	started, release := blockExecutions(s)

	ctx := context.Background()
	blocker, err := s.Submit(ctx, Request{QueryID: "q1.1", Engine: queries.EngineCPU, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Submit(ctx, Request{QueryID: "q1.2", Engine: queries.EngineCPU}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(ctx, Request{QueryID: "q1.3", Engine: queries.EngineCPU}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full shed queue: err = %v, want ErrOverloaded", err)
	}
	var buf strings.Builder
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ssb_shed_total 1",
		"ssb_deadline_expired_total 0",
		"ssb_coalesced_total 0",
		"ssb_queue_pending 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	close(release)
	<-blocker
}
