// Package serve is the concurrent query-service layer on top of the SSB
// engines: requests name a catalog query (or carry an ad-hoc SQL statement
// compiled through internal/sql) and an engine, a bounded worker pool
// executes them (partition-per-core, like the operators' parallelFor), and
// three caches short-circuit repeated work — SQL bindings (statement text
// to planner-ordered query), compiled plans (the built join hash tables,
// shared safely between concurrent runs) and recent results. Plan and
// result keys are the query's canonical form: the binder normalizes ad-hoc
// text (whitespace, comments, conjunct order) into one physical shape, so
// every respelling of a statement shares entries — and a named query's
// entries are shared too whenever the planner lands on the catalog's exact
// plan. Every key embeds the dataset generation, so swapping in a new
// dataset invalidates everything at once.
//
// The service also owns the compressed-execution machinery: Request.Packed
// scans the dataset's bit-packed fact encoding (built lazily, once per
// generation), and a capacity-bounded LRU of packed columns pinned in
// simulated device memory (Options.DeviceCacheBytes, defaulting to the
// V100's capacity) lets repeated coprocessor requests skip their PCIe
// transfers entirely — the residency argument for making a GPU coprocessor
// practical at scale.
//
// The simulated engine times are unaffected by serving: a cache-hit plan
// re-charges its build traffic exactly as a cold run would, so a served
// Result is row-for-row and second-for-second identical to sequential
// queries.Run. What serving changes is the wall clock — the host executes
// the functional work once and fans requests out across cores — which is
// the Stats split of simulated vs. wall-clock latency per engine. The one
// deliberate exception is the packed coprocessor path with residency
// caching: its seconds legitimately depend on device-cache state, so those
// responses bypass the result cache instead of replaying a stale transfer.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"crystal/internal/device"
	"crystal/internal/fleet"
	"crystal/internal/planner"
	"crystal/internal/queries"
	sqlfe "crystal/internal/sql"
	"crystal/internal/ssb"
	"crystal/internal/trace"
)

// ErrClosed is returned by submissions to a closed service.
var ErrClosed = errors.New("serve: service is closed")

// ErrOverloaded reports load shedding: under Options.Shed, a submission
// that finds the pending queue at QueueDepth with no strictly
// lower-priority request to evict fails fast with this error, and an
// evicted request receives it as its Response.Err. ssbserve maps it to
// 429 with a Retry-After header.
var ErrOverloaded = errors.New("serve: overloaded: pending queue is full")

// ErrExpired is delivered as the Response.Err of a request whose
// Deadline elapsed while it was still queued: the worker drops the job
// at pickup instead of executing it dead.
var ErrExpired = errors.New("serve: deadline expired before execution")

// Request names one unit of work: a query executed on one engine. The
// query is either named (QueryID, one of the 13 SSB definitions) or ad hoc
// (SQL, a statement in the internal/sql dialect); exactly one must be set.
type Request struct {
	QueryID string
	// SQL is an ad-hoc statement compiled through the SQL frontend and
	// join-ordered by the cost-based planner.
	SQL    string
	Engine queries.Engine
	// Partitions splits the fact scan into that many zone-mapped morsels:
	// morsels a filter cannot match are skipped, and the surviving ones fan
	// out across the service's bounded morsel pool. 0 (the default) runs the
	// monolithic scan. Rows are identical either way; simulated seconds are
	// identical unless zone maps prune (then they are cheaper).
	Partitions int
	// Packed scans the bit-packed fact encoding (built lazily, once per
	// dataset generation) instead of the plain columns. Rows are identical;
	// simulated seconds reflect the Section 5.5 compression asymmetry, and
	// coprocessor requests ship compressed bytes over PCIe — skipping the
	// transfer entirely for columns the device residency cache holds.
	Packed bool
	// GPUs routes the request to the modeled multi-GPU fleet: the fact
	// table's zone-mapped morsels are range-sharded across that many
	// devices, each runs the tile-based kernel over its own shard, and the
	// partial aggregates merge over the Interconnect. Rows are identical to
	// single-device execution at any fleet size. 0 (the default) runs on
	// one device; fleet requests must name the Standalone GPU engine.
	GPUs int
	// Interconnect names the fleet link ("pcie" or "nvlink"; empty means
	// pcie). Meaningful when GPUs > 0 or Placement is set.
	Interconnect string
	// Placement routes the request through the unified scheduler
	// (queries.Plan.RunScheduled) over host-resident data: "cpu" runs the
	// standalone CPU engine, "gpu" the GPU fleet with every referenced
	// column shipped over the Interconnect per query, "hybrid" co-executes
	// the CPU and GPU arms over a planner-split morsel set, and "auto"
	// lets planner.ChoosePlacement pick whichever the bytes-moved model
	// prices cheapest. Empty (the default) keeps the classic dispatch
	// (Engine + GPUs). Placement requests leave Engine empty (or name the
	// Standalone GPU engine — the kernels the GPU arms run); GPUs sizes
	// the GPU arm (default 1). Rows are identical across placements;
	// simulated seconds follow each placement's bandwidth model.
	Placement string
	// NoCache bypasses the result cache for this request (the plan cache
	// still applies); used to force fresh execution for benchmarking. A
	// NoCache request also never coalesces onto another request's
	// execution — it always runs its own.
	NoCache bool
	// Deadline bounds the request's queue wait: a job still queued when
	// its deadline elapses is dropped at worker pickup with ErrExpired
	// instead of executed dead. 0 means no deadline. Do derives one from
	// its context's deadline when the field is unset. The bound covers
	// queue wait only — a request picked up in time runs to completion.
	Deadline time.Duration
	// Priority orders the pending queue: higher priorities are picked up
	// first, equal priorities FIFO. Under Options.Shed, a full queue
	// admits a newcomer by shedding a strictly lower-priority pending
	// request when one exists. 0 is the default class.
	Priority int
}

// Response is the outcome of one request.
type Response struct {
	Request Request
	// Version is the dataset version the request executed against.
	Version string
	// Query is the resolved (and, for SQL requests, planner-ordered) query
	// the service executed; callers use it to decode result group keys.
	Query queries.Query
	// Adhoc reports whether the request came through the SQL frontend.
	Adhoc  bool
	Result *queries.Result
	// SimSeconds is the engine's simulated device time (Result.Seconds).
	SimSeconds float64
	// Wall is the host wall-clock time the service spent producing the
	// result (near zero on a result-cache hit).
	Wall time.Duration
	// PlanCached and ResultCached report whether the compiled plan and the
	// result were served from cache.
	PlanCached   bool
	ResultCached bool
	// Coalesced reports single-flight sharing: this request missed the
	// result cache but found an identical request (same result-cache key,
	// same dataset generation) already executing, waited for it, and
	// replayed its rows and telemetry — charged only its own queue and
	// wait time, never a second execution.
	Coalesced bool
	// Batched reports shared-scan batching (Options.MaxBatch): the worker
	// that picked this request up drained BatchSize-1 scan-compatible
	// peers from the queue and executed them all inside one shared morsel
	// scan. Rows and SimSeconds are identical to a solo run of the same
	// request; BatchShareSeconds is this member's apportioned share of the
	// batch's simulated time (shares sum exactly to the batch total, which
	// at size >= 2 is less than the sum of the members' solo seconds).
	Batched           bool
	BatchSize         int
	BatchShareSeconds float64
	// Morsels and Pruned report the partitioned-execution outcome: how many
	// morsels the fact scan was split into (1 for monolithic runs) and how
	// many of them zone maps skipped.
	Morsels int
	Pruned  int
	// Packed reports whether the request scanned the bit-packed fact
	// encoding. TransferBytes is the PCIe traffic a coprocessor request
	// actually shipped, and ResidentCols the referenced fact columns the
	// device residency cache served without any transfer.
	Packed        bool
	TransferBytes int64
	ResidentCols  int
	// GPUs and Interconnect echo the normalized fleet shape a fleet
	// request ran on (0/"" for single-device requests); Devices carries
	// the per-device execution telemetry and MergeBytes the
	// partial-aggregate traffic that crossed the interconnect.
	GPUs         int
	Interconnect string
	Devices      []queries.FleetDevice
	MergeBytes   int64
	// Placement is the resolved placement a placement-routed request ran
	// ("cpu", "gpu" or "hybrid" — an "auto" request reports what the
	// planner chose; empty for classic dispatch). CPUFrac is the live-row
	// fraction the schedule routed to the CPU arm, and Executors carries
	// the per-executor telemetry, whose counters sum to the response
	// totals.
	Placement string
	CPUFrac   float64
	Executors []queries.ExecutorResult
	// QueueWait is the time the request sat in the queue before a worker
	// picked it up (not included in Wall, which clocks execution only).
	QueueWait time.Duration
	// TraceID and Trace are set when the service traces (Options.Trace):
	// the flight-recorder handle (GET /trace?id=...) and the request's
	// span tree. Traces are built fresh per request and never served from
	// the result cache.
	TraceID string
	Trace   *trace.Trace
	Err     error
}

// Options configures a Service.
type Options struct {
	// Workers is the size of the execution pool; 0 means GOMAXPROCS.
	Workers int
	// PlanCacheSize caps the compiled-plan cache (default 64 entries).
	PlanCacheSize int
	// ResultCacheSize caps the result cache (default 256 entries).
	ResultCacheSize int
	// BindCacheSize caps the SQL bind cache, which maps raw statement text
	// to its bound, planner-ordered query (default 128 entries).
	BindCacheSize int
	// QueueDepth bounds the pending-request queue (default 4x Workers).
	QueueDepth int
	// Shed switches the full-queue policy from blocking backpressure (the
	// default: Submit waits for space, honoring its context) to load
	// shedding: a submission past QueueDepth fails fast with
	// ErrOverloaded — unless a strictly lower-priority request is
	// pending, in which case that victim is evicted (its Response.Err is
	// ErrOverloaded) and the newcomer admitted.
	Shed bool
	// ExecDelay adds a fixed wall-clock delay to every real engine
	// execution (cache hits and coalesced followers are unaffected). The
	// simulated engines finish in microseconds of wall time, so overload
	// tests and load experiments use this to emulate a slow backend
	// deterministically: N slow executions against a bounded queue must
	// shed on any machine. Zero (the default) adds nothing. A shared-scan
	// batch pays the delay once for the whole batch — the wall-clock form
	// of the scan it shares.
	ExecDelay time.Duration
	// MaxBatch enables shared-scan batching of compatible queries: at
	// pickup a worker drains up to MaxBatch-1 pending requests that are
	// scan-compatible with the picked job (same engine/partitions/packed
	// mode/fleet shape, overlapping fact-column footprint —
	// queries.Compatible) and executes the whole batch through one shared
	// morsel scan (queries.RunBatch), charging shared column traffic once.
	// Each member's rows and simulated seconds are identical to its solo
	// run. 0 or 1 disables batching (the default). Batched executions
	// bypass the result cache and single-flight coalescing — they are
	// multi-query units the per-key machinery cannot represent — and never
	// consult residency caches; NoCache requests and residency-dependent
	// shapes are never batched.
	MaxBatch int
	// MorselHelpers caps the extra goroutines all in-flight requests
	// together may spawn for intra-query parallelism (morsel scans, GPU
	// blocks). The executing worker always makes progress without a slot,
	// so a partitioned query can never starve other requests; helpers only
	// soak up cores the pool isn't using. Default: GOMAXPROCS.
	MorselHelpers int
	// DeviceCacheBytes caps the device-memory residency cache of packed
	// columns the coprocessor engine consults. 0 sizes it to the GPU's
	// memory (device.V100().MemoryBytes); negative disables residency
	// caching (every packed coprocessor request pays its full transfer).
	DeviceCacheBytes int64
	// FleetDeviceMemoryBytes overrides the fleet devices' shard region
	// (spill experiments; 0 keeps the V100's 32 GB): fleet.Assign bounds
	// each device's resident shard bytes by it, and the overflow spills to
	// the host. When set together with an enabled device cache, packed
	// fleet requests additionally consult one residency cache per fleet
	// device for their spilled columns; that cache models a separate
	// pinned-column region sized by DeviceCacheBytes, not part of the
	// shard region this knob constrains. Residency-dependent responses
	// bypass the result cache, like the coprocessor's residency path.
	FleetDeviceMemoryBytes int64
	// Trace enables span-tree tracing: every executed request produces a
	// trace.Trace (admit → bind → plan → run with per-assignment
	// kernel/transfer/merge spans), attached to the Response and retained
	// by the bounded flight recorder. Off by default; when off, the hot
	// path allocates nothing for tracing (pinned by an allocs/op
	// benchmark).
	Trace bool
	// TraceRecent and TraceSlowest bound the flight recorder: the ring of
	// most recent traces (default 64) and the top-K slowest by wall clock
	// (default 16).
	TraceRecent  int
	TraceSlowest int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.PlanCacheSize <= 0 {
		out.PlanCacheSize = 64
	}
	if out.ResultCacheSize <= 0 {
		out.ResultCacheSize = 256
	}
	if out.BindCacheSize <= 0 {
		out.BindCacheSize = 128
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 4 * out.Workers
	}
	if out.MorselHelpers <= 0 {
		out.MorselHelpers = runtime.GOMAXPROCS(0)
	}
	if out.DeviceCacheBytes == 0 {
		out.DeviceCacheBytes = device.V100().MemoryBytes
	}
	if out.TraceRecent <= 0 {
		out.TraceRecent = 64
	}
	if out.TraceSlowest <= 0 {
		out.TraceSlowest = 16
	}
	return out
}

// gate is the shared morsel-parallelism limiter (queries.Limiter): a
// semaphore sized by Options.MorselHelpers that all requests draw helper
// slots from without blocking.
type gate chan struct{}

// TryAcquire grants a helper slot if one is free, without blocking.
func (g gate) TryAcquire() bool {
	select {
	case g <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a helper slot taken by TryAcquire.
func (g gate) Release() { <-g }

// planEntry is a once-guarded plan-cache slot: concurrent misses for the
// same (version, query) compile exactly once and the rest wait on the Once.
type planEntry struct {
	once sync.Once
	plan *queries.Plan
}

// flight is one in-progress execution that identical concurrent misses
// wait on. The leader closes done after publishing either resp (a
// cache-entry-shaped Response followers clone from, like a cache hit) or
// err. Registration and completion both happen under cacheMu together
// with the result-cache lookup, so for any (key, generation) exactly one
// of three states is ever observable: cached, in flight, or absent.
type flight struct {
	done chan struct{}
	resp *Response
	err  error
}

// Service executes SSB query requests concurrently over one dataset.
type Service struct {
	opts Options

	mu      sync.RWMutex // guards ds, version, gen, closed
	ds      *ssb.Dataset
	version string
	// gen is a monotonic dataset generation. Cache keys embed gen, not the
	// version label, so reusing a label (rollback, redeploy) can never
	// resurrect entries compiled against different data.
	gen    uint64
	closed bool

	// cacheMu guards the LRUs (lookups reorder the recency list, so even
	// reads are writes); it is separate from mu so the cache-hit fast path
	// never contends with dataset snapshots. Plan and result keys use the
	// query's canonical form (queries.Query.Canonical), not its ID, so two
	// SQL spellings of one statement — whitespace, comments, filter order —
	// share entries, as does a named query whose catalog plan coincides
	// with the bound form. Distinct canonical forms never collide, which
	// keeps served simulated seconds deterministic.
	cacheMu sync.Mutex
	plans   *lru // "gen\x00canonical" -> *planEntry
	results *lru // "gen\x00canonical\x00engine" -> *Response
	binds   *lru // "gen\x00sql text" -> *boundSQL
	// flights are the in-progress executions coalesceable misses join,
	// keyed like the result cache. Guarded by cacheMu — the same lock as
	// the results LRU — so "check cache, join flight or become leader"
	// is one atomic step and a (key, generation) can never execute twice.
	flights map[string]*flight

	// execHook, when set (tests only, before any traffic), observes every
	// real engine execution with its result-cache key; coalesced and
	// cache-hit responses never fire it. flightHook observes a follower
	// just before it waits on an in-progress flight.
	execHook   func(resultKey string)
	flightHook func()

	statsMu sync.Mutex
	stats   statsAccum

	// packedMu guards the lazily built packed fact encoding: one per
	// dataset generation, shared by every packed request and plan. The
	// first packed request of a generation pays the one-pass packing cost;
	// concurrent firsts serialize on the mutex.
	packedMu  sync.Mutex
	packed    *ssb.PackedFact
	packedGen uint64

	// devCache is the simulated GPU's device-memory residency cache of
	// packed columns (nil when disabled); the coprocessor engine consults
	// it through queries.Residency.
	devCache *deviceCache

	// fleetMu guards fleetCaches, the per-fleet-device residency caches
	// packed fleet requests consult for spilled columns (grown lazily to
	// the largest fleet size seen; only populated when
	// Options.FleetDeviceMemoryBytes constrains device memory).
	fleetMu     sync.Mutex
	fleetCaches []*deviceCache

	// recorder is the bounded flight recorder of recent and slowest
	// traces; nil unless Options.Trace is set, and the nil check is what
	// keeps the untraced hot path allocation-free.
	recorder *trace.Recorder

	// morsels bounds intra-query helper parallelism across every in-flight
	// request (see Options.MorselHelpers).
	morsels gate

	// queue is the pending-request priority queue workers pop from. In
	// the default blocking mode, slots is a QueueDepth-sized semaphore:
	// submit acquires a slot (waiting under its context) before pushing
	// and the popping worker releases it. Under Options.Shed, slots is
	// nil and the depth check lives in queue.offer.
	queue *jobQueue
	slots chan struct{}
	wg    sync.WaitGroup
	// pending counts Submit calls that have passed the closed check but not
	// yet enqueued; Close waits for them before closing the queue.
	pending sync.WaitGroup
}

// New starts a service over ds, identified by version, with opts.Workers
// executor goroutines. Close releases them.
func New(ds *ssb.Dataset, version string, opts Options) *Service {
	s := &Service{
		opts:    opts.withDefaults(),
		ds:      ds,
		version: version,
	}
	s.plans = newLRU(s.opts.PlanCacheSize)
	s.results = newLRU(s.opts.ResultCacheSize)
	s.binds = newLRU(s.opts.BindCacheSize)
	if s.opts.DeviceCacheBytes > 0 {
		s.devCache = newDeviceCache(s.opts.DeviceCacheBytes, s.gen)
	}
	if s.opts.Trace {
		s.recorder = trace.NewRecorder(s.opts.TraceRecent, s.opts.TraceSlowest)
	}
	s.morsels = make(gate, s.opts.MorselHelpers)
	s.stats.engines = map[queries.Engine]*engineAccum{}
	s.flights = map[string]*flight{}
	s.queue = newJobQueue()
	if !s.opts.Shed {
		s.slots = make(chan struct{}, s.opts.QueueDepth)
	}
	s.wg.Add(s.opts.Workers)
	for w := 0; w < s.opts.Workers; w++ {
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.queue.pop()
				if !ok {
					return
				}
				if s.slots != nil {
					<-s.slots
				}
				wait := time.Since(j.enqueued)
				if j.req.Deadline > 0 && wait >= j.req.Deadline {
					// Expired in the queue: executing it would waste a
					// worker on an answer nobody is waiting for.
					s.recordExpired()
					j.done <- Response{Request: j.req, QueueWait: wait, Err: ErrExpired}
					continue
				}
				if peers := s.formBatch(j); len(peers) > 0 {
					s.executeBatch(j, wait, peers)
					continue
				}
				j.done <- s.execute(j.req, wait)
			}
		}()
	}
	return s
}

// Workers returns the execution pool size.
func (s *Service) Workers() int { return s.opts.Workers }

// TraceRecorder returns the service's flight recorder of recent and
// slowest traces, or nil when tracing is disabled (Options.Trace).
func (s *Service) TraceRecorder() *trace.Recorder { return s.recorder }

// Version returns the current dataset version.
func (s *Service) Version() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// SetDataset atomically swaps in a new dataset under a new version and
// drops every cached plan and result: entries are keyed by version, so
// nothing compiled against the old data can ever be served again.
//
// The generation bump and the purge happen under one cacheMu critical
// section — the same lock the execute path's lookup-or-lead section
// holds while it re-checks the generation. That makes the swap atomic
// from the lookup's point of view: a request either runs entirely
// before it (and finds the old generation's entries intact) or entirely
// after (and retries against the new generation). Bumping and purging
// in two separate sections allowed a full lead→store→complete cycle to
// slip between them, after which the swap's own late purge deleted the
// stored entry while its generation was still current — and the next
// identical request re-executed it. Lock order is cacheMu → s.mu,
// matching generation() calls made under cacheMu; nothing acquires
// cacheMu while holding s.mu.
func (s *Service) SetDataset(version string, ds *ssb.Dataset) {
	s.cacheMu.Lock()
	s.mu.Lock()
	s.ds = ds
	s.version = version
	s.gen++
	gen := s.gen
	s.mu.Unlock()
	s.plans.purge()
	s.results.purge()
	s.binds.purge()
	s.cacheMu.Unlock()
	s.packedMu.Lock()
	s.packed = nil
	s.packedMu.Unlock()
	if s.devCache != nil {
		s.devCache.purge(gen)
	}
	s.fleetMu.Lock()
	for _, c := range s.fleetCaches {
		c.purge(gen)
	}
	s.fleetMu.Unlock()
}

// fleetResidencies returns one generation-bound residency cache per fleet
// device, growing the cache list to the requested fleet size. Each cache
// is bounded by Options.DeviceCacheBytes — the same knob the coprocessor's
// residency cache uses, here modeling the headroom a device dedicates to
// pinning spilled packed columns. Entries are scoped to the fleet shape
// (gpus × effective partitions): different shard maps spill different
// byte ranges of a column, which must never satisfy each other's lookups.
func (s *Service) fleetResidencies(gen uint64, gpus, partitions int) []queries.Residency {
	if partitions < gpus {
		partitions = gpus // RunFleet raises the morsel count the same way
	}
	shape := strconv.Itoa(gpus) + "x" + strconv.Itoa(partitions)
	s.fleetMu.Lock()
	for len(s.fleetCaches) < gpus {
		s.fleetCaches = append(s.fleetCaches, newDeviceCache(s.opts.DeviceCacheBytes, s.generation()))
	}
	out := make([]queries.Residency, gpus)
	for i := range out {
		out[i] = shapedResidency{cache: s.fleetCaches[i], gen: gen, shape: shape}
	}
	s.fleetMu.Unlock()
	return out
}

// packedFact returns the packed fact encoding for the generation's dataset,
// building it on first use and rebuilding after a dataset swap. A stale
// in-flight request (its generation raced past by SetDataset) gets a
// transient packing instead of evicting the live one — otherwise
// interleaved old/new requests would re-pack the fact table per request.
func (s *Service) packedFact(gen uint64, ds *ssb.Dataset) *ssb.PackedFact {
	s.packedMu.Lock()
	defer s.packedMu.Unlock()
	if s.packed != nil && s.packedGen == gen {
		return s.packed
	}
	pf := ds.Pack()
	if s.generation() == gen {
		s.packed = pf
		s.packedGen = gen
	}
	return pf
}

// Close drains the worker pool. In-flight requests finish; subsequent
// submissions fail with ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.pending.Wait()
	s.queue.close()
	s.wg.Wait()
}

// Submit enqueues a request on the worker pool and returns a channel that
// receives the single response. In the default blocking mode a full
// queue applies backpressure: Submit waits for space, and ctx bounds the
// wait — the context is checked before and during the enqueue, so a
// cancelled context never blocks on a full queue. Under Options.Shed a
// full queue instead fails fast with ErrOverloaded (see Options.Shed for
// the priority-eviction carve-out).
func (s *Service) Submit(ctx context.Context, req Request) (<-chan Response, error) {
	return s.submit(ctx, req)
}

func (s *Service) submit(ctx context.Context, req Request) (<-chan Response, error) {
	done := make(chan Response, 1)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	// Registering under the read lock orders this submission before any
	// Close: the worker pool stays up until the enqueue below lands.
	s.pending.Add(1)
	s.mu.RUnlock()
	defer s.pending.Done()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	j := &job{req: req, done: done}
	if s.slots == nil {
		// Shed mode: admission is decided now, under the queue lock.
		j.enqueued = time.Now()
		pushed, victim, expired := s.queue.offer(j, s.opts.QueueDepth)
		for _, e := range expired {
			// Deadline-dead jobs dropped by the full-queue scan complete here
			// with the same response shape worker pickup would have produced;
			// the slots they held now admit live work instead of forcing a
			// shed or an eviction.
			s.recordExpired()
			e.done <- Response{Request: e.req, QueueWait: time.Since(e.enqueued), Err: ErrExpired}
		}
		if victim != nil {
			s.recordShed()
			victim.done <- Response{Request: victim.req, QueueWait: time.Since(victim.enqueued), Err: ErrOverloaded}
		}
		if !pushed {
			s.recordShed()
			return nil, ErrOverloaded
		}
		return done, nil
	}
	select {
	case s.slots <- struct{}{}:
		j.enqueued = time.Now()
		s.queue.push(j)
		return done, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Do executes one request synchronously, honoring ctx cancellation both
// while the request waits for queue space and while it waits for a worker.
// A request cancelled after enqueueing still completes in the background;
// its response is discarded. When the request sets no Deadline of its
// own, Do derives one from ctx's deadline, so a deadline-bounded call
// also sheds dead at worker pickup instead of executing unobserved.
func (s *Service) Do(ctx context.Context, req Request) (Response, error) {
	if req.Deadline == 0 {
		if dl, ok := ctx.Deadline(); ok {
			if budget := time.Until(dl); budget > 0 {
				req.Deadline = budget
			}
		}
	}
	done, err := s.submit(ctx, req)
	if err != nil {
		return Response{}, err
	}
	select {
	case resp := <-done:
		return resp, resp.Err
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

// RunAll dispatches the batch across the worker pool and returns the
// responses in request order. Per-request failures are reported in each
// Response.Err; the returned error covers submission only.
func (s *Service) RunAll(ctx context.Context, reqs []Request) ([]Response, error) {
	chans := make([]<-chan Response, len(reqs))
	for i, req := range reqs {
		done, err := s.submit(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("serve: submitting request %d: %w", i, err)
		}
		chans[i] = done
	}
	out := make([]Response, len(reqs))
	for i, done := range chans {
		select {
		case out[i] = <-done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// boundSQL is a bind-cache entry: the statement compiled, validated and
// join-ordered once, with its canonical cache key.
type boundSQL struct {
	q     queries.Query
	canon string
}

// catalog memoizes the 13 named queries with their canonical keys, so the
// result-cache fast path never re-scans the catalog or re-renders the
// canonical string. Entries are read-only after the Once.
var (
	catalogOnce sync.Once
	catalog     map[string]*boundSQL
)

func namedQuery(id string) (*boundSQL, error) {
	catalogOnce.Do(func() {
		catalog = make(map[string]*boundSQL)
		for _, q := range queries.All() {
			catalog[q.ID] = &boundSQL{q: q, canon: q.Canonical()}
		}
	})
	b, ok := catalog[id]
	if !ok {
		_, err := queries.ByID(id) // canonical "unknown query" error
		return nil, err
	}
	return b, nil
}

// resolve turns a request into the query to execute plus its canonical
// cache key. Named queries come from the catalog; SQL statements go
// through the frontend and the cost-based planner (payload-order
// preserving, priced on the GPU device the paper centers on), memoized in
// the bind cache so repeated texts skip both.
func (s *Service) resolve(ds *ssb.Dataset, gen uint64, req Request) (queries.Query, string, error) {
	switch {
	case req.QueryID != "" && req.SQL != "":
		return queries.Query{}, "", fmt.Errorf("serve: request sets both QueryID %q and SQL; pick one", req.QueryID)
	case req.QueryID != "":
		b, err := namedQuery(req.QueryID)
		if err != nil {
			return queries.Query{}, "", err
		}
		return b.q, b.canon, nil
	case req.SQL != "":
		bindKey := cacheKey(strconv.FormatUint(gen, 10), "sql", req.SQL)
		s.cacheMu.Lock()
		v, ok := s.binds.get(bindKey)
		s.cacheMu.Unlock()
		if ok {
			b := v.(*boundSQL)
			return b.q, b.canon, nil
		}
		q, err := sqlfe.Compile(req.SQL)
		if err != nil {
			return queries.Query{}, "", err
		}
		q = planner.OptimizeGrouped(device.V100(), ds, q)
		b := &boundSQL{q: q, canon: q.Canonical()}
		if s.generation() == gen {
			s.cacheMu.Lock()
			s.binds.put(bindKey, b)
			s.cacheMu.Unlock()
		}
		return b.q, b.canon, nil
	default:
		return queries.Query{}, "", errors.New("serve: request names no query (set QueryID or SQL)")
	}
}

// execute runs one request on the calling worker goroutine. queueWait is
// how long the request sat in the queue before this worker picked it up.
func (s *Service) execute(req Request, queueWait time.Duration) Response {
	start := time.Now()

	// Canonicalize the engine so aliases ("gpu") hit the same cache entries
	// and dispatch as their full names. Placement requests may leave the
	// engine empty — the placement router owns engine choice and runs the
	// tile-based kernels on its GPU arms.
	engine := queries.EngineGPU
	if req.Engine != "" || req.Placement == "" {
		var err error
		engine, err = ParseEngine(string(req.Engine))
		if err != nil {
			s.recordError()
			return Response{Request: req, Err: err}
		}
	}
	if req.Partitions < 0 {
		req.Partitions = 0
	}
	if req.GPUs < 0 {
		req.GPUs = 0
	}
	req.Engine = engine
	var link fleet.Interconnect
	switch {
	case req.Placement != "":
		placement, err := ParsePlacement(req.Placement)
		if err != nil {
			s.recordError()
			return Response{Request: req, Err: err}
		}
		req.Placement = placement // canonicalize for cache keys and stats
		if engine != queries.EngineGPU {
			s.recordError()
			return Response{Request: req, Err: fmt.Errorf(
				"serve: placement routing owns engine choice; leave Engine empty or name %q, got %q",
				queries.EngineGPU, engine)}
		}
		if req.GPUs == 0 {
			req.GPUs = 1 // the GPU arm's default fleet size
		}
		if link, err = fleet.ParseInterconnect(req.Interconnect); err != nil {
			s.recordError()
			return Response{Request: req, Err: err}
		}
		req.Interconnect = link.Name
	case req.GPUs > 0:
		if engine != queries.EngineGPU {
			s.recordError()
			return Response{Request: req, Err: fmt.Errorf(
				"serve: fleet execution runs the tile-based kernels; engine must be %q, got %q",
				queries.EngineGPU, engine)}
		}
		var err error
		if link, err = fleet.ParseInterconnect(req.Interconnect); err != nil {
			s.recordError()
			return Response{Request: req, Err: err}
		}
		req.Interconnect = link.Name // canonicalize for cache keys and stats
	default:
		req.Interconnect = ""
	}
	resp := Response{Request: req, Adhoc: req.SQL != "", Packed: req.Packed, QueueWait: queueWait}

	// Snapshot → resolve → lookup-or-lead runs in a retry loop. SetDataset
	// bumps the generation and then purges the caches, so a request that
	// snapshotted the old generation and stalled could arrive at the
	// lookup after its key's leader already ran and was purged away — and
	// would then execute that (key, generation) a second time. The lookup
	// critical section re-checks that the snapshotted generation is still
	// current and starts over when it is not, which makes lookup-or-lead
	// atomic with respect to the swap's bump-then-purge and keeps
	// exactly-one-execution per (key, generation) strict.
	origReq := req
	var (
		ds              *ssb.Dataset
		version         string
		gen             uint64
		q               queries.Query
		canon           string
		bindWall        time.Duration
		coprocResidency bool
		fleetResidency  bool
		genKey          string
		resultKey       string
	)
	for {
		req = origReq
		s.mu.RLock()
		ds, version, gen = s.ds, s.version, s.gen
		s.mu.RUnlock()
		resp.Version = version

		if req.Placement != "" {
			// Key the effective morsel shape: RunHybrid raises the morsel count
			// to GPUs+1 (every arm can own a morsel) and ssb.Partition clamps it
			// to the tile count, so requests that execute the same split share
			// result-cache entries.
			if req.Partitions < req.GPUs+1 {
				req.Partitions = req.GPUs + 1
			}
			if eff := ssb.EffectivePartitions(ds.Lineorder.Rows(), req.Partitions); eff > 0 {
				req.Partitions = eff
			}
			resp.Request = req
		} else if req.GPUs > 0 {
			// Key the effective shard shape, not the requested one: RunFleet
			// raises the morsel count to the fleet size and ssb.Partition
			// clamps it to the tile count, so requests that execute the same
			// shard map share result-cache entries and residency pins.
			if req.Partitions < req.GPUs {
				req.Partitions = req.GPUs
			}
			if eff := ssb.EffectivePartitions(ds.Lineorder.Rows(), req.Partitions); eff > 0 {
				req.Partitions = eff
			}
			resp.Request = req
		}

		// bindWall times query resolution for the trace's bind span; stamped
		// unconditionally (two clock reads), consumed only when tracing.
		bindStart := time.Now()
		var err error
		q, canon, err = s.resolve(ds, gen, req)
		bindWall = time.Since(bindStart)
		if err != nil {
			resp.Err = err
			s.recordError()
			return resp
		}
		resp.Query = q

		// The partition count and encoding are part of the result identity:
		// rows always agree, but a pruned partitioned run or a packed run
		// reports different Seconds/Morsels/Pruned/TransferBytes than a plain
		// monolithic one, and those must replay deterministically. Packed
		// coprocessor requests with residency caching are the one exception:
		// their seconds depend on device-cache state (cold vs warm transfer),
		// so they bypass the result cache entirely rather than replay a stale
		// transfer time.
		// Residency-dependent paths and the result cache: coprocessor
		// residency responses always bypass it (their seconds differ cold vs
		// warm). Packed fleet requests with per-device caches enabled may
		// still *look up* — only responses that touched no residency state
		// (nothing spilled, nothing resident) are ever stored, and those are
		// deterministic — but a response with spill traffic or elisions is
		// never cached.
		coprocResidency = req.Packed && req.Engine == queries.EngineCoproc && s.devCache != nil
		fleetResidency = req.Placement == "" && req.GPUs > 0 && req.Packed && s.devCache != nil && s.opts.FleetDeviceMemoryBytes > 0
		genKey = strconv.FormatUint(gen, 10)
		// The requested placement joins the key ("auto" stays "auto": the
		// planner's choice is deterministic per generation, so the cached
		// response replays it exactly). Placement runs never consult residency
		// caches — their seconds are deterministic, so they always cache.
		resultKey = cacheKey(genKey, canon, string(req.Engine), strconv.Itoa(req.Partitions), packedKey(req.Packed),
			strconv.Itoa(req.GPUs), req.Interconnect, req.Placement)
		// Cache lookup and single-flight formation are one critical section
		// under cacheMu: a coalesceable request either hits the cache, joins
		// the in-progress flight for its key, or registers itself as the
		// leader — so for any (key, generation) at most one execution ever
		// runs, no matter how the misses interleave with the leader's fill.
		if coalesceable := !req.NoCache && !coprocResidency; !coalesceable {
			break
		}
		s.cacheMu.Lock()
		if s.generation() != gen {
			// The dataset moved between the snapshot and this critical
			// section: the swap's purge may have dropped this generation's
			// entries, so executing now could repeat a key that already
			// ran. Start over against the new generation.
			s.cacheMu.Unlock()
			continue
		}
		if v, ok := s.results.get(resultKey); ok {
			s.cacheMu.Unlock()
			// Hand out a copy: callers may mutate Groups in place, and the
			// cached rows must stay identical to sequential execution. The
			// id is rewritten because equivalent queries (named vs SQL, or
			// two SQL spellings) share the entry under their canonical form.
			s.replay(&resp, v.(*Response), q, start, queueWait, bindWall, false)
			return resp
		}
		if f, ok := s.flights[resultKey]; ok {
			s.cacheMu.Unlock()
			// Follower: an identical request is already executing against
			// this generation. Wait for the leader and replay its outcome —
			// this request is charged only the time it spent waiting.
			if s.flightHook != nil {
				s.flightHook()
			}
			<-f.done
			if f.err != nil || f.resp == nil {
				err := f.err
				if err == nil {
					err = errors.New("serve: coalesced execution did not complete")
				}
				resp.Err = err
				s.recordError()
				return resp
			}
			s.replay(&resp, f.resp, q, start, queueWait, bindWall, true)
			return resp
		}
		f := &flight{done: make(chan struct{})}
		s.flights[resultKey] = f
		// Deferred so even a panicking leader releases its followers.
		defer s.completeFlight(f, resultKey, &resp)
		s.cacheMu.Unlock()
		break
	}
	if s.execHook != nil {
		s.execHook(resultKey)
	}
	if s.opts.ExecDelay > 0 {
		time.Sleep(s.opts.ExecDelay)
	}

	// Plan lookup: install a once-guarded entry so concurrent misses for
	// the same (generation, canonical query) compile a single plan. The
	// install is skipped if the dataset moved on since the snapshot — the
	// entry would be keyed by a dead generation and only waste an LRU slot.
	planKey := cacheKey(genKey, canon)
	s.cacheMu.Lock()
	var entry *planEntry
	if v, ok := s.plans.get(planKey); ok {
		entry = v.(*planEntry)
		resp.PlanCached = true
	} else {
		entry = &planEntry{}
		if s.generation() == gen {
			s.plans.put(planKey, entry)
		}
	}
	s.cacheMu.Unlock()

	planStart := time.Now()
	entry.once.Do(func() { entry.plan = queries.Compile(ds, q) })
	planWall := time.Since(planStart)
	opts := queries.RunOptions{}
	opts.Partition.Partitions = req.Partitions
	opts.Partition.Limiter = s.morsels
	opts.Trace = s.recorder != nil
	if req.Packed {
		opts.Partition.Packed = s.packedFact(gen, ds)
		if fleetResidency {
			opts.Fleet.Residency = s.fleetResidencies(gen, req.GPUs, req.Partitions)
		} else if coprocResidency {
			opts.Partition.Residency = boundResidency{cache: s.devCache, gen: gen}
		}
	}
	var runSpan *trace.Span
	switch {
	case req.Placement != "":
		fl := fleet.Spec{GPUs: req.GPUs, Link: link}
		placement := req.Placement
		if placement == PlacementAuto {
			// Deterministic per generation: same dataset, same morsel map,
			// same choice — which is what lets "auto" responses cache.
			choice, _, err := planner.ChoosePlacement(fl, ds, q,
				entry.plan.Morsels(req.Partitions), opts.Partition.Packed)
			if err != nil {
				resp.Err = err
				s.recordError()
				return resp
			}
			placement = string(choice)
		}
		frac := -1.0 // hybrid: the throughput-balanced default split
		switch placement {
		case PlacementCPU:
			frac = 1
		case PlacementGPU:
			frac = 0
		}
		hr, err := entry.plan.RunHybrid(fl, frac, opts)
		if err != nil {
			resp.Err = err
			s.recordError()
			return resp
		}
		resp.Result = hr.Result
		resp.Placement = placement
		resp.CPUFrac = hr.CPUFrac
		resp.GPUs = hr.GPUs
		resp.Interconnect = hr.Interconnect
		resp.Executors = hr.Executors
		resp.MergeBytes = hr.MergeBytes
		runSpan = hr.Trace
	case req.GPUs > 0:
		dev := device.V100()
		if s.opts.FleetDeviceMemoryBytes > 0 {
			d := *dev
			d.MemoryBytes = s.opts.FleetDeviceMemoryBytes
			dev = &d
		}
		fr, err := entry.plan.RunFleet(fleet.Spec{GPUs: req.GPUs, Device: dev, Link: link}, opts)
		if err != nil {
			resp.Err = err
			s.recordError()
			return resp
		}
		resp.Result = fr.Result
		resp.GPUs = fr.GPUs
		resp.Interconnect = fr.Interconnect
		resp.Devices = fr.Devices
		resp.MergeBytes = fr.MergeBytes
		runSpan = fr.Trace
	default:
		// Classic engine dispatch runs through the same scheduled path
		// RunPartitioned wraps, unwrapped here so the run's span tree is
		// available when tracing.
		sr, err := entry.plan.RunScheduled(entry.plan.ScheduleEngine(req.Engine, opts))
		if err != nil {
			// Unreachable: ScheduleEngine covers every morsel exactly once.
			panic("serve: invalid engine schedule: " + err.Error())
		}
		resp.Result = sr.Result
		runSpan = sr.Trace
	}
	resp.Result.QueryID = q.ID
	resp.SimSeconds = resp.Result.Seconds
	resp.Morsels = resp.Result.Morsels
	resp.Pruned = resp.Result.Pruned
	resp.TransferBytes = resp.Result.TransferBytes
	resp.ResidentCols = resp.Result.ResidentCols
	resp.Wall = time.Since(start)
	if s.recorder != nil {
		s.finishTrace(&resp, start, queueWait, bindWall, planWall, runSpan)
	}

	// Store unconditionally, even when the dataset was swapped while this
	// request executed: the entry is keyed by the generation it ran
	// against, so no new request (which snapshots the current generation)
	// can ever look it up — but an in-flight straggler that snapshotted
	// the same old generation can, and must find it rather than execute
	// the key a second time. That store-after-swap is what keeps
	// exactly-one-execution per (key, generation) strict; dead-generation
	// entries merely age out of the LRU. Residency-dependent responses
	// are never cached; see the result-cache comment above.
	cacheable := !coprocResidency &&
		(!fleetResidency || (resp.TransferBytes == 0 && resp.ResidentCols == 0))
	if cacheable {
		// The cache keeps its own copy for the same reason the hit path
		// clones: the caller owns the returned Result (and Devices).
		cached := resp
		cached.Result = resp.Result.Clone()
		cached.Devices = append([]queries.FleetDevice(nil), resp.Devices...)
		cached.Executors = append([]queries.ExecutorResult(nil), resp.Executors...)
		// Traces are per-request observations, never replayed from cache.
		cached.Trace = nil
		cached.TraceID = ""
		cached.QueueWait = 0
		s.cacheMu.Lock()
		s.results.put(resultKey, &cached)
		s.cacheMu.Unlock()
	}
	s.recordStats(resp)
	return resp
}

// replay fills resp from a stored execution — a result-cache entry or a
// completed flight's published response — cloning the result and
// telemetry slices so the caller owns what it receives, then stamps the
// cache/coalesce flags, finishes the trace and records stats.
func (s *Service) replay(resp *Response, stored *Response, q queries.Query, start time.Time, queueWait, bindWall time.Duration, coalesced bool) {
	resp.Result = stored.Result.Clone()
	resp.Result.QueryID = q.ID
	resp.SimSeconds = stored.SimSeconds
	resp.Morsels = stored.Morsels
	resp.Pruned = stored.Pruned
	resp.TransferBytes = stored.TransferBytes
	resp.ResidentCols = stored.ResidentCols
	resp.GPUs = stored.GPUs
	resp.Interconnect = stored.Interconnect
	resp.Devices = append([]queries.FleetDevice(nil), stored.Devices...)
	resp.MergeBytes = stored.MergeBytes
	resp.Placement = stored.Placement
	resp.CPUFrac = stored.CPUFrac
	resp.Executors = append([]queries.ExecutorResult(nil), stored.Executors...)
	resp.PlanCached = true
	resp.ResultCached = !coalesced
	resp.Coalesced = coalesced
	resp.Wall = time.Since(start)
	if s.recorder != nil {
		s.finishTrace(resp, start, queueWait, bindWall, 0, nil)
	}
	s.recordStats(*resp)
}

// completeFlight publishes the leader's outcome on its flight and
// releases the followers. The flight is deleted under cacheMu strictly
// after the leader's cache store in the execute body, so no identical
// request can ever miss both the cache and the flight table while an
// execution it should have shared is still running. Deferred from the
// leader's execute, so even a panic releases followers (they observe a
// flight with neither resp nor err and synthesize an error).
func (s *Service) completeFlight(f *flight, key string, resp *Response) {
	if resp.Err == nil && resp.Result != nil {
		// Publish a cache-entry-shaped copy: followers clone from it the
		// same way cache hits clone, and never share mutable state with
		// the leader's caller.
		lead := *resp
		lead.Result = resp.Result.Clone()
		lead.Devices = append([]queries.FleetDevice(nil), resp.Devices...)
		lead.Executors = append([]queries.ExecutorResult(nil), resp.Executors...)
		lead.Trace = nil
		lead.TraceID = ""
		lead.QueueWait = 0
		f.resp = &lead
	} else {
		f.err = resp.Err
	}
	s.cacheMu.Lock()
	delete(s.flights, key)
	s.cacheMu.Unlock()
	close(f.done)
}

// finishTrace assembles the request's span tree — admit, bind, plan and
// the run span the scheduled execution built (nil for a result-cache hit,
// which gets a cache-hit marker instead) — and hands it to the flight
// recorder, stamping the Response with the recorded ID. Called only when
// tracing is enabled.
func (s *Service) finishTrace(resp *Response, start time.Time, queueWait, bindWall, planWall time.Duration, runSpan *trace.Span) {
	root := &trace.Span{
		Phase: trace.PhaseRequest,
		Children: []*trace.Span{
			{Phase: trace.PhaseAdmit, Wall: queueWait},
			{Phase: trace.PhaseBind, Wall: bindWall},
		},
	}
	if runSpan != nil {
		root.Children = append(root.Children,
			&trace.Span{Phase: trace.PhasePlan, Wall: planWall, Cached: resp.PlanCached},
			runSpan)
		root.Sim = runSpan.Sim
	} else if resp.Coalesced {
		// Coalesced: the response replays a concurrent leader's execution;
		// this request's own work was waiting, not running.
		root.Children = append(root.Children, &trace.Span{Phase: trace.PhaseCoalesced, Cached: false})
	} else {
		// Result-cache hit: the response replays stored telemetry, but no
		// simulated execution happened in this request.
		root.Children = append(root.Children, &trace.Span{Phase: trace.PhaseCacheHit, Cached: true})
	}
	root.Wall = queueWait + time.Since(start)
	tr := &trace.Trace{
		Query:        resp.Query.ID,
		Engine:       EngineAlias(resp.Request.Engine),
		Placement:    resp.Placement,
		GPUs:         resp.GPUs,
		Interconnect: resp.Interconnect,
		Cached:       resp.ResultCached,
		Start:        start.Add(-queueWait),
		Wall:         root.Wall,
		Sim:          root.Sim,
		Root:         root,
	}
	resp.TraceID = s.recorder.Add(tr)
	resp.Trace = tr
}

func (s *Service) generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

func (s *Service) recordStats(resp Response) {
	s.statsMu.Lock()
	s.stats.record(resp)
	s.statsMu.Unlock()
}

func (s *Service) recordError() {
	s.statsMu.Lock()
	s.stats.errors++
	s.stats.requests++
	s.statsMu.Unlock()
}

func (s *Service) recordShed() {
	s.statsMu.Lock()
	s.stats.shed++
	s.statsMu.Unlock()
}

func (s *Service) recordExpired() {
	s.statsMu.Lock()
	s.stats.expired++
	s.statsMu.Unlock()
}

// recordBatch tallies one shared-scan batch execution; the batch's size is
// visible as the per-response batchedRequests delta, and the byte pair
// carries the shared-vs-solo scan traffic the batch deduplicated.
func (s *Service) recordBatch(sharedBytes, soloBytes int64) {
	s.statsMu.Lock()
	s.stats.batches++
	s.stats.batchSharedBytes += sharedBytes
	s.stats.batchSoloBytes += soloBytes
	s.statsMu.Unlock()
}

// cacheKey joins key parts with NUL, which cannot appear in query ids,
// engine names or versions.
func cacheKey(parts ...string) string { return strings.Join(parts, "\x00") }

// packedKey renders the encoding choice for cache keys.
func packedKey(packed bool) string {
	if packed {
		return "packed"
	}
	return "plain"
}

// The placements a request may name. PlacementAuto defers to
// planner.ChoosePlacement; the other three force one of the host-resident
// placements the unified scheduler executes.
const (
	PlacementAuto   = "auto"
	PlacementCPU    = string(planner.PlaceCPU)
	PlacementGPU    = string(planner.PlaceGPU)
	PlacementHybrid = string(planner.PlaceHybrid)
)

// ParsePlacement canonicalizes a requested placement ("auto", "cpu",
// "gpu" or "hybrid", case-insensitive).
func ParsePlacement(name string) (string, error) {
	switch p := strings.ToLower(strings.TrimSpace(name)); p {
	case PlacementAuto, PlacementCPU, PlacementGPU, PlacementHybrid:
		return p, nil
	default:
		return "", fmt.Errorf("serve: unknown placement %q (want auto, cpu, gpu or hybrid)", name)
	}
}

// engineAliases maps short names (CLI/HTTP friendly) to engines.
var engineAliases = map[string]queries.Engine{
	"gpu":     queries.EngineGPU,
	"cpu":     queries.EngineCPU,
	"hyper":   queries.EngineHyper,
	"monet":   queries.EngineMonet,
	"monetdb": queries.EngineMonet,
	"omnisci": queries.EngineOmnisci,
	"coproc":  queries.EngineCoproc,
}

// ParseEngine resolves an engine from its full name ("Standalone GPU") or
// a short alias ("gpu", "cpu", "hyper", "monet", "omnisci", "coproc").
func ParseEngine(name string) (queries.Engine, error) {
	for _, e := range queries.Engines() {
		if string(e) == name {
			return e, nil
		}
	}
	if e, ok := engineAliases[strings.ToLower(strings.TrimSpace(name))]; ok {
		return e, nil
	}
	return "", fmt.Errorf("serve: unknown engine %q", name)
}

// EngineAlias returns the canonical short alias for an engine.
func EngineAlias(e queries.Engine) string {
	switch e {
	case queries.EngineGPU:
		return "gpu"
	case queries.EngineCPU:
		return "cpu"
	case queries.EngineHyper:
		return "hyper"
	case queries.EngineMonet:
		return "monet"
	case queries.EngineOmnisci:
		return "omnisci"
	case queries.EngineCoproc:
		return "coproc"
	}
	return string(e)
}
