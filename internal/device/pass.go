package device

import (
	"fmt"
	"time"
)

// ProbeSet records a batch of random accesses into one structure (a hash
// table, an offset array, ...). The structure size determines which cache
// level the working set lives in, and therefore the cost per probe.
type ProbeSet struct {
	// Count is the number of random probes.
	Count int64
	// StructBytes is the size of the structure being probed.
	StructBytes int64
	// Dependent marks probes whose addresses depend on prior probe results
	// (chained join pipelines); these stall CPU pipelines harder.
	Dependent bool
	// Writes marks the probes as random writes (scatter), priced against
	// write bandwidth when they miss cache.
	Writes bool
	// StallOverride replaces the device's default random-access stall factor
	// when positive (group prefetching hides most of the stall at the cost
	// of extra instructions, Section 4.3).
	StallOverride float64
}

func (ps ProbeSet) stall(s *Spec) float64 {
	if ps.StallOverride > 0 {
		return ps.StallOverride
	}
	st := s.RandomStall
	if ps.Dependent {
		st = s.DependentStall
	}
	if st == 0 {
		st = 1
	}
	return st
}

// Pass records the memory traffic and compute work of one parallel pass over
// the data (one kernel on the GPU, one parallel loop on the CPU). A Pass is
// the unit the paper's models price: streaming reads overlap with compute
// and with cache-resident probes (whichever is the bottleneck wins), then
// writes, atomics and branch penalties are added.
type Pass struct {
	// BytesRead is sequential/coalesced bytes read from device memory.
	BytesRead int64
	// BytesWritten is sequential/coalesced bytes written to device memory.
	BytesWritten int64
	// RandomWrites is the number of uncoalesced scattered writes; each costs
	// a full DRAM line (this is what sinks the independent-threads selection
	// kernel in Section 3.2).
	RandomWrites int64
	// Probes are the random-access batches performed by the pass.
	Probes []ProbeSet
	// AtomicOps is the number of contended global atomic updates.
	AtomicOps int64
	// ComputeCycles is the total scalar-equivalent compute work in
	// core-cycles across all elements; it is divided by cores*clock (the
	// caller folds SIMD lane counts in via CyclesScalar/CyclesSIMD).
	ComputeCycles float64
	// Mispredicts is the number of branch mispredictions incurred.
	Mispredicts int64
	// VectorEff derates streaming read bandwidth for partially vectorized
	// loads (Figure 9: items-per-thread 1/2/4). Zero means 1.0.
	VectorEff float64
	// OccupancyFactor multiplies the whole pass for GPU under-occupancy
	// (Figure 9: thread blocks of 512/1024). Zero means 1.0.
	OccupancyFactor float64
	// Kernels is the number of kernel launches this pass performed (>=1 for
	// GPU passes; 0 collapses to 1 launch only if Label is set... it is
	// simply added as launch overhead count).
	Kernels int
	// Label is a human-readable tag for debugging and reports.
	Label string
}

// Add merges o into p (used when parallel blocks accumulate into a kernel
// total). Scalar factors (VectorEff, OccupancyFactor) are taken from o when
// set.
func (p *Pass) Add(o *Pass) {
	p.BytesRead += o.BytesRead
	p.BytesWritten += o.BytesWritten
	p.RandomWrites += o.RandomWrites
	p.AtomicOps += o.AtomicOps
	p.ComputeCycles += o.ComputeCycles
	p.Mispredicts += o.Mispredicts
	p.Kernels += o.Kernels
	if o.VectorEff != 0 {
		p.VectorEff = o.VectorEff
	}
	if o.OccupancyFactor != 0 {
		p.OccupancyFactor = o.OccupancyFactor
	}
	for _, ps := range o.Probes {
		p.AddProbes(ps)
	}
}

// AddProbes accumulates a probe batch, merging with an existing batch
// against the same structure when possible to keep Pass compact.
func (p *Pass) AddProbes(ps ProbeSet) {
	if ps.Count == 0 {
		return
	}
	for i := range p.Probes {
		e := &p.Probes[i]
		if e.StructBytes == ps.StructBytes && e.Dependent == ps.Dependent && e.Writes == ps.Writes && e.StallOverride == ps.StallOverride {
			e.Count += ps.Count
			return
		}
	}
	p.Probes = append(p.Probes, ps)
}

// Reset clears the pass for reuse.
func (p *Pass) Reset() { *p = Pass{Label: p.Label} }

// String renders the pass's traffic record for debugging and reports.
func (p *Pass) String() string {
	return fmt.Sprintf("pass %q: read %d, write %d, randw %d, probes %d sets, atomics %d",
		p.Label, p.BytesRead, p.BytesWritten, p.RandomWrites, len(p.Probes), p.AtomicOps)
}

// probeTime prices one probe batch against the cache hierarchy: the portion
// of the structure resident at each level is served at that level's
// granularity and bandwidth; the remainder goes to DRAM at full line
// granularity, inflated by the device's stall factor.
func (s *Spec) probeTime(ps ProbeSet) float64 {
	if ps.Count == 0 {
		return 0
	}
	remaining := 1.0 // fraction of probes not yet served
	var t float64
	var covered float64 // fraction of structure covered by caches so far
	for _, c := range s.Caches {
		frac := 1.0
		if ps.StructBytes > 0 {
			frac = float64(c.Size) / float64(ps.StructBytes)
			if frac > 1 {
				frac = 1
			}
		}
		hitHere := frac - covered
		if hitHere < 0 {
			hitHere = 0
		}
		covered = frac
		if hitHere == 0 || c.Bandwidth == 0 {
			// Bandwidth 0: this level is never the bottleneck; probes served
			// here are free relative to the streaming term.
			remaining -= hitHere
			continue
		}
		bytes := float64(ps.Count) * hitHere * float64(c.ProbeGranularity)
		t += bytes / c.Bandwidth
		remaining -= hitHere
	}
	if remaining > 1e-12 {
		bytes := float64(ps.Count) * remaining * float64(s.LineSize)
		bw := s.ReadBandwidth
		if ps.Writes {
			bw = s.WriteBandwidth
		}
		t += bytes / bw * ps.stall(s)
	}
	return t
}

// PassTime converts a traffic record into simulated seconds on this device.
//
// The model is the paper's: streaming reads, cache-resident probes and
// compute overlap (the slowest wins); DRAM-missing probes, writes, atomic
// serialization, branch penalties and launch overhead add on top.
func (s *Spec) PassTime(p *Pass) float64 {
	veff := p.VectorEff
	if veff == 0 {
		veff = 1
	}
	tRead := float64(p.BytesRead) / (s.ReadBandwidth * veff)

	var tProbeCached, tProbeDRAM float64
	for _, ps := range p.Probes {
		full := s.probeTime(ps)
		if ps.Dependent && s.DependentProbeNs > 0 {
			// Chained probes are latency bound: each one serializes behind
			// the previous operator's result, so nothing overlaps (Section
			// 5.3). The cost floor is one un-hidden access per probe.
			lat := float64(ps.Count) * s.DependentProbeNs * 1e-9 / float64(s.Cores)
			if lat < full {
				lat = full
			}
			tProbeDRAM += lat
			continue
		}
		// Split the probe cost into the cache-served portion (overlaps with
		// streaming) and the DRAM portion (adds; it competes for the same
		// DRAM channels as the streaming reads).
		dram := s.dramPortion(ps)
		tProbeDRAM += dram
		tProbeCached += full - dram
	}

	tCompute := 0.0
	if p.ComputeCycles > 0 {
		tCompute = p.ComputeCycles / (float64(s.Cores) * s.ClockHz)
	}

	t := maxf(tRead, tProbeCached, tCompute) + tProbeDRAM
	t += float64(p.BytesWritten) / s.WriteBandwidth
	t += float64(p.RandomWrites) * float64(s.LineSize) / s.WriteBandwidth
	t += float64(p.AtomicOps) * s.AtomicNs * 1e-9
	if p.Mispredicts > 0 {
		t += float64(p.Mispredicts) * s.MispredictPenaltyCycles / (float64(s.Cores) * s.ClockHz)
	}
	if f := p.OccupancyFactor; f != 0 {
		t *= f
	}
	k := p.Kernels
	if k == 0 {
		k = 1
	}
	t += float64(k) * s.KernelLaunchNs * 1e-9
	return t
}

// dramPortion returns the DRAM-only component of a probe batch's time.
func (s *Spec) dramPortion(ps ProbeSet) float64 {
	if ps.Count == 0 {
		return 0
	}
	covered := 0.0
	for _, c := range s.Caches {
		frac := 1.0
		if ps.StructBytes > 0 {
			frac = float64(c.Size) / float64(ps.StructBytes)
			if frac > 1 {
				frac = 1
			}
		}
		if frac > covered {
			covered = frac
		}
	}
	remaining := 1 - covered
	if remaining <= 1e-12 {
		return 0
	}
	bytes := float64(ps.Count) * remaining * float64(s.LineSize)
	bw := s.ReadBandwidth
	if ps.Writes {
		bw = s.WriteBandwidth
	}
	return bytes / bw * ps.stall(s)
}

// Duration converts simulated seconds into a time.Duration.
func Duration(sec float64) time.Duration { return time.Duration(sec * 1e9) }

func maxf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Clock accumulates simulated time across the passes of an operator or
// query. The zero value is ready to use.
type Clock struct {
	spec    *Spec
	seconds float64
	passes  []Pass
}

// NewClock returns a clock pricing passes against spec.
func NewClock(spec *Spec) *Clock { return &Clock{spec: spec} }

// Spec returns the device spec the clock prices against.
func (c *Clock) Spec() *Spec { return c.spec }

// Charge prices the pass and adds it to the accumulated time.
func (c *Clock) Charge(p *Pass) float64 {
	t := c.spec.PassTime(p)
	c.seconds += t
	c.passes = append(c.passes, *p)
	return t
}

// AddSeconds adds raw simulated time (e.g. PCIe transfer).
func (c *Clock) AddSeconds(t float64) { c.seconds += t }

// Seconds returns total simulated time.
func (c *Clock) Seconds() float64 { return c.seconds }

// Milliseconds returns total simulated time in ms.
func (c *Clock) Milliseconds() float64 { return c.seconds * 1e3 }

// Passes returns the charged passes (for reports and tests).
func (c *Clock) Passes() []Pass { return c.passes }

// LaunchSeconds returns the portion of the accumulated time that is fixed
// kernel-launch overhead (it must not be scaled when extrapolating a small
// functional run to the paper's input size).
func (c *Clock) LaunchSeconds() float64 {
	var launches int
	for i := range c.passes {
		k := c.passes[i].Kernels
		if k == 0 {
			k = 1
		}
		launches += k
	}
	return float64(launches) * c.spec.KernelLaunchNs * 1e-9
}

// Reset clears accumulated time.
func (c *Clock) Reset() { c.seconds = 0; c.passes = c.passes[:0] }
