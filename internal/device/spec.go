// Package device models the memory hierarchy and timing behaviour of the two
// hardware platforms evaluated in the paper (Table 2): an Intel i7-6900
// Skylake-class CPU and an Nvidia V100 GPU, plus the PCIe 3.0 x16 link that
// connects them.
//
// The paper's central claim is that well-implemented analytic operators are
// bound by the memory subsystem, and that runtime is therefore predictable
// from the bytes moved at each level of the hierarchy. This package is the
// pricing side of that claim: operators in internal/cpu, internal/gpu and
// internal/queries meter their traffic into Pass records, and Spec.PassTime
// converts a Pass into simulated time using the same formulas the paper's
// models use (Sections 3.2, 4.1-4.4 and 5.3).
package device

import "fmt"

// CacheLevel describes one level of a device cache hierarchy, sized as the
// aggregate capacity visible to a random-access working set (e.g. per-core
// L2 multiplied by core count).
type CacheLevel struct {
	Name string
	// Size is the aggregate capacity in bytes.
	Size int64
	// Bandwidth is the aggregate sustainable bandwidth in bytes/second for
	// random probes served by this level. Zero means "not the bottleneck":
	// probes served here are charged to the streaming read term instead.
	Bandwidth float64
	// ProbeGranularity is the number of bytes transferred per random probe
	// hit at this level (sector/line size).
	ProbeGranularity int64
}

// Spec describes one execution device. All bandwidths are bytes/second.
type Spec struct {
	Name string

	// Cores is the number of independent execution contexts used by the
	// compute model (physical cores on CPU, SMs on GPU).
	Cores int
	// ClockHz is the core clock used to convert compute cycles into time.
	ClockHz float64
	// SIMDLanes is the number of 32-bit lanes a vectorized loop processes
	// per core per cycle group (8 for AVX2; for the GPU the warp width is
	// already folded into per-element cycle counts).
	SIMDLanes int

	// ReadBandwidth and WriteBandwidth are the streaming DRAM bandwidths.
	ReadBandwidth  float64
	WriteBandwidth float64

	// MemoryBytes is the device memory capacity (HBM on the GPU, DRAM on
	// the CPU). It bounds what a coprocessor deployment can keep resident:
	// the serving layer's device column cache sizes itself to it.
	MemoryBytes int64

	// LineSize is the DRAM transaction granularity for random accesses that
	// miss every cache (64 B on the CPU, 128 B on the V100, Section 4.3).
	LineSize int64

	// Caches is ordered from smallest/fastest to largest/slowest.
	Caches []CacheLevel

	// AtomicNs is the serialized cost of one contended global atomic update
	// (Section 3.2: the global output cursor).
	AtomicNs float64

	// KernelLaunchNs is the fixed overhead per kernel launch / parallel pass.
	KernelLaunchNs float64

	// MispredictPenaltyCycles is the pipeline-flush cost of one branch
	// misprediction (drives the Figure 12 hump for CPU If; zero on the GPU,
	// where a mispredicted branch does not stall the SIMT pipeline).
	MispredictPenaltyCycles float64

	// RandomStall multiplies the DRAM-miss portion of *independent* random
	// probe time. The paper observes CPU joins running ~1.3x above the pure
	// bandwidth model "due to memory stalls" (Section 4.3); GPUs hide this
	// latency by warp switching, so their factor is 1.
	RandomStall float64

	// DependentStall multiplies the DRAM-miss portion of *chained* random
	// probes (multi-join pipelines, Section 5.3: CPU measured 125 ms vs the
	// 47 ms model because prefetchers cannot follow dependent irregular
	// accesses, while the GPU tracked its model closely).
	DependentStall float64

	// DependentProbeNs is the effective per-probe latency of chained random
	// accesses, which out-of-order execution cannot hide even when the
	// probed structure is cache resident (Section 5.3: the reason measured
	// CPU runtimes of multi-join queries exceed the bandwidth model, while
	// the GPU's warp switching keeps it on-model). Zero disables the
	// latency floor (GPU).
	DependentProbeNs float64

	// GPU-only occupancy parameters (Figure 9).
	MaxThreadsPerSM int
	SMCount         int
}

// IsGPU reports whether the spec models a GPU (has SMs).
func (s *Spec) IsGPU() bool { return s.SMCount > 0 }

// LastLevelCache returns the largest cache level.
func (s *Spec) LastLevelCache() CacheLevel {
	if len(s.Caches) == 0 {
		return CacheLevel{}
	}
	return s.Caches[len(s.Caches)-1]
}

// BandwidthRatio returns the ratio of this device's read bandwidth to
// other's; the paper's headline reference point is V100/i7-6900 = 16.2x.
func (s *Spec) BandwidthRatio(other *Spec) float64 {
	return s.ReadBandwidth / other.ReadBandwidth
}

// String renders the device's headline figures (bandwidths and cores).
func (s *Spec) String() string {
	return fmt.Sprintf("%s (read %.0f GBps, write %.0f GBps, %d cores)",
		s.Name, s.ReadBandwidth/1e9, s.WriteBandwidth/1e9, s.Cores)
}

// V100 returns the GPU specification from Table 2.
//
// Cache notes: the 6 MB L2 serves random probes at 64 B granularity (V100 L2
// is sectored; a probe of an 8-byte slot touches two 32 B sectors), which is
// what makes the 32 KB-128 KB join segment land at the ~5.5x gain the paper
// reports. DRAM transactions are 128 B, which is why out-of-cache joins on
// the GPU read twice the data per probe compared with the CPU (Section 4.3).
func V100() *Spec {
	return &Spec{
		Name:           "Nvidia V100",
		Cores:          80, // SMs
		ClockHz:        1.38e9,
		SIMDLanes:      1, // warp width folded into per-element costs
		ReadBandwidth:  880e9,
		WriteBandwidth: 880e9,
		MemoryBytes:    32 << 30, // 32 GB HBM2 (Table 2)
		LineSize:       128,
		// L1 is per-SM (a shared structure is re-cached by every SM that
		// probes it, so aggregate capacity does not apply); L2 is shared.
		Caches: []CacheLevel{
			{Name: "L1", Size: 16 << 10, Bandwidth: 10.7e12, ProbeGranularity: 32},
			{Name: "L2", Size: 6 << 20, Bandwidth: 2.2e12, ProbeGranularity: 64},
		},
		AtomicNs:        1.2,
		KernelLaunchNs:  5e3,
		RandomStall:     1.0,
		DependentStall:  1.0,
		MaxThreadsPerSM: 2048,
		SMCount:         80,
	}
}

// I76900 returns the CPU specification from Table 2 (single-socket Skylake
// i7-6900, 8 cores / 16 SMT threads, AVX2).
func I76900() *Spec {
	return &Spec{
		Name:           "Intel i7-6900",
		Cores:          8,
		ClockHz:        3.2e9,
		SIMDLanes:      8, // AVX2: 8 x 32-bit lanes
		ReadBandwidth:  53e9,
		WriteBandwidth: 55e9,
		MemoryBytes:    64 << 30, // 64 GB host DRAM (Table 2)
		LineSize:       64,
		// L1/L2 are per-core (private; every core probing a shared structure
		// keeps its own copy, so the join-performance steps in Figure 13
		// fall at 256 KB and 20 MB); L3 is shared.
		Caches: []CacheLevel{
			{Name: "L1", Size: 32 << 10, Bandwidth: 0, ProbeGranularity: 64},
			{Name: "L2", Size: 256 << 10, Bandwidth: 0, ProbeGranularity: 64},
			{Name: "L3", Size: 20 << 20, Bandwidth: 157e9, ProbeGranularity: 64},
		},
		AtomicNs:                4,
		KernelLaunchNs:          2e3,
		MispredictPenaltyCycles: 6,
		RandomStall:             1.3,
		DependentStall:          2.6,
		DependentProbeNs:        5,
	}
}

// PCIeBandwidth is the measured bidirectional PCIe 3.0 x16 transfer
// bandwidth between host and GPU (Section 5: 12.8 GBps).
const PCIeBandwidth = 12.8e9

// TransferTime returns the time to ship n bytes over PCIe.
func TransferTime(n int64) float64 { return float64(n) / PCIeBandwidth }
