package device

import (
	"math"
	"testing"
	"testing/quick"
)

// Property tests on the pricing model: for arbitrary traffic records the
// simulated time must be finite, non-negative, and monotone in every
// traffic dimension.

func clampPass(p Pass) Pass {
	abs := func(v int64) int64 {
		if v < 0 {
			v = -v
		}
		return v % (1 << 40)
	}
	p.BytesRead = abs(p.BytesRead)
	p.BytesWritten = abs(p.BytesWritten)
	p.RandomWrites = abs(p.RandomWrites) % (1 << 30)
	p.AtomicOps = abs(p.AtomicOps) % (1 << 30)
	p.Mispredicts = abs(p.Mispredicts) % (1 << 30)
	if p.ComputeCycles < 0 || math.IsNaN(p.ComputeCycles) || math.IsInf(p.ComputeCycles, 0) {
		p.ComputeCycles = 0
	}
	p.VectorEff = 0
	p.OccupancyFactor = 0
	p.Probes = nil
	p.Kernels = 1
	return p
}

func TestPassTimeFiniteNonNegativeProperty(t *testing.T) {
	for _, spec := range []*Spec{V100(), I76900()} {
		f := func(p Pass) bool {
			tm := spec.PassTime(clampPassP(p))
			return tm >= 0 && !math.IsNaN(tm) && !math.IsInf(tm, 0)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func clampPassP(p Pass) *Pass {
	cp := clampPass(p)
	return &cp
}

func TestPassTimeMonotoneInEachDimension(t *testing.T) {
	base := Pass{BytesRead: 1 << 26, BytesWritten: 1 << 24, AtomicOps: 1 << 10,
		Mispredicts: 1 << 12, ComputeCycles: 1e6, RandomWrites: 1 << 10, Kernels: 1}
	for _, spec := range []*Spec{V100(), I76900()} {
		t0 := spec.PassTime(&base)
		bump := []func(p *Pass){
			func(p *Pass) { p.BytesRead *= 2 },
			func(p *Pass) { p.BytesWritten *= 2 },
			func(p *Pass) { p.RandomWrites *= 2 },
			func(p *Pass) { p.AtomicOps *= 2 },
			func(p *Pass) { p.Mispredicts *= 2 },
			func(p *Pass) { p.ComputeCycles *= 2 },
			func(p *Pass) { p.Kernels *= 2 },
			func(p *Pass) { p.AddProbes(ProbeSet{Count: 1 << 20, StructBytes: 1 << 28}) },
		}
		for i, f := range bump {
			p := base
			p.Probes = nil
			f(&p)
			if spec.PassTime(&p)+1e-15 < t0 {
				t.Errorf("%s: dimension %d not monotone", spec.Name, i)
			}
		}
	}
}

func TestProbeTimeMonotoneInCountProperty(t *testing.T) {
	spec := I76900()
	f := func(count uint32, structKB uint16, dep bool) bool {
		ps1 := ProbeSet{Count: int64(count), StructBytes: int64(structKB) << 10, Dependent: dep}
		ps2 := ps1
		ps2.Count *= 2
		p1 := &Pass{Probes: []ProbeSet{ps1}}
		p2 := &Pass{Probes: []ProbeSet{ps2}}
		return spec.PassTime(p2) >= spec.PassTime(p1)-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
