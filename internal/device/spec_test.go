package device

import (
	"math"
	"testing"
)

func TestBandwidthRatio(t *testing.T) {
	gpu, cpu := V100(), I76900()
	r := gpu.BandwidthRatio(cpu)
	if r < 16.0 || r > 16.8 {
		t.Fatalf("bandwidth ratio = %.2f, want ~16.2 (paper Section 4)", r)
	}
	if !gpu.IsGPU() {
		t.Error("V100 should report IsGPU")
	}
	if cpu.IsGPU() {
		t.Error("i7-6900 should not report IsGPU")
	}
}

// TestMemoryBytes pins the Table 2 device-memory capacities the serving
// layer's residency cache sizes itself to.
func TestMemoryBytes(t *testing.T) {
	if got := V100().MemoryBytes; got != 32<<30 {
		t.Errorf("V100 memory = %d, want 32 GB", got)
	}
	if got := I76900().MemoryBytes; got <= V100().MemoryBytes {
		t.Errorf("host memory (%d) should exceed device memory", got)
	}
}

func TestLastLevelCache(t *testing.T) {
	if got := V100().LastLevelCache().Size; got != 6<<20 {
		t.Errorf("V100 LLC = %d, want 6 MB", got)
	}
	if got := I76900().LastLevelCache().Size; got != 20<<20 {
		t.Errorf("CPU LLC = %d, want 20 MB", got)
	}
	var empty Spec
	if empty.LastLevelCache().Size != 0 {
		t.Error("empty spec LLC should be zero value")
	}
}

func TestStreamingPassTime(t *testing.T) {
	// A pure streaming pass should be priced at bytes/bandwidth.
	gpu := V100()
	p := &Pass{BytesRead: 880e9} // exactly one second of reads
	got := gpu.PassTime(p)
	if math.Abs(got-1.0) > 1e-3 {
		t.Errorf("1s of streaming reads priced at %.4fs", got)
	}
	p = &Pass{BytesWritten: 880e9}
	got = gpu.PassTime(p)
	if math.Abs(got-1.0) > 1e-3 {
		t.Errorf("1s of streaming writes priced at %.4fs", got)
	}
}

func TestPassTimeMonotonicInBytes(t *testing.T) {
	for _, spec := range []*Spec{V100(), I76900()} {
		prev := 0.0
		for n := int64(1 << 20); n <= 1<<30; n <<= 1 {
			tm := spec.PassTime(&Pass{BytesRead: n, BytesWritten: n / 2})
			if tm < prev {
				t.Fatalf("%s: time decreased from %.6f to %.6f at %d bytes", spec.Name, prev, tm, n)
			}
			prev = tm
		}
	}
}

func TestProbeTimeMonotonicInStructSize(t *testing.T) {
	// Larger hash tables can only be slower (paper Figure 13 staircase).
	for _, spec := range []*Spec{V100(), I76900()} {
		prev := 0.0
		for h := int64(8 << 10); h <= 1<<30; h <<= 1 {
			p := &Pass{Probes: []ProbeSet{{Count: 1 << 24, StructBytes: h}}}
			tm := spec.PassTime(p)
			if tm+1e-12 < prev {
				t.Fatalf("%s: probe time decreased at struct=%d: %.6f -> %.6f", spec.Name, h, prev, tm)
			}
			prev = tm
		}
	}
}

func TestCacheResidentProbesOverlapWithStreaming(t *testing.T) {
	// A tiny hash table is fully cache resident on the CPU: probe time should
	// vanish into the streaming term (the flat left of Figure 13).
	cpu := I76900()
	stream := &Pass{BytesRead: 2 << 30}
	withProbes := &Pass{BytesRead: 2 << 30, Probes: []ProbeSet{{Count: 1 << 26, StructBytes: 8 << 10}}}
	a, b := cpu.PassTime(stream), cpu.PassTime(withProbes)
	if math.Abs(a-b)/a > 0.01 {
		t.Errorf("cache-resident probes should be free: %.4f vs %.4f", a, b)
	}
}

func TestDRAMProbesAddToStreaming(t *testing.T) {
	cpu := I76900()
	stream := &Pass{BytesRead: 2 << 30}
	withProbes := &Pass{BytesRead: 2 << 30, Probes: []ProbeSet{{Count: 1 << 26, StructBytes: 1 << 30}}}
	a, b := cpu.PassTime(stream), cpu.PassTime(withProbes)
	if b < a*2 {
		t.Errorf("out-of-cache probes should dominate: stream %.4f, with probes %.4f", a, b)
	}
}

func TestDependentProbesSlowerOnCPUOnly(t *testing.T) {
	mk := func(dep bool) *Pass {
		return &Pass{Probes: []ProbeSet{{Count: 1 << 26, StructBytes: 1 << 30, Dependent: dep}}}
	}
	cpu := I76900()
	indep, dep := cpu.PassTime(mk(false)), cpu.PassTime(mk(true))
	if dep <= indep*1.5 {
		t.Errorf("dependent probes should stall CPU ~2x harder: %.4f vs %.4f", indep, dep)
	}
	gpu := V100()
	gi, gd := gpu.PassTime(mk(false)), gpu.PassTime(mk(true))
	if math.Abs(gi-gd) > 1e-9 {
		t.Errorf("GPU hides latency; dependent should equal independent: %.6f vs %.6f", gi, gd)
	}
}

func TestJoinSegmentRatios(t *testing.T) {
	// Reproduce the three ratio regimes of Section 4.3 from the raw model.
	gpu, cpu := V100(), I76900()
	probePass := func(ht int64) *Pass {
		return &Pass{
			BytesRead: 8 * 256 << 20, // key+payload for 256M probe tuples
			Probes:    []ProbeSet{{Count: 256 << 20, StructBytes: ht}},
		}
	}
	ratio := func(ht int64) float64 {
		return cpu.PassTime(probePass(ht)) / gpu.PassTime(probePass(ht))
	}
	// HT in L2 on both (32KB-128KB): ~5.5x per the paper.
	if r := ratio(128 << 10); r < 4 || r > 9 {
		t.Errorf("L2-resident segment ratio = %.1f, want ~5.5", r)
	}
	// HT in GPU L2 / CPU L3 (1-4MB): ~14.5x.
	if r := ratio(2 << 20); r < 11 || r > 18 {
		t.Errorf("L3-vs-L2 segment ratio = %.1f, want ~14.5", r)
	}
	// HT out of cache everywhere (>=128MB): ~10.5x.
	if r := ratio(512 << 20); r < 8 || r > 13 {
		t.Errorf("out-of-cache segment ratio = %.1f, want ~10.5", r)
	}
}

func TestAtomicAndMispredictCosts(t *testing.T) {
	gpu := V100()
	p := &Pass{AtomicOps: 1e6}
	if tm := gpu.PassTime(p); tm < 1e-3 {
		t.Errorf("1M atomics at 1.2ns should cost >=1.2ms, got %.6f", tm)
	}
	cpu := I76900()
	p = &Pass{Mispredicts: 1 << 27}
	tm := cpu.PassTime(p)
	want := float64(1<<27) * cpu.MispredictPenaltyCycles / (float64(cpu.Cores) * cpu.ClockHz)
	if math.Abs(tm-want)/want > 0.05 {
		t.Errorf("mispredict pricing = %.6f, want %.6f", tm, want)
	}
}

func TestVectorEffAndOccupancy(t *testing.T) {
	gpu := V100()
	base := gpu.PassTime(&Pass{BytesRead: 1 << 30})
	derated := gpu.PassTime(&Pass{BytesRead: 1 << 30, VectorEff: 0.5})
	if derated < base*1.8 {
		t.Errorf("VectorEff 0.5 should double read time: %.5f vs %.5f", base, derated)
	}
	occ := gpu.PassTime(&Pass{BytesRead: 1 << 30, OccupancyFactor: 1.5})
	if occ < base*1.4 {
		t.Errorf("occupancy factor should scale the pass: %.5f vs %.5f", base, occ)
	}
}

func TestPassAddAndAddProbes(t *testing.T) {
	a := &Pass{BytesRead: 10, Probes: []ProbeSet{{Count: 5, StructBytes: 100}}}
	b := &Pass{BytesRead: 7, BytesWritten: 3, AtomicOps: 2,
		Probes: []ProbeSet{{Count: 5, StructBytes: 100}, {Count: 1, StructBytes: 200}}}
	a.Add(b)
	if a.BytesRead != 17 || a.BytesWritten != 3 || a.AtomicOps != 2 {
		t.Errorf("Add merged wrong: %+v", a)
	}
	if len(a.Probes) != 2 || a.Probes[0].Count != 10 {
		t.Errorf("AddProbes should merge same-struct batches: %+v", a.Probes)
	}
	a.AddProbes(ProbeSet{}) // no-op
	if len(a.Probes) != 2 {
		t.Error("empty probe batch should be ignored")
	}
}

func TestClock(t *testing.T) {
	c := NewClock(V100())
	if c.Spec().Name != "Nvidia V100" {
		t.Error("clock spec")
	}
	c.Charge(&Pass{BytesRead: 880e9})
	c.AddSeconds(0.5)
	if s := c.Seconds(); math.Abs(s-1.5) > 1e-3 {
		t.Errorf("clock = %.4fs, want 1.5s", s)
	}
	if ms := c.Milliseconds(); math.Abs(ms-1500) > 1 {
		t.Errorf("ms = %.1f", ms)
	}
	if len(c.Passes()) != 1 {
		t.Error("passes not recorded")
	}
	c.Reset()
	if c.Seconds() != 0 || len(c.Passes()) != 0 {
		t.Error("reset failed")
	}
}

func TestTransferTime(t *testing.T) {
	// Shipping 12.8 GB over PCIe should take one second.
	if tm := TransferTime(12.8e9); math.Abs(tm-1) > 1e-9 {
		t.Errorf("PCIe transfer of 12.8GB = %.4fs, want 1s", tm)
	}
}

func TestStringers(t *testing.T) {
	if s := V100().String(); s == "" {
		t.Error("empty spec string")
	}
	p := Pass{Label: "probe"}
	if s := p.String(); s == "" {
		t.Error("empty pass string")
	}
}

func TestDurationConversion(t *testing.T) {
	if d := Duration(1.5); d.Seconds() != 1.5 {
		t.Errorf("Duration(1.5) = %v", d)
	}
}
