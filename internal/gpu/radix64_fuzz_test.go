package gpu

import (
	"encoding/binary"
	"sort"
	"testing"

	"crystal/internal/device"
	"crystal/internal/sim"
)

// FuzzRadixSort feeds arbitrary key bytes and widths to the 64-bit LSD radix
// sort and checks the three properties the ORDER BY pipeline depends on:
// the output is a permutation of the input (via the payload indices), it is
// sorted on the masked key bits, and ties keep their input order (stability
// — what makes the per-key sort cascade a total order).
func FuzzRadixSort(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(64))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255}, uint8(13))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(7))

	f.Fuzz(func(t *testing.T, data []byte, widthByte uint8) {
		keys := make([]uint64, len(data)/8)
		for i := range keys {
			keys[i] = binary.LittleEndian.Uint64(data[i*8:])
		}
		width := int(widthByte % 65) // 0..64; 0 must be a no-op sort
		mask := ^uint64(0)
		if width < 64 {
			mask = 1<<width - 1
		}
		vals := make([]int32, len(keys))
		for i := range vals {
			vals[i] = int32(i)
		}
		clk := device.NewClock(device.V100())
		cfg := sim.Config{Threads: 256, ItemsPerThread: 8, Elems: len(keys)}
		outK, outV := LSBRadixSort64(clk, cfg, keys, vals, width)

		if len(outK) != len(keys) || len(outV) != len(vals) {
			t.Fatalf("length changed: %d keys in, %d out", len(keys), len(outK))
		}
		seen := make([]bool, len(keys))
		for i, v := range outV {
			if v < 0 || int(v) >= len(keys) || seen[v] {
				t.Fatalf("payload %d at position %d is not a permutation", v, i)
			}
			seen[v] = true
			if outK[i] != keys[v] {
				t.Fatalf("key %d detached from its payload: got %x, input[%d] = %x", i, outK[i], v, keys[v])
			}
		}
		for i := 1; i < len(outK); i++ {
			a, b := outK[i-1]&mask, outK[i]&mask
			if a > b {
				t.Fatalf("not sorted on %d bits at %d: %x > %x", width, i, a, b)
			}
			if a == b && outV[i-1] >= outV[i] {
				t.Fatalf("unstable on tie at %d: payload %d before %d", i, outV[i-1], outV[i])
			}
		}
		// Cross-check against the standard library on the masked bits.
		ref := append([]uint64(nil), keys...)
		sort.SliceStable(ref, func(i, j int) bool { return ref[i]&mask < ref[j]&mask })
		for i := range ref {
			if outK[i]&mask != ref[i]&mask {
				t.Fatalf("masked key order differs from sort.SliceStable at %d", i)
			}
		}
		if len(keys) > 0 && width > 0 && clk.Seconds() <= 0 {
			t.Fatal("sort charged no simulated time")
		}
	})
}
