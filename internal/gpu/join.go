package gpu

import (
	"crystal/internal/crystal"
	"crystal/internal/device"
	"crystal/internal/sim"
)

// BuildHashTable runs the GPU build-phase kernel: the build relation's
// (key, value) columns are streamed in tiles and inserted into a linear
// probing table with atomic CAS (Section 4.3).
func BuildHashTable(clk *device.Clock, keys, vals []int32, fill float64) *crystal.HashTable {
	ht := crystal.NewHashTable(len(keys), fill, vals != nil)
	pass := sim.Run(clk.Spec(), sim.DefaultConfig(len(keys)), func(b *sim.Block) {
		crystal.BuildKernel(b, ht, keys, vals)
	})
	clk.Charge(pass)
	return ht
}

// BuildHashTableBytes builds a table with an exact byte footprint for the
// Figure 13 sweep; the build relation is derived from the requested size at
// 50% fill.
func BuildHashTableBytes(clk *device.Clock, bytes int64, keyOf func(i int) int32, valOf func(i int) int32) *crystal.HashTable {
	ht := crystal.NewHashTableBytes(bytes)
	n := ht.Capacity() / 2 // 50% fill
	keys := make([]int32, n)
	vals := make([]int32, n)
	for i := 0; i < n; i++ {
		keys[i], vals[i] = keyOf(i), valOf(i)
	}
	pass := sim.Run(clk.Spec(), sim.DefaultConfig(n), func(b *sim.Block) {
		crystal.BuildKernel(b, ht, keys, vals)
	})
	clk.Charge(pass)
	return ht
}

// ProbeSum runs the probe-phase kernel of the Q4 join microbenchmark
// (SELECT SUM(A.v + B.v) FROM A, B WHERE A.k = B.k, Section 4.3): tiles of
// probe keys and payloads are loaded with BlockLoad, each thread probes the
// hash table, local sums are reduced with BlockAggregate and a single
// atomic per block updates the global sum.
func ProbeSum(clk *device.Clock, cfg sim.Config, probeKeys, probeVals []int32, ht *crystal.HashTable) int64 {
	cfg.Elems = len(probeKeys)
	var sum sim.Counter
	pass := sim.Run(clk.Spec(), cfg, func(b *sim.Block) {
		ts := cfg.TileSize()
		keys := make([]int32, ts)
		vals := make([]int32, ts)
		match := make([]int32, ts)
		bitmap := make([]uint8, ts)

		n := crystal.BlockLoad(b, probeKeys, keys)
		crystal.BlockLoad(b, probeVals, vals)
		for i := 0; i < n; i++ {
			bitmap[i] = 1
		}
		crystal.BlockLookup(b, ht, keys, n, bitmap, match, false)
		var local int64
		for i := 0; i < n; i++ {
			if bitmap[i] != 0 {
				local += int64(vals[i]) + int64(match[i])
			}
		}
		if local != 0 {
			b.AtomicAdd(&sum, local)
		}
	})
	clk.Charge(pass)
	return sum.Value()
}
