// Package gpu implements the paper's GPU-side query operators on top of the
// Crystal block-wide functions: selection (tiled single-kernel and the
// independent-threads baseline of Figure 4a), projection, hash join, radix
// partitioning and MSB radix sort, plus the full-query kernels used by the
// SSB evaluation in internal/queries.
//
// Every operator executes functionally on real data through internal/sim
// and charges its memory traffic to a device.Clock, which prices it with
// the V100 model.
package gpu

import (
	"crystal/internal/crystal"
	"crystal/internal/device"
	"crystal/internal/sim"
)

// SelectVariant selects between the branching and predicated forms of the
// selection kernel. On the GPU the two are indistinguishable: a mispredicted
// branch does not stall the SIMT pipeline (Section 4.2, Figure 12).
type SelectVariant int

const (
	// SelectIf implements the selection with an if-statement.
	SelectIf SelectVariant = iota
	// SelectPred implements the selection with branch-free predication.
	SelectPred
)

// Select runs the tile-based selection kernel of Figure 4(b)/Figure 8 on
// in, returning the matching entries in stable order. It is the Crystal
// form of query Q0/Q3: one kernel, one pass over the input, coalesced
// output writes, one global atomic per thread block.
func Select(clk *device.Clock, cfg sim.Config, in []int32, pred func(int32) bool, _ SelectVariant) []int32 {
	cfg.Elems = len(in)
	out := make([]int32, len(in))
	var cursor sim.Counter

	// Stable output requires blocks to claim output ranges in block order;
	// real Crystal kernels emit in block-arrival order. We keep per-block
	// results and concatenate in block order afterwards so tests can check
	// stability; traffic and atomics are metered exactly as the kernel's.
	blockOut := make([][]int32, cfg.NumBlocks())

	pass := sim.Run(clk.Spec(), cfg, func(b *sim.Block) {
		ts := cfg.TileSize()
		items := make([]int32, ts)
		bitmap := make([]uint8, ts)
		indices := make([]int32, ts)
		shuffled := make([]int32, ts)

		n := crystal.BlockLoad(b, in, items)
		crystal.BlockPred(b, items, n, pred, bitmap)
		total := crystal.BlockScan(b, bitmap, n, indices)
		if total == 0 {
			return
		}
		b.AtomicAdd(&cursor, int64(total)) // claim output range
		crystal.BlockShuffle(b, items, bitmap, indices, n, shuffled)
		// Coalesced store: charge the write; the actual placement is done
		// in block order below.
		b.Pass().BytesWritten += int64(total) * 4
		blockOut[b.ID] = append([]int32(nil), shuffled[:total]...)
	})
	clk.Charge(pass)

	res := out[:0]
	for _, bo := range blockOut {
		res = append(res, bo...)
	}
	return res
}

// SelectIndependent runs the pre-Crystal, independent-threads selection of
// Figure 4(a): three kernels (count, prefix sum, write), two full reads of
// the input column, intermediate count/prefix arrays, and uncoalesced
// per-thread output writes. It exists as the baseline for the Section 3.3
// microbenchmark (19 ms vs 2.1 ms) and as the execution style of the
// Omnisci-like engine.
func SelectIndependent(clk *device.Clock, in []int32, pred func(int32) bool) []int32 {
	n := len(in)
	// The real implementation launches ~thousands of threads, each scanning
	// a stride. T is the logical thread count.
	const T = 5000
	counts := make([]int32, T)

	// Kernel 1: strided read, count matches per thread.
	k1 := &device.Pass{Label: "k1 count", BytesRead: int64(n) * 4, Kernels: 1}
	for t := 0; t < T; t++ {
		c := int32(0)
		for i := t; i < n; i += T {
			if pred(in[i]) {
				c++
			}
		}
		counts[t] = c
	}
	k1.BytesWritten += int64(T) * 4
	clk.Charge(k1)

	// Kernel 2: prefix sum over the per-thread counts (Thrust-style).
	pf := make([]int32, T+1)
	for t := 0; t < T; t++ {
		pf[t+1] = pf[t] + counts[t]
	}
	clk.Charge(&device.Pass{Label: "k2 prefix", BytesRead: int64(T) * 4, BytesWritten: int64(T) * 4, Kernels: 1})

	// Kernel 3: second full read; each thread writes its matches at its
	// prefix offset — writes from different threads interleave arbitrarily,
	// so none coalesce.
	out := make([]int32, pf[T])
	k3 := &device.Pass{Label: "k3 write", BytesRead: int64(n) * 4, Kernels: 1}
	for t := 0; t < T; t++ {
		o := pf[t]
		for i := t; i < n; i += T {
			if pred(in[i]) {
				out[o] = in[i]
				o++
			}
		}
	}
	k3.RandomWrites = int64(pf[T])
	clk.Charge(k3)
	return out
}

// Predicate pairs one fact column with its predicate for multi-column
// selections.
type Predicate struct {
	Col  []int32
	Pred func(int32) bool
}

// SelectWhere runs the Figure 7(b) kernel: a selection with predicates on
// several columns (SELECT y FROM R WHERE x > w AND y > v). The first
// column is loaded in full with BlockLoad; every subsequent column is
// loaded selectively with BlockLoadSel and its predicate folded in with
// AndPred, so columns after the first only touch the cache lines that
// still contain candidate rows. The projected column proj is returned for
// the rows passing every predicate, in stable order.
func SelectWhere(clk *device.Clock, cfg sim.Config, preds []Predicate, proj []int32) []int32 {
	if len(preds) == 0 {
		return nil
	}
	cfg.Elems = len(preds[0].Col)
	blockOut := make([][]int32, cfg.NumBlocks())
	var cursor sim.Counter

	pass := sim.Run(clk.Spec(), cfg, func(b *sim.Block) {
		ts := cfg.TileSize()
		items := make([]int32, ts)
		bitmap := make([]uint8, ts)
		indices := make([]int32, ts)
		shuffled := make([]int32, ts)

		n := crystal.BlockLoad(b, preds[0].Col, items)
		crystal.BlockPred(b, items, n, preds[0].Pred, bitmap)
		for _, p := range preds[1:] {
			crystal.BlockLoadSel(b, p.Col, bitmap, items)
			crystal.BlockPredAnd(b, items, n, p.Pred, bitmap)
		}
		crystal.BlockLoadSel(b, proj, bitmap, items)
		total := crystal.BlockScan(b, bitmap, n, indices)
		if total == 0 {
			return
		}
		b.AtomicAdd(&cursor, int64(total))
		crystal.BlockShuffle(b, items, bitmap, indices, n, shuffled)
		b.Pass().BytesWritten += int64(total) * 4
		blockOut[b.ID] = append([]int32(nil), shuffled[:total]...)
	})
	pass.Label = "gpu select-where"
	clk.Charge(pass)

	var res []int32
	for _, bo := range blockOut {
		res = append(res, bo...)
	}
	return res
}
