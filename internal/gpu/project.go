package gpu

import (
	"math"

	"crystal/internal/crystal"
	"crystal/internal/device"
	"crystal/internal/sim"
)

// Project runs the Q1 projection microbenchmark kernel
// (SELECT a*x1 + b*x2 FROM R, Section 4.1): two BlockLoads, the arithmetic
// in registers, one BlockStore. The GPU saturates bandwidth.
func Project(clk *device.Clock, cfg sim.Config, x1, x2 []float32, a, b float32) []float32 {
	cfg.Elems = len(x1)
	out := make([]float32, len(x1))
	pass := sim.Run(clk.Spec(), cfg, func(blk *sim.Block) {
		ts := cfg.TileSize()
		t1 := make([]float32, ts)
		t2 := make([]float32, ts)
		res := make([]float32, ts)
		n := crystal.BlockLoad(blk, x1, t1)
		crystal.BlockLoad(blk, x2, t2)
		for i := 0; i < n; i++ {
			res[i] = a*t1[i] + b*t2[i]
		}
		crystal.BlockStore(blk, res, n, out, blk.Offset)
	})
	clk.Charge(pass)
	return out
}

// ProjectSigmoid runs the Q2 projection microbenchmark
// (SELECT sigmoid(a*x1 + b*x2) FROM R): the most complex projection a SQL
// query will realistically contain (a logistic-regression model output).
// The V100's 14 TFlops keep even this bandwidth bound (Figure 10).
func ProjectSigmoid(clk *device.Clock, cfg sim.Config, x1, x2 []float32, a, b float32) []float32 {
	cfg.Elems = len(x1)
	out := make([]float32, len(x1))
	pass := sim.Run(clk.Spec(), cfg, func(blk *sim.Block) {
		ts := cfg.TileSize()
		t1 := make([]float32, ts)
		t2 := make([]float32, ts)
		res := make([]float32, ts)
		n := crystal.BlockLoad(blk, x1, t1)
		crystal.BlockLoad(blk, x2, t2)
		for i := 0; i < n; i++ {
			res[i] = sigmoid(a*t1[i] + b*t2[i])
		}
		crystal.BlockStore(blk, res, n, out, blk.Offset)
	})
	clk.Charge(pass)
	return out
}

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}
