package gpu

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crystal/internal/crystal"
	"crystal/internal/device"
	"crystal/internal/sim"
)

func newClock() *device.Clock { return device.NewClock(device.V100()) }

func refSelect(in []int32, pred func(int32) bool) []int32 {
	var out []int32
	for _, v := range in {
		if pred(v) {
			out = append(out, v)
		}
	}
	return out
}

func TestSelectMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := make([]int32, 100_000)
	for i := range in {
		in[i] = int32(rng.Intn(1000))
	}
	pred := func(v int32) bool { return v > 500 }
	clk := newClock()
	got := Select(clk, sim.DefaultConfig(0), in, pred, SelectIf)
	want := refSelect(in, pred)
	if len(got) != len(want) {
		t.Fatalf("select returned %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d (stability broken)", i, got[i], want[i])
		}
	}
	if clk.Seconds() <= 0 {
		t.Error("no simulated time charged")
	}
}

func TestSelectEmptyAndAllMatch(t *testing.T) {
	in := []int32{1, 2, 3, 4}
	clk := newClock()
	if got := Select(clk, sim.DefaultConfig(0), in, func(int32) bool { return false }, SelectPred); len(got) != 0 {
		t.Errorf("none-match select returned %d rows", len(got))
	}
	if got := Select(clk, sim.DefaultConfig(0), in, func(int32) bool { return true }, SelectPred); len(got) != 4 {
		t.Errorf("all-match select returned %d rows", len(got))
	}
}

func TestSelectIndependentSameRowSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := make([]int32, 50_000)
	for i := range in {
		in[i] = int32(rng.Intn(100))
	}
	pred := func(v int32) bool { return v < 37 }
	clk := newClock()
	got := SelectIndependent(clk, in, pred)
	want := refSelect(in, pred)
	if len(got) != len(want) {
		t.Fatalf("independent select: %d rows, want %d", len(got), len(want))
	}
	// Row order differs (thread-strided); compare as multisets.
	sortInt32(got)
	sortInt32(want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("independent select row multiset differs")
		}
	}
}

func TestTiledBeatsIndependentThreads(t *testing.T) {
	// Section 3.3 microbenchmark: the independent-threads plan is ~9x
	// slower (19 ms vs 2.1 ms) due to the second read and uncoalesced
	// writes.
	rng := rand.New(rand.NewSource(3))
	in := make([]int32, 1<<20)
	for i := range in {
		in[i] = int32(rng.Intn(100))
	}
	pred := func(v int32) bool { return v < 50 } // selectivity 0.5
	tiled, indep := newClock(), newClock()
	Select(tiled, sim.DefaultConfig(0), in, pred, SelectIf)
	SelectIndependent(indep, in, pred)
	ratio := indep.Seconds() / tiled.Seconds()
	if ratio < 5 || ratio > 15 {
		t.Errorf("independent/tiled ratio = %.1f, paper reports ~9x", ratio)
	}
}

func TestProjectCorrectness(t *testing.T) {
	const n = 10_000
	x1 := make([]float32, n)
	x2 := make([]float32, n)
	for i := range x1 {
		x1[i], x2[i] = float32(i), float32(2*i)
	}
	clk := newClock()
	out := Project(clk, sim.DefaultConfig(0), x1, x2, 2, 3)
	for i := range out {
		want := 2*x1[i] + 3*x2[i]
		if out[i] != want {
			t.Fatalf("project[%d] = %f, want %f", i, out[i], want)
		}
	}
	// Traffic: 2 column reads + 1 write.
	p := clk.Passes()[0]
	if p.BytesRead != 8*n || p.BytesWritten != 4*n {
		t.Errorf("project traffic read=%d write=%d", p.BytesRead, p.BytesWritten)
	}
}

func TestProjectSigmoidBounds(t *testing.T) {
	x1 := []float32{-100, 0, 100}
	x2 := []float32{0, 0, 0}
	clk := newClock()
	out := ProjectSigmoid(clk, sim.DefaultConfig(0), x1, x2, 1, 1)
	if !(out[0] < 0.01 && out[1] == 0.5 && out[2] > 0.99) {
		t.Errorf("sigmoid values wrong: %v", out)
	}
}

func TestBuildAndProbeSum(t *testing.T) {
	const nBuild, nProbe = 1 << 12, 1 << 16
	bk := make([]int32, nBuild)
	bv := make([]int32, nBuild)
	for i := range bk {
		bk[i], bv[i] = int32(i+1), int32(10*i)
	}
	clk := newClock()
	ht := BuildHashTable(clk, bk, bv, 0.5)

	pk := make([]int32, nProbe)
	pv := make([]int32, nProbe)
	rng := rand.New(rand.NewSource(4))
	var want int64
	for i := range pk {
		pk[i] = int32(rng.Intn(2 * nBuild)) // half the probes miss
		pv[i] = int32(i)
		if pk[i] >= 1 && pk[i] <= nBuild {
			want += int64(pv[i]) + int64(10*(pk[i]-1))
		}
	}
	got := ProbeSum(clk, sim.DefaultConfig(0), pk, pv, ht)
	if got != want {
		t.Fatalf("probe checksum = %d, want %d", got, want)
	}
}

func TestBuildHashTableBytes(t *testing.T) {
	clk := newClock()
	ht := BuildHashTableBytes(clk, 1<<20, func(i int) int32 { return int32(i + 1) }, func(i int) int32 { return int32(i) })
	if ht.Bytes() != 1<<20 {
		t.Errorf("footprint = %d, want 1MB", ht.Bytes())
	}
	if v, ok := ht.Get(1); !ok || v != 0 {
		t.Error("built table missing key 1")
	}
}

func TestJoinTimeStaircase(t *testing.T) {
	// Figure 13: probe time steps up as the hash table outgrows L2 and DRAM
	// lines start to be fetched per probe.
	const nProbe = 1 << 20
	pk := make([]int32, nProbe)
	pv := make([]int32, nProbe)
	rng := rand.New(rand.NewSource(5))
	times := map[int64]float64{}
	for _, htBytes := range []int64{64 << 10, 2 << 20, 64 << 20} {
		clk := newClock()
		ht := BuildHashTableBytes(clk, htBytes, func(i int) int32 { return int32(i + 1) }, func(i int) int32 { return int32(i) })
		nKeys := ht.Capacity() / 2
		for i := range pk {
			pk[i] = int32(rng.Intn(nKeys) + 1)
			pv[i] = 1
		}
		probeClk := newClock()
		ProbeSum(probeClk, sim.DefaultConfig(0), pk, pv, ht)
		times[htBytes] = probeClk.Seconds()
	}
	if !(times[64<<10] < times[2<<20] && times[2<<20] < times[64<<20]) {
		t.Errorf("join staircase violated: %v", times)
	}
}

func TestRadixPartitionStable(t *testing.T) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(6))
	keys := make([]uint32, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = rng.Uint32() % 1024
		vals[i] = int32(i) // original index: lets us verify stability
	}
	clk := newClock()
	outK, outV, counts, err := RadixPartition(clk, sim.DefaultConfig(0), keys, vals, 4, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, keys, outK, outV, counts, 4, 0, true)
}

func TestRadixPartitionUnstable(t *testing.T) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint32, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = rng.Uint32()
		vals[i] = int32(i)
	}
	clk := newClock()
	outK, outV, counts, err := RadixPartition(clk, sim.DefaultConfig(0), keys, vals, 8, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, keys, outK, outV, counts, 8, 8, false)
}

// checkPartition verifies output is a permutation, partitions are
// contiguous in radix order, and (for stable) input order is preserved
// within partitions.
func checkPartition(t *testing.T, keys []uint32, outK []uint32, outV []int32, counts []int64, r, shift int, stable bool) {
	t.Helper()
	_ = outK
	mask := uint32((1 << r) - 1)
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != int64(len(keys)) {
		t.Fatalf("counts sum to %d, want %d", total, len(keys))
	}
	seen := make([]bool, len(keys))
	pos := 0
	for p := uint32(0); p < uint32(1<<r); p++ {
		prevIdx := int32(-1)
		for c := int64(0); c < counts[p]; c++ {
			idx := outV[pos]
			if seen[idx] {
				t.Fatalf("element %d appears twice", idx)
			}
			seen[idx] = true
			if got := (keys[idx] >> shift) & mask; got != p {
				t.Fatalf("element %d in partition %d has radix %d", idx, p, got)
			}
			if stable && idx <= prevIdx {
				t.Fatalf("stability violated in partition %d: %d after %d", p, idx, prevIdx)
			}
			prevIdx = idx
			pos++
		}
	}
}

func TestRadixPartitionBitLimits(t *testing.T) {
	keys := []uint32{1, 2, 3}
	clk := newClock()
	if _, _, _, err := RadixPartition(clk, sim.DefaultConfig(0), keys, nil, 8, 0, true); err == nil {
		t.Error("stable 8-bit pass should be rejected (7-bit register limit)")
	}
	if _, _, _, err := RadixPartition(clk, sim.DefaultConfig(0), keys, nil, 9, 0, false); err == nil {
		t.Error("unstable 9-bit pass should be rejected")
	}
	if _, _, _, err := RadixPartition(clk, sim.DefaultConfig(0), keys, nil, 0, 0, false); err == nil {
		t.Error("0-bit pass should be rejected")
	}
	if _, _, _, err := RadixPartition(clk, sim.DefaultConfig(0), keys, nil, 7, 0, true); err != nil {
		t.Errorf("7-bit stable pass rejected: %v", err)
	}
}

func TestMSBRadixSort(t *testing.T) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(8))
	keys := make([]uint32, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = rng.Uint32()
		vals[i] = int32(i)
	}
	clk := newClock()
	outK, outV := MSBRadixSort(clk, sim.DefaultConfig(0), keys, vals)
	for i := 1; i < n; i++ {
		if outK[i-1] > outK[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	// Permutation check via payloads, and key/payload pairing preserved.
	seen := make([]bool, n)
	for i := range outK {
		idx := outV[i]
		if seen[idx] {
			t.Fatalf("payload %d duplicated", idx)
		}
		seen[idx] = true
		if keys[idx] != outK[i] {
			t.Fatalf("key/payload pairing broken at %d", i)
		}
	}
	// 4 levels x 2 kernels charged.
	if got := len(clk.Passes()); got != 8 {
		t.Errorf("MSB sort charged %d passes, want 8", got)
	}
}

func TestMSBRadixSortProperty(t *testing.T) {
	f := func(keys []uint32) bool {
		clk := newClock()
		outK, _ := MSBRadixSort(clk, sim.DefaultConfig(0), keys, nil)
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if outK[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSelectVariantsIdenticalOnGPU(t *testing.T) {
	// Figure 12: GPU If and GPU Pred are indistinguishable.
	in := make([]int32, 1<<18)
	rng := rand.New(rand.NewSource(9))
	for i := range in {
		in[i] = int32(rng.Intn(100))
	}
	pred := func(v int32) bool { return v < 50 }
	c1, c2 := newClock(), newClock()
	Select(c1, sim.DefaultConfig(0), in, pred, SelectIf)
	Select(c2, sim.DefaultConfig(0), in, pred, SelectPred)
	if c1.Seconds() != c2.Seconds() {
		t.Errorf("GPU If %.6f != GPU Pred %.6f", c1.Seconds(), c2.Seconds())
	}
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

var _ = crystal.EmptyKey // keep import if unused in some builds

func TestSelectCorrectAcrossTileConfigs(t *testing.T) {
	// The kernel must be correct for every tile geometry of Figure 9,
	// including ones that leave partial tiles and idle threads.
	rng := rand.New(rand.NewSource(77))
	in := make([]int32, 10_007) // prime-ish: guarantees ragged final tiles
	for i := range in {
		in[i] = int32(rng.Intn(100))
	}
	pred := func(v int32) bool { return v%3 == 0 }
	want := refSelect(in, pred)
	for _, bs := range []int{32, 64, 128, 256, 512, 1024} {
		for _, ipt := range []int{1, 2, 4} {
			cfg := sim.Config{Threads: bs, ItemsPerThread: ipt}
			got := Select(newClock(), cfg, in, pred, SelectIf)
			if len(got) != len(want) {
				t.Fatalf("cfg %dx%d: %d rows, want %d", bs, ipt, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cfg %dx%d: row %d mismatch", bs, ipt, i)
				}
			}
		}
	}
}

func TestSelectWhereMultiPredicate(t *testing.T) {
	// Figure 7(b): SELECT y FROM R WHERE x > w AND y > v.
	const n = 100_003
	rng := rand.New(rand.NewSource(88))
	x := make([]int32, n)
	y := make([]int32, n)
	for i := range x {
		x[i], y[i] = int32(rng.Intn(1000)), int32(rng.Intn(1000))
	}
	clk := newClock()
	got := SelectWhere(clk, sim.DefaultConfig(0), []Predicate{
		{Col: x, Pred: func(v int32) bool { return v > 900 }},
		{Col: y, Pred: func(v int32) bool { return v > 500 }},
	}, y)
	var want []int32
	for i := range x {
		if x[i] > 900 && y[i] > 500 {
			want = append(want, y[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
	// The second column must read fewer bytes than the first (selective
	// load after a 10% predicate).
	p := clk.Passes()[0]
	if p.BytesRead >= int64(3*4*n) {
		t.Errorf("selective loads should save traffic: read %d of %d plain bytes", p.BytesRead, 3*4*n)
	}
	if len(SelectWhere(clk, sim.DefaultConfig(0), nil, y)) != 0 {
		t.Error("no predicates should select nothing")
	}
}
