package gpu

import (
	"fmt"
	"math/bits"

	"crystal/internal/crystal"
	"crystal/internal/device"
	"crystal/internal/sim"
)

// RadixPartition64 is the 64-bit-key variant of RadixPartition used by the
// ORDER BY pipeline: one stable radix-partitioning pass over (keys, vals) on
// the bits keys[shift : shift+r). Sort keys are order-preserving uint64
// encodings of aggregate values, so the key column costs 8 bytes per element
// instead of 4; the payload stays a 4-byte row index. The pass runs the same
// three priced phases as RadixPartition: a histogram kernel (streaming key
// read + per-block counters), a prefix-sum kernel over the (block, partition)
// matrix, and a shuffle kernel (read key+payload, block-local reorder in
// shared memory, coalesced partitioned write).
func RadixPartition64(clk *device.Clock, cfg sim.Config, keys []uint64, vals []int32, r, shift int) ([]uint64, []int32, []int64, error) {
	if r > MaxStableRadixBits {
		return nil, nil, nil, fmt.Errorf("gpu: stable radix partition limited to %d bits, got %d", MaxStableRadixBits, r)
	}
	if r <= 0 {
		return nil, nil, nil, fmt.Errorf("gpu: radix bits must be positive, got %d", r)
	}
	n := len(keys)
	cfg.Elems = n
	numPart := 1 << r
	mask := uint64(numPart - 1)
	numBlocks := cfg.NumBlocks()

	// Phase 1: histogram kernel. hist[block][part].
	hist := make([][]int64, numBlocks)
	hpass := sim.Run(clk.Spec(), cfg, func(b *sim.Block) {
		ts := cfg.TileSize()
		tile := make([]uint64, ts)
		nn := crystal.BlockLoad(b, keys, tile)
		h := make([]int64, numPart)
		for i := 0; i < nn; i++ {
			h[(tile[i]>>shift)&mask]++
		}
		hist[b.ID] = h
		b.Pass().BytesWritten += int64(numPart) * 4
	})
	hpass.Label = "radix64 histogram"
	clk.Charge(hpass)

	// Phase 2: prefix sum over the (partition, block) histogram matrix to
	// obtain each block's write offset in every partition.
	counts := make([]int64, numPart)
	for _, h := range hist {
		for p, c := range h {
			counts[p] += c
		}
	}
	partStart := make([]int64, numPart+1)
	for p := 0; p < numPart; p++ {
		partStart[p+1] = partStart[p] + counts[p]
	}
	blockOff := make([][]int64, numBlocks)
	running := make([]int64, numPart)
	copy(running, partStart[:numPart])
	for bID := 0; bID < numBlocks; bID++ {
		off := make([]int64, numPart)
		copy(off, running)
		for p := 0; p < numPart; p++ {
			running[p] += hist[bID][p]
		}
		blockOff[bID] = off
	}
	histBytes := int64(numBlocks) * int64(numPart) * 4
	clk.Charge(&device.Pass{Label: "radix64 prefix", BytesRead: histBytes, BytesWritten: histBytes, Kernels: 1})

	// Phase 3: shuffle kernel. Stable: each block scatters into its
	// prefix-summed offsets, preserving intra-block order.
	outK := make([]uint64, n)
	outV := make([]int32, len(vals))
	spass := sim.Run(clk.Spec(), cfg, func(b *sim.Block) {
		ts := cfg.TileSize()
		tk := make([]uint64, ts)
		tv := make([]int32, ts)
		nn := crystal.BlockLoad(b, keys, tk)
		if vals != nil {
			crystal.BlockLoad(b, vals, tv)
		}
		off := append([]int64(nil), blockOff[b.ID]...)
		// Block-local reorder happens in shared memory (free); the writes
		// out of shared memory are coalesced runs per partition.
		for i := 0; i < nn; i++ {
			p := (tk[i] >> shift) & mask
			pos := off[p]
			off[p]++
			outK[pos] = tk[i]
			if vals != nil {
				outV[pos] = tv[i]
			}
		}
		elemBytes := int64(8)
		if vals != nil {
			elemBytes = 12
		}
		b.Pass().BytesWritten += int64(nn) * elemBytes
	})
	spass.Label = "radix64 shuffle"
	clk.Charge(spass)
	return outK, outV, counts, nil
}

// RadixPassWidths splits a key width into stable radix pass widths, widest
// passes last (mirroring the 6,6,6,7,7 split LSBRadixSort uses for 32 bits).
// A width of zero (all keys equal) needs no passes.
func RadixPassWidths(width int) []int {
	if width <= 0 {
		return nil
	}
	passes := (width + MaxStableRadixBits - 1) / MaxStableRadixBits
	ws := make([]int, passes)
	rem := width
	for i := passes - 1; i >= 0; i-- {
		r := MaxStableRadixBits
		if rem < r {
			r = rem
		}
		ws[i] = r
		rem -= r
	}
	return ws
}

// KeyWidth64 returns the number of significant low bits across keys, i.e.
// the bit position of the highest set bit plus one. The ORDER BY pipeline
// rebases keys to (key - min) before sorting, so the width is usually far
// below 64 and the sort skips the passes a full 64-bit key would need.
func KeyWidth64(keys []uint64) int {
	var max uint64
	for _, k := range keys {
		if k > max {
			max = k
		}
	}
	return bits.Len64(max)
}

// LSBRadixSort64 stable-sorts (keys, vals) by key ascending with the
// least-significant-bit radix sort of Merrill & Grimshaw, processing only
// the low `width` bits (callers rebase keys so higher bits are zero). Each
// stable pass covers at most 7 bits (per-thread register histograms,
// Section 4.4). Returns the sorted copies; the inputs are not modified.
func LSBRadixSort64(clk *device.Clock, cfg sim.Config, keys []uint64, vals []int32, width int) ([]uint64, []int32) {
	k := append([]uint64(nil), keys...)
	v := append([]int32(nil), vals...)
	shift := 0
	for _, r := range RadixPassWidths(width) {
		var err error
		k, v, _, err = RadixPartition64(clk, cfg, k, v, r, shift)
		if err != nil {
			panic(err) // unreachable: all pass widths are <= MaxStableRadixBits
		}
		shift += r
	}
	return k, v
}
