package gpu

import (
	"crystal/internal/device"
	"crystal/internal/pack"
	"crystal/internal/sim"
)

// SelectPacked runs the tiled selection kernel over a bit-packed column
// (the Section 5.5 compression extension). Each thread block loads its
// tile's share of the packed words — width/32 of the plain traffic — and
// unpacks in registers. The V100's compute-to-bandwidth ratio keeps the
// kernel bandwidth bound, so the traffic saving translates directly into
// runtime. The full-query engines scan packed frames the same way through
// crystal.BlockLoadPacked (queries.RunOptions.Packed); this operator is
// the isolated kernel-level form (BenchmarkAblation_PackedScan).
func SelectPacked(clk *device.Clock, cfg sim.Config, col *pack.Column, pred func(int32) bool) []int32 {
	cfg.Elems = col.Len()
	blockOut := make([][]int32, cfg.NumBlocks())
	var cursor sim.Counter

	pass := sim.Run(clk.Spec(), cfg, func(b *sim.Block) {
		ts := cfg.TileSize()
		items := make([]int32, ts)
		n := col.UnpackRange(b.Offset, b.Offset+b.TileElems, items)
		// Packed tile traffic: n values at width bits, rounded to words.
		b.Pass().BytesRead += (int64(n)*int64(col.Width()) + 63) / 64 * 8
		// Unpacking is register arithmetic; the GPU's 14 TFlops absorb it.

		out := make([]int32, 0, n)
		for i := 0; i < n; i++ {
			if pred(items[i]) {
				out = append(out, items[i])
			}
		}
		if len(out) == 0 {
			return
		}
		b.AtomicAdd(&cursor, int64(len(out)))
		b.Pass().BytesWritten += int64(len(out)) * 4
		blockOut[b.ID] = out
	})
	pass.Label = "gpu packed select"
	clk.Charge(pass)

	var res []int32
	for _, bo := range blockOut {
		res = append(res, bo...)
	}
	return res
}
