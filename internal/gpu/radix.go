package gpu

import (
	"fmt"
	"sync/atomic"

	"crystal/internal/crystal"
	"crystal/internal/device"
	"crystal/internal/sim"
)

// Radix-partitioning limits on the GPU (Section 4.4): the stable LSB pass
// must keep a per-thread histogram in registers and can process at most 7
// bits per pass; the unstable MSB pass keeps one histogram per thread block
// and can process 8.
const (
	MaxStableRadixBits   = 7
	MaxUnstableRadixBits = 8
)

// RadixPartition performs one radix-partitioning pass over (keys, vals) on
// the radix bits keys[shift : shift+r), returning the partitioned arrays
// and the per-partition counts. stable selects the stable (LSB-compatible)
// variant.
//
// Both variants run the two phases of Section 4.4: a histogram kernel (one
// streaming read of the key column) and a shuffle kernel (read key+payload,
// block-local reorder in shared memory, coalesced partitioned write).
func RadixPartition(clk *device.Clock, cfg sim.Config, keys []uint32, vals []int32, r, shift int, stable bool) ([]uint32, []int32, []int64, error) {
	if stable && r > MaxStableRadixBits {
		return nil, nil, nil, fmt.Errorf("gpu: stable radix partition limited to %d bits, got %d", MaxStableRadixBits, r)
	}
	if !stable && r > MaxUnstableRadixBits {
		return nil, nil, nil, fmt.Errorf("gpu: unstable radix partition limited to %d bits, got %d", MaxUnstableRadixBits, r)
	}
	if r <= 0 {
		return nil, nil, nil, fmt.Errorf("gpu: radix bits must be positive, got %d", r)
	}
	n := len(keys)
	cfg.Elems = n
	numPart := 1 << r
	mask := uint32(numPart - 1)
	numBlocks := cfg.NumBlocks()

	// Phase 1: histogram kernel. hist[block][part].
	hist := make([][]int64, numBlocks)
	hpass := sim.Run(clk.Spec(), cfg, func(b *sim.Block) {
		ts := cfg.TileSize()
		tile := make([]uint32, ts)
		nn := crystal.BlockLoad(b, keys, tile)
		h := make([]int64, numPart)
		for i := 0; i < nn; i++ {
			h[(tile[i]>>shift)&mask]++
		}
		hist[b.ID] = h
		b.Pass().BytesWritten += int64(numPart) * 4
	})
	hpass.Label = "radix histogram"
	clk.Charge(hpass)

	// Phase 2: prefix sum over the (partition, block) histogram matrix to
	// obtain each block's write offset in every partition (a tiny kernel).
	counts := make([]int64, numPart)
	for _, h := range hist {
		for p, c := range h {
			counts[p] += c
		}
	}
	partStart := make([]int64, numPart+1)
	for p := 0; p < numPart; p++ {
		partStart[p+1] = partStart[p] + counts[p]
	}
	blockOff := make([][]int64, numBlocks)
	running := make([]int64, numPart)
	copy(running, partStart[:numPart])
	for bID := 0; bID < numBlocks; bID++ {
		off := make([]int64, numPart)
		copy(off, running)
		for p := 0; p < numPart; p++ {
			running[p] += hist[bID][p]
		}
		blockOff[bID] = off
	}
	histBytes := int64(numBlocks) * int64(numPart) * 4
	clk.Charge(&device.Pass{Label: "radix prefix", BytesRead: histBytes, BytesWritten: histBytes, Kernels: 1})

	// Phase 3: shuffle kernel.
	outK := make([]uint32, n)
	outV := make([]int32, len(vals))
	var partCursor []int64
	if !stable {
		partCursor = make([]int64, numPart)
		copy(partCursor, partStart[:numPart])
	}
	spass := sim.Run(clk.Spec(), cfg, func(b *sim.Block) {
		ts := cfg.TileSize()
		tk := make([]uint32, ts)
		tv := make([]int32, ts)
		nn := crystal.BlockLoad(b, keys, tk)
		if vals != nil {
			crystal.BlockLoad(b, vals, tv)
		}

		var off []int64
		if stable {
			off = append([]int64(nil), blockOff[b.ID]...)
		} else {
			// Unstable: reserve a chunk per partition with one atomic each;
			// block completion order decides placement. Cursors for
			// different partitions are independent addresses, so only the
			// per-cursor chains serialize: the critical path is one atomic
			// per block, not one per (block, partition).
			off = make([]int64, numPart)
			local := make([]int64, numPart)
			for i := 0; i < nn; i++ {
				local[(tk[i]>>shift)&mask]++
			}
			for p := 0; p < numPart; p++ {
				if local[p] > 0 {
					off[p] = atomic.AddInt64(&partCursor[p], local[p]) - local[p]
				}
			}
			b.Pass().AtomicOps++
		}
		// Block-local reorder happens in shared memory (free); the writes
		// out of shared memory are coalesced runs per partition.
		for i := 0; i < nn; i++ {
			p := (tk[i] >> shift) & mask
			pos := off[p]
			off[p]++
			outK[pos] = tk[i]
			if vals != nil {
				outV[pos] = tv[i]
			}
		}
		elemBytes := int64(4)
		if vals != nil {
			elemBytes = 8
		}
		b.Pass().BytesWritten += int64(nn) * elemBytes
	})
	spass.Label = "radix shuffle"
	clk.Charge(spass)
	return outK, outV, counts, nil
}

// LSBRadixSort sorts (keys, vals) with the least-significant-bit radix sort
// of Merrill & Grimshaw on the GPU. LSB requires *stable* partitioning,
// which limits each pass to 7 bits (per-thread register histograms), so
// 32-bit keys need five passes of 6,6,6,7,7 bits — the structural reason
// MSB sort wins on the GPU (Section 4.4).
func LSBRadixSort(clk *device.Clock, cfg sim.Config, keys []uint32, vals []int32) ([]uint32, []int32) {
	k := append([]uint32(nil), keys...)
	v := append([]int32(nil), vals...)
	shift := 0
	for _, r := range []int{6, 6, 6, 7, 7} {
		var err error
		k, v, _, err = RadixPartition(clk, cfg, k, v, r, shift, true)
		if err != nil {
			panic(err) // unreachable: all passes are <= 7 bits
		}
		shift += r
	}
	return k, v
}

// MSBRadixSort sorts (keys, vals) by key using the most-significant-bit
// radix sort of Stehle & Jacobsen (Section 4.4): four unstable 8-bit
// partitioning levels, each level partitioning every bucket produced by the
// previous one. Unstable partitioning keeps a single block-wide offset
// array, which is what lets the GPU process 8 bits per pass and finish
// 32-bit keys in 4 passes.
func MSBRadixSort(clk *device.Clock, cfg sim.Config, keys []uint32, vals []int32) ([]uint32, []int32) {
	n := len(keys)
	k := append([]uint32(nil), keys...)
	v := append([]int32(nil), vals...)
	tmpK := make([]uint32, n)
	tmpV := make([]int32, len(vals))

	type seg struct{ lo, hi int }
	segs := []seg{{0, n}}
	for level := 0; level < 4; level++ {
		shift := uint(24 - 8*level)
		// One histogram kernel + one shuffle kernel per level; the per-level
		// traffic is the whole array regardless of how many buckets it is
		// split into.
		elemBytes := int64(4)
		if vals != nil {
			elemBytes = 8
		}
		clk.Charge(&device.Pass{Label: fmt.Sprintf("msb l%d histogram", level), BytesRead: int64(n) * 4, Kernels: 1})
		var next []seg
		for _, s := range segs {
			if s.hi-s.lo <= 1 {
				if s.hi > s.lo {
					next = append(next, s)
				}
				continue
			}
			var hist [257]int
			for i := s.lo; i < s.hi; i++ {
				hist[((k[i]>>shift)&0xFF)+1]++
			}
			for b := 0; b < 256; b++ {
				hist[b+1] += hist[b]
			}
			off := hist
			for i := s.lo; i < s.hi; i++ {
				b := (k[i] >> shift) & 0xFF
				pos := s.lo + off[b]
				off[b]++
				tmpK[pos] = k[i]
				if vals != nil {
					tmpV[pos] = v[i]
				}
			}
			copy(k[s.lo:s.hi], tmpK[s.lo:s.hi])
			if vals != nil {
				copy(v[s.lo:s.hi], tmpV[s.lo:s.hi])
			}
			for b := 0; b < 256; b++ {
				lo, hi := s.lo+hist[b], s.lo+hist[b+1]
				if hi > lo {
					next = append(next, seg{lo, hi})
				}
			}
		}
		clk.Charge(&device.Pass{
			Label:        fmt.Sprintf("msb l%d shuffle", level),
			BytesRead:    int64(n) * elemBytes,
			BytesWritten: int64(n) * elemBytes,
			Kernels:      1,
		})
		segs = next
	}
	return k, v
}
