package gpu

import (
	"math/rand"
	"sort"
	"testing"

	"crystal/internal/device"
	"crystal/internal/pack"
	"crystal/internal/sim"
)

func TestSelectPackedMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	vals := make([]int32, 200_000)
	for i := range vals {
		vals[i] = rng.Int31n(1024)
	}
	col := pack.New(vals)
	pred := func(v int32) bool { return v < 300 }

	plainClk, packedClk := newClock(), newClock()
	plain := Select(plainClk, sim.DefaultConfig(0), vals, pred, SelectIf)
	packed := SelectPacked(packedClk, sim.DefaultConfig(0), col, pred)
	if len(plain) != len(packed) {
		t.Fatalf("packed select: %d rows, want %d", len(packed), len(plain))
	}
	for i := range plain {
		if plain[i] != packed[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	// 10-bit packing reads ~10/32 of the plain bytes; the GPU stays
	// bandwidth bound, so the packed scan must be faster.
	if packedClk.Seconds() >= plainClk.Seconds() {
		t.Errorf("packed (%.6f) should beat plain (%.6f) on the GPU", packedClk.Seconds(), plainClk.Seconds())
	}
}

func TestSelectPackedTraffic(t *testing.T) {
	vals := make([]int32, 1<<16)
	for i := range vals {
		vals[i] = int32(i % 256) // 8-bit width
	}
	col := pack.New(vals)
	clk := newClock()
	SelectPacked(clk, sim.DefaultConfig(0), col, func(int32) bool { return false })
	read := clk.Passes()[0].BytesRead
	plain := int64(len(vals)) * 4
	if read >= plain/3 {
		t.Errorf("packed read %d bytes, want ~1/4 of plain %d", read, plain)
	}
}

func TestGPULSBRadixSort(t *testing.T) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(32))
	keys := make([]uint32, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = rng.Uint32()
		vals[i] = int32(i)
	}
	lsbClk := newClock()
	outK, outV := LSBRadixSort(lsbClk, sim.DefaultConfig(0), keys, vals)
	if !sort.SliceIsSorted(outK, func(i, j int) bool { return outK[i] < outK[j] }) {
		t.Fatal("LSB output not sorted")
	}
	seen := make([]bool, n)
	for i, idx := range outV {
		if seen[idx] {
			t.Fatal("payload duplicated")
		}
		seen[idx] = true
		if keys[idx] != outK[i] {
			t.Fatal("pairing broken")
		}
	}
	// Five stable passes against MSB's four: LSB must be slower on the GPU
	// (Section 4.4's structural argument).
	msbClk := newClock()
	MSBRadixSort(msbClk, sim.DefaultConfig(0), keys, vals)
	if lsbClk.Seconds() <= msbClk.Seconds() {
		t.Errorf("GPU LSB (%.6f) should be slower than MSB (%.6f)", lsbClk.Seconds(), msbClk.Seconds())
	}
}

var _ = device.Pass{}
