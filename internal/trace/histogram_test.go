package trace

import (
	"math"
	"testing"
)

func TestBucketBounds(t *testing.T) {
	b := BucketBounds()
	if len(b) != NumBuckets {
		t.Fatalf("got %d bounds, want %d", len(b), NumBuckets)
	}
	if b[0] != 1e-6 {
		t.Errorf("first bound %g, want 1e-6", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Errorf("bound %d = %g, want doubling", i, b[i])
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("zero value not empty")
	}
	h.Observe(0)          // first bucket
	h.Observe(-5)         // clamps to 0
	h.Observe(math.NaN()) // clamps to 0
	h.Observe(3e-6)       // third bucket (2µs..4µs]
	h.Observe(1e9)        // +Inf bucket
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 3e-6+1e9 {
		t.Errorf("sum = %g", h.Sum())
	}
	c := h.Counts()
	if c[0] != 3 || c[2] != 1 || c[NumBuckets] != 1 {
		t.Errorf("counts = %v", c)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	// 100 observations spread evenly in (2µs, 4µs] — one bucket; linear
	// interpolation makes the median land mid-bucket.
	for i := 0; i < 100; i++ {
		h.Observe(3e-6)
	}
	q := h.Quantile(0.5)
	lo, hi := 2e-6, 4e-6
	if q < lo || q > hi {
		t.Errorf("median %g outside bucket (%g, %g]", q, lo, hi)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantiles not monotone at the extremes")
	}
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("out-of-range q not clamped")
	}
	// Rank landing in +Inf clamps to the last finite bound.
	var inf Histogram
	inf.Observe(1e9)
	if got := inf.Quantile(0.99); got != BucketBounds()[NumBuckets-1] {
		t.Errorf("+Inf quantile = %g, want last bound", got)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1e-5, 2e-5, 4e-5, 8e-5, 1.6e-4, 3.2e-4} {
		h.Observe(v)
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("percentiles not ordered: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
	if p50 < 1e-5 || p99 > 6.4e-4 {
		t.Errorf("percentiles outside observed range: p50=%g p99=%g", p50, p99)
	}
}

func TestHistogramMergeClone(t *testing.T) {
	var a, b Histogram
	a.Observe(1e-5)
	b.Observe(1e-3)
	c := a.Clone()
	c.Merge(&b)
	if c.Count() != 2 || a.Count() != 1 {
		t.Errorf("merge/clone counts: c=%d a=%d", c.Count(), a.Count())
	}
	if c.Sum() != 1e-5+1e-3 {
		t.Errorf("merged sum = %g", c.Sum())
	}
}
